// Property-style parameterized tests sweeping model invariants across the
// configuration space.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "hwsim/machine.h"
#include "engine/engine.h"
#include "msg/partition_queue.h"
#include "profile/config_generator.h"
#include "profile/energy_profile.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb {
namespace {

using hwsim::MachineParams;
using hwsim::SocketConfig;
using hwsim::Topology;

// ---------------------------------------------------------------------------
// Power model: activating more threads never reduces power; raising any
// clock never reduces power. Swept over thread counts x uncore freqs.
// ---------------------------------------------------------------------------

class PowerMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PowerMonotonicity, MoreThreadsMorePower) {
  const auto [threads, uncore] = GetParam();
  const MachineParams params = MachineParams::HaswellEp();
  const hwsim::PowerModel model(params.topology, params.power);
  hwsim::SocketActivity act;
  act.busy_fraction = 1.0;
  const double p_n =
      model
          .SocketPower(0, SocketConfig::FirstThreads(params.topology, threads,
                                                     2.0, uncore),
                       act)
          .pkg_w;
  const double p_more =
      model
          .SocketPower(0, SocketConfig::FirstThreads(params.topology,
                                                     threads + 2, 2.0, uncore),
                       act)
          .pkg_w;
  EXPECT_GE(p_more, p_n);
}

TEST_P(PowerMonotonicity, HigherCoreClockMorePower) {
  const auto [threads, uncore] = GetParam();
  const MachineParams params = MachineParams::HaswellEp();
  const hwsim::PowerModel model(params.topology, params.power);
  hwsim::SocketActivity act;
  act.busy_fraction = 1.0;
  double prev = 0.0;
  for (double f : {1.2, 1.8, 2.4, 3.1}) {
    const double p =
        model
            .SocketPower(0, SocketConfig::FirstThreads(params.topology,
                                                       threads, f, uncore),
                         act)
            .pkg_w;
    EXPECT_GE(p, prev);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadUncoreSweep, PowerMonotonicity,
    ::testing::Combine(::testing::Values(2, 6, 12, 20),
                       ::testing::Values(1.2, 2.1, 3.0)));

// ---------------------------------------------------------------------------
// Perf model: adding active threads never reduces *total* throughput for
// contention-free profiles; per-thread rate never increases.
// ---------------------------------------------------------------------------

class ThroughputScaling : public ::testing::TestWithParam<const char*> {
 protected:
  const hwsim::WorkProfile& Profile() const {
    const std::string name = GetParam();
    if (name == "compute") return workload::ComputeBound();
    if (name == "scan") return workload::MemoryScan();
    return workload::KvIndexed();
  }
};

TEST_P(ThroughputScaling, TotalThroughputMonotoneInThreads) {
  const MachineParams params = MachineParams::HaswellEp();
  const hwsim::BandwidthModel bw(params.bandwidth);
  const hwsim::PerfModel model(params.topology, bw, params.perf);
  double prev_total = 0.0;
  for (int threads = 2; threads <= 24; threads += 2) {
    hwsim::MachineConfig cfg = hwsim::MachineConfig::Idle(params.topology);
    cfg.sockets[0] =
        SocketConfig::FirstThreads(params.topology, threads, 2.0, 3.0);
    std::vector<hwsim::ThreadLoad> loads(
        static_cast<size_t>(params.topology.total_threads()));
    for (int t = 0; t < threads; ++t) loads[static_cast<size_t>(t)] = {&Profile(), 1.0};
    const hwsim::SolveResult r = model.Solve(cfg, loads);
    double total = 0.0;
    for (const auto& tr : r.threads) total += tr.ops_per_sec;
    EXPECT_GE(total, prev_total * 0.999) << threads << " threads";
    prev_total = total;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, ThroughputScaling,
                         ::testing::Values("compute", "kv_indexed"));

TEST(ScanThroughputShape, PeaksThenDeclinesWithMcContention) {
  // Saturating scans peak once the channel is full; further threads only
  // add memory-controller contention (paper Section 6.1).
  const MachineParams params = MachineParams::HaswellEp();
  const hwsim::BandwidthModel bw(params.bandwidth);
  const hwsim::PerfModel model(params.topology, bw, params.perf);
  auto total_at = [&](int threads) {
    hwsim::MachineConfig cfg = hwsim::MachineConfig::Idle(params.topology);
    cfg.sockets[0] =
        SocketConfig::FirstThreads(params.topology, threads, 2.0, 3.0);
    std::vector<hwsim::ThreadLoad> loads(
        static_cast<size_t>(params.topology.total_threads()));
    for (int t = 0; t < threads; ++t) {
      loads[static_cast<size_t>(t)] = {&workload::MemoryScan(), 1.0};
    }
    const hwsim::SolveResult r = model.Solve(cfg, loads);
    double total = 0.0;
    for (const auto& tr : r.threads) total += tr.ops_per_sec;
    return total;
  };
  EXPECT_GT(total_at(8), total_at(2));    // below saturation: scaling up
  EXPECT_GT(total_at(8), total_at(24));   // beyond: contention costs
  EXPECT_GT(total_at(24), 0.8 * total_at(8));  // but only mildly
}

// ---------------------------------------------------------------------------
// Energy profile: invariants over randomized measurements.
// ---------------------------------------------------------------------------

class ProfileInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProfileInvariants, SkylineAndLookupConsistent) {
  const Topology topo = Topology::HaswellEp2S();
  profile::ConfigGenerator gen(topo, hwsim::FrequencyTable::HaswellEp());
  profile::EnergyProfile profile(gen.Generate(profile::GeneratorParams{}));
  Rng rng(GetParam());
  for (int i = 1; i < profile.size(); ++i) {
    profile.Record(i, 10.0 + rng.NextDouble() * 100.0,
                   1e9 * (0.1 + rng.NextDouble()), Seconds(1));
  }
  const int optimal = profile.MostEfficientIndex();
  ASSERT_GE(optimal, 0);
  const double opt_eff = profile.config(optimal).efficiency();

  // 1. No configuration is more efficient than the optimum.
  for (int i = 1; i < profile.size(); ++i) {
    EXPECT_LE(profile.config(i).efficiency(), opt_eff + 1e-12);
  }
  // 2. The skyline is sorted by performance with decreasing efficiency.
  const std::vector<int> skyline = profile.Skyline();
  ASSERT_FALSE(skyline.empty());
  for (size_t i = 1; i < skyline.size(); ++i) {
    EXPECT_GT(profile.config(skyline[i]).perf_score,
              profile.config(skyline[i - 1]).perf_score);
    EXPECT_LT(profile.config(skyline[i]).efficiency(),
              profile.config(skyline[i - 1]).efficiency());
  }
  // 3. The optimum is the first skyline entry.
  EXPECT_EQ(skyline.front(), optimal);
  // 4. FindForDemand returns the most efficient configuration satisfying
  //    the demand, for a sweep of demands.
  for (int d = 0; d <= 10; ++d) {
    const double demand = profile.PeakPerfScore() * d / 10.0;
    const int pick = profile.FindForDemand(demand);
    ASSERT_GE(pick, 1);
    if (profile.config(pick).perf_score >= demand) {
      for (int i = 1; i < profile.size(); ++i) {
        if (profile.config(i).perf_score >= demand) {
          EXPECT_LE(profile.config(i).efficiency(),
                    profile.config(pick).efficiency() + 1e-12);
        }
      }
    } else {
      // Fallback: nothing satisfies the demand; must be the peak config.
      EXPECT_EQ(pick, profile.PeakPerfIndex());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// Partition queue: per-producer FIFO under randomized interleavings.
// ---------------------------------------------------------------------------

class QueueFifoProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueueFifoProperty, PerProducerOrderPreserved) {
  msg::PartitionQueue q(0, 1 << 12);
  Rng rng(GetParam());
  constexpr int kProducers = 4;
  int64_t next_seq[kProducers] = {0, 0, 0, 0};
  int64_t popped_seq[kProducers] = {-1, -1, -1, -1};
  ASSERT_TRUE(q.TryAcquire(1));
  for (int step = 0; step < 5000; ++step) {
    if (rng.NextBool(0.6)) {
      const int producer = static_cast<int>(rng.NextBounded(kProducers));
      msg::Message m;
      m.partition = 0;
      m.query_id = producer;
      m.payload[0] = next_seq[producer]++;
      ASSERT_TRUE(q.Enqueue(m));
    } else {
      std::vector<msg::Message> batch;
      q.DequeueBatch(1, rng.NextBounded(8) + 1, &batch);
      for (const msg::Message& m : batch) {
        const int producer = static_cast<int>(m.query_id);
        EXPECT_GT(m.payload[0], popped_seq[producer]);
        popped_seq[producer] = m.payload[0];
      }
    }
  }
  q.Release(1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueFifoProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

// ---------------------------------------------------------------------------
// Machine: energy equals the integral of instantaneous power across
// randomized configuration sequences.
// ---------------------------------------------------------------------------

class EnergyConservation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EnergyConservation, EnergyMatchesPowerIntegral) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, MachineParams::HaswellEp());
  Rng rng(GetParam());
  double integral_j = 0.0;
  for (int step = 0; step < 30; ++step) {
    const int threads = static_cast<int>(rng.NextBounded(25));
    const double core = 1.2 + 0.1 * static_cast<double>(rng.NextBounded(15));
    const double uncore = 1.2 + 0.1 * static_cast<double>(rng.NextBounded(19));
    machine.ApplySocketConfig(
        0, SocketConfig::FirstThreads(machine.topology(), threads, core, uncore));
    for (int t = 0; t < machine.topology().threads_per_socket(); ++t) {
      machine.SetThreadLoad(t, rng.NextBool(0.5) ? &workload::MemoryScan() : nullptr,
                            1.0);
    }
    // Integrate instantaneous power in 1 ms steps over 20 ms.
    for (int ms = 0; ms < 20; ++ms) {
      sim.RunFor(Millis(1));
      integral_j += machine.InstantRaplPowerW() * 1e-3;
    }
  }
  EXPECT_NEAR(machine.TotalEnergyJoules(), integral_j,
              0.02 * integral_j + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyConservation,
                         ::testing::Values(101u, 202u, 303u));


// ---------------------------------------------------------------------------
// End-to-end fuzz: random configuration writes + random query submissions.
// Invariants: no crash, all submitted queries eventually complete once
// capacity exists, energy is monotone and matches power bounds.
// ---------------------------------------------------------------------------

class EndToEndFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EndToEndFuzz, RandomControlAndLoadKeepInvariants) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  Rng rng(GetParam());
  const Topology& topo = machine.topology();

  int64_t submitted = 0;
  double last_energy = 0.0;
  for (int step = 0; step < 120; ++step) {
    switch (rng.NextBounded(4)) {
      case 0: {  // random socket configuration
        const SocketId s = static_cast<SocketId>(rng.NextBounded(2));
        const int threads = static_cast<int>(rng.NextBounded(25));
        const double core = 1.2 + 0.1 * static_cast<double>(rng.NextBounded(20));
        const double unc = 1.2 + 0.1 * static_cast<double>(rng.NextBounded(19));
        machine.ApplySocketConfig(
            s, SocketConfig::FirstThreads(topo, threads, core, unc));
        break;
      }
      case 1: {  // random query burst
        const int n = static_cast<int>(rng.NextBounded(20)) + 1;
        for (int i = 0; i < n; ++i) {
          engine::QuerySpec spec;
          spec.profile = rng.NextBool(0.5) ? &workload::ComputeBound()
                                           : &workload::MemoryScan();
          const int parts = static_cast<int>(rng.NextBounded(3)) + 1;
          for (int p = 0; p < parts; ++p) {
            spec.work.push_back(
                {static_cast<PartitionId>(rng.NextBounded(48)),
                 1e4 + rng.NextDouble() * 1e6});
          }
          spec.origin_socket = static_cast<SocketId>(rng.NextBounded(2));
          engine.Submit(spec);
          ++submitted;
        }
        break;
      }
      default:
        break;  // just advance time
    }
    sim.RunFor(Millis(static_cast<int64_t>(rng.NextBounded(40)) + 1));
    const double energy = machine.TotalEnergyJoules();
    EXPECT_GE(energy, last_energy);  // energy never decreases
    last_energy = energy;
  }
  // Give the machine full capacity: everything must drain.
  machine.ApplyMachineConfig(hwsim::MachineConfig::AllOn(topo, 2.6, 3.0));
  sim.RunFor(Seconds(30));
  EXPECT_EQ(engine.latency().completed(), submitted);
  EXPECT_EQ(engine.scheduler().inflight(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndFuzz,
                         ::testing::Values(7u, 77u, 777u, 7777u, 77777u));

}  // namespace
}  // namespace ecldb
