#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ecl/cluster_ecl.h"
#include "engine/cluster_engine.h"
#include "hwsim/cluster.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::engine {
namespace {

// Two default nodes, eight global partitions (0-3 homed on node 0, 4-7 on
// node 1 at cluster scope), every machine running all-on.
class ClusterEngineTest : public ::testing::Test {
 protected:
  void Build(hwsim::ClusterParams cluster_params,
             ClusterEngineParams engine_params) {
    cluster_ = std::make_unique<hwsim::Cluster>(&sim_, cluster_params);
    engine_params.num_partitions = 8;
    engine_ = std::make_unique<ClusterEngine>(&sim_, cluster_.get(),
                                              engine_params);
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) AllOn(n);
  }

  void Build() {
    Build(hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}),
          ClusterEngineParams{});
  }

  void AllOn(NodeId n) {
    hwsim::Machine& m = cluster_->machine(n);
    m.ApplyMachineConfig(hwsim::MachineConfig::AllOn(m.topology(), 2.6, 3.0));
  }

  int64_t node_engine_completed(NodeId n) {
    return engine_->node_engine(n).latency().completed();
  }

  QuerySpec ComputeQuery(PartitionId p, double ops) {
    QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({p, ops});
    return spec;
  }

  sim::Simulator sim_;
  std::unique_ptr<hwsim::Cluster> cluster_;
  std::unique_ptr<ClusterEngine> engine_;
};

TEST_F(ClusterEngineTest, DefaultPartitionCountSumsNodeThreads) {
  hwsim::Cluster cluster(
      &sim_, hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}));
  ClusterEngine engine(&sim_, &cluster, ClusterEngineParams{});
  EXPECT_EQ(engine.num_partitions(),
            2 * cluster.machine(0).topology().total_threads());
  EXPECT_EQ(engine.placement().num_sockets(), 2);  // node-level map
}

TEST_F(ClusterEngineTest, LocalSubmitStaysOffTheNetwork) {
  Build();
  engine_->Submit(0, ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
  EXPECT_EQ(engine_->remote_sends(), 0);
  EXPECT_EQ(cluster_->network().transfers(), 0);
}

TEST_F(ClusterEngineTest, CrossNodeSubmitShipsAndCompletes) {
  Build();
  // Partition 4 is homed on node 1; the client enters at node 0.
  engine_->Submit(0, ComputeQuery(4, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
  EXPECT_EQ(engine_->remote_sends(), 1);
  EXPECT_EQ(engine_->stale_forwards(), 0);
  EXPECT_EQ(cluster_->network().transfers(), 1);
  EXPECT_EQ(node_engine_completed(1), 1);
  EXPECT_EQ(node_engine_completed(0), 0);
}

TEST_F(ClusterEngineTest, MultiNodeQuerySplitsByHomeNode) {
  Build();
  QuerySpec spec = ComputeQuery(0, 1e6);
  spec.work.push_back({5, 1e6});  // node 1
  engine_->Submit(0, spec);
  sim_.RunFor(Millis(100));
  // One sub-query per home node; exactly one hop crossed the network.
  EXPECT_EQ(engine_->remote_sends(), 1);
  EXPECT_EQ(node_engine_completed(0), 1);
  EXPECT_EQ(node_engine_completed(1), 1);
}

TEST_F(ClusterEngineTest, NodeMigrationRehomesWithExactness) {
  // The test partitions hold no tuples, so the shard-copy floor is what
  // crosses the wire (~13 ms at 10 Gbps).
  ClusterEngineParams params;
  params.migration.min_shard_bytes = 16.0 * (1 << 20);
  Build(hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}),
        params);
  // A backlog sits on partition 0 when the node-scope migration starts:
  // the drain barrier holds, everything queued completes on the source,
  // and the partition ends up homed on node 1.
  const int kQueries = 30;
  for (int i = 0; i < kQueries; ++i) engine_->Submit(0, ComputeQuery(0, 1e6));
  sim_.ScheduleAfter(Millis(1), [&] {
    EXPECT_TRUE(engine_->StartMigration(0, 1));
    EXPECT_TRUE(engine_->placement().IsMigrating(0));
    EXPECT_TRUE(engine_->NodeInvolvedInMigration(0));
    EXPECT_TRUE(engine_->NodeInvolvedInMigration(1));
    // Redundant or concurrent starts are rejected.
    EXPECT_FALSE(engine_->StartMigration(0, 1));
  });
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(engine_->migrations_completed(), 1);
  EXPECT_EQ(engine_->active_migrations(), 0);
  EXPECT_EQ(engine_->placement().HomeOf(0), 1);
  EXPECT_EQ(engine_->placement().epoch(), 1);
  EXPECT_FALSE(engine_->NodeInvolvedInMigration(0));
  EXPECT_GT(engine_->bytes_moved(), 0.0);
  // Exactness: every submitted query completed exactly once, none were
  // dropped at the handover, and the internal shard copy is invisible in
  // the query counts.
  EXPECT_EQ(engine_->CompletedQueries(), kQueries);
  // New work for the moved partition entering at its new home is local.
  const int64_t sends_before = engine_->remote_sends();
  engine_->Submit(1, ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_->CompletedQueries(), kQueries + 1);
  EXPECT_EQ(engine_->remote_sends(), sends_before);
}

TEST_F(ClusterEngineTest, RejectsMigrationToSelfOrOffNodes) {
  Build();
  EXPECT_FALSE(engine_->StartMigration(0, 0));  // already home
  cluster_->PowerDown(1);
  EXPECT_FALSE(engine_->StartMigration(0, 1));  // destination off
  EXPECT_FALSE(engine_->StartMigration(4, 0));  // source off
  EXPECT_EQ(engine_->migrations_started(), 0);
}

TEST_F(ClusterEngineTest, StaleFlightForwardsToNewHome) {
  // A remote submission is on the wire toward partition 4's old home
  // when the node-scope rehome commits: the delivery re-resolves the
  // placement, counts a stale forward, and takes another hop.
  hwsim::ClusterParams cluster_params =
      hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{});
  cluster_params.network.base_latency_us = 100'000.0;  // 100 ms flight
  Build(cluster_params, ClusterEngineParams{});
  // Migration 4: node1 -> node0. The empty-queue drain plus the tiny
  // shard transfer commit at ~100 ms (one base latency).
  EXPECT_TRUE(engine_->StartMigration(4, 0));
  // Mid-flight submission: ships toward node 1 at 50 ms, arrives at
  // 150 ms — after the commit — and must forward back to node 0.
  sim_.Schedule(Millis(50), [&] {
    EXPECT_EQ(engine_->placement().HomeOf(4), 1);  // commit still pending
    engine_->Submit(0, ComputeQuery(4, 1e6));
  });
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(engine_->migrations_completed(), 1);
  EXPECT_EQ(engine_->placement().HomeOf(4), 0);
  EXPECT_EQ(engine_->CompletedQueries(), 1);
  EXPECT_EQ(engine_->stale_forwards(), 1);
  EXPECT_EQ(engine_->remote_sends(), 2);  // original hop + forward
  EXPECT_EQ(node_engine_completed(0), 1);
}

TEST_F(ClusterEngineTest, ForwardHopCapFailsTypedInsteadOfLivelock) {
  // A placement that keeps re-homing ahead of every delivery would chase
  // the partition forever; the hop cap turns the chase into a typed
  // kForwardCap failure with the client's class/tenant/attempt echoed.
  hwsim::ClusterParams cluster_params =
      hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{});
  cluster_params.network.base_latency_us = 100'000.0;  // 100 ms flight
  ClusterEngineParams engine_params;
  engine_params.max_forward_hops = 2;
  Build(cluster_params, engine_params);

  struct Failure {
    int8_t slo_class;
    int16_t tenant;
    int8_t attempt;
    FailReason reason;
  };
  std::vector<Failure> failures;
  engine_->SetQueryFailureCallback([&](int8_t cls, int16_t tenant,
                                       int8_t attempt, SimTime,
                                       FailReason reason) {
    failures.push_back({cls, tenant, attempt, reason});
  });

  // Partition 4 is homed on node 1; the client enters at node 0. Each
  // hop takes ~100 ms; a forced re-home lands mid-flight ahead of every
  // delivery, so the query ping-pongs: hop 1 at 100 ms (node 1, home 0),
  // hop 2 at 200 ms (node 0, home 1), capped at 300 ms (node 1, home 0).
  QuerySpec spec = ComputeQuery(4, 1e6);
  spec.slo_class = 1;
  spec.tenant = 3;
  spec.attempt = 2;
  engine_->Submit(0, spec);
  sim_.Schedule(Millis(50), [&] { engine_->placement().ForceRehome(4, 0); });
  sim_.Schedule(Millis(150), [&] { engine_->placement().ForceRehome(4, 1); });
  sim_.Schedule(Millis(250), [&] { engine_->placement().ForceRehome(4, 0); });
  sim_.RunFor(Seconds(1));

  EXPECT_EQ(engine_->stale_forwards(), 2);
  EXPECT_EQ(engine_->forward_drops(), 1);
  EXPECT_EQ(engine_->QueriesFailed(), 1);
  EXPECT_EQ(engine_->CompletedQueries(), 0);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].reason, FailReason::kForwardCap);
  EXPECT_EQ(failures[0].slo_class, 1);
  EXPECT_EQ(failures[0].tenant, 3);
  EXPECT_EQ(failures[0].attempt, 2);
}

TEST_F(ClusterEngineTest, MigrationCancelsWhenDestinationPowersDown) {
  ClusterEngineParams params;
  params.migration.min_shard_bytes = 256.0 * (1 << 20);  // ~215 ms on wire
  Build(hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}),
        params);
  EXPECT_TRUE(engine_->StartMigration(0, 1));
  // The destination powers down while the shard copy is on the wire.
  sim_.Schedule(Millis(100), [&] { cluster_->PowerDown(1); });
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(engine_->migrations_cancelled(), 1);
  EXPECT_EQ(engine_->migrations_completed(), 0);
  EXPECT_EQ(engine_->active_migrations(), 0);
  // The source was never unhomed: placement, epoch, and servability are
  // untouched.
  EXPECT_EQ(engine_->placement().HomeOf(0), 0);
  EXPECT_EQ(engine_->placement().epoch(), 0);
  EXPECT_FALSE(engine_->placement().IsMigrating(0));
  EXPECT_DOUBLE_EQ(engine_->bytes_moved(), 0.0);
  engine_->Submit(0, ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
}

TEST_F(ClusterEngineTest, WorkShippedToOffNodeBuffersUntilBoot) {
  Build();
  cluster_->PowerDown(1);
  // Partition 4 is still homed on node 1: the submission ships there and
  // queues — the off node's machine idles, so nothing executes.
  engine_->Submit(0, ComputeQuery(4, 1e6));
  sim_.RunFor(Millis(200));
  EXPECT_EQ(engine_->CompletedQueries(), 0);
  EXPECT_GT(engine_->BacklogOps(1), 0.0);
  // Boot the node and restore a serving configuration: the buffered work
  // completes.
  cluster_->PowerUp(1, [&] { AllOn(1); });
  sim_.RunFor(cluster_->params().nodes[1].power.boot_latency + Seconds(1));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
  EXPECT_DOUBLE_EQ(engine_->BacklogOps(1), 0.0);
}

TEST_F(ClusterEngineTest, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Simulator sim;
    hwsim::Cluster cluster(
        &sim, hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}));
    ClusterEngineParams params;
    params.num_partitions = 8;
    ClusterEngine engine(&sim, &cluster, params);
    for (NodeId n = 0; n < 2; ++n) {
      hwsim::Machine& m = cluster.machine(n);
      m.ApplyMachineConfig(hwsim::MachineConfig::AllOn(m.topology(), 2.6, 3.0));
    }
    for (int i = 0; i < 20; ++i) {
      QuerySpec spec;
      spec.profile = &workload::ComputeBound();
      spec.work.push_back({i % 8, 1e6});
      engine.Submit(0, spec);
    }
    sim.ScheduleAfter(Millis(1), [&] { engine.StartMigration(0, 1); });
    sim.RunFor(Seconds(1));
    return std::make_tuple(engine.CompletedQueries(), engine.remote_sends(),
                           engine.bytes_moved(),
                           cluster.TotalEnergyJoules());
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Cluster ECL policy
// ---------------------------------------------------------------------------

// Drives the policy with synthetic load/pressure signals so each decision
// is tested in isolation from the per-node ECL stacks.
class ClusterEclTest : public ClusterEngineTest {
 protected:
  void BuildWithEcl(ecl::ClusterEclParams ecl_params,
                    SimDuration boot_latency = Seconds(2)) {
    hwsim::ClusterNodeParams node;
    node.power.boot_latency = boot_latency;
    Build(hwsim::ClusterParams::Homogeneous(2, node), ClusterEngineParams{});
    ecl_params.enabled = true;
    ecl_ = std::make_unique<ecl::ClusterEcl>(
        &sim_, engine_.get(), [this](NodeId) { return load_; },
        [this](NodeId) { return pressure_; }, ecl_params);
    ecl_->SetNodeHooks([](NodeId) {}, [this](NodeId n) { AllOn(n); });
    ecl_->Start();
  }

  static ecl::ClusterEclParams FastParams() {
    ecl::ClusterEclParams p;
    p.interval = Millis(500);
    p.min_on_time = Seconds(2);
    p.post_migration_hold = Millis(500);
    return p;
  }

  std::unique_ptr<ecl::ClusterEcl> ecl_;
  double load_ = 0.05;
  double pressure_ = 0.0;
};

TEST_F(ClusterEclTest, ConsolidatesAndPowersDownAtLowPressure) {
  BuildWithEcl(FastParams());
  sim_.RunFor(Seconds(20));
  // The least-loaded node donated its partitions and, once drained past
  // the boot-amortisation dwell, powered down — removing its platform
  // overhead, which package sleep alone cannot.
  EXPECT_GE(ecl_->consolidation_moves(), 4);
  EXPECT_EQ(ecl_->power_downs(), 1);
  EXPECT_EQ(cluster_->NodesOn(), 1);
  const PlacementMap& placement = engine_->placement();
  EXPECT_EQ(placement.PartitionsOn(0) + placement.PartitionsOn(1), 8);
  EXPECT_TRUE(placement.PartitionsOn(0) == 0 || placement.PartitionsOn(1) == 0);
  // min_nodes_on keeps the last node up no matter how idle.
  sim_.RunFor(Seconds(10));
  EXPECT_EQ(cluster_->NodesOn(), 1);
  EXPECT_EQ(ecl_->power_downs(), 1);
}

TEST_F(ClusterEclTest, RisingPressureWakesAndSpreadsBack) {
  BuildWithEcl(FastParams());
  sim_.RunFor(Seconds(20));
  ASSERT_EQ(cluster_->NodesOn(), 1);
  // Pressure crosses the wake threshold (deliberately below the spread
  // threshold: capacity arrives a whole boot latency late).
  sim_.ScheduleAfter(Seconds(0), [&] { pressure_ = 0.6; });
  sim_.RunFor(Seconds(15));
  EXPECT_EQ(ecl_->wakes(), 1);
  EXPECT_EQ(cluster_->NodesOn(), 2);
  // Once the woken node is serving-capable, spread rebalances onto it —
  // preferring partitions whose initial home it was.
  EXPECT_GT(ecl_->spread_moves(), 0);
  EXPECT_EQ(engine_->placement().PartitionsOn(0), 4);
  EXPECT_EQ(engine_->placement().PartitionsOn(1), 4);
  // No node powers down while pressure holds above the wake threshold.
  EXPECT_EQ(ecl_->power_downs(), 1);
}

TEST_F(ClusterEclTest, BacklogOnOffNodeTriggersWakeAndWorkCompletes) {
  ecl::ClusterEclParams params = FastParams();
  params.interval = Millis(200);
  params.wake_backlog_ops = 1e5;
  BuildWithEcl(params);
  // The node powers down with partitions still homed on it (hardware
  // allows it; only the policy drains first). Work shipped there buffers.
  cluster_->PowerDown(1);
  sim_.ScheduleAfter(Seconds(1), [&] {
    engine_->Submit(0, ComputeQuery(4, 1e6));
  });
  sim_.RunFor(Millis(1100));
  EXPECT_GT(engine_->BacklogOps(1), 0.0);
  EXPECT_EQ(engine_->CompletedQueries(), 0);
  // The backlog wake covers exactly this: work already shipped toward a
  // powered-down node, before any pressure signal reflects it.
  sim_.RunFor(Seconds(5));
  EXPECT_EQ(ecl_->wakes(), 1);
  EXPECT_TRUE(cluster_->IsOn(1));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
  EXPECT_DOUBLE_EQ(engine_->BacklogOps(1), 0.0);
}

}  // namespace
}  // namespace ecldb::engine
