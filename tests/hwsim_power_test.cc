#include <gtest/gtest.h>

#include "hwsim/machine.h"
#include "hwsim/power_model.h"

namespace ecldb::hwsim {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  PowerModelTest()
      : params_(MachineParams::HaswellEp()),
        topo_(params_.topology),
        model_(topo_, params_.power) {}

  SocketActivity BusyActivity(double busy = 1.0, double bw = 0.0) const {
    SocketActivity a;
    a.busy_fraction = busy;
    a.bandwidth_gbps = bw;
    return a;
  }

  MachineParams params_;
  Topology topo_;
  PowerModel model_;
};

TEST_F(PowerModelTest, IdleWithUncoreHaltedIsBasePower) {
  SocketActivity idle;
  idle.uncore_halted = true;
  const PowerBreakdown p0 = model_.SocketPower(0, SocketConfig::Idle(topo_), idle);
  EXPECT_DOUBLE_EQ(p0.pkg_w, params_.power.pkg_base_halted_w[0]);
  EXPECT_DOUBLE_EQ(p0.dram_w, params_.power.dram_static_w);
}

TEST_F(PowerModelTest, SocketAsymmetryReproduced) {
  // Fig. 5: the second socket draws less power than the first.
  SocketActivity idle;
  idle.uncore_halted = true;
  const SocketConfig cfg = SocketConfig::Idle(topo_);
  EXPECT_GT(model_.SocketPower(0, cfg, idle).pkg_w,
            model_.SocketPower(1, cfg, idle).pkg_w);
}

TEST_F(PowerModelTest, HaltedUncoreSavesSubstantially) {
  // Fig. 4/5: halting the uncore clock (power-gating the LLC) saves up to
  // ~30 W at the maximum uncore frequency.
  SocketConfig cfg = SocketConfig::Idle(topo_);
  cfg.uncore_freq_ghz = 3.0;
  SocketActivity active_uncore;   // some other socket is awake
  SocketActivity halted;
  halted.uncore_halted = true;
  const double diff = model_.SocketPower(0, cfg, active_uncore).pkg_w -
                      model_.SocketPower(0, cfg, halted).pkg_w;
  EXPECT_GT(diff, 20.0);
  EXPECT_LT(diff, 40.0);
}

TEST_F(PowerModelTest, PowerMonotoneInUncoreFrequency) {
  SocketActivity act = BusyActivity();
  double prev = 0.0;
  for (double f = 1.2; f <= 3.01; f += 0.1) {
    SocketConfig cfg = SocketConfig::AllOn(topo_, 2.0, f);
    const double p = model_.SocketPower(0, cfg, act).pkg_w;
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerModelTest, PowerMonotoneInCoreFrequency) {
  SocketActivity act = BusyActivity();
  double prev = 0.0;
  for (double f = 1.2; f <= 3.11; f += 0.1) {
    SocketConfig cfg = SocketConfig::AllOn(topo_, f, 1.2);
    const double p = model_.SocketPower(0, cfg, act).pkg_w;
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST_F(PowerModelTest, FirstCoreCostsMoreThanAdditionalCores) {
  // Fig. 4: "most of the power costs incur when the first core of a socket
  // is activated" (the uncore must run), while additional physical cores
  // are much cheaper.
  SocketActivity idle_halted;
  idle_halted.uncore_halted = true;
  SocketActivity act = BusyActivity();
  const double p_idle =
      model_.SocketPower(0, SocketConfig::Idle(topo_), idle_halted).pkg_w;
  const double p1 =
      model_.SocketPower(0, SocketConfig::FirstThreads(topo_, 2, 2.0, 3.0), act)
          .pkg_w;
  const double p2 =
      model_.SocketPower(0, SocketConfig::FirstThreads(topo_, 4, 2.0, 3.0), act)
          .pkg_w;
  const double first_core_cost = p1 - p_idle;
  const double second_core_cost = p2 - p1;
  EXPECT_GT(first_core_cost, 4.0 * second_core_cost);
}

TEST_F(PowerModelTest, HyperThreadSiblingNearlyFree) {
  // Fig. 4: activating HyperThread siblings costs almost nothing compared
  // to activating another physical core.
  SocketActivity act = BusyActivity();
  // 2 cores, 1 thread each (spread) vs 1 core with both siblings.
  const double p_one_core_two_threads =
      model_.SocketPower(0, SocketConfig::FirstThreads(topo_, 2, 2.6, 3.0), act)
          .pkg_w;
  const double p_two_cores =
      model_.SocketPower(0, SocketConfig::SpreadThreads(topo_, 2, 2.6, 3.0), act)
          .pkg_w;
  const double p_one_thread =
      model_.SocketPower(0, SocketConfig::FirstThreads(topo_, 1, 2.6, 3.0), act)
          .pkg_w;
  const double sibling_cost = p_one_core_two_threads - p_one_thread;
  const double core_cost = p_two_cores - p_one_thread;
  EXPECT_LT(sibling_cost, 0.35 * core_cost);
}

TEST_F(PowerModelTest, DramPowerScalesWithBandwidth) {
  const SocketConfig cfg = SocketConfig::AllOn(topo_, 2.0, 3.0);
  const double p0 = model_.SocketPower(0, cfg, BusyActivity(1.0, 0.0)).dram_w;
  const double p50 = model_.SocketPower(0, cfg, BusyActivity(1.0, 50.0)).dram_w;
  EXPECT_DOUBLE_EQ(p0, params_.power.dram_static_w);
  EXPECT_NEAR(p50 - p0, 50.0 * params_.power.dram_w_per_gbps, 1e-9);
}

TEST_F(PowerModelTest, PollingDrawsLessThanBusy) {
  const SocketConfig cfg = SocketConfig::AllOn(topo_, 2.6, 3.0);
  const double busy = model_.SocketPower(0, cfg, BusyActivity(1.0)).pkg_w;
  const double poll = model_.SocketPower(0, cfg, BusyActivity(0.0)).pkg_w;
  EXPECT_LT(poll, busy);
  EXPECT_GT(poll, 0.3 * busy);  // polling is far from free (always-on)
}

TEST_F(PowerModelTest, PowerScaleRaisesDynamicPower) {
  const SocketConfig cfg = SocketConfig::AllOn(topo_, 2.6, 3.0);
  SocketActivity avx = BusyActivity(1.0);
  avx.power_scale = 1.35;
  EXPECT_GT(model_.SocketPower(0, cfg, avx).pkg_w,
            model_.SocketPower(0, cfg, BusyActivity(1.0)).pkg_w);
}

TEST_F(PowerModelTest, PsuModelAddsOverhead) {
  // Fig. 3: PSU/board overhead on top of what RAPL captures.
  EXPECT_NEAR(model_.PsuPowerW(0.0), params_.power.psu_static_w, 1e-9);
  EXPECT_GT(model_.PsuPowerW(200.0), 200.0 + params_.power.psu_static_w);
}

TEST_F(PowerModelTest, StaticShareOfPeakMatchesPaper) {
  // Fig. 3: static wall power is ~18 % of the (non-turbo) peak, down from
  // >50 % in 2010. Peak here: all cores busy with an AVX-heavy mix.
  SocketActivity idle;
  idle.uncore_halted = true;
  SocketActivity peak = BusyActivity(1.0, 56.0);
  peak.power_scale = 1.35;
  double rapl_idle = 0.0, rapl_peak = 0.0;
  for (SocketId s = 0; s < topo_.num_sockets; ++s) {
    rapl_idle += model_.SocketPower(s, SocketConfig::Idle(topo_), idle).total();
    rapl_peak +=
        model_.SocketPower(s, SocketConfig::AllOn(topo_, 2.6, 3.0), peak).total();
  }
  const double share = model_.PsuPowerW(rapl_idle) / model_.PsuPowerW(rapl_peak);
  EXPECT_GT(share, 0.14);
  EXPECT_LT(share, 0.24);
}

}  // namespace
}  // namespace ecldb::hwsim
