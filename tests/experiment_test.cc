#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "experiment/drain.h"
#include "experiment/experiment.h"
#include "sim/simulator.h"
#include "workload/micro.h"
#include "workload/load_profile.h"
#include "workload/work_profiles.h"

namespace ecldb::experiment {
namespace {

WorkloadFactory MicroFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    return std::make_unique<workload::MicroWorkload>(
        e, workload::ComputeBound(), 1e6, 2);
  };
}

TEST(ExperimentTest, BaselineRunProducesSaneResult) {
  workload::ConstantProfile profile(0.5, Seconds(10));
  RunOptions options;
  options.mode = ControlMode::kBaseline;
  options.prime_duration = Seconds(2);
  const RunResult r = RunLoadExperiment(MicroFactory(), profile, options);
  EXPECT_DOUBLE_EQ(r.duration_s, 10.0);
  EXPECT_GT(r.capacity_qps, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_NEAR(r.avg_power_w, r.energy_j / r.duration_s, 1e-9);
  EXPECT_GT(r.submitted, 0);
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  EXPECT_GE(r.max_ms, r.p99_ms);
  EXPECT_TRUE(r.best_config.empty());  // baseline has no profile
}

TEST(ExperimentTest, SeriesCoversTheRun) {
  workload::ConstantProfile profile(0.3, Seconds(10));
  RunOptions options;
  options.mode = ControlMode::kBaseline;
  options.prime_duration = 0;
  options.sample_period = Millis(500);
  const RunResult r = RunLoadExperiment(MicroFactory(), profile, options);
  ASSERT_EQ(r.series.size(), 20u);
  EXPECT_NEAR(r.series.front().t_s, 0.5, 1e-9);
  EXPECT_NEAR(r.series.back().t_s, 10.0, 1e-9);
  for (const Sample& s : r.series) {
    EXPECT_GT(s.rapl_power_w, 0.0);
    EXPECT_GT(s.offered_qps, 0.0);
    EXPECT_EQ(s.active_threads, 48);  // baseline: everything on
  }
}

TEST(ExperimentTest, EclRunReportsBestConfig) {
  workload::ConstantProfile profile(0.3, Seconds(10));
  RunOptions options;
  options.mode = ControlMode::kEcl;
  options.prime_duration = Seconds(28);
  const RunResult r = RunLoadExperiment(MicroFactory(), profile, options);
  EXPECT_FALSE(r.best_config.empty());
  EXPECT_NE(r.best_config.find("thr @"), std::string::npos);
}

TEST(ExperimentTest, CapacityOverrideRespected) {
  workload::ConstantProfile profile(1.0, Seconds(5));
  RunOptions options;
  options.mode = ControlMode::kBaseline;
  options.prime_duration = 0;
  options.capacity_qps = 100.0;
  const RunResult r = RunLoadExperiment(MicroFactory(), profile, options);
  EXPECT_DOUBLE_EQ(r.capacity_qps, 100.0);
  EXPECT_NEAR(static_cast<double>(r.submitted), 500.0, 120.0);
}

TEST(DrainTest, CompletesWhenProgressArrives) {
  sim::Simulator sim;
  int64_t done = 0;
  for (int i = 1; i <= 5; ++i) sim.Schedule(Seconds(i), [&done] { ++done; });
  EXPECT_TRUE(DrainToCompletion(sim, [&done] { return done; }, 5));
  EXPECT_EQ(done, 5);
}

TEST(DrainTest, NoProgressAbortsEarlyWithDiagnostic) {
  // Nothing ever completes: the watchdog fires at the no-progress window
  // (well before the hard cap) and surfaces the caller's diagnostic.
  sim::Simulator sim;
  bool diag_called = false;
  ::testing::internal::CaptureStderr();
  const bool ok = DrainToCompletion(
      sim, [] { return int64_t{0}; }, 3, /*cap=*/Seconds(120),
      /*no_progress_abort=*/Seconds(10), [&diag_called] {
        diag_called = true;
        return std::string("backlog: node0=3(failed)");
      });
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(ok);
  EXPECT_TRUE(diag_called);
  EXPECT_NE(err.find("no completion progress"), std::string::npos);
  EXPECT_NE(err.find("backlog: node0=3(failed)"), std::string::npos);
  EXPECT_LT(sim.now(), Seconds(15));  // aborted, not capped at 120 s
}

TEST(DrainTest, SlowButSteadyProgressIsNeverAborted) {
  // One completion every 8 s against a 10 s no-progress window: the
  // watchdog resets on each completion and the drain runs to the end.
  sim::Simulator sim;
  int64_t done = 0;
  for (int i = 1; i <= 3; ++i) {
    sim.Schedule(Seconds(8 * i), [&done] { ++done; });
  }
  EXPECT_TRUE(DrainToCompletion(sim, [&done] { return done; }, 3,
                                /*cap=*/Seconds(120),
                                /*no_progress_abort=*/Seconds(10)));
  EXPECT_GE(sim.now(), Seconds(24));
}

}  // namespace
}  // namespace ecldb::experiment
