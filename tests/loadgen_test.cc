#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "experiment/cluster_trace.h"
#include "experiment/drain.h"
#include "experiment/experiment.h"
#include "experiment/loadgen_trace.h"
#include "loadgen/admission.h"
#include "loadgen/arrival.h"
#include "loadgen/loadgen.h"
#include "loadgen/slo.h"
#include "loadgen/traffic_shape.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/micro.h"
#include "workload/work_profiles.h"

namespace ecldb::loadgen {
namespace {

// ---------------------------------------------------------------------------
// Traffic shapes
// ---------------------------------------------------------------------------

TEST(LoadgenShapeTest, RegistryIsClosedAndSorted) {
  const std::vector<std::string_view> names = RegisteredTrafficShapes();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "diurnal");
  EXPECT_EQ(names[1], "flash_crowd");
  EXPECT_EQ(names[2], "regional_failover");
  EXPECT_EQ(names[3], "steady");
}

TEST(LoadgenShapeTest, UnknownShapeNameAborts) {
  ShapeSpec spec;
  spec.name = "flashcrowd";  // typo: must fail loudly, not run "steady"
  EXPECT_DEATH(MakeTrafficShape(spec), "unknown traffic shape");
}

TEST(LoadgenShapeTest, SteadyDefaultsToUnity) {
  const auto shape = MakeTrafficShape(ShapeSpec{});
  EXPECT_DOUBLE_EQ(shape->MultiplierAt(0), 1.0);
  EXPECT_DOUBLE_EQ(shape->MultiplierAt(Seconds(123)), 1.0);
}

TEST(LoadgenShapeTest, FlashCrowdRampsHoldsAndReturnsToOne) {
  ShapeSpec spec;
  spec.name = "flash_crowd";
  spec.magnitude = 10.0;
  spec.start = Seconds(50);
  spec.duration = Seconds(30);
  const auto shape = MakeTrafficShape(spec);
  EXPECT_DOUBLE_EQ(shape->MultiplierAt(Seconds(49)), 1.0);
  // Mid-window (past the 10 % ramp edges) holds the full magnitude.
  EXPECT_DOUBLE_EQ(shape->MultiplierAt(Seconds(65)), 10.0);
  // Half-way up the leading ramp.
  EXPECT_NEAR(shape->MultiplierAt(Seconds(50) + Millis(1500)), 5.5, 1e-9);
  EXPECT_DOUBLE_EQ(shape->MultiplierAt(Seconds(80)), 1.0);
}

TEST(LoadgenShapeTest, DiurnalHasUnitMeanAndRequestedRatio) {
  ShapeSpec spec;
  spec.name = "diurnal";
  spec.magnitude = 4.0;
  spec.duration = Seconds(180);
  const auto shape = MakeTrafficShape(spec);
  double lo = 1e9, hi = 0.0, sum = 0.0;
  const int samples = 1800;
  for (int i = 0; i < samples; ++i) {
    const double m = shape->MultiplierAt(Millis(100) * i);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
    sum += m;
  }
  EXPECT_NEAR(hi / lo, 4.0, 0.01);
  EXPECT_NEAR(sum / samples, 1.0, 0.01);
}

TEST(LoadgenShapeTest, RegionalFailoverStepsUpAndOptionallyBack) {
  ShapeSpec spec;
  spec.name = "regional_failover";
  spec.start = Seconds(10);
  const auto open_ended = MakeTrafficShape(spec);
  EXPECT_DOUBLE_EQ(open_ended->MultiplierAt(Seconds(9)), 1.0);
  EXPECT_DOUBLE_EQ(open_ended->MultiplierAt(Seconds(11)), 1.8);
  EXPECT_DOUBLE_EQ(open_ended->MultiplierAt(Seconds(10'000)), 1.8);
  spec.duration = Seconds(20);
  const auto bounded = MakeTrafficShape(spec);
  EXPECT_DOUBLE_EQ(bounded->MultiplierAt(Seconds(29)), 1.8);
  EXPECT_DOUBLE_EQ(bounded->MultiplierAt(Seconds(31)), 1.0);
}

TEST(LoadgenShapeTest, StackComposesMultiplicatively) {
  ShapeSpec steady2;
  steady2.magnitude = 2.0;
  ShapeSpec crowd;
  crowd.name = "flash_crowd";
  crowd.magnitude = 10.0;
  crowd.start = Seconds(50);
  crowd.duration = Seconds(30);
  const auto stacked =
      MakeTrafficShape(std::vector<ShapeSpec>{steady2, crowd});
  const auto crowd_only = MakeTrafficShape(crowd);
  for (const SimTime t : {Seconds(0), Seconds(55), Seconds(65), Seconds(90)}) {
    EXPECT_DOUBLE_EQ(stacked->MultiplierAt(t),
                     2.0 * crowd_only->MultiplierAt(t));
  }
  // Empty stack = steady 1.0.
  const auto empty = MakeTrafficShape(std::vector<ShapeSpec>{});
  EXPECT_DOUBLE_EQ(empty->MultiplierAt(Seconds(7)), 1.0);
}

// ---------------------------------------------------------------------------
// Arrival processes
// ---------------------------------------------------------------------------

/// Drives `proc` for `horizon` of trace time and bins arrivals per second.
std::vector<int64_t> BinArrivals(ArrivalProcess& proc, SimDuration horizon) {
  std::vector<int64_t> bins(static_cast<size_t>(ToSeconds(horizon)), 0);
  SimTime t = 0;
  while (t < horizon) {
    const ArrivalProcess::Event e = proc.Next(t);
    t += e.gap;
    if (e.is_arrival && t < horizon) {
      ++bins[static_cast<size_t>(ToSeconds(t))];
    }
  }
  return bins;
}

double Mean(const std::vector<int64_t>& bins) {
  double sum = 0.0;
  for (int64_t b : bins) sum += static_cast<double>(b);
  return sum / static_cast<double>(bins.size());
}

/// Index of dispersion (variance / mean) of per-second counts: ~1 for
/// Poisson, above 1 for positively correlated (bursty) arrivals.
double Dispersion(const std::vector<int64_t>& bins) {
  const double mean = Mean(bins);
  double var = 0.0;
  for (int64_t b : bins) {
    const double d = static_cast<double>(b) - mean;
    var += d * d;
  }
  var /= static_cast<double>(bins.size() - 1);
  return var / mean;
}

TEST(LoadgenArrivalTest, PoissonMeanAndDispersionMatchTheory) {
  ArrivalParams params;
  params.num_users = 1000;
  params.per_user_qps = 1.0;  // aggregate 1000 qps
  const auto shape = MakeTrafficShape(ShapeSpec{});
  ArrivalProcess proc(params, shape.get(), 99);
  const std::vector<int64_t> bins = BinArrivals(proc, Seconds(60));
  // Mean of 60 per-second counts: sigma = sqrt(1000/60) ~ 4.1.
  EXPECT_NEAR(Mean(bins), 1000.0, 15.0);
  // Poisson index of dispersion is 1 (chi-square bounds, 59 dof).
  EXPECT_GT(Dispersion(bins), 0.55);
  EXPECT_LT(Dispersion(bins), 1.65);
}

TEST(LoadgenArrivalTest, MmppKeepsTheMeanButIsBurstier) {
  ArrivalParams params;
  params.num_users = 1000;
  params.per_user_qps = 1.0;
  params.kind = ArrivalKind::kMmpp;  // defaults: {0.4, 1.6} @ 0.2 Hz
  const auto shape = MakeTrafficShape(ShapeSpec{});
  ArrivalProcess proc(params, shape.get(), 99);
  const std::vector<int64_t> bins = BinArrivals(proc, Seconds(120));
  // Uniform stationary distribution over {0.4, 1.6} keeps mean rate 1000.
  EXPECT_NEAR(Mean(bins), 1000.0, 100.0);
  // Modulation variance dominates: far over-dispersed vs Poisson.
  EXPECT_GT(Dispersion(bins), 5.0);
}

TEST(LoadgenArrivalTest, SameSeedSameStreamDifferentSeedDiffers) {
  ArrivalParams params;
  params.num_users = 100;
  params.per_user_qps = 1.0;
  params.kind = ArrivalKind::kMmpp;
  const auto shape = MakeTrafficShape(ShapeSpec{});
  auto draw = [&](uint64_t seed) {
    ArrivalProcess proc(params, shape.get(), seed);
    std::vector<std::pair<SimDuration, bool>> events;
    SimTime t = 0;
    for (int i = 0; i < 1000; ++i) {
      const ArrivalProcess::Event e = proc.Next(t);
      t += e.gap;
      events.emplace_back(e.gap, e.is_arrival);
    }
    return events;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));
}

TEST(LoadgenArrivalTest, RateScaleScalesTheProcess) {
  ArrivalParams params;
  params.num_users = 1000;
  params.per_user_qps = 1.0;
  const auto shape = MakeTrafficShape(ShapeSpec{});
  ArrivalProcess proc(params, shape.get(), 99);
  proc.set_rate_scale(2.5);
  EXPECT_DOUBLE_EQ(proc.RateAt(0), 2500.0);
  EXPECT_DOUBLE_EQ(proc.NominalRateAt(0), 2500.0);
}

TEST(LoadgenArrivalTest, DormantTenantPollsWithoutArrivals) {
  ArrivalParams params;
  params.num_users = 1000;
  params.per_user_qps = 1.0;
  const auto shape = MakeTrafficShape(ShapeSpec{});
  ArrivalProcess proc(params, shape.get(), 99);
  proc.set_rate_scale(0.0);  // night trough: rate 0
  for (int i = 0; i < 100; ++i) {
    const ArrivalProcess::Event e = proc.Next(Seconds(1));
    EXPECT_FALSE(e.is_arrival);
    EXPECT_EQ(e.gap, Millis(50));  // re-checks the shape, never sleeps past it
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(LoadgenAdmissionTest, TokenBucketEnforcesRateAndBurst) {
  TokenBucket bucket(/*rate_qps=*/10.0, /*burst=*/5.0);
  int admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (bucket.TryTake(0)) ++admitted;
  }
  EXPECT_EQ(admitted, 5);  // burst depth
  admitted = 0;
  for (int i = 0; i < 20; ++i) {
    if (bucket.TryTake(Seconds(1))) ++admitted;
  }
  EXPECT_EQ(admitted, 5);  // one second of refill, capped at burst
}

TEST(LoadgenAdmissionTest, DisabledBucketAlwaysAdmits) {
  TokenBucket bucket(/*rate_qps=*/0.0, /*burst=*/0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.TryTake(0));
}

/// Runs `n` arrivals of each class at a fixed pressure and returns the
/// per-class shed counts.
std::array<int64_t, kNumSloClasses> ShedAtPressure(double pressure, int n) {
  AdmissionController adm{AdmissionParams{}};
  adm.SetPressureSource([pressure] { return pressure; });
  Rng rng(4711);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < kNumSloClasses; ++c) {
      adm.Admit(static_cast<SloClass>(c), Seconds(1), rng);
    }
  }
  return {adm.shed(SloClass::kPremium), adm.shed(SloClass::kStandard),
          adm.shed(SloClass::kBestEffort)};
}

TEST(LoadgenAdmissionTest, PressureDegradesBestEffortFirstPremiumNever) {
  // Below every onset: nobody sheds.
  auto shed = ShedAtPressure(0.40, 2000);
  EXPECT_EQ(shed[0], 0);
  EXPECT_EQ(shed[1], 0);
  EXPECT_EQ(shed[2], 0);
  // Between the best-effort onset (0.45) and the standard onset (0.70):
  // only the scavenger tier pays, at ~50 % [(0.6-0.45)/(0.75-0.45)].
  shed = ShedAtPressure(0.60, 2000);
  EXPECT_EQ(shed[0], 0);
  EXPECT_EQ(shed[1], 0);
  EXPECT_NEAR(static_cast<double>(shed[2]), 1000.0, 100.0);
  // Saturated: standard and best-effort shed fully, premium still never
  // (its onset of 1.1 sits above the pressure range).
  shed = ShedAtPressure(1.0, 2000);
  EXPECT_EQ(shed[0], 0);
  EXPECT_EQ(shed[1], 2000);
  EXPECT_EQ(shed[2], 2000);
}

TEST(LoadgenAdmissionTest, RecentShedFractionCoversOnlyTheWindow) {
  AdmissionParams params;  // shed_window = 3 s
  AdmissionController adm(params);
  double pressure = 1.0;
  adm.SetPressureSource([&pressure] { return pressure; });
  Rng rng(1);
  for (int i = 0; i < 100; ++i) adm.Admit(SloClass::kBestEffort, Seconds(1), rng);
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(1)), 1.0);
  EXPECT_NEAR(adm.RecentShedQps(Seconds(1)), 100.0 / 3.0, 1e-9);
  // The refusals age out of the window; fresh admits dominate.
  pressure = 0.0;
  for (int i = 0; i < 10; ++i) adm.Admit(SloClass::kBestEffort, Seconds(10), rng);
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(10)), 0.0);
  EXPECT_EQ(adm.total_shed(), 100);
  EXPECT_EQ(adm.total_admitted(), 10);
  adm.ResetRunStats();
  EXPECT_EQ(adm.total_shed(), 0);
  EXPECT_EQ(adm.total_admitted(), 0);
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(10)), 0.0);
}

TEST(LoadgenAdmissionTest, ShedWindowAgesBucketsAtExactBoundaries) {
  // One admit just below the t=2s bucket edge, one shed exactly on it:
  // they land in adjacent 1-second buckets and age out of the 3 s window
  // one second apart, with the transition happening exactly at the
  // boundary instant (start + 1s <= now - window), not a tick later.
  AdmissionParams params;  // shed_window = 3 s
  AdmissionController adm(params);
  double pressure = 0.0;
  adm.SetPressureSource([&pressure] { return pressure; });
  Rng rng(7);
  adm.Admit(SloClass::kBestEffort, Seconds(2) - 1, rng);  // bucket [1, 2)
  pressure = 1.0;
  adm.Admit(SloClass::kBestEffort, Seconds(2), rng);  // bucket [2, 3)

  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(5) - 1), 0.5);
  // At exactly t=5s the [1,2) bucket leaves the 3 s window; the shed-only
  // [2,3) bucket remains.
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(5)), 1.0);
  EXPECT_NEAR(adm.RecentShedQps(Seconds(5)), 1.0 / 3.0, 1e-12);
  // At exactly t=6s the window is empty again.
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(6)), 0.0);
  EXPECT_DOUBLE_EQ(adm.RecentShedQps(Seconds(6)), 0.0);
  // Lifetime counters are unaffected by window aging.
  EXPECT_EQ(adm.total_admitted(), 1);
  EXPECT_EQ(adm.total_shed(), 1);
}

TEST(LoadgenAdmissionTest, ZeroArrivalWindowReportsZeroNotNan) {
  AdmissionController adm{AdmissionParams{}};
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(0), 0.0);
  EXPECT_DOUBLE_EQ(adm.RecentShedFraction(Seconds(100)), 0.0);
  EXPECT_DOUBLE_EQ(adm.RecentShedQps(Seconds(100)), 0.0);
}

TEST(LoadgenArrivalTest, MmppSwitchOnShapeEdgeStaysDeterministic) {
  // An MMPP chain switching rapidly while the flash-crowd shape crosses
  // its start/end edges: the (gap, is_arrival, state) stream must be a
  // pure function of the seed, with the shape multiplier read at draw
  // time — including draws landing exactly on an edge.
  ShapeSpec crowd;
  crowd.name = "flash_crowd";
  crowd.magnitude = 5.0;
  crowd.start = Seconds(10);
  crowd.duration = Seconds(10);
  const std::unique_ptr<TrafficShape> shape = MakeTrafficShape(crowd);

  ArrivalParams params;
  params.num_users = 100;
  params.per_user_qps = 1.0;  // 100 qps nominal
  params.kind = ArrivalKind::kMmpp;
  params.mmpp.state_multipliers = {0.4, 1.6};
  params.mmpp.switch_rate_hz = 50.0;  // many switches across the edges

  auto drive = [&](std::vector<std::pair<SimDuration, int>>* events) {
    ArrivalProcess p(params, shape.get(), /*seed=*/99);
    int switches = 0;
    // Exact-edge probes: the rate at the crowd's first instant is the
    // pre-ramp base rate (ramp level 0), at its end instant the crowd is
    // over, and both include the current MMPP state multiplier.
    const double mult =
        params.mmpp.state_multipliers[static_cast<size_t>(p.mmpp_state())];
    EXPECT_DOUBLE_EQ(p.RateAt(Seconds(10)), 100.0 * mult);
    EXPECT_DOUBLE_EQ(p.RateAt(Seconds(20)), 100.0 * mult);
    EXPECT_DOUBLE_EQ(p.NominalRateAt(Seconds(15)), 500.0);  // crowd peak
    SimTime t = FromSeconds(9.9);
    while (t < FromSeconds(20.1)) {
      const ArrivalProcess::Event e = p.Next(t);
      if (!e.is_arrival) ++switches;
      t += e.gap;
      events->push_back({e.gap, e.is_arrival ? 1 : 0});
      events->push_back({t, p.mmpp_state()});
    }
    EXPECT_GT(switches, 0);
  };
  std::vector<std::pair<SimDuration, int>> a, b;
  drive(&a);
  drive(&b);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// SLO accounting
// ---------------------------------------------------------------------------

TEST(LoadgenSloTest, DeadlineViolationsAndTailObjective) {
  SloTracker slo{SloParams{}};  // premium: 99.9 % under 100 ms
  slo.RecordCompletion(SloClass::kPremium, 0, Millis(50));
  EXPECT_EQ(slo.violations(SloClass::kPremium), 0);
  EXPECT_TRUE(slo.SloMet(SloClass::kPremium));
  slo.RecordCompletion(SloClass::kPremium, 0, Millis(150));
  EXPECT_EQ(slo.violations(SloClass::kPremium), 1);
  EXPECT_EQ(slo.completed(SloClass::kPremium), 2);
  // p99.9 of {50, 150} is the max: objective broken.
  EXPECT_FALSE(slo.SloMet(SloClass::kPremium));
}

TEST(LoadgenSloTest, TailPercentileToleratesItsViolationBudget) {
  SloTracker slo{SloParams{}};  // best-effort: 95 % under 1000 ms
  for (int i = 0; i < 99; ++i) {
    slo.RecordCompletion(SloClass::kBestEffort, 0, Millis(10));
  }
  slo.RecordCompletion(SloClass::kBestEffort, 0, Seconds(5));
  EXPECT_EQ(slo.violations(SloClass::kBestEffort), 1);
  // One outlier in a hundred sits inside the 5 % budget: p95 is still 10 ms.
  EXPECT_NEAR(slo.TailLatencyMs(SloClass::kBestEffort), 10.0, 1.0);
  EXPECT_TRUE(slo.SloMet(SloClass::kBestEffort));
  EXPECT_EQ(slo.total_completed(), 100);
  slo.ResetRunStats();
  EXPECT_EQ(slo.total_completed(), 0);
  EXPECT_TRUE(slo.SloMet(SloClass::kBestEffort));  // vacuously
}

TEST(LoadgenSloTest, ClassNamesAreStable) {
  EXPECT_EQ(SloClassName(SloClass::kPremium), "premium");
  EXPECT_EQ(SloClassName(SloClass::kStandard), "standard");
  EXPECT_EQ(SloClassName(SloClass::kBestEffort), "best_effort");
}

// ---------------------------------------------------------------------------
// Drain helper
// ---------------------------------------------------------------------------

TEST(LoadgenDrainTest, RunsUntilCompletionsCatchUp) {
  sim::Simulator simulator;
  int64_t completed = 0;
  simulator.Schedule(Seconds(5), [&completed] { completed = 3; });
  EXPECT_TRUE(experiment::DrainToCompletion(
      simulator, [&completed] { return completed; }, 3));
  EXPECT_GE(simulator.now(), Seconds(5));
}

TEST(LoadgenDrainTest, GivesUpAtTheCapWhenQueriesAreLost) {
  sim::Simulator simulator;
  EXPECT_FALSE(experiment::DrainToCompletion(
      simulator, [] { return int64_t{0}; }, 1, Seconds(2)));
  EXPECT_LE(simulator.now(), Seconds(3));
}

// ---------------------------------------------------------------------------
// End-to-end single-node runs
// ---------------------------------------------------------------------------

experiment::WorkloadFactory KvFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    params.batch_gets = 4'000;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

experiment::SloRunOptions SmallSloOptions() {
  experiment::SloRunOptions options;
  options.run.prime_duration = Seconds(5);
  options.loadgen.duration = Seconds(10);
  loadgen::TenantSpec premium;
  premium.name = "premium";
  premium.slo_class = SloClass::kPremium;
  premium.weight = 0.4;
  premium.arrival.num_users = 200'000;
  premium.arrival.per_user_qps = 0.01;
  loadgen::TenantSpec besteff;
  besteff.name = "besteff";
  besteff.slo_class = SloClass::kBestEffort;
  besteff.weight = 0.6;
  besteff.arrival.num_users = 2'000'000;
  besteff.arrival.per_user_qps = 0.001;
  besteff.arrival.kind = ArrivalKind::kMmpp;
  options.loadgen.tenants = {premium, besteff};
  options.total_load = 0.3;
  return options;
}

TEST(LoadgenRunTest, FastForwardIsBitIdentical) {
  experiment::SloRunOptions options = SmallSloOptions();
  options.run.fast_forward = true;
  const experiment::SloRunResult ff = RunSloExperiment(KvFactory(), options);
  options.run.fast_forward = false;
  const experiment::SloRunResult slow = RunSloExperiment(KvFactory(), options);
  EXPECT_EQ(ff.arrivals, slow.arrivals);
  EXPECT_EQ(ff.admitted, slow.admitted);
  EXPECT_EQ(ff.shed, slow.shed);
  EXPECT_EQ(ff.completed, slow.completed);
  EXPECT_DOUBLE_EQ(ff.energy_j, slow.energy_j);
  for (int c = 0; c < kNumSloClasses; ++c) {
    EXPECT_DOUBLE_EQ(ff.classes[static_cast<size_t>(c)].tail_ms,
                     slow.classes[static_cast<size_t>(c)].tail_ms);
    EXPECT_EQ(ff.classes[static_cast<size_t>(c)].violations,
              slow.classes[static_cast<size_t>(c)].violations);
  }
  ASSERT_EQ(ff.series.size(), slow.series.size());
  for (size_t i = 0; i < ff.series.size(); ++i) {
    EXPECT_DOUBLE_EQ(ff.series[i].power_w, slow.series[i].power_w);
    EXPECT_DOUBLE_EQ(ff.series[i].offered_qps, slow.series[i].offered_qps);
  }
}

TEST(LoadgenRunTest, CompletionsBalanceAndClassesAreServed) {
  const experiment::SloRunResult r =
      RunSloExperiment(KvFactory(), SmallSloOptions());
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.arrivals, 0);
  EXPECT_EQ(r.arrivals, r.admitted + r.shed);
  EXPECT_EQ(r.completed, r.admitted);
  EXPECT_GT(r.classes[0].completed, 0);  // premium
  EXPECT_GT(r.classes[2].completed, 0);  // best-effort
  EXPECT_EQ(r.classes[1].completed, 0);  // no standard tenant configured
  EXPECT_GT(r.classes[0].mean_ms, 0.0);
}

TEST(LoadgenRunTest, OverloadShedsScavengersBeforePremium) {
  experiment::SloRunOptions options = SmallSloOptions();
  options.total_load = 2.5;  // far past capacity: pressure saturates
  const experiment::SloRunResult r = RunSloExperiment(KvFactory(), options);
  EXPECT_GT(r.shed, 0);
  EXPECT_EQ(r.classes[0].shed, 0);  // premium never pressure-shed
  EXPECT_GT(r.classes[2].shed, 0);
  // The same trace with admission disabled admits every arrival; the
  // backlog it builds shows up as a far worse premium latency (the energy
  // side of the trade needs a trace long enough for the ECL to narrow —
  // that is pinned by bench/ablation_slo_tiers).
  options.admission_enabled = false;
  const experiment::SloRunResult all = RunSloExperiment(KvFactory(), options);
  EXPECT_EQ(all.shed, 0);
  EXPECT_EQ(all.arrivals, r.arrivals);  // admission never perturbs arrivals
  EXPECT_GE(all.energy_j, r.energy_j);
  EXPECT_GT(all.classes[0].mean_ms, 2.0 * r.classes[0].mean_ms);
}

TEST(LoadgenRunTest, TelemetryExportIsDeterministicAndComplete) {
  auto run_with_telemetry = [] {
    telemetry::TelemetryParams tp;
    tp.enabled = true;
    telemetry::Telemetry tel(tp);
    experiment::SloRunOptions options = SmallSloOptions();
    options.run.telemetry = &tel;
    return RunSloExperiment(KvFactory(), options).telemetry_dump;
  };
  const std::string dump = run_with_telemetry();
  // The traffic subsystem's names are all present...
  for (const char* name :
       {"loadgen/arrivals", "loadgen/submitted", "admission/admitted",
        "admission/shed", "admission/premium/admitted",
        "admission/best_effort/shed", "admission/shed_fraction",
        "slo/premium/violations", "slo/best_effort/violations",
        "loadgen/premium/latency_ms", "loadgen/best_effort/latency_ms"}) {
    EXPECT_NE(dump.find(name), std::string::npos) << name;
  }
  // ...and the export is reproducible run over run.
  EXPECT_EQ(dump, run_with_telemetry());
}

TEST(LoadgenRunTest, NoLoadgenMetricsLeakIntoClassicRuns) {
  telemetry::TelemetryParams tp;
  tp.enabled = true;
  telemetry::Telemetry tel(tp);
  workload::ConstantProfile profile(0.4, Seconds(5));
  experiment::RunOptions options;
  options.prime_duration = Seconds(3);
  options.telemetry = &tel;
  const experiment::RunResult r = experiment::RunLoadExperiment(
      [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
        return std::make_unique<workload::MicroWorkload>(
            e, workload::ComputeBound(), 1e6, 2);
      },
      profile, options);
  for (const char* prefix : {"loadgen/", "admission/", "slo/"}) {
    EXPECT_EQ(r.telemetry_dump.find(prefix), std::string::npos) << prefix;
  }
}

// ---------------------------------------------------------------------------
// Cluster entry routing
// ---------------------------------------------------------------------------

experiment::ClusterWorkloadFactory ClusterKvFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    params.num_keys = 16'777'216 * 2;
    params.batch_gets = 16'000;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

experiment::ClusterRunOptions SmallClusterOptions(bool any_node) {
  experiment::ClusterRunOptions options;
  // A slow fabric stretches message flight times so placement changes can
  // land while submissions are on the wire — the stale-forward window.
  hwsim::NetworkModelParams network;
  network.base_latency_us = 2000.0;
  options.cluster = hwsim::ClusterParams::Homogeneous(
      2, hwsim::ClusterNodeParams{}, network);
  options.prime_duration = Seconds(8);
  options.cluster_ecl.enabled = true;
  options.cluster_ecl.interval = Seconds(1);
  options.cluster_ecl.migrations_per_tick = 12;
  options.cluster_ecl.spread_migrations_per_tick = 24;
  options.cluster_ecl.min_on_time = Seconds(5);
  options.any_node_entry = any_node;
  return options;
}

TEST(LoadgenClusterTest, AnyNodeEntryForwardsAndStaysDeterministic) {
  // Load steps down hard so consolidation migrates partitions and powers a
  // node off mid-trace while traffic keeps entering at random nodes.
  const workload::StepProfile profile(
      {{0, 0.5}, {Seconds(10), 0.05}}, Seconds(30));
  const experiment::ClusterRunResult home = RunClusterExperiment(
      ClusterKvFactory(), profile, SmallClusterOptions(false));
  const experiment::ClusterRunResult any = RunClusterExperiment(
      ClusterKvFactory(), profile, SmallClusterOptions(true));
  // Home routing only crosses the network around migrations; any-node
  // routing crosses it on roughly half of every 2-node submission.
  EXPECT_GT(any.remote_sends, 4 * std::max<int64_t>(home.remote_sends, 1));
  // Re-homed partitions catch in-flight messages: the stale-epoch forward
  // path actually runs under placement churn.
  EXPECT_GT(any.node_migrations, 0);
  EXPECT_GT(any.stale_forwards, 0);
  EXPECT_EQ(any.completed, any.submitted);
  // Same options, same seeds, same simulation — bit for bit.
  const experiment::ClusterRunResult again = RunClusterExperiment(
      ClusterKvFactory(), profile, SmallClusterOptions(true));
  EXPECT_EQ(again.submitted, any.submitted);
  EXPECT_EQ(again.remote_sends, any.remote_sends);
  EXPECT_EQ(again.stale_forwards, any.stale_forwards);
  EXPECT_DOUBLE_EQ(again.energy_j, any.energy_j);
}

}  // namespace
}  // namespace ecldb::loadgen
