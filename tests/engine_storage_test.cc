#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "engine/column.h"
#include "engine/database.h"
#include "engine/hash_index.h"
#include "engine/partition.h"
#include "engine/placement.h"
#include "engine/table.h"

namespace ecldb::engine {
namespace {

TEST(ColumnTest, IntColumnRoundTrip) {
  Column c("k", ColumnType::kInt64);
  c.AppendInt(5);
  c.AppendInt(-3);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt(0), 5);
  EXPECT_EQ(c.GetInt(1), -3);
  c.SetInt(1, 7);
  EXPECT_EQ(c.GetInt(1), 7);
}

TEST(ColumnTest, DoubleColumnRoundTrip) {
  Column c("d", ColumnType::kDouble);
  c.AppendDouble(1.5);
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 1.5);
  c.SetDouble(0, 2.5);
  EXPECT_DOUBLE_EQ(c.GetDouble(0), 2.5);
}

TEST(ColumnTest, StringDictionaryDeduplicates) {
  Column c("s", ColumnType::kString);
  c.AppendString("ASIA");
  c.AppendString("EUROPE");
  c.AppendString("ASIA");
  EXPECT_EQ(c.GetString(0), "ASIA");
  EXPECT_EQ(c.GetString(2), "ASIA");
  EXPECT_EQ(c.GetStringCode(0), c.GetStringCode(2));
  EXPECT_NE(c.GetStringCode(0), c.GetStringCode(1));
  EXPECT_EQ(c.LookupStringCode("EUROPE"), c.GetStringCode(1));
  EXPECT_EQ(c.LookupStringCode("MARS"), -1);
}

TEST(ColumnTest, MemoryAccounting) {
  Column c("k", ColumnType::kInt64);
  for (int i = 0; i < 100; ++i) c.AppendInt(i);
  EXPECT_GE(c.MemoryBytes(), 100 * sizeof(int64_t));
}

TEST(SchemaTest, IndexOf) {
  Schema s({{"a", ColumnType::kInt64}, {"b", ColumnType::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);
}

TEST(TableTest, AppendAndReadRows) {
  Table t("t", Schema({{"id", ColumnType::kInt64},
                       {"name", ColumnType::kString},
                       {"score", ColumnType::kDouble}}));
  EXPECT_EQ(t.AppendRow({int64_t{1}, std::string("x"), 1.5}), 0u);
  EXPECT_EQ(t.AppendRow({int64_t{2}, std::string("y"), 2.5}), 1u);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column("id")->GetInt(1), 2);
  EXPECT_EQ(t.column("name")->GetString(0), "x");
  EXPECT_DOUBLE_EQ(t.column(2)->GetDouble(1), 2.5);
}

TEST(TableTest, DeleteMarksTombstone) {
  Table t("t", Schema({{"id", ColumnType::kInt64}}));
  t.AppendRow({int64_t{1}});
  t.AppendRow({int64_t{2}});
  EXPECT_FALSE(t.IsDeleted(0));
  t.DeleteRow(0);
  EXPECT_TRUE(t.IsDeleted(0));
  EXPECT_FALSE(t.IsDeleted(1));
  EXPECT_EQ(t.num_deleted(), 1u);
  t.DeleteRow(0);  // idempotent
  EXPECT_EQ(t.num_deleted(), 1u);
}

TEST(HashIndexTest, InsertFindErase) {
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(42, 7));
  EXPECT_FALSE(idx.Insert(42, 8));  // duplicate
  ASSERT_TRUE(idx.Find(42).has_value());
  EXPECT_EQ(*idx.Find(42), 7u);
  EXPECT_FALSE(idx.Find(43).has_value());
  EXPECT_TRUE(idx.Erase(42));
  EXPECT_FALSE(idx.Erase(42));
  EXPECT_FALSE(idx.Find(42).has_value());
  EXPECT_EQ(idx.size(), 0u);
}

TEST(HashIndexTest, UpsertOverwrites) {
  HashIndex idx;
  idx.Upsert(1, 10);
  idx.Upsert(1, 20);
  EXPECT_EQ(*idx.Find(1), 20u);
  EXPECT_EQ(idx.size(), 1u);
}

TEST(HashIndexTest, GrowsBeyondInitialCapacity) {
  HashIndex idx(16);
  for (int64_t k = 0; k < 10000; ++k) ASSERT_TRUE(idx.Insert(k, static_cast<uint32_t>(k)));
  EXPECT_EQ(idx.size(), 10000u);
  for (int64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(idx.Find(k).has_value());
    EXPECT_EQ(*idx.Find(k), static_cast<uint32_t>(k));
  }
}

TEST(HashIndexTest, TombstoneSlotsReused) {
  HashIndex idx(16);
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(idx.Insert(round, 1));
    ASSERT_TRUE(idx.Erase(round));
  }
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_LE(idx.capacity(), 64u);  // churn must not balloon the table
}

TEST(HashIndexTest, ChurnKeepsProbeLengthBounded) {
  // Insert/erase churn over a stable live set: tombstones must be swept
  // (rehash once they exceed 25 % of slots) so probe chains stay short
  // instead of degrading toward full-table scans.
  HashIndex idx;
  constexpr int64_t kLive = 4096;
  for (int64_t k = 0; k < kLive; ++k) {
    ASSERT_TRUE(idx.Insert(k, static_cast<uint32_t>(k)));
  }
  Rng rng(123);
  int64_t next_key = kLive;
  std::vector<int64_t> live;
  for (int64_t k = 0; k < kLive; ++k) live.push_back(k);
  for (int round = 0; round < 20000; ++round) {
    const size_t victim = rng.NextBounded(live.size());
    ASSERT_TRUE(idx.Erase(live[victim]));
    live[victim] = next_key++;
    ASSERT_TRUE(idx.Insert(live[victim], 0));
    // Invariant after every operation, not just at the end.
    ASSERT_LE(idx.tombstones() * 4, idx.capacity());
  }
  EXPECT_EQ(idx.size(), static_cast<size_t>(kLive));

  // Probe length of fresh lookups over the live set stays near 1.
  idx.ResetProbeStats();
  for (int64_t k : live) ASSERT_TRUE(idx.Find(k).has_value());
  EXPECT_LT(idx.MeanProbeLength(), 2.0);
}

TEST(HashIndexTest, MeanProbeLengthSafeWithoutSamples) {
  HashIndex idx;
  EXPECT_EQ(idx.MeanProbeLength(), 0.0);
  idx.ResetProbeStats();
  EXPECT_EQ(idx.MeanProbeLength(), 0.0);
}

TEST(HashIndexTest, ReservePresizesForBulkLoad) {
  HashIndex idx;
  idx.Reserve(10000);
  const size_t cap = idx.capacity();
  EXPECT_GE(cap * 7, 10000u * 10u / 2u);  // load factor headroom
  for (int64_t k = 0; k < 10000; ++k) {
    ASSERT_TRUE(idx.Insert(k, static_cast<uint32_t>(k)));
  }
  EXPECT_EQ(idx.capacity(), cap);  // no rehash during the load
  for (int64_t k = 0; k < 10000; ++k) ASSERT_TRUE(idx.Find(k).has_value());
}

TEST(HashIndexTest, RandomizedAgainstStdUnorderedMap) {
  HashIndex idx;
  std::unordered_map<int64_t, uint32_t> oracle;
  Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    const int64_t key = static_cast<int64_t>(rng.NextBounded(2000));
    switch (rng.NextBounded(3)) {
      case 0: {
        const uint32_t row = static_cast<uint32_t>(rng.NextBounded(1 << 20));
        const bool inserted = idx.Insert(key, row);
        EXPECT_EQ(inserted, oracle.emplace(key, row).second);
        break;
      }
      case 1: {
        EXPECT_EQ(idx.Erase(key), oracle.erase(key) > 0);
        break;
      }
      default: {
        const auto found = idx.Find(key);
        const auto it = oracle.find(key);
        EXPECT_EQ(found.has_value(), it != oracle.end());
        if (found && it != oracle.end()) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
  }
  EXPECT_EQ(idx.size(), oracle.size());
}

TEST(PartitionTest, TablesAndIndexes) {
  Partition p(3);
  EXPECT_EQ(p.id(), 3);
  Table* t = p.AddTable("kv", Schema({{"k", ColumnType::kInt64}}));
  EXPECT_EQ(p.table("kv"), t);
  HashIndex* i = p.AddIndex("kv_pk");
  EXPECT_EQ(p.index("kv_pk"), i);
  EXPECT_TRUE(p.HasIndex("kv_pk"));
  EXPECT_FALSE(p.HasIndex("other"));
  t->AppendRow({int64_t{9}});
  EXPECT_GT(p.MemoryBytes(), 0u);
}

TEST(PlacementMapTest, PartitionHomesBlockwise) {
  PlacementMap placement(48, 2);
  EXPECT_EQ(placement.num_partitions(), 48);
  for (int p = 0; p < 24; ++p) EXPECT_EQ(placement.HomeOf(p), 0);
  for (int p = 24; p < 48; ++p) EXPECT_EQ(placement.HomeOf(p), 1);
  const std::vector<SocketId> home = placement.HomeMap();
  EXPECT_EQ(home.size(), 48u);
  EXPECT_EQ(home[0], 0);
  EXPECT_EQ(home[47], 1);
}

TEST(DatabaseTest, KeyPartitioningIsStableAndCovering) {
  Database db(16);
  std::vector<int> hits(16, 0);
  for (int64_t k = 0; k < 10000; ++k) {
    const PartitionId p = db.PartitionForKey(k);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 16);
    EXPECT_EQ(p, db.PartitionForKey(k));  // stable
    ++hits[static_cast<size_t>(p)];
  }
  for (int h : hits) EXPECT_GT(h, 300);  // roughly uniform
}

TEST(DatabaseTest, CreateTableInEveryPartition) {
  Database db(4);
  db.CreateTable("t", Schema({{"k", ColumnType::kInt64}}));
  db.CreateIndex("t_pk");
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(db.partition(p)->table("t")->num_rows(), 0u);
    EXPECT_TRUE(db.partition(p)->HasIndex("t_pk"));
  }
}

}  // namespace
}  // namespace ecldb::engine
