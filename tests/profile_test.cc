#include <gtest/gtest.h>

#include <algorithm>

#include "hwsim/machine.h"
#include "profile/config_generator.h"
#include "profile/energy_profile.h"
#include "profile/evaluator.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::profile {
namespace {

using hwsim::FrequencyTable;
using hwsim::Topology;

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest()
      : topo_(Topology::HaswellEp2S()),
        freqs_(FrequencyTable::HaswellEp()),
        gen_(topo_, freqs_) {}

  Topology topo_;
  FrequencyTable freqs_;
  ConfigGenerator gen_;
};

TEST_F(GeneratorTest, CoreFreqSamplesIncludeExtremesAndTurbo) {
  const std::vector<double> f = gen_.CoreFreqSamples(4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f.front(), 1.2);
  EXPECT_DOUBLE_EQ(f[2], 2.6);
  EXPECT_DOUBLE_EQ(f.back(), 3.1);
}

TEST_F(GeneratorTest, UncoreSamplesSpanRange) {
  const std::vector<double> f = gen_.UncoreFreqSamples(3);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f[0], 1.2);
  EXPECT_DOUBLE_EQ(f[1], 2.1);
  EXPECT_DOUBLE_EQ(f[2], 3.0);
}

TEST_F(GeneratorTest, PaperDefaultGroupsHyperThreads) {
  // Paper Section 4.2: 24 threads x 4 core freqs x 3 uncore freqs = 288
  // exceeds c_max = 256, so HyperThread siblings are grouped: 144 configs
  // plus the idle configuration.
  GeneratorParams p;  // 4 / 3 / off / 256
  EXPECT_EQ(gen_.GroupSizeFor(p), 2);
  const std::vector<Configuration> configs = gen_.Generate(p);
  EXPECT_EQ(configs.size(), 145u);
  EXPECT_FALSE(configs[0].hw.AnyActive());  // idle first
}

TEST_F(GeneratorTest, PerThreadGranularityWhenBudgetAllows) {
  GeneratorParams p;
  p.c_max = 400;
  EXPECT_EQ(gen_.GroupSizeFor(p), 1);
  EXPECT_EQ(gen_.Generate(p).size(), 1u + 24u * 4u * 3u);
}

TEST_F(GeneratorTest, MixedFrequenciesAddConfigs) {
  GeneratorParams base;  // 144
  GeneratorParams mixed = base;
  mixed.mixed_core_freqs = true;
  const auto plain = gen_.Generate(base);
  const auto with_mixed = gen_.Generate(mixed);
  EXPECT_GT(with_mixed.size(), plain.size());
  EXPECT_LE(static_cast<int>(with_mixed.size()), mixed.c_max + 1);
  // Some config actually has two distinct active core frequencies.
  bool found_mixed = false;
  for (const Configuration& c : with_mixed) {
    double lo = 1e9, hi = 0.0;
    for (int core = 0; core < topo_.cores_per_socket; ++core) {
      if (!c.hw.CoreActive(topo_, core)) continue;
      lo = std::min(lo, c.hw.core_freq_ghz[static_cast<size_t>(core)]);
      hi = std::max(hi, c.hw.core_freq_ghz[static_cast<size_t>(core)]);
    }
    if (hi > lo) found_mixed = true;
  }
  EXPECT_TRUE(found_mixed);
}

TEST_F(GeneratorTest, ConfigurationsAreUnique) {
  GeneratorParams p;
  const auto configs = gen_.Generate(p);
  for (size_t i = 0; i < configs.size(); ++i) {
    for (size_t j = i + 1; j < configs.size(); ++j) {
      EXPECT_FALSE(configs[i].hw == configs[j].hw)
          << "duplicate configs " << i << " and " << j;
    }
  }
}

TEST_F(GeneratorTest, BudgetRespectedForLargeRequests) {
  GeneratorParams p;
  p.n_core_freqs = 7;
  p.n_uncore_freqs = 5;
  const auto configs = gen_.Generate(p);
  EXPECT_LE(static_cast<int>(configs.size()), p.c_max + 1);
}

class EnergyProfileTest : public ::testing::Test {
 protected:
  EnergyProfileTest() {
    const Topology topo = Topology::HaswellEp2S();
    std::vector<Configuration> configs;
    configs.push_back({hwsim::SocketConfig::Idle(topo), 0, 0, -1});
    for (int i = 1; i <= 5; ++i) {
      configs.push_back(
          {hwsim::SocketConfig::FirstThreads(topo, i * 4, 2.0, 2.0), 0, 0, -1});
    }
    profile_ = std::make_unique<EnergyProfile>(std::move(configs));
  }

  std::unique_ptr<EnergyProfile> profile_;
};

TEST_F(EnergyProfileTest, UnmeasuredProfileHasNoAnswers) {
  EXPECT_EQ(profile_->measured_count(), 0);
  EXPECT_EQ(profile_->MostEfficientIndex(), -1);
  EXPECT_EQ(profile_->PeakPerfIndex(), -1);
  EXPECT_DOUBLE_EQ(profile_->PeakPerfScore(), 0.0);
  EXPECT_EQ(profile_->FindForDemand(1.0), -1);
  EXPECT_TRUE(profile_->Skyline().empty());
}

TEST_F(EnergyProfileTest, FindForDemandPicksMostEfficientSatisfying) {
  // perf:       10   20   30   40   50
  // power:       5    8   20   30   50
  // efficiency:  2  2.5  1.5 1.33   1
  const double perf[] = {10, 20, 30, 40, 50};
  const double power[] = {5, 8, 20, 30, 50};
  for (int i = 0; i < 5; ++i) profile_->Record(i + 1, power[i], perf[i], Seconds(1));
  EXPECT_EQ(profile_->MostEfficientIndex(), 2);
  EXPECT_DOUBLE_EQ(profile_->PeakPerfScore(), 50.0);
  EXPECT_EQ(profile_->FindForDemand(5.0), 2);    // config 2 dominates config 1
  EXPECT_EQ(profile_->FindForDemand(15.0), 2);
  EXPECT_EQ(profile_->FindForDemand(25.0), 3);
  EXPECT_EQ(profile_->FindForDemand(45.0), 5);
  EXPECT_EQ(profile_->FindForDemand(60.0), 5);   // falls back to peak
}

TEST_F(EnergyProfileTest, SkylineIsEfficiencyMaximalPerDemand) {
  const double perf[] = {10, 20, 30, 40, 50};
  const double power[] = {5, 8, 20, 30, 50};
  for (int i = 0; i < 5; ++i) profile_->Record(i + 1, power[i], perf[i], Seconds(1));
  const std::vector<int> skyline = profile_->Skyline();
  // Config 1 (eff 2.0) is dominated by config 2 (perf 20 >= 10, eff 2.5).
  EXPECT_EQ(skyline, (std::vector<int>{2, 3, 4, 5}));
  // Ascending performance along the skyline.
  for (size_t i = 1; i < skyline.size(); ++i) {
    EXPECT_GT(profile_->config(skyline[i]).perf_score,
              profile_->config(skyline[i - 1]).perf_score);
  }
}

TEST_F(EnergyProfileTest, ZonesRelativeToOptimum) {
  const double perf[] = {10, 20, 30, 40, 50};
  const double power[] = {5, 8, 20, 30, 50};
  for (int i = 0; i < 5; ++i) profile_->Record(i + 1, power[i], perf[i], Seconds(1));
  // Optimum at perf 20.
  EXPECT_EQ(profile_->ZoneForDemand(5.0), Zone::kUnderUtilization);
  EXPECT_EQ(profile_->ZoneForDemand(20.0), Zone::kOptimal);
  EXPECT_EQ(profile_->ZoneForDemand(45.0), Zone::kOverUtilization);
}

TEST_F(EnergyProfileTest, StalenessByAgeAndFlag) {
  profile_->Record(1, 5, 10, Seconds(1));
  profile_->Record(2, 8, 20, Seconds(100));
  const auto stale = profile_->StaleConfigs(Seconds(101), Seconds(50));
  // Config 1 old, configs 3..5 never measured; config 2 fresh.
  EXPECT_EQ(stale, (std::vector<int>{1, 3, 4, 5}));
  profile_->InvalidateAll();
  EXPECT_EQ(profile_->StaleConfigs(Seconds(101), Seconds(50)).size(), 5u);
  // Invalidation keeps stored measurements usable.
  EXPECT_EQ(profile_->MostEfficientIndex(), 2);
}

TEST(EvaluatorTest, MeasuresPlausiblePowerAndPerf) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  ProfileEvaluator eval(&sim, &machine, 0);
  const auto m = eval.Measure(
      hwsim::SocketConfig::AllOn(machine.topology(), 2.6, 3.0),
      workload::ComputeBound(), EvaluatorParams{});
  // All cores busy: substantial power, instructions ~ 24 threads sharing
  // 12 cores at 2.6 GHz.
  EXPECT_GT(m.power_w, 60.0);
  EXPECT_LT(m.power_w, 160.0);
  EXPECT_NEAR(m.perf_score, 12 * 2 * 0.625 * 2.6e9, 0.1 * 12 * 2.6e9);
}

TEST(EvaluatorTest, ShortWindowBackwardStepsDoNotWrap) {
  // RAPL publish jitter can make consecutive reads step backwards. The
  // measured delta must go through signed arithmetic — a small negative
  // power for that window — instead of wrapping the unsigned difference
  // to ~1e16 W and poisoning the profile.
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  ProfileEvaluator eval(&sim, &machine, 0);
  EvaluatorParams params;
  params.apply_time = Millis(1);
  params.measure_time = Millis(1);  // window energy ~ jitter amplitude
  const hwsim::SocketConfig cfg = hwsim::SocketConfig::Idle(machine.topology());
  double min_power = 1e300;
  double max_power = -1e300;
  for (int i = 0; i < 200; ++i) {
    const auto m = eval.Measure(cfg, workload::ComputeBound(), params);
    min_power = std::min(min_power, m.power_w);
    max_power = std::max(max_power, m.power_w);
  }
  // Physically bounded either way: an unsigned wrap would show ~1e16 W.
  EXPECT_LT(max_power, 1e5);
  EXPECT_GT(min_power, -1e5);
}

TEST(EvaluatorTest, ComputeBoundProfileShape) {
  // Fig. 9(a): for the compute-bound workload the lowest uncore frequency
  // is the most energy-efficient; the optimum uses all threads.
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  ConfigGenerator gen(machine.topology(), machine.freqs());
  EnergyProfile profile(gen.Generate(GeneratorParams{}));
  ProfileEvaluator eval(&sim, &machine, 0);
  eval.EvaluateAll(&profile, workload::ComputeBound(), EvaluatorParams{});
  EXPECT_TRUE(profile.fully_measured());
  const Configuration& opt = profile.config(profile.MostEfficientIndex());
  EXPECT_DOUBLE_EQ(opt.hw.uncore_freq_ghz, 1.2);
  EXPECT_EQ(opt.hw.ActiveThreadCount(), 24);
}

TEST(EvaluatorTest, MemoryBoundProfileShape) {
  // Fig. 10(a): high uncore frequency beneficial, high core frequencies a
  // bad choice.
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  ConfigGenerator gen(machine.topology(), machine.freqs());
  EnergyProfile profile(gen.Generate(GeneratorParams{}));
  ProfileEvaluator eval(&sim, &machine, 0);
  eval.EvaluateAll(&profile, workload::MemoryScan(), EvaluatorParams{});
  const Configuration& opt = profile.config(profile.MostEfficientIndex());
  EXPECT_DOUBLE_EQ(opt.hw.uncore_freq_ghz, 3.0);
  EXPECT_DOUBLE_EQ(opt.hw.MeanActiveCoreFreq(machine.topology()), 1.2);
}

TEST(EvaluatorTest, AtomicContentionProfileShape) {
  // Fig. 10(b): two hardware threads at turbo with the lowest uncore
  // frequency dominate.
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  ConfigGenerator gen(machine.topology(), machine.freqs());
  EnergyProfile profile(gen.Generate(GeneratorParams{}));
  ProfileEvaluator eval(&sim, &machine, 0);
  eval.EvaluateAll(&profile, workload::AtomicContention(), EvaluatorParams{});
  const Configuration& opt = profile.config(profile.MostEfficientIndex());
  EXPECT_EQ(opt.hw.ActiveThreadCount(), 2);
  EXPECT_DOUBLE_EQ(opt.hw.uncore_freq_ghz, 1.2);
}

}  // namespace
}  // namespace ecldb::profile
