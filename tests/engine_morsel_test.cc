#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/morsel.h"
#include "engine/operators.h"
#include "engine/table.h"

namespace ecldb::engine {
namespace {

/// Morsel-driven parallel aggregation: partials merge in morsel-index
/// order, so for a FIXED morsel grid the result is bit-identical no matter
/// how many workers claim morsels or in which interleaving. Across
/// DIFFERENT grids the per-group addition trees differ: keys and counts
/// stay exact, sums agree to rounding.

constexpr const char* kTags[] = {"red", "green", "blue", "cyan", "magenta"};

Table MakeFact(Rng& rng, int64_t rows, double delete_fraction) {
  Table fact("fact", Schema({{"qty", ColumnType::kInt64},
                             {"price", ColumnType::kInt64},
                             {"tag", ColumnType::kString}}));
  for (int64_t i = 0; i < rows; ++i) {
    fact.AppendRow({rng.NextInRange(-20, 20), rng.NextInRange(0, 10000),
                    std::string(kTags[rng.NextBounded(5)])});
  }
  for (int64_t i = 0; i < rows; ++i) {
    if (rng.NextBool(delete_fraction)) fact.DeleteRow(static_cast<size_t>(i));
  }
  return fact;
}

std::vector<Predicate> SomePredicates() {
  return {Predicate::IntRange(ColumnRef::Fact(0), -10, 15),
          Predicate::StringIn(ColumnRef::Fact(2), {"red", "blue", "cyan"})};
}

TEST(EngineMorselTest, BitIdenticalAcrossWorkerCounts) {
  Rng rng(201);
  Table fact = MakeFact(rng, 40000, 0.05);
  const auto preds = SomePredicates();
  const std::vector<ColumnRef> group_by = {ColumnRef::Fact(2)};
  const ValueExpr value =
      ValueExpr::Product(ColumnRef::Fact(0), ColumnRef::Fact(1), 0.01);

  FilterOperator filter(&fact, preds);
  // Reference: the same 4096-row morsel grid executed by the caller alone.
  // (The serial single-pass pipeline is a DIFFERENT grid — its sums can
  // differ in the last ulp; KeysAndCountsExactAcrossMorselSizes covers it.)
  HashAggregator reference(group_by, value);
  int64_t scanned_ref = 0;
  {
    MorselPool pool(0);
    scanned_ref =
        RunMorselAggregationPipeline(&fact, filter, &reference, &pool, 4096);
  }

  for (int extra_workers = 1; extra_workers <= 3; ++extra_workers) {
    MorselPool pool(extra_workers);
    HashAggregator parallel(group_by, value);
    const int64_t scanned = RunMorselAggregationPipeline(
        &fact, filter, &parallel, &pool, 4096);
    EXPECT_EQ(scanned, scanned_ref);
    EXPECT_EQ(parallel.rows_consumed(), reference.rows_consumed());
    const auto& gp = parallel.groups();
    const auto& gs = reference.groups();
    ASSERT_EQ(gp.size(), gs.size()) << extra_workers << " extra workers";
    auto it_p = gp.begin();
    for (auto it_s = gs.begin(); it_s != gs.end(); ++it_s, ++it_p) {
      EXPECT_EQ(it_p->first, it_s->first);
      EXPECT_EQ(it_p->second, it_s->second) << "group " << it_s->first;
    }
    EXPECT_EQ(parallel.TotalSum(), reference.TotalSum());
  }
}

TEST(EngineMorselTest, KeysAndCountsExactAcrossMorselSizes) {
  Rng rng(202);
  Table fact = MakeFact(rng, 30000, 0.0);
  FilterOperator filter(&fact, SomePredicates());
  const std::vector<ColumnRef> group_by = {ColumnRef::Fact(2)};
  const ValueExpr value = ValueExpr::Column(ColumnRef::Fact(1), 0.25);

  HashAggregator serial(group_by, value);
  RunAggregationPipeline(&fact, filter, &serial);

  MorselPool pool(2);
  const size_t morsel_sizes[] = {500, 1024, 7777, 16384, 1u << 20};
  for (size_t morsel_rows : morsel_sizes) {
    HashAggregator parallel(group_by, value);
    RunMorselAggregationPipeline(&fact, filter, &parallel, &pool, morsel_rows);
    EXPECT_EQ(parallel.rows_consumed(), serial.rows_consumed());
    const auto& gp = parallel.groups();
    const auto& gs = serial.groups();
    ASSERT_EQ(gp.size(), gs.size()) << morsel_rows;
    auto it_p = gp.begin();
    for (auto it_s = gs.begin(); it_s != gs.end(); ++it_s, ++it_p) {
      EXPECT_EQ(it_p->first, it_s->first);
      // Different grids reassociate the FP sums; near, not identical.
      EXPECT_NEAR(it_p->second, it_s->second,
                  1e-9 * (1.0 + std::abs(it_s->second)))
          << "group " << it_s->first;
    }
  }
}

TEST(EngineMorselTest, SingleMorselIsBitIdenticalToSerial) {
  Rng rng(203);
  Table fact = MakeFact(rng, 5000, 0.1);
  FilterOperator filter(&fact, SomePredicates());
  const std::vector<ColumnRef> group_by = {ColumnRef::Fact(2)};
  const ValueExpr value =
      ValueExpr::Difference(ColumnRef::Fact(1), ColumnRef::Fact(0));

  HashAggregator serial(group_by, value);
  RunAggregationPipeline(&fact, filter, &serial);

  MorselPool pool(3);
  HashAggregator parallel(group_by, value);
  // Oversized morsel: the whole table fits in one; delegates to serial.
  RunMorselAggregationPipeline(&fact, filter, &parallel, &pool, 1u << 20);
  EXPECT_EQ(parallel.TotalSum(), serial.TotalSum());
  EXPECT_EQ(parallel.groups(), serial.groups());

  // Null pool falls back to serial too.
  HashAggregator no_pool(group_by, value);
  RunMorselAggregationPipeline(&fact, filter, &no_pool, nullptr, 100);
  EXPECT_EQ(no_pool.TotalSum(), serial.TotalSum());
  EXPECT_EQ(no_pool.groups(), serial.groups());
}

TEST(EngineMorselTest, EmptyTable) {
  Table fact("fact", Schema({{"qty", ColumnType::kInt64},
                             {"price", ColumnType::kInt64},
                             {"tag", ColumnType::kString}}));
  FilterOperator filter(&fact, {});
  HashAggregator agg({}, ValueExpr::Column(ColumnRef::Fact(1)));
  MorselPool pool(2);
  EXPECT_EQ(RunMorselAggregationPipeline(&fact, filter, &agg, &pool, 128), 0);
  EXPECT_EQ(agg.rows_consumed(), 0);
}

TEST(EngineMorselTest, PoolRunsEveryIndexExactlyOnce) {
  // Claim-from-shared-cursor stress: many back-to-back generations with
  // more (and fewer) morsels than workers; every index must run exactly
  // once per generation. Run under TSan to validate the handoff protocol.
  MorselPool pool(3);
  for (int round = 0; round < 200; ++round) {
    const size_t count = static_cast<size_t>(round % 17);  // 0..16
    std::vector<std::atomic<int>> hits(count);
    for (auto& h : hits) h.store(0);
    pool.Run(count, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(EngineMorselTest, PoolWithoutExtraWorkersRunsOnCaller) {
  MorselPool pool(0);
  EXPECT_EQ(pool.workers(), 1);
  std::vector<int> hits(64, 0);
  pool.Run(64, [&](size_t i) { hits[i]++; });  // serial on the caller
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace ecldb::engine
