#include <gtest/gtest.h>

#include "ecl/meta_calibration.h"
#include "ecl/profile_maintenance.h"
#include "ecl/rti_controller.h"
#include "ecl/system_ecl.h"
#include "ecl/utilization_controller.h"
#include "hwsim/machine.h"
#include "profile/config_generator.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::ecl {
namespace {

using hwsim::Topology;

/// Builds a small measured profile: 5 configs with a clear optimum.
///   perf:       10   20   30   40   50
///   power:       5    8   20   30   50
profile::EnergyProfile MeasuredProfile() {
  const Topology topo = Topology::HaswellEp2S();
  std::vector<profile::Configuration> configs;
  configs.push_back({hwsim::SocketConfig::Idle(topo), 0, 0, -1});
  const double perf[] = {10, 20, 30, 40, 50};
  const double power[] = {5, 8, 20, 30, 50};
  for (int i = 0; i < 5; ++i) {
    profile::Configuration c;
    c.hw = hwsim::SocketConfig::FirstThreads(topo, (i + 1) * 4, 2.0, 2.0);
    c.RecordMeasurement(power[i], perf[i], Seconds(1));
    configs.push_back(std::move(c));
  }
  return profile::EnergyProfile(std::move(configs));
}

TEST(UtilizationControllerTest, Equation3BelowFullUtilization) {
  UtilizationControllerParams p;
  p.headroom = 1.0;
  p.max_decrease = 0.0;
  UtilizationController c(p);
  const auto profile = MeasuredProfile();
  // new = utilization * old (Eq. 3).
  EXPECT_NEAR(c.Update(0.5, 20.0, 40.0, 0.0, profile), 20.0, 1e-9);
  EXPECT_NEAR(c.Update(0.8, 24.0, 30.0, 0.0, profile), 24.0, 1e-9);
}

TEST(UtilizationControllerTest, HeadroomPadsDemand) {
  UtilizationControllerParams p;
  p.headroom = 1.4;
  p.max_decrease = 0.0;
  UtilizationController c(p);
  const auto profile = MeasuredProfile();
  EXPECT_NEAR(c.Update(0.5, 20.0, 40.0, 0.0, profile), 28.0, 1e-9);
}

TEST(UtilizationControllerTest, DampedDecrease) {
  UtilizationControllerParams p;
  p.headroom = 1.0;
  p.max_decrease = 0.5;
  UtilizationController c(p);
  const auto profile = MeasuredProfile();
  // A sudden drop to 10 % utilization is limited to halving per tick.
  EXPECT_NEAR(c.Update(0.1, 4.0, 40.0, 0.0, profile), 20.0, 1e-9);
}

TEST(UtilizationControllerTest, ExponentialDiscoveryAtFullUtilization) {
  UtilizationControllerParams p;
  UtilizationController c(p);
  const auto profile = MeasuredProfile();
  const double next = c.Update(1.0, 20.0, 20.0, 0.0, profile);
  EXPECT_NEAR(next, 40.0, 1e-9);  // doubles
  // Capped at the peak performance score.
  EXPECT_NEAR(c.Update(1.0, 40.0, 40.0, 0.0, profile), 50.0, 1e-9);
}

TEST(UtilizationControllerTest, PressureAcceleratesDiscovery) {
  UtilizationControllerParams p;
  UtilizationController c(p);
  const auto profile = MeasuredProfile();
  const double relaxed = c.Update(1.0, 10.0, 10.0, 0.0, profile);
  const double pressured = c.Update(1.0, 10.0, 10.0, 1.0, profile);
  EXPECT_GT(pressured, relaxed);
  EXPECT_NEAR(pressured, 50.0, 1e-9);  // 10 * 2 * 4 capped at peak
}

TEST(UtilizationControllerTest, PressureFloorsDemand) {
  UtilizationControllerParams p;
  UtilizationController c(p);
  const auto profile = MeasuredProfile();
  // Low utilization but latency pressure 0.8: demand >= 0.8 * peak.
  EXPECT_GE(c.Update(0.1, 1.0, 10.0, 0.8, profile), 0.8 * 50.0 - 1e-9);
}

TEST(UtilizationControllerTest, EmptyProfileYieldsZero) {
  UtilizationController c((UtilizationControllerParams()));
  const Topology topo = Topology::HaswellEp2S();
  std::vector<profile::Configuration> configs;
  configs.push_back({hwsim::SocketConfig::Idle(topo), 0, 0, -1});
  profile::EnergyProfile empty(std::move(configs));
  EXPECT_DOUBLE_EQ(c.Update(1.0, 5.0, 10.0, 0.0, empty), 0.0);
}

TEST(RtiControllerTest, UnderUtilizationUsesRti) {
  RtiController c((RtiControllerParams()));
  const auto profile = MeasuredProfile();
  // Demand 10 is far below the optimum (perf 20): RTI between the optimal
  // configuration and idle with duty 0.5.
  const auto plan = c.MakePlan(10.0, profile.FindForDemand(10.0), profile, 0.0);
  EXPECT_TRUE(plan.use_rti);
  EXPECT_EQ(plan.config_index, 2);
  EXPECT_NEAR(plan.duty, 0.5, 1e-9);
  EXPECT_GE(plan.cycles, 1);
}

TEST(RtiControllerTest, NoRtiInOverUtilization) {
  RtiController c((RtiControllerParams()));
  const auto profile = MeasuredProfile();
  const auto plan = c.MakePlan(45.0, profile.FindForDemand(45.0), profile, 0.0);
  EXPECT_FALSE(plan.use_rti);
  EXPECT_EQ(plan.config_index, 5);
}

TEST(RtiControllerTest, HighDutySkipsSwitching) {
  RtiController c((RtiControllerParams()));
  const auto profile = MeasuredProfile();
  const auto plan = c.MakePlan(19.5, profile.FindForDemand(19.5), profile, 0.0);
  EXPECT_FALSE(plan.use_rti);  // duty would be 0.975 > max_duty
  EXPECT_EQ(plan.config_index, 2);
}

TEST(RtiControllerTest, PressureDisablesRti) {
  RtiController c((RtiControllerParams()));
  const auto profile = MeasuredProfile();
  const auto plan = c.MakePlan(10.0, profile.FindForDemand(10.0), profile, 0.9);
  EXPECT_FALSE(plan.use_rti);
}

TEST(RtiControllerTest, PressureRaisesSwitchingFrequency) {
  RtiController c((RtiControllerParams()));
  const auto profile = MeasuredProfile();
  const auto calm = c.MakePlan(10.0, 2, profile, 0.0);
  const auto tense = c.MakePlan(10.0, 2, profile, 0.6);
  EXPECT_GT(tense.cycles, calm.cycles);
  EXPECT_LE(tense.cycles, RtiControllerParams().max_cycles_per_interval);
}

TEST(RtiControllerTest, DisabledByParams) {
  RtiControllerParams p;
  p.enabled = false;
  RtiController c(p);
  const auto profile = MeasuredProfile();
  EXPECT_FALSE(c.MakePlan(5.0, 2, profile, 0.0).use_rti);
}

TEST(ProfileMaintenanceTest, OnlineRecordsAndDetectsDrift) {
  ProfileMaintenance m((ProfileMaintenanceParams()));
  auto profile = MeasuredProfile();
  // Consistent measurement: no drift.
  auto out = m.RecordOnline(&profile, 2, 8.2, 19.8, Seconds(2));
  EXPECT_TRUE(out.recorded);
  EXPECT_FALSE(out.drift_detected);
  EXPECT_DOUBLE_EQ(profile.config(2).power_w, 8.2);
  // Strongly different measurement: drift (workload change).
  out = m.RecordOnline(&profile, 2, 16.0, 10.0, Seconds(3));
  EXPECT_TRUE(out.drift_detected);
  EXPECT_EQ(m.online_updates(), 2);
}

TEST(ProfileMaintenanceTest, DisabledOnlineDoesNothing) {
  ProfileMaintenanceParams p;
  p.enable_online = false;
  ProfileMaintenance m(p);
  auto profile = MeasuredProfile();
  const auto out = m.RecordOnline(&profile, 2, 16.0, 10.0, Seconds(3));
  EXPECT_FALSE(out.recorded);
  EXPECT_DOUBLE_EQ(profile.config(2).power_w, 8.0);  // untouched
}

TEST(ProfileMaintenanceTest, PicksStaleForReevaluation) {
  ProfileMaintenanceParams p;
  p.evals_per_interval = 2;
  p.stale_age = Seconds(10);
  ProfileMaintenance m(p);
  auto profile = MeasuredProfile();  // all measured at t=1s
  EXPECT_TRUE(m.PickForReevaluation(profile, Seconds(5)).empty());
  // After aging, picks arrive in bounded batches and make progress.
  const auto first = m.PickForReevaluation(profile, Seconds(100));
  ASSERT_EQ(first.size(), 2u);
  const auto second = m.PickForReevaluation(profile, Seconds(100));
  ASSERT_EQ(second.size(), 2u);
  EXPECT_NE(first[0], second[0]);
}

TEST(ProfileMaintenanceTest, FlagDriftMarksWholeProfile) {
  ProfileMaintenanceParams p;
  p.evals_per_interval = 100;
  ProfileMaintenance m(p);
  auto profile = MeasuredProfile();
  m.FlagDrift(&profile);
  EXPECT_EQ(m.PickForReevaluation(profile, Seconds(2)).size(), 5u);
}

TEST(SystemEclTest, PressureZeroWithoutLatencies) {
  sim::Simulator sim;
  engine::LatencyTracker latency(Seconds(5));
  SystemEcl ecl(&sim, &latency, SystemEclParams{});
  ecl.Update();
  EXPECT_DOUBLE_EQ(ecl.pressure(), 0.0);
}

TEST(SystemEclTest, ViolationMeansFullPressure) {
  sim::Simulator sim;
  engine::LatencyTracker latency(Seconds(5));
  SystemEclParams params;
  params.latency_limit_ms = 100.0;
  SystemEcl ecl(&sim, &latency, params);
  latency.RecordCompletion(0, Millis(150));  // 150 ms > limit
  ecl.Update();
  EXPECT_DOUBLE_EQ(ecl.pressure(), 1.0);
  EXPECT_DOUBLE_EQ(ecl.time_to_violation_s(), 0.0);
}

TEST(SystemEclTest, RisingTrendRaisesPressure) {
  sim::Simulator sim;
  engine::LatencyTracker latency(Seconds(60));
  SystemEclParams params;
  params.latency_limit_ms = 100.0;
  params.pressure_horizon_s = 10.0;
  SystemEcl ecl(&sim, &latency, params);
  // Latency ramps 50 -> 80 ms over 3 s: ~10 ms/s slope, ttv ~3.5 s.
  for (int i = 0; i <= 30; ++i) {
    const SimTime t = Millis(100 * i);
    latency.RecordCompletion(t - Millis(50 + i), t);
  }
  ecl.Update();
  EXPECT_GT(ecl.pressure(), 0.3);
  EXPECT_LT(ecl.time_to_violation_s(), 10.0);
}

TEST(SystemEclTest, LowFlatLatencyRelaxed) {
  sim::Simulator sim;
  engine::LatencyTracker latency(Seconds(5));
  SystemEcl ecl(&sim, &latency, SystemEclParams{});
  for (int i = 0; i < 10; ++i) {
    latency.RecordCompletion(Millis(100 * i), Millis(100 * i + 20));
  }
  ecl.Update();
  EXPECT_DOUBLE_EQ(ecl.pressure(), 0.0);
  EXPECT_GT(ecl.time_to_violation_s(), 100.0);
}

TEST(MetaCalibrationTest, FindsPaperLikeTimes) {
  // Fig. 12: applying a configuration is accurate even at 1 ms; measuring
  // needs ~100 ms; shorter windows deviate increasingly.
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  MetaCalibration cal(&sim, &machine, 0);
  MetaCalibrationParams params;
  params.probes = 2;
  const MetaCalibrationResult result =
      cal.Run(workload::ComputeBound(), params);
  EXPECT_LE(result.apply_time, Millis(2));
  EXPECT_LE(result.measure_time, Millis(100));
  EXPECT_GE(result.measure_time, Millis(5));
  // The measure sweep deviation grows as the window shrinks.
  const auto& sweep = result.measure_sweep;
  ASSERT_GE(sweep.size(), 3u);
  EXPECT_GT(sweep.back().deviation, sweep.front().deviation);
}

}  // namespace
}  // namespace ecldb::ecl
