#include <gtest/gtest.h>

#include "hwsim/bandwidth_model.h"
#include "hwsim/machine.h"
#include "hwsim/perf_model.h"
#include "workload/work_profiles.h"

namespace ecldb::hwsim {
namespace {

class PerfModelTest : public ::testing::Test {
 protected:
  PerfModelTest()
      : params_(MachineParams::HaswellEp()),
        topo_(params_.topology),
        bw_(params_.bandwidth),
        model_(topo_, bw_, params_.perf) {}

  std::vector<ThreadLoad> NoLoads() const {
    return std::vector<ThreadLoad>(static_cast<size_t>(topo_.total_threads()));
  }

  /// Loads `profile` onto the first `n` local threads of socket 0.
  std::vector<ThreadLoad> LoadFirstThreads(const WorkProfile& profile, int n,
                                           double intensity = 1.0) const {
    std::vector<ThreadLoad> loads = NoLoads();
    for (int t = 0; t < n; ++t) loads[static_cast<size_t>(t)] = {&profile, intensity};
    return loads;
  }

  MachineConfig ConfigFirstThreads(int n, double core, double uncore) const {
    MachineConfig m = MachineConfig::Idle(topo_);
    m.sockets[0] = SocketConfig::FirstThreads(topo_, n, core, uncore);
    return m;
  }

  double TotalOps(const SolveResult& r) const {
    double sum = 0.0;
    for (const ThreadRate& t : r.threads) sum += t.ops_per_sec;
    return sum;
  }

  MachineParams params_;
  Topology topo_;
  BandwidthModel bw_;
  PerfModel model_;
};

TEST_F(PerfModelTest, ComputeRateScalesWithCoreFrequency) {
  const WorkProfile& wp = workload::ComputeBound();
  const auto loads = LoadFirstThreads(wp, 1);
  const double r12 =
      TotalOps(model_.Solve(ConfigFirstThreads(1, 1.2, 1.2), loads));
  const double r26 =
      TotalOps(model_.Solve(ConfigFirstThreads(1, 2.6, 1.2), loads));
  EXPECT_NEAR(r26 / r12, 2.6 / 1.2, 1e-6);
  EXPECT_NEAR(r12, 1.2e9, 1e6);  // 1 op per cycle at CPI 1
}

TEST_F(PerfModelTest, ComputeRateIndependentOfUncore) {
  const WorkProfile& wp = workload::ComputeBound();
  const auto loads = LoadFirstThreads(wp, 24);
  const double lo = TotalOps(model_.Solve(ConfigFirstThreads(24, 2.6, 1.2), loads));
  const double hi = TotalOps(model_.Solve(ConfigFirstThreads(24, 2.6, 3.0), loads));
  EXPECT_NEAR(lo, hi, lo * 1e-9);  // Fig. 8: same instructions retired
}

TEST_F(PerfModelTest, HyperThreadSiblingsShareTheCore) {
  const WorkProfile& wp = workload::ComputeBound();
  const double one =
      TotalOps(model_.Solve(ConfigFirstThreads(1, 2.0, 1.2), LoadFirstThreads(wp, 1)));
  const double two =
      TotalOps(model_.Solve(ConfigFirstThreads(2, 2.0, 1.2), LoadFirstThreads(wp, 2)));
  // Two siblings yield ~1.25x of one thread (2 * ht_share).
  EXPECT_NEAR(two / one, 2.0 * params_.perf.ht_share, 1e-6);
  EXPECT_GT(two, one);
}

TEST_F(PerfModelTest, ScanIsBandwidthCapped) {
  const WorkProfile& wp = workload::MemoryScan();
  const auto loads = LoadFirstThreads(wp, 24);
  const SolveResult r = model_.Solve(ConfigFirstThreads(24, 2.6, 3.0), loads);
  // 24 demanding threads exceed the channel peak; effective bandwidth is
  // the contended cap.
  const double mc_penalty =
      1.0 + params_.perf.mc_contention_per_thread *
                (24 - params_.perf.mc_free_threads);
  EXPECT_NEAR(r.socket_bandwidth_gbps[0],
              bw_.SocketBandwidthGbps(3.0) / mc_penalty, 0.1);
}

TEST_F(PerfModelTest, FewScanThreadsReachFullBandwidth) {
  // Fig. 6: nearly full bandwidth already at the lowest core frequency, as
  // long as the uncore clock is at its maximum.
  const WorkProfile& wp = workload::MemoryScan();
  const auto loads = LoadFirstThreads(wp, 8);
  const SolveResult r = model_.Solve(ConfigFirstThreads(8, 1.2, 3.0), loads);
  EXPECT_NEAR(r.socket_bandwidth_gbps[0], bw_.SocketBandwidthGbps(3.0), 0.5);
}

TEST_F(PerfModelTest, BandwidthScalesWithUncore) {
  const WorkProfile& wp = workload::MemoryScan();
  const auto loads = LoadFirstThreads(wp, 8);
  double prev = 0.0;
  for (double unc = 1.2; unc <= 3.01; unc += 0.3) {
    const SolveResult r = model_.Solve(ConfigFirstThreads(8, 1.2, unc), loads);
    EXPECT_GT(r.socket_bandwidth_gbps[0], prev);
    prev = r.socket_bandwidth_gbps[0];
  }
}

TEST_F(PerfModelTest, LatencyBoundRateImprovesWithUncore) {
  const WorkProfile& wp = workload::KvIndexed();
  const auto loads = LoadFirstThreads(wp, 4);
  const double lo = TotalOps(model_.Solve(ConfigFirstThreads(4, 1.2, 1.2), loads));
  const double hi = TotalOps(model_.Solve(ConfigFirstThreads(4, 1.2, 3.0), loads));
  EXPECT_GT(hi, lo * 1.02);
}

TEST_F(PerfModelTest, AtomicContentionBestWithTwoSiblings) {
  // Fig. 10(b): the most performing configuration uses only two hardware
  // threads (one core's siblings) at turbo frequency.
  const WorkProfile& wp = workload::AtomicContention();
  const double two_siblings =
      TotalOps(model_.Solve(ConfigFirstThreads(2, 3.1, 1.2), LoadFirstThreads(wp, 2)));
  const double all_threads = TotalOps(
      model_.Solve(ConfigFirstThreads(24, 3.1, 3.0), LoadFirstThreads(wp, 24)));
  EXPECT_GT(two_siblings, 2.0 * all_threads);
}

TEST_F(PerfModelTest, AtomicContentionUncoreIrrelevantForSiblings) {
  const WorkProfile& wp = workload::AtomicContention();
  const auto loads = LoadFirstThreads(wp, 2);
  const double lo = TotalOps(model_.Solve(ConfigFirstThreads(2, 3.1, 1.2), loads));
  const double hi = TotalOps(model_.Solve(ConfigFirstThreads(2, 3.1, 3.0), loads));
  EXPECT_NEAR(lo, hi, lo * 1e-9);  // L1-local handoff, uncore unused
}

TEST_F(PerfModelTest, CrossSocketContentionWorstCase) {
  const WorkProfile& wp = workload::AtomicContention();
  std::vector<ThreadLoad> loads = NoLoads();
  loads[0] = {&wp, 1.0};
  loads[static_cast<size_t>(topo_.threads_per_socket())] = {&wp, 1.0};
  MachineConfig cfg = MachineConfig::Idle(topo_);
  cfg.sockets[0] = SocketConfig::FirstThreads(topo_, 1, 3.1, 3.0);
  cfg.sockets[1] = SocketConfig::FirstThreads(topo_, 1, 3.1, 3.0);
  const double cross_socket = TotalOps(model_.Solve(cfg, loads));
  const double same_socket = TotalOps(
      model_.Solve(ConfigFirstThreads(4, 3.1, 3.0), LoadFirstThreads(wp, 4)));
  EXPECT_LT(cross_socket, same_socket);
}

TEST_F(PerfModelTest, SharedStructureThroughputPeaksBelowAllThreads) {
  // Fig. 10(c): hash-table insert throughput peaks at a moderate thread
  // count; using every thread is slower.
  const WorkProfile& wp = workload::HashInsertShared();
  double best_ops = 0.0;
  int best_n = 0;
  for (int n = 2; n <= 24; n += 2) {
    const double ops = TotalOps(
        model_.Solve(ConfigFirstThreads(n, 2.6, 3.0), LoadFirstThreads(wp, n)));
    if (ops > best_ops) {
      best_ops = ops;
      best_n = n;
    }
  }
  EXPECT_GE(best_n, 6);
  EXPECT_LE(best_n, 16);
  const double all = TotalOps(
      model_.Solve(ConfigFirstThreads(24, 2.6, 3.0), LoadFirstThreads(wp, 24)));
  EXPECT_GT(best_ops, all * 1.02);
}

TEST_F(PerfModelTest, InactiveThreadsGetNoRate) {
  const WorkProfile& wp = workload::ComputeBound();
  const auto loads = LoadFirstThreads(wp, 8);
  const SolveResult r = model_.Solve(ConfigFirstThreads(4, 2.0, 1.2), loads);
  for (int t = 4; t < 8; ++t) {
    EXPECT_DOUBLE_EQ(r.threads[static_cast<size_t>(t)].ops_per_sec, 0.0);
    EXPECT_DOUBLE_EQ(r.threads[static_cast<size_t>(t)].instr_per_sec, 0.0);
  }
}

TEST_F(PerfModelTest, PollingThreadsRetireFewInstructions) {
  const SolveResult r = model_.Solve(ConfigFirstThreads(4, 2.0, 1.2), NoLoads());
  for (int t = 0; t < 4; ++t) {
    const double instr = r.threads[static_cast<size_t>(t)].instr_per_sec;
    EXPECT_GT(instr, 0.0);
    EXPECT_LT(instr, 0.05 * 2.0e9);
  }
}

TEST_F(PerfModelTest, IntensityScalesAchievedThroughput) {
  const WorkProfile& wp = workload::ComputeBound();
  const auto full = LoadFirstThreads(wp, 1, 1.0);
  const auto half = LoadFirstThreads(wp, 1, 0.5);
  const MachineConfig cfg = ConfigFirstThreads(1, 2.0, 1.2);
  const SolveResult rf = model_.Solve(cfg, full);
  const SolveResult rh = model_.Solve(cfg, half);
  // ops_per_sec reports capacity (intensity-1 rate)…
  EXPECT_DOUBLE_EQ(rf.threads[0].ops_per_sec, rh.threads[0].ops_per_sec);
  // …while busy fraction reflects the offered intensity.
  EXPECT_DOUBLE_EQ(rf.socket_busy_fraction[0], 1.0);
  EXPECT_DOUBLE_EQ(rh.socket_busy_fraction[0], 0.5);
}

TEST_F(PerfModelTest, PowerScaleAggregatesWorkWeighted) {
  const WorkProfile& avx = workload::Firestarter();
  const auto loads = LoadFirstThreads(avx, 4);
  const SolveResult r = model_.Solve(ConfigFirstThreads(4, 2.6, 3.0), loads);
  EXPECT_NEAR(r.socket_power_scale[0], avx.power_scale, 1e-9);
}

class BandwidthModelParamTest : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthModelParamTest, LatencyDecreasesWithUncore) {
  BandwidthModel bw((BandwidthModelParams()));
  const double f = GetParam();
  if (f >= 1.3) {
    EXPECT_LT(bw.AccessLatencyNs(f), bw.AccessLatencyNs(f - 0.1));
  }
  EXPECT_GT(bw.AccessLatencyNs(f), 0.0);
  EXPECT_GE(bw.SocketBandwidthGbps(f), 0.0);
  EXPECT_LE(bw.SocketBandwidthGbps(f), bw.params().peak_gbps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(UncoreSweep, BandwidthModelParamTest,
                         ::testing::Values(1.2, 1.5, 1.8, 2.1, 2.4, 2.7, 3.0));

}  // namespace
}  // namespace ecldb::hwsim
