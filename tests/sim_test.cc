#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace ecldb::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(Millis(3), [&] { order.push_back(3); });
  q.Schedule(Millis(1), [&] { order.push_back(1); });
  q.Schedule(Millis(2), [&] { order.push_back(2); });
  while (!q.empty()) q.PopAndRun();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(Millis(1), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.PopAndRun();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Schedule(Millis(1), [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // double cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelAfterExecutionIsRejected) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.Schedule(Millis(1), [&] { fired = true; });
  q.Schedule(Millis(2), [] {});
  q.PopAndRun();
  EXPECT_TRUE(fired);
  // The event already ran: cancelling its id must fail and must not
  // corrupt the live-event accounting of the remaining event (a stale
  // cancel used to decrement the live count and make the queue report
  // empty while an event was still pending).
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.NextTime(), Millis(2));
  q.PopAndRun();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.Schedule(Millis(1), [] {});
  q.Schedule(Millis(5), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), Millis(5));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  q.Schedule(Millis(1), [&] {
    ++count;
    q.Schedule(Millis(2), [&] { ++count; });
  });
  while (!q.empty()) q.PopAndRun();
  EXPECT_EQ(count, 2);
}

TEST(SimulatorTest, TimeAdvancesToEvents) {
  Simulator s;
  SimTime seen = -1;
  s.Schedule(Millis(7), [&] { seen = s.now(); });
  s.RunUntil(Millis(10));
  EXPECT_EQ(seen, Millis(7));
  EXPECT_EQ(s.now(), Millis(10));
}

TEST(SimulatorTest, AdvancersCoverEveryInterval) {
  Simulator s;
  s.set_max_slice(Millis(1));
  SimDuration covered = 0;
  SimTime last_end = 0;
  s.RegisterAdvancer([&](SimTime from, SimTime to) {
    EXPECT_EQ(from, last_end);
    EXPECT_GT(to, from);
    EXPECT_LE(to - from, Millis(1));
    covered += to - from;
    last_end = to;
  });
  s.Schedule(Micros(1500), [] {});  // forces a partial slice
  s.RunUntil(Millis(5));
  EXPECT_EQ(covered, Millis(5));
  EXPECT_EQ(last_end, Millis(5));
}

TEST(SimulatorTest, AdvancerRunsBeforeEventAtSameTime) {
  Simulator s;
  SimDuration covered_at_event = -1;
  SimDuration covered = 0;
  s.RegisterAdvancer([&](SimTime from, SimTime to) { covered += to - from; });
  s.Schedule(Millis(3), [&] { covered_at_event = covered; });
  s.RunUntil(Millis(3));
  EXPECT_EQ(covered_at_event, Millis(3));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator s;
  s.RunUntil(Millis(5));
  SimTime fired = -1;
  s.ScheduleAfter(Millis(2), [&] { fired = s.now(); });
  s.RunUntil(Millis(10));
  EXPECT_EQ(fired, Millis(7));
}

TEST(SimulatorTest, CancelledEventDoesNotFire) {
  Simulator s;
  bool fired = false;
  const EventId id = s.Schedule(Millis(2), [&] { fired = true; });
  s.Cancel(id);
  s.RunUntil(Millis(5));
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, PeriodicSelfScheduling) {
  Simulator s;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) s.ScheduleAfter(Millis(10), tick);
  };
  s.ScheduleAfter(Millis(10), tick);
  s.RunUntil(Seconds(1));
  EXPECT_EQ(ticks, 5);
}

}  // namespace
}  // namespace ecldb::sim
