#include <gtest/gtest.h>

#include <cmath>

#include "hwsim/rapl.h"

namespace ecldb::hwsim {
namespace {

RaplParams NoJitter() {
  RaplParams p;
  p.jitter_uj = 0.0;
  return p;
}

TEST(RaplTest, ExactEnergyAccumulates) {
  RaplCounters rapl(2, NoJitter());
  rapl.AddEnergy(0, RaplDomain::kPackage, 1.5, 0, Millis(10));
  rapl.AddEnergy(0, RaplDomain::kPackage, 2.5, Millis(10), Millis(20));
  EXPECT_DOUBLE_EQ(rapl.ExactEnergyJoules(0, RaplDomain::kPackage), 4.0);
  EXPECT_DOUBLE_EQ(rapl.ExactEnergyJoules(0, RaplDomain::kDram), 0.0);
  EXPECT_DOUBLE_EQ(rapl.ExactEnergyJoules(1, RaplDomain::kPackage), 0.0);
}

TEST(RaplTest, DomainsAndSocketsIndependent) {
  RaplCounters rapl(2, NoJitter());
  rapl.AddEnergy(0, RaplDomain::kPackage, 1.0, 0, Millis(1));
  rapl.AddEnergy(0, RaplDomain::kDram, 2.0, 0, Millis(1));
  rapl.AddEnergy(1, RaplDomain::kPackage, 3.0, 0, Millis(1));
  EXPECT_DOUBLE_EQ(rapl.ExactEnergyJoules(0, RaplDomain::kPackage), 1.0);
  EXPECT_DOUBLE_EQ(rapl.ExactEnergyJoules(0, RaplDomain::kDram), 2.0);
  EXPECT_DOUBLE_EQ(rapl.ExactEnergyJoules(1, RaplDomain::kPackage), 3.0);
}

TEST(RaplTest, ReadsQuantizeToUpdateBoundary) {
  RaplCounters rapl(1, NoJitter());
  // 10 W for 0.5 ms: no 1 ms boundary crossed yet, the published counter
  // stays at its previous value (0).
  rapl.AddEnergy(0, RaplDomain::kPackage, 0.005, 0, Micros(500));
  EXPECT_EQ(rapl.ReadEnergyUj(0, RaplDomain::kPackage), 0u);
  // Crossing the boundary publishes the pro-rata prefix.
  rapl.AddEnergy(0, RaplDomain::kPackage, 0.005, Micros(500), Micros(1000));
  EXPECT_NEAR(static_cast<double>(rapl.ReadEnergyUj(0, RaplDomain::kPackage)),
              10000.0, 16.0);
}

TEST(RaplTest, MidIntervalEnergyProRated) {
  RaplCounters rapl(1, NoJitter());
  // One add spanning 0..2.5 ms: published boundary at 2 ms = 80 % of it.
  rapl.AddEnergy(0, RaplDomain::kPackage, 0.010, 0, Micros(2500));
  EXPECT_NEAR(static_cast<double>(rapl.ReadEnergyUj(0, RaplDomain::kPackage)),
              8000.0, 16.0);
}

TEST(RaplTest, ReadIsMonotone) {
  RaplCounters rapl(1, RaplParams{});
  uint64_t prev = 0;
  for (int ms = 0; ms < 200; ++ms) {
    rapl.AddEnergy(0, RaplDomain::kPackage, 0.02, Millis(ms), Millis(ms + 1));
    const uint64_t v = rapl.ReadEnergyUj(0, RaplDomain::kPackage);
    EXPECT_GE(v + 50000, prev);  // jitter may wiggle within ~2x jitter_uj
    prev = std::max(prev, v);
  }
}

TEST(RaplTest, RepeatedReadsIdentical) {
  RaplCounters rapl(1, RaplParams{});
  rapl.AddEnergy(0, RaplDomain::kPackage, 0.5, 0, Millis(10));
  const uint64_t a = rapl.ReadEnergyUj(0, RaplDomain::kPackage);
  const uint64_t b = rapl.ReadEnergyUj(0, RaplDomain::kPackage);
  EXPECT_EQ(a, b);  // deterministic jitter per publish boundary
}

TEST(RaplTest, ShortWindowsLessAccurateThanLongWindows) {
  // The Fig. 12 effect: power measured over a short window deviates more
  // from the true power than over a long window.
  const double watts = 12.0;
  auto measure = [&](SimDuration window, SimTime start) {
    RaplCounters rapl(1, RaplParams{});
    // Feed energy in 250 us steps well past the window.
    const SimDuration step = Micros(250);
    for (SimTime t = 0; t < start + window + Millis(2); t += step) {
      rapl.AddEnergy(0, RaplDomain::kPackage, watts * ToSeconds(step), t,
                     t + step);
    }
    // Re-simulate reads at the window edges.
    RaplCounters replay(1, RaplParams{});
    uint64_t e0 = 0, e1 = 0;
    for (SimTime t = 0; t < start + window + Millis(2); t += step) {
      replay.AddEnergy(0, RaplDomain::kPackage, watts * ToSeconds(step), t,
                       t + step);
      if (t + step == start) e0 = replay.ReadEnergyUj(0, RaplDomain::kPackage);
      if (t + step == start + window) {
        e1 = replay.ReadEnergyUj(0, RaplDomain::kPackage);
      }
    }
    const double measured = static_cast<double>(e1 - e0) * 1e-6 / ToSeconds(window);
    return std::abs(measured - watts) / watts;
  };
  // Offset start by 0.5 ms so windows straddle publish boundaries.
  const double err_short = measure(Millis(2), Millis(3));
  const double err_long = measure(Millis(100), Millis(3));
  EXPECT_LT(err_long, 0.05);
  EXPECT_GT(err_short, err_long);
}

}  // namespace
}  // namespace ecldb::hwsim
