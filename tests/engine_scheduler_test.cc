#include <gtest/gtest.h>

#include "engine/engine.h"
#include "telemetry/telemetry.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::engine {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : machine_(&sim_, hwsim::MachineParams::HaswellEp()),
        engine_(&sim_, &machine_, EngineParams{}) {}

  /// Activates all threads at the given frequencies.
  void AllOn(double core = 2.6, double uncore = 3.0) {
    machine_.ApplyMachineConfig(
        hwsim::MachineConfig::AllOn(machine_.topology(), core, uncore));
  }

  QuerySpec ComputeQuery(PartitionId p, double ops) {
    QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({p, ops});
    spec.origin_socket = engine_.placement().HomeOf(p);
    return spec;
  }

  sim::Simulator sim_;
  hwsim::Machine machine_;
  Engine engine_;
};

TEST_F(SchedulerTest, DefaultsToOnePartitionPerHwThread) {
  EXPECT_EQ(engine_.db().num_partitions(), 48);
}

TEST_F(SchedulerTest, QueryCompletesAndLatencyRecorded) {
  AllOn();
  // 2.6e9 ops/s per thread: 1e6 ops should take well under 5 ms
  // (including the 1 ms fluid slice granularity).
  engine_.Submit(ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
  EXPECT_LT(engine_.latency().all().Mean(), 5.0);
  EXPECT_EQ(engine_.scheduler().inflight(), 0);
}

TEST_F(SchedulerTest, MultiPartitionQueryCompletesWhenAllTasksDone) {
  AllOn();
  QuerySpec spec;
  spec.profile = &workload::ComputeBound();
  for (PartitionId p = 0; p < 8; ++p) spec.work.push_back({p, 1e6});
  spec.origin_socket = 0;
  engine_.Submit(spec);
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
}

TEST_F(SchedulerTest, CrossSocketQueryTravelsViaComm) {
  AllOn();
  // Partition 47 is homed on socket 1 but submitted from socket 0.
  QuerySpec spec = ComputeQuery(47, 1e6);
  spec.origin_socket = 0;
  engine_.Submit(spec);
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
  EXPECT_GE(engine_.message_layer().comm(0)->transferred(), 1);
}

TEST_F(SchedulerTest, NoProgressWhenAllThreadsIdle) {
  // Machine starts idle: the query must wait.
  engine_.Submit(ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_.latency().completed(), 0);
  EXPECT_EQ(engine_.scheduler().inflight(), 1);
  // Waking the socket completes it.
  AllOn();
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
}

TEST_F(SchedulerTest, ElasticShrinkKeepsPartitionsReachable) {
  // Only 2 threads of socket 0 active: all 24 socket-0 partitions are
  // still served (the elasticity extension of Section 3).
  machine_.ApplySocketConfig(
      0, hwsim::SocketConfig::FirstThreads(machine_.topology(), 2, 2.6, 3.0));
  for (PartitionId p = 0; p < 24; ++p) engine_.Submit(ComputeQuery(p, 1e5));
  sim_.RunFor(Millis(200));
  EXPECT_EQ(engine_.latency().completed(), 24);
}

TEST_F(SchedulerTest, DeactivationMidworkRequeues) {
  AllOn();
  engine_.Submit(ComputeQuery(3, 5.0e8));  // ~200 ms of single-thread work
  sim_.RunFor(Millis(20));
  EXPECT_EQ(engine_.latency().completed(), 0);
  // Turn socket 0 off mid-flight, then reactivate a *different* subset.
  machine_.ApplySocketConfig(0,
                             hwsim::SocketConfig::Idle(machine_.topology()));
  sim_.RunFor(Millis(20));
  machine_.ApplySocketConfig(0, hwsim::SocketConfig::FirstThreads(
                                    machine_.topology(), 4, 2.6, 3.0));
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(engine_.latency().completed(), 1);
}

TEST_F(SchedulerTest, UtilizationReflectsLoad) {
  AllOn();
  (void)engine_.TakeSocketUtilization(0);
  // Idle interval: utilization 0.
  sim_.RunFor(Millis(100));
  EXPECT_DOUBLE_EQ(engine_.TakeSocketUtilization(0), 0.0);
  // Saturating synthetic load: utilization 1.
  engine_.scheduler().SetSyntheticLoad(&workload::ComputeBound());
  sim_.RunFor(Millis(100));
  EXPECT_NEAR(engine_.TakeSocketUtilization(0), 1.0, 0.02);
  engine_.scheduler().SetSyntheticLoad(nullptr);
}

TEST_F(SchedulerTest, PartialLoadPartialUtilization) {
  AllOn();
  (void)engine_.TakeSocketUtilization(0);
  // One 24-thread socket at 2.6 GHz computes ~62 Gops/s; offering ~6 Gops
  // over 200 ms loads it to roughly 50 % for 100 ms.
  for (PartitionId p = 0; p < 24; ++p) engine_.Submit(ComputeQuery(p, 2.6e8));
  sim_.RunFor(Millis(200));
  const double u = engine_.TakeSocketUtilization(0);
  EXPECT_GT(u, 0.3);
  EXPECT_LT(u, 0.85);
}

TEST_F(SchedulerTest, BacklogDrainsFifoIsh) {
  AllOn();
  // Many small queries to one partition: all complete, in order of
  // submission (per-partition FIFO).
  for (int i = 0; i < 100; ++i) engine_.Submit(ComputeQuery(5, 1e5));
  sim_.RunFor(Millis(500));
  EXPECT_EQ(engine_.latency().completed(), 100);
}

TEST_F(SchedulerTest, RegisterProfileDeduplicates) {
  Scheduler& s = engine_.scheduler();
  const int a = s.RegisterProfile(&workload::ComputeBound());
  const int b = s.RegisterProfile(&workload::ComputeBound());
  const int c = s.RegisterProfile(&workload::MemoryScan());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(SchedulerBackpressureTest, RejectionsCountedAndSpillDrains) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  EngineParams params;
  params.message_layer.partition_queue_capacity = 4;
  Engine engine(&sim, &machine, params);
  // Machine idle: nothing drains, so the tiny partition queue fills and
  // later sends bounce into the scheduler's spill buffer.
  QuerySpec spec;
  spec.profile = &workload::ComputeBound();
  spec.work.push_back({0, 1e5});
  spec.origin_socket = 0;
  for (int i = 0; i < 10; ++i) engine.Submit(spec);
  const msg::MessageLayer::SocketStats stats = engine.socket_msg_stats(0);
  EXPECT_EQ(stats.send_rejects, 6);
  EXPECT_EQ(stats.enqueue_rejects, 6);
  EXPECT_EQ(engine.socket_msg_stats(1).send_rejects, 0);
  // Backpressure is flow control, not loss: once the socket wakes up the
  // spill retries succeed and every query completes.
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  sim.RunFor(Millis(100));
  EXPECT_EQ(engine.latency().completed(), 10);
  EXPECT_EQ(engine.scheduler().inflight(), 0);
}

TEST_F(SchedulerTest, BacklogOpsExactWhileQueued) {
  // Machine idle: submitted work sits untouched in the partition queues,
  // so the backlog must equal the submitted ops exactly (the queues keep
  // running totals; no sampling or draining involved).
  engine_.Submit(ComputeQuery(0, 1e5));
  engine_.Submit(ComputeQuery(1, 2.5e5));
  engine_.Submit(ComputeQuery(30, 5e5));  // homed on socket 1
  EXPECT_DOUBLE_EQ(engine_.scheduler().BacklogOps(0), 3.5e5);
  EXPECT_DOUBLE_EQ(engine_.scheduler().BacklogOps(1), 5e5);
  AllOn();
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_.latency().completed(), 3);
  EXPECT_DOUBLE_EQ(engine_.scheduler().BacklogOps(0), 0.0);
  EXPECT_DOUBLE_EQ(engine_.scheduler().BacklogOps(1), 0.0);
}

TEST_F(SchedulerTest, BacklogOpsCountsSpilledMessages) {
  // More ops than the queue accepts: the excess spills, and the backlog
  // accounting must include it (spill is still queued work).
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  EngineParams params;
  params.message_layer.partition_queue_capacity = 4;
  Engine engine(&sim, &machine, params);
  QuerySpec spec;
  spec.profile = &workload::ComputeBound();
  spec.work.push_back({0, 1e5});
  spec.origin_socket = 0;
  for (int i = 0; i < 10; ++i) engine.Submit(spec);
  EXPECT_DOUBLE_EQ(engine.scheduler().BacklogOps(0), 10e5);
}

TEST(StaticBindingTest, SkewedLoadCannotBeBalanced) {
  // The original data-oriented architecture (Section 3): worker i serves
  // partition i and nothing else. With the socket shrunk to four awake
  // threads, load landing on partitions 4..7 has no server under static
  // binding — the four awake workers idle once their own partitions
  // drain, so the skew cannot be balanced onto them. The elastic
  // scheduler spreads the same backlog over every awake worker and
  // completes all eight partitions.
  auto completed_after = [](bool static_binding, SimDuration horizon) {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    EngineParams params;
    params.scheduler.static_binding = static_binding;
    Engine engine(&sim, &machine, params);
    machine.ApplySocketConfig(
        0, hwsim::SocketConfig::FirstThreads(machine.topology(), 4, 2.6, 3.0));
    for (PartitionId p = 0; p < 8; ++p) {
      QuerySpec spec;
      spec.profile = &workload::ComputeBound();
      spec.work.push_back({p, 2.6e8});  // ~100 ms of single-thread work
      spec.origin_socket = 0;
      engine.Submit(spec);
    }
    sim.RunFor(horizon);
    return engine.latency().completed();
  };
  EXPECT_EQ(completed_after(/*static_binding=*/false, Millis(600)), 8);
  EXPECT_EQ(completed_after(/*static_binding=*/true, Millis(600)), 4);
}

TEST(StaticBindingTest, SleptThreadMakesPartitionUnavailable) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  EngineParams params;
  params.scheduler.static_binding = true;
  Engine engine(&sim, &machine, params);
  // Threads 0-3 of socket 0 active; thread 5 is asleep, so partition 5 has
  // no server under static binding even though four workers sit idle.
  machine.ApplySocketConfig(
      0, hwsim::SocketConfig::FirstThreads(machine.topology(), 4, 2.6, 3.0));
  QuerySpec starved;
  starved.profile = &workload::ComputeBound();
  starved.work.push_back({5, 1e5});
  starved.origin_socket = 0;
  engine.Submit(starved);
  QuerySpec served = starved;
  served.work[0].partition = 2;  // its bound worker is awake
  engine.Submit(served);
  sim.RunFor(Millis(200));
  EXPECT_EQ(engine.latency().completed(), 1);
  EXPECT_EQ(engine.scheduler().inflight(), 1);
  // Waking the thread restores the partition.
  machine.ApplySocketConfig(
      0, hwsim::SocketConfig::FirstThreads(machine.topology(), 8, 2.6, 3.0));
  sim.RunFor(Millis(200));
  EXPECT_EQ(engine.latency().completed(), 2);
  EXPECT_EQ(engine.scheduler().inflight(), 0);
}

TEST_F(SchedulerTest, LatencyResetKeepsWindow) {
  AllOn();
  engine_.Submit(ComputeQuery(0, 1e5));
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
  engine_.latency().ResetRunStats();
  EXPECT_EQ(engine_.latency().completed(), 0);
  EXPECT_EQ(engine_.latency().all().count(), 0u);
  EXPECT_FALSE(engine_.latency().WindowEmpty());  // window survives reset
}

TEST_F(SchedulerTest, MorselizedTaskCompletesAsOneQuery) {
  AllOn();
  QuerySpec spec = ComputeQuery(0, 1e6);
  spec.work[0].type = msg::MessageType::kScan;
  spec.work[0].morsels = 8;
  engine_.Submit(spec);
  sim_.RunFor(Millis(50));
  // Eight morsel messages, one query: exactly one completion recorded.
  EXPECT_EQ(engine_.latency().completed(), 1);
  EXPECT_EQ(engine_.scheduler().inflight(), 0);
}

TEST_F(SchedulerTest, MorselSplitEngagesMultipleWorkers) {
  AllOn();
  // One partition's large scan (~190 ms of single-thread fluid work).
  // Unsplit, only the worker owning the partition queue consumes it;
  // split into morsels, every active worker of the socket can claim a
  // share batch by batch, so the scan finishes far sooner.
  QuerySpec serial = ComputeQuery(1, 5e8);
  serial.work[0].type = msg::MessageType::kScan;
  engine_.Submit(serial);
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(engine_.latency().completed(), 1);
  const double serial_ms = engine_.latency().all().Mean();

  engine_.latency().ResetRunStats();
  QuerySpec split = ComputeQuery(1, 5e8);
  split.work[0].type = msg::MessageType::kScan;
  split.work[0].morsels = 48;
  engine_.Submit(split);
  sim_.RunFor(Seconds(1));
  ASSERT_EQ(engine_.latency().completed(), 1);
  const double split_ms = engine_.latency().all().Mean();
  // 48 morsels claimed in batches of 8 engage ~6 workers; slice
  // granularity adds a completion tail, so require >= 3x, not 6x.
  EXPECT_LT(split_ms, serial_ms / 3.0)
      << "morsels " << split_ms << " ms vs serial " << serial_ms << " ms";
}

TEST_F(SchedulerTest, MorselizedBacklogOpsStaysExact) {
  // All threads idle: the morsel messages sit queued; BacklogOps must
  // still report the task's exact total operations.
  QuerySpec spec = ComputeQuery(0, 4.8e5);
  spec.work[0].type = msg::MessageType::kScan;
  spec.work[0].morsels = 6;
  engine_.Submit(spec);
  sim_.RunFor(Millis(10));
  EXPECT_NEAR(engine_.scheduler().BacklogOps(0), 4.8e5, 1.0);
  AllOn();
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
  EXPECT_NEAR(engine_.scheduler().BacklogOps(0), 0.0, 1e-9);
}

TEST(SchedulerMorselTest, AutoSplitByMorselOpsAndTelemetryCounts) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  telemetry::Telemetry telemetry{telemetry::TelemetryParams{}};
  telemetry.Bind(&sim);
  EngineParams params;
  params.scheduler.morsel_ops = 1e5;  // tasks above this split
  params.telemetry = &telemetry;
  Engine engine(&sim, &machine, params);
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));

  // 1e6-op kWorkUnits task: auto-split into ceil(1e6/1e5) = 10 morsels.
  QuerySpec spec;
  spec.profile = &workload::ComputeBound();
  spec.work.push_back({0, 1e6});
  spec.origin_socket = 0;
  engine.Submit(spec);
  sim.RunFor(Millis(100));
  EXPECT_EQ(engine.latency().completed(), 1);
  const auto& reg = telemetry.registry();
  EXPECT_EQ(reg.CounterValueByName("engine/morsels_dispatched"), 10);
  EXPECT_EQ(reg.CounterValueByName("engine/morsels_completed"), 10);
  // All morsels completed: the queue-depth gauge is back to zero.
  const int gi = reg.GaugeIndex("engine/socket0/morsel_queue_depth");
  ASSERT_GE(gi, 0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(gi), 0.0);
}

TEST(SchedulerMorselTest, ExplicitMorselsCountedOnceEach) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  telemetry::Telemetry telemetry{telemetry::TelemetryParams{}};
  telemetry.Bind(&sim);
  EngineParams params;
  params.telemetry = &telemetry;
  Engine engine(&sim, &machine, params);

  QuerySpec spec;
  spec.profile = &workload::ComputeBound();
  PartitionWork pw;
  pw.partition = 0;
  pw.ops = 6e5;
  pw.type = msg::MessageType::kScan;
  pw.morsels = 6;
  spec.work.push_back(pw);
  spec.origin_socket = 0;
  engine.Submit(spec);
  // Threads still idle: dispatched but not completed; depth gauge shows
  // the outstanding morsels of socket 0.
  const auto& reg = telemetry.registry();
  EXPECT_EQ(reg.CounterValueByName("engine/morsels_dispatched"), 6);
  EXPECT_EQ(reg.CounterValueByName("engine/morsels_completed"), 0);
  const int gi = reg.GaugeIndex("engine/socket0/morsel_queue_depth");
  ASSERT_GE(gi, 0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(gi), 6.0);

  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  sim.RunFor(Millis(100));
  EXPECT_EQ(engine.latency().completed(), 1);
  EXPECT_EQ(reg.CounterValueByName("engine/morsels_completed"), 6);
  EXPECT_DOUBLE_EQ(reg.GaugeValue(gi), 0.0);
}

}  // namespace
}  // namespace ecldb::engine
