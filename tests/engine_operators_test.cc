#include <gtest/gtest.h>

#include "engine/operators.h"
#include "engine/table.h"

namespace ecldb::engine {
namespace {

/// A tiny star schema: fact(fk, qty, price, cost), dim(key, name, region).
class OperatorsTest : public ::testing::Test {
 protected:
  OperatorsTest()
      : fact_("fact", Schema({{"fk", ColumnType::kInt64},
                              {"qty", ColumnType::kInt64},
                              {"price", ColumnType::kInt64},
                              {"cost", ColumnType::kInt64}})),
        dim_("dim", Schema({{"key", ColumnType::kInt64},
                            {"name", ColumnType::kString},
                            {"region", ColumnType::kString}})) {
    // 3 dimension rows, key order (row = key - 1).
    dim_.AppendRow({int64_t{1}, std::string("alpha"), std::string("ASIA")});
    dim_.AppendRow({int64_t{2}, std::string("beta"), std::string("EUROPE")});
    dim_.AppendRow({int64_t{3}, std::string("gamma"), std::string("ASIA")});
    // 6 fact rows.
    const int64_t rows[6][4] = {{1, 10, 100, 40}, {2, 20, 200, 50},
                                {3, 30, 300, 60}, {1, 40, 400, 70},
                                {2, 50, 500, 80}, {3, 5, 600, 90}};
    for (const auto& r : rows) fact_.AppendRow({r[0], r[1], r[2], r[3]});
  }

  Table fact_;
  Table dim_;
};

TEST_F(OperatorsTest, TableScanBatchesAndSkipsTombstones) {
  fact_.DeleteRow(2);
  TableScan scan(&fact_, 4);
  std::vector<uint32_t> rows;
  ASSERT_TRUE(scan.Next(&rows));
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 1, 3, 4}));  // 4 live rows
  ASSERT_TRUE(scan.Next(&rows));
  EXPECT_EQ(rows, (std::vector<uint32_t>{5}));
  EXPECT_FALSE(scan.Next(&rows));
  scan.Reset();
  ASSERT_TRUE(scan.Next(&rows));
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(OperatorsTest, FactColumnRef) {
  const ColumnRef qty = ColumnRef::Fact(1);
  EXPECT_EQ(qty.GetInt(fact_, 0), 10);
  EXPECT_EQ(qty.GetInt(fact_, 4), 50);
  EXPECT_FALSE(qty.is_dim());
}

TEST_F(OperatorsTest, DimColumnRefFollowsForeignKey) {
  const ColumnRef name = ColumnRef::Dim(0, &dim_, 1);
  EXPECT_EQ(name.GetString(fact_, 0), "alpha");   // fk 1
  EXPECT_EQ(name.GetString(fact_, 1), "beta");    // fk 2
  EXPECT_EQ(name.GetString(fact_, 5), "gamma");   // fk 3
  EXPECT_TRUE(name.is_dim());
}

TEST_F(OperatorsTest, IntRangePredicate) {
  FilterOperator filter(&fact_,
                        {Predicate::IntRange(ColumnRef::Fact(1), 20, 40)});
  std::vector<uint32_t> rows = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(filter.Apply(&rows), 3u);
  EXPECT_EQ(rows, (std::vector<uint32_t>{1, 2, 3}));
}

TEST_F(OperatorsTest, StringPredicatesThroughJoin) {
  const ColumnRef region = ColumnRef::Dim(0, &dim_, 2);
  std::vector<uint32_t> rows = {0, 1, 2, 3, 4, 5};
  FilterOperator eq(&fact_, {Predicate::StringEq(region, "ASIA")});
  EXPECT_EQ(eq.Apply(&rows), 4u);  // fks 1 and 3

  rows = {0, 1, 2, 3, 4, 5};
  const ColumnRef name = ColumnRef::Dim(0, &dim_, 1);
  FilterOperator in(&fact_, {Predicate::StringIn(name, {"alpha", "beta"})});
  EXPECT_EQ(in.Apply(&rows), 4u);

  rows = {0, 1, 2, 3, 4, 5};
  FilterOperator range(&fact_, {Predicate::StringRange(name, "b", "c")});
  EXPECT_EQ(range.Apply(&rows), 2u);  // "beta" only
}

TEST_F(OperatorsTest, ConjunctionOfPredicates) {
  FilterOperator filter(
      &fact_, {Predicate::StringEq(ColumnRef::Dim(0, &dim_, 2), "ASIA"),
               Predicate::IntRange(ColumnRef::Fact(1), 10, 30)});
  std::vector<uint32_t> rows = {0, 1, 2, 3, 4, 5};
  // Row 0 (fk 1 -> ASIA, qty 10) and row 2 (fk 3 -> ASIA, qty 30).
  EXPECT_EQ(filter.Apply(&rows), 2u);
  EXPECT_EQ(rows, (std::vector<uint32_t>{0, 2}));
}

TEST_F(OperatorsTest, ValueExpressions) {
  const ValueExpr col = ValueExpr::Column(ColumnRef::Fact(2));
  EXPECT_DOUBLE_EQ(col.Eval(fact_, 1), 200.0);
  const ValueExpr prod =
      ValueExpr::Product(ColumnRef::Fact(1), ColumnRef::Fact(2), 0.01);
  EXPECT_DOUBLE_EQ(prod.Eval(fact_, 0), 10 * 100 * 0.01);
  const ValueExpr diff =
      ValueExpr::Difference(ColumnRef::Fact(2), ColumnRef::Fact(3));
  EXPECT_DOUBLE_EQ(diff.Eval(fact_, 5), 600.0 - 90.0);
}

TEST_F(OperatorsTest, UngroupedAggregation) {
  HashAggregator agg({}, ValueExpr::Column(ColumnRef::Fact(2)));
  agg.Consume(fact_, {0, 1, 2});
  EXPECT_EQ(agg.rows_consumed(), 3);
  EXPECT_EQ(agg.groups().size(), 1u);
  EXPECT_DOUBLE_EQ(agg.TotalSum(), 600.0);
}

TEST_F(OperatorsTest, GroupedAggregationByJoinColumn) {
  HashAggregator agg({ColumnRef::Dim(0, &dim_, 2)},
                     ValueExpr::Column(ColumnRef::Fact(2)));
  agg.Consume(fact_, {0, 1, 2, 3, 4, 5});
  ASSERT_EQ(agg.groups().size(), 2u);
  EXPECT_DOUBLE_EQ(agg.groups().at("ASIA"), 100 + 300 + 400 + 600);
  EXPECT_DOUBLE_EQ(agg.groups().at("EUROPE"), 200 + 500);
}

TEST_F(OperatorsTest, MultiColumnGroupKeys) {
  HashAggregator agg({ColumnRef::Dim(0, &dim_, 2), ColumnRef::Fact(0)},
                     ValueExpr::Column(ColumnRef::Fact(2)));
  agg.Consume(fact_, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(agg.groups().size(), 3u);  // (ASIA,1) (EUROPE,2) (ASIA,3)
  EXPECT_DOUBLE_EQ(agg.groups().at("ASIA|1"), 500.0);
}

TEST_F(OperatorsTest, MergeCombinesPartials) {
  HashAggregator a({ColumnRef::Dim(0, &dim_, 2)},
                   ValueExpr::Column(ColumnRef::Fact(2)));
  HashAggregator b({ColumnRef::Dim(0, &dim_, 2)},
                   ValueExpr::Column(ColumnRef::Fact(2)));
  a.Consume(fact_, {0, 1, 2});
  b.Consume(fact_, {3, 4, 5});
  a.Merge(b);
  EXPECT_EQ(a.rows_consumed(), 6);
  EXPECT_DOUBLE_EQ(a.groups().at("ASIA"), 1400.0);
  EXPECT_DOUBLE_EQ(a.groups().at("EUROPE"), 700.0);
}

TEST_F(OperatorsTest, FullPipeline) {
  FilterOperator filter(&fact_,
                        {Predicate::StringEq(ColumnRef::Dim(0, &dim_, 2), "ASIA")});
  HashAggregator agg({ColumnRef::Dim(0, &dim_, 1)},
                     ValueExpr::Difference(ColumnRef::Fact(2), ColumnRef::Fact(3)));
  const int64_t scanned = RunAggregationPipeline(&fact_, filter, &agg);
  EXPECT_EQ(scanned, 6);
  EXPECT_EQ(agg.rows_consumed(), 4);
  EXPECT_DOUBLE_EQ(agg.groups().at("alpha"), (100 - 40) + (400 - 70));
  EXPECT_DOUBLE_EQ(agg.groups().at("gamma"), (300 - 60) + (600 - 90));
}

TEST_F(OperatorsTest, PipelineSkipsDeletedRows) {
  fact_.DeleteRow(0);
  FilterOperator filter(&fact_, {});
  HashAggregator agg({}, ValueExpr::Column(ColumnRef::Fact(2)));
  const int64_t scanned = RunAggregationPipeline(&fact_, filter, &agg);
  EXPECT_EQ(scanned, 5);
  EXPECT_DOUBLE_EQ(agg.TotalSum(), 2000.0);
}

}  // namespace
}  // namespace ecldb::engine
