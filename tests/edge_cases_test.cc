// Edge cases and failure-injection tests across modules.
#include <gtest/gtest.h>

#include "ecl/ecl.h"
#include "ecl/os_governor.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "profile/config_generator.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/work_profiles.h"

namespace ecldb {
namespace {

// ---------------------------------------------------------------------------
// Custom (non-Haswell) topologies: the library is not hard-wired to the
// paper's 2-socket/12-core machine.
// ---------------------------------------------------------------------------

hwsim::MachineParams SmallMachine() {
  hwsim::MachineParams p = hwsim::MachineParams::HaswellEp();
  p.topology = hwsim::Topology{1, 4, 2};
  p.power.pkg_base_halted_w = {10.0};
  return p;
}

TEST(CustomTopologyTest, SingleSocketMachineWorks) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, SmallMachine());
  EXPECT_EQ(machine.topology().total_threads(), 8);
  machine.ApplySocketConfig(
      0, hwsim::SocketConfig::AllOn(machine.topology(), 2.0, 2.0));
  machine.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim.RunFor(Millis(100));
  EXPECT_GT(machine.TotalEnergyJoules(), 0.0);
  EXPECT_GT(machine.TakeCompletedOps(0), 0.0);
}

TEST(CustomTopologyTest, EngineAndEclOnSmallMachine) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, SmallMachine());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  EXPECT_EQ(engine.db().num_partitions(), 8);
  ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
  loop.Start();
  EXPECT_EQ(loop.num_sockets(), 1);
  engine.scheduler().SetSyntheticLoad(&workload::ComputeBound());
  sim.RunFor(Seconds(30));
  // The ECL primed its profile via multiplexed adaptation from scratch.
  EXPECT_GT(loop.socket(0).profile().measured_count(), 50);
  EXPECT_GE(loop.socket(0).profile().MostEfficientIndex(), 0);
}

TEST(CustomTopologyTest, GeneratorAdaptsToSmallSocket) {
  const hwsim::Topology topo{1, 4, 2};
  profile::ConfigGenerator gen(topo, hwsim::FrequencyTable::HaswellEp());
  profile::GeneratorParams params;  // 4 x 3, c_max 256
  // 8 threads x 4 x 3 = 96 <= 256: per-thread granularity.
  EXPECT_EQ(gen.GroupSizeFor(params), 1);
  EXPECT_EQ(gen.Generate(params).size(), 97u);
}

// ---------------------------------------------------------------------------
// ECL without priming: bootstraps via the widest configuration and fills
// the profile through multiplexed adaptation under live load.
// ---------------------------------------------------------------------------

TEST(EclBootstrapTest, ColdStartServesLoadAndLearns) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  workload::KvParams kvp;
  kvp.indexed = false;
  workload::KvWorkload kv(&engine, kvp);
  ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
  loop.Start();
  const double cap = workload::BaselineCapacityQps(machine.params(), kv);
  workload::ConstantProfile profile(0.3, Seconds(40));
  workload::DriverParams dp;
  dp.capacity_qps = cap;
  workload::LoadDriver driver(&sim, &engine, &kv, &profile, dp);
  driver.Start();
  sim.RunFor(Seconds(45));
  // Queries were served even though the profile started empty.
  EXPECT_EQ(engine.latency().completed(), driver.submitted());
  EXPECT_GT(loop.socket(0).profile().measured_count(), 20);
}

TEST(EclLifecycleTest, StopCancelsControl) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
  loop.Start();
  sim.RunFor(Seconds(3));
  loop.Stop();
  const int64_t writes_at_stop = machine.config_writes();
  sim.RunFor(Seconds(5));
  // No further configuration writes after Stop().
  EXPECT_EQ(machine.config_writes(), writes_at_stop);
}

// ---------------------------------------------------------------------------
// Scheduler under backpressure and churn.
// ---------------------------------------------------------------------------

TEST(SchedulerStressTest, QueueOverflowSpillsAndRecovers) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::EngineParams ep;
  ep.message_layer.partition_queue_capacity = 16;  // tiny rings
  ep.message_layer.comm_channel_capacity = 16;
  engine::Engine engine(&sim, &machine, ep);
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  // Burst far beyond the ring capacity into a single partition.
  for (int i = 0; i < 500; ++i) {
    engine::QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({0, 1e5});
    spec.origin_socket = 0;
    engine.Submit(spec);
  }
  sim.RunFor(Seconds(2));
  EXPECT_EQ(engine.latency().completed(), 500);
}

TEST(SchedulerStressTest, RapidConfigTogglingLosesNoWork) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  const hwsim::Topology& topo = machine.topology();
  for (int i = 0; i < 200; ++i) {
    engine::QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({i % engine.db().num_partitions(), 3e6});
    spec.origin_socket = engine.placement().HomeOf(spec.work[0].partition);
    engine.Submit(spec);
  }
  // RTI-like toggling every 10 ms between a small config and idle.
  for (int cycle = 0; cycle < 100; ++cycle) {
    machine.ApplyMachineConfig(
        cycle % 2 == 0 ? hwsim::MachineConfig::AllOn(topo, 1.2, 1.2)
                       : hwsim::MachineConfig::Idle(topo));
    sim.RunFor(Millis(10));
  }
  machine.ApplyMachineConfig(hwsim::MachineConfig::AllOn(topo, 2.6, 3.0));
  sim.RunFor(Seconds(2));
  EXPECT_EQ(engine.latency().completed(), 200);
}

TEST(SchedulerStressTest, MixedProfilesCoexist) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  for (int i = 0; i < 100; ++i) {
    engine::QuerySpec spec;
    spec.profile = (i % 2 == 0) ? &workload::ComputeBound()
                                : &workload::MemoryScan();
    spec.work.push_back({i % engine.db().num_partitions(), 1e5});
    spec.origin_socket = engine.placement().HomeOf(spec.work[0].partition);
    engine.Submit(spec);
  }
  sim.RunFor(Seconds(2));
  EXPECT_EQ(engine.latency().completed(), 100);
}

// ---------------------------------------------------------------------------
// Load profile edge cases.
// ---------------------------------------------------------------------------

TEST(LoadProfileEdgeTest, ScaledSpikeKeepsShape) {
  workload::SpikeProfile full(Seconds(180));
  workload::SpikeProfile half(Seconds(90));
  for (int s = 0; s <= 90; s += 5) {
    EXPECT_NEAR(half.LoadAt(Seconds(s)), full.LoadAt(Seconds(2 * s)), 1e-9);
  }
}

TEST(LoadProfileEdgeTest, TwitterDeterministicPerSeed) {
  workload::TwitterProfile a(7), b(7), c(8);
  bool differs = false;
  for (SimTime t = 0; t < a.duration(); t += Seconds(1)) {
    EXPECT_DOUBLE_EQ(a.LoadAt(t), b.LoadAt(t));
    if (a.LoadAt(t) != c.LoadAt(t)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(LoadProfileEdgeTest, OutOfRangeIsZero) {
  workload::SpikeProfile spike;
  EXPECT_DOUBLE_EQ(spike.LoadAt(-Seconds(1)), 0.0);
  EXPECT_DOUBLE_EQ(spike.LoadAt(Seconds(181)), 0.0);
  workload::TwitterProfile twitter;
  EXPECT_DOUBLE_EQ(twitter.LoadAt(Seconds(999)), 0.0);
}

// ---------------------------------------------------------------------------
// Firmware details.
// ---------------------------------------------------------------------------

TEST(FirmwareEdgeTest, EetDelayRestartsWhenRequestDrops) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  const hwsim::Topology& topo = machine.topology();
  machine.SetEpb(hwsim::EpbSetting::kBalanced);
  machine.ApplySocketConfig(0, hwsim::SocketConfig::FirstThreads(topo, 2, 3.1, 1.2));
  sim.RunFor(Millis(800));
  // Drop below turbo, then re-request: the 1 s delay starts over.
  machine.ApplySocketConfig(0, hwsim::SocketConfig::FirstThreads(topo, 2, 2.0, 1.2));
  sim.RunFor(Millis(300));
  machine.ApplySocketConfig(0, hwsim::SocketConfig::FirstThreads(topo, 2, 3.1, 1.2));
  sim.RunFor(Millis(500));
  EXPECT_DOUBLE_EQ(machine.effective_config().sockets[0].core_freq_ghz[0], 2.6);
  sim.RunFor(Millis(600));
  EXPECT_DOUBLE_EQ(machine.effective_config().sockets[0].core_freq_ghz[0], 3.1);
}

TEST(FirmwareEdgeTest, TurboBudgetRecovers) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  const hwsim::Topology& topo = machine.topology();
  machine.SetEpb(hwsim::EpbSetting::kPerformance);
  machine.ApplySocketConfig(0, hwsim::SocketConfig::AllOn(topo, 3.1, 3.0));
  for (int t = 0; t < topo.threads_per_socket(); ++t) {
    machine.SetThreadLoad(t, &workload::Firestarter(), 1.0);
  }
  sim.RunFor(Millis(1500));  // budget exhausted
  EXPECT_DOUBLE_EQ(machine.effective_config().sockets[0].core_freq_ghz[0], 2.6);
  // Back off to scalar work: the budget refills and turbo returns.
  for (int t = 0; t < topo.threads_per_socket(); ++t) {
    machine.SetThreadLoad(t, &workload::ComputeBound(), 1.0);
  }
  sim.RunFor(Seconds(3));
  EXPECT_DOUBLE_EQ(machine.effective_config().sockets[0].core_freq_ghz[0], 3.1);
}

// ---------------------------------------------------------------------------
// Profile selection details.
// ---------------------------------------------------------------------------

TEST(ProfileEdgeTest, FindForDemandBreaksTiesByPower) {
  const hwsim::Topology topo = hwsim::Topology::HaswellEp2S();
  std::vector<profile::Configuration> configs;
  configs.push_back({hwsim::SocketConfig::Idle(topo), 0, 0, -1});
  for (int i = 0; i < 2; ++i) {
    profile::Configuration c;
    c.hw = hwsim::SocketConfig::FirstThreads(topo, 4 + 2 * i, 2.0, 2.0);
    configs.push_back(std::move(c));
  }
  profile::EnergyProfile profile(std::move(configs));
  // Same efficiency (perf/power = 2), different absolute power.
  profile.Record(1, 10.0, 20.0, Seconds(1));
  profile.Record(2, 20.0, 40.0, Seconds(1));
  EXPECT_EQ(profile.FindForDemand(15.0), 1);  // cheaper of the equals
  EXPECT_EQ(profile.FindForDemand(30.0), 2);  // only one satisfies
}

TEST(ProfileEdgeTest, GeneratorSingleFrequency) {
  profile::ConfigGenerator gen(hwsim::Topology::HaswellEp2S(),
                               hwsim::FrequencyTable::HaswellEp());
  profile::GeneratorParams params;
  params.n_core_freqs = 1;
  params.n_uncore_freqs = 1;
  const auto configs = gen.Generate(params);
  // 24 thread counts x 1 x 1 + idle.
  EXPECT_EQ(configs.size(), 25u);
  for (size_t i = 1; i < configs.size(); ++i) {
    EXPECT_DOUBLE_EQ(configs[i].hw.uncore_freq_ghz, 3.0);
  }
}


// ---------------------------------------------------------------------------
// OS frequency governor (the non-integrated alternative).
// ---------------------------------------------------------------------------

TEST(OsGovernorTest, PollingDbmsLooksFullyBusy) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  ecl::OsGovernorParams params;  // sees_polling_as_busy = true
  ecl::OsGovernor governor(&sim, &engine, params);
  governor.Start();
  sim.RunFor(Seconds(2));  // zero query load
  // The governor never scales down: the polling DBMS pins C0 residency.
  EXPECT_DOUBLE_EQ(governor.current_freq_ghz(), machine.freqs().max_core());
  EXPECT_DOUBLE_EQ(governor.last_utilization(), 1.0);
}

TEST(OsGovernorTest, BlockingDbmsSignalScalesFrequency) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  ecl::OsGovernorParams params;
  params.sees_polling_as_busy = false;
  ecl::OsGovernor governor(&sim, &engine, params);
  governor.Start();
  sim.RunFor(Seconds(2));  // idle: frequency drops to the minimum
  EXPECT_DOUBLE_EQ(governor.current_freq_ghz(), machine.freqs().min_core());
  // Saturate: the governor jumps back to the maximum.
  engine.scheduler().SetSyntheticLoad(&workload::ComputeBound());
  sim.RunFor(Seconds(1));
  EXPECT_DOUBLE_EQ(governor.current_freq_ghz(), machine.freqs().max_core());
}

}  // namespace
}  // namespace ecldb
