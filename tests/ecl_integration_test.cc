#include <gtest/gtest.h>

#include <memory>

#include "experiment/experiment.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/micro.h"
#include "workload/work_profiles.h"

namespace ecldb {
namespace {

using experiment::ControlMode;
using experiment::RunLoadExperiment;
using experiment::RunOptions;
using experiment::RunResult;

experiment::WorkloadFactory KvScanFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = false;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

experiment::WorkloadFactory KvIndexedFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    workload::KvParams params;
    params.indexed = true;
    return std::make_unique<workload::KvWorkload>(e, params);
  };
}

RunOptions Options(ControlMode mode) {
  RunOptions o;
  o.mode = mode;
  o.prime_duration = Seconds(28);
  return o;
}

class EclIntegrationTest : public ::testing::Test {};

TEST_F(EclIntegrationTest, EclSavesEnergyAtHalfLoad) {
  workload::ConstantProfile profile(0.5, Seconds(20));
  const RunResult base =
      RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kBaseline));
  const RunResult ecl =
      RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kEcl));
  // Paper Section 6.2: energy savings between 15 % and ~40 % for the
  // bandwidth-bound key-value workload.
  const double savings = experiment::SavingsPercent(base, ecl);
  EXPECT_GT(savings, 15.0);
  EXPECT_LT(savings, 60.0);
  // Both modes keep up with the offered load.
  EXPECT_EQ(base.completed, base.submitted);
  EXPECT_EQ(ecl.completed, ecl.submitted);
}

TEST_F(EclIntegrationTest, EclNeverDrawsMoreThanBaseline) {
  // "The ECL never draws more power than the baseline, because only the
  // most energy-efficient configurations are applied" (Section 6.1).
  for (double load : {0.2, 0.6, 1.0}) {
    workload::ConstantProfile profile(load, Seconds(15));
    const RunResult base = RunLoadExperiment(KvScanFactory(), profile,
                                             Options(ControlMode::kBaseline));
    const RunResult ecl =
        RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kEcl));
    EXPECT_LE(ecl.avg_power_w, base.avg_power_w * 1.02) << "load " << load;
  }
}

TEST_F(EclIntegrationTest, LatencyLimitHeldOutsideOverload) {
  workload::ConstantProfile profile(0.5, Seconds(20));
  const RunResult ecl =
      RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kEcl));
  EXPECT_LT(ecl.violation_frac, 0.01);
  EXPECT_LT(ecl.p99_ms, 100.0);
}

TEST_F(EclIntegrationTest, SavingsGrowAsLoadShrinks) {
  // Energy proportionality: the ECL's relative savings are largest at low
  // load where the baseline wastes idle power.
  workload::ConstantProfile low(0.15, Seconds(15));
  workload::ConstantProfile high(0.85, Seconds(15));
  const double save_low = experiment::SavingsPercent(
      RunLoadExperiment(KvScanFactory(), low, Options(ControlMode::kBaseline)),
      RunLoadExperiment(KvScanFactory(), low, Options(ControlMode::kEcl)));
  const double save_high = experiment::SavingsPercent(
      RunLoadExperiment(KvScanFactory(), high, Options(ControlMode::kBaseline)),
      RunLoadExperiment(KvScanFactory(), high, Options(ControlMode::kEcl)));
  EXPECT_GT(save_low, save_high);
}

TEST_F(EclIntegrationTest, IndexedWorkloadAlsoSaves) {
  workload::ConstantProfile profile(0.5, Seconds(20));
  const double savings = experiment::SavingsPercent(
      RunLoadExperiment(KvIndexedFactory(), profile, Options(ControlMode::kBaseline)),
      RunLoadExperiment(KvIndexedFactory(), profile, Options(ControlMode::kEcl)));
  // Paper Table 1: indexed workloads save 15.8 % - 23.4 %.
  EXPECT_GT(savings, 8.0);
  EXPECT_LT(savings, 45.0);
}

TEST_F(EclIntegrationTest, DeterministicForSameOptions) {
  workload::ConstantProfile profile(0.4, Seconds(10));
  const RunResult a =
      RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kEcl));
  const RunResult b =
      RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kEcl));
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
}

TEST_F(EclIntegrationTest, OverloadExitsFasterThanBaseline) {
  // Section 6.1: for the bandwidth-bound workload the baseline's all-on
  // configuration generates more memory-controller contention, so the ECL
  // clears an overload phase faster.
  workload::StepProfile profile({{Seconds(0), 1.1}, {Seconds(10), 0.3}},
                                Seconds(25));
  const RunResult base = RunLoadExperiment(KvScanFactory(), profile,
                                           Options(ControlMode::kBaseline));
  const RunResult ecl =
      RunLoadExperiment(KvScanFactory(), profile, Options(ControlMode::kEcl));
  EXPECT_LT(ecl.p99_ms, base.p99_ms);
}

TEST_F(EclIntegrationTest, DisablingAdaptationHurtsAfterWorkloadChange) {
  // Reproduces the core of Fig. 15/16: a sudden switch from the indexed to
  // the non-indexed key-value workload. With profile maintenance the ECL
  // re-learns; with a stale (static) profile it wastes energy.
  auto run = [&](bool maintain) {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    engine::Engine engine(&sim, &machine, engine::EngineParams{});
    workload::KvParams pi;
    pi.indexed = true;
    workload::KvWorkload indexed(&engine, pi);
    workload::KvParams ps;
    ps.indexed = false;
    workload::KvWorkload scan(&engine, ps);

    ecl::EclParams params;
    params.socket.maintenance.enable_online = maintain;
    params.socket.maintenance.enable_multiplexed = maintain;
    ecl::EnergyControlLoop loop(&sim, &engine, params);
    loop.Start();
    // Prime on the indexed workload.
    engine.scheduler().SetSyntheticLoad(&indexed.profile());
    sim.RunFor(Seconds(28));
    engine.scheduler().SetSyntheticLoad(nullptr);

    // Run the *scan* workload at 50 % load with the indexed profile.
    const double cap = workload::BaselineCapacityQps(machine.params(), scan);
    workload::ConstantProfile profile(0.5, Seconds(40));
    workload::DriverParams dp;
    dp.capacity_qps = cap;
    workload::LoadDriver driver(&sim, &engine, &scan, &profile, dp);
    const double e0 = machine.TotalEnergyJoules();
    driver.Start();
    sim.RunFor(Seconds(40));
    return machine.TotalEnergyJoules() - e0;
  };
  const double adaptive_j = run(true);
  const double static_j = run(false);
  // "The ECL static setting draws significantly more energy" (Fig. 15).
  EXPECT_GT(static_j, adaptive_j * 1.05);
}

}  // namespace
}  // namespace ecldb
