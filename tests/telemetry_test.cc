#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "experiment/experiment.h"
#include "experiment/run_matrix.h"
#include "hwsim/hw_config.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "telemetry/export.h"
#include "telemetry/metric_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/micro.h"
#include "workload/ssb.h"
#include "workload/work_profiles.h"
#include "workload/workload.h"

namespace ecldb::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

TEST(CounterTest, UnboundHandleCountsLocally) {
  Counter c;
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(CounterTest, CopyOfLocalCounterIsIndependent) {
  Counter a;
  a.Add(5);
  Counter b = a;  // value copies, storage re-points to the copy
  b.Increment();
  EXPECT_EQ(a.value(), 5);
  EXPECT_EQ(b.value(), 6);
}

TEST(CounterTest, RegistryBackedCopiesShareTheCell) {
  MetricRegistry reg;
  Counter a = reg.AddCounter("x");
  Counter b = a;
  a.Increment();
  b.Add(2);
  EXPECT_EQ(a.value(), 3);
  EXPECT_EQ(reg.CounterValueByName("x"), 3);
}

TEST(RegistryTest, CounterFnReadsThrough) {
  MetricRegistry reg;
  int64_t backing = 0;
  reg.AddCounterFn("atomic_mirror", [&backing] { return backing; });
  backing = 17;
  bool found = false;
  EXPECT_EQ(reg.CounterValueByName("atomic_mirror", &found), 17);
  EXPECT_TRUE(found);
  EXPECT_EQ(reg.CounterValueByName("missing", &found), 0);
  EXPECT_FALSE(found);
}

TEST(HistogramTest, DefaultBucketBoundariesAreExactPowersOfTwo) {
  // The golden property: bound[i] = first_bound * growth^i computed by
  // repeated multiplication. With growth == 2.0 every step is exact, so
  // bound[i] == ldexp(first_bound, i) bit-for-bit.
  MetricRegistry reg;
  Histogram* h = reg.AddHistogram("lat", HistogramSpec{});
  const std::vector<double>& bounds = h->bounds();
  ASSERT_EQ(bounds.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(bounds[static_cast<size_t>(i)], std::ldexp(1e-3, i)) << i;
  }
  // Bucket semantics: bucket i counts v <= bound[i] (above bound[i-1]).
  EXPECT_EQ(h->BucketOf(1e-3), 0);
  EXPECT_EQ(h->BucketOf(1e-3 * 1.0001), 1);
  EXPECT_EQ(h->BucketOf(0.0), 0);
  EXPECT_EQ(h->BucketOf(bounds.back()), 31);
  EXPECT_EQ(h->BucketOf(bounds.back() * 2.0), 32);  // overflow bucket
}

TEST(HistogramTest, RecordsAndSummarizes) {
  MetricRegistry reg;
  Histogram* h = reg.AddHistogram("lat", HistogramSpec{1.0, 2.0, 4});
  for (double v : {0.5, 1.5, 3.0, 100.0}) h->Record(v);
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum(), 105.0);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
  EXPECT_DOUBLE_EQ(h->Mean(), 105.0 / 4.0);
  EXPECT_EQ(h->buckets()[0], 1);  // 0.5
  EXPECT_EQ(h->buckets()[1], 1);  // 1.5
  EXPECT_EQ(h->buckets()[2], 1);  // 3.0
  EXPECT_EQ(h->buckets()[4], 1);  // 100 -> overflow
  EXPECT_DOUBLE_EQ(h->PercentileBound(0), 1.0);
  EXPECT_DOUBLE_EQ(h->PercentileBound(100), 100.0);  // overflow -> max
}

TEST(RegistryTest, DumpIsSortedAndRepeatable) {
  MetricRegistry reg;
  Counter z = reg.AddCounter("zzz/last");
  reg.AddCounter("aaa/first");
  reg.AddGauge("mmm/middle", [] { return 1.25; });
  z.Add(3);
  const std::string d1 = reg.Dump();
  const std::string d2 = reg.Dump();
  EXPECT_EQ(d1, d2);
  // Lines sort lexicographically ("counter <name>" lines group before
  // "gauge <name>"), independent of registration order.
  const size_t a = d1.find("counter aaa/first");
  const size_t zp = d1.find("counter zzz/last");
  const size_t m = d1.find("gauge mmm/middle");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(zp, std::string::npos);
  EXPECT_LT(a, zp);
  EXPECT_LT(zp, m);
  EXPECT_NE(d1.find("counter zzz/last 3"), std::string::npos);
}

TEST(RegistryTest, PathPrefixScopesRegistrationsOnly) {
  // Cluster runs register each node's component metrics under "node{N}/";
  // the prefix applies at registration time, so lookups and dumps see the
  // qualified names. Clearing it restores unqualified registration — the
  // default empty prefix keeps single-node metric names (and golden
  // dumps) byte-identical.
  MetricRegistry reg;
  reg.SetPathPrefix("node0/");
  Counter a = reg.AddCounter("msg/sends");
  reg.AddGauge("ecl/pressure", [] { return 0.5; });
  reg.SetPathPrefix("node1/");
  Counter b = reg.AddCounter("msg/sends");  // no clash: different node
  reg.SetPathPrefix("");
  Counter c = reg.AddCounter("cluster/wakes");
  a.Add(2);
  b.Add(5);
  c.Add(7);
  EXPECT_EQ(reg.CounterValueByName("node0/msg/sends"), 2);
  EXPECT_EQ(reg.CounterValueByName("node1/msg/sends"), 5);
  EXPECT_EQ(reg.CounterValueByName("cluster/wakes"), 7);
  bool found = true;
  reg.CounterValueByName("msg/sends", &found);
  EXPECT_FALSE(found);  // the unqualified name was never registered
  const std::string dump = reg.Dump();
  EXPECT_NE(dump.find("counter node0/msg/sends 2"), std::string::npos);
  EXPECT_NE(dump.find("gauge node0/ecl/pressure"), std::string::npos);
  EXPECT_NE(dump.find("counter cluster/wakes 7"), std::string::npos);
}

TEST(TraceTest, PathPrefixScopesLaneRegistration) {
  TelemetryParams tp;
  tp.enabled = true;
  Telemetry tel(tp);
  tel.SetPathPrefix("node3/");
  const int lane = tel.trace().RegisterLane("ecl/socket0");
  tel.SetPathPrefix("");
  tel.trace().Instant(lane, "ecl", "tick", Micros(1));
  const std::string json = ChromeTraceJson(tel);
  EXPECT_NE(json.find("\"name\":\"node3/ecl/socket0\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder + Chrome export
// ---------------------------------------------------------------------------

TEST(TraceTest, RingBufferKeepsNewestAndCountsDropped) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  const int lane = rec.RegisterLane("test");
  for (int i = 0; i < 6; ++i) {
    rec.Instant(lane, "t", "e", Millis(i), "\"i\":" + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2);
  const std::vector<const TraceEvent*> events = rec.InOrder();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front()->ts, Millis(2));  // oldest surviving
  EXPECT_EQ(events.back()->ts, Millis(5));
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec(8);
  const int lane = rec.RegisterLane("test");
  rec.Instant(lane, "t", "e", Millis(1));
  rec.Span(lane, "t", "s", Millis(1), Millis(2));
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0);
}

std::string BuildSmallTraceJson() {
  TelemetryParams tp;
  tp.enabled = true;
  Telemetry tel(tp);
  const int lane = tel.trace().RegisterLane("ecl/socket0");
  tel.trace().Span(lane, "ecl", "tick", Micros(1500), Micros(2500),
                   "\"config\":3");
  tel.trace().Instant(lane, "ecl", "drift_detected", Micros(2000));
  tel.trace().CounterSample("power_w", Micros(2000), 95.5);
  return ChromeTraceJson(tel);
}

TEST(TraceTest, ChromeJsonIsDeterministicAndWellFormed) {
  const std::string j1 = BuildSmallTraceJson();
  const std::string j2 = BuildSmallTraceJson();
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(j1.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(j1.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(j1.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(j1.find("\"name\":\"ecl/socket0\""), std::string::npos);
  // Timestamps are integer-formatted microseconds with ns fraction.
  EXPECT_NE(j1.find("\"ts\":1500.000"), std::string::npos);
  EXPECT_NE(j1.find("\"dur\":1000.000"), std::string::npos);
  EXPECT_NE(j1.find("\"args\":{\"config\":3}"), std::string::npos);
}

TEST(TraceTest, JsonHelpers) {
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

TEST(SamplerTest, SamplesEveryPeriodRelativeToOrigin) {
  TelemetryParams tp;
  tp.enabled = true;
  tp.sample_period = Millis(500);
  Telemetry tel(tp);
  sim::Simulator sim;
  tel.Bind(&sim);
  tel.registry().AddGauge("t_echo", [&sim] { return ToSeconds(sim.now()); });
  sim.RunFor(Seconds(1));  // origin != 0
  tel.StartSampler(sim.now());
  sim.RunFor(Millis(2500));
  ASSERT_EQ(tel.series().size(), 5u);
  const std::vector<std::string> header = tel.SeriesHeader();
  ASSERT_EQ(header.size(), 2u);
  EXPECT_EQ(header[0], "t_s");
  EXPECT_EQ(header[1], "t_echo");
  EXPECT_DOUBLE_EQ(tel.series()[0][0], 0.5);   // relative to origin
  EXPECT_DOUBLE_EQ(tel.series()[0][1], 1.5);   // absolute sim time
  EXPECT_DOUBLE_EQ(tel.series()[4][0], 2.5);
  tel.StopSampler();
  sim.RunFor(Seconds(1));
  EXPECT_EQ(tel.series().size(), 5u);  // no rows after stop
}

TEST(SamplerTest, DisabledTelemetryNeverSamples) {
  TelemetryParams tp;  // enabled = false
  Telemetry tel(tp);
  sim::Simulator sim;
  tel.Bind(&sim);
  tel.registry().AddGauge("g", [] { return 1.0; });
  tel.StartSampler(0);
  sim.RunFor(Seconds(2));
  EXPECT_TRUE(tel.series().empty());
  EXPECT_EQ(tel.trace().size(), 0u);
}

// ---------------------------------------------------------------------------
// hwsim instrumentation: polled instructions
// ---------------------------------------------------------------------------

TEST(HwsimTelemetryTest, WorklessActiveThreadsRetirePollInstructions) {
  sim::Simulator sim;
  TelemetryParams tp;  // counters count even when disabled
  Telemetry tel(tp);
  tel.Bind(&sim);
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  machine.AttachTelemetry(&tel);
  const hwsim::Topology& topo = machine.topology();
  machine.ApplyMachineConfig(hwsim::MachineConfig::AllOn(topo, 2.6, 3.0));
  sim.RunFor(Seconds(1));
  const int64_t polled =
      tel.registry().CounterValueByName("hwsim/socket0/polled_instructions");
  const int64_t instr =
      tel.registry().CounterValueByName("hwsim/socket0/instructions");
  EXPECT_GT(polled, 0);       // all-active, no work: pure idle polling
  EXPECT_LE(polled, instr);   // polling is a subset of retirement

  // Fully loaded threads have no poll share: the counter stops growing.
  for (int t = 0; t < topo.total_threads(); ++t) {
    machine.SetThreadLoad(t, &workload::Firestarter(), 1.0);
  }
  sim.RunFor(Seconds(1));
  const int64_t polled2 =
      tel.registry().CounterValueByName("hwsim/socket0/polled_instructions");
  EXPECT_EQ(polled2, polled);
}

// ---------------------------------------------------------------------------
// ECL: poll exclusion in the measured performance level
// ---------------------------------------------------------------------------

double MeasuredRateUnderLowLoad(bool exclude) {
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  engine::Engine engine(&sim, &machine, engine::EngineParams{});
  workload::KvParams kvp;
  kvp.indexed = true;
  workload::KvWorkload kv(&engine, kvp);
  const double cap = workload::BaselineCapacityQps(machine.params(), kv);
  ecl::EclParams params;
  params.socket.exclude_poll_instructions = exclude;
  ecl::EnergyControlLoop loop(&sim, &engine, params);
  loop.Start();
  engine.scheduler().SetSyntheticLoad(&kv.profile());
  sim.RunFor(Seconds(10));  // prime the profiles
  engine.scheduler().SetSyntheticLoad(nullptr);
  workload::ConstantProfile low(0.12, Seconds(60));
  workload::DriverParams dp;
  dp.capacity_qps = cap;
  workload::LoadDriver driver(&sim, &engine, &kv, &low, dp);
  driver.Start();
  sim.RunFor(Seconds(10));
  const double rate = loop.socket(0).last_measured_rate();
  loop.Stop();
  return rate;
}

TEST(EclTelemetryTest, PollExclusionLowersTheMeasuredRate) {
  const double with_polls = MeasuredRateUnderLowLoad(false);
  const double without_polls = MeasuredRateUnderLowLoad(true);
  EXPECT_GT(with_polls, 0.0);
  EXPECT_GT(without_polls, 0.0);
  // At low load a large share of retirement is idle polling; excluding it
  // must strictly lower the demand signal.
  EXPECT_LT(without_polls, with_polls);
}

// ---------------------------------------------------------------------------
// Experiment integration: series equality, CSV byte-compat, determinism
// ---------------------------------------------------------------------------

experiment::WorkloadFactory MicroFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    return std::make_unique<workload::MicroWorkload>(
        e, workload::ComputeBound(), 1e6, 2);
  };
}

std::unique_ptr<Telemetry> MakeRunTelemetry() {
  TelemetryParams tp;
  tp.enabled = true;
  tp.sample_period = Millis(500);
  return std::make_unique<Telemetry>(tp);
}

TEST(ExperimentTelemetryTest, SeriesMatchesLegacySamplerExactly) {
  workload::ConstantProfile profile(0.4, Seconds(8));
  experiment::RunOptions options;
  options.mode = experiment::ControlMode::kEcl;
  options.prime_duration = Seconds(3);
  std::unique_ptr<Telemetry> tel = MakeRunTelemetry();
  options.telemetry = tel.get();
  const experiment::RunResult r =
      experiment::RunLoadExperiment(MicroFactory(), profile, options);

  ASSERT_EQ(tel->series().size(), r.series.size());
  const std::vector<std::string> header = tel->SeriesHeader();
  auto col = [&header](const std::string& name) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return i;
    }
    ADD_FAILURE() << "missing column " << name;
    return size_t{0};
  };
  const size_t c_qps = col("exp/offered_qps");
  const size_t c_power = col("exp/rapl_power_w");
  const size_t c_lat = col("exp/latency_window_ms");
  const size_t c_thr = col("exp/active_threads");
  const size_t c_perf = col("exp/perf_level_frac");
  const size_t c_util = col("exp/utilization");
  const size_t c_s0 = col("exp/socket0/power_w");
  const size_t c_p1 = col("exp/socket1/partitions");
  for (size_t i = 0; i < r.series.size(); ++i) {
    const experiment::Sample& s = r.series[i];
    const std::vector<double>& row = tel->series()[i];
    // Exact equality: the gauges replay the legacy sampler's arithmetic.
    EXPECT_EQ(row[0], s.t_s);
    EXPECT_EQ(row[c_qps], s.offered_qps);
    EXPECT_EQ(row[c_power], s.rapl_power_w);
    EXPECT_EQ(row[c_lat], s.latency_window_ms);
    EXPECT_EQ(row[c_thr], static_cast<double>(s.active_threads));
    EXPECT_EQ(row[c_perf], s.perf_level_frac);
    EXPECT_EQ(row[c_util], s.utilization);
    EXPECT_EQ(row[c_s0], s.socket_power_w[0]);
    EXPECT_EQ(row[c_p1], static_cast<double>(s.partitions_on_socket[1]));
  }
  EXPECT_FALSE(r.telemetry_dump.empty());
}

std::string Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return data;
}

TEST(ExperimentTelemetryTest, SeriesCsvIsByteIdenticalToBespokeExporter) {
  workload::ConstantProfile profile(0.4, Seconds(6));
  experiment::RunOptions options;
  options.mode = experiment::ControlMode::kEcl;
  options.prime_duration = Seconds(3);
  std::unique_ptr<Telemetry> tel = MakeRunTelemetry();
  options.telemetry = tel.get();
  const experiment::RunResult r =
      experiment::RunLoadExperiment(MicroFactory(), profile, options);

  // The bespoke exporter every figure bench used before telemetry
  // (bench_common.h ExportSeries), replicated verbatim.
  const std::string legacy_path = "telemetry_test_out/legacy.csv";
  {
    CsvWriter csv(legacy_path,
                  {"t_s", "offered_qps", "rapl_power_w", "latency_window_ms",
                   "active_threads", "perf_level_frac", "utilization"});
    ASSERT_TRUE(csv.ok());
    for (const experiment::Sample& s : r.series) {
      csv.AddNumericRow({s.t_s, s.offered_qps, s.rapl_power_w,
                         s.latency_window_ms,
                         static_cast<double>(s.active_threads),
                         s.perf_level_frac, s.utilization});
    }
  }
  const std::string generic_path = "telemetry_test_out/telemetry.csv";
  ASSERT_TRUE(WriteSeriesCsv(
      *tel, generic_path,
      {"t_s", "exp/offered_qps", "exp/rapl_power_w", "exp/latency_window_ms",
       "exp/active_threads", "exp/perf_level_frac", "exp/utilization"},
      {"t_s", "offered_qps", "rapl_power_w", "latency_window_ms",
       "active_threads", "perf_level_frac", "utilization"}));
  const std::string legacy = Slurp(legacy_path);
  const std::string generic = Slurp(generic_path);
  ASSERT_FALSE(legacy.empty());
  EXPECT_EQ(legacy, generic);
}

struct ArmArtifacts {
  std::string dump;
  std::string trace_json;
};

std::vector<ArmArtifacts> RunArms(int jobs) {
  constexpr int kArms = 2;
  std::vector<std::unique_ptr<Telemetry>> tels;
  for (int i = 0; i < kArms; ++i) tels.push_back(MakeRunTelemetry());
  std::vector<experiment::RunResult> results(kArms);
  experiment::RunMatrix(kArms, jobs, [&](int i) {
    workload::ConstantProfile profile(0.4, Seconds(6));
    experiment::RunOptions options;
    options.mode = experiment::ControlMode::kEcl;
    options.prime_duration = Seconds(3);
    options.driver_seed = 4242 + static_cast<uint64_t>(i);
    options.telemetry = tels[static_cast<size_t>(i)].get();
    results[static_cast<size_t>(i)] =
        experiment::RunLoadExperiment(MicroFactory(), profile, options);
  });
  std::vector<ArmArtifacts> out(kArms);
  for (int i = 0; i < kArms; ++i) {
    out[static_cast<size_t>(i)].dump =
        results[static_cast<size_t>(i)].telemetry_dump;
    out[static_cast<size_t>(i)].trace_json =
        ChromeTraceJson(*tels[static_cast<size_t>(i)]);
  }
  return out;
}

TEST(ExperimentTelemetryTest, ArtifactsAreByteIdenticalAcrossJobsAndRepeats) {
  const std::vector<ArmArtifacts> serial = RunArms(1);
  const std::vector<ArmArtifacts> parallel = RunArms(2);
  const std::vector<ArmArtifacts> again = RunArms(1);
  ASSERT_EQ(serial.size(), 2u);
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].dump.empty());
    EXPECT_EQ(serial[i].dump, parallel[i].dump);
    EXPECT_EQ(serial[i].dump, again[i].dump);
    EXPECT_EQ(serial[i].trace_json, parallel[i].trace_json);
    EXPECT_EQ(serial[i].trace_json, again[i].trace_json);
  }
  // The two arms differ (different driver seeds) — the equality above is
  // not vacuous.
  EXPECT_NE(serial[0].dump, serial[1].dump);
}

// ---------------------------------------------------------------------------
// Consolidation regression: poll exclusion improves the saving
// ---------------------------------------------------------------------------

experiment::RunResult ConsolidationRun(bool exclude_polls) {
  experiment::RunOptions options;
  options.mode = experiment::ControlMode::kEcl;
  options.ecl.consolidation.enabled = true;
  options.ecl.socket.exclude_poll_instructions = exclude_polls;
  options.engine.migration.min_shard_bytes = 128.0 * (1 << 20);
  workload::StepProfile profile(
      {{0, 0.6}, {Seconds(20), 0.1}, {Seconds(100), 0.6}}, Seconds(120));
  return experiment::RunLoadExperiment(
      [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
        workload::KvParams params;
        params.indexed = false;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      profile, options);
}

TEST(ConsolidationRegressionTest, PollExclusionImprovesConsolidatedEnergy) {
  const experiment::RunResult with_polls = ConsolidationRun(false);
  const experiment::RunResult without_polls = ConsolidationRun(true);
  // Same work either way.
  EXPECT_EQ(with_polls.completed, without_polls.completed);
  // The receiver socket of a consolidation runs many mostly-idle threads;
  // counting their poll loops as demand kept its configuration wider than
  // the work needed. Excluding them must lower total energy.
  EXPECT_LT(without_polls.energy_j, with_polls.energy_j);
  // And consolidation still actually consolidates.
  EXPECT_GT(without_polls.consolidation_moves, 0);
}

// ---------------------------------------------------------------------------
// Kernel-dispatch and morsel metrics determinism
// ---------------------------------------------------------------------------

TEST(KernelMetricsTest, ExportIsDeterministicAcrossRepeats) {
  // The raw dispatch counters are process-global atomics; each engine
  // exports the delta since its construction, so running the identical
  // workload in fresh engines (as RunMatrix does for every --jobs value)
  // must yield identical metric values no matter what ran before.
  auto run_once = [] {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    Telemetry telemetry{TelemetryParams{}};
    telemetry.Bind(&sim);
    engine::EngineParams params;
    params.telemetry = &telemetry;
    engine::Engine engine(&sim, &machine, params);
    machine.ApplyMachineConfig(
        hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
    workload::SsbParams sp;
    sp.scale_factor = 0.003;
    workload::SsbWorkload ssb(&engine, sp);
    ssb.Load();
    ssb.InstallExecutor();
    const QueryId q1 = ssb.SubmitQuery(1, 1, /*morsels_per_partition=*/3);
    const QueryId q2 = ssb.SubmitQuery(2, 1, /*morsels_per_partition=*/3);
    sim.RunFor(Seconds(2));
    EXPECT_TRUE(ssb.TakeResult(q1).has_value());
    EXPECT_TRUE(ssb.TakeResult(q2).has_value());

    std::vector<std::pair<std::string, int64_t>> values;
    const MetricRegistry& reg = telemetry.registry();
    for (int i = 0; i < reg.num_counters(); ++i) {
      const std::string& name = reg.counter_name(i);
      if (name.rfind("engine/kernels/", 0) == 0 ||
          name.rfind("engine/morsels", 0) == 0) {
        values.emplace_back(name, reg.CounterValue(i));
      }
    }
    return values;
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  ASSERT_FALSE(first.empty());
  int64_t filter_total = 0;
  int64_t morsels_dispatched = 0;
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first);
    EXPECT_EQ(first[i].second, second[i].second) << first[i].first;
    if (first[i].first.rfind("engine/kernels/filter_int_range/", 0) == 0) {
      filter_total += first[i].second;
    }
    if (first[i].first == "engine/morsels_dispatched") {
      morsels_dispatched = first[i].second;
    }
  }
  // The SSB pipelines actually dispatched filter kernels, and the two
  // 3-morsel submissions produced 3 messages per partition each.
  EXPECT_GT(filter_total, 0);
  EXPECT_EQ(morsels_dispatched,
            2 * 3 * static_cast<int64_t>(48));
}

}  // namespace
}  // namespace ecldb::telemetry
