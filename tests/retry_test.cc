// Client-side retry/backoff unit tests: the LoadGen retry loop driven
// against a stub workload and a scripted pressure source, with no engine
// behind the submit callback. Covers the delay math (geometric backoff,
// cap, jitter bounds), the conservation counters (every arrival resolves
// as admitted, abandoned-by-attempts, or abandoned-by-horizon), the
// default-off guarantees (no retries, no stub submissions, unperturbed
// arrival stream), and the failure-to-retry path the cluster drivers wire
// through OnQueryFailed.
#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "engine/query.h"
#include "hwsim/work_profile.h"
#include "loadgen/loadgen.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace ecldb::loadgen {
namespace {

constexpr double kStubOps = 100.0;

/// Minimal workload: every query is one 100-op task on partition 0. Keeps
/// the retry tests independent of any engine or machine model.
class StubWorkload : public workload::Workload {
 public:
  std::string_view name() const override { return "stub"; }
  const hwsim::WorkProfile& profile() const override { return profile_; }
  engine::QuerySpec MakeQuery(Rng& rng) override {
    (void)rng.Next();  // consume the stream like a real workload
    engine::QuerySpec spec;
    spec.profile = &profile_;
    spec.work.push_back({0, kStubOps});
    return spec;
  }
  double MeanOpsPerQuery() const override { return kStubOps; }

 private:
  hwsim::WorkProfile profile_;
};

/// One driven run: LoadGen against a scripted pressure function, with
/// every admission decision's virtual time recorded (the pressure source
/// is consulted exactly once per decision that passes the token bucket,
/// and these tests never configure a bucket).
struct Driven {
  sim::Simulator sim;
  StubWorkload workload;
  std::unique_ptr<LoadGen> lg;
  std::vector<SimTime> decision_times;
  std::vector<engine::QuerySpec> submitted;

  Driven(LoadGenParams params, std::function<double(SimTime)> pressure) {
    lg = std::make_unique<LoadGen>(&sim, &workload, params);
    lg->admission().SetPressureSource([this, pressure] {
      decision_times.push_back(sim.now());
      return pressure(sim.now());
    });
    lg->SetSubmitFn(
        [this](engine::QuerySpec&& spec) { submitted.push_back(spec); });
    lg->Start();
    sim.RunFor(params.duration + Seconds(30));
  }
};

LoadGenParams BaseParams(double rate_qps) {
  LoadGenParams p;
  TenantSpec t;
  t.name = "clients";
  t.slo_class = SloClass::kBestEffort;  // sheds fully at pressure 1.0
  t.arrival.num_users = 1000;
  t.arrival.per_user_qps = rate_qps / 1000.0;
  p.tenants = {t};
  p.duration = Seconds(10);
  p.seed = 4242;
  return p;
}

double AlwaysOverloaded(SimTime) { return 1.0; }

/// Removes and returns the element of `times` nearest `want`, requiring it
/// within `tol` (FromSeconds rounding makes exact tick equality fragile).
::testing::AssertionResult TakeNear(std::multiset<SimTime>& times,
                                    SimTime want, SimDuration tol) {
  auto it = times.lower_bound(want - tol);
  if (it == times.end() || *it > want + tol) {
    return ::testing::AssertionFailure()
           << "no decision within " << tol << " ns of t=" << want;
  }
  times.erase(it);
  return ::testing::AssertionSuccess();
}

/// Verifies that the decision times decompose into per-arrival groups
/// with the given retry offsets (in ns after the arrival's first
/// attempt). Greedy earliest-first matching handles overlapping groups;
/// groups cut short by the trace horizon may be truncated.
void ExpectAttemptPattern(const std::vector<SimTime>& decision_times,
                          const std::vector<SimDuration>& offsets,
                          SimDuration duration) {
  std::multiset<SimTime> pool(decision_times.begin(), decision_times.end());
  while (!pool.empty()) {
    const SimTime first = *pool.begin();
    pool.erase(pool.begin());
    for (SimDuration off : offsets) {
      if (first + off >= duration) break;  // horizon-abandoned tail
      ASSERT_TRUE(TakeNear(pool, first + off, Micros(1)))
          << "arrival at t=" << first << " missing retry at +" << off;
    }
  }
}

TEST(RetryAccountingTest, FullShedResolvesEveryArrival) {
  LoadGenParams p = BaseParams(20.0);
  p.retry.enabled = true;
  p.retry.mode = RetryParams::Mode::kBackoff;
  p.retry.base_backoff = Millis(50);
  p.retry.max_attempts = 4;
  Driven d(p, AlwaysOverloaded);

  EXPECT_GT(d.lg->arrivals(), 0);
  EXPECT_EQ(d.lg->submitted(), 0);
  EXPECT_TRUE(d.submitted.empty());  // reject_cost_frac defaults to 0
  EXPECT_GT(d.lg->retries(), 0);
  // Every arrival is eventually abandoned (attempts exhausted or horizon).
  EXPECT_EQ(d.lg->abandoned(), d.lg->arrivals());
  EXPECT_LE(d.lg->retries(), 3 * d.lg->arrivals());
  // Decision count identity: fresh offers + re-offers, all shed.
  EXPECT_EQ(d.lg->admission().total_shed(),
            d.lg->arrivals() + d.lg->retries());
  EXPECT_EQ(d.lg->admission().total_admitted(), 0);
}

TEST(RetryAccountingTest, DisabledRetryNeverReoffersOrAbandons) {
  LoadGenParams p = BaseParams(20.0);
  Driven d(p, AlwaysOverloaded);

  EXPECT_GT(d.lg->arrivals(), 0);
  EXPECT_EQ(d.lg->retries(), 0);
  EXPECT_EQ(d.lg->abandoned(), 0);
  EXPECT_EQ(d.lg->submitted(), 0);
  EXPECT_EQ(d.lg->admission().total_shed(), d.lg->arrivals());
}

TEST(RetryAccountingTest, ArrivalStreamUnperturbedByRetryConfig) {
  // The retry rng lives in a disjoint seed space and the arrival/query
  // streams are never consulted on the retry path, so enabling retries
  // must not move a single fresh arrival.
  LoadGenParams off = BaseParams(20.0);
  Driven d_off(off, AlwaysOverloaded);

  LoadGenParams on = BaseParams(20.0);
  on.retry.enabled = true;
  on.retry.jitter = 0.5;
  on.retry.max_attempts = 4;
  Driven d_on(on, AlwaysOverloaded);

  EXPECT_EQ(d_off.lg->arrivals(), d_on.lg->arrivals());
  // The disabled run's decision times are a subset: with full shed every
  // fresh arrival appears in both runs at the same instant.
  std::multiset<SimTime> on_times(d_on.decision_times.begin(),
                                  d_on.decision_times.end());
  for (SimTime t : d_off.decision_times) {
    auto it = on_times.find(t);
    ASSERT_TRUE(it != on_times.end()) << "fresh arrival moved: t=" << t;
    on_times.erase(it);
  }
}

TEST(RetryBackoffTest, DelaysFollowGeometricProgressionWithCap) {
  // jitter 0: attempt k waits base * multiplier^(k-1), capped. With
  // base=100ms, x2, cap 300ms and 4 attempts the offsets after the first
  // try are +100ms, +300ms (=100+200), +600ms (=300+capped 300).
  LoadGenParams p = BaseParams(0.5);
  p.retry.enabled = true;
  p.retry.mode = RetryParams::Mode::kBackoff;
  p.retry.base_backoff = Millis(100);
  p.retry.multiplier = 2.0;
  p.retry.max_backoff = Millis(300);
  p.retry.jitter = 0.0;
  p.retry.max_attempts = 4;
  Driven d(p, AlwaysOverloaded);

  ASSERT_GT(d.lg->arrivals(), 0);
  ExpectAttemptPattern(d.decision_times,
                       {Millis(100), Millis(300), Millis(600)}, p.duration);
}

TEST(RetryBackoffTest, ImmediateModeUsesFixedDelay) {
  LoadGenParams p = BaseParams(0.5);
  p.retry.enabled = true;
  p.retry.mode = RetryParams::Mode::kImmediate;
  p.retry.immediate_delay = Millis(7);
  p.retry.max_attempts = 3;
  Driven d(p, AlwaysOverloaded);

  ASSERT_GT(d.lg->arrivals(), 0);
  ExpectAttemptPattern(d.decision_times, {Millis(7), Millis(14)},
                       p.duration);
}

TEST(RetryBackoffTest, JitterKeepsDelaysInBandAndIsDeterministic) {
  // Drive the retry path directly through OnQueryFailed at controlled
  // instants so every jittered delay is observable in isolation: each
  // failure schedules one re-admission at now + jittered base delay.
  auto run = [](std::vector<double>* delays) {
    LoadGenParams p = BaseParams(0.0001);  // no fresh arrivals in 10s
    p.duration = Seconds(30);
    p.retry.enabled = true;
    p.retry.mode = RetryParams::Mode::kBackoff;
    p.retry.base_backoff = Millis(100);
    p.retry.jitter = 0.5;
    p.retry.max_attempts = 2;

    sim::Simulator sim;
    StubWorkload workload;
    LoadGen lg(&sim, &workload, p);
    lg.admission().SetPressureSource([] { return 0.0; });
    std::vector<SimTime> admit_times;
    lg.SetSubmitFn([&admit_times, &sim](engine::QuerySpec&&) {
      admit_times.push_back(sim.now());
    });
    lg.Start();
    for (int k = 0; k < 16; ++k) {
      const SimTime fail_at = sim.now();
      const size_t before = admit_times.size();
      lg.OnQueryFailed(static_cast<int8_t>(SloClass::kBestEffort), 0, 0,
                       fail_at, engine::FailReason::kNodeCrash);
      sim.RunFor(Millis(200));  // past the max jittered delay of 150ms
      ASSERT_EQ(admit_times.size(), before + 1);
      delays->push_back(ToSeconds(admit_times.back() - fail_at));
    }
  };

  std::vector<double> a, b;
  run(&a);
  run(&b);
  // Same seed, same call sequence: the jitter stream is deterministic.
  EXPECT_EQ(a, b);
  // Every delay sits in the band [base*(1-j), base*(1+j)] = [50ms, 150ms]
  // and the jitter actually spreads them.
  std::set<double> distinct;
  for (double d : a) {
    EXPECT_GE(d, 0.05 - 1e-9);
    EXPECT_LE(d, 0.15 + 1e-9);
    distinct.insert(d);
  }
  EXPECT_GT(distinct.size(), 4u);
}

TEST(RetryBackoffTest, HorizonCapAbandonsRetriesPastTraceEnd) {
  LoadGenParams p = BaseParams(20.0);
  p.retry.enabled = true;
  p.retry.mode = RetryParams::Mode::kBackoff;
  p.retry.base_backoff = Seconds(20);  // always lands past duration=10s
  p.retry.jitter = 0.0;
  p.retry.max_attempts = 4;
  Driven d(p, AlwaysOverloaded);

  EXPECT_GT(d.lg->arrivals(), 0);
  EXPECT_EQ(d.lg->retries(), 0);
  EXPECT_EQ(d.lg->abandoned(), d.lg->arrivals());
}

TEST(RetryBackoffTest, RetriesAdmitOncePressureClears) {
  // Overloaded for the first 5s, idle after: arrivals shed early come
  // back through admission and are submitted with their attempt count.
  LoadGenParams p = BaseParams(5.0);
  p.retry.enabled = true;
  p.retry.mode = RetryParams::Mode::kBackoff;
  p.retry.base_backoff = Seconds(2);
  p.retry.multiplier = 2.0;
  p.retry.jitter = 0.0;
  p.retry.max_attempts = 6;
  Driven d(p, [](SimTime now) { return now < Seconds(5) ? 1.0 : 0.0; });

  EXPECT_GT(d.lg->submitted(), 0);
  EXPECT_EQ(d.lg->submitted(),
            static_cast<int64_t>(d.submitted.size()));
  EXPECT_EQ(d.lg->submitted(), d.lg->admission().total_admitted());
  bool saw_retried_admit = false;
  for (const engine::QuerySpec& spec : d.submitted) {
    EXPECT_EQ(spec.slo_class,
              static_cast<int8_t>(SloClass::kBestEffort));
    EXPECT_EQ(spec.tenant, 0);
    EXPECT_FALSE(spec.internal);
    if (spec.attempt > 0) saw_retried_admit = true;
  }
  EXPECT_TRUE(saw_retried_admit);
}

TEST(RejectCostTest, ShedAttemptsSubmitScaledInternalStubs) {
  LoadGenParams p = BaseParams(20.0);
  p.reject_cost_frac = 0.1;
  Driven d(p, AlwaysOverloaded);

  ASSERT_GT(d.lg->arrivals(), 0);
  EXPECT_EQ(d.lg->submitted(), 0);  // no client query was admitted
  // One stub per shed decision, scaled to 10% of the query's ops.
  EXPECT_EQ(static_cast<int64_t>(d.submitted.size()),
            d.lg->admission().total_shed());
  for (const engine::QuerySpec& spec : d.submitted) {
    EXPECT_TRUE(spec.internal);
    ASSERT_EQ(spec.work.size(), 1u);
    EXPECT_DOUBLE_EQ(spec.work[0].ops, kStubOps * 0.1);
  }
}

TEST(RejectCostTest, StubOpsFloorAtOneOp) {
  LoadGenParams p = BaseParams(20.0);
  p.reject_cost_frac = 1e-6;  // 100 ops * 1e-6 << 1 -> floored
  Driven d(p, AlwaysOverloaded);

  ASSERT_FALSE(d.submitted.empty());
  for (const engine::QuerySpec& spec : d.submitted) {
    EXPECT_DOUBLE_EQ(spec.work[0].ops, 1.0);
  }
}

TEST(RetryFailureTest, FailedQueryRetriesThroughAdmission) {
  LoadGenParams p = BaseParams(0.001);  // effectively no fresh arrivals
  p.retry.enabled = true;
  p.retry.mode = RetryParams::Mode::kBackoff;
  p.retry.base_backoff = Millis(10);
  p.retry.jitter = 0.0;
  p.retry.max_attempts = 4;

  sim::Simulator sim;
  StubWorkload workload;
  LoadGen lg(&sim, &workload, p);
  lg.admission().SetPressureSource([] { return 0.0; });
  std::vector<engine::QuerySpec> submitted;
  lg.SetSubmitFn(
      [&submitted](engine::QuerySpec&& spec) { submitted.push_back(spec); });
  lg.Start();

  // A typed engine failure of tenant 0's first attempt re-enters
  // admission (pressure 0 -> admitted) as attempt 1.
  lg.OnQueryFailed(static_cast<int8_t>(SloClass::kBestEffort), 0, 0, 0,
                   engine::FailReason::kNodeCrash);
  sim.RunFor(Seconds(1));
  EXPECT_EQ(lg.failed(), 1);
  EXPECT_EQ(lg.retries(), 1);
  ASSERT_EQ(submitted.size(), 1u);
  EXPECT_EQ(submitted[0].attempt, 1);

  // An out-of-range tenant (internal/untagged traffic) is counted but
  // never retried.
  lg.OnQueryFailed(-1, -1, 0, 0, engine::FailReason::kNodeCrash);
  sim.RunFor(Seconds(1));
  EXPECT_EQ(lg.failed(), 2);
  EXPECT_EQ(lg.retries(), 1);

  // Attempt budget: a failure of the last allowed attempt abandons.
  lg.OnQueryFailed(static_cast<int8_t>(SloClass::kBestEffort), 0, 3, 0,
                   engine::FailReason::kNodeCrash);
  sim.RunFor(Seconds(1));
  EXPECT_EQ(lg.failed(), 3);
  EXPECT_EQ(lg.retries(), 1);
  EXPECT_EQ(lg.abandoned(), 1);
}

}  // namespace
}  // namespace ecldb::loadgen
