#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "engine/agg_hash_table.h"
#include "engine/simd.h"

namespace ecldb::engine {
namespace {

/// Kernel-level identity tests: every SIMD kernel must produce exactly the
/// scalar reference's output — same kept counts, same selection vectors,
/// bit-identical doubles — over randomized inputs covering vector-width
/// tails (n mod 8), batch size 1, empty batches, all-pass, all-fail, and
/// the aliasing contract (out may be the rows array itself).
///
/// When the binary is compiled without AVX2 (ECLDB_SIMD=OFF leg) or the
/// CPU lacks it, ActiveKernels() == ScalarKernels() and these tests still
/// run as self-consistency checks.

using simd::ActiveKernels;
using simd::KernelTable;
using simd::ScalarKernels;

// Sizes straddling the 8-lane chunking: empty, sub-width, exact widths,
// widths plus tails, and a large batch.
constexpr size_t kSizes[] = {0, 1, 2, 7, 8, 9, 15, 16, 17, 64, 100, 1023};

std::vector<uint32_t> Iota(size_t n) {
  std::vector<uint32_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
  return rows;
}

TEST(EngineSimdTest, FilterIntRangeMatchesScalar) {
  Rng rng(101);
  for (size_t n : kSizes) {
    std::vector<int64_t> v(n + 16);
    for (auto& x : v) x = rng.NextInRange(-1000, 1000);
    const std::vector<uint32_t> rows = Iota(n);
    for (int round = 0; round < 8; ++round) {
      const int64_t lo = rng.NextInRange(-1200, 1200);
      const int64_t hi = lo + rng.NextInRange(0, 1500);
      std::vector<uint32_t> out_s(n), out_a(n);
      const size_t kept_s =
          ScalarKernels().filter_int_range(v.data(), rows.data(), n, lo, hi,
                                           out_s.data());
      const size_t kept_a =
          ActiveKernels().filter_int_range(v.data(), rows.data(), n, lo, hi,
                                           out_a.data());
      ASSERT_EQ(kept_s, kept_a) << "n=" << n;
      for (size_t i = 0; i < kept_s; ++i) EXPECT_EQ(out_s[i], out_a[i]);

      // Aliasing contract: compacting in place over the input vector.
      std::vector<uint32_t> in_place(rows);
      const size_t kept_ip = ActiveKernels().filter_int_range(
          v.data(), in_place.data(), n, lo, hi, in_place.data());
      ASSERT_EQ(kept_ip, kept_s);
      for (size_t i = 0; i < kept_s; ++i) EXPECT_EQ(in_place[i], out_s[i]);
    }
    // Extremes: all pass and all fail.
    std::vector<uint32_t> out(n);
    EXPECT_EQ(ActiveKernels().filter_int_range(v.data(), rows.data(), n,
                                               INT64_MIN, INT64_MAX,
                                               out.data()),
              n);
    EXPECT_EQ(ActiveKernels().filter_int_range(v.data(), rows.data(), n, 2000,
                                               3000, out.data()),
              0u);
  }
}

TEST(EngineSimdTest, FilterIntRangeFkMatchesScalar) {
  Rng rng(102);
  const size_t dim_rows = 50;
  std::vector<int64_t> dim(dim_rows + 16);
  for (auto& x : dim) x = rng.NextInRange(0, 100);
  for (size_t n : kSizes) {
    std::vector<int64_t> fk(n + 16);
    for (auto& x : fk) x = rng.NextInRange(1, static_cast<int64_t>(dim_rows));
    const std::vector<uint32_t> rows = Iota(n);
    for (int round = 0; round < 8; ++round) {
      const int64_t lo = rng.NextInRange(-10, 110);
      const int64_t hi = lo + rng.NextInRange(0, 60);
      std::vector<uint32_t> out_s(n), out_a(n);
      const size_t kept_s = ScalarKernels().filter_int_range_fk(
          dim.data(), fk.data(), rows.data(), n, lo, hi, out_s.data());
      const size_t kept_a = ActiveKernels().filter_int_range_fk(
          dim.data(), fk.data(), rows.data(), n, lo, hi, out_a.data());
      ASSERT_EQ(kept_s, kept_a) << "n=" << n;
      for (size_t i = 0; i < kept_s; ++i) EXPECT_EQ(out_s[i], out_a[i]);
    }
  }
}

bool OddCodeFallback(const void* ctx, int32_t code) {
  EXPECT_NE(ctx, nullptr);
  return (code % 2) == 1;
}

TEST(EngineSimdTest, FilterCodeMatchMatchesScalarIncludingUnknownCodes) {
  Rng rng(103);
  const size_t known = 20;
  // Verdict table padded by 4 bytes (gather slack contract).
  std::vector<uint8_t> match(known + 4, 0);
  for (size_t c = 0; c < known; ++c) match[c] = rng.NextBool(0.4) ? 1 : 0;
  int dummy_ctx = 0;
  for (size_t n : kSizes) {
    // Codes beyond `known` simulate dictionary growth after binding.
    std::vector<int32_t> codes(n + 16);
    for (auto& c : codes)
      c = static_cast<int32_t>(rng.NextBounded(known + 8));
    const std::vector<uint32_t> rows = Iota(n);
    std::vector<uint32_t> out_s(n), out_a(n);
    const size_t kept_s = ScalarKernels().filter_code_match(
        codes.data(), rows.data(), n, match.data(), known, OddCodeFallback,
        &dummy_ctx, out_s.data());
    const size_t kept_a = ActiveKernels().filter_code_match(
        codes.data(), rows.data(), n, match.data(), known, OddCodeFallback,
        &dummy_ctx, out_a.data());
    ASSERT_EQ(kept_s, kept_a) << "n=" << n;
    for (size_t i = 0; i < kept_s; ++i) EXPECT_EQ(out_s[i], out_a[i]);
  }
}

TEST(EngineSimdTest, FilterCodeMatchFkMatchesScalar) {
  Rng rng(104);
  const size_t dim_rows = 30;
  const size_t known = 10;
  std::vector<uint8_t> match(known + 4, 0);
  for (size_t c = 0; c < known; ++c) match[c] = rng.NextBool(0.5) ? 1 : 0;
  std::vector<int32_t> dim_codes(dim_rows + 16);
  for (auto& c : dim_codes)
    c = static_cast<int32_t>(rng.NextBounded(known + 3));
  int dummy_ctx = 0;
  for (size_t n : kSizes) {
    std::vector<int64_t> fk(n + 16);
    for (auto& x : fk) x = rng.NextInRange(1, static_cast<int64_t>(dim_rows));
    const std::vector<uint32_t> rows = Iota(n);
    std::vector<uint32_t> out_s(n), out_a(n);
    const size_t kept_s = ScalarKernels().filter_code_match_fk(
        dim_codes.data(), fk.data(), rows.data(), n, match.data(), known,
        OddCodeFallback, &dummy_ctx, out_s.data());
    const size_t kept_a = ActiveKernels().filter_code_match_fk(
        dim_codes.data(), fk.data(), rows.data(), n, match.data(), known,
        OddCodeFallback, &dummy_ctx, out_a.data());
    ASSERT_EQ(kept_s, kept_a) << "n=" << n;
    for (size_t i = 0; i < kept_s; ++i) EXPECT_EQ(out_s[i], out_a[i]);
  }
}

TEST(EngineSimdTest, GatherFkMatchesScalar) {
  Rng rng(105);
  for (size_t n : kSizes) {
    std::vector<int64_t> fk(n + 16);
    for (auto& x : fk) x = rng.NextInRange(1, 1 << 20);
    const std::vector<uint32_t> rows = Iota(n);
    std::vector<uint32_t> out_s(n), out_a(n);
    ScalarKernels().gather_fk(fk.data(), rows.data(), n, out_s.data());
    ActiveKernels().gather_fk(fk.data(), rows.data(), n, out_a.data());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(out_s[i], out_a[i]) << i;
  }
}

TEST(EngineSimdTest, PackCodesMatchesScalarAndDetectsOverflow) {
  Rng rng(106);
  for (size_t n : kSizes) {
    std::vector<int32_t> codes(n + 16);
    for (auto& c : codes) c = static_cast<int32_t>(rng.NextBounded(16));
    const std::vector<uint32_t> rows = Iota(n);
    std::vector<uint64_t> keys_s(n, 7), keys_a(n, 7);
    const bool ok_s = ScalarKernels().pack_codes(keys_s.data(), codes.data(),
                                                 rows.data(), n, 4, 15);
    const bool ok_a = ActiveKernels().pack_codes(keys_a.data(), codes.data(),
                                                 rows.data(), n, 4, 15);
    EXPECT_TRUE(ok_s);
    EXPECT_TRUE(ok_a);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(keys_s[i], keys_a[i]) << i;

    if (n > 0) {
      // A code beyond the limit must be rejected by both implementations
      // (partially-written keys are allowed; only the verdict matters).
      codes[n - 1] = 16;
      EXPECT_FALSE(ScalarKernels().pack_codes(keys_s.data(), codes.data(),
                                              rows.data(), n, 4, 15));
      EXPECT_FALSE(ActiveKernels().pack_codes(keys_a.data(), codes.data(),
                                              rows.data(), n, 4, 15));
    }
  }
}

TEST(EngineSimdTest, PackIntsMatchesScalarAndDetectsOverflow) {
  Rng rng(107);
  const int64_t base = -500;
  for (size_t n : kSizes) {
    std::vector<int64_t> vals(n + 16);
    for (auto& v : vals) v = rng.NextInRange(-500, 523);  // offsets 0..1023
    const std::vector<uint32_t> rows = Iota(n);
    std::vector<uint64_t> keys_s(n, 3), keys_a(n, 3);
    const bool ok_s =
        ScalarKernels().pack_ints(keys_s.data(), vals.data(), rows.data(), n,
                                  10, static_cast<uint64_t>(base), 1023);
    const bool ok_a =
        ActiveKernels().pack_ints(keys_a.data(), vals.data(), rows.data(), n,
                                  10, static_cast<uint64_t>(base), 1023);
    EXPECT_TRUE(ok_s);
    EXPECT_TRUE(ok_a);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(keys_s[i], keys_a[i]) << i;

    if (n > 0) {
      // Below base: the unsigned offset wraps huge and must be rejected.
      vals[0] = base - 1;
      EXPECT_FALSE(ScalarKernels().pack_ints(keys_s.data(), vals.data(),
                                             rows.data(), n, 10,
                                             static_cast<uint64_t>(base),
                                             1023));
      EXPECT_FALSE(ActiveKernels().pack_ints(keys_a.data(), vals.data(),
                                             rows.data(), n, 10,
                                             static_cast<uint64_t>(base),
                                             1023));
    }
  }
}

TEST(EngineSimdTest, HashKeysMatchesMix64) {
  Rng rng(108);
  for (size_t n : kSizes) {
    std::vector<uint64_t> keys(n);
    for (auto& k : keys) k = rng.Next();
    std::vector<uint64_t> h_s(n), h_a(n);
    ScalarKernels().hash_keys(keys.data(), n, h_s.data());
    ActiveKernels().hash_keys(keys.data(), n, h_a.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(h_s[i], detail::Mix64(keys[i]));
      EXPECT_EQ(h_s[i], h_a[i]);
    }
  }
}

TEST(EngineSimdTest, EvalKernelsAreBitIdenticalIncludingBoundary) {
  Rng rng(109);
  constexpr int64_t kBound = int64_t{1} << 51;
  for (size_t n : kSizes) {
    std::vector<int64_t> a(n + 16), b(n + 16);
    for (auto& x : a) x = rng.NextInRange(-kBound, kBound);
    for (auto& x : b) x = rng.NextInRange(-kBound, kBound);
    if (n >= 2) {
      a[0] = kBound;   // conversion-exactness boundary
      a[1] = -kBound;
    }
    const std::vector<uint32_t> rows = Iota(n);
    std::vector<double> out_s(n), out_a(n);
    const double scales[] = {1.0, 0.01, -2.5};
    for (double scale : scales) {
      ScalarKernels().eval_column(a.data(), rows.data(), n, scale,
                                  out_s.data());
      ActiveKernels().eval_column(a.data(), rows.data(), n, scale,
                                  out_a.data());
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(out_s[i], out_a[i]) << i;

      ScalarKernels().eval_product(a.data(), rows.data(), b.data(),
                                   rows.data(), n, scale, out_s.data());
      ActiveKernels().eval_product(a.data(), rows.data(), b.data(),
                                   rows.data(), n, scale, out_a.data());
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(out_s[i], out_a[i]) << i;

      ScalarKernels().eval_difference(a.data(), rows.data(), b.data(),
                                      rows.data(), n, scale, out_s.data());
      ActiveKernels().eval_difference(a.data(), rows.data(), b.data(),
                                      rows.data(), n, scale, out_a.data());
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(out_s[i], out_a[i]) << i;
    }
  }
}

TEST(EngineSimdTest, LevelOverrideClampsAndRestores) {
  const simd::Level detected = simd::ActiveLevel();
  simd::SetLevelOverride(simd::Level::kScalar);
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_EQ(&simd::ActiveKernels(), &simd::ScalarKernels());
  // Requesting a level above what was compiled clamps to CompiledLevel().
  simd::SetLevelOverride(simd::Level::kAvx2);
  EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
            static_cast<int>(simd::CompiledLevel()));
  simd::SetLevelOverride(std::nullopt);
  EXPECT_EQ(simd::ActiveLevel(), detected);
}

TEST(EngineSimdTest, DispatchCountersAdvance) {
  // A direct CountDispatch bump must land in the matching process-global
  // counter (the telemetry export is a delta over these).
  const auto id = simd::KernelId::kFilterIntRange;
  const int64_t simd_before = simd::SimdDispatches(id);
  const int64_t scalar_before = simd::ScalarDispatches(id);
  simd::CountDispatch(id, /*used_simd=*/true);
  simd::CountDispatch(id, /*used_simd=*/false);
  simd::CountDispatch(id, /*used_simd=*/false);
  EXPECT_EQ(simd::SimdDispatches(id), simd_before + 1);
  EXPECT_EQ(simd::ScalarDispatches(id), scalar_before + 2);
}

TEST(EngineSimdTest, AggReserveAvoidsRehash) {
  AggHashTable table;
  table.Reserve(10000);
  const size_t cap = table.capacity();
  for (uint64_t k = 0; k < 10000; ++k) table.FindOrInsert(k)->sum += 1.0;
  EXPECT_EQ(table.capacity(), cap);  // no growth after Reserve
  EXPECT_EQ(table.size(), 10000u);
}

TEST(EngineSimdTest, AccumulateBatchMatchesFindOrInsert) {
  Rng rng(110);
  for (size_t n : kSizes) {
    std::vector<uint64_t> keys(n);
    std::vector<double> vals(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng.NextBounded(7);  // few keys: duplicates within a batch
      vals[i] = static_cast<double>(rng.NextInRange(-1000, 1000)) * 0.125;
    }
    AggHashTable batched, reference;
    std::vector<uint64_t> scratch;
    batched.AccumulateBatch(keys.data(), vals.data(), n, &scratch);
    for (size_t i = 0; i < n; ++i) {
      AggHashTable::Cell* c = reference.FindOrInsert(keys[i]);
      c->sum += vals[i];
      ++c->count;
    }
    ASSERT_EQ(batched.size(), reference.size());
    reference.ForEach([&](const AggHashTable::Cell& ref) {
      const AggHashTable::Cell* got = batched.Find(ref.key);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(got->sum, ref.sum);  // bit-identical: row-order accumulation
      EXPECT_EQ(got->count, ref.count);
    });
  }
}

}  // namespace
}  // namespace ecldb::engine
