#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/micro.h"
#include "workload/ssb.h"
#include "workload/tatp.h"
#include "workload/work_profiles.h"
#include "workload/workload.h"

namespace ecldb::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest()
      : machine_(&sim_, hwsim::MachineParams::HaswellEp()),
        engine_(&sim_, &machine_, engine::EngineParams{}) {}

  sim::Simulator sim_;
  hwsim::Machine machine_;
  engine::Engine engine_;
  Rng rng_{123};
};

TEST_F(WorkloadTest, KvIndexedFunctionalRoundTrip) {
  KvParams params;
  params.indexed = true;
  params.functional_keys = 5000;
  KvWorkload kv(&engine_, params);
  kv.Load();
  EXPECT_EQ(kv.loaded_keys(), 5000);
  for (int64_t k : {int64_t{0}, int64_t{1234}, int64_t{4999}}) {
    const auto v = kv.Get(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k * 2 + 1);
  }
  EXPECT_FALSE(kv.Get(99999).has_value());
  kv.Put(42, 777);
  EXPECT_EQ(*kv.Get(42), 777);
  kv.Put(100000, 1);  // insert new key
  EXPECT_EQ(*kv.Get(100000), 1);
}

TEST_F(WorkloadTest, KvNonIndexedFunctionalRoundTrip) {
  KvParams params;
  params.indexed = false;
  params.functional_keys = 500;
  KvWorkload kv(&engine_, params);
  kv.Load();
  EXPECT_EQ(*kv.Get(123), 247);
  kv.Put(123, -5);
  EXPECT_EQ(*kv.Get(123), -5);
  // values are 2k+1 for k in [0,500) minus the overwritten row.
  EXPECT_EQ(kv.ScanCountAtLeast(0), 499);
}

TEST_F(WorkloadTest, KvQueriesMatchMode) {
  KvParams params;
  params.indexed = true;
  KvWorkload indexed(&engine_, params);
  const engine::QuerySpec qi = indexed.MakeQuery(rng_);
  EXPECT_EQ(qi.profile, &KvIndexed());
  EXPECT_EQ(static_cast<int>(qi.work.size()), params.partitions_per_query);

  params.indexed = false;
  KvWorkload scan(&engine_, params);
  const engine::QuerySpec qs = scan.MakeQuery(rng_);
  EXPECT_EQ(qs.profile, &KvNonIndexed());
  EXPECT_EQ(qs.work.size(), 1u);
  EXPECT_NEAR(qs.work[0].ops,
              static_cast<double>(params.num_keys) / engine_.db().num_partitions(),
              1.0);
}

TEST_F(WorkloadTest, TatpLoadPopulatesAllTables) {
  TatpParams params;
  params.subscribers = 2000;
  TatpWorkload tatp(&engine_, params);
  tatp.Load();
  size_t subs = 0, ai = 0, sf = 0;
  for (int p = 0; p < engine_.db().num_partitions(); ++p) {
    subs += engine_.db().partition(p)->table("subscriber")->num_rows();
    ai += engine_.db().partition(p)->table("access_info")->num_rows();
    sf += engine_.db().partition(p)->table("special_facility")->num_rows();
  }
  EXPECT_EQ(subs, 2000u);
  // 1..4 rows per subscriber, uniformly: ~2.5 on average.
  EXPECT_GT(ai, 2000u * 2);
  EXPECT_LT(ai, 2000u * 3);
  EXPECT_GT(sf, 2000u * 2);
}

TEST_F(WorkloadTest, TatpTransactionsSucceedAtSpecRates) {
  TatpParams params;
  params.subscribers = 2000;
  TatpWorkload tatp(&engine_, params);
  tatp.Load();
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) tatp.ExecuteTx(tatp.PickTx(rng), rng);

  using Tx = TatpWorkload::TxType;
  // GetSubscriberData always finds its subscriber.
  EXPECT_EQ(tatp.succeeded(Tx::kGetSubscriberData),
            tatp.executed(Tx::kGetSubscriberData));
  // GetAccessData hits iff the (s_id, ai_type) pair exists: ~62.5 %.
  const double access_rate =
      static_cast<double>(tatp.succeeded(Tx::kGetAccessData)) /
      static_cast<double>(tatp.executed(Tx::kGetAccessData));
  EXPECT_NEAR(access_rate, 0.625, 0.05);
  // The standard mix is respected (35 % GetSubscriberData etc.).
  const double gsd_share =
      static_cast<double>(tatp.executed(Tx::kGetSubscriberData)) / 20000.0;
  EXPECT_NEAR(gsd_share, 0.35, 0.02);
  const double ul_share =
      static_cast<double>(tatp.executed(Tx::kUpdateLocation)) / 20000.0;
  EXPECT_NEAR(ul_share, 0.14, 0.02);
}

TEST_F(WorkloadTest, TatpIndexedAndNonIndexedAgree) {
  // The same transaction stream must produce identical success counts in
  // both storage modes (indexes are an access path, not semantics).
  TatpParams params;
  params.subscribers = 300;
  params.indexed = true;
  sim::Simulator sim2;
  hwsim::Machine machine2(&sim2, hwsim::MachineParams::HaswellEp());
  engine::Engine engine2(&sim2, &machine2, engine::EngineParams{});
  TatpWorkload indexed(&engine_, params);
  indexed.Load();
  params.indexed = false;
  TatpWorkload scan(&engine2, params);
  scan.Load();

  Rng rng_a(9), rng_b(9);
  for (int i = 0; i < 3000; ++i) {
    Rng pick_a = rng_a;  // PickTx shares the stream with the tx body
    indexed.ExecuteTx(indexed.PickTx(rng_a), rng_a);
    (void)pick_a;
    scan.ExecuteTx(scan.PickTx(rng_b), rng_b);
  }
  for (int t = 0; t < TatpWorkload::kNumTxTypes; ++t) {
    const auto type = static_cast<TatpWorkload::TxType>(t);
    EXPECT_EQ(indexed.succeeded(type), scan.succeeded(type))
        << TatpWorkload::TxName(type);
  }
}

TEST_F(WorkloadTest, SsbLoadAndQueries) {
  SsbParams params;
  params.scale_factor = 0.01;
  SsbWorkload ssb(&engine_, params);
  ssb.Load();
  EXPECT_GT(ssb.lineorder_rows(), 0);

  // Q1.1: discount 1-3 (3/11 of rows), quantity < 25 (~24/50), year 1993
  // (1/7): expect a small but non-empty match set.
  const auto q11 = ssb.RunQuery(1, 1);
  EXPECT_EQ(q11.rows_scanned, ssb.lineorder_rows());
  EXPECT_GT(q11.matches, 0);
  EXPECT_LT(q11.matches, ssb.lineorder_rows() / 10);
  EXPECT_GT(q11.aggregate, 0.0);
  const double selectivity =
      static_cast<double>(q11.matches) / static_cast<double>(q11.rows_scanned);
  EXPECT_NEAR(selectivity, (3.0 / 11.0) * (24.0 / 50.0) * (1.0 / 7.0), 0.01);

  // Q2.1: category MFGR#12 (1/25 of parts), region AMERICA (1/5): grouped
  // by year and brand.
  const auto q21 = ssb.RunQuery(2, 1);
  EXPECT_GT(q21.matches, 0);
  EXPECT_GT(q21.groups, 1);

  // All 13 queries execute without issue.
  for (int i = 0; i < SsbWorkload::kNumQueries; ++i) {
    const auto [flight, number] = SsbWorkload::QueryAt(i);
    const auto r = ssb.RunQuery(flight, number);
    EXPECT_EQ(r.rows_scanned, ssb.lineorder_rows());
  }
}

TEST_F(WorkloadTest, SsbSimQueriesTouchAllPartitions) {
  SsbParams params;
  params.sim_lineorder_rows = 6'000'000;
  SsbWorkload ssb(&engine_, params);
  const engine::QuerySpec q = ssb.MakeQuery(rng_);
  EXPECT_EQ(static_cast<int>(q.work.size()), engine_.db().num_partitions());
  EXPECT_EQ(q.profile, &SsbIndexed());
}

TEST_F(WorkloadTest, MicroWorkloadSpreadsWork) {
  MicroWorkload micro(&engine_, MemoryScan(), 1000.0, 4);
  const engine::QuerySpec q = micro.MakeQuery(rng_);
  EXPECT_EQ(q.work.size(), 4u);
  double total = 0.0;
  for (const auto& w : q.work) total += w.ops;
  EXPECT_NEAR(total, 1000.0, 1e-9);
}

TEST(KernelTest, ComputeKernelCounts) {
  EXPECT_EQ(kernels::ComputeKernel(1000), 1000);
}

TEST(KernelTest, ScanKernelSums) {
  std::vector<int64_t> data(1000, 3);
  EXPECT_EQ(kernels::ScanKernel(data), 3000);
}

TEST(KernelTest, AtomicContentionReachesTarget) {
  EXPECT_EQ(kernels::AtomicContentionKernel(4, 20000), 20000);
}

TEST(KernelTest, SharedHashInsertKeepsAllKeys) {
  EXPECT_EQ(kernels::SharedHashInsertKernel(4, 5000), 4u * 5000u);
}

TEST(LoadProfileTest, SpikeCoversFullRangeWithOverload) {
  SpikeProfile spike;
  EXPECT_EQ(spike.duration(), Seconds(180));
  EXPECT_NEAR(spike.LoadAt(0), 0.0, 1e-9);
  EXPECT_GT(spike.LoadAt(Seconds(90)), 1.0);  // overload plateau
  EXPECT_NEAR(spike.LoadAt(Seconds(180)), 0.0, 1e-9);
  // Monotone ramp-up before the plateau.
  EXPECT_LT(spike.LoadAt(Seconds(20)), spike.LoadAt(Seconds(60)));
}

TEST(LoadProfileTest, TwitterAlternatesAndSpikes) {
  TwitterProfile twitter;
  double lo = 2.0, hi = 0.0;
  int direction_changes = 0;
  double prev = twitter.LoadAt(0), prev_delta = 0.0;
  for (SimTime t = Millis(500); t < twitter.duration(); t += Millis(500)) {
    const double v = twitter.LoadAt(t);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    const double delta = v - prev;
    if (delta * prev_delta < 0) ++direction_changes;
    prev = v;
    if (delta != 0.0) prev_delta = delta;
  }
  EXPECT_LT(lo, 0.3);
  EXPECT_GT(hi, 0.8);               // sudden peaks present
  EXPECT_GT(direction_changes, 20);  // frequently alternating
}

TEST(LoadProfileTest, StepProfileSwitchesLevels) {
  StepProfile step({{Seconds(0), 0.2}, {Seconds(10), 0.8}}, Seconds(20));
  EXPECT_DOUBLE_EQ(step.LoadAt(Seconds(5)), 0.2);
  EXPECT_DOUBLE_EQ(step.LoadAt(Seconds(15)), 0.8);
}

TEST_F(WorkloadTest, CapacityEstimatesArePositiveAndOrdered) {
  KvParams indexed_params;
  indexed_params.indexed = true;
  KvWorkload indexed(&engine_, indexed_params);
  KvParams scan_params;
  scan_params.indexed = false;
  KvWorkload scan(&engine_, scan_params);
  const auto mp = hwsim::MachineParams::HaswellEp();
  const double cap_indexed = BaselineCapacityQps(mp, indexed);
  const double cap_scan = BaselineCapacityQps(mp, scan);
  EXPECT_GT(cap_indexed, 1000.0);
  EXPECT_GT(cap_scan, 1000.0);
  // The scan capacity is bounded by memory bandwidth:
  // bandwidth / bytes_per_op / ops_per_query.
  const double expect_scan_ops =
      SaturatedOpsPerSec(mp, KvNonIndexed());
  EXPECT_NEAR(cap_scan, expect_scan_ops / scan.MeanOpsPerQuery(), 1.0);
}

TEST_F(WorkloadTest, DriverFollowsProfileRate) {
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  MicroWorkload micro(&engine_, ComputeBound(), 1000.0, 1);
  ConstantProfile profile(0.5, Seconds(10));
  DriverParams params;
  params.capacity_qps = 1000.0;
  LoadDriver driver(&sim_, &engine_, &micro, &profile, params);
  driver.Start();
  sim_.RunFor(Seconds(11));
  // 0.5 * 1000 qps * 10 s = ~5000 queries (Poisson).
  EXPECT_NEAR(static_cast<double>(driver.submitted()), 5000.0, 300.0);
  EXPECT_EQ(engine_.latency().completed(), driver.submitted());
}

TEST_F(WorkloadTest, DriverStopsAtProfileEnd) {
  MicroWorkload micro(&engine_, ComputeBound(), 1000.0, 1);
  ConstantProfile profile(1.0, Seconds(2));
  DriverParams params;
  params.capacity_qps = 100.0;
  LoadDriver driver(&sim_, &engine_, &micro, &profile, params);
  driver.Start();
  sim_.RunFor(Seconds(10));
  const int64_t at_end = driver.submitted();
  sim_.RunFor(Seconds(5));
  EXPECT_EQ(driver.submitted(), at_end);
}


TEST_F(WorkloadTest, AsyncFunctionalOpsThroughMessageLayer) {
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  KvParams params;
  params.indexed = true;
  params.functional_keys = 2000;
  KvWorkload kv(&engine_, params);
  kv.Load();
  kv.InstallExecutor();

  const QueryId get1 = kv.SubmitGet(77);
  const QueryId miss = kv.SubmitGet(999999);
  EXPECT_FALSE(kv.TakeResult(get1).has_value());  // still in flight
  sim_.RunFor(Millis(50));
  const auto r1 = kv.TakeResult(get1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_TRUE(r1->found);
  EXPECT_EQ(r1->value, 77 * 2 + 1);
  const auto r2 = kv.TakeResult(miss);
  ASSERT_TRUE(r2.has_value());
  EXPECT_FALSE(r2->found);
  // Results are consumed on take.
  EXPECT_FALSE(kv.TakeResult(get1).has_value());

  // Writes become visible once their fluid work completes.
  kv.SubmitPut(77, -5);
  sim_.RunFor(Millis(50));
  const QueryId get2 = kv.SubmitGet(77);
  sim_.RunFor(Millis(50));
  EXPECT_EQ(kv.TakeResult(get2)->value, -5);
  // Latencies were tracked for all four queries.
  EXPECT_EQ(engine_.latency().completed(), 4);
}

TEST_F(WorkloadTest, AsyncOpsWaitForSleepingSocket) {
  // A functional get to a partition on a sleeping socket completes only
  // after the ECL (here: us) wakes a thread - real virtual-time latency.
  KvParams params;
  params.indexed = true;
  params.functional_keys = 500;
  KvWorkload kv(&engine_, params);
  kv.Load();
  kv.InstallExecutor();
  const QueryId id = kv.SubmitGet(5);
  sim_.RunFor(Millis(200));
  EXPECT_FALSE(kv.TakeResult(id).has_value());  // machine is idle
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 1.2, 1.2));
  sim_.RunFor(Millis(50));
  ASSERT_TRUE(kv.TakeResult(id).has_value());
  EXPECT_GT(engine_.latency().all().Mean(), 200.0);  // waited for the wake
}


TEST_F(WorkloadTest, TatpAsyncTransactionsThroughMessageLayer) {
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  TatpParams params;
  params.subscribers = 2000;
  TatpWorkload tatp(&engine_, params);
  tatp.Load();
  tatp.InstallExecutor();

  Rng rng(31);
  int64_t submitted = 0;
  for (int i = 0; i < 500; ++i) {
    tatp.SubmitTx(tatp.PickTx(rng), rng);
    ++submitted;
  }
  sim_.RunFor(Millis(500));
  EXPECT_EQ(engine_.latency().completed(), submitted);
  int64_t executed = 0;
  for (int t = 0; t < TatpWorkload::kNumTxTypes; ++t) {
    executed += tatp.executed(static_cast<TatpWorkload::TxType>(t));
  }
  EXPECT_EQ(executed, submitted);
  // Writes really happened: UpdateLocation succeeded on real rows.
  EXPECT_GT(tatp.succeeded(TatpWorkload::TxType::kUpdateLocation), 0);
}


TEST_F(WorkloadTest, SsbDistributedQueryMatchesSynchronous) {
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  SsbParams params;
  params.scale_factor = 0.005;
  SsbWorkload ssb(&engine_, params);
  ssb.Load();
  ssb.InstallExecutor();

  // Reference: synchronous execution.
  const auto sync_q21 = ssb.RunQuery(2, 1);
  const auto sync_q41 = ssb.RunQuery(4, 1);

  // Distributed: fan-out through the message layer, partial aggregates
  // merged on completion.
  const QueryId id21 = ssb.SubmitQuery(2, 1);
  const QueryId id41 = ssb.SubmitQuery(4, 1);
  EXPECT_FALSE(ssb.TakeResult(id21).has_value());  // in flight
  sim_.RunFor(Seconds(2));
  const auto async_q21 = ssb.TakeResult(id21);
  const auto async_q41 = ssb.TakeResult(id41);
  ASSERT_TRUE(async_q21.has_value());
  ASSERT_TRUE(async_q41.has_value());
  EXPECT_EQ(async_q21->matches, sync_q21.matches);
  EXPECT_EQ(async_q21->groups, sync_q21.groups);
  EXPECT_NEAR(async_q21->aggregate, sync_q21.aggregate, 1e-6);
  EXPECT_EQ(async_q21->rows_scanned, sync_q21.rows_scanned);
  EXPECT_EQ(async_q41->matches, sync_q41.matches);
  EXPECT_NEAR(async_q41->aggregate, sync_q41.aggregate, 1e-6);
  // Latencies recorded for both distributed queries.
  EXPECT_EQ(engine_.latency().completed(), 2);
  // Results are consumed on take.
  EXPECT_FALSE(ssb.TakeResult(id21).has_value());
}

TEST_F(WorkloadTest, SsbMorselizedDistributedQueryMatchesSynchronous) {
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  SsbParams params;
  params.scale_factor = 0.005;
  SsbWorkload ssb(&engine_, params);
  ssb.Load();
  ssb.InstallExecutor();

  const auto sync_q21 = ssb.RunQuery(2, 1);
  const auto sync_q31 = ssb.RunQuery(3, 1);

  // Morselized fan-out: each partition's scan splits into 4 morsel
  // messages; the executor scans only each morsel's row range, and the
  // merged result must match the synchronous single-pass execution
  // (keys and counts exactly; sums to rounding — the morsel grid
  // reassociates the FP additions).
  const QueryId id21 = ssb.SubmitQuery(2, 1, /*morsels_per_partition=*/4);
  const QueryId id31 = ssb.SubmitQuery(3, 1, /*morsels_per_partition=*/7);
  sim_.RunFor(Seconds(2));
  const auto async_q21 = ssb.TakeResult(id21);
  const auto async_q31 = ssb.TakeResult(id31);
  ASSERT_TRUE(async_q21.has_value());
  ASSERT_TRUE(async_q31.has_value());
  EXPECT_EQ(async_q21->matches, sync_q21.matches);
  EXPECT_EQ(async_q21->groups, sync_q21.groups);
  EXPECT_EQ(async_q21->rows_scanned, sync_q21.rows_scanned);
  EXPECT_NEAR(async_q21->aggregate, sync_q21.aggregate,
              1e-9 * (1.0 + std::abs(sync_q21.aggregate)));
  EXPECT_EQ(async_q31->matches, sync_q31.matches);
  EXPECT_EQ(async_q31->groups, sync_q31.groups);
  EXPECT_EQ(async_q31->rows_scanned, sync_q31.rows_scanned);
  EXPECT_NEAR(async_q31->aggregate, sync_q31.aggregate,
              1e-9 * (1.0 + std::abs(sync_q31.aggregate)));
  EXPECT_EQ(engine_.latency().completed(), 2);
}

TEST_F(WorkloadTest, SsbDimensionReplicasIdenticalAcrossPartitions) {
  // Load() generates the dimension tables once and bulk-copies them into
  // the other partitions; every replica must look generated-in-place:
  // same rows, same dictionary codes, same tracked int bounds.
  SsbParams params;
  params.scale_factor = 0.005;
  SsbWorkload ssb(&engine_, params);
  ssb.Load();
  engine::Database& db = engine_.db();
  const engine::Table* p0 = db.partition(0)->table("part");
  for (int p = 1; p < db.num_partitions(); p += 7) {
    const engine::Table* rep = db.partition(p)->table("part");
    ASSERT_EQ(rep->num_rows(), p0->num_rows());
    const engine::Column* c0 = p0->column(2);   // p_category (string)
    const engine::Column* cr = rep->column(2);
    ASSERT_EQ(cr->dict_size(), c0->dict_size());
    for (size_t r = 0; r < p0->num_rows(); r += 97) {
      EXPECT_EQ(cr->GetString(r), c0->GetString(r));
      EXPECT_EQ(cr->GetStringCode(r), c0->GetStringCode(r));
    }
    int64_t lo0 = 0, hi0 = 0, lor = 0, hir = 0;
    ASSERT_TRUE(p0->column(0)->IntBounds(&lo0, &hi0));
    ASSERT_TRUE(rep->column(0)->IntBounds(&lor, &hir));
    EXPECT_EQ(lor, lo0);
    EXPECT_EQ(hir, hi0);
  }
}

}  // namespace
}  // namespace ecldb::workload
