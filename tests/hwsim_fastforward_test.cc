// Golden determinism tests for the steady-state fast-forward: the same
// scripted scenario is run once with fast-forward disabled (every slice
// fully solved) and once enabled, and every software-visible counter must
// be bit-identical. This is the contract that makes the optimisation safe
// to leave on everywhere (see docs/architecture.md).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/load_profile.h"
#include "workload/micro.h"
#include "workload/work_profiles.h"

namespace ecldb::hwsim {
namespace {

/// Everything software can observe about a Machine at the end of a run.
struct Observed {
  std::vector<uint64_t> rapl_uj;       // socket-major, {pkg, dram}
  std::vector<double> exact_j;         // same order
  std::vector<uint64_t> instructions;  // per hardware thread
  std::vector<double> ops_credit;      // per hardware thread
  std::vector<double> core_freq;       // effective, per socket thread 0
  double total_j = 0.0;
};

Observed Collect(Machine* machine) {
  Observed o;
  const Topology& topo = machine->topology();
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    for (RaplDomain d : {RaplDomain::kPackage, RaplDomain::kDram}) {
      o.rapl_uj.push_back(machine->ReadRaplUj(s, d));
      o.exact_j.push_back(machine->ExactEnergyJoules(s, d));
    }
    o.core_freq.push_back(
        machine->effective_config().sockets[static_cast<size_t>(s)]
            .core_freq_ghz[0]);
  }
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    o.instructions.push_back(machine->ReadInstructions(t));
    o.ops_credit.push_back(machine->TakeCompletedOps(t));
  }
  o.total_j = machine->TotalEnergyJoules();
  return o;
}

/// The scripted scenario: long idle gaps (C6 promotion), an EET-delayed
/// turbo grant crossed mid-gap, turbo-budget drain to exhaustion under
/// Firestarter, partial slices at odd times, and load/config churn.
Observed RunScenario(bool fast_forward) {
  sim::Simulator sim;
  sim.set_fast_forward(fast_forward);
  Machine machine(&sim, MachineParams::HaswellEp());
  const Topology& topo = machine.topology();

  // 1. Long idle stretch: crosses the shallow->deep C-state promotion and
  //    then stays stationary for thousands of slices.
  sim.RunFor(Seconds(3));

  // 2. Balanced EPB with a turbo request: the 1 s EET grant boundary lies
  //    in the middle of an otherwise stationary 2 s window.
  machine.SetEpb(EpbSetting::kBalanced);
  machine.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 2, 3.1, 1.2));
  machine.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim.RunFor(Seconds(2));

  // 3. Partial slices at off-grid times.
  sim.RunFor(Micros(1500));
  machine.SetThreadLoad(0, &workload::ComputeBound(), 0.7);
  sim.RunFor(Micros(700));

  // 4. Turbo-budget drain: all-core Firestarter above the sustainable
  //    power threshold; the budget-exhaustion boundary interrupts the
  //    stationary window and the grant is revoked.
  machine.SetEpb(EpbSetting::kPerformance);
  machine.ApplySocketConfig(0, SocketConfig::AllOn(topo, 3.1, 3.0));
  for (int t = 0; t < topo.threads_per_socket(); ++t) {
    machine.SetThreadLoad(t, &workload::Firestarter(), 1.0);
  }
  sim.RunFor(Seconds(3));

  // 5. Back to idle across the C6 promotion again, then a short re-wake.
  machine.ClearThreadLoads();
  machine.ApplySocketConfig(0, SocketConfig::Idle(topo));
  sim.RunFor(Seconds(2));
  machine.ApplySocketConfig(1, SocketConfig::FirstThreads(topo, 1, 1.2, 1.2));
  machine.SetThreadLoad(topo.threads_per_socket(), &workload::MemoryScan(),
                        0.5);
  sim.RunFor(Millis(333));

  return Collect(&machine);
}

TEST(FastForwardGoldenTest, MachineCountersBitIdentical) {
  const Observed slow = RunScenario(false);
  const Observed fast = RunScenario(true);
  ASSERT_EQ(slow.rapl_uj.size(), fast.rapl_uj.size());
  for (size_t i = 0; i < slow.rapl_uj.size(); ++i) {
    EXPECT_EQ(slow.rapl_uj[i], fast.rapl_uj[i]) << "rapl domain " << i;
    EXPECT_EQ(slow.exact_j[i], fast.exact_j[i]) << "exact energy " << i;
  }
  ASSERT_EQ(slow.instructions.size(), fast.instructions.size());
  for (size_t t = 0; t < slow.instructions.size(); ++t) {
    EXPECT_EQ(slow.instructions[t], fast.instructions[t]) << "thread " << t;
    EXPECT_EQ(slow.ops_credit[t], fast.ops_credit[t]) << "thread " << t;
  }
  for (size_t s = 0; s < slow.core_freq.size(); ++s) {
    EXPECT_EQ(slow.core_freq[s], fast.core_freq[s]) << "socket " << s;
  }
  EXPECT_EQ(slow.total_j, fast.total_j);
}

TEST(FastForwardGoldenTest, FastForwardActuallyEngages) {
  // Sanity check that the fast path is reachable at all: a clean steady
  // window must report a stationarity horizon beyond `now`. Without this,
  // the bit-identity test above would pass vacuously.
  sim::Simulator sim;
  sim.set_fast_forward(true);
  ASSERT_TRUE(sim.fast_forward_enabled());
  Machine machine(&sim, MachineParams::HaswellEp());
  machine.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim.RunFor(Seconds(1));
  EXPECT_TRUE(sim.fast_forward_enabled());
}

experiment::WorkloadFactory MicroFactory() {
  return [](engine::Engine* e) -> std::unique_ptr<workload::Workload> {
    return std::make_unique<workload::MicroWorkload>(
        e, workload::ComputeBound(), 1e6, 2);
  };
}

void ExpectResultsIdentical(const experiment::RunResult& a,
                            const experiment::RunResult& b) {
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.capacity_qps, b.capacity_qps);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mean_ms, b.mean_ms);
  EXPECT_EQ(a.p50_ms, b.p50_ms);
  EXPECT_EQ(a.p95_ms, b.p95_ms);
  EXPECT_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.max_ms, b.max_ms);
  EXPECT_EQ(a.violation_frac, b.violation_frac);
  EXPECT_EQ(a.best_config, b.best_config);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].t_s, b.series[i].t_s) << i;
    EXPECT_EQ(a.series[i].offered_qps, b.series[i].offered_qps) << i;
    EXPECT_EQ(a.series[i].rapl_power_w, b.series[i].rapl_power_w) << i;
    EXPECT_EQ(a.series[i].latency_window_ms, b.series[i].latency_window_ms)
        << i;
    EXPECT_EQ(a.series[i].active_threads, b.series[i].active_threads) << i;
    EXPECT_EQ(a.series[i].perf_level_frac, b.series[i].perf_level_frac) << i;
    EXPECT_EQ(a.series[i].utilization, b.series[i].utilization) << i;
  }
}

TEST(FastForwardGoldenTest, BaselineExperimentBitIdentical) {
  workload::ConstantProfile profile(0.4, Seconds(6));
  experiment::RunOptions options;
  options.mode = experiment::ControlMode::kBaseline;
  options.prime_duration = Seconds(2);
  options.fast_forward = false;
  const experiment::RunResult slow =
      RunLoadExperiment(MicroFactory(), profile, options);
  options.fast_forward = true;
  const experiment::RunResult fast =
      RunLoadExperiment(MicroFactory(), profile, options);
  ExpectResultsIdentical(slow, fast);
}

TEST(FastForwardGoldenTest, EclExperimentBitIdentical) {
  // The full stack: scheduler, ECL controllers, profile evaluator, and
  // machine all advancing together. The ECL writes configurations and the
  // scheduler migrates work, so the run alternates between stationary
  // windows and re-solve churn.
  workload::ConstantProfile profile(0.3, Seconds(6));
  experiment::RunOptions options;
  options.mode = experiment::ControlMode::kEcl;
  options.prime_duration = Seconds(5);
  options.fast_forward = false;
  const experiment::RunResult slow =
      RunLoadExperiment(MicroFactory(), profile, options);
  options.fast_forward = true;
  const experiment::RunResult fast =
      RunLoadExperiment(MicroFactory(), profile, options);
  ExpectResultsIdentical(slow, fast);
}

}  // namespace
}  // namespace ecldb::hwsim
