#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "msg/inter_socket_comm.h"
#include "msg/intra_socket_router.h"
#include "msg/message.h"
#include "msg/message_layer.h"
#include "msg/mpmc_ring.h"
#include "msg/partition_queue.h"
#include "msg/spsc_ring.h"

namespace ecldb::msg {
namespace {

Message MakeMsg(PartitionId p, int64_t tag = 0) {
  Message m;
  m.query_id = tag;
  m.partition = p;
  m.type = MessageType::kWorkUnits;
  return m;
}

TEST(SpscRingTest, FifoSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));  // empty
}

TEST(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, TwoThreadStress) {
  SpscRing<int64_t> ring(1024);
  constexpr int64_t kCount = 200000;
  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) {
      }
    }
  });
  int64_t expected = 0;
  while (expected < kCount) {
    int64_t v;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expected);  // strict FIFO
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(MpmcRingTest, FifoSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(9));
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(MpmcRingTest, MultiProducerMultiConsumerStress) {
  MpmcRing<int64_t> ring(1024);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int64_t kPerProducer = 50000;
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        const int64_t v = p * kPerProducer + i;
        while (!ring.TryPush(v)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int64_t v;
      while (popped.load() < kProducers * kPerProducer) {
        if (ring.TryPop(&v)) {
          sum.fetch_add(v);
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(PartitionQueueTest, OwnershipProtocol) {
  PartitionQueue q(3, 64);
  EXPECT_EQ(q.owner(), -1);
  EXPECT_TRUE(q.TryAcquire(7));
  EXPECT_EQ(q.owner(), 7);
  EXPECT_FALSE(q.TryAcquire(8));  // already owned
  q.Release(7);
  EXPECT_EQ(q.owner(), -1);
  EXPECT_TRUE(q.TryAcquire(8));
  q.Release(8);
}

TEST(PartitionQueueTest, BatchDequeueRespectsLimit) {
  PartitionQueue q(0, 64);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Enqueue(MakeMsg(0, i)));
  EXPECT_EQ(q.SizeApprox(), 10u);
  ASSERT_TRUE(q.TryAcquire(1));
  std::vector<Message> batch;
  EXPECT_EQ(q.DequeueBatch(1, 4, &batch), 4u);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].query_id, 0);
  EXPECT_EQ(batch[3].query_id, 3);
  EXPECT_EQ(q.DequeueBatch(1, 100, &batch), 6u);
  EXPECT_TRUE(q.EmptyApprox());
  q.Release(1);
}

TEST(PartitionQueueTest, BackpressureWhenFull) {
  PartitionQueue q(0, 4);
  int pushed = 0;
  while (q.Enqueue(MakeMsg(0, pushed))) ++pushed;
  EXPECT_EQ(pushed, 4);
}

TEST(IntraSocketRouterTest, RoutesToOwnedPartitions) {
  IntraSocketRouter router(0, {2, 5, 9}, 64);
  EXPECT_TRUE(router.Owns(2));
  EXPECT_TRUE(router.Owns(9));
  EXPECT_FALSE(router.Owns(3));
  EXPECT_FALSE(router.Owns(100));
  EXPECT_TRUE(router.Enqueue(MakeMsg(5)));
  EXPECT_EQ(router.PendingApprox(), 1u);
  EXPECT_EQ(router.queue(5)->SizeApprox(), 1u);
}

TEST(IntraSocketRouterTest, AcquireNonEmptySkipsEmptyAndOwned) {
  IntraSocketRouter router(0, {0, 1, 2}, 64);
  router.Enqueue(MakeMsg(1));
  router.Enqueue(MakeMsg(2));
  size_t cursor = 0;
  PartitionQueue* first = router.AcquireNonEmpty(10, &cursor);
  ASSERT_NE(first, nullptr);
  // Second worker gets the other non-empty queue.
  size_t cursor2 = 0;
  PartitionQueue* second = router.AcquireNonEmpty(11, &cursor2);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first->partition(), second->partition());
  // Nothing left for a third worker.
  size_t cursor3 = 0;
  EXPECT_EQ(router.AcquireNonEmpty(12, &cursor3), nullptr);
  first->Release(10);
  second->Release(11);
}

TEST(IntraSocketRouterTest, RoundRobinFromCursor) {
  IntraSocketRouter router(0, {0, 1, 2, 3}, 64);
  for (PartitionId p = 0; p < 4; ++p) router.Enqueue(MakeMsg(p));
  size_t cursor = 0;  // starts scanning at index 1
  PartitionQueue* q = router.AcquireNonEmpty(1, &cursor);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->partition(), 1);
  q->Release(1);
}

TEST(CommEndpointTest, PumpsToRemoteRouter) {
  IntraSocketRouter r0(0, {0}, 64);
  IntraSocketRouter r1(1, {1}, 64);
  std::vector<IntraSocketRouter*> routers = {&r0, &r1};
  CommEndpoint comm0(0, 2, 64);
  EXPECT_TRUE(comm0.BufferOutbound(1, MakeMsg(1, 42)));
  EXPECT_EQ(comm0.OutboundPendingApprox(), 1u);
  EXPECT_EQ(comm0.Pump(routers, 16), 1u);
  EXPECT_EQ(comm0.OutboundPendingApprox(), 0u);
  EXPECT_EQ(r1.queue(1)->SizeApprox(), 1u);
  EXPECT_EQ(comm0.transferred(), 1);
}

TEST(CommEndpointTest, PumpBatchBounded) {
  IntraSocketRouter r0(0, {0}, 1024);
  IntraSocketRouter r1(1, {1}, 1024);
  std::vector<IntraSocketRouter*> routers = {&r0, &r1};
  CommEndpoint comm0(0, 2, 1024);
  for (int i = 0; i < 40; ++i) comm0.BufferOutbound(1, MakeMsg(1, i));
  EXPECT_EQ(comm0.Pump(routers, 16), 16u);
  EXPECT_EQ(comm0.OutboundPendingApprox(), 24u);
}

TEST(MessageLayerTest, LocalSendGoesDirect) {
  MessageLayer layer(2, {0, 0, 1, 1}, MessageLayerParams{});
  EXPECT_TRUE(layer.Send(0, MakeMsg(1)));
  EXPECT_EQ(layer.router(0)->PendingApprox(), 1u);
  EXPECT_EQ(layer.comm(0)->OutboundPendingApprox(), 0u);
}

TEST(MessageLayerTest, RemoteSendBuffersThenPumps) {
  MessageLayer layer(2, {0, 0, 1, 1}, MessageLayerParams{});
  EXPECT_TRUE(layer.Send(0, MakeMsg(3)));  // partition 3 homed on socket 1
  EXPECT_EQ(layer.router(1)->PendingApprox(), 0u);
  EXPECT_EQ(layer.comm(0)->OutboundPendingApprox(), 1u);
  EXPECT_EQ(layer.PumpComm(0), 1u);
  EXPECT_EQ(layer.router(1)->PendingApprox(), 1u);
  EXPECT_EQ(layer.PendingApprox(), 1u);
}

TEST(MessageLayerTest, HomeMapRespected) {
  MessageLayer layer(2, {0, 1, 0, 1}, MessageLayerParams{});
  EXPECT_EQ(layer.HomeOf(0), 0);
  EXPECT_EQ(layer.HomeOf(1), 1);
  EXPECT_EQ(layer.num_partitions(), 4);
  EXPECT_TRUE(layer.router(0)->Owns(2));
  EXPECT_TRUE(layer.router(1)->Owns(3));
}

TEST(MessageTest, TypeNames) {
  // Exercised mostly for diagnostics; keep the mapping stable.
  EXPECT_STREQ(MessageTypeName(MessageType::kWorkUnits), "work_units");
  EXPECT_STREQ(MessageTypeName(MessageType::kGet), "get");
}

}  // namespace
}  // namespace ecldb::msg
