#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "msg/inter_socket_comm.h"
#include "msg/intra_socket_router.h"
#include "msg/message.h"
#include "msg/message_layer.h"
#include "msg/mpmc_ring.h"
#include "msg/partition_queue.h"
#include "msg/placement_view.h"
#include "msg/spsc_ring.h"

namespace ecldb::msg {
namespace {

Message MakeMsg(PartitionId p, int64_t tag = 0) {
  Message m;
  m.query_id = tag;
  m.partition = p;
  m.type = MessageType::kWorkUnits;
  return m;
}

/// Minimal mutable placement for layer tests (the real implementation is
/// engine::PlacementMap; the msg layer only sees this interface).
struct TestPlacement : PlacementView {
  std::vector<SocketId> home;
  int64_t epoch_value = 0;
  explicit TestPlacement(std::vector<SocketId> h) : home(std::move(h)) {}
  int num_partitions() const override { return static_cast<int>(home.size()); }
  SocketId HomeOf(PartitionId p) const override {
    return home[static_cast<size_t>(p)];
  }
  int64_t epoch() const override { return epoch_value; }
};

/// Owns the queues a router scans (the MessageLayer does this in real use).
struct RouterHarness {
  std::vector<std::unique_ptr<PartitionQueue>> queues;
  IntraSocketRouter router;
  RouterHarness(SocketId socket, std::vector<PartitionId> parts, size_t cap)
      : router(socket, /*num_global_partitions=*/64) {
    for (PartitionId p : parts) {
      queues.push_back(std::make_unique<PartitionQueue>(p, cap));
      router.Register(p, queues.back().get());
    }
  }
};

TEST(SpscRingTest, FifoSingleThread) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // full
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));  // empty
}

TEST(SpscRingTest, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, TwoThreadStress) {
  SpscRing<int64_t> ring(1024);
  constexpr int64_t kCount = 200000;
  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      while (!ring.TryPush(i)) {
      }
    }
  });
  int64_t expected = 0;
  while (expected < kCount) {
    int64_t v;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expected);  // strict FIFO
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.EmptyApprox());
}

TEST(MpmcRingTest, FifoSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(9));
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(MpmcRingTest, MultiProducerMultiConsumerStress) {
  MpmcRing<int64_t> ring(1024);
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int64_t kPerProducer = 50000;
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int64_t i = 0; i < kPerProducer; ++i) {
        const int64_t v = p * kPerProducer + i;
        while (!ring.TryPush(v)) {
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int64_t v;
      while (popped.load() < kProducers * kPerProducer) {
        if (ring.TryPop(&v)) {
          sum.fetch_add(v);
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(PartitionQueueTest, OwnershipProtocol) {
  PartitionQueue q(3, 64);
  EXPECT_EQ(q.owner(), -1);
  EXPECT_TRUE(q.TryAcquire(7));
  EXPECT_EQ(q.owner(), 7);
  EXPECT_FALSE(q.TryAcquire(8));  // already owned
  q.Release(7);
  EXPECT_EQ(q.owner(), -1);
  EXPECT_TRUE(q.TryAcquire(8));
  q.Release(8);
}

TEST(PartitionQueueTest, BatchDequeueRespectsLimit) {
  PartitionQueue q(0, 64);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.Enqueue(MakeMsg(0, i)));
  EXPECT_EQ(q.SizeApprox(), 10u);
  ASSERT_TRUE(q.TryAcquire(1));
  std::vector<Message> batch;
  EXPECT_EQ(q.DequeueBatch(1, 4, &batch), 4u);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].query_id, 0);
  EXPECT_EQ(batch[3].query_id, 3);
  EXPECT_EQ(q.DequeueBatch(1, 100, &batch), 6u);
  EXPECT_TRUE(q.EmptyApprox());
  q.Release(1);
}

TEST(PartitionQueueTest, BackpressureWhenFull) {
  PartitionQueue q(0, 4);
  int pushed = 0;
  while (q.Enqueue(MakeMsg(0, pushed))) ++pushed;
  EXPECT_EQ(pushed, 4);
}

TEST(IntraSocketRouterTest, RoutesToOwnedPartitions) {
  RouterHarness h(0, {2, 5, 9}, 64);
  IntraSocketRouter& router = h.router;
  EXPECT_TRUE(router.Owns(2));
  EXPECT_TRUE(router.Owns(9));
  EXPECT_FALSE(router.Owns(3));
  EXPECT_FALSE(router.Owns(100));
  EXPECT_TRUE(router.Enqueue(MakeMsg(5)));
  EXPECT_EQ(router.PendingApprox(), 1u);
  EXPECT_EQ(router.queue(5)->SizeApprox(), 1u);
}

TEST(IntraSocketRouterTest, RegisterDeregisterMovesQueueBetweenRouters) {
  RouterHarness h0(0, {0, 1}, 64);
  IntraSocketRouter r1(1, 64);
  ASSERT_TRUE(h0.router.Enqueue(MakeMsg(1, 7)));
  PartitionQueue* moved = h0.router.Deregister(1);
  ASSERT_NE(moved, nullptr);
  EXPECT_FALSE(h0.router.Owns(1));
  EXPECT_TRUE(h0.router.Owns(0));  // remaining partition still reachable
  EXPECT_EQ(h0.router.PendingApprox(), 0u);
  r1.Register(1, moved);
  EXPECT_TRUE(r1.Owns(1));
  // The queued message travelled with the queue.
  EXPECT_EQ(r1.queue(1)->SizeApprox(), 1u);
  size_t cursor = 0;
  PartitionQueue* q = r1.AcquireNonEmpty(3, &cursor);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->partition(), 1);
  q->Release(3);
}

TEST(IntraSocketRouterTest, CountsEnqueueRejects) {
  RouterHarness h(0, {0}, 4);
  int pushed = 0;
  while (h.router.Enqueue(MakeMsg(0, pushed))) ++pushed;
  EXPECT_EQ(pushed, 4);
  EXPECT_EQ(h.router.enqueue_rejects(), 1);
  EXPECT_FALSE(h.router.Enqueue(MakeMsg(0)));
  EXPECT_EQ(h.router.enqueue_rejects(), 2);
}

TEST(IntraSocketRouterTest, AcquireNonEmptySkipsEmptyAndOwned) {
  RouterHarness h(0, {0, 1, 2}, 64);
  IntraSocketRouter& router = h.router;
  router.Enqueue(MakeMsg(1));
  router.Enqueue(MakeMsg(2));
  size_t cursor = 0;
  PartitionQueue* first = router.AcquireNonEmpty(10, &cursor);
  ASSERT_NE(first, nullptr);
  // Second worker gets the other non-empty queue.
  size_t cursor2 = 0;
  PartitionQueue* second = router.AcquireNonEmpty(11, &cursor2);
  ASSERT_NE(second, nullptr);
  EXPECT_NE(first->partition(), second->partition());
  // Nothing left for a third worker.
  size_t cursor3 = 0;
  EXPECT_EQ(router.AcquireNonEmpty(12, &cursor3), nullptr);
  first->Release(10);
  second->Release(11);
}

TEST(IntraSocketRouterTest, RoundRobinFromCursor) {
  RouterHarness h(0, {0, 1, 2, 3}, 64);
  IntraSocketRouter& router = h.router;
  for (PartitionId p = 0; p < 4; ++p) router.Enqueue(MakeMsg(p));
  size_t cursor = 0;  // starts scanning at index 1
  PartitionQueue* q = router.AcquireNonEmpty(1, &cursor);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->partition(), 1);
  q->Release(1);
}

TEST(CommEndpointTest, PumpsToRemoteRouter) {
  RouterHarness h0(0, {0}, 64);
  RouterHarness h1(1, {1}, 64);
  std::vector<IntraSocketRouter*> routers = {&h0.router, &h1.router};
  CommEndpoint comm0(0, 2, 64);
  EXPECT_TRUE(comm0.BufferOutbound(1, MakeMsg(1, 42)));
  EXPECT_EQ(comm0.OutboundPendingApprox(), 1u);
  EXPECT_EQ(comm0.Pump(routers, 16), 1u);
  EXPECT_EQ(comm0.OutboundPendingApprox(), 0u);
  EXPECT_EQ(h1.router.queue(1)->SizeApprox(), 1u);
  EXPECT_EQ(comm0.transferred(), 1);
}

TEST(CommEndpointTest, PumpBatchBounded) {
  RouterHarness h0(0, {0}, 1024);
  RouterHarness h1(1, {1}, 1024);
  std::vector<IntraSocketRouter*> routers = {&h0.router, &h1.router};
  CommEndpoint comm0(0, 2, 1024);
  for (int i = 0; i < 40; ++i) comm0.BufferOutbound(1, MakeMsg(1, i));
  EXPECT_EQ(comm0.Pump(routers, 16), 16u);
  EXPECT_EQ(comm0.OutboundPendingApprox(), 24u);
}

TEST(MessageLayerTest, LocalSendGoesDirect) {
  TestPlacement placement({0, 0, 1, 1});
  MessageLayer layer(2, &placement, MessageLayerParams{});
  EXPECT_TRUE(layer.Send(0, MakeMsg(1)));
  EXPECT_EQ(layer.router(0)->PendingApprox(), 1u);
  EXPECT_EQ(layer.comm(0)->OutboundPendingApprox(), 0u);
}

TEST(MessageLayerTest, RemoteSendBuffersThenPumps) {
  TestPlacement placement({0, 0, 1, 1});
  MessageLayer layer(2, &placement, MessageLayerParams{});
  EXPECT_TRUE(layer.Send(0, MakeMsg(3)));  // partition 3 homed on socket 1
  EXPECT_EQ(layer.router(1)->PendingApprox(), 0u);
  EXPECT_EQ(layer.comm(0)->OutboundPendingApprox(), 1u);
  EXPECT_EQ(layer.PumpComm(0), 1u);
  EXPECT_EQ(layer.router(1)->PendingApprox(), 1u);
  EXPECT_EQ(layer.PendingApprox(), 1u);
}

TEST(MessageLayerTest, HomeMapRespected) {
  TestPlacement placement({0, 1, 0, 1});
  MessageLayer layer(2, &placement, MessageLayerParams{});
  EXPECT_EQ(layer.HomeOf(0), 0);
  EXPECT_EQ(layer.HomeOf(1), 1);
  EXPECT_EQ(layer.num_partitions(), 4);
  EXPECT_TRUE(layer.router(0)->Owns(2));
  EXPECT_TRUE(layer.router(1)->Owns(3));
}

TEST(MessageLayerTest, SendStampsCurrentEpoch) {
  TestPlacement placement({0, 0});
  MessageLayer layer(1, &placement, MessageLayerParams{});
  placement.epoch_value = 5;
  ASSERT_TRUE(layer.Send(0, MakeMsg(1, 99)));
  std::vector<Message> batch;
  PartitionQueue* q = layer.partition_queue(1);
  ASSERT_TRUE(q->TryAcquire(0));
  ASSERT_EQ(q->DequeueBatch(0, 8, &batch), 1u);
  q->Release(0);
  EXPECT_EQ(batch[0].epoch, 5);
  EXPECT_EQ(batch[0].query_id, 99);
}

TEST(MessageLayerTest, SendRejectCountedPerOrigin) {
  TestPlacement placement({0});
  MessageLayerParams params;
  params.partition_queue_capacity = 4;
  MessageLayer layer(1, &placement, params);
  int sent = 0;
  while (layer.Send(0, MakeMsg(0, sent))) ++sent;
  EXPECT_EQ(sent, 4);
  const MessageLayer::SocketStats stats = layer.socket_stats(0);
  EXPECT_EQ(stats.send_rejects, 1);
  EXPECT_EQ(stats.enqueue_rejects, 1);
}

TEST(MessageLayerTest, RehomeMovesQueueAndForwardsStaleArrivals) {
  TestPlacement placement({0, 1});
  MessageLayer layer(2, &placement, MessageLayerParams{});
  // A remote send is buffered towards partition 0's old home (socket 0)...
  ASSERT_TRUE(layer.Send(1, MakeMsg(0, 7)));
  ASSERT_TRUE(layer.Send(0, MakeMsg(0, 8)));  // and one already queued
  // ...then the partition migrates to socket 1 before the comm pump runs.
  EXPECT_EQ(layer.Rehome(0, 0, 1), 1u);
  placement.home[0] = 1;
  placement.epoch_value = 1;
  EXPECT_TRUE(layer.router(1)->Owns(0));
  EXPECT_FALSE(layer.router(0)->Owns(0));
  // The in-flight message lands on socket 0, which no longer owns the
  // partition: it must be forwarded to the new home, not dropped.
  EXPECT_EQ(layer.PumpComm(1), 1u);  // socket1 -> socket0 transfer
  EXPECT_EQ(layer.router(0)->PendingApprox(), 0u);
  EXPECT_EQ(layer.socket_stats(0).stale_forwards, 1);
  EXPECT_EQ(layer.PumpComm(0), 1u);  // forwarded hop arrives at socket 1
  EXPECT_EQ(layer.router(1)->queue(0)->SizeApprox(), 2u);
  EXPECT_EQ(layer.socket_stats(1).rehome_transfers, 1);
}

TEST(MessageLayerTest, DoublyStaleArrivalForwardsTwice) {
  // Two rehomes in quick succession: a message addressed under epoch 0
  // chases the partition across both moves, forwarded at each stale hop
  // and never dropped — the same chained re-resolution the cluster tier
  // relies on when a node-level rehome commits mid-flight.
  TestPlacement placement({0, 1, 2});
  MessageLayer layer(3, &placement, MessageLayerParams{});
  ASSERT_TRUE(layer.Send(1, MakeMsg(0, 7)));  // buffered toward socket 0
  layer.Rehome(0, 0, 1);
  placement.home[0] = 1;
  placement.epoch_value = 1;
  // The message lands on socket 0, which is stale: it forwards toward
  // the current home, socket 1.
  EXPECT_EQ(layer.PumpComm(1), 1u);
  EXPECT_EQ(layer.socket_stats(0).stale_forwards, 1);
  // The partition moves again while the forward is in flight...
  layer.Rehome(0, 1, 2);
  placement.home[0] = 2;
  placement.epoch_value = 2;
  // ...so the forwarded hop is stale too and forwards once more.
  EXPECT_EQ(layer.PumpComm(0), 1u);
  EXPECT_EQ(layer.socket_stats(1).stale_forwards, 1);
  EXPECT_EQ(layer.PumpComm(1), 1u);
  EXPECT_EQ(layer.router(2)->queue(0)->SizeApprox(), 1u);
  EXPECT_EQ(layer.PendingApprox(), 1u);
}

TEST(MessageTest, TypeNames) {
  // Exercised mostly for diagnostics; keep the mapping stable.
  EXPECT_STREQ(MessageTypeName(MessageType::kWorkUnits), "work_units");
  EXPECT_STREQ(MessageTypeName(MessageType::kGet), "get");
}

}  // namespace
}  // namespace ecldb::msg
