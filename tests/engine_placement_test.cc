#include <gtest/gtest.h>

#include <vector>

#include "ecl/ecl.h"
#include "engine/engine.h"
#include "engine/migration.h"
#include "engine/placement.h"
#include "experiment/experiment.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/work_profiles.h"

namespace ecldb::engine {
namespace {

// ---------------------------------------------------------------------------
// PlacementMap unit tests
// ---------------------------------------------------------------------------

TEST(PlacementMapTest, BlockwisePlacementMatchesHistoricalFormula) {
  // The constructed placement must reproduce the mapping the Database used
  // to compute, for any partition/socket ratio (ceil-divide blocks, the
  // remainder clamped onto the last socket).
  for (const auto& [n, s] : std::vector<std::pair<int, int>>{
           {48, 2}, {16, 2}, {7, 3}, {5, 8}, {1, 1}, {48, 4}}) {
    PlacementMap placement(n, s);
    const int per_socket = (n + s - 1) / s;
    for (PartitionId p = 0; p < n; ++p) {
      const SocketId expected = std::min(p / per_socket, s - 1);
      EXPECT_EQ(placement.HomeOf(p), expected) << n << "/" << s << " p" << p;
      EXPECT_EQ(placement.InitialHomeOf(p), expected);
    }
  }
}

TEST(PlacementMapTest, ExplicitPlacementAndCounts) {
  PlacementMap placement({0, 1, 1, 0, 1}, 2);
  EXPECT_EQ(placement.num_partitions(), 5);
  EXPECT_EQ(placement.num_sockets(), 2);
  EXPECT_EQ(placement.PartitionsOn(0), 2);
  EXPECT_EQ(placement.PartitionsOn(1), 3);
  EXPECT_EQ(placement.PartitionsOf(1), (std::vector<PartitionId>{1, 2, 4}));
  EXPECT_EQ(placement.epoch(), 0);
}

TEST(PlacementMapTest, MigrationBumpsEpochAndMovesCounts) {
  PlacementMap placement(4, 2);  // {0,0,1,1}
  EXPECT_FALSE(placement.IsMigrating(0));
  EXPECT_EQ(placement.MigrationTarget(0), -1);

  placement.BeginMigration(0, 1);
  EXPECT_TRUE(placement.IsMigrating(0));
  EXPECT_EQ(placement.MigrationTarget(0), 1);
  EXPECT_EQ(placement.migrating_count(), 1);
  // Routing unchanged until the commit.
  EXPECT_EQ(placement.HomeOf(0), 0);
  EXPECT_EQ(placement.epoch(), 0);

  EXPECT_EQ(placement.CommitMigration(0), 0);  // returns the old home
  EXPECT_EQ(placement.HomeOf(0), 1);
  EXPECT_EQ(placement.InitialHomeOf(0), 0);  // initial placement remembered
  EXPECT_EQ(placement.epoch(), 1);
  EXPECT_EQ(placement.migrating_count(), 0);
  EXPECT_EQ(placement.completed_migrations(), 1);
  EXPECT_EQ(placement.PartitionsOn(0), 1);
  EXPECT_EQ(placement.PartitionsOn(1), 3);
  EXPECT_FALSE(placement.IsMigrating(0));

  // Move it back: second epoch.
  placement.BeginMigration(0, 0);
  EXPECT_EQ(placement.CommitMigration(0), 1);
  EXPECT_EQ(placement.epoch(), 2);
  EXPECT_EQ(placement.PartitionsOn(0), 2);
}

TEST(PlacementMapTest, CancelMigrationLeavesRoutingUntouched) {
  // Node-scope migrations can abort mid-copy (the destination powered
  // down): the cancel clears the migrating state without bumping the
  // epoch or moving the partition — the source was never unhomed.
  PlacementMap placement(4, 2);
  placement.BeginMigration(0, 1);
  ASSERT_TRUE(placement.IsMigrating(0));
  placement.CancelMigration(0);
  EXPECT_FALSE(placement.IsMigrating(0));
  EXPECT_EQ(placement.MigrationTarget(0), -1);
  EXPECT_EQ(placement.HomeOf(0), 0);
  EXPECT_EQ(placement.epoch(), 0);
  EXPECT_EQ(placement.migrating_count(), 0);
  EXPECT_EQ(placement.completed_migrations(), 0);
  EXPECT_EQ(placement.cancelled_migrations(), 1);
  EXPECT_EQ(placement.PartitionsOn(0), 2);
  EXPECT_EQ(placement.PartitionsOn(1), 2);
  // A fresh migration of the same partition still works normally.
  placement.BeginMigration(0, 1);
  EXPECT_EQ(placement.CommitMigration(0), 0);
  EXPECT_EQ(placement.epoch(), 1);
  EXPECT_EQ(placement.HomeOf(0), 1);
}

// ---------------------------------------------------------------------------
// Live-migration protocol
// ---------------------------------------------------------------------------

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest()
      : machine_(&sim_, hwsim::MachineParams::HaswellEp()),
        engine_(&sim_, &machine_, EngineParams{}) {}

  void AllOn() {
    machine_.ApplyMachineConfig(
        hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  }

  QuerySpec ComputeQuery(PartitionId p, double ops) {
    QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({p, ops});
    spec.origin_socket = engine_.placement().HomeOf(p);
    return spec;
  }

  sim::Simulator sim_;
  hwsim::Machine machine_;
  Engine engine_;
};

TEST_F(MigrationTest, PartitionMovesAndStaysServable) {
  AllOn();
  ASSERT_EQ(engine_.placement().HomeOf(0), 0);
  sim_.ScheduleAfter(Millis(1), [&] {
    EXPECT_TRUE(engine_.migrator().StartMigration(0, 1));
    EXPECT_TRUE(engine_.placement().IsMigrating(0));
  });
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_.migrator().completed(), 1);
  EXPECT_EQ(engine_.migrator().active(), 0);
  EXPECT_EQ(engine_.placement().HomeOf(0), 1);
  EXPECT_EQ(engine_.placement().epoch(), 1);
  EXPECT_TRUE(engine_.message_layer().router(1)->Owns(0));
  EXPECT_FALSE(engine_.message_layer().router(0)->Owns(0));
  // The moved partition executes work at its new home.
  engine_.Submit(ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(50));
  EXPECT_EQ(engine_.latency().completed(), 1);
  EXPECT_EQ(engine_.scheduler().inflight(), 0);
}

TEST_F(MigrationTest, RejectsRedundantOrConcurrentStarts) {
  AllOn();
  sim_.ScheduleAfter(Millis(1), [&] {
    EXPECT_FALSE(engine_.migrator().StartMigration(0, 0));  // already home
    EXPECT_TRUE(engine_.migrator().StartMigration(0, 1));
    EXPECT_FALSE(engine_.migrator().StartMigration(0, 1));  // in progress
  });
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_.migrator().started(), 1);
  EXPECT_EQ(engine_.migrator().completed(), 1);
}

TEST_F(MigrationTest, QueuedWorkDrainsBeforeHandover) {
  AllOn();
  // A long backlog sits in partition 0's queue when the migration starts:
  // the shard copy rides the FIFO queue behind it, so the drain barrier
  // holds — all of it completes, and the partition ends up rehomed.
  for (int i = 0; i < 50; ++i) engine_.Submit(ComputeQuery(0, 1e6));
  sim_.ScheduleAfter(Millis(1),
                     [&] { EXPECT_TRUE(engine_.migrator().StartMigration(0, 1)); });
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(engine_.latency().completed(), 50);
  EXPECT_EQ(engine_.migrator().completed(), 1);
  EXPECT_EQ(engine_.placement().HomeOf(0), 1);
  // The shard copy is internal bookkeeping: it must not appear in the
  // query counts or latency statistics.
  EXPECT_EQ(engine_.scheduler().queries_submitted(), 50);
  EXPECT_EQ(engine_.scheduler().inflight(), 0);
}

TEST(MigrationStreamTest, InflightTrafficSurvivesRehome) {
  // Remote queries stream into a partition while it migrates with a
  // sizeable modeled shard: messages queued behind the copy travel with
  // the rehomed queue, and messages still in flight toward the old home
  // are forwarded under the stale epoch. Nothing is lost either way.
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  EngineParams params;
  params.migration.min_shard_bytes = 256.0 * (1 << 20);  // ~10 ms copy
  Engine engine(&sim, &machine, params);
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));

  int submitted = 0;
  std::function<void()> submit_one = [&] {
    if (sim.now() >= Millis(60)) return;
    QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({0, 1e5});
    spec.origin_socket = 1;  // remote origin: messages cross the comm hop
    engine.Submit(spec);
    ++submitted;
    sim.ScheduleAfter(Micros(500), submit_one);
  };
  sim.ScheduleAfter(Micros(100), submit_one);
  sim.ScheduleAfter(Millis(5),
                    [&] { EXPECT_TRUE(engine.migrator().StartMigration(0, 1)); });
  sim.RunFor(Millis(300));

  EXPECT_EQ(engine.migrator().completed(), 1);
  EXPECT_EQ(engine.placement().HomeOf(0), 1);
  EXPECT_GT(submitted, 50);
  EXPECT_EQ(engine.latency().completed(), submitted);
  EXPECT_EQ(engine.scheduler().inflight(), 0);
  // The stream was dense relative to the copy, so the rehome must have
  // carried queued messages and/or forwarded stale arrivals.
  const int64_t rehomed = engine.migrator().messages_rehomed();
  const int64_t stale = engine.socket_msg_stats(0).stale_forwards;
  EXPECT_GT(rehomed + stale, 0);
}

TEST_F(MigrationTest, QueriesSpanningMigratingPartitionComplete) {
  AllOn();
  // Multi-partition queries touching both the migrating partition and
  // partitions on both sockets, submitted before, during, and after the
  // migration window.
  auto span_query = [&] {
    QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({0, 1e6});   // migrating
    spec.work.push_back({5, 1e6});   // stays on socket 0
    spec.work.push_back({30, 1e6});  // socket 1
    spec.origin_socket = 0;
    engine_.Submit(spec);
  };
  span_query();
  sim_.ScheduleAfter(Millis(1), [&] {
    EXPECT_TRUE(engine_.migrator().StartMigration(0, 1));
    span_query();
  });
  sim_.ScheduleAfter(Millis(50), span_query);
  sim_.RunFor(Millis(200));
  EXPECT_EQ(engine_.migrator().completed(), 1);
  EXPECT_EQ(engine_.latency().completed(), 3);
  EXPECT_EQ(engine_.scheduler().inflight(), 0);
}

TEST_F(MigrationTest, ChargesBandwidthLimitedCopyCost) {
  AllOn();
  EngineParams params;
  params.migration.min_shard_bytes = 512.0 * (1 << 20);
  sim::Simulator sim;
  hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
  Engine engine(&sim, &machine, params);
  machine.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine.topology(), 2.6, 3.0));
  sim.ScheduleAfter(Millis(1),
                    [&] { EXPECT_TRUE(engine.migrator().StartMigration(0, 1)); });
  sim.RunFor(Seconds(2));
  EXPECT_EQ(engine.migrator().completed(), 1);
  EXPECT_DOUBLE_EQ(engine.migrator().bytes_moved(), 512.0 * (1 << 20));
  // 512 MB over a 25 GB/s interconnect needs at least ~20 ms: the copy
  // must not hand over before the bandwidth-limited lower bound.
  const double qpi_gbps = machine.params().bandwidth.qpi_gbps;
  const double min_s = 512.0 * (1 << 20) / (qpi_gbps * 1e9);
  EXPECT_GE(ToSeconds(sim.now()), min_s);
}

// ---------------------------------------------------------------------------
// Consolidation policy (system-level ECL)
// ---------------------------------------------------------------------------

TEST(ConsolidationTest, LowLoadEmptiesAndParksASocket) {
  experiment::RunOptions options;
  options.mode = experiment::ControlMode::kEcl;
  options.prime_duration = Seconds(28);
  options.ecl.consolidation.enabled = true;
  options.engine.migration.min_shard_bytes = 128.0 * (1 << 20);
  workload::ConstantProfile profile(0.1, Seconds(60));
  const experiment::RunResult r = experiment::RunLoadExperiment(
      [](Engine* e) {
        workload::KvParams params;
        params.indexed = false;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      profile, options);
  // At 10 % machine load one socket carries everything: the policy must
  // have emptied the other socket...
  EXPECT_GT(r.migrations, 0);
  EXPECT_GT(r.consolidation_moves, 0);
  ASSERT_FALSE(r.series.empty());
  const experiment::Sample& last = r.series.back();
  ASSERT_EQ(last.partitions_on_socket.size(), 2u);
  const int min_parts = std::min(last.partitions_on_socket[0],
                                 last.partitions_on_socket[1]);
  const int max_parts = std::max(last.partitions_on_socket[0],
                                 last.partitions_on_socket[1]);
  EXPECT_EQ(min_parts, 0);
  EXPECT_EQ(max_parts, 48);
  // ...without losing queries or the latency limit.
  EXPECT_EQ(r.completed, r.submitted);
  EXPECT_LT(r.p99_ms, options.ecl.system.latency_limit_ms);
  // The parked socket's power collapses to the deep package-sleep floor:
  // halted-package base (13 W) + static DRAM (8 W) + the pinned uncore.
  // The shallow idle state would add another 9 W and any active
  // configuration adds core power on top, so < 25 W demonstrates the
  // socket actually reached the deep state.
  double min_socket_w = 1e9;
  for (double w : last.socket_power_w) min_socket_w = std::min(min_socket_w, w);
  EXPECT_LT(min_socket_w, 25.0);
}

TEST(ConsolidationTest, DeterministicAcrossRuns) {
  auto run = [] {
    experiment::RunOptions options;
    options.prime_duration = Seconds(10);
    options.ecl.consolidation.enabled = true;
    options.engine.migration.min_shard_bytes = 128.0 * (1 << 20);
    workload::ConstantProfile profile(0.1, Seconds(30));
    return experiment::RunLoadExperiment(
        [](Engine* e) {
          workload::KvParams params;
          params.indexed = false;
          return std::make_unique<workload::KvWorkload>(e, params);
        },
        profile, options);
  };
  const experiment::RunResult a = run();
  const experiment::RunResult b = run();
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.consolidation_moves, b.consolidation_moves);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
  EXPECT_EQ(a.stale_forwards, b.stale_forwards);
}

TEST(ConsolidationTest, PressureSpreadsPartitionsBack) {
  // Low load consolidates; a following high phase must spread partitions
  // back across the sockets instead of riding one socket into overload.
  experiment::RunOptions options;
  options.prime_duration = Seconds(28);
  options.ecl.consolidation.enabled = true;
  options.engine.migration.min_shard_bytes = 32.0 * (1 << 20);
  workload::StepProfile profile({{Seconds(0), 0.1}, {Seconds(40), 0.9}},
                                Seconds(80));
  const experiment::RunResult r = experiment::RunLoadExperiment(
      [](Engine* e) {
        workload::KvParams params;
        params.indexed = false;
        return std::make_unique<workload::KvWorkload>(e, params);
      },
      profile, options);
  EXPECT_GT(r.consolidation_moves, 0);
  EXPECT_GT(r.spread_moves, 0);
  ASSERT_FALSE(r.series.empty());
  const experiment::Sample& last = r.series.back();
  // Both sockets populated again at the end of the high phase.
  EXPECT_GT(last.partitions_on_socket[0], 0);
  EXPECT_GT(last.partitions_on_socket[1], 0);
  EXPECT_EQ(r.completed, r.submitted);
}

}  // namespace
}  // namespace ecldb::engine
