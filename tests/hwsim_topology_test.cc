#include <gtest/gtest.h>

#include "hwsim/hw_config.h"
#include "hwsim/pstate.h"
#include "hwsim/topology.h"

namespace ecldb::hwsim {
namespace {

TEST(TopologyTest, HaswellEpShape) {
  const Topology t = Topology::HaswellEp2S();
  EXPECT_EQ(t.num_sockets, 2);
  EXPECT_EQ(t.cores_per_socket, 12);
  EXPECT_EQ(t.threads_per_core, 2);
  EXPECT_EQ(t.threads_per_socket(), 24);
  EXPECT_EQ(t.total_cores(), 24);
  EXPECT_EQ(t.total_threads(), 48);
}

TEST(TopologyTest, ThreadMappingRoundTrips) {
  const Topology t = Topology::HaswellEp2S();
  for (SocketId s = 0; s < t.num_sockets; ++s) {
    for (CoreId c = 0; c < t.cores_per_socket; ++c) {
      for (int sib = 0; sib < t.threads_per_core; ++sib) {
        const HwThreadId thread = t.ThreadOf(s, c, sib);
        EXPECT_EQ(t.SocketOfThread(thread), s);
        EXPECT_EQ(t.CoreOfThread(thread), c);
        EXPECT_EQ(t.SiblingOfThread(thread), sib);
        EXPECT_EQ(t.LocalThreadOfThread(thread), c * 2 + sib);
      }
    }
  }
}

TEST(TopologyTest, ThreadIdsAreDenseAndUnique) {
  const Topology t{2, 3, 2};
  std::vector<bool> seen(static_cast<size_t>(t.total_threads()), false);
  for (SocketId s = 0; s < 2; ++s) {
    for (CoreId c = 0; c < 3; ++c) {
      for (int sib = 0; sib < 2; ++sib) {
        const HwThreadId id = t.ThreadOf(s, c, sib);
        ASSERT_GE(id, 0);
        ASSERT_LT(id, t.total_threads());
        EXPECT_FALSE(seen[static_cast<size_t>(id)]);
        seen[static_cast<size_t>(id)] = true;
      }
    }
  }
}

TEST(FrequencyTableTest, HaswellEpRanges) {
  const FrequencyTable f = FrequencyTable::HaswellEp();
  EXPECT_DOUBLE_EQ(f.min_core(), 1.2);
  EXPECT_DOUBLE_EQ(f.max_core_nominal(), 2.6);
  EXPECT_DOUBLE_EQ(f.turbo_ghz, 3.1);
  EXPECT_DOUBLE_EQ(f.max_core(), 3.1);
  EXPECT_DOUBLE_EQ(f.min_uncore(), 1.2);
  EXPECT_DOUBLE_EQ(f.max_uncore(), 3.0);
  EXPECT_EQ(f.core_ghz.size(), 15u);
  EXPECT_EQ(f.uncore_ghz.size(), 19u);
}

TEST(FrequencyTableTest, SnapsToNearest) {
  const FrequencyTable f = FrequencyTable::HaswellEp();
  EXPECT_DOUBLE_EQ(f.NearestCore(1.24), 1.2);
  EXPECT_DOUBLE_EQ(f.NearestCore(1.96), 2.0);
  EXPECT_DOUBLE_EQ(f.NearestCore(5.0), 3.1);   // clamps to turbo
  EXPECT_DOUBLE_EQ(f.NearestCore(2.9), 3.1);   // closer to turbo than 2.6
  EXPECT_DOUBLE_EQ(f.NearestCore(2.7), 2.6);
  EXPECT_DOUBLE_EQ(f.NearestUncore(0.3), 1.2);
  EXPECT_DOUBLE_EQ(f.NearestUncore(2.84), 2.8);
}

TEST(SocketConfigTest, IdleHasNothingActive) {
  const Topology t = Topology::HaswellEp2S();
  const SocketConfig c = SocketConfig::Idle(t);
  EXPECT_FALSE(c.AnyActive());
  EXPECT_EQ(c.ActiveThreadCount(), 0);
  EXPECT_EQ(c.ActiveCoreCount(t), 0);
  EXPECT_DOUBLE_EQ(c.MeanActiveCoreFreq(t), 0.0);
}

TEST(SocketConfigTest, FirstThreadsFillsCoresSiblingsFirst) {
  const Topology t = Topology::HaswellEp2S();
  const SocketConfig c = SocketConfig::FirstThreads(t, 3, 2.0, 2.5);
  EXPECT_EQ(c.ActiveThreadCount(), 3);
  // Threads 0,1 = core 0 siblings; thread 2 = core 1 first sibling.
  EXPECT_TRUE(c.ThreadActive(0));
  EXPECT_TRUE(c.ThreadActive(1));
  EXPECT_TRUE(c.ThreadActive(2));
  EXPECT_FALSE(c.ThreadActive(3));
  EXPECT_EQ(c.ActiveCoreCount(t), 2);
  EXPECT_TRUE(c.CoreActive(t, 0));
  EXPECT_TRUE(c.CoreActive(t, 1));
  EXPECT_FALSE(c.CoreActive(t, 2));
}

TEST(SocketConfigTest, SpreadThreadsOnePerCoreFirst) {
  const Topology t = Topology::HaswellEp2S();
  const SocketConfig c = SocketConfig::SpreadThreads(t, 13, 2.0, 2.5);
  EXPECT_EQ(c.ActiveThreadCount(), 13);
  // 12 cores get one sibling, the 13th thread is core 0's second sibling.
  EXPECT_EQ(c.ActiveCoreCount(t), 12);
  EXPECT_TRUE(c.ThreadActive(0));
  EXPECT_TRUE(c.ThreadActive(1));
  EXPECT_TRUE(c.ThreadActive(2));   // core 1 sibling 0
  EXPECT_FALSE(c.ThreadActive(3));  // core 1 sibling 1
}

TEST(SocketConfigTest, SnapAdjustsAllFrequencies) {
  const Topology t = Topology::HaswellEp2S();
  const FrequencyTable f = FrequencyTable::HaswellEp();
  SocketConfig c = SocketConfig::AllOn(t, 1.97, 2.93);
  c.SnapToTable(f);
  for (double fc : c.core_freq_ghz) EXPECT_DOUBLE_EQ(fc, 2.0);
  EXPECT_DOUBLE_EQ(c.uncore_freq_ghz, 2.9);
}

TEST(SocketConfigTest, MeanActiveCoreFreqIgnoresInactive) {
  const Topology t = Topology::HaswellEp2S();
  SocketConfig c = SocketConfig::FirstThreads(t, 4, 1.2, 2.0);  // cores 0,1
  c.core_freq_ghz[0] = 1.2;
  c.core_freq_ghz[1] = 2.6;
  c.core_freq_ghz[5] = 9.9;  // inactive, must not count
  EXPECT_DOUBLE_EQ(c.MeanActiveCoreFreq(t), 1.9);
}

TEST(SocketConfigTest, EqualityComparesAllFields) {
  const Topology t = Topology::HaswellEp2S();
  SocketConfig a = SocketConfig::AllOn(t, 2.0, 2.0);
  SocketConfig b = a;
  EXPECT_TRUE(a == b);
  b.uncore_freq_ghz = 2.5;
  EXPECT_FALSE(a == b);
}

TEST(MachineConfigTest, AllIdleDetection) {
  const Topology t = Topology::HaswellEp2S();
  MachineConfig m = MachineConfig::Idle(t);
  EXPECT_TRUE(m.AllIdle());
  m.sockets[1].thread_active[0] = true;
  EXPECT_FALSE(m.AllIdle());
}

TEST(SocketConfigTest, ToStringListsThreads) {
  const Topology t = Topology::HaswellEp2S();
  const SocketConfig c = SocketConfig::FirstThreads(t, 2, 1.2, 3.0);
  const std::string s = c.ToString();
  EXPECT_NE(s.find("threads={0,1}"), std::string::npos);
  EXPECT_NE(s.find("f_uncore=3"), std::string::npos);
}

}  // namespace
}  // namespace ecldb::hwsim
