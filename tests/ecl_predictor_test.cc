// Learned profile maintenance (ROADMAP item 3): feature extraction, the
// kNN predictor, seeding on drift, multiplexed reevaluation fairness, the
// epsilon-regression against exhaustive rediscovery, and telemetry export
// determinism of the predictor metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "ecl/profile_maintenance.h"
#include "ecl/profile_predictor.h"
#include "experiment/drift_trace.h"
#include "experiment/run_matrix.h"
#include "hwsim/machine.h"
#include "hwsim/topology.h"
#include "profile/config_generator.h"
#include "profile/feature_vector.h"
#include "profile/serialization.h"

namespace ecldb::ecl {
namespace {

profile::EnergyProfile MakeProfile() {
  profile::ConfigGenerator gen(hwsim::Topology::HaswellEp2S(),
                               hwsim::FrequencyTable::HaswellEp());
  return profile::EnergyProfile(gen.Generate(profile::GeneratorParams{}));
}

profile::FeatureVector Feat(double instr_rate, double bytes_rate,
                            int threads = 12, double ghz = 2.0,
                            double duty = 1.0, double util = 0.9) {
  profile::FeatureInputs in;
  in.instr_rate = instr_rate;
  in.dram_bytes_rate = bytes_rate;
  in.active_threads = threads;
  in.core_freq_ghz = ghz;
  in.rti_duty = duty;
  in.utilization = util;
  return profile::ExtractFeatures(in);
}

TEST(FeatureVectorTest, InvalidWithoutLoad) {
  EXPECT_FALSE(Feat(0.0, 1e9).valid);
  EXPECT_FALSE(Feat(1e9, 1e9, /*threads=*/0).valid);
  EXPECT_FALSE(Feat(1e9, 1e9, 12, /*ghz=*/0.0).valid);
  EXPECT_TRUE(Feat(1e9, 1e9).valid);
}

TEST(FeatureVectorTest, NormalizedToUnitRange) {
  const profile::FeatureVector f =
      Feat(1e12, 1e13, 24, 2.6, 0.3, 1.5 /* clamped */);
  ASSERT_TRUE(f.valid);
  for (int i = 0; i < profile::kFeatureDims; ++i) {
    EXPECT_GE(f.v[static_cast<size_t>(i)], 0.0) << profile::FeatureDimName(i);
    EXPECT_LE(f.v[static_cast<size_t>(i)], 1.0) << profile::FeatureDimName(i);
  }
}

TEST(FeatureVectorTest, SignatureRoughlyConfigInvariant) {
  // The same instruction mix executed under a different configuration
  // (half the threads at a higher clock, proportionally lower throughput)
  // must land close in feature space, while a different mix (memory-bound
  // scan vs index lookups) lands far: that is what makes observations
  // recorded under one configuration usable when the workload returns.
  const profile::FeatureVector mix_a = Feat(24e9, 24e9, 24, 2.0);
  const profile::FeatureVector mix_a_other_cfg = Feat(15.6e9, 15.6e9, 12, 2.6);
  const profile::FeatureVector mix_b = Feat(24e9, 300e9, 24, 2.0);
  const double same = FeatureDistance(mix_a, mix_a_other_cfg);
  const double different = FeatureDistance(mix_a, mix_b);
  EXPECT_LT(same, 0.05);
  EXPECT_GT(different, 5.0 * same);
  EXPECT_DOUBLE_EQ(FeatureDistance(mix_a, mix_a), 0.0);
}

TEST(ProfilePredictorTest, PredictsObservedPointExactly) {
  ProfilePredictorParams params;
  params.enabled = true;
  ProfilePredictor pred(10, params);
  const profile::FeatureVector f = Feat(2e9, 1e9);
  pred.Observe(3, f, 80.0, 2.5e9, Seconds(1));
  const ProfilePredictor::Prediction p = pred.Predict(3, f);
  EXPECT_DOUBLE_EQ(p.power_w, 80.0);
  EXPECT_DOUBLE_EQ(p.perf_score, 2.5e9);
  // Exact hit, but a thin neighborhood (1 of k=3) keeps some ignorance.
  EXPECT_LT(p.ignorance, params.ignorance_threshold);
  EXPECT_GT(p.ignorance, 0.0);
}

TEST(ProfilePredictorTest, IgnoranceReflectsEvidence) {
  ProfilePredictorParams params;
  params.enabled = true;
  ProfilePredictor pred(10, params);
  const profile::FeatureVector near = Feat(2e9, 1e9);
  // Nothing cached: full ignorance, no usable prediction.
  EXPECT_DOUBLE_EQ(pred.Predict(3, near).ignorance, 1.0);
  for (int rep = 0; rep < 3; ++rep) {
    pred.Observe(3, near, 80.0, 2.5e9, Seconds(rep + 1));
    pred.Observe(3, Feat(2.1e9, 1.05e9), 81.0, 2.6e9, Seconds(rep + 10));
  }
  const double confident = pred.Predict(3, near).ignorance;
  const double extrapolating =
      pred.Predict(3, Feat(30e9, 0.1e9, 4, 2.6)).ignorance;
  EXPECT_LT(confident, extrapolating);
  EXPECT_LE(confident, params.ignorance_threshold);
  // Another configuration's bucket is still empty.
  EXPECT_DOUBLE_EQ(pred.Predict(4, near).ignorance, 1.0);
}

TEST(ProfilePredictorTest, MergesNearDuplicates) {
  ProfilePredictorParams params;
  params.enabled = true;
  ProfilePredictor pred(10, params);
  const profile::FeatureVector f = Feat(2e9, 1e9);
  pred.Observe(3, f, 80.0, 2.5e9, Seconds(1));
  // Same neighborhood, newer measurement: replaces, does not grow.
  pred.Observe(3, f, 90.0, 2.0e9, Seconds(2));
  EXPECT_EQ(pred.size(), 1);
  ASSERT_EQ(pred.entries(3).size(), 1u);
  EXPECT_DOUBLE_EQ(pred.entries(3)[0].power_w, 90.0);
  EXPECT_EQ(pred.entries(3)[0].at, Seconds(2));
}

TEST(ProfilePredictorTest, EvictsOldestWhenBucketFull) {
  ProfilePredictorParams params;
  params.enabled = true;
  params.max_entries_per_config = 4;
  params.merge_radius = 1e-6;  // force distinct entries
  ProfilePredictor pred(10, params);
  for (int i = 0; i < 6; ++i) {
    pred.Observe(3, Feat((1.0 + i) * 1e9, 1e9), 50.0 + i, 1e9,
                 Seconds(i + 1));
  }
  ASSERT_EQ(pred.entries(3).size(), 4u);
  SimTime oldest = Seconds(1000);
  for (const ProfilePredictor::Observation& o : pred.entries(3)) {
    oldest = std::min(oldest, o.at);
  }
  // Observations from t=1s and t=2s were evicted.
  EXPECT_EQ(oldest, Seconds(3));
  EXPECT_EQ(pred.size(), 4);
}

TEST(ProfilePredictorTest, IgnoresIdleAndInvalidObservations) {
  ProfilePredictorParams params;
  params.enabled = true;
  ProfilePredictor pred(10, params);
  pred.Observe(3, profile::FeatureVector{}, 80.0, 2.5e9, Seconds(1));
  pred.Observe(0, Feat(2e9, 1e9), 80.0, 2.5e9, Seconds(1));  // idle index
  pred.Observe(99, Feat(2e9, 1e9), 80.0, 2.5e9, Seconds(1));
  pred.Observe(3, Feat(2e9, 1e9, 12, 2.0, 1.0, /*util=*/0.01), 80.0, 2.5e9,
               Seconds(1));
  EXPECT_EQ(pred.size(), 0);
}

TEST(LearnCacheFingerprintTest, RejectsCachesFromDifferentNodeShapes) {
  // A learn-cache serialized on one node shape must not warm-start a
  // predictor on another: the combined fingerprint mixes the profile's
  // configuration set with the machine's topology and frequency tables,
  // so a wimpy node's cache is rejected on a brawny node (and vice
  // versa) instead of silently seeding foreign measurements.
  const profile::EnergyProfile profile = MakeProfile();
  const hwsim::MachineParams brawny = hwsim::MachineParams::HaswellEp();
  const hwsim::MachineParams wimpy = hwsim::MachineParams::Wimpy();
  const uint64_t fp_brawny = profile::LearnCacheFingerprint(profile, brawny);
  const uint64_t fp_wimpy = profile::LearnCacheFingerprint(profile, wimpy);
  EXPECT_NE(fp_brawny, fp_wimpy);
  // Same shape, different power calibration: fingerprints match (the
  // cache holds measurements, not the power model).
  hwsim::MachineParams recalibrated = brawny;
  recalibrated.power.core_leak_w += 0.1;
  EXPECT_EQ(profile::MachineFingerprint(brawny),
            profile::MachineFingerprint(recalibrated));

  ProfilePredictorParams pp;
  pp.enabled = true;
  ProfilePredictor trained(profile.size(), pp);
  trained.Observe(3, Feat(2e9, 1e9), 80.0, 2.5e9, Seconds(1));
  const std::string cache = SerializeLearnCache(trained, fp_brawny);

  ProfilePredictor fresh(profile.size(), pp);
  EXPECT_FALSE(DeserializeLearnCache(cache, fp_wimpy, &fresh));
  EXPECT_EQ(fresh.size(), 0);  // untouched on rejection
  EXPECT_TRUE(DeserializeLearnCache(cache, fp_brawny, &fresh));
  EXPECT_EQ(fresh.size(), 1);
}

TEST(SeedFromPredictionsTest, SeedsConfidentConfigsAndSkipsUnknown) {
  profile::EnergyProfile profile = MakeProfile();
  ProfilePredictorParams pp;
  pp.enabled = true;
  ProfilePredictor pred(profile.size(), pp);
  const profile::FeatureVector f = Feat(2e9, 1e9);
  // Train every config except the last 10 (the "unknown" tail).
  const int untrained_from = profile.size() - 10;
  for (int i = 1; i < untrained_from; ++i) {
    for (int rep = 0; rep < 3; ++rep) {
      pred.Observe(i, f, 40.0 + i, 1e9 + 1e6 * i, Seconds(rep + 1));
    }
  }
  profile.InvalidateAll();
  ProfileMaintenance maint{ProfileMaintenanceParams{}};
  const ProfileMaintenance::SeedOutcome out = maint.SeedFromPredictions(
      &profile, pred, f, pp.ignorance_threshold, Seconds(100));
  EXPECT_EQ(out.seeded, untrained_from - 1);
  EXPECT_EQ(out.left_stale, 10);
  EXPECT_EQ(maint.predictor_seeded_configs(), untrained_from - 1);
  EXPECT_EQ(maint.predictor_misses(), 10);
  EXPECT_GT(out.mean_ignorance, 0.0);
  // Seeded configs are fresh again; the untrained tail stays stale.
  const std::vector<int> stale =
      profile.StaleConfigs(Seconds(100), Seconds(120));
  EXPECT_EQ(static_cast<int>(stale.size()), 10);
  for (int i : stale) EXPECT_GE(i, untrained_from);
  // Seeded values are the predictions.
  EXPECT_DOUBLE_EQ(profile.config(1).power_w, 41.0);
  EXPECT_DOUBLE_EQ(profile.config(1).perf_score, 1e9 + 1e6);
}

TEST(SeedFromPredictionsTest, NoOpOnInvalidFeatures) {
  profile::EnergyProfile profile = MakeProfile();
  ProfilePredictorParams pp;
  pp.enabled = true;
  ProfilePredictor pred(profile.size(), pp);
  profile.InvalidateAll();
  ProfileMaintenance maint{ProfileMaintenanceParams{}};
  const ProfileMaintenance::SeedOutcome out = maint.SeedFromPredictions(
      &profile, pred, profile::FeatureVector{}, pp.ignorance_threshold,
      Seconds(1));
  EXPECT_EQ(out.seeded, 0);
  EXPECT_EQ(out.left_stale, 0);
  EXPECT_EQ(profile.measured_count(), 0);
}

TEST(PickForReevaluationTest, NoStarvationUnderContinuousDrift) {
  // Under continuous drift the stale set never drains; the round-robin
  // cursor must still visit every stale configuration within
  // ceil(n / evals_per_interval) intervals — no index may starve.
  profile::EnergyProfile profile = MakeProfile();
  ProfileMaintenanceParams params;
  ProfileMaintenance maint{params};
  maint.FlagDrift(&profile);
  const int n = profile.size() - 1;
  const int rounds = (n + params.evals_per_interval - 1) /
                     params.evals_per_interval;
  std::set<int> picked;
  for (int round = 0; round < rounds; ++round) {
    // Re-flagging every interval models a workload that keeps drifting; it
    // must not reset the cursor.
    maint.FlagDrift(&profile);
    const std::vector<int> picks =
        maint.PickForReevaluation(profile, Seconds(round + 1));
    EXPECT_LE(static_cast<int>(picks.size()), params.evals_per_interval);
    picked.insert(picks.begin(), picks.end());
  }
  EXPECT_EQ(static_cast<int>(picked.size()), n);
}

TEST(PickForReevaluationTest, DrainsStaleSetWhenMeasurementsLand) {
  profile::EnergyProfile profile = MakeProfile();
  ProfileMaintenanceParams params;
  ProfileMaintenance maint{params};
  maint.FlagDrift(&profile);
  const int n = profile.size() - 1;
  int rounds = 0;
  SimTime now = Seconds(1);
  while (!profile.StaleConfigs(now, params.stale_age).empty()) {
    ASSERT_LT(rounds, 2 * n) << "stale set never drained";
    for (int idx : maint.PickForReevaluation(profile, now)) {
      profile.Record(idx, 50.0, 1e9, now);
    }
    ++rounds;
    now += Seconds(1);
  }
  EXPECT_EQ(rounds, (n + params.evals_per_interval - 1) /
                        params.evals_per_interval);
}

// ---- End-to-end: learned vs exhaustive rediscovery ------------------------

experiment::DriftTraceParams TraceParams(bool learned) {
  experiment::DriftTraceParams p;
  p.predictor.enabled = learned;
  return p;
}

TEST(LearnedProfileRegressionTest, RecurringDriftConvergesFastAndCloseToFull) {
  // The acceptance criterion of ROADMAP item 3: on recurring drift the
  // learned path re-converges >= 5x faster than the exhaustive multiplexed
  // sweep, and the configuration it converges to is within epsilon of the
  // full rediscovery (tail energy and tail latency of each phase).
  experiment::DriftTraceResult mux;
  experiment::DriftTraceResult learned;
  experiment::RunMatrix(2, 2, [&](int i) {
    (i == 0 ? mux : learned) = RunDriftTrace(TraceParams(i == 1));
  });
  ASSERT_EQ(mux.phases.size(), 3u);
  ASSERT_EQ(learned.phases.size(), 3u);

  double mux_adapt = 0.0, learned_adapt = 0.0;
  for (size_t ph = 1; ph < mux.phases.size(); ++ph) {
    ASSERT_GT(mux.phases[ph].adapt_s, 0.0) << "phase " << ph;
    ASSERT_GT(learned.phases[ph].adapt_s, 0.0) << "phase " << ph;
    mux_adapt += mux.phases[ph].adapt_s;
    learned_adapt += learned.phases[ph].adapt_s;
    // The predictor seeded most of the profile instead of measuring it.
    EXPECT_GT(learned.phases[ph].seeded, 100) << "phase " << ph;
    EXPECT_LT(learned.phases[ph].evals, mux.phases[ph].evals)
        << "phase " << ph;
    // Epsilon-regression: converged quality within epsilon of the full
    // rediscovery. Many of the 144 configurations are near-ties in
    // efficiency, so tiny value differences permute the argmax — the
    // exhaustive arm itself picks configurations spanning ~17 % tail
    // energy across revisits of the same workload. Epsilon is set inside
    // that inherent selection band: 15 % tail energy, 1.5x + 1 ms tail
    // p99.
    EXPECT_LE(learned.phases[ph].tail_energy_j,
              1.15 * mux.phases[ph].tail_energy_j)
        << "phase " << ph;
    EXPECT_LE(learned.phases[ph].tail_p99_ms,
              1.5 * mux.phases[ph].tail_p99_ms + 1.0)
        << "phase " << ph;
  }
  EXPECT_GE(mux_adapt / learned_adapt, 5.0)
      << "multiplexed " << mux_adapt << " s vs learned " << learned_adapt
      << " s over recurring phases";
}

// ---- Telemetry determinism ------------------------------------------------

experiment::DriftTraceParams ShortTrace(telemetry::Telemetry* tel,
                                        bool learned) {
  experiment::DriftTraceParams p;
  p.predictor.enabled = learned;
  p.prime = Seconds(10);
  p.num_switch_phases = 1;
  p.phase_len = Seconds(10);
  p.tail = Seconds(5);
  p.telemetry = tel;
  return p;
}

TEST(PredictorTelemetryTest, ExportIsDeterministic) {
  // The predictor metrics must export byte-identically across repeated
  // runs and across RunMatrix --jobs values (the repo-wide determinism
  // contract for every telemetry artifact).
  telemetry::TelemetryParams tp;
  tp.enabled = true;
  std::vector<std::string> dumps(3);
  // Two concurrent arms plus one sequential rerun of arm 0.
  experiment::RunMatrix(2, 2, [&](int i) {
    telemetry::Telemetry tel(tp);
    dumps[static_cast<size_t>(i)] =
        RunDriftTrace(ShortTrace(&tel, true)).telemetry_dump;
  });
  {
    telemetry::Telemetry tel(tp);
    dumps[2] = RunDriftTrace(ShortTrace(&tel, true)).telemetry_dump;
  }
  ASSERT_FALSE(dumps[0].empty());
  EXPECT_EQ(dumps[0], dumps[1]) << "jobs=2 arms diverged";
  EXPECT_EQ(dumps[0], dumps[2]) << "sequential rerun diverged";
  EXPECT_NE(dumps[0].find("predictor_hits"), std::string::npos);
  EXPECT_NE(dumps[0].find("predictor_misses"), std::string::npos);
  EXPECT_NE(dumps[0].find("predictor_seeded_configs"), std::string::npos);
  EXPECT_NE(dumps[0].find("predictor_measurements_skipped"),
            std::string::npos);
  EXPECT_NE(dumps[0].find("ignorance"), std::string::npos);
}

TEST(PredictorTelemetryTest, DisabledPredictorLeavesExportUnchanged) {
  // With the predictor off (the default), no predictor metric may appear:
  // every pre-existing telemetry artifact stays byte-identical.
  telemetry::TelemetryParams tp;
  tp.enabled = true;
  telemetry::Telemetry tel(tp);
  const std::string dump =
      RunDriftTrace(ShortTrace(&tel, false)).telemetry_dump;
  ASSERT_FALSE(dump.empty());
  EXPECT_EQ(dump.find("predictor"), std::string::npos);
  EXPECT_EQ(dump.find("ignorance"), std::string::npos);
}

}  // namespace
}  // namespace ecldb::ecl
