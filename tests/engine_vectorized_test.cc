#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/operators.h"
#include "engine/simd.h"
#include "engine/table.h"

namespace ecldb::engine {
namespace {

/// Randomized equivalence tests: the vectorized pipeline must produce the
/// same result as the row-at-a-time reference path — identical group-key
/// text, bit-identical sums (EXPECT_EQ on doubles, not NEAR: per-group
/// accumulation order is preserved), and identical row counts — across
/// random tables, predicate mixes, and batch sizes.

constexpr const char* kRegions[] = {"ASIA", "EUROPE", "AMERICA", "AFRICA",
                                    "MIDDLE EAST"};
constexpr const char* kNames[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                                  "zeta", "eta", "theta"};

struct RandomSchema {
  Table dim;
  Table fact;

  RandomSchema() :
      dim("dim", Schema({{"key", ColumnType::kInt64},
                         {"name", ColumnType::kString},
                         {"region", ColumnType::kString}})),
      fact("fact", Schema({{"fk", ColumnType::kInt64},
                           {"qty", ColumnType::kInt64},
                           {"price", ColumnType::kInt64},
                           {"cost", ColumnType::kInt64},
                           {"tag", ColumnType::kString}})) {}
};

void FillRandom(RandomSchema* s, Rng& rng, int64_t dim_rows, int64_t fact_rows,
                double delete_fraction) {
  for (int64_t k = 1; k <= dim_rows; ++k) {
    s->dim.AppendRow({k, std::string(kNames[rng.NextBounded(8)]),
                      std::string(kRegions[rng.NextBounded(5)])});
  }
  for (int64_t i = 0; i < fact_rows; ++i) {
    s->fact.AppendRow({rng.NextInRange(1, dim_rows),
                       rng.NextInRange(-50, 50),
                       rng.NextInRange(0, 10000),
                       rng.NextInRange(0, 500),
                       std::string(kNames[rng.NextBounded(8)])});
  }
  for (int64_t i = 0; i < fact_rows; ++i) {
    if (rng.NextBool(delete_fraction)) {
      s->fact.DeleteRow(static_cast<size_t>(i));
    }
  }
}

std::vector<Predicate> RandomPredicates(const RandomSchema& s, Rng& rng) {
  std::vector<Predicate> preds;
  const int n = static_cast<int>(rng.NextBounded(4));  // 0..3 conjuncts
  for (int i = 0; i < n; ++i) {
    switch (rng.NextBounded(5)) {
      case 0: {
        const int64_t lo = rng.NextInRange(-50, 50);
        preds.push_back(Predicate::IntRange(ColumnRef::Fact(1), lo,
                                            lo + rng.NextInRange(0, 60)));
        break;
      }
      case 1: {
        const int64_t lo = rng.NextInRange(0, 10000);
        preds.push_back(Predicate::IntRange(ColumnRef::Dim(0, &s.dim, 0), 1,
                                            rng.NextInRange(1, 40)));
        preds.push_back(Predicate::IntRange(ColumnRef::Fact(2), lo,
                                            lo + rng.NextInRange(0, 5000)));
        break;
      }
      case 2:
        preds.push_back(Predicate::StringEq(ColumnRef::Dim(0, &s.dim, 2),
                                            kRegions[rng.NextBounded(5)]));
        break;
      case 3:
        preds.push_back(Predicate::StringIn(
            ColumnRef::Fact(4),
            {kNames[rng.NextBounded(8)], kNames[rng.NextBounded(8)],
             "not-in-dictionary"}));
        break;
      case 4: {
        std::string lo(1, static_cast<char>('a' + rng.NextBounded(13)));
        std::string hi(1, static_cast<char>(lo[0] + rng.NextBounded(13)));
        hi.push_back('z');
        preds.push_back(
            Predicate::StringRange(ColumnRef::Dim(0, &s.dim, 1), lo, hi));
        break;
      }
    }
  }
  return preds;
}

std::vector<ColumnRef> RandomGroupBy(const RandomSchema& s, Rng& rng) {
  std::vector<ColumnRef> group_by;
  const int n = static_cast<int>(rng.NextBounded(3));  // 0..2 group columns
  for (int i = 0; i < n; ++i) {
    switch (rng.NextBounded(4)) {
      case 0:
        group_by.push_back(ColumnRef::Dim(0, &s.dim, 2));  // region
        break;
      case 1:
        group_by.push_back(ColumnRef::Dim(0, &s.dim, 1));  // name
        break;
      case 2:
        group_by.push_back(ColumnRef::Fact(4));  // tag
        break;
      case 3:
        group_by.push_back(ColumnRef::Fact(1));  // qty (int, negative too)
        break;
    }
  }
  return group_by;
}

ValueExpr RandomValue(Rng& rng) {
  switch (rng.NextBounded(3)) {
    case 0:
      return ValueExpr::Column(ColumnRef::Fact(2), 0.25);
    case 1:
      return ValueExpr::Product(ColumnRef::Fact(1), ColumnRef::Fact(2), 0.01);
    default:
      return ValueExpr::Difference(ColumnRef::Fact(2), ColumnRef::Fact(3));
  }
}

/// Runs both pipelines over `s` and asserts identical results.
void ExpectPathsIdentical(const RandomSchema& s,
                          const std::vector<Predicate>& preds,
                          const std::vector<ColumnRef>& group_by,
                          const ValueExpr& value, size_t batch_size) {
  FilterOperator filter(&s.fact, preds);
  HashAggregator vectorized(group_by, value);
  HashAggregator scalar(group_by, value);

  TableScan scan_v(&s.fact, batch_size);
  std::vector<uint32_t> batch;
  int64_t scanned_v = 0;
  while (scan_v.Next(&batch)) {
    scanned_v += static_cast<int64_t>(batch.size());
    filter.Apply(&batch);
    vectorized.Consume(s.fact, batch);
  }
  TableScan scan_s(&s.fact, batch_size);
  int64_t scanned_s = 0;
  while (scan_s.Next(&batch)) {
    scanned_s += static_cast<int64_t>(batch.size());
    filter.ApplyScalar(&batch);
    scalar.ConsumeScalar(s.fact, batch);
  }

  EXPECT_EQ(scanned_v, scanned_s);
  EXPECT_EQ(vectorized.rows_consumed(), scalar.rows_consumed());
  // Bit-identical: same keys, same order, EXPECT_EQ on every sum.
  const auto& gv = vectorized.groups();
  const auto& gs = scalar.groups();
  ASSERT_EQ(gv.size(), gs.size());
  auto it_v = gv.begin();
  for (auto it_s = gs.begin(); it_s != gs.end(); ++it_s, ++it_v) {
    EXPECT_EQ(it_v->first, it_s->first);
    EXPECT_EQ(it_v->second, it_s->second) << "group " << it_s->first;
  }
  EXPECT_EQ(vectorized.TotalSum(), scalar.TotalSum());
}

TEST(EngineVectorizedTest, RandomTablesMatchScalarReference) {
  Rng rng(20260806);
  for (int round = 0; round < 40; ++round) {
    RandomSchema s;
    FillRandom(&s, rng, rng.NextInRange(1, 40), rng.NextInRange(0, 600),
               rng.NextDouble() * 0.3);
    const auto preds = RandomPredicates(s, rng);
    const auto group_by = RandomGroupBy(s, rng);
    const auto value = RandomValue(rng);
    // Batch size 1 exercises the degenerate selection vector.
    const size_t batch_sizes[] = {1, 7, 64, 1024};
    for (size_t bs : batch_sizes) {
      SCOPED_TRACE("round " + std::to_string(round) + " batch " +
                   std::to_string(bs));
      ExpectPathsIdentical(s, preds, group_by, value, bs);
    }
  }
}

TEST(EngineVectorizedTest, SimdAndForcedScalarKernelsAgree) {
  // Third path: the vectorized pipeline with the SIMD kernels forced OFF
  // must be bit-identical to the default dispatch (which uses AVX2 when
  // compiled in and the CPU has it). Catches any SIMD kernel whose result
  // deviates from the scalar kernel at the pipeline level.
  Rng rng(20260807);
  for (int round = 0; round < 15; ++round) {
    RandomSchema s;
    FillRandom(&s, rng, rng.NextInRange(1, 40), rng.NextInRange(0, 600),
               rng.NextDouble() * 0.3);
    const auto preds = RandomPredicates(s, rng);
    const auto group_by = RandomGroupBy(s, rng);
    const auto value = RandomValue(rng);
    const size_t batch_sizes[] = {1, 9, 1024};
    for (size_t bs : batch_sizes) {
      SCOPED_TRACE("round " + std::to_string(round) + " batch " +
                   std::to_string(bs));
      ExpectPathsIdentical(s, preds, group_by, value, bs);
      simd::SetLevelOverride(simd::Level::kScalar);
      ExpectPathsIdentical(s, preds, group_by, value, bs);
      simd::SetLevelOverride(std::nullopt);
    }
  }
}

TEST(EngineVectorizedTest, EmptyShard) {
  RandomSchema s;
  Rng rng(1);
  FillRandom(&s, rng, 3, 0, 0.0);
  ExpectPathsIdentical(s, {Predicate::IntRange(ColumnRef::Fact(1), 0, 10)},
                       {ColumnRef::Dim(0, &s.dim, 2)},
                       ValueExpr::Column(ColumnRef::Fact(2)), 16);
}

TEST(EngineVectorizedTest, AllRowsTombstoned) {
  RandomSchema s;
  Rng rng(2);
  FillRandom(&s, rng, 5, 50, 0.0);
  for (size_t i = 0; i < 50; ++i) s.fact.DeleteRow(i);
  ExpectPathsIdentical(s, {}, {ColumnRef::Fact(4)},
                       ValueExpr::Product(ColumnRef::Fact(1), ColumnRef::Fact(2)),
                       8);
}

TEST(EngineVectorizedTest, EmptyGroupByAggregatesToOneGroup) {
  RandomSchema s;
  Rng rng(3);
  FillRandom(&s, rng, 5, 100, 0.1);
  ExpectPathsIdentical(s, {}, {},
                       ValueExpr::Difference(ColumnRef::Fact(2),
                                             ColumnRef::Fact(3)),
                       32);
}

TEST(EngineVectorizedTest, DictionaryGrowthAfterBindFallsBackCorrectly) {
  RandomSchema s;
  Rng rng(4);
  FillRandom(&s, rng, 4, 60, 0.0);
  // Bind filter + consume some batches, then grow the tag dictionary and
  // append rows using the new code: the filter takes the string-compare
  // fallback for unknown codes and the aggregator's packed layout rebinds
  // or falls back, still matching the reference result.
  std::vector<Predicate> preds = {
      Predicate::StringIn(ColumnRef::Fact(4), {"alpha", "freshly-added"})};
  FilterOperator filter(&s.fact, preds);
  HashAggregator vectorized({ColumnRef::Fact(4)},
                            ValueExpr::Column(ColumnRef::Fact(2)));
  HashAggregator scalar({ColumnRef::Fact(4)},
                        ValueExpr::Column(ColumnRef::Fact(2)));

  auto run_over = [&](HashAggregator* agg, bool vectorized_path) {
    TableScan scan(&s.fact, 16);
    std::vector<uint32_t> batch;
    while (scan.Next(&batch)) {
      if (vectorized_path) {
        filter.Apply(&batch);
        agg->Consume(s.fact, batch);
      } else {
        filter.ApplyScalar(&batch);
        agg->ConsumeScalar(s.fact, batch);
      }
    }
  };
  run_over(&vectorized, true);
  run_over(&scalar, false);

  // New dictionary entry, appended after the filter and one full pass
  // bound their code tables.
  s.fact.AppendRow({int64_t{1}, int64_t{5}, int64_t{123}, int64_t{7},
                    std::string("freshly-added")});
  run_over(&vectorized, true);  // consumes old rows again + the new one
  run_over(&scalar, false);

  const auto& gv = vectorized.groups();
  const auto& gs = scalar.groups();
  ASSERT_EQ(gv.size(), gs.size());
  EXPECT_EQ(gv.count("freshly-added"), 1u);
  auto it_v = gv.begin();
  for (auto it_s = gs.begin(); it_s != gs.end(); ++it_s, ++it_v) {
    EXPECT_EQ(it_v->first, it_s->first);
    EXPECT_EQ(it_v->second, it_s->second) << "group " << it_s->first;
  }
}

TEST(EngineVectorizedTest, IntValueOutsideLayoutBoundsFallsBack) {
  RandomSchema s;
  Rng rng(5);
  FillRandom(&s, rng, 4, 60, 0.0);
  HashAggregator vectorized({ColumnRef::Fact(1)},
                            ValueExpr::Column(ColumnRef::Fact(2)));
  HashAggregator scalar({ColumnRef::Fact(1)},
                        ValueExpr::Column(ColumnRef::Fact(2)));
  FilterOperator filter(&s.fact, {});

  auto consume_all = [&](HashAggregator* agg, bool vectorized_path) {
    TableScan scan(&s.fact, 16);
    std::vector<uint32_t> batch;
    while (scan.Next(&batch)) {
      if (vectorized_path) {
        agg->Consume(s.fact, batch);
      } else {
        agg->ConsumeScalar(s.fact, batch);
      }
    }
  };
  consume_all(&vectorized, true);  // binds the packed layout to qty's range
  consume_all(&scalar, false);

  // Widen qty far past the bound seen at layout time; the stale packed
  // coding must be detected and the aggregator switch to the scalar path.
  s.fact.column(1)->SetInt(0, int64_t{1} << 40);
  consume_all(&vectorized, true);
  consume_all(&scalar, false);

  const auto& gv = vectorized.groups();
  const auto& gs = scalar.groups();
  ASSERT_EQ(gv.size(), gs.size());
  EXPECT_EQ(gv.count(std::to_string(int64_t{1} << 40)), 1u);
  auto it_v = gv.begin();
  for (auto it_s = gs.begin(); it_s != gs.end(); ++it_s, ++it_v) {
    EXPECT_EQ(it_v->first, it_s->first);
    EXPECT_EQ(it_v->second, it_s->second) << "group " << it_s->first;
  }
}

TEST(EngineVectorizedTest, MergePreservesVectorizedResults) {
  // Two shards aggregated separately then merged must equal one scalar
  // aggregation over the concatenation (the SSB cross-partition path).
  Rng rng(6);
  RandomSchema a;
  RandomSchema b;
  FillRandom(&a, rng, 6, 200, 0.1);
  Rng rng_b(6);  // same dim content so group keys align
  FillRandom(&b, rng_b, 6, 150, 0.2);

  const ValueExpr value = ValueExpr::Column(ColumnRef::Fact(2), 0.5);
  HashAggregator agg_a({ColumnRef::Fact(4)}, value);
  HashAggregator agg_b({ColumnRef::Fact(4)}, value);
  FilterOperator filt_a(&a.fact, {});
  FilterOperator filt_b(&b.fact, {});
  RunAggregationPipeline(&a.fact, filt_a, &agg_a);
  RunAggregationPipeline(&b.fact, filt_b, &agg_b);
  agg_a.Merge(agg_b);

  HashAggregator ref_a({ColumnRef::Fact(4)}, value);
  HashAggregator ref_b({ColumnRef::Fact(4)}, value);
  RunAggregationPipelineScalar(&a.fact, filt_a, &ref_a);
  RunAggregationPipelineScalar(&b.fact, filt_b, &ref_b);
  ref_a.Merge(ref_b);

  EXPECT_EQ(agg_a.rows_consumed(), ref_a.rows_consumed());
  const auto& gv = agg_a.groups();
  const auto& gs = ref_a.groups();
  ASSERT_EQ(gv.size(), gs.size());
  auto it_v = gv.begin();
  for (auto it_s = gs.begin(); it_s != gs.end(); ++it_s, ++it_v) {
    EXPECT_EQ(it_v->first, it_s->first);
    EXPECT_EQ(it_v->second, it_s->second) << "group " << it_s->first;
  }
}

}  // namespace
}  // namespace ecldb::engine
