#include <gtest/gtest.h>

#include <cmath>

#include <fstream>

#include "common/csv_writer.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "common/types.h"

namespace ecldb {
namespace {

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Micros(1), 1000);
  EXPECT_EQ(Millis(1), 1'000'000);
  EXPECT_EQ(Seconds(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(5)), 5.0);
  EXPECT_EQ(FromSeconds(1.5), Millis(1500));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 28);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  StreamingStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  StreamingStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextExponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, BoolProbability) {
  Rng rng(15);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator zipf(100, 0.0, 3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(ZipfTest, SkewedFavorsSmallKeys) {
  ZipfGenerator zipf(1000, 0.9, 3);
  int64_t low = 0, total = 100000;
  for (int i = 0; i < total; ++i) {
    const uint64_t v = zipf.Next();
    EXPECT_LT(v, 1000u);
    if (v < 10) ++low;
  }
  // Under theta=0.9 the 1% hottest keys draw a large share.
  EXPECT_GT(low, total / 5);
}

TEST(StreamingStatsTest, Moments) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStatsTest, ResetClears) {
  StreamingStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(PercentileTrackerTest, Percentiles) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.Add(i);
  EXPECT_NEAR(t.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(t.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(t.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(t.Percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(t.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(t.Max(), 100.0);
  EXPECT_DOUBLE_EQ(t.FractionAbove(90.0), 0.10);
}

TEST(PercentileTrackerTest, EmptyIsZero) {
  PercentileTracker t;
  EXPECT_DOUBLE_EQ(t.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.FractionAbove(0.0), 0.0);
}

TEST(SlidingWindowTest, EvictsOldSamples) {
  SlidingWindow w(Seconds(10));
  w.Add(Seconds(0), 1.0);
  w.Add(Seconds(5), 2.0);
  w.Add(Seconds(20), 3.0);  // evicts everything older than t=10
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.Latest(), 3.0);
}

TEST(SlidingWindowTest, SlopeEstimatesTrend) {
  SlidingWindow w(Seconds(100));
  // value = 2 * t + 1
  for (int t = 0; t <= 10; ++t) w.Add(Seconds(t), 2.0 * t + 1.0);
  EXPECT_NEAR(w.SlopePerSecond(), 2.0, 1e-9);
}

TEST(SlidingWindowTest, FlatSeriesZeroSlope) {
  SlidingWindow w(Seconds(100));
  for (int t = 0; t < 5; ++t) w.Add(Seconds(t), 7.0);
  EXPECT_NEAR(w.SlopePerSecond(), 0.0, 1e-9);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-3.0);   // clamps to first bucket
  h.Add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(9), 2);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "23456"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(FmtInt(1234567), "1,234,567");
  EXPECT_EQ(FmtInt(-1000), "-1,000");
  EXPECT_EQ(FmtInt(12), "12");
}


TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = "/tmp/ecldb_csv_test/out.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.AddRow({"x", "hello, \"world\""});
    csv.AddNumericRow({1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,\"hello, \"\"world\"\"\"");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1.5,2");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(CsvWriterTest, CreatesNestedDirectories) {
  const std::string path = "/tmp/ecldb_csv_test/nested/deeper/out.csv";
  CsvWriter csv(path, {"h"});
  EXPECT_TRUE(csv.ok());
}

}  // namespace
}  // namespace ecldb
