#include <gtest/gtest.h>

#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::hwsim {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  MachineTest() : machine_(&sim_, MachineParams::HaswellEp()) {}

  sim::Simulator sim_;
  Machine machine_;
};

TEST_F(MachineTest, StartsIdle) {
  EXPECT_FALSE(machine_.requested_config(0).AnyActive());
  EXPECT_FALSE(machine_.requested_config(1).AnyActive());
}

TEST_F(MachineTest, RaplAccumulatesIdlePower) {
  sim_.RunFor(Seconds(10));
  const double e = machine_.TotalEnergyJoules();
  // ~38 W static power for 10 s.
  EXPECT_NEAR(e, 380.0, 20.0);
}

TEST_F(MachineTest, PublishedRaplTracksExactEnergy) {
  machine_.ApplyMachineConfig(
      MachineConfig::AllOn(machine_.topology(), 2.0, 2.0));
  sim_.RunFor(Seconds(2));
  const double exact =
      machine_.ExactEnergyJoules(0, RaplDomain::kPackage);
  const double published =
      static_cast<double>(machine_.ReadRaplUj(0, RaplDomain::kPackage)) * 1e-6;
  EXPECT_NEAR(published, exact, 0.05 * exact + 0.01);
}

TEST_F(MachineTest, InstructionsAccumulateUnderLoad) {
  const Topology& topo = machine_.topology();
  machine_.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 1, 2.0, 1.2));
  machine_.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim_.RunFor(Seconds(1));
  const uint64_t instr = machine_.ReadInstructions(0);
  // 1 instruction/op at 1 op/cycle, 2.0 GHz, minus the config-write stall.
  EXPECT_NEAR(static_cast<double>(instr), 2.0e9, 0.02e9);
  EXPECT_EQ(machine_.ReadSocketInstructions(1), 0u);
}

TEST_F(MachineTest, OpsCreditMatchesRateTimesTime) {
  const Topology& topo = machine_.topology();
  machine_.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 1, 1.2, 1.2));
  machine_.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim_.RunFor(Millis(100));
  const double credit = machine_.TakeCompletedOps(0);
  EXPECT_NEAR(credit, 1.2e9 * 0.1, 0.03e9);
  // Credit drains on take.
  EXPECT_DOUBLE_EQ(machine_.TakeCompletedOps(0), 0.0);
}

TEST_F(MachineTest, InactiveThreadEarnsNoCredit) {
  machine_.SetThreadLoad(5, &workload::ComputeBound(), 1.0);
  sim_.RunFor(Millis(100));  // thread 5 not activated by any config
  EXPECT_DOUBLE_EQ(machine_.TakeCompletedOps(5), 0.0);
}

TEST_F(MachineTest, ConfigWritesCounted) {
  const int64_t before = machine_.config_writes();
  machine_.ApplySocketConfig(0, SocketConfig::Idle(machine_.topology()));
  EXPECT_EQ(machine_.config_writes(), before + 1);
}

TEST_F(MachineTest, FrequenciesSnapOnApply) {
  SocketConfig cfg = SocketConfig::AllOn(machine_.topology(), 1.93, 2.87);
  machine_.ApplySocketConfig(0, cfg);
  EXPECT_DOUBLE_EQ(machine_.requested_config(0).core_freq_ghz[0], 1.9);
  EXPECT_DOUBLE_EQ(machine_.requested_config(0).uncore_freq_ghz, 2.9);
}

TEST_F(MachineTest, UncoreHaltOnlyWhenAllSocketsIdle) {
  const Topology& topo = machine_.topology();
  // Socket 1 active at min uncore; socket 0 idle: socket 0 still pays
  // uncore power (Fig. 5 inter-socket dependency).
  machine_.ApplySocketConfig(1, SocketConfig::FirstThreads(topo, 1, 1.2, 1.2));
  sim_.RunFor(Millis(100));
  const double socket0_with_peer_active = machine_.InstantPkgPowerW(0);
  machine_.ApplySocketConfig(1, SocketConfig::Idle(topo));
  sim_.RunFor(Millis(100));
  const double socket0_all_idle = machine_.InstantPkgPowerW(0);
  EXPECT_GT(socket0_with_peer_active, socket0_all_idle + 3.0);
}

TEST_F(MachineTest, PsuAboveRapl) {
  sim_.RunFor(Millis(10));
  EXPECT_GT(machine_.InstantPsuPowerW(), machine_.InstantRaplPowerW());
}

TEST_F(MachineTest, EetDelaysTurboUnderBalancedEpb) {
  const Topology& topo = machine_.topology();
  machine_.SetEpb(EpbSetting::kBalanced);
  machine_.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 2, 3.1, 1.2));
  machine_.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim_.RunFor(Millis(500));
  // Turbo not yet granted: effective frequency is the nominal maximum.
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].core_freq_ghz[0], 2.6);
  sim_.RunFor(Millis(600));  // past the 1 s EET delay
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].core_freq_ghz[0], 3.1);
}

TEST_F(MachineTest, PerformanceEpbGrantsTurboImmediately) {
  const Topology& topo = machine_.topology();
  machine_.SetEpb(EpbSetting::kPerformance);
  machine_.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 2, 3.1, 1.2));
  sim_.RunFor(Millis(10));
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].core_freq_ghz[0], 3.1);
}

TEST_F(MachineTest, AutoUfsPicksMaxUncoreUnderLoad) {
  const Topology& topo = machine_.topology();
  machine_.SetUncoreMode(0, UncoreMode::kAuto);
  machine_.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 2, 2.0, 1.2));
  machine_.SetThreadLoad(0, &workload::ComputeBound(), 1.0);
  sim_.RunFor(Millis(10));
  // Fig. 8: automatic UFS greedily selects the highest uncore frequency.
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].uncore_freq_ghz, 3.0);
  machine_.SetThreadLoad(0, nullptr, 0.0);
  sim_.RunFor(Millis(10));
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].uncore_freq_ghz, 1.2);
}

TEST_F(MachineTest, ShallowIdleBeforeDeepCState) {
  const Topology& topo = machine_.topology();
  // Run briefly, then idle: the first c6_promotion of idleness draws the
  // shallow-idle extra power, after which the socket is promoted.
  machine_.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 2, 2.0, 1.2));
  sim_.RunFor(Millis(10));
  machine_.ApplySocketConfig(0, SocketConfig::Idle(topo));
  sim_.RunFor(Millis(1));  // within the promotion window
  const double shallow = machine_.InstantPkgPowerW(0);
  sim_.RunFor(Millis(10));  // promoted to the deep state
  const double deep = machine_.InstantPkgPowerW(0);
  EXPECT_NEAR(shallow - deep,
              machine_.params().power.shallow_idle_extra_w, 0.5);
}

TEST_F(MachineTest, FrequentIdleTogglingPaysShallowPower) {
  // RTI at an excessive switching frequency never reaches the deep state.
  const Topology& topo = machine_.topology();
  auto run_cycles = [&](SimDuration period) {
    sim::Simulator sim;
    Machine machine(&sim, MachineParams::HaswellEp());
    const double e0 = machine.TotalEnergyJoules();
    for (int i = 0; i < 100; ++i) {
      machine.ApplySocketConfig(0, SocketConfig::FirstThreads(topo, 2, 1.2, 1.2));
      sim.RunFor(period / 2);
      machine.ApplySocketConfig(0, SocketConfig::Idle(topo));
      sim.RunFor(period / 2);
    }
    return (machine.TotalEnergyJoules() - e0) / (100.0 * ToSeconds(period));
  };
  const double avg_fast = run_cycles(Millis(4));   // idle stints of 2 ms
  const double avg_slow = run_cycles(Millis(40));  // idle stints of 20 ms
  EXPECT_GT(avg_fast, avg_slow + 1.0);
}

TEST_F(MachineTest, AllCoreTurboThermallyLimited) {
  const Topology& topo = machine_.topology();
  machine_.SetEpb(EpbSetting::kPerformance);
  machine_.ApplySocketConfig(0, SocketConfig::AllOn(topo, 3.1, 3.0));
  for (int t = 0; t < topo.threads_per_socket(); ++t) {
    machine_.SetThreadLoad(t, &workload::Firestarter(), 1.0);
  }
  sim_.RunFor(Millis(200));
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].core_freq_ghz[0], 3.1);
  sim_.RunFor(Millis(1500));  // thermal budget (~1 s) exhausted
  EXPECT_DOUBLE_EQ(machine_.effective_config().sockets[0].core_freq_ghz[0], 2.6);
}

}  // namespace
}  // namespace ecldb::hwsim
