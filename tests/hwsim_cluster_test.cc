#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ecl/meta_calibration.h"
#include "hwsim/cluster.h"
#include "hwsim/machine.h"
#include "hwsim/network_model.h"
#include "sim/simulator.h"

namespace ecldb::hwsim {
namespace {

// ---------------------------------------------------------------------------
// NetworkModel
// ---------------------------------------------------------------------------

TEST(NetworkModelTest, TransferTimeIsWirePlusBaseLatency) {
  NetworkModelParams params;
  params.link_gbps = 10.0;
  params.base_latency_us = 50.0;
  NetworkModel net(2, params);
  // 1 Gbit at 10 Gbit/s = 100 ms wire time, plus 50 us latency.
  const double bytes = 1e9 / 8.0;
  const double expect_s = 0.1 + 50e-6;
  EXPECT_NEAR(ToSeconds(net.TransferTime(bytes)), expect_s, 1e-9);
}

TEST(NetworkModelTest, NicSerializesConcurrentTransfers) {
  NetworkModelParams params;
  params.link_gbps = 10.0;
  params.base_latency_us = 0.0;
  NetworkModel net(3, params);
  const double bytes = 1e9 / 8.0;  // 100 ms wire time each
  // Two transfers leaving node 0 at the same instant: the shared NIC
  // serializes them, so the second delivers a full wire time later.
  const SimTime first = net.ReserveTransfer(0, 1, bytes, 0);
  const SimTime second = net.ReserveTransfer(0, 2, bytes, 0);
  EXPECT_NEAR(ToSeconds(first), 0.1, 1e-9);
  EXPECT_NEAR(ToSeconds(second), 0.2, 1e-9);
  EXPECT_NEAR(ToSeconds(net.queueing_time()), 0.1, 1e-9);
  EXPECT_EQ(net.transfers(), 2);
  EXPECT_DOUBLE_EQ(net.bytes_sent(), 2 * bytes);
  // Node 1's NIC was busy receiving the first transfer: a send from node
  // 1 queues behind it even though node 1 originated nothing.
  const SimTime third = net.ReserveTransfer(1, 2, bytes, 0);
  EXPECT_GE(ToSeconds(third), 0.2);
}

TEST(NetworkModelTest, DisjointEndpointsDoNotQueue) {
  NetworkModelParams params;
  params.link_gbps = 10.0;
  params.base_latency_us = 0.0;
  NetworkModel net(4, params);
  const double bytes = 1e9 / 8.0;
  const SimTime a = net.ReserveTransfer(0, 1, bytes, 0);
  const SimTime b = net.ReserveTransfer(2, 3, bytes, 0);
  EXPECT_DOUBLE_EQ(ToSeconds(a), ToSeconds(b));
  EXPECT_EQ(net.queueing_time(), 0);
}

TEST(NetworkModelTest, DeterministicForSameReservationSequence) {
  auto run = [] {
    NetworkModel net(4, NetworkModelParams{});
    std::vector<SimTime> times;
    for (int i = 0; i < 32; ++i) {
      times.push_back(net.ReserveTransfer(i % 4, (i + 1) % 4,
                                          1024.0 * (1 + i % 7), Micros(i)));
    }
    return times;
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Cluster power-state machine + energy accounting
// ---------------------------------------------------------------------------

ClusterParams TwoNodeParams() {
  return ClusterParams::Homogeneous(2, ClusterNodeParams{});
}

TEST(ClusterTest, StartsAllOnWithHomogeneousNodes) {
  sim::Simulator sim;
  Cluster cluster(&sim, ClusterParams::Homogeneous(4, ClusterNodeParams{}));
  EXPECT_EQ(cluster.num_nodes(), 4);
  EXPECT_EQ(cluster.NodesOn(), 4);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_TRUE(cluster.IsOn(n));
    EXPECT_EQ(cluster.machine(n).topology().total_threads(),
              cluster.machine(0).topology().total_threads());
  }
}

TEST(ClusterTest, PowerDownForcesIdleAndBootRestores) {
  sim::Simulator sim;
  Cluster cluster(&sim, TwoNodeParams());
  cluster.machine(1).ApplyMachineConfig(
      MachineConfig::AllOn(cluster.machine(1).topology(), 2.6, 3.0));
  sim.RunFor(Seconds(1));

  cluster.PowerDown(1);
  EXPECT_EQ(cluster.state(1), Cluster::NodeState::kOff);
  EXPECT_EQ(cluster.NodesOn(), 1);
  EXPECT_EQ(cluster.power_downs(), 1);
  EXPECT_EQ(cluster.StateSince(1), sim.now());

  bool booted = false;
  cluster.PowerUp(1, [&] { booted = true; });
  EXPECT_EQ(cluster.state(1), Cluster::NodeState::kBooting);
  EXPECT_EQ(cluster.power_ups(), 1);
  // Not serving-capable until the boot latency elapses.
  const SimDuration boot = cluster.params().nodes[1].power.boot_latency;
  sim.RunFor(boot / 2);
  EXPECT_FALSE(booted);
  EXPECT_EQ(cluster.state(1), Cluster::NodeState::kBooting);
  sim.RunFor(boot);
  EXPECT_TRUE(booted);
  EXPECT_TRUE(cluster.IsOn(1));
  EXPECT_EQ(cluster.NodesOn(), 2);
}

TEST(ClusterTest, RepeatedCyclesFireEachBootCallbackExactlyOnce) {
  // Down-up-down-up in quick succession: each PowerUp's callback fires
  // exactly once, at its own boot completion — the boot generation guard
  // keeps an earlier cycle's pending completion from leaking into a
  // later one.
  sim::Simulator sim;
  Cluster cluster(&sim, TwoNodeParams());
  const SimDuration boot = cluster.params().nodes[1].power.boot_latency;
  int first_boots = 0;
  int second_boots = 0;
  cluster.PowerDown(1);
  cluster.PowerUp(1, [&] { ++first_boots; });
  sim.RunFor(boot + Seconds(1));
  EXPECT_EQ(first_boots, 1);
  cluster.PowerDown(1);
  cluster.PowerUp(1, [&] { ++second_boots; });
  sim.RunFor(2 * boot + Seconds(1));
  EXPECT_EQ(first_boots, 1);  // must not re-fire
  EXPECT_EQ(second_boots, 1);
  EXPECT_TRUE(cluster.IsOn(1));
  EXPECT_EQ(cluster.power_ups(), 2);
  EXPECT_EQ(cluster.power_downs(), 2);
}

TEST(ClusterTest, OffNodeDrawsStandbyNotMachinePower) {
  sim::Simulator sim;
  Cluster cluster(&sim, TwoNodeParams());
  sim.RunFor(Seconds(1));
  cluster.PowerDown(1);
  const double e0 = cluster.NodeEnergyJoules(1);
  sim.RunFor(Seconds(10));
  const double off_j = cluster.NodeEnergyJoules(1) - e0;
  const double off_w = cluster.params().nodes[1].power.off_power_w;
  // Exactly standby power: the machine model's idle RAPL draw (tens of
  // watts) is excluded while the node is off.
  EXPECT_NEAR(off_j, off_w * 10.0, 1e-6);
}

TEST(ClusterTest, BootPhaseChargesBootPower) {
  sim::Simulator sim;
  Cluster cluster(&sim, TwoNodeParams());
  cluster.PowerDown(1);
  sim.RunFor(Seconds(5));
  const double e0 = cluster.NodeEnergyJoules(1);
  cluster.PowerUp(1);
  const SimDuration boot = cluster.params().nodes[1].power.boot_latency;
  sim.RunFor(boot);
  const double boot_j = cluster.NodeEnergyJoules(1) - e0;
  const double boot_w = cluster.params().nodes[1].power.boot_power_w;
  EXPECT_NEAR(boot_j, boot_w * ToSeconds(boot), 1e-6);
}

TEST(ClusterTest, OnNodeAddsPlatformOverheadToMachineEnergy) {
  sim::Simulator sim;
  Cluster cluster(&sim, TwoNodeParams());
  const double e0 = cluster.NodeEnergyJoules(0);
  const double m0 = cluster.machine(0).TotalEnergyJoules();
  sim.RunFor(Seconds(10));
  const double node_j = cluster.NodeEnergyJoules(0) - e0;
  const double machine_j = cluster.machine(0).TotalEnergyJoules() - m0;
  const double overhead_w = cluster.params().nodes[0].power.platform_overhead_w;
  EXPECT_NEAR(node_j, machine_j + overhead_w * 10.0, 1e-6);
  EXPECT_GT(machine_j, 0.0);  // idle machines still draw RAPL power
}

TEST(ClusterTest, TotalIsSumOfNodesAndDeterministic) {
  sim::Simulator sim;
  Cluster cluster(&sim, ClusterParams::Homogeneous(3, ClusterNodeParams{}));
  sim.RunFor(Seconds(2));
  cluster.PowerDown(2);
  sim.RunFor(Seconds(3));
  cluster.PowerUp(2);
  sim.RunFor(Seconds(30));
  double sum = 0.0;
  for (NodeId n = 0; n < 3; ++n) sum += cluster.NodeEnergyJoules(n);
  EXPECT_NEAR(cluster.TotalEnergyJoules(), sum, 1e-9);

  // Bit-identical on a re-run with the same schedule.
  sim::Simulator sim2;
  Cluster cluster2(&sim2, ClusterParams::Homogeneous(3, ClusterNodeParams{}));
  sim2.RunFor(Seconds(2));
  cluster2.PowerDown(2);
  sim2.RunFor(Seconds(3));
  cluster2.PowerUp(2);
  sim2.RunFor(Seconds(30));
  EXPECT_DOUBLE_EQ(cluster.TotalEnergyJoules(), cluster2.TotalEnergyJoules());
}

// ---------------------------------------------------------------------------
// Wimpy node parameters
// ---------------------------------------------------------------------------

TEST(ClusterTest, WimpyNodeIsSmallerSlowerAndCheaper) {
  const MachineParams brawny = MachineParams::HaswellEp();
  const MachineParams wimpy = MachineParams::Wimpy();
  EXPECT_LT(wimpy.topology.total_threads(), brawny.topology.total_threads());
  const NodePowerParams wp = NodePowerParams::Wimpy();
  const NodePowerParams bp;
  EXPECT_LT(wp.platform_overhead_w, bp.platform_overhead_w);
  EXPECT_LT(wp.off_power_w, bp.off_power_w);
  EXPECT_LT(wp.boot_power_w, bp.boot_power_w);
  EXPECT_LT(wp.boot_latency, bp.boot_latency);

  // A wimpy cluster simulates and accounts like a brawny one.
  sim::Simulator sim;
  ClusterNodeParams node;
  node.machine = wimpy;
  node.power = wp;
  Cluster cluster(&sim, ClusterParams::Homogeneous(2, node));
  sim.RunFor(Seconds(5));
  EXPECT_GT(cluster.TotalEnergyJoules(), 0.0);
  cluster.PowerDown(1);
  const double e0 = cluster.NodeEnergyJoules(1);
  sim.RunFor(Seconds(10));
  EXPECT_NEAR(cluster.NodeEnergyJoules(1) - e0, wp.off_power_w * 10.0, 1e-6);
}

// ---------------------------------------------------------------------------
// Node transition-cost calibration (cluster-tier meta-calibration)
// ---------------------------------------------------------------------------

TEST(NodeTransitionCalibrationTest, MeasuresBootEconomics) {
  sim::Simulator sim;
  Cluster cluster(&sim, TwoNodeParams());
  const ecl::NodeTransitionCost cost =
      ecl::CalibrateNodeTransition(&sim, &cluster, 0);
  const NodePowerParams& p = cluster.params().nodes[0].power;
  EXPECT_EQ(cost.boot_latency, p.boot_latency);
  EXPECT_NEAR(cost.boot_energy_j, p.boot_power_w * ToSeconds(p.boot_latency),
              1e-9);
  EXPECT_DOUBLE_EQ(cost.off_power_w, p.off_power_w);
  // The idle node draws the platform overhead plus a positive machine
  // idle power; both exceed the off standby draw.
  EXPECT_GT(cost.on_idle_power_w, p.platform_overhead_w);
  EXPECT_GT(cost.on_idle_power_w, cost.off_power_w);
  // Boot power exceeds idle power, so the break-even is strictly
  // positive: short off periods burn more than they save. This is the
  // economics behind ClusterEclParams::min_on_time.
  EXPECT_GT(cost.break_even_off_s, 0.0);
  const double expect =
      (p.boot_power_w - cost.on_idle_power_w) * ToSeconds(p.boot_latency) /
      (cost.on_idle_power_w - p.off_power_w);
  EXPECT_NEAR(cost.break_even_off_s, expect, 1e-9);
}

TEST(NodeTransitionCalibrationTest, WimpyBreakEvenIsShorter) {
  // The microserver boots faster at lower power: its break-even off time
  // must come out well below the brawny node's, which is why a wimpy
  // rack can cycle nodes more aggressively.
  sim::Simulator sim;
  ClusterNodeParams wimpy;
  wimpy.machine = MachineParams::Wimpy();
  wimpy.power = NodePowerParams::Wimpy();
  ClusterParams params;
  params.nodes = {ClusterNodeParams{}, wimpy};
  Cluster cluster(&sim, params);
  const ecl::NodeTransitionCost brawny =
      ecl::CalibrateNodeTransition(&sim, &cluster, 0);
  const ecl::NodeTransitionCost micro =
      ecl::CalibrateNodeTransition(&sim, &cluster, 1);
  EXPECT_LT(micro.break_even_off_s, brawny.break_even_off_s);
}

}  // namespace
}  // namespace ecldb::hwsim
