#include <gtest/gtest.h>

#include "engine/database.h"
#include "engine/engine.h"
#include "engine/txn_scheduler.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::engine {
namespace {

// ---------------------------------------------------------------------------
// Transaction-oriented executor (paper Section 5.3 comparison).
// ---------------------------------------------------------------------------

class TxnSchedulerTest : public ::testing::Test {
 protected:
  TxnSchedulerTest()
      : machine_(&sim_, hwsim::MachineParams::HaswellEp()),
        db_(machine_.topology().total_threads()),
        txn_(&sim_, &machine_, &db_, TxnSchedulerParams{}) {}

  void Activate(int threads_per_socket) {
    const hwsim::Topology& topo = machine_.topology();
    for (SocketId s = 0; s < topo.num_sockets; ++s) {
      machine_.ApplySocketConfig(
          s, hwsim::SocketConfig::FirstThreads(topo, threads_per_socket, 2.6, 3.0));
    }
  }

  QuerySpec Txn(double ops) {
    QuerySpec spec;
    spec.profile = &workload::TatpIndexed();
    spec.work.push_back({0, ops});
    return spec;
  }

  sim::Simulator sim_;
  hwsim::Machine machine_;
  Database db_;
  TxnScheduler txn_;
};

TEST_F(TxnSchedulerTest, SingleTransactionCompletes) {
  Activate(4);
  txn_.Submit(Txn(1e4));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(txn_.completed(), 1);
  EXPECT_GT(txn_.latency().all().Mean(), 0.0);
}

TEST_F(TxnSchedulerTest, TransactionsRunSeriallyPerWorker) {
  // One active worker, two transactions: they complete one after another.
  machine_.ApplySocketConfig(
      0, hwsim::SocketConfig::FirstThreads(machine_.topology(), 1, 2.6, 3.0));
  txn_.Submit(Txn(2e6));
  txn_.Submit(Txn(2e6));
  sim_.RunFor(Millis(900));
  EXPECT_EQ(txn_.completed(), 2);
  // Second latency roughly double the first (serial execution).
  EXPECT_GT(txn_.latency().all().Max(),
            1.7 * txn_.latency().all().Percentile(0));
}

TEST_F(TxnSchedulerTest, SpinGrowsWithBusyWorkers) {
  Activate(2);
  for (int i = 0; i < 500; ++i) txn_.Submit(Txn(1e5));
  sim_.RunFor(Millis(50));
  const double spin_few = txn_.last_spin_fraction();
  Activate(24);
  sim_.RunFor(Millis(50));
  const double spin_many = txn_.last_spin_fraction();
  EXPECT_GT(spin_many, spin_few + 0.2);
}

TEST_F(TxnSchedulerTest, SpinningInflatesInstructionsPerUsefulOp) {
  auto run_and_measure = [&](int threads_per_socket) {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    Database db(machine.topology().total_threads());
    TxnScheduler txn(&sim, &machine, &db, TxnSchedulerParams{});
    for (SocketId s = 0; s < 2; ++s) {
      machine.ApplySocketConfig(s, hwsim::SocketConfig::FirstThreads(
                                       machine.topology(), threads_per_socket,
                                       2.6, 3.0));
    }
    for (int i = 0; i < 4000; ++i) {
      QuerySpec spec;
      spec.profile = &workload::TatpIndexed();
      spec.work.push_back({0, 1e4});
      txn.Submit(spec);
    }
    sim.RunFor(Seconds(1));
    const double instr =
        static_cast<double>(machine.ReadSocketInstructions(0) +
                            machine.ReadSocketInstructions(1));
    const double ops = static_cast<double>(txn.completed()) * 1e4;
    return ops > 0.0 ? instr / ops : 1e18;
  };
  const double ipo_few = run_and_measure(2);
  const double ipo_many = run_and_measure(24);
  // The paper's Section 5.3 point: contention makes instructions retired a
  // misleading performance signal.
  EXPECT_GT(ipo_many, 2.0 * ipo_few);
}

TEST_F(TxnSchedulerTest, UsefulThroughputPeaksBelowAllThreads) {
  auto throughput = [&](int threads_per_socket) {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    Database db(machine.topology().total_threads());
    TxnScheduler txn(&sim, &machine, &db, TxnSchedulerParams{});
    for (SocketId s = 0; s < 2; ++s) {
      machine.ApplySocketConfig(s, hwsim::SocketConfig::FirstThreads(
                                       machine.topology(), threads_per_socket,
                                       2.6, 3.0));
    }
    for (int i = 0; i < 20000; ++i) {
      QuerySpec spec;
      spec.profile = &workload::TatpIndexed();
      spec.work.push_back({0, 1e4});
      txn.Submit(spec);
    }
    sim.RunFor(Seconds(1));
    return txn.completed();
  };
  EXPECT_GT(throughput(8), throughput(24));  // lock convoy collapse
}

TEST_F(TxnSchedulerTest, UtilizationReflectsQueue) {
  Activate(4);
  (void)txn_.TakeUtilization(0);
  sim_.RunFor(Millis(100));
  EXPECT_DOUBLE_EQ(txn_.TakeUtilization(0), 0.0);  // idle
  for (int i = 0; i < 1000; ++i) txn_.Submit(Txn(1e6));
  sim_.RunFor(Millis(100));
  EXPECT_GT(txn_.TakeUtilization(0), 0.9);  // saturated
}

// ---------------------------------------------------------------------------
// Static worker-partition binding (the architecture the paper improves).
// ---------------------------------------------------------------------------

class StaticBindingTest : public ::testing::Test {
 protected:
  StaticBindingTest()
      : machine_(&sim_, hwsim::MachineParams::HaswellEp()),
        engine_(&sim_, &machine_, MakeParams()) {}

  static EngineParams MakeParams() {
    EngineParams p;
    p.scheduler.static_binding = true;
    return p;
  }

  QuerySpec Query(PartitionId p, double ops) {
    QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({p, ops});
    spec.origin_socket = engine_.placement().HomeOf(p);
    return spec;
  }

  sim::Simulator sim_;
  hwsim::Machine machine_;
  Engine engine_;
};

TEST_F(StaticBindingTest, OwnPartitionServed) {
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  for (PartitionId p = 0; p < 48; ++p) engine_.Submit(Query(p, 1e5));
  sim_.RunFor(Millis(200));
  EXPECT_EQ(engine_.latency().completed(), 48);
}

TEST_F(StaticBindingTest, SleepingThreadStrandsItsPartition) {
  // Only threads 0..3 of socket 0 active: partitions 4..23 are unreachable
  // under the static binding (the paper's "Static Mapping" issue).
  machine_.ApplySocketConfig(
      0, hwsim::SocketConfig::FirstThreads(machine_.topology(), 4, 2.6, 3.0));
  engine_.Submit(Query(2, 1e5));   // served: worker 2 is awake
  engine_.Submit(Query(10, 1e5));  // stranded: worker 10 sleeps
  sim_.RunFor(Millis(500));
  EXPECT_EQ(engine_.latency().completed(), 1);
  EXPECT_EQ(engine_.scheduler().inflight(), 1);
  // Waking the worker releases the stranded partition.
  machine_.ApplySocketConfig(
      0, hwsim::SocketConfig::FirstThreads(machine_.topology(), 12, 2.6, 3.0));
  sim_.RunFor(Millis(500));
  EXPECT_EQ(engine_.latency().completed(), 2);
}

TEST_F(StaticBindingTest, NoWorkStealingAcrossPartitions) {
  // All load on partition 0; under static binding only worker 0 serves it,
  // so elapsed time matches a single worker's rate even with 24 threads on.
  machine_.ApplyMachineConfig(
      hwsim::MachineConfig::AllOn(machine_.topology(), 2.6, 3.0));
  for (int i = 0; i < 10; ++i) engine_.Submit(Query(0, 2.6e8));
  // 10 x 2.6e8 ops at ~1.625e9 ops/s (2.6 GHz, HT-shared) -> ~1.6 s.
  sim_.RunFor(Seconds(1));
  EXPECT_LT(engine_.latency().completed(), 10);
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(engine_.latency().completed(), 10);
}

}  // namespace
}  // namespace ecldb::engine
