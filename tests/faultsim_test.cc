#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "engine/cluster_engine.h"
#include "faultsim/fault_injector.h"
#include "faultsim/fault_schedule.h"
#include "hwsim/cluster.h"
#include "hwsim/machine.h"
#include "hwsim/network_model.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"

namespace ecldb::faultsim {
namespace {

// ---------------------------------------------------------------------------
// FaultSchedule builder
// ---------------------------------------------------------------------------

TEST(FaultScheduleTest, BuildersRecordKindNodeAndPayload) {
  FaultSchedule s;
  s.Crash(Seconds(1), 0)
      .Restart(Seconds(2), 0)
      .NicDegrade(Seconds(3), 1, 0.25)
      .NicRestore(Seconds(4), 1)
      .NicPartition(Seconds(5), 1, Seconds(2))
      .BootFailures(Seconds(6), 0, 3)
      .RaplDropout(Seconds(7), 1)
      .RaplRestore(Seconds(8), 1);
  ASSERT_EQ(s.events.size(), 8u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(s.events[0].node, 0);
  EXPECT_EQ(s.events[0].at, Seconds(1));
  EXPECT_EQ(s.events[2].kind, FaultKind::kNicDegrade);
  EXPECT_DOUBLE_EQ(s.events[2].severity, 0.25);
  EXPECT_EQ(s.events[4].kind, FaultKind::kNicPartition);
  EXPECT_EQ(s.events[4].duration, Seconds(2));
  EXPECT_EQ(s.events[5].kind, FaultKind::kBootFailure);
  EXPECT_DOUBLE_EQ(s.events[5].severity, 3.0);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(FaultSchedule{}.empty());
}

TEST(FaultScheduleTest, KindNamesAreDistinct) {
  EXPECT_STRNE(FaultKindName(FaultKind::kNodeCrash),
               FaultKindName(FaultKind::kNodeRestart));
  EXPECT_STRNE(FaultKindName(FaultKind::kNicDegrade),
               FaultKindName(FaultKind::kRaplDropout));
}

// ---------------------------------------------------------------------------
// FaultInjector against the cluster engine
// ---------------------------------------------------------------------------

// Two default nodes, eight global partitions (0-3 homed on node 0, 4-7 on
// node 1), every machine running all-on — the cluster_engine_test rig.
class FaultInjectorTest : public ::testing::Test {
 protected:
  static engine::ClusterEngineParams DefaultEngineParams() {
    engine::ClusterEngineParams engine_params;
    engine_params.num_partitions = 8;
    return engine_params;
  }

  void Build(hwsim::ClusterParams cluster_params = hwsim::ClusterParams::
                 Homogeneous(2, hwsim::ClusterNodeParams{}),
             engine::ClusterEngineParams engine_params =
                 DefaultEngineParams()) {
    cluster_ = std::make_unique<hwsim::Cluster>(&sim_, cluster_params);
    engine_ = std::make_unique<engine::ClusterEngine>(&sim_, cluster_.get(),
                                                      engine_params);
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) AllOn(n);
  }

  void Arm(FaultSchedule schedule) {
    FaultInjectorParams params;
    params.schedule = std::move(schedule);
    injector_ = std::make_unique<FaultInjector>(&sim_, cluster_.get(),
                                                engine_.get(), params);
    injector_->Arm();
  }

  void AllOn(NodeId n) {
    hwsim::Machine& m = cluster_->machine(n);
    m.ApplyMachineConfig(hwsim::MachineConfig::AllOn(m.topology(), 2.6, 3.0));
  }

  engine::QuerySpec ComputeQuery(PartitionId p, double ops) {
    engine::QuerySpec spec;
    spec.profile = &workload::ComputeBound();
    spec.work.push_back({p, ops});
    return spec;
  }

  /// Installs a failure callback that records every typed failure.
  void TrackFailures() {
    engine_->SetQueryFailureCallback(
        [this](int8_t, int16_t, int8_t, SimTime, engine::FailReason reason) {
          failures_.push_back(reason);
        });
  }

  sim::Simulator sim_;
  std::unique_ptr<hwsim::Cluster> cluster_;
  std::unique_ptr<engine::ClusterEngine> engine_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<engine::FailReason> failures_;
};

TEST_F(FaultInjectorTest, CrashFailsInflightRehomesAndRecovers) {
  // A shard floor so the recovery copy is visibly charged even though the
  // test partitions hold no tuples.
  engine::ClusterEngineParams engine_params = DefaultEngineParams();
  engine_params.migration.min_shard_bytes = 8.0 * (1 << 20);
  Build(hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}),
        engine_params);
  TrackFailures();
  // A backlog of work on node 1's partitions is mid-execution when the
  // node dies.
  const int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) {
    engine_->Submit(1, ComputeQuery(4 + (i % 4), 1e6));
  }
  Arm(FaultSchedule{}.Crash(Millis(1), 1));
  sim_.RunFor(Seconds(2));

  EXPECT_EQ(injector_->injected(), 1);
  EXPECT_EQ(cluster_->crashes(), 1);
  EXPECT_TRUE(cluster_->IsFailed(1));
  EXPECT_FALSE(cluster_->IsAvailable(1));
  EXPECT_EQ(cluster_->state(1), hwsim::Cluster::NodeState::kOff);

  // Conservation: every submitted query resolved exactly once — what
  // completed before the crash completed, everything else failed typed.
  const int64_t completed = engine_->CompletedQueries();
  const int64_t failed = engine_->QueriesFailed();
  EXPECT_EQ(completed + failed, kQueries);
  EXPECT_GT(failed, 0);
  EXPECT_EQ(static_cast<int64_t>(failures_.size()), failed);
  for (engine::FailReason r : failures_) {
    EXPECT_EQ(r, engine::FailReason::kNodeCrash);
  }

  // Every lost partition re-homed onto the survivor, epoch-bumped, with a
  // recovery copy charged on the new home.
  for (PartitionId p = 4; p < 8; ++p) {
    EXPECT_EQ(engine_->placement().HomeOf(p), 0);
  }
  EXPECT_EQ(engine_->crash_recoveries(), 4);
  EXPECT_GT(engine_->recovery_bytes(), 0.0);
  EXPECT_GE(engine_->placement().epoch(), 4);
  EXPECT_EQ(engine_->placement().forced_rehomes(), 4);

  // The re-homed partitions serve from the survivor without touching the
  // network.
  const int64_t sends_before = engine_->remote_sends();
  engine_->Submit(0, ComputeQuery(5, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_->CompletedQueries(), completed + 1);
  EXPECT_EQ(engine_->remote_sends(), sends_before);
}

TEST_F(FaultInjectorTest, CrashOnOffNodeIsSkipped) {
  Build();
  cluster_->PowerDown(1);
  Arm(FaultSchedule{}.Crash(Millis(1), 1));
  sim_.RunFor(Millis(10));
  EXPECT_EQ(injector_->injected(), 0);
  EXPECT_EQ(injector_->skipped(), 1);
  EXPECT_EQ(cluster_->crashes(), 0);
  EXPECT_FALSE(cluster_->IsFailed(1));
}

TEST_F(FaultInjectorTest, CrashCancelsMigrationWithDeadEndpoint) {
  // A large shard copy is on the wire toward node 1 when node 1 dies.
  engine::ClusterEngineParams params = DefaultEngineParams();
  params.migration.min_shard_bytes = 256.0 * (1 << 20);  // ~215 ms on wire
  Build(hwsim::ClusterParams::Homogeneous(2, hwsim::ClusterNodeParams{}),
        params);
  EXPECT_TRUE(engine_->StartMigration(0, 1));
  Arm(FaultSchedule{}.Crash(Millis(100), 1));
  sim_.RunFor(Seconds(2));
  EXPECT_EQ(engine_->migrations_cancelled(), 1);
  EXPECT_EQ(engine_->migrations_completed(), 0);
  EXPECT_EQ(engine_->active_migrations(), 0);
  // Partition 0 was never unhomed; it still serves from node 0.
  EXPECT_EQ(engine_->placement().HomeOf(0), 0);
  engine_->Submit(0, ComputeQuery(0, 1e6));
  sim_.RunFor(Millis(100));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
}

TEST_F(FaultInjectorTest, RestartClearsFailureAndBootsWithHook) {
  hwsim::ClusterNodeParams node;
  node.power.boot_latency = Seconds(2);
  Build(hwsim::ClusterParams::Homogeneous(2, node));
  std::vector<NodeId> crashed, restored;
  injector_ = nullptr;  // rebuilt with hooks below
  FaultInjectorParams params;
  params.schedule =
      FaultSchedule{}.Crash(Millis(10), 1).Restart(Seconds(1), 1);
  injector_ = std::make_unique<FaultInjector>(&sim_, cluster_.get(),
                                              engine_.get(), params);
  injector_->SetNodeHooks([&](NodeId n) { crashed.push_back(n); },
                          [&](NodeId n) { restored.push_back(n); });
  injector_->Arm();

  sim_.RunFor(Millis(500));
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], 1);
  EXPECT_TRUE(cluster_->IsFailed(1));

  // The restart clears the failed flag and powers up; the restored hook
  // only fires when the node is serving-capable (a boot latency later).
  sim_.RunFor(Seconds(1));
  EXPECT_FALSE(cluster_->IsFailed(1));
  EXPECT_EQ(cluster_->state(1), hwsim::Cluster::NodeState::kBooting);
  EXPECT_TRUE(restored.empty());
  sim_.RunFor(Seconds(2));
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0], 1);
  EXPECT_TRUE(cluster_->IsAvailable(1));
}

TEST_F(FaultInjectorTest, RestartOfHealthyNodeIsSkipped) {
  Build();
  Arm(FaultSchedule{}.Restart(Millis(1), 0));
  sim_.RunFor(Millis(10));
  EXPECT_EQ(injector_->injected(), 0);
  EXPECT_EQ(injector_->skipped(), 1);
}

TEST_F(FaultInjectorTest, BootFailureBurnsEnergyAndLandsBackOff) {
  hwsim::ClusterNodeParams node;
  node.power.boot_latency = Seconds(2);
  Build(hwsim::ClusterParams::Homogeneous(2, node));
  Arm(FaultSchedule{}.BootFailures(Millis(1), 1, 1));
  cluster_->PowerDown(1);
  sim_.RunFor(Millis(10));

  const double e0 = cluster_->NodeEnergyJoules(1);
  bool booted = false;
  cluster_->PowerUp(1, [&] { booted = true; });
  sim_.RunFor(Seconds(3));
  // First attempt failed at boot completion: back off, energy spent, no
  // serving callback.
  EXPECT_FALSE(booted);
  EXPECT_EQ(cluster_->state(1), hwsim::Cluster::NodeState::kOff);
  EXPECT_EQ(cluster_->boot_failures(), 1);
  EXPECT_GT(cluster_->NodeEnergyJoules(1), e0);

  // The transient cleared: the second attempt succeeds.
  cluster_->PowerUp(1, [&] { booted = true; });
  sim_.RunFor(Seconds(3));
  EXPECT_TRUE(booted);
  EXPECT_TRUE(cluster_->IsOn(1));
}

TEST_F(FaultInjectorTest, NicDegradeScalesLinkAndRestoreClears) {
  Build();
  Arm(FaultSchedule{}.NicDegrade(Millis(1), 1, 0.5).NicRestore(Seconds(1), 1));
  sim_.RunFor(Millis(10));
  EXPECT_DOUBLE_EQ(cluster_->network().link_scale(1), 0.5);
  sim_.RunFor(Seconds(1));
  EXPECT_DOUBLE_EQ(cluster_->network().link_scale(1), 1.0);
}

TEST_F(FaultInjectorTest, NicPartitionDefersButNeverDrops) {
  Build();
  Arm(FaultSchedule{}.NicPartition(Millis(1), 1, Seconds(1)));
  sim_.RunFor(Millis(10));
  // A cross-node submission toward the partitioned node cannot start its
  // transfer until the partition heals; the frames are held, not dropped.
  engine_->Submit(0, ComputeQuery(4, 1e6));
  sim_.RunFor(Millis(500));
  EXPECT_EQ(engine_->CompletedQueries(), 0);
  EXPECT_GE(cluster_->network().deferred_transfers(), 1);
  sim_.RunFor(Seconds(1));
  EXPECT_EQ(engine_->CompletedQueries(), 1);
  EXPECT_EQ(engine_->QueriesFailed(), 0);
}

// ---------------------------------------------------------------------------
// RAPL sensor dropout
// ---------------------------------------------------------------------------

TEST_F(FaultInjectorTest, RaplDropoutFreezesPublishedReadsNotGroundTruth) {
  Build();
  sim_.RunFor(Millis(100));
  hwsim::Machine& m = cluster_->machine(0);
  Arm(FaultSchedule{}.RaplDropout(Millis(200), 0).RaplRestore(Millis(600), 0));
  sim_.RunFor(Millis(150));  // t=250ms: dropout active
  EXPECT_TRUE(m.rapl_dropout());
  const uint64_t frozen = m.ReadRaplUj(0, hwsim::RaplDomain::kPackage);
  const double exact0 = m.ExactEnergyJoules(0, hwsim::RaplDomain::kPackage);
  sim_.RunFor(Millis(200));  // t=450ms: still dropped
  EXPECT_EQ(m.ReadRaplUj(0, hwsim::RaplDomain::kPackage), frozen);
  EXPECT_GT(m.ExactEnergyJoules(0, hwsim::RaplDomain::kPackage), exact0);
  sim_.RunFor(Millis(300));  // t=750ms: restored
  EXPECT_FALSE(m.rapl_dropout());
  EXPECT_GT(m.ReadRaplUj(0, hwsim::RaplDomain::kPackage), frozen);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(FaultDeterminismTest, ScheduledRunIsByteIdenticalAcrossRepeats) {
  auto run = [] {
    sim::Simulator sim;
    hwsim::ClusterNodeParams node;
    node.power.boot_latency = Seconds(2);
    hwsim::Cluster cluster(&sim,
                           hwsim::ClusterParams::Homogeneous(2, node));
    engine::ClusterEngineParams params;
    params.num_partitions = 8;
    engine::ClusterEngine engine(&sim, &cluster, params);
    for (NodeId n = 0; n < 2; ++n) {
      hwsim::Machine& m = cluster.machine(n);
      m.ApplyMachineConfig(
          hwsim::MachineConfig::AllOn(m.topology(), 2.6, 3.0));
    }
    for (int i = 0; i < 30; ++i) {
      engine::QuerySpec spec;
      spec.profile = &workload::ComputeBound();
      spec.work.push_back({i % 8, 1e6});
      engine.Submit(i % 2, spec);
    }
    FaultInjectorParams fi;
    fi.schedule = FaultSchedule{}
                      .NicDegrade(Millis(1), 0, 0.5)
                      .Crash(Millis(5), 1)
                      .Restart(Seconds(1), 1)
                      .NicRestore(Seconds(2), 0);
    FaultInjector injector(&sim, &cluster, &engine, fi);
    injector.Arm();
    sim.RunFor(Seconds(5));
    return std::make_tuple(engine.CompletedQueries(), engine.QueriesFailed(),
                           engine.crash_recoveries(),
                           engine.recovery_bytes(),
                           engine.placement().epoch(),
                           cluster.TotalEnergyJoules(),
                           cluster.network().bytes_sent());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ecldb::faultsim
