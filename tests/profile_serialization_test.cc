#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "ecl/ecl.h"
#include "ecl/profile_predictor.h"
#include "profile/feature_vector.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"
#include "profile/config_generator.h"
#include "profile/serialization.h"

namespace ecldb::profile {
namespace {

EnergyProfile MakeProfile(const GeneratorParams& params = GeneratorParams{}) {
  ConfigGenerator gen(hwsim::Topology::HaswellEp2S(),
                      hwsim::FrequencyTable::HaswellEp());
  return EnergyProfile(gen.Generate(params));
}

TEST(ProfileSerializationTest, RoundTripPreservesMeasurements) {
  EnergyProfile original = MakeProfile();
  Rng rng(4);
  for (int i = 1; i < original.size(); i += 3) {
    original.Record(i, 10.0 + rng.NextDouble() * 100.0,
                    1e9 * (1.0 + rng.NextDouble()), Seconds(i));
  }
  const std::string text = SerializeProfile(original);

  EnergyProfile restored = MakeProfile();
  ASSERT_TRUE(DeserializeProfile(text, &restored));
  EXPECT_EQ(restored.measured_count(), original.measured_count());
  for (int i = 1; i < original.size(); ++i) {
    const Configuration& a = original.config(i);
    const Configuration& b = restored.config(i);
    EXPECT_EQ(a.measured(), b.measured());
    if (a.measured()) {
      EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
      EXPECT_DOUBLE_EQ(a.perf_score, b.perf_score);
      EXPECT_EQ(a.last_measured, b.last_measured);
    }
  }
  EXPECT_EQ(restored.MostEfficientIndex(), original.MostEfficientIndex());
  EXPECT_EQ(restored.Skyline(), original.Skyline());
}

TEST(ProfileSerializationTest, EmptyProfileRoundTrips) {
  EnergyProfile original = MakeProfile();
  EnergyProfile restored = MakeProfile();
  ASSERT_TRUE(DeserializeProfile(SerializeProfile(original), &restored));
  EXPECT_EQ(restored.measured_count(), 0);
}

TEST(ProfileSerializationTest, RejectsMismatchedGeneratorParams) {
  EnergyProfile original = MakeProfile();
  original.Record(1, 10.0, 1e9, Seconds(1));
  const std::string text = SerializeProfile(original);

  GeneratorParams other;
  other.n_core_freqs = 7;
  EnergyProfile different = MakeProfile(other);
  EXPECT_FALSE(DeserializeProfile(text, &different));
  EXPECT_EQ(different.measured_count(), 0);  // untouched
}

TEST(ProfileSerializationTest, RejectsCorruptInput) {
  EnergyProfile profile = MakeProfile();
  EXPECT_FALSE(DeserializeProfile("", &profile));
  EXPECT_FALSE(DeserializeProfile("garbage v1 145 123", &profile));
  EXPECT_FALSE(DeserializeProfile("ecldb-profile v2 145 123", &profile));

  // Valid header, out-of-range index.
  const std::string header = SerializeProfile(profile);
  EXPECT_FALSE(DeserializeProfile(header + "9999 10 1e9 5\n", &profile));
  // Negative power.
  EXPECT_FALSE(DeserializeProfile(header + "1 -3 1e9 5\n", &profile));
  // Trailing junk.
  EXPECT_FALSE(DeserializeProfile(header + "1 10 1e9 5 extra_token\n1 x\n",
                                  &profile));
  EXPECT_EQ(profile.measured_count(), 0);
}

TEST(ProfileSerializationTest, RoundTripPreservesStaleness) {
  // last_measured drives multiplexed adaptation: a warm-started profile
  // must look exactly as stale as the one that was saved.
  EnergyProfile original = MakeProfile();
  original.Record(1, 20.0, 1e9, Seconds(5));
  original.Record(2, 25.0, 2e9, Seconds(200));
  const std::string text = SerializeProfile(original);

  EnergyProfile restored = MakeProfile();
  ASSERT_TRUE(DeserializeProfile(text, &restored));
  EXPECT_EQ(restored.config(1).last_measured, Seconds(5));
  EXPECT_EQ(restored.config(2).last_measured, Seconds(200));
  // With a 120 s stale age at t = 210 s, config 1 is stale and config 2 is
  // fresh — identical to the original profile's view.
  const SimTime now = Seconds(210);
  const SimDuration age = Seconds(120);
  EXPECT_EQ(restored.StaleConfigs(now, age), original.StaleConfigs(now, age));
  const std::vector<int> stale = restored.StaleConfigs(now, age);
  EXPECT_NE(std::find(stale.begin(), stale.end(), 1), stale.end());
  EXPECT_EQ(std::find(stale.begin(), stale.end(), 2), stale.end());
}

TEST(LearnCacheSerializationTest, RoundTripPreservesObservations) {
  EnergyProfile profile = MakeProfile();
  const uint64_t fp = ProfileFingerprint(profile);
  ecl::ProfilePredictorParams params;
  params.enabled = true;
  ecl::ProfilePredictor original(profile.size(), params);
  Rng rng(9);
  for (int i = 1; i < profile.size(); i += 2) {
    for (int rep = 0; rep < 3; ++rep) {
      FeatureInputs in;
      in.instr_rate = 1e9 * (0.5 + rng.NextDouble());
      in.dram_bytes_rate = 1e9 * rng.NextDouble();
      in.active_threads = 12;
      in.core_freq_ghz = 2.0;
      in.rti_duty = 0.5 + 0.5 * rng.NextDouble();
      in.utilization = 0.3 + 0.7 * rng.NextDouble();
      original.Observe(i, ExtractFeatures(in), 20.0 + rng.NextDouble() * 80.0,
                       1e9 * (0.5 + rng.NextDouble()), Seconds(rep + 1));
    }
  }
  ASSERT_GT(original.size(), 0);
  const std::string text = ecl::SerializeLearnCache(original, fp);

  ecl::ProfilePredictor restored(profile.size(), params);
  ASSERT_TRUE(ecl::DeserializeLearnCache(text, fp, &restored));
  ASSERT_EQ(restored.size(), original.size());
  for (int i = 1; i < profile.size(); ++i) {
    const auto& a = original.entries(i);
    const auto& b = restored.entries(i);
    ASSERT_EQ(a.size(), b.size()) << "config " << i;
    for (size_t j = 0; j < a.size(); ++j) {
      for (int d = 0; d < kFeatureDims; ++d) {
        EXPECT_DOUBLE_EQ(a[j].features.v[d], b[j].features.v[d]);
      }
      EXPECT_DOUBLE_EQ(a[j].power_w, b[j].power_w);
      EXPECT_DOUBLE_EQ(a[j].perf_score, b[j].perf_score);
      EXPECT_EQ(a[j].at, b[j].at);
    }
  }
  // The restored cache predicts identically.
  FeatureInputs q;
  q.instr_rate = 1.3e9;
  q.dram_bytes_rate = 0.4e9;
  q.active_threads = 12;
  q.core_freq_ghz = 2.0;
  q.utilization = 0.8;
  const FeatureVector query = ExtractFeatures(q);
  for (int i = 1; i < profile.size(); i += 7) {
    const auto pa = original.Predict(i, query);
    const auto pb = restored.Predict(i, query);
    EXPECT_DOUBLE_EQ(pa.power_w, pb.power_w);
    EXPECT_DOUBLE_EQ(pa.perf_score, pb.perf_score);
    EXPECT_DOUBLE_EQ(pa.ignorance, pb.ignorance);
  }
}

TEST(LearnCacheSerializationTest, RejectsCorruptInput) {
  EnergyProfile profile = MakeProfile();
  const uint64_t fp = ProfileFingerprint(profile);
  ecl::ProfilePredictorParams params;
  params.enabled = true;
  ecl::ProfilePredictor pred(profile.size(), params);
  FeatureInputs in;
  in.instr_rate = 1e9;
  in.dram_bytes_rate = 1e8;
  in.active_threads = 8;
  in.core_freq_ghz = 2.0;
  in.utilization = 0.9;
  pred.Observe(1, ExtractFeatures(in), 50.0, 1e9, Seconds(1));
  const int64_t size_before = pred.size();
  const std::string good = ecl::SerializeLearnCache(pred, fp);
  const std::string header = good.substr(0, good.find('\n') + 1);

  EXPECT_FALSE(ecl::DeserializeLearnCache("", fp, &pred));
  EXPECT_FALSE(ecl::DeserializeLearnCache("garbage v1 145 1 4\n", fp, &pred));
  EXPECT_FALSE(
      ecl::DeserializeLearnCache("ecldb-learncache v2 145 1 4\n", fp, &pred));
  // Wrong fingerprint.
  EXPECT_FALSE(ecl::DeserializeLearnCache(good, fp + 1, &pred));
  // Wrong dimensionality in the header.
  std::string bad_dims = good;
  bad_dims.replace(bad_dims.find(" 4\n"), 3, " 5\n");
  EXPECT_FALSE(ecl::DeserializeLearnCache(bad_dims, fp, &pred));
  // Out-of-range config index.
  EXPECT_FALSE(ecl::DeserializeLearnCache(
      header + "9999 0.5 0.5 0.5 0.5 50 1e9 5\n", fp, &pred));
  // Feature outside [0, 1].
  EXPECT_FALSE(ecl::DeserializeLearnCache(
      header + "1 1.5 0.5 0.5 0.5 50 1e9 5\n", fp, &pred));
  EXPECT_FALSE(ecl::DeserializeLearnCache(
      header + "1 nan 0.5 0.5 0.5 50 1e9 5\n", fp, &pred));
  // Negative power / truncated record.
  EXPECT_FALSE(ecl::DeserializeLearnCache(
      header + "1 0.5 0.5 0.5 0.5 -50 1e9 5\n", fp, &pred));
  EXPECT_FALSE(
      ecl::DeserializeLearnCache(header + "1 0.5 0.5\n", fp, &pred));
  // Every rejected load left the cache untouched (all-or-nothing).
  EXPECT_EQ(pred.size(), size_before);
  EXPECT_EQ(ecl::SerializeLearnCache(pred, fp), good);
}

TEST(ProfileSerializationTest, FingerprintSensitiveToConfigSet) {
  const uint64_t a = ProfileFingerprint(MakeProfile());
  GeneratorParams p;
  p.n_uncore_freqs = 2;
  const uint64_t b = ProfileFingerprint(MakeProfile(p));
  EXPECT_NE(a, b);
  // Deterministic across generations.
  EXPECT_EQ(a, ProfileFingerprint(MakeProfile()));
}


TEST(ProfileSerializationTest, WarmStartsAnEcl) {
  // A profile primed in one "process" warm-starts a fresh ECL: no
  // bootstrap phase, the first tick already has full knowledge.
  std::string saved;
  {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    engine::Engine engine(&sim, &machine, engine::EngineParams{});
    ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
    loop.Start();
    engine.scheduler().SetSyntheticLoad(&workload::MemoryScan());
    sim.RunFor(Seconds(30));
    saved = SerializeProfile(loop.socket(0).profile());
  }
  {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    engine::Engine engine(&sim, &machine, engine::EngineParams{});
    ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
    for (int s = 0; s < loop.num_sockets(); ++s) {
      ASSERT_TRUE(DeserializeProfile(saved, &loop.socket(s).profile()));
    }
    EXPECT_GT(loop.socket(0).profile().measured_count(), 100);
    loop.Start();
    engine.scheduler().SetSyntheticLoad(&workload::MemoryScan());
    sim.RunFor(Seconds(3));
    // Warm knowledge: the ECL is already applying a measured configuration
    // instead of the bootstrap widest-config + relearning phase.
    EXPECT_GT(loop.socket(0).current_config_index(), 0);
    EXPECT_TRUE(
        loop.socket(0).profile().config(loop.socket(0).current_config_index())
            .measured());
  }
}

}  // namespace
}  // namespace ecldb::profile
