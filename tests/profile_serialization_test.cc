#include <gtest/gtest.h>

#include "common/rng.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/work_profiles.h"
#include "profile/config_generator.h"
#include "profile/serialization.h"

namespace ecldb::profile {
namespace {

EnergyProfile MakeProfile(const GeneratorParams& params = GeneratorParams{}) {
  ConfigGenerator gen(hwsim::Topology::HaswellEp2S(),
                      hwsim::FrequencyTable::HaswellEp());
  return EnergyProfile(gen.Generate(params));
}

TEST(ProfileSerializationTest, RoundTripPreservesMeasurements) {
  EnergyProfile original = MakeProfile();
  Rng rng(4);
  for (int i = 1; i < original.size(); i += 3) {
    original.Record(i, 10.0 + rng.NextDouble() * 100.0,
                    1e9 * (1.0 + rng.NextDouble()), Seconds(i));
  }
  const std::string text = SerializeProfile(original);

  EnergyProfile restored = MakeProfile();
  ASSERT_TRUE(DeserializeProfile(text, &restored));
  EXPECT_EQ(restored.measured_count(), original.measured_count());
  for (int i = 1; i < original.size(); ++i) {
    const Configuration& a = original.config(i);
    const Configuration& b = restored.config(i);
    EXPECT_EQ(a.measured(), b.measured());
    if (a.measured()) {
      EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
      EXPECT_DOUBLE_EQ(a.perf_score, b.perf_score);
      EXPECT_EQ(a.last_measured, b.last_measured);
    }
  }
  EXPECT_EQ(restored.MostEfficientIndex(), original.MostEfficientIndex());
  EXPECT_EQ(restored.Skyline(), original.Skyline());
}

TEST(ProfileSerializationTest, EmptyProfileRoundTrips) {
  EnergyProfile original = MakeProfile();
  EnergyProfile restored = MakeProfile();
  ASSERT_TRUE(DeserializeProfile(SerializeProfile(original), &restored));
  EXPECT_EQ(restored.measured_count(), 0);
}

TEST(ProfileSerializationTest, RejectsMismatchedGeneratorParams) {
  EnergyProfile original = MakeProfile();
  original.Record(1, 10.0, 1e9, Seconds(1));
  const std::string text = SerializeProfile(original);

  GeneratorParams other;
  other.n_core_freqs = 7;
  EnergyProfile different = MakeProfile(other);
  EXPECT_FALSE(DeserializeProfile(text, &different));
  EXPECT_EQ(different.measured_count(), 0);  // untouched
}

TEST(ProfileSerializationTest, RejectsCorruptInput) {
  EnergyProfile profile = MakeProfile();
  EXPECT_FALSE(DeserializeProfile("", &profile));
  EXPECT_FALSE(DeserializeProfile("garbage v1 145 123", &profile));
  EXPECT_FALSE(DeserializeProfile("ecldb-profile v2 145 123", &profile));

  // Valid header, out-of-range index.
  const std::string header = SerializeProfile(profile);
  EXPECT_FALSE(DeserializeProfile(header + "9999 10 1e9 5\n", &profile));
  // Negative power.
  EXPECT_FALSE(DeserializeProfile(header + "1 -3 1e9 5\n", &profile));
  // Trailing junk.
  EXPECT_FALSE(DeserializeProfile(header + "1 10 1e9 5 extra_token\n1 x\n",
                                  &profile));
  EXPECT_EQ(profile.measured_count(), 0);
}

TEST(ProfileSerializationTest, FingerprintSensitiveToConfigSet) {
  const uint64_t a = ProfileFingerprint(MakeProfile());
  GeneratorParams p;
  p.n_uncore_freqs = 2;
  const uint64_t b = ProfileFingerprint(MakeProfile(p));
  EXPECT_NE(a, b);
  // Deterministic across generations.
  EXPECT_EQ(a, ProfileFingerprint(MakeProfile()));
}


TEST(ProfileSerializationTest, WarmStartsAnEcl) {
  // A profile primed in one "process" warm-starts a fresh ECL: no
  // bootstrap phase, the first tick already has full knowledge.
  std::string saved;
  {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    engine::Engine engine(&sim, &machine, engine::EngineParams{});
    ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
    loop.Start();
    engine.scheduler().SetSyntheticLoad(&workload::MemoryScan());
    sim.RunFor(Seconds(30));
    saved = SerializeProfile(loop.socket(0).profile());
  }
  {
    sim::Simulator sim;
    hwsim::Machine machine(&sim, hwsim::MachineParams::HaswellEp());
    engine::Engine engine(&sim, &machine, engine::EngineParams{});
    ecl::EnergyControlLoop loop(&sim, &engine, ecl::EclParams{});
    for (int s = 0; s < loop.num_sockets(); ++s) {
      ASSERT_TRUE(DeserializeProfile(saved, &loop.socket(s).profile()));
    }
    EXPECT_GT(loop.socket(0).profile().measured_count(), 100);
    loop.Start();
    engine.scheduler().SetSyntheticLoad(&workload::MemoryScan());
    sim.RunFor(Seconds(3));
    // Warm knowledge: the ECL is already applying a measured configuration
    // instead of the bootstrap widest-config + relearning phase.
    EXPECT_GT(loop.socket(0).current_config_index(), 0);
    EXPECT_TRUE(
        loop.socket(0).profile().config(loop.socket(0).current_config_index())
            .measured());
  }
}

}  // namespace
}  // namespace ecldb::profile
