# gnuplot script for Fig. 15: run build/bench/fig15_adaptation_power first.
set datafile separator ","
set terminal pngcairo size 900,500
set output "bench_results/fig15_adaptation.png"
set title "Fig. 15: energy-profile adaptation across a workload switch (t=40 s)"
set xlabel "time [s]"
set ylabel "RAPL power [W]"
set key top right
set arrow from 40, graph 0 to 40, graph 1 nohead dt 2 lc "gray"
plot \
  "bench_results/fig15_adaptation.csv" using 1:2 with lines lw 2 title "ECL static", \
  "bench_results/fig15_adaptation.csv" using 1:3 with lines lw 2 title "ECL online", \
  "bench_results/fig15_adaptation.csv" using 1:4 with lines lw 2 title "ECL multiplexed"
