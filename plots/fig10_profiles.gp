# gnuplot script for the Fig. 10-style energy-profile bubble charts: run
# build/bench/fig10_profile_workloads first, then e.g.
#   gnuplot -e "wl='memory-scan'" plots/fig10_profiles.gp
if (!exists("wl")) wl = "memory-scan"
set datafile separator ","
set terminal pngcairo size 800,600
set output sprintf("bench_results/fig10_%s.png", wl)
set title sprintf("energy profile: %s", wl)
set xlabel "performance level (normalized)"
set ylabel "energy efficiency (normalized)"
set cblabel "uncore GHz"
set palette defined (1.2 "blue", 2.1 "green", 3.0 "red")
set key off
# bubble size = active threads, color = uncore clock
plot sprintf("bench_results/fig10_%s.csv", wl) \
  using 4:5:($1/6.0+0.5):3 with points pt 7 ps variable palette
