# gnuplot script for Fig. 14(a): run build/bench/fig14_twitter_profile first.
set datafile separator ","
set terminal pngcairo size 900,500
set output "bench_results/fig14_twitter.png"
set title "Fig. 14(a): twitter load profile - power over time"
set xlabel "time [s]"
set ylabel "RAPL power [W]"
set y2label "offered load [kQps]"
set y2tics
set key top left
plot \
  "bench_results/fig14_baseline.csv" using 1:3 with lines lw 2 title "baseline", \
  "bench_results/fig14_ecl_1hz.csv"  using 1:3 with lines lw 2 title "ECL 1 Hz", \
  "bench_results/fig14_ecl_2hz.csv"  using 1:3 with lines lw 2 title "ECL 2 Hz", \
  "bench_results/fig14_baseline.csv" using 1:($2/1000) axes x1y2 with lines dt 2 lc "gray" title "load"
