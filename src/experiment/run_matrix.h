#ifndef ECLDB_EXPERIMENT_RUN_MATRIX_H_
#define ECLDB_EXPERIMENT_RUN_MATRIX_H_

#include <functional>

namespace ecldb::experiment {

/// Hardware concurrency with a sane floor (never 0).
int HardwareJobs();

/// Parses a `--jobs=N` (or `--jobs N`) command-line flag; returns
/// HardwareJobs() when absent. N is clamped to [1, 256].
int ParseJobs(int argc, char** argv);

/// Runs `arm(i)` for every i in [0, num_arms) on a pool of `jobs` worker
/// threads. Each arm must be self-contained (own Simulator + Machine +
/// engine) and write its result into a pre-sized slot indexed by i, which
/// makes the output independent of scheduling: `jobs=1` is byte-identical
/// to `jobs=N`. Arms are claimed in index order. Blocks until all arms
/// finish. Exceptions escaping an arm terminate (arms are expected not to
/// throw).
void RunMatrix(int num_arms, int jobs, const std::function<void(int)>& arm);

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_RUN_MATRIX_H_
