#ifndef ECLDB_EXPERIMENT_EXPERIMENT_H_
#define ECLDB_EXPERIMENT_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

namespace ecldb::experiment {

/// Which controller rules the hardware during a run.
enum class ControlMode {
  kBaseline,  // all threads on, CPU/OS frequency control (race-to-idle)
  kEcl,       // the hierarchical Energy-Control Loop
};

struct RunOptions {
  hwsim::MachineParams machine = hwsim::MachineParams::HaswellEp();
  ControlMode mode = ControlMode::kEcl;
  ecl::EclParams ecl;
  engine::EngineParams engine;
  /// ECL runs warm up under synthetic saturation for this long so energy
  /// profiles are primed before measurement begins (the paper's profiles
  /// are "continuously maintained at runtime"; experiments start warm).
  SimDuration prime_duration = Seconds(30);
  /// Spacing of the recorded time series.
  SimDuration sample_period = Millis(500);
  uint64_t driver_seed = 4242;
  /// Capacity override in queries/s; 0 derives the all-on baseline
  /// capacity from the performance model.
  double capacity_qps = 0.0;
  /// Steady-state fast-forward of the simulation kernel. Guaranteed
  /// bit-identical results either way (see docs/architecture.md); off
  /// exists for determinism tests and debugging.
  bool fast_forward = true;
  /// Optional telemetry context for the run. The experiment binds it to
  /// the run's simulator, propagates it through every layer (machine,
  /// engine, ECL), registers the experiment-level gauges the legacy
  /// sampler reports (exp/offered_qps, exp/rapl_power_w, ...; identical
  /// arithmetic, so the telemetry series is byte-compatible with
  /// RunResult.series), and runs the gauge sampler over the measured
  /// window. Construct it with sample_period equal to
  /// RunOptions::sample_period for row-for-row equality. Must outlive the
  /// call; afterwards only its *value* state is safe to read (series,
  /// trace events, and the dump captured in RunResult::telemetry_dump) —
  /// gauges reference run-local objects. Each concurrent RunMatrix arm
  /// needs its own instance.
  telemetry::Telemetry* telemetry = nullptr;
};

/// One sample of the experiment time series (Figs. 11, 13-15).
struct Sample {
  double t_s = 0.0;
  double offered_qps = 0.0;
  double rapl_power_w = 0.0;
  double latency_window_ms = 0.0;
  int active_threads = 0;
  double perf_level_frac = 0.0;  // mean over sockets, relative to peak
  double utilization = 0.0;      // mean over sockets (ECL view)
  /// Per-socket average power (package + DRAM) over the sample period;
  /// consolidation experiments read the donor socket's floor from this.
  std::vector<double> socket_power_w;
  /// Partitions homed per socket at the sample instant.
  std::vector<int> partitions_on_socket;
};

struct RunResult {
  double duration_s = 0.0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double capacity_qps = 0.0;
  int64_t submitted = 0;
  int64_t completed = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Fraction of queries above the latency limit.
  double violation_frac = 0.0;
  std::vector<Sample> series;
  /// Most energy-efficient configuration found by socket 0's ECL
  /// (empty string for baseline runs).
  std::string best_config;
  /// Live migrations completed during the run (0 unless consolidation or
  /// an explicit migration was active).
  int64_t migrations = 0;
  /// Consolidation policy counters (0 when the policy is disabled).
  int64_t consolidation_moves = 0;
  int64_t spread_moves = 0;
  /// Shard bytes moved by completed migrations.
  double migration_bytes = 0.0;
  /// In-flight messages forwarded after their partition moved away.
  int64_t stale_forwards = 0;
  /// Deterministic metric-registry dump captured at the end of the run
  /// (empty unless RunOptions::telemetry was set). Safe to compare after
  /// the run's objects are gone.
  std::string telemetry_dump;
};

/// Builds a workload against a fresh engine.
using WorkloadFactory =
    std::function<std::unique_ptr<workload::Workload>(engine::Engine*)>;

/// Runs one end-to-end load experiment: fresh machine + engine + workload,
/// optional ECL priming, then the load profile, recording energy, latency
/// statistics and a time series. Deterministic for fixed options.
RunResult RunLoadExperiment(const WorkloadFactory& factory,
                            const workload::LoadProfile& profile,
                            const RunOptions& options);

/// Convenience: relative energy saving of `ecl` vs `baseline` in percent.
inline double SavingsPercent(const RunResult& baseline, const RunResult& ecl) {
  return 100.0 * (1.0 - ecl.energy_j / baseline.energy_j);
}

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_EXPERIMENT_H_
