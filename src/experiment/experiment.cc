#include "experiment/experiment.h"

#include <sstream>

#include "common/check.h"
#include "ecl/baseline.h"

namespace ecldb::experiment {
namespace {

/// Compact description of a configuration for result tables
/// ("12 thr @ 1.2 GHz, uncore 3.0").
std::string DescribeConfig(const hwsim::Topology& topo,
                           const profile::Configuration& c) {
  std::ostringstream out;
  out << c.hw.ActiveThreadCount() << " thr @ ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", c.hw.MeanActiveCoreFreq(topo));
  out << buf << " GHz, uncore ";
  std::snprintf(buf, sizeof(buf), "%.1f", c.hw.uncore_freq_ghz);
  out << buf;
  return out.str();
}

/// Package + DRAM energy of one socket in joules.
double SocketEnergyJ(const hwsim::Machine& machine, SocketId s) {
  return 1e-6 *
         static_cast<double>(machine.ReadRaplUj(s, hwsim::RaplDomain::kPackage) +
                             machine.ReadRaplUj(s, hwsim::RaplDomain::kDram));
}

}  // namespace

RunResult RunLoadExperiment(const WorkloadFactory& factory,
                            const workload::LoadProfile& profile,
                            const RunOptions& options) {
  sim::Simulator simulator;
  simulator.set_fast_forward(options.fast_forward);
  telemetry::Telemetry* const tel = options.telemetry;
  if (tel != nullptr) tel->Bind(&simulator);
  hwsim::Machine machine(&simulator, options.machine);
  if (tel != nullptr) machine.AttachTelemetry(tel);
  engine::EngineParams engine_params = options.engine;
  if (tel != nullptr) engine_params.telemetry = tel;
  engine::Engine engine(&simulator, &machine, engine_params);
  std::unique_ptr<workload::Workload> workload = factory(&engine);
  ECLDB_CHECK(workload != nullptr);

  const double capacity =
      options.capacity_qps > 0.0
          ? options.capacity_qps
          : workload::BaselineCapacityQps(options.machine, *workload);

  ecl::BaselineController baseline(&machine);
  std::unique_ptr<ecl::EnergyControlLoop> loop;
  if (options.mode == ControlMode::kEcl) {
    ecl::EclParams ecl_params = options.ecl;
    if (tel != nullptr) ecl_params.telemetry = tel;
    loop = std::make_unique<ecl::EnergyControlLoop>(&simulator, &engine,
                                                    ecl_params);
    loop->Start();
    if (options.prime_duration > 0) {
      engine.scheduler().SetSyntheticLoad(&workload->profile());
      simulator.RunFor(options.prime_duration);
      engine.scheduler().SetSyntheticLoad(nullptr);
    }
  } else {
    baseline.Start();
    // Symmetric warm-up keeps run windows aligned across modes.
    if (options.prime_duration > 0) {
      engine.scheduler().SetSyntheticLoad(&workload->profile());
      simulator.RunFor(options.prime_duration);
      engine.scheduler().SetSyntheticLoad(nullptr);
    }
  }
  engine.latency().ResetRunStats();

  workload::DriverParams driver_params;
  driver_params.capacity_qps = capacity;
  driver_params.seed = options.driver_seed;
  workload::LoadDriver driver(&simulator, &engine, workload.get(), &profile,
                              driver_params);

  RunResult result;
  result.capacity_qps = capacity;
  const SimTime run_start = simulator.now();
  const double e0 = machine.TotalEnergyJoules();
  driver.Start();

  // Time-series sampler. Power is averaged over the sample period (an
  // instantaneous read would alias with the RTI switching phase).
  const hwsim::Topology& topo = options.machine.topology;
  const SimTime run_end = run_start + profile.duration();
  double sampler_last_energy = machine.TotalEnergyJoules();
  std::vector<double> sampler_last_socket_e(
      static_cast<size_t>(topo.num_sockets));
  for (SocketId sk = 0; sk < topo.num_sockets; ++sk) {
    sampler_last_socket_e[static_cast<size_t>(sk)] = SocketEnergyJ(machine, sk);
  }
  // Telemetry mirrors of the sampler columns above. Each gauge replays the
  // exact arithmetic of the legacy sampler with its own delta state, so the
  // generic series is value-for-value identical to RunResult::series (the
  // fig11 port proves this byte-for-byte). All reads are pure, so the two
  // samplers coexisting at the same instants cannot perturb each other.
  if (tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    const SimDuration period = options.sample_period;
    reg.AddGauge("exp/offered_qps", [&driver, &simulator] {
      return driver.OfferedQps(simulator.now());
    });
    auto last_energy = std::make_shared<double>(machine.TotalEnergyJoules());
    reg.AddGauge("exp/rapl_power_w", [&machine, last_energy, period] {
      const double e = machine.TotalEnergyJoules();
      const double w = (e - *last_energy) / ToSeconds(period);
      *last_energy = e;
      return w;
    });
    reg.AddGauge("exp/latency_window_ms",
                 [&engine] { return engine.latency().WindowMeanMs(); });
    reg.AddGauge("exp/active_threads", [&machine, &topo] {
      int threads = 0;
      for (SocketId sk = 0; sk < topo.num_sockets; ++sk) {
        threads += machine.requested_config(sk).ActiveThreadCount();
      }
      return static_cast<double>(threads);
    });
    ecl::EnergyControlLoop* const lp = loop.get();
    reg.AddGauge("exp/perf_level_frac", [lp] {
      if (lp == nullptr) return 0.0;
      double level = 0.0;
      for (int sk = 0; sk < lp->num_sockets(); ++sk) {
        const ecl::SocketEcl& se = lp->socket(sk);
        const double peak = se.profile().PeakPerfScore();
        if (peak > 0.0) level += se.performance_level() / peak;
      }
      return level / lp->num_sockets();
    });
    reg.AddGauge("exp/utilization", [lp] {
      if (lp == nullptr) return 0.0;
      double util = 0.0;
      for (int sk = 0; sk < lp->num_sockets(); ++sk) {
        util += lp->socket(sk).last_utilization();
      }
      return util / lp->num_sockets();
    });
    for (SocketId sk = 0; sk < topo.num_sockets; ++sk) {
      const std::string base = "exp/socket" + std::to_string(sk) + "/";
      auto last_se = std::make_shared<double>(SocketEnergyJ(machine, sk));
      reg.AddGauge(base + "power_w", [&machine, sk, last_se, period] {
        const double se = SocketEnergyJ(machine, sk);
        const double w = (se - *last_se) / ToSeconds(period);
        *last_se = se;
        return w;
      });
      reg.AddGauge(base + "partitions", [&engine, sk] {
        return static_cast<double>(engine.placement().PartitionsOn(sk));
      });
    }
    tel->StartSampler(run_start);
  }
  for (SimTime t = run_start + options.sample_period; t <= run_end;
       t += options.sample_period) {
    simulator.Schedule(t, [&, t] {
      Sample s;
      s.t_s = ToSeconds(t - run_start);
      s.offered_qps = driver.OfferedQps(t);
      const double e = machine.TotalEnergyJoules();
      s.rapl_power_w =
          (e - sampler_last_energy) / ToSeconds(options.sample_period);
      sampler_last_energy = e;
      s.latency_window_ms = engine.latency().WindowMeanMs();
      for (SocketId sk = 0; sk < topo.num_sockets; ++sk) {
        s.active_threads += machine.requested_config(sk).ActiveThreadCount();
        const double se = SocketEnergyJ(machine, sk);
        s.socket_power_w.push_back(
            (se - sampler_last_socket_e[static_cast<size_t>(sk)]) /
            ToSeconds(options.sample_period));
        sampler_last_socket_e[static_cast<size_t>(sk)] = se;
        s.partitions_on_socket.push_back(engine.placement().PartitionsOn(sk));
      }
      if (loop != nullptr) {
        double level = 0.0;
        double util = 0.0;
        for (int sk = 0; sk < loop->num_sockets(); ++sk) {
          const ecl::SocketEcl& se = loop->socket(sk);
          const double peak = se.profile().PeakPerfScore();
          if (peak > 0.0) level += se.performance_level() / peak;
          util += se.last_utilization();
        }
        s.perf_level_frac = level / loop->num_sockets();
        s.utilization = util / loop->num_sockets();
      }
      result.series.push_back(s);
    });
  }

  // Run the profile plus drain time for in-flight queries.
  simulator.RunUntil(run_end);
  // Stop gauge sampling at the measurement boundary so the telemetry
  // series covers exactly the rows the legacy sampler records.
  if (tel != nullptr) tel->StopSampler();
  const double e1 = machine.TotalEnergyJoules();
  simulator.RunFor(Seconds(5));  // drain

  result.duration_s = ToSeconds(profile.duration());
  result.energy_j = e1 - e0;
  result.avg_power_w = result.energy_j / result.duration_s;
  result.submitted = driver.submitted();
  result.completed = engine.latency().completed();
  const PercentileTracker& lat = engine.latency().all();
  result.mean_ms = lat.Mean();
  result.p50_ms = lat.Percentile(50);
  result.p95_ms = lat.Percentile(95);
  result.p99_ms = lat.Percentile(99);
  result.max_ms = lat.Max();
  result.violation_frac =
      lat.FractionAbove(options.ecl.system.latency_limit_ms);
  result.migrations = engine.migrator().completed();
  result.migration_bytes = engine.migrator().bytes_moved();
  for (SocketId sk = 0; sk < topo.num_sockets; ++sk) {
    result.stale_forwards += engine.socket_msg_stats(sk).stale_forwards;
  }
  if (loop != nullptr) {
    const profile::EnergyProfile& p = loop->socket(0).profile();
    const int best = p.MostEfficientIndex();
    if (best >= 0) result.best_config = DescribeConfig(topo, p.config(best));
    if (loop->consolidation() != nullptr) {
      result.consolidation_moves = loop->consolidation()->consolidation_moves();
      result.spread_moves = loop->consolidation()->spread_moves();
    }
    loop->Stop();
  }
  // Snapshot the registry while the run's objects are still alive; gauges
  // and counter functions reference them and must not be read later.
  if (tel != nullptr) result.telemetry_dump = tel->registry().Dump();
  return result;
}

}  // namespace ecldb::experiment
