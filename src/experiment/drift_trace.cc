#include "experiment/drift_trace.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"
#include "ecl/ecl.h"
#include "engine/engine.h"
#include "hwsim/machine.h"
#include "profile/serialization.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/kv.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

namespace ecldb::experiment {
namespace {

std::string DescribeBest(const hwsim::Topology& topo,
                         const profile::EnergyProfile& prof) {
  const int best = prof.MostEfficientIndex();
  if (best < 0) return "";
  const profile::Configuration& c = prof.config(best);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%2d thr @ %.1f GHz, uncore %.1f",
                c.hw.ActiveThreadCount(), c.hw.MeanActiveCoreFreq(topo),
                c.hw.uncore_freq_ghz);
  return buf;
}

}  // namespace

DriftTraceResult RunDriftTrace(const DriftTraceParams& params) {
  ECLDB_CHECK(params.num_switch_phases >= 1);
  ECLDB_CHECK(params.tail <= params.phase_len);

  sim::Simulator sim;
  telemetry::Telemetry* const tel = params.telemetry;
  if (tel != nullptr) tel->Bind(&sim);
  const hwsim::MachineParams machine_params = hwsim::MachineParams::HaswellEp();
  hwsim::Machine machine(&sim, machine_params);
  if (tel != nullptr) machine.AttachTelemetry(tel);
  engine::EngineParams engine_params;
  if (tel != nullptr) engine_params.telemetry = tel;
  engine::Engine engine(&sim, &machine, engine_params);

  workload::KvParams pi;
  pi.indexed = true;
  workload::KvWorkload indexed(&engine, pi);
  workload::KvParams ps;
  ps.indexed = false;
  workload::KvWorkload scan(&engine, ps);

  ecl::EclParams ecl_params;
  ecl_params.socket.predictor = params.predictor;
  if (tel != nullptr) ecl_params.telemetry = tel;
  ecl::EnergyControlLoop loop(&sim, &engine, ecl_params);
  loop.Start();

  // Prime the profiles (and, with the predictor on, its learn cache) on
  // the indexed workload under synthetic saturation.
  engine.scheduler().SetSyntheticLoad(&indexed.profile());
  sim.RunFor(params.prime);
  engine.scheduler().SetSyntheticLoad(nullptr);
  loop.SetAdaptation(params.online, params.multiplexed);

  if (!params.prime_learn_cache.empty()) {
    for (SocketId s = 0; s < loop.num_sockets(); ++s) {
      ecl::ProfilePredictor* pred = loop.socket(s).predictor();
      ECLDB_CHECK(pred != nullptr);
      ECLDB_CHECK(ecl::DeserializeLearnCache(
          params.prime_learn_cache,
          profile::LearnCacheFingerprint(loop.socket(s).profile(),
                                         machine_params),
          pred));
    }
  }

  ecl::SocketEcl& socket0 = loop.socket(0);
  const SimDuration stale_age = socket0.maintenance().params().stale_age;
  const int phase_secs = static_cast<int>(ToSeconds(params.phase_len));
  const int tail_secs = static_cast<int>(ToSeconds(params.tail));

  const double cap_indexed =
      workload::BaselineCapacityQps(machine_params, indexed);
  const double cap_scan = workload::BaselineCapacityQps(machine_params, scan);

  DriftTraceResult result;
  const double e0 = machine.TotalEnergyJoules();
  double e_prev = e0;

  // Drivers and their profiles must outlive the events they scheduled, so
  // they are parked here until the simulator is done.
  std::vector<std::unique_ptr<workload::ConstantProfile>> profiles;
  std::vector<std::unique_ptr<workload::LoadDriver>> drivers;

  for (int phase = 0; phase < params.num_switch_phases; ++phase) {
    const bool is_scan = (phase % 2) == 0;
    workload::KvWorkload& wl = is_scan ? scan : indexed;

    DriftTracePhase ph;
    ph.workload = is_scan ? "kv-scan" : "kv-indexed";
    const double phase_e0 = machine.TotalEnergyJoules();
    const int64_t evals0 = socket0.maintenance().multiplexed_evals();
    const int64_t seeded0 = socket0.maintenance().predictor_seeded_configs();
    const int64_t drifts0 = socket0.maintenance().drift_flags();

    profiles.push_back(std::make_unique<workload::ConstantProfile>(
        params.load, params.phase_len));
    workload::DriverParams dp;
    dp.capacity_qps = is_scan ? cap_scan : cap_indexed;
    drivers.push_back(std::make_unique<workload::LoadDriver>(
        &sim, &engine, &wl, profiles.back().get(), dp));
    drivers.back()->Start();

    bool drift_seen = false;
    double tail_e0 = phase_e0;
    const bool debug = std::getenv("ECLDB_DRIFT_DEBUG") != nullptr;
    for (int t = 1; t <= phase_secs; ++t) {
      if (t == phase_secs - tail_secs + 1) {
        tail_e0 = machine.TotalEnergyJoules();
        engine.latency().ResetRunStats();
      }
      sim.RunFor(Seconds(1));
      const double e = machine.TotalEnergyJoules();
      result.power_w.push_back(e - e_prev);
      e_prev = e;
      // Adaptation progress: a flagged drift floods the stale set
      // (InvalidateAll; predictor seeding may re-fill most of it within
      // the same interval, so the flag counter — not the stale count —
      // detects the switch); adaptation is over once multiplexed
      // reevaluation drained what stayed stale.
      const int stale = static_cast<int>(
          socket0.profile().StaleConfigs(sim.now(), stale_age).size());
      if (debug) {
        std::fprintf(stderr,
                     "[drift_trace] ph%d t=%3d stale=%3d cfg=%3d util=%.2f "
                     "evals=%lld seeded=%lld feat=%s\n",
                     phase, t, stale, socket0.current_config_index(),
                     socket0.last_utilization(),
                     static_cast<long long>(
                         socket0.maintenance().multiplexed_evals()),
                     static_cast<long long>(
                         socket0.maintenance().predictor_seeded_configs()),
                     socket0.last_features().ToString().c_str());
      }
      if (socket0.maintenance().drift_flags() > drifts0) drift_seen = true;
      if (drift_seen && ph.adapt_s < 0.0 && stale == 0) {
        ph.adapt_s = static_cast<double>(t);
      }
    }

    ph.evals = socket0.maintenance().multiplexed_evals() - evals0;
    ph.seeded = socket0.maintenance().predictor_seeded_configs() - seeded0;
    ph.energy_j = machine.TotalEnergyJoules() - phase_e0;
    ph.tail_energy_j = machine.TotalEnergyJoules() - tail_e0;
    ph.tail_p99_ms = engine.latency().all().Percentile(99);
    ph.best_config = DescribeBest(machine.topology(), socket0.profile());
    result.phases.push_back(std::move(ph));
  }

  result.total_energy_j = machine.TotalEnergyJoules() - e0;
  if (ecl::ProfilePredictor* pred = socket0.predictor(); pred != nullptr) {
    result.learn_cache = ecl::SerializeLearnCache(
        *pred,
        profile::LearnCacheFingerprint(socket0.profile(), machine_params));
  }
  if (tel != nullptr) result.telemetry_dump = tel->registry().Dump();
  loop.Stop();
  return result;
}

}  // namespace ecldb::experiment
