#include "experiment/loadgen_trace.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "ecl/baseline.h"
#include "experiment/cluster_rig.h"
#include "experiment/drain.h"
#include "faultsim/fault_injector.h"

namespace ecldb::experiment {
namespace {

/// Folds the loadgen's per-class accounting into the result struct
/// (shared by the single-node and cluster runners).
void FillLoadgenStats(const loadgen::LoadGen& lg, SloRunResult* result) {
  const loadgen::SloTracker& slo = lg.slo();
  const loadgen::AdmissionController& adm = lg.admission();
  result->arrivals = lg.arrivals();
  result->admitted = adm.total_admitted();
  result->shed = adm.total_shed();
  result->completed = slo.total_completed();
  result->failed = lg.failed();
  result->retries = lg.retries();
  result->abandoned = lg.abandoned();
  double mean_weighted = 0.0;
  for (int i = 0; i < loadgen::kNumSloClasses; ++i) {
    const auto c = static_cast<loadgen::SloClass>(i);
    SloClassStats& out = result->classes[static_cast<size_t>(i)];
    out.admitted = adm.admitted(c);
    out.shed = adm.shed(c);
    out.arrivals = out.admitted + out.shed;
    out.completed = slo.completed(c);
    out.violations = slo.violations(c);
    out.mean_ms = slo.latency(c).Mean();
    out.tail_ms = slo.TailLatencyMs(c);
    out.deadline_ms = slo.class_params(c).deadline_ms;
    out.target_percentile = slo.class_params(c).target_percentile;
    out.slo_met = slo.SloMet(c);
    mean_weighted += static_cast<double>(out.completed) * out.mean_ms;
    result->p99_ms =
        std::max(result->p99_ms, slo.latency(c).Percentile(99));
  }
  if (result->completed > 0) {
    result->mean_ms = mean_weighted / static_cast<double>(result->completed);
  }
}

}  // namespace

SloRunResult RunSloExperiment(const WorkloadFactory& factory,
                              const SloRunOptions& options) {
  const RunOptions& run = options.run;
  sim::Simulator simulator;
  simulator.set_fast_forward(run.fast_forward);
  telemetry::Telemetry* const tel = run.telemetry;
  if (tel != nullptr) tel->Bind(&simulator);
  hwsim::Machine machine(&simulator, run.machine);
  if (tel != nullptr) machine.AttachTelemetry(tel);
  engine::EngineParams engine_params = run.engine;
  if (tel != nullptr) engine_params.telemetry = tel;
  engine::Engine engine(&simulator, &machine, engine_params);
  std::unique_ptr<workload::Workload> workload = factory(&engine);
  ECLDB_CHECK(workload != nullptr);

  const double capacity =
      run.capacity_qps > 0.0
          ? run.capacity_qps
          : workload::BaselineCapacityQps(run.machine, *workload);

  ecl::BaselineController baseline(&machine);
  std::unique_ptr<ecl::EnergyControlLoop> loop;
  if (run.mode == ControlMode::kEcl) {
    ecl::EclParams ecl_params = run.ecl;
    if (tel != nullptr) ecl_params.telemetry = tel;
    loop = std::make_unique<ecl::EnergyControlLoop>(&simulator, &engine,
                                                    ecl_params);
    loop->Start();
  } else {
    baseline.Start();
  }
  if (run.prime_duration > 0) {
    engine.scheduler().SetSyntheticLoad(&workload->profile());
    simulator.RunFor(run.prime_duration);
    engine.scheduler().SetSyntheticLoad(nullptr);
  }
  engine.latency().ResetRunStats();

  loadgen::LoadGenParams lg_params = options.loadgen;
  if (lg_params.telemetry == nullptr) lg_params.telemetry = tel;
  loadgen::LoadGen lg(&simulator, workload.get(), lg_params);
  lg.NormalizeToCapacity(capacity, options.total_load);
  lg.SetSubmitFn(
      [&engine](engine::QuerySpec&& spec) { engine.Submit(spec); });
  engine.scheduler().SetCompletionCallback(
      [&lg](int8_t cls, SimTime arrival, SimTime completion) {
        lg.OnQueryComplete(cls, arrival, completion);
      });
  engine.scheduler().SetFailureCallback(
      [&lg](int8_t cls, int16_t tenant, int8_t attempt, SimTime arrival,
            engine::FailReason reason) {
        lg.OnQueryFailed(cls, tenant, attempt, arrival, reason);
      });
  if (options.admission_enabled && loop != nullptr) {
    ecl::SystemEcl& system = loop->system();
    lg.admission().SetPressureSource(
        [&system] { return system.pressure(); });
    system.SetShedSignal([&lg, &simulator] {
      return lg.admission().RecentShedFraction(simulator.now());
    });
  }

  SloRunResult result;
  result.capacity_qps = capacity;
  const SimTime run_start = simulator.now();
  const double e0 = machine.TotalEnergyJoules();
  lg.Start();

  const hwsim::Topology& topo = run.machine.topology;
  const SimTime run_end = run_start + options.loadgen.duration;
  double sampler_last_energy = machine.TotalEnergyJoules();
  if (tel != nullptr) tel->StartSampler(run_start);
  for (SimTime t = run_start + run.sample_period; t <= run_end;
       t += run.sample_period) {
    simulator.Schedule(t, [&, t] {
      SloSample s;
      s.t_s = ToSeconds(t - run_start);
      s.offered_qps = lg.OfferedQps(t);
      const double e = machine.TotalEnergyJoules();
      s.power_w = (e - sampler_last_energy) / ToSeconds(run.sample_period);
      sampler_last_energy = e;
      s.latency_window_ms = engine.latency().WindowMeanMs();
      if (loop != nullptr) s.pressure = loop->system().pressure();
      s.shed_fraction = lg.admission().RecentShedFraction(t);
      for (SocketId sk = 0; sk < topo.num_sockets; ++sk) {
        s.width += machine.requested_config(sk).ActiveThreadCount();
      }
      result.series.push_back(s);
    });
  }

  simulator.RunUntil(run_end);
  if (tel != nullptr) tel->StopSampler();
  const double e1 = machine.TotalEnergyJoules();
  // A submission resolves as a completion or a typed failure — the drain
  // counts both, so a failed query never spins the watchdog.
  result.drained = DrainToCompletion(
      simulator,
      [&lg] { return lg.slo().total_completed() + lg.failed(); },
      lg.submitted());

  result.duration_s = ToSeconds(options.loadgen.duration);
  result.energy_j = e1 - e0;
  result.avg_power_w = result.energy_j / result.duration_s;
  FillLoadgenStats(lg, &result);
  if (loop != nullptr) loop->Stop();
  if (tel != nullptr) result.telemetry_dump = tel->registry().Dump();
  return result;
}

SloRunResult RunClusterSloExperiment(const ClusterWorkloadFactory& factory,
                                     const ClusterSloRunOptions& options) {
  ClusterRig rig(factory, options.cluster);
  sim::Simulator& simulator = rig.simulator();
  hwsim::Cluster& cluster = rig.cluster();
  engine::ClusterEngine& cengine = rig.cengine();
  telemetry::Telemetry* const tel = rig.telemetry();
  const int num_nodes = rig.num_nodes();

  rig.Prime();

  loadgen::LoadGenParams lg_params = options.loadgen;
  if (lg_params.telemetry == nullptr) lg_params.telemetry = tel;
  loadgen::LoadGen lg(&simulator, &rig.workload(), lg_params);
  lg.NormalizeToCapacity(rig.capacity(), options.total_load);
  lg.SetSubmitFn([&rig, &cengine](engine::QuerySpec&& spec) {
    if (spec.work.empty()) return;
    cengine.Submit(rig.EntryNodeFor(spec), spec);
  });
  for (NodeId n = 0; n < num_nodes; ++n) {
    cengine.node_engine(n).scheduler().SetCompletionCallback(
        [&lg](int8_t cls, SimTime arrival, SimTime completion) {
          lg.OnQueryComplete(cls, arrival, completion);
        });
  }
  cengine.SetQueryFailureCallback(
      [&lg](int8_t cls, int16_t tenant, int8_t attempt, SimTime arrival,
            engine::FailReason reason) {
        lg.OnQueryFailed(cls, tenant, attempt, arrival, reason);
      });
  if (options.admission_enabled) {
    lg.admission().SetPressureSource(
        [&rig] { return rig.MaxNodePressure(); });
    for (NodeId n = 0; n < num_nodes; ++n) {
      rig.node_ecl(n).system().SetShedSignal([&lg, &simulator] {
        return lg.admission().RecentShedFraction(simulator.now());
      });
    }
  }

  SloRunResult result;
  result.capacity_qps = rig.capacity();
  const SimTime run_start = simulator.now();

  // Scripted faults: shift the schedule (authored relative to measurement
  // start) to absolute virtual time and arm. The injector's node hooks
  // mirror the cluster ECL's: a crash stops the dead node's ECL before the
  // engine recovery runs, a completed restart boots it again.
  std::unique_ptr<faultsim::FaultInjector> injector;
  if (!options.faults.empty()) {
    faultsim::FaultInjectorParams fi_params;
    fi_params.schedule = options.faults;
    for (faultsim::FaultEvent& e : fi_params.schedule.events) {
      e.at += run_start;
    }
    fi_params.telemetry = tel;
    injector = std::make_unique<faultsim::FaultInjector>(
        &simulator, &cluster, &cengine, fi_params);
    injector->SetNodeHooks(
        [&rig](NodeId n) { rig.node_ecl(n).Stop(); },
        [&rig](NodeId n) { rig.node_ecl(n).Start(); });
    injector->Arm();
  }

  const double e0 = cluster.TotalEnergyJoules();
  lg.Start();

  const SimTime run_end = run_start + options.loadgen.duration;
  double sampler_last_energy = cluster.TotalEnergyJoules();
  if (tel != nullptr) tel->StartSampler(run_start);
  const SimDuration period = options.cluster.sample_period;
  for (SimTime t = run_start + period; t <= run_end; t += period) {
    simulator.Schedule(t, [&, t] {
      SloSample s;
      s.t_s = ToSeconds(t - run_start);
      s.offered_qps = lg.OfferedQps(t);
      const double e = cluster.TotalEnergyJoules();
      s.power_w = (e - sampler_last_energy) / ToSeconds(period);
      sampler_last_energy = e;
      for (NodeId n = 0; n < num_nodes; ++n) {
        s.latency_window_ms =
            std::max(s.latency_window_ms,
                     cengine.node_engine(n).latency().WindowMeanMs());
      }
      s.pressure = rig.MaxNodePressure();
      s.shed_fraction = lg.admission().RecentShedFraction(t);
      s.width = cluster.NodesOn();
      result.series.push_back(s);
    });
  }

  simulator.RunUntil(run_end);
  if (tel != nullptr) tel->StopSampler();
  const double e1 = cluster.TotalEnergyJoules();
  // Completions + typed failures together cover every submission; the
  // watchdog diagnostic names the per-node backlog when they don't.
  result.drained = DrainToCompletion(
      simulator,
      [&lg] { return lg.slo().total_completed() + lg.failed(); },
      lg.submitted(), Seconds(120), Seconds(45),
      [&cengine, &cluster, num_nodes] {
        std::string d = "backlog:";
        for (NodeId n = 0; n < num_nodes; ++n) {
          d += " node" + std::to_string(n) + "=" +
               std::to_string(static_cast<int64_t>(cengine.BacklogOps(n))) +
               (cluster.IsFailed(n) ? "(failed)" : "");
        }
        d += " engine_failed=" + std::to_string(cengine.QueriesFailed());
        return d;
      });

  result.duration_s = ToSeconds(options.loadgen.duration);
  result.energy_j = e1 - e0;
  result.avg_power_w = result.energy_j / result.duration_s;
  FillLoadgenStats(lg, &result);
  rig.StopEcls();
  if (tel != nullptr) result.telemetry_dump = tel->registry().Dump();
  return result;
}

}  // namespace ecldb::experiment
