#ifndef ECLDB_EXPERIMENT_CLUSTER_TRACE_H_
#define ECLDB_EXPERIMENT_CLUSTER_TRACE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "ecl/cluster_ecl.h"
#include "ecl/ecl.h"
#include "engine/cluster_engine.h"
#include "hwsim/cluster.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

namespace ecldb::experiment {

struct ClusterRunOptions {
  /// Node set + network (telemetry is filled in by the runner).
  hwsim::ClusterParams cluster =
      hwsim::ClusterParams::Homogeneous(4, hwsim::ClusterNodeParams{});
  engine::ClusterEngineParams engine;
  /// Per-node ECL stack (socket + system tiers; in-box consolidation
  /// stays off — the cluster tier owns placement).
  ecl::EclParams node_ecl;
  ecl::ClusterEclParams cluster_ecl;
  SimDuration prime_duration = Seconds(30);
  SimDuration sample_period = Millis(500);
  uint64_t driver_seed = 4242;
  /// Cluster capacity override in queries/s; 0 sums the per-node all-on
  /// baseline capacities.
  double capacity_qps = 0.0;
  bool fast_forward = true;
  /// Entry-node routing of the open-loop drivers. Default (false): every
  /// query enters at the home node of its first partition (partition-aware
  /// clients). True: queries enter at a uniformly random powered-on node —
  /// placement-oblivious clients — so remote sends and stale-epoch
  /// forwarding are exercised on every query, not only around migrations.
  bool any_node_entry = false;
  /// Seed of the entry-node picks (only drawn when any_node_entry is on,
  /// so the default keeps the arrival/query streams bit-identical).
  uint64_t entry_seed = 171717;
  /// Optional telemetry; per-node layers register under "node{N}/",
  /// cluster-scope metrics unprefixed. Same lifetime rules as
  /// RunOptions::telemetry.
  telemetry::Telemetry* telemetry = nullptr;
};

struct ClusterSample {
  double t_s = 0.0;
  double offered_qps = 0.0;
  /// Whole-cluster wall power averaged over the sample period (machine
  /// RAPL + platform overheads + off/boot power).
  double power_w = 0.0;
  int nodes_on = 0;
  /// Max over nodes of the latency window mean (the cluster pressure
  /// signal's input).
  double latency_window_ms = 0.0;
  std::vector<double> node_power_w;
  std::vector<int> partitions_on_node;
};

struct ClusterRunResult {
  double duration_s = 0.0;
  /// Whole-cluster energy over the measured window, joules.
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double capacity_qps = 0.0;
  int64_t submitted = 0;
  int64_t completed = 0;
  /// Completion-weighted mean over nodes.
  double mean_ms = 0.0;
  /// Max over the per-node trackers — an upper bound on the true cluster
  /// percentile (per-node latency populations are not merged).
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double violation_frac = 0.0;
  int64_t power_downs = 0;
  int64_t wakes = 0;
  int64_t node_migrations = 0;
  int64_t cancelled_migrations = 0;
  int64_t remote_sends = 0;
  int64_t stale_forwards = 0;
  std::vector<ClusterSample> series;
  std::string telemetry_dump;
};

/// Builds the workload against node 0's engine (every node engine hosts
/// the full global partition range, so queries generated against any one
/// of them address the whole cluster).
using ClusterWorkloadFactory =
    std::function<std::unique_ptr<workload::Workload>(engine::Engine*)>;

/// Runs one end-to-end cluster experiment: N machines + network +
/// cluster engine, one full per-node ECL stack each, the cluster ECL on
/// top, an open-loop driver entering queries at their home node, and a
/// cluster-scope time-series sampler. Deterministic for fixed options.
ClusterRunResult RunClusterExperiment(const ClusterWorkloadFactory& factory,
                                      const workload::LoadProfile& profile,
                                      const ClusterRunOptions& options);

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_CLUSTER_TRACE_H_
