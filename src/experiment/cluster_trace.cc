#include "experiment/cluster_trace.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/check.h"
#include "experiment/cluster_rig.h"
#include "experiment/drain.h"

namespace ecldb::experiment {

ClusterRunResult RunClusterExperiment(const ClusterWorkloadFactory& factory,
                                      const workload::LoadProfile& profile,
                                      const ClusterRunOptions& options) {
  ClusterRig rig(factory, options);
  sim::Simulator& simulator = rig.simulator();
  hwsim::Cluster& cluster = rig.cluster();
  engine::ClusterEngine& cengine = rig.cengine();
  telemetry::Telemetry* const tel = rig.telemetry();
  const int num_nodes = rig.num_nodes();
  const double capacity = rig.capacity();

  rig.Prime();

  workload::DriverParams driver_params;
  driver_params.capacity_qps = capacity;
  driver_params.seed = options.driver_seed;
  ClusterLoadDriver driver(&rig, &profile, driver_params);

  ClusterRunResult result;
  result.capacity_qps = capacity;
  const SimTime run_start = simulator.now();
  const double e0 = cluster.TotalEnergyJoules();
  driver.Start();

  const SimTime run_end = run_start + profile.duration();
  double sampler_last_energy = cluster.TotalEnergyJoules();
  std::vector<double> sampler_last_node_e(static_cast<size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    sampler_last_node_e[static_cast<size_t>(n)] = cluster.NodeEnergyJoules(n);
  }
  if (tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    const SimDuration period = options.sample_period;
    reg.AddGauge("exp/cluster/offered_qps", [&driver, &simulator] {
      return driver.OfferedQps(simulator.now());
    });
    auto last_energy = std::make_shared<double>(cluster.TotalEnergyJoules());
    reg.AddGauge("exp/cluster/power_w", [&cluster, last_energy, period] {
      const double e = cluster.TotalEnergyJoules();
      const double w = (e - *last_energy) / ToSeconds(period);
      *last_energy = e;
      return w;
    });
    reg.AddGauge("exp/cluster/nodes_on", [&cluster] {
      return static_cast<double>(cluster.NodesOn());
    });
    tel->StartSampler(run_start);
  }
  for (SimTime t = run_start + options.sample_period; t <= run_end;
       t += options.sample_period) {
    simulator.Schedule(t, [&, t] {
      ClusterSample s;
      s.t_s = ToSeconds(t - run_start);
      s.offered_qps = driver.OfferedQps(t);
      const double e = cluster.TotalEnergyJoules();
      s.power_w = (e - sampler_last_energy) / ToSeconds(options.sample_period);
      sampler_last_energy = e;
      s.nodes_on = cluster.NodesOn();
      for (NodeId n = 0; n < num_nodes; ++n) {
        const double ne = cluster.NodeEnergyJoules(n);
        s.node_power_w.push_back(
            (ne - sampler_last_node_e[static_cast<size_t>(n)]) /
            ToSeconds(options.sample_period));
        sampler_last_node_e[static_cast<size_t>(n)] = ne;
        s.partitions_on_node.push_back(cengine.placement().PartitionsOn(n));
        s.latency_window_ms =
            std::max(s.latency_window_ms,
                     cengine.node_engine(n).latency().WindowMeanMs());
      }
      result.series.push_back(s);
    });
  }

  simulator.RunUntil(run_end);
  if (tel != nullptr) tel->StopSampler();
  const double e1 = cluster.TotalEnergyJoules();
  DrainToCompletion(
      simulator, [&cengine] { return cengine.CompletedQueries(); },
      driver.submitted());

  result.duration_s = ToSeconds(profile.duration());
  result.energy_j = e1 - e0;
  result.avg_power_w = result.energy_j / result.duration_s;
  result.submitted = driver.submitted();
  result.completed = cengine.CompletedQueries();
  const double limit_ms = options.node_ecl.system.latency_limit_ms;
  double mean_weighted = 0.0;
  double violation_weighted = 0.0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const engine::LatencyTracker& lt = cengine.node_engine(n).latency();
    const double w = static_cast<double>(lt.completed());
    mean_weighted += w * lt.all().Mean();
    violation_weighted += w * lt.all().FractionAbove(limit_ms);
    result.p99_ms = std::max(result.p99_ms, lt.all().Percentile(99));
    result.max_ms = std::max(result.max_ms, lt.all().Max());
  }
  if (result.completed > 0) {
    mean_weighted /= static_cast<double>(result.completed);
    violation_weighted /= static_cast<double>(result.completed);
  }
  result.mean_ms = mean_weighted;
  result.violation_frac = violation_weighted;
  result.power_downs = cluster.power_downs();
  result.wakes = cluster.power_ups();
  result.node_migrations = cengine.migrations_completed();
  result.cancelled_migrations = cengine.migrations_cancelled();
  result.remote_sends = cengine.remote_sends();
  result.stale_forwards = cengine.stale_forwards();

  rig.StopEcls();
  if (tel != nullptr) result.telemetry_dump = tel->registry().Dump();
  return result;
}

}  // namespace ecldb::experiment
