#include "experiment/cluster_trace.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace ecldb::experiment {
namespace {

/// Open-loop driver for the cluster: same arrival process as
/// workload::LoadDriver, but each query enters the system at its home
/// node (partition-aware client routing — clients know the placement the
/// way the paper's clients know the socket of a partition). Work for
/// partitions that moved since the routing table was read still crosses
/// the network as a stale forward.
class ClusterLoadDriver {
 public:
  ClusterLoadDriver(sim::Simulator* simulator, engine::ClusterEngine* engine,
                    workload::Workload* workload,
                    const workload::LoadProfile* profile,
                    const workload::DriverParams& params)
      : simulator_(simulator),
        engine_(engine),
        workload_(workload),
        profile_(profile),
        params_(params),
        rng_(params.seed) {
    ECLDB_CHECK(params.capacity_qps > 0.0);
  }

  void Start() {
    start_time_ = simulator_->now();
    ScheduleNext();
  }

  int64_t submitted() const { return submitted_; }
  double OfferedQps(SimTime t) const {
    return profile_->LoadAt(t - start_time_) * params_.capacity_qps;
  }

 private:
  void ScheduleNext() {
    const SimTime rel = simulator_->now() - start_time_;
    if (rel >= profile_->duration()) return;
    const double rate = profile_->LoadAt(rel) * params_.capacity_qps;
    if (rate <= 1e-9) {
      simulator_->ScheduleAfter(Millis(50), [this] { ScheduleNext(); });
      return;
    }
    const double gap_s =
        params_.poisson ? rng_.NextExponential(rate) : 1.0 / rate;
    const SimDuration gap = std::max<SimDuration>(
        Nanos(100), static_cast<SimDuration>(gap_s * 1e9));
    simulator_->ScheduleAfter(gap, [this] {
      const SimTime t = simulator_->now() - start_time_;
      if (t < profile_->duration()) {
        const engine::QuerySpec spec = workload_->MakeQuery(rng_);
        if (!spec.work.empty()) {
          const NodeId entry =
              engine_->placement().HomeOf(spec.work.front().partition);
          engine_->Submit(entry, spec);
          ++submitted_;
        }
      }
      ScheduleNext();
    });
  }

  sim::Simulator* simulator_;
  engine::ClusterEngine* engine_;
  workload::Workload* workload_;
  const workload::LoadProfile* profile_;
  workload::DriverParams params_;
  Rng rng_;
  SimTime start_time_ = 0;
  int64_t submitted_ = 0;
};

}  // namespace

ClusterRunResult RunClusterExperiment(const ClusterWorkloadFactory& factory,
                                      const workload::LoadProfile& profile,
                                      const ClusterRunOptions& options) {
  sim::Simulator simulator;
  simulator.set_fast_forward(options.fast_forward);
  telemetry::Telemetry* const tel = options.telemetry;
  if (tel != nullptr) tel->Bind(&simulator);

  hwsim::ClusterParams cluster_params = options.cluster;
  cluster_params.telemetry = tel;
  hwsim::Cluster cluster(&simulator, cluster_params);
  const int num_nodes = cluster.num_nodes();

  engine::ClusterEngineParams engine_params = options.engine;
  engine_params.telemetry = tel;
  engine::ClusterEngine cengine(&simulator, &cluster, engine_params);

  std::unique_ptr<workload::Workload> workload =
      factory(&cengine.node_engine(0));
  ECLDB_CHECK(workload != nullptr);

  double capacity = options.capacity_qps;
  if (capacity <= 0.0) {
    for (NodeId n = 0; n < num_nodes; ++n) {
      capacity += workload::BaselineCapacityQps(
          cluster_params.nodes[static_cast<size_t>(n)].machine, *workload);
    }
  }

  // One full ECL stack per node: its socket tier sizes the node's
  // hardware, its system tier turns the node's latency into pressure.
  // In-box consolidation stays off — placement is the cluster tier's job
  // — but the park/backlog hooks are wired so parked sockets wake on
  // local backlog.
  std::vector<std::unique_ptr<ecl::EnergyControlLoop>> node_ecls;
  for (NodeId n = 0; n < num_nodes; ++n) {
    ecl::EclParams ecl_params = options.node_ecl;
    ecl_params.consolidation.enabled = false;
    ecl_params.placement_hooks = true;
    ecl_params.telemetry = tel;
    if (tel != nullptr) {
      tel->SetPathPrefix("node" + std::to_string(n) + "/");
    }
    node_ecls.push_back(std::make_unique<ecl::EnergyControlLoop>(
        &simulator, &cengine.node_engine(n), ecl_params));
  }
  if (tel != nullptr) tel->SetPathPrefix("");
  for (auto& ecl : node_ecls) ecl->Start();

  std::unique_ptr<ecl::ClusterEcl> cluster_ecl;
  if (options.cluster_ecl.enabled) {
    ecl::ClusterEclParams ce_params = options.cluster_ecl;
    ce_params.telemetry = tel;
    cluster_ecl = std::make_unique<ecl::ClusterEcl>(
        &simulator, &cengine,
        [&node_ecls](NodeId n) {
          ecl::EnergyControlLoop& loop = *node_ecls[static_cast<size_t>(n)];
          double load = 0.0;
          for (int s = 0; s < loop.num_sockets(); ++s) {
            const ecl::SocketEcl& se = loop.socket(s);
            const double peak = se.profile().PeakPerfScore();
            if (peak > 0.0) load += se.performance_level() / peak;
          }
          return load / loop.num_sockets();
        },
        [&node_ecls](NodeId n) {
          return node_ecls[static_cast<size_t>(n)]->system().pressure();
        },
        ce_params);
    cluster_ecl->SetNodeHooks(
        [&node_ecls](NodeId n) { node_ecls[static_cast<size_t>(n)]->Stop(); },
        [&node_ecls](NodeId n) { node_ecls[static_cast<size_t>(n)]->Start(); });
    cluster_ecl->Start();
  }

  // Prime every node's profiles under synthetic saturation, as the
  // single-node experiment does.
  if (options.prime_duration > 0) {
    for (NodeId n = 0; n < num_nodes; ++n) {
      cengine.node_engine(n).scheduler().SetSyntheticLoad(&workload->profile());
    }
    simulator.RunFor(options.prime_duration);
    for (NodeId n = 0; n < num_nodes; ++n) {
      cengine.node_engine(n).scheduler().SetSyntheticLoad(nullptr);
    }
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    cengine.node_engine(n).latency().ResetRunStats();
  }

  workload::DriverParams driver_params;
  driver_params.capacity_qps = capacity;
  driver_params.seed = options.driver_seed;
  ClusterLoadDriver driver(&simulator, &cengine, workload.get(), &profile,
                           driver_params);

  ClusterRunResult result;
  result.capacity_qps = capacity;
  const SimTime run_start = simulator.now();
  const double e0 = cluster.TotalEnergyJoules();
  driver.Start();

  const SimTime run_end = run_start + profile.duration();
  double sampler_last_energy = cluster.TotalEnergyJoules();
  std::vector<double> sampler_last_node_e(static_cast<size_t>(num_nodes));
  for (NodeId n = 0; n < num_nodes; ++n) {
    sampler_last_node_e[static_cast<size_t>(n)] = cluster.NodeEnergyJoules(n);
  }
  if (tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    const SimDuration period = options.sample_period;
    reg.AddGauge("exp/cluster/offered_qps", [&driver, &simulator] {
      return driver.OfferedQps(simulator.now());
    });
    auto last_energy = std::make_shared<double>(cluster.TotalEnergyJoules());
    reg.AddGauge("exp/cluster/power_w", [&cluster, last_energy, period] {
      const double e = cluster.TotalEnergyJoules();
      const double w = (e - *last_energy) / ToSeconds(period);
      *last_energy = e;
      return w;
    });
    reg.AddGauge("exp/cluster/nodes_on", [&cluster] {
      return static_cast<double>(cluster.NodesOn());
    });
    tel->StartSampler(run_start);
  }
  for (SimTime t = run_start + options.sample_period; t <= run_end;
       t += options.sample_period) {
    simulator.Schedule(t, [&, t] {
      ClusterSample s;
      s.t_s = ToSeconds(t - run_start);
      s.offered_qps = driver.OfferedQps(t);
      const double e = cluster.TotalEnergyJoules();
      s.power_w = (e - sampler_last_energy) / ToSeconds(options.sample_period);
      sampler_last_energy = e;
      s.nodes_on = cluster.NodesOn();
      for (NodeId n = 0; n < num_nodes; ++n) {
        const double ne = cluster.NodeEnergyJoules(n);
        s.node_power_w.push_back(
            (ne - sampler_last_node_e[static_cast<size_t>(n)]) /
            ToSeconds(options.sample_period));
        sampler_last_node_e[static_cast<size_t>(n)] = ne;
        s.partitions_on_node.push_back(cengine.placement().PartitionsOn(n));
        s.latency_window_ms =
            std::max(s.latency_window_ms,
                     cengine.node_engine(n).latency().WindowMeanMs());
      }
      result.series.push_back(s);
    });
  }

  simulator.RunUntil(run_end);
  if (tel != nullptr) tel->StopSampler();
  const double e1 = cluster.TotalEnergyJoules();
  // Drain until every submitted query has completed, so arms that share a
  // driver seed report equal completions no matter how much backlog each
  // policy carried past the trace end. The energy window stays
  // [run_start, run_end]; the queueing cost of a late wake shows up in the
  // latency tail, not as truncated work. Capped in case a query is ever
  // lost outright — a policy bug the completion counts then expose.
  const SimTime drain_deadline = simulator.now() + Seconds(120);
  while (cengine.CompletedQueries() < driver.submitted() &&
         simulator.now() < drain_deadline) {
    simulator.RunFor(Seconds(1));
  }

  result.duration_s = ToSeconds(profile.duration());
  result.energy_j = e1 - e0;
  result.avg_power_w = result.energy_j / result.duration_s;
  result.submitted = driver.submitted();
  result.completed = cengine.CompletedQueries();
  const double limit_ms = options.node_ecl.system.latency_limit_ms;
  double mean_weighted = 0.0;
  double violation_weighted = 0.0;
  for (NodeId n = 0; n < num_nodes; ++n) {
    const engine::LatencyTracker& lt = cengine.node_engine(n).latency();
    const double w = static_cast<double>(lt.completed());
    mean_weighted += w * lt.all().Mean();
    violation_weighted += w * lt.all().FractionAbove(limit_ms);
    result.p99_ms = std::max(result.p99_ms, lt.all().Percentile(99));
    result.max_ms = std::max(result.max_ms, lt.all().Max());
  }
  if (result.completed > 0) {
    mean_weighted /= static_cast<double>(result.completed);
    violation_weighted /= static_cast<double>(result.completed);
  }
  result.mean_ms = mean_weighted;
  result.violation_frac = violation_weighted;
  result.power_downs = cluster.power_downs();
  result.wakes = cluster.power_ups();
  result.node_migrations = cengine.migrations_completed();
  result.cancelled_migrations = cengine.migrations_cancelled();
  result.remote_sends = cengine.remote_sends();
  result.stale_forwards = cengine.stale_forwards();

  if (cluster_ecl != nullptr) cluster_ecl->Stop();
  for (auto& ecl : node_ecls) ecl->Stop();
  if (tel != nullptr) result.telemetry_dump = tel->registry().Dump();
  return result;
}

}  // namespace ecldb::experiment
