#include "experiment/drain.h"

#include <cstdio>

namespace ecldb::experiment {

bool DrainToCompletion(sim::Simulator& simulator,
                       const std::function<int64_t()>& completed,
                       int64_t submitted, SimDuration cap,
                       SimDuration no_progress_abort,
                       const std::function<std::string()>& diagnostic) {
  const SimTime deadline = simulator.now() + cap;
  int64_t last = completed();
  SimTime last_progress = simulator.now();
  while (completed() < submitted && simulator.now() < deadline) {
    simulator.RunFor(Seconds(1));
    const int64_t now_done = completed();
    if (now_done != last) {
      last = now_done;
      last_progress = simulator.now();
    } else if (no_progress_abort > 0 &&
               simulator.now() - last_progress >= no_progress_abort) {
      std::fprintf(stderr,
                   "[drain] aborting: no completion progress for %.0fs "
                   "(completed %lld of %lld, t=%.1fs)%s%s\n",
                   ToSeconds(simulator.now() - last_progress),
                   static_cast<long long>(now_done),
                   static_cast<long long>(submitted),
                   ToSeconds(simulator.now()), diagnostic ? " " : "",
                   diagnostic ? diagnostic().c_str() : "");
      return false;
    }
  }
  return completed() >= submitted;
}

}  // namespace ecldb::experiment
