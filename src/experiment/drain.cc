#include "experiment/drain.h"

namespace ecldb::experiment {

bool DrainToCompletion(sim::Simulator& simulator,
                       const std::function<int64_t()>& completed,
                       int64_t submitted, SimDuration cap) {
  const SimTime deadline = simulator.now() + cap;
  while (completed() < submitted && simulator.now() < deadline) {
    simulator.RunFor(Seconds(1));
  }
  return completed() >= submitted;
}

}  // namespace ecldb::experiment
