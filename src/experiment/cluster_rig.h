#ifndef ECLDB_EXPERIMENT_CLUSTER_RIG_H_
#define ECLDB_EXPERIMENT_CLUSTER_RIG_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "ecl/cluster_ecl.h"
#include "ecl/ecl.h"
#include "engine/cluster_engine.h"
#include "experiment/cluster_trace.h"
#include "hwsim/cluster.h"
#include "sim/simulator.h"
#include "workload/driver.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

namespace ecldb::experiment {

/// The shared cluster test rig: N machines + network, the cluster engine,
/// one full per-node ECL stack, and the cluster ECL on top — everything a
/// cluster experiment constructs before any load arrives. Extracted from
/// RunClusterExperiment so the classic trace runner and the loadgen/SLO
/// runner build byte-identical systems; construction order is load-bearing
/// (advancer and event registration order fix the simulation).
class ClusterRig {
 public:
  ClusterRig(const ClusterWorkloadFactory& factory,
             const ClusterRunOptions& options);

  /// Primes every node's energy profiles under synthetic saturation and
  /// resets the per-node latency run stats (measurement starts clean).
  void Prime();

  /// Stops the cluster ECL (if any) and every node ECL.
  void StopEcls();

  /// Entry node for one query under the options' routing mode. Draws from
  /// the entry Rng only in any-node mode, so home routing never perturbs a
  /// seeded stream.
  NodeId EntryNodeFor(const engine::QuerySpec& spec);

  /// Max over the per-node system-ECL pressures (the admission
  /// controller's cluster-scope pressure signal).
  double MaxNodePressure() const;

  sim::Simulator& simulator() { return simulator_; }
  hwsim::Cluster& cluster() { return *cluster_; }
  engine::ClusterEngine& cengine() { return *cengine_; }
  workload::Workload& workload() { return *workload_; }
  double capacity() const { return capacity_; }
  int num_nodes() const { return cluster_->num_nodes(); }
  ecl::EnergyControlLoop& node_ecl(NodeId n) {
    return *node_ecls_[static_cast<size_t>(n)];
  }
  ecl::ClusterEcl* cluster_ecl() { return cluster_ecl_.get(); }
  telemetry::Telemetry* telemetry() { return tel_; }
  const ClusterRunOptions& options() const { return options_; }

 private:
  ClusterRunOptions options_;
  sim::Simulator simulator_;
  telemetry::Telemetry* tel_ = nullptr;
  hwsim::ClusterParams cluster_params_;
  std::unique_ptr<hwsim::Cluster> cluster_;
  std::unique_ptr<engine::ClusterEngine> cengine_;
  std::unique_ptr<workload::Workload> workload_;
  double capacity_ = 0.0;
  std::vector<std::unique_ptr<ecl::EnergyControlLoop>> node_ecls_;
  std::unique_ptr<ecl::ClusterEcl> cluster_ecl_;
  Rng entry_rng_;
};

/// Open-loop driver for the cluster: same arrival process as
/// workload::LoadDriver, but each query enters the system through the
/// rig's routing mode — at its home node by default (partition-aware
/// client routing — clients know the placement the way the paper's clients
/// know the socket of a partition), or at a random powered-on node in
/// any-node mode. Work for partitions that moved since the routing table
/// was read still crosses the network as a stale forward.
class ClusterLoadDriver {
 public:
  ClusterLoadDriver(ClusterRig* rig, const workload::LoadProfile* profile,
                    const workload::DriverParams& params);

  void Start();

  int64_t submitted() const { return submitted_; }
  double OfferedQps(SimTime t) const {
    return profile_->LoadAt(t - start_time_) * params_.capacity_qps;
  }

 private:
  void ScheduleNext();

  ClusterRig* rig_;
  const workload::LoadProfile* profile_;
  workload::DriverParams params_;
  Rng rng_;
  SimTime start_time_ = 0;
  int64_t submitted_ = 0;
};

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_CLUSTER_RIG_H_
