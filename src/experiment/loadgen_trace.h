#ifndef ECLDB_EXPERIMENT_LOADGEN_TRACE_H_
#define ECLDB_EXPERIMENT_LOADGEN_TRACE_H_

#include <array>
#include <string>
#include <vector>

#include "common/types.h"
#include "experiment/cluster_trace.h"
#include "experiment/experiment.h"
#include "faultsim/fault_schedule.h"
#include "loadgen/loadgen.h"

namespace ecldb::experiment {

/// One SLO class's outcome over a run.
struct SloClassStats {
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t completed = 0;
  int64_t violations = 0;
  double mean_ms = 0.0;
  /// Latency at the class's target percentile (e.g. premium p99.9), ms.
  double tail_ms = 0.0;
  double deadline_ms = 0.0;
  double target_percentile = 0.0;
  bool slo_met = true;
};

/// One sample of the SLO-run time series. `width` is the machine's active
/// hardware threads (single-node) or powered-on nodes (cluster) — the
/// knob the ECL narrows when shedding reduces visible demand.
struct SloSample {
  double t_s = 0.0;
  double offered_qps = 0.0;
  double power_w = 0.0;
  double latency_window_ms = 0.0;
  double pressure = 0.0;
  double shed_fraction = 0.0;
  int width = 0;
};

struct SloRunResult {
  double duration_s = 0.0;
  /// Energy over the measured window [start, start + duration], joules.
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double capacity_qps = 0.0;
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t completed = 0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
  /// Typed engine failures delivered back to the client (node crashes,
  /// forward-cap drops). Conservation: submitted == completed + failed
  /// once drained.
  int64_t failed = 0;
  /// Client retry attempts re-offered through admission.
  int64_t retries = 0;
  /// Arrivals given up on (attempts exhausted or past the trace horizon).
  int64_t abandoned = 0;
  std::array<SloClassStats, loadgen::kNumSloClasses> classes;
  std::vector<SloSample> series;
  std::string telemetry_dump;
  /// False when the post-trace drain hit its cap with queries missing.
  bool drained = true;
};

struct SloRunOptions {
  /// Machine/engine/ECL construction knobs; the mode, priming, sampling
  /// and fast-forward semantics of RunLoadExperiment apply unchanged. The
  /// classic load profile is replaced by the loadgen tenants below.
  RunOptions run;
  loadgen::LoadGenParams loadgen;
  /// Summed nominal offered load (at traffic-shape multiplier 1.0) as a
  /// fraction of the all-on baseline capacity.
  double total_load = 0.5;
  /// Wires pressure-driven shedding and the shed-aware ECL feedback. Off:
  /// every arrival is admitted (the "no admission control" arm) and the
  /// system ECL runs exactly as in non-loadgen experiments.
  bool admission_enabled = true;
};

/// Runs one single-node SLO-tier experiment: the RunLoadExperiment system
/// stack, driven by the open-loop multi-tenant traffic subsystem instead
/// of a LoadProfile. Deterministic for fixed options.
SloRunResult RunSloExperiment(const WorkloadFactory& factory,
                              const SloRunOptions& options);

struct ClusterSloRunOptions {
  /// Cluster construction knobs, including entry-node routing
  /// (any_node_entry) — shared with RunClusterExperiment via ClusterRig.
  ClusterRunOptions cluster;
  loadgen::LoadGenParams loadgen;
  double total_load = 0.5;
  bool admission_enabled = true;
  /// Scripted faults, injected through a FaultInjector armed after
  /// priming. Event times are relative to measurement start (t=0 is the
  /// instant the loadgen starts), so schedules compose with any
  /// prime_duration. Empty (the default) constructs no injector: the run
  /// is byte-identical to a pre-faultsim build.
  faultsim::FaultSchedule faults;
};

/// Cluster analogue: the ClusterRig system stack under loadgen traffic.
/// Admission pressure is the max over the per-node system-ECL pressures,
/// and the shed signal feeds back into every node's system ECL.
SloRunResult RunClusterSloExperiment(const ClusterWorkloadFactory& factory,
                                     const ClusterSloRunOptions& options);

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_LOADGEN_TRACE_H_
