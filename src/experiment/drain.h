#ifndef ECLDB_EXPERIMENT_DRAIN_H_
#define ECLDB_EXPERIMENT_DRAIN_H_

#include <functional>
#include <string>

#include "common/types.h"
#include "sim/simulator.h"

namespace ecldb::experiment {

/// Runs the simulator past the trace end until every submitted query has
/// completed, so arms sharing a driver seed report equal completions no
/// matter how much backlog each policy carried past the end. Energy
/// windows are measured before draining; the queueing cost of a late wake
/// shows up in the latency tail, not as truncated work.
///
/// Two guards keep a lost query from spinning the drain forever:
///  * a no-progress watchdog: when the completion count has not moved for
///    `no_progress_abort` of virtual time, the drain aborts immediately
///    and prints a diagnostic to stderr (the completion gap, plus the
///    caller's `diagnostic()` backlog description when provided) — lost
///    work surfaces as an actionable message, not a silent timeout. The
///    default window comfortably covers the longest legitimate stall (a
///    20 s node boot plus migration settling).
///  * the hard `cap` (default 120 s) as before.
/// Returns true when fully drained.
bool DrainToCompletion(sim::Simulator& simulator,
                       const std::function<int64_t()>& completed,
                       int64_t submitted,
                       SimDuration cap = Seconds(120),
                       SimDuration no_progress_abort = Seconds(45),
                       const std::function<std::string()>& diagnostic =
                           nullptr);

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_DRAIN_H_
