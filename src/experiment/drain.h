#ifndef ECLDB_EXPERIMENT_DRAIN_H_
#define ECLDB_EXPERIMENT_DRAIN_H_

#include <functional>

#include "common/types.h"
#include "sim/simulator.h"

namespace ecldb::experiment {

/// Runs the simulator past the trace end until every submitted query has
/// completed, so arms sharing a driver seed report equal completions no
/// matter how much backlog each policy carried past the end. Energy
/// windows are measured before draining; the queueing cost of a late wake
/// shows up in the latency tail, not as truncated work. Capped (default
/// 120 s) in case a query is ever lost outright — a policy bug the
/// completion counts then expose. Returns true when fully drained.
bool DrainToCompletion(sim::Simulator& simulator,
                       const std::function<int64_t()>& completed,
                       int64_t submitted,
                       SimDuration cap = Seconds(120));

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_DRAIN_H_
