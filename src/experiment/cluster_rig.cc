#include "experiment/cluster_rig.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace ecldb::experiment {

ClusterRig::ClusterRig(const ClusterWorkloadFactory& factory,
                       const ClusterRunOptions& options)
    : options_(options), entry_rng_(options.entry_seed) {
  simulator_.set_fast_forward(options_.fast_forward);
  tel_ = options_.telemetry;
  if (tel_ != nullptr) tel_->Bind(&simulator_);

  cluster_params_ = options_.cluster;
  cluster_params_.telemetry = tel_;
  cluster_ = std::make_unique<hwsim::Cluster>(&simulator_, cluster_params_);
  const int num_nodes = cluster_->num_nodes();

  engine::ClusterEngineParams engine_params = options_.engine;
  engine_params.telemetry = tel_;
  cengine_ = std::make_unique<engine::ClusterEngine>(&simulator_,
                                                     cluster_.get(),
                                                     engine_params);

  workload_ = factory(&cengine_->node_engine(0));
  ECLDB_CHECK(workload_ != nullptr);

  capacity_ = options_.capacity_qps;
  if (capacity_ <= 0.0) {
    for (NodeId n = 0; n < num_nodes; ++n) {
      capacity_ += workload::BaselineCapacityQps(
          cluster_params_.nodes[static_cast<size_t>(n)].machine, *workload_);
    }
  }

  // One full ECL stack per node: its socket tier sizes the node's
  // hardware, its system tier turns the node's latency into pressure.
  // In-box consolidation stays off — placement is the cluster tier's job
  // — but the park/backlog hooks are wired so parked sockets wake on
  // local backlog.
  for (NodeId n = 0; n < num_nodes; ++n) {
    ecl::EclParams ecl_params = options_.node_ecl;
    ecl_params.consolidation.enabled = false;
    ecl_params.placement_hooks = true;
    ecl_params.telemetry = tel_;
    if (tel_ != nullptr) {
      tel_->SetPathPrefix("node" + std::to_string(n) + "/");
    }
    node_ecls_.push_back(std::make_unique<ecl::EnergyControlLoop>(
        &simulator_, &cengine_->node_engine(n), ecl_params));
  }
  if (tel_ != nullptr) tel_->SetPathPrefix("");
  for (auto& ecl : node_ecls_) ecl->Start();

  if (options_.cluster_ecl.enabled) {
    ecl::ClusterEclParams ce_params = options_.cluster_ecl;
    ce_params.telemetry = tel_;
    auto& node_ecls = node_ecls_;
    cluster_ecl_ = std::make_unique<ecl::ClusterEcl>(
        &simulator_, cengine_.get(),
        [&node_ecls](NodeId n) {
          ecl::EnergyControlLoop& loop = *node_ecls[static_cast<size_t>(n)];
          double load = 0.0;
          for (int s = 0; s < loop.num_sockets(); ++s) {
            const ecl::SocketEcl& se = loop.socket(s);
            const double peak = se.profile().PeakPerfScore();
            if (peak > 0.0) load += se.performance_level() / peak;
          }
          return load / loop.num_sockets();
        },
        [&node_ecls](NodeId n) {
          return node_ecls[static_cast<size_t>(n)]->system().pressure();
        },
        ce_params);
    cluster_ecl_->SetNodeHooks(
        [&node_ecls](NodeId n) { node_ecls[static_cast<size_t>(n)]->Stop(); },
        [&node_ecls](NodeId n) { node_ecls[static_cast<size_t>(n)]->Start(); });
    cluster_ecl_->Start();
  }
}

void ClusterRig::Prime() {
  // Prime every node's profiles under synthetic saturation, as the
  // single-node experiment does.
  if (options_.prime_duration > 0) {
    for (NodeId n = 0; n < num_nodes(); ++n) {
      cengine_->node_engine(n).scheduler().SetSyntheticLoad(
          &workload_->profile());
    }
    simulator_.RunFor(options_.prime_duration);
    for (NodeId n = 0; n < num_nodes(); ++n) {
      cengine_->node_engine(n).scheduler().SetSyntheticLoad(nullptr);
    }
  }
  for (NodeId n = 0; n < num_nodes(); ++n) {
    cengine_->node_engine(n).latency().ResetRunStats();
  }
}

void ClusterRig::StopEcls() {
  if (cluster_ecl_ != nullptr) cluster_ecl_->Stop();
  for (auto& ecl : node_ecls_) ecl->Stop();
}

NodeId ClusterRig::EntryNodeFor(const engine::QuerySpec& spec) {
  const NodeId home =
      cengine_->placement().HomeOf(spec.work.front().partition);
  if (!options_.any_node_entry) return home;
  // Placement-oblivious client: uniform over the powered-on nodes (a
  // front-end balancer only knows liveness, not placement).
  const int on = cluster_->NodesOn();
  if (on <= 0) return home;
  int pick = static_cast<int>(entry_rng_.NextBounded(
      static_cast<uint64_t>(on)));
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (!cluster_->IsOn(n)) continue;
    if (pick == 0) return n;
    --pick;
  }
  return home;
}

double ClusterRig::MaxNodePressure() const {
  double p = 0.0;
  for (const auto& ecl : node_ecls_) {
    p = std::max(p, ecl->system().pressure());
  }
  return p;
}

ClusterLoadDriver::ClusterLoadDriver(ClusterRig* rig,
                                     const workload::LoadProfile* profile,
                                     const workload::DriverParams& params)
    : rig_(rig), profile_(profile), params_(params), rng_(params.seed) {
  ECLDB_CHECK(rig != nullptr && profile != nullptr);
  ECLDB_CHECK(params.capacity_qps > 0.0);
}

void ClusterLoadDriver::Start() {
  start_time_ = rig_->simulator().now();
  ScheduleNext();
}

void ClusterLoadDriver::ScheduleNext() {
  sim::Simulator& simulator = rig_->simulator();
  const SimTime rel = simulator.now() - start_time_;
  if (rel >= profile_->duration()) return;
  const double rate = profile_->LoadAt(rel) * params_.capacity_qps;
  if (rate <= 1e-9) {
    simulator.ScheduleAfter(Millis(50), [this] { ScheduleNext(); });
    return;
  }
  const double gap_s =
      params_.poisson ? rng_.NextExponential(rate) : 1.0 / rate;
  const SimDuration gap = std::max<SimDuration>(
      Nanos(100), static_cast<SimDuration>(gap_s * 1e9));
  simulator.ScheduleAfter(gap, [this] {
    const SimTime t = rig_->simulator().now() - start_time_;
    if (t < profile_->duration()) {
      const engine::QuerySpec spec = rig_->workload().MakeQuery(rng_);
      if (!spec.work.empty()) {
        rig_->cengine().Submit(rig_->EntryNodeFor(spec), spec);
        ++submitted_;
      }
    }
    ScheduleNext();
  });
}

}  // namespace ecldb::experiment
