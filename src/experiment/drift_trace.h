#ifndef ECLDB_EXPERIMENT_DRIFT_TRACE_H_
#define ECLDB_EXPERIMENT_DRIFT_TRACE_H_

// Recurring-drift trace for the learned-profile-maintenance evaluation
// (ROADMAP item 3; ablation in bench/ablation_learned_profiles.cc and the
// epsilon-regression test in tests/ecl_predictor_test.cc).
//
// The Fig. 15 experiment switches the workload once, which any predictor
// must pay for in full — the first sight of a work profile is all misses.
// Real systems drift between a small set of recurring profiles (day/night,
// batch windows), so this trace alternates between the indexed and the
// non-indexed key-value benchmark: prime on A, then phases B, A, B, ...
// at fixed load. On every revisit a learned predictor can seed the
// invalidated profile from its cache and only measure the few
// configurations it is still ignorant about, while plain multiplexed
// adaptation re-measures the whole profile every time.

#include <string>
#include <vector>

#include "common/types.h"
#include "ecl/profile_predictor.h"
#include "telemetry/telemetry.h"

namespace ecldb::experiment {

struct DriftTraceParams {
  /// Profile maintenance of the arm (Fig. 15 naming): online measurement
  /// and multiplexed reevaluation.
  bool online = true;
  bool multiplexed = true;
  /// Learned predictor config; `predictor.enabled = false` reproduces the
  /// plain multiplexed arm.
  ecl::ProfilePredictorParams predictor;
  /// Synthetic-saturation priming on the indexed workload (profiles start
  /// accurate for the OLD workload, as in Fig. 15).
  SimDuration prime = Seconds(30);
  /// Number of workload switches after the prime; phase i runs the
  /// non-indexed scan workload for even i, the indexed one for odd i.
  int num_switch_phases = 3;
  SimDuration phase_len = Seconds(40);
  /// Offered load as a fraction of the all-on baseline capacity. The
  /// default keeps both workloads inside the band where online
  /// measurements are reproducible interval-to-interval: much higher and
  /// the scan workload saturates (measured throughput then tracks the
  /// swinging sweep configurations, re-flagging drift forever), much
  /// lower and race-to-idle duty cycles starve the measurements.
  double load = 0.4;
  /// Tail window at the end of each phase: adaptation should long be over,
  /// so tail energy/latency measure the *quality* of the converged
  /// configuration (the epsilon-regression bound).
  SimDuration tail = Seconds(10);
  /// Learn-cache text (SerializeLearnCache) loaded into every socket's
  /// predictor after priming — the "warm predictor" arm, modeling a
  /// restart that kept its cache alongside the serialized profile.
  std::string prime_learn_cache;
  /// Optional telemetry context; bound to the run's simulator and
  /// propagated through machine, engine, and ECL. Must outlive the call;
  /// the deterministic dump is captured in the result.
  telemetry::Telemetry* telemetry = nullptr;
};

struct DriftTracePhase {
  std::string workload;
  /// Seconds (1 s resolution) from the switch until socket 0's stale set
  /// drained — the multiplexed adaptation time. -1 if it never drained
  /// (or drift was never flagged, e.g. the static arm).
  double adapt_s = -1.0;
  /// Multiplexed evaluations socket 0 spent during the phase.
  int64_t evals = 0;
  /// Configurations seeded from predictions on socket 0 (0 without the
  /// predictor).
  int64_t seeded = 0;
  double energy_j = 0.0;
  double tail_energy_j = 0.0;
  double tail_p99_ms = 0.0;
  std::string best_config;
};

struct DriftTraceResult {
  std::vector<DriftTracePhase> phases;
  double total_energy_j = 0.0;
  /// Per-second average power over all phases (prime excluded).
  std::vector<double> power_w;
  /// Socket 0's serialized learn cache at the end of the run (empty
  /// without the predictor) — feed it to another run's
  /// `prime_learn_cache` for the warm-predictor arm.
  std::string learn_cache;
  /// Deterministic registry dump (empty unless telemetry was set).
  std::string telemetry_dump;
};

/// Runs the trace on a fresh machine + engine. Deterministic for fixed
/// params.
DriftTraceResult RunDriftTrace(const DriftTraceParams& params);

}  // namespace ecldb::experiment

#endif  // ECLDB_EXPERIMENT_DRIFT_TRACE_H_
