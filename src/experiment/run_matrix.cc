#include "experiment/run_matrix.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"

namespace ecldb::experiment {

int HardwareJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ParseJobs(int argc, char** argv) {
  int jobs = HardwareJobs();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    }
    if (value != nullptr && *value != '\0') {
      jobs = std::atoi(value);
    }
  }
  return std::clamp(jobs, 1, 256);
}

void RunMatrix(int num_arms, int jobs, const std::function<void(int)>& arm) {
  ECLDB_CHECK(num_arms >= 0);
  ECLDB_CHECK(jobs >= 1);
  if (num_arms == 0) return;
  const int workers = std::min(jobs, num_arms);
  if (workers == 1) {
    for (int i = 0; i < num_arms; ++i) arm(i);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_arms) return;
        arm(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace ecldb::experiment
