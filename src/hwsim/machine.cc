#include "hwsim/machine.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace ecldb::hwsim {

Machine::Machine(sim::Simulator* simulator, const MachineParams& params)
    : simulator_(simulator),
      params_(params),
      power_model_(params.topology, params.power),
      bandwidth_model_(params.bandwidth),
      perf_model_(params.topology, bandwidth_model_, params.perf),
      firmware_(params.topology, params.freqs, params.firmware),
      rapl_(params.topology.num_sockets, params.rapl),
      counters_(params.topology),
      requested_(MachineConfig::Idle(params.topology)),
      effective_(requested_),
      loads_(static_cast<size_t>(params.topology.total_threads())),
      ops_credit_(static_cast<size_t>(params.topology.total_threads()), 0.0),
      current_rate_(static_cast<size_t>(params.topology.total_threads()), 0.0),
      instant_power_(static_cast<size_t>(params.topology.num_sockets)),
      instant_bandwidth_(static_cast<size_t>(params.topology.num_sockets), 0.0),
      idle_since_(static_cast<size_t>(params.topology.num_sockets), 0),
      polled_instr_(static_cast<size_t>(params.topology.num_sockets), 0.0),
      dram_bytes_(static_cast<size_t>(params.topology.num_sockets), 0.0),
      cached_poll_rate_(static_cast<size_t>(params.topology.num_sockets), 0.0),
      cached_ops_rate_(static_cast<size_t>(params.topology.total_threads()), 0.0),
      socket_busy_scratch_(static_cast<size_t>(params.topology.num_sockets), false),
      socket_scale_scratch_(static_cast<size_t>(params.topology.num_sockets), 1.0) {
  ECLDB_CHECK(simulator_ != nullptr);
  sim::Advancer advancer;
  advancer.advance = [this](SimTime t0, SimTime t1) { Advance(t0, t1); };
  advancer.stationary_until = [this](SimTime now) { return StationaryUntil(now); };
  advancer.fast_forward = [this](SimTime t0, SimTime t1, SimDuration slice) {
    FastForward(t0, t1, slice);
  };
  simulator_->RegisterAdvancer(std::move(advancer));
}

void Machine::ApplySocketConfig(SocketId socket, SocketConfig config) {
  ECLDB_CHECK(static_cast<int>(config.thread_active.size()) ==
              params_.topology.threads_per_socket());
  ECLDB_CHECK(static_cast<int>(config.core_freq_ghz.size()) ==
              params_.topology.cores_per_socket);
  config.SnapToTable(params_.freqs);
  firmware_.NotifyConfigWrite(socket, config, simulator_->now());
  requested_.sockets[static_cast<size_t>(socket)] = std::move(config);
  pending_stall_ += params_.config_apply_latency;
  ++config_writes_;
  dirty_ = true;
}

void Machine::ApplyMachineConfig(const MachineConfig& config) {
  ECLDB_CHECK(static_cast<int>(config.sockets.size()) ==
              params_.topology.num_sockets);
  for (SocketId s = 0; s < params_.topology.num_sockets; ++s) {
    ApplySocketConfig(s, config.sockets[static_cast<size_t>(s)]);
  }
}

void Machine::SetThreadLoad(HwThreadId thread, const WorkProfile* profile,
                            double intensity) {
  ECLDB_DCHECK(thread >= 0 && thread < params_.topology.total_threads());
  const double clamped = std::clamp(intensity, 0.0, 1.0);
  ThreadLoad& cur = loads_[static_cast<size_t>(thread)];
  // The scheduler re-offers unchanged loads every slice; only actual
  // changes invalidate the cached solution.
  if (cur.profile == profile && cur.intensity == clamped) return;
  cur = ThreadLoad{profile, clamped};
  dirty_ = true;
}

void Machine::ClearThreadLoads() {
  for (ThreadLoad& l : loads_) {
    if (l.profile != nullptr || l.intensity != 0.0) dirty_ = true;
    l = ThreadLoad{};
  }
}

double Machine::TakeCompletedOps(HwThreadId thread) {
  double& credit = ops_credit_[static_cast<size_t>(thread)];
  const double taken = credit;
  credit = 0.0;
  return taken;
}

double Machine::CurrentRate(HwThreadId thread) const {
  return current_rate_[static_cast<size_t>(thread)];
}

double Machine::TotalEnergyJoules() const {
  double sum = 0.0;
  for (SocketId s = 0; s < params_.topology.num_sockets; ++s) {
    sum += rapl_.ExactEnergyJoules(s, RaplDomain::kPackage);
    sum += rapl_.ExactEnergyJoules(s, RaplDomain::kDram);
  }
  return sum;
}

void Machine::SetRaplDropout(bool dropped) {
  if (dropped == rapl_dropout_) return;
  if (dropped) {
    // Snapshot the published counters: every read during the dropout
    // returns these frozen values (deltas over the outage are zero).
    const int sockets = params_.topology.num_sockets;
    rapl_frozen_.assign(static_cast<size_t>(sockets) * kNumRaplDomains, 0);
    for (SocketId s = 0; s < sockets; ++s) {
      for (int d = 0; d < kNumRaplDomains; ++d) {
        rapl_frozen_[static_cast<size_t>(s) * kNumRaplDomains +
                     static_cast<size_t>(d)] =
            rapl_.ReadEnergyUj(s, static_cast<RaplDomain>(d));
      }
    }
  }
  rapl_dropout_ = dropped;
}

double Machine::InstantPkgPowerW(SocketId socket) const {
  return instant_power_[static_cast<size_t>(socket)].pkg_w;
}

double Machine::InstantDramPowerW(SocketId socket) const {
  return instant_power_[static_cast<size_t>(socket)].dram_w;
}

double Machine::InstantRaplPowerW() const {
  double sum = 0.0;
  for (const PowerBreakdown& p : instant_power_) sum += p.total();
  return sum;
}

double Machine::InstantPsuPowerW() const {
  return power_model_.PsuPowerW(InstantRaplPowerW());
}

double Machine::SocketBandwidthGbps(SocketId socket) const {
  return instant_bandwidth_[static_cast<size_t>(socket)];
}

namespace {
const char* const kCstateName[] = {"active", "shallow_idle", "deep_idle"};
}  // namespace

void Machine::AttachTelemetry(telemetry::Telemetry* telemetry) {
  ECLDB_CHECK(telemetry != nullptr);
  ECLDB_CHECK(telemetry_ == nullptr);
  telemetry_ = telemetry;
  telemetry::MetricRegistry& reg = telemetry->registry();
  const int n = params_.topology.num_sockets;

  rapl_reads_ = reg.AddCounter("hwsim/rapl_reads");
  reg.AddCounterFn("hwsim/config_writes", [this] { return config_writes_; });

  socket_lane_.assign(static_cast<size_t>(n), 0);
  cstate_.assign(static_cast<size_t>(n), 0);
  cstate_since_.assign(static_cast<size_t>(n), telemetry->now());
  residency_ns_.assign(static_cast<size_t>(n) * 3, telemetry::Counter());
  last_uncore_ghz_.assign(static_cast<size_t>(n), -1.0);

  for (SocketId s = 0; s < n; ++s) {
    const std::string base = "hwsim/socket" + std::to_string(s) + "/";
    reg.AddGauge(base + "pkg_power_w", [this, s] { return InstantPkgPowerW(s); });
    reg.AddGauge(base + "dram_power_w",
                 [this, s] { return InstantDramPowerW(s); });
    reg.AddGauge(base + "bandwidth_gbps",
                 [this, s] { return SocketBandwidthGbps(s); });
    reg.AddCounterFn(base + "instructions", [this, s] {
      return static_cast<int64_t>(counters_.ReadSocket(s));
    });
    reg.AddCounterFn(base + "polled_instructions", [this, s] {
      return static_cast<int64_t>(ReadSocketPolledInstructions(s));
    });
    for (int st = 0; st < 3; ++st) {
      residency_ns_[static_cast<size_t>(s) * 3 + static_cast<size_t>(st)] =
          reg.AddCounter(base + "residency_" + kCstateName[st] + "_ns");
    }
    socket_lane_[static_cast<size_t>(s)] =
        telemetry->trace().RegisterLane("hwsim/socket" + std::to_string(s));
  }
}

void Machine::Advance(SimTime t0, SimTime t1) {
  // A slice whose inputs are unchanged since the cached solve, that has no
  // pending stall, and that starts before the next firmware/C-state time
  // boundary replays the cached solution bit-identically.
  if (!dirty_ && cache_valid_ && pending_stall_ == 0 && t0 < next_boundary_) {
    IntegrateSlice(t0, t1);
    return;
  }
  SolveSlice(t0, t1);
}

SimTime Machine::StationaryUntil(SimTime now) const {
  if (dirty_ || !cache_valid_ || pending_stall_ > 0) return now;
  return next_boundary_;
}

void Machine::FastForward(SimTime t0, SimTime t1, SimDuration slice) {
  ECLDB_DCHECK(!dirty_ && cache_valid_ && pending_stall_ == 0);
  SimTime cur = t0;
  while (cur < t1) {
    const SimTime end = std::min(t1, cur + slice);
    IntegrateSlice(cur, end);
    cur = end;
  }
}

void Machine::IntegrateSlice(SimTime t0, SimTime t1) {
  const SimDuration dt = t1 - t0;
  ECLDB_DCHECK(dt > 0);
  const Topology& topo = params_.topology;
  const double dt_s = ToSeconds(dt);

  firmware_.AdvanceBudget(dt);
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    const auto idx = static_cast<size_t>(s);
    const PowerBreakdown& p = instant_power_[idx];
    rapl_.AddEnergy(s, RaplDomain::kPackage, p.pkg_w * dt_s, t0, t1);
    rapl_.AddEnergy(s, RaplDomain::kDram, p.dram_w * dt_s, t0, t1);
    // Mirrors SolveSlice's `poll_sum * dt_s * work_frac` with the cached
    // per-socket sum and work_frac == 1 — bit-identical accumulation.
    polled_instr_[idx] += cached_poll_rate_[idx] * dt_s;
    // Mirrors SolveSlice's bandwidth integration with the cached
    // (work_frac-scaled) bandwidth — bit-identical for a clean slice.
    dram_bytes_[idx] += instant_bandwidth_[idx] * 1e9 * dt_s;
  }
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    const auto idx = static_cast<size_t>(t);
    counters_.AddInstructions(t, solved_.threads[idx].instr_per_sec * dt_s);
    const ThreadLoad& l = loads_[idx];
    if (l.profile != nullptr && l.intensity > 0.0) {
      ops_credit_[idx] += cached_ops_rate_[idx] * dt_s;
    }
  }
}

void Machine::SolveSlice(SimTime t0, SimTime t1) {
  const SimDuration dt = t1 - t0;
  ECLDB_DCHECK(dt > 0);
  const Topology& topo = params_.topology;

  // Which sockets currently have work offered (drives auto-UFS) and what
  // dynamic-power scale the mix has (drives the thermal turbo budget).
  std::vector<bool>& socket_busy = socket_busy_scratch_;
  std::vector<double>& socket_scale = socket_scale_scratch_;
  socket_busy.assign(static_cast<size_t>(topo.num_sockets), false);
  socket_scale.assign(static_cast<size_t>(topo.num_sockets), 1.0);
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    const ThreadLoad& l = loads_[static_cast<size_t>(t)];
    if (l.profile != nullptr && l.intensity > 0.0) {
      const auto s = static_cast<size_t>(topo.SocketOfThread(t));
      socket_busy[s] = true;
      socket_scale[s] = std::max(socket_scale[s], l.profile->power_scale);
    }
  }

  effective_ = firmware_.Resolve(requested_, socket_busy, socket_scale, t0, dt);
  perf_model_.Solve(effective_, loads_, &solved_);
  const SolveResult& solved = solved_;

  // Configuration-write stall: a fraction of this slice is lost to P-/C-
  // state transitions (microseconds on real hardware). At most half of a
  // slice stalls; the remainder carries over to subsequent slices.
  const SimDuration stall_now =
      std::min(pending_stall_, static_cast<SimDuration>(dt / 2));
  const double stall_frac =
      static_cast<double>(stall_now) / static_cast<double>(dt);
  pending_stall_ -= stall_now;
  const double work_frac = 1.0 - stall_frac;
  const double dt_s = ToSeconds(dt);

  const bool machine_idle = requested_.AllIdle();
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    const auto idx = static_cast<size_t>(s);
    // C-state depth tracking: a socket reaches the deep state only after
    // c6_promotion of uninterrupted idleness.
    const bool socket_idle = !requested_.sockets[idx].AnyActive();
    if (!socket_idle) {
      idle_since_[idx] = kSimTimeNever;
    } else if (idle_since_[idx] == kSimTimeNever) {
      idle_since_[idx] = t0;
    }
    SocketActivity act;
    act.busy_fraction = solved.socket_busy_fraction[idx] * work_frac;
    act.bandwidth_gbps = solved.socket_bandwidth_gbps[idx] * work_frac;
    act.power_scale = solved.socket_power_scale[idx];
    act.uncore_halted = machine_idle;
    act.shallow_idle = socket_idle && (t0 - idle_since_[idx] < params_.c6_promotion);
    const PowerBreakdown p =
        power_model_.SocketPower(s, effective_.sockets[idx], act);
    instant_power_[idx] = p;
    instant_bandwidth_[idx] = act.bandwidth_gbps;
    dram_bytes_[idx] += act.bandwidth_gbps * 1e9 * dt_s;
    rapl_.AddEnergy(s, RaplDomain::kPackage, p.pkg_w * dt_s, t0, t1);
    rapl_.AddEnergy(s, RaplDomain::kDram, p.dram_w * dt_s, t0, t1);

    if (telemetry_ != nullptr) {
      // C-state residency: close the previous period on a depth change.
      const int state = socket_idle ? (act.shallow_idle ? 1 : 2) : 0;
      if (state != cstate_[idx]) {
        const int prev = cstate_[idx];
        residency_ns_[idx * 3 + static_cast<size_t>(prev)].Add(
            t0 - cstate_since_[idx]);
        telemetry_->trace().Span(socket_lane_[idx], "hwsim", kCstateName[prev],
                                 cstate_since_[idx], t0);
        cstate_[idx] = state;
        cstate_since_[idx] = t0;
      }
      const double unc = effective_.sockets[idx].uncore_freq_ghz;
      if (unc != last_uncore_ghz_[idx]) {
        telemetry_->trace().Instant(
            socket_lane_[idx], "hwsim", "uncore_freq_change", t0,
            "\"uncore_ghz\":" + telemetry::JsonNumber(unc));
        last_uncore_ghz_[idx] = unc;
      }
    }
  }

  std::fill(cached_poll_rate_.begin(), cached_poll_rate_.end(), 0.0);
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    const auto idx = static_cast<size_t>(t);
    const ThreadRate& r = solved.threads[idx];
    counters_.AddInstructions(t, r.instr_per_sec * dt_s * work_frac);
    cached_poll_rate_[static_cast<size_t>(topo.SocketOfThread(t))] +=
        r.poll_instr_per_sec;
    current_rate_[idx] = r.ops_per_sec;
    const ThreadLoad& l = loads_[idx];
    if (l.profile != nullptr && l.intensity > 0.0) {
      ops_credit_[idx] += r.ops_per_sec * l.intensity * dt_s * work_frac;
      cached_ops_rate_[idx] = r.ops_per_sec * l.intensity;
    } else {
      cached_ops_rate_[idx] = 0.0;
    }
  }
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    polled_instr_[static_cast<size_t>(s)] +=
        cached_poll_rate_[static_cast<size_t>(s)] * dt_s * work_frac;
  }

  // Refresh the steady-state cache: the just-solved slice describes every
  // following slice until an input changes or a time boundary is reached.
  dirty_ = false;
  cache_valid_ = (stall_frac == 0.0);
  SimTime boundary = firmware_.next_change();
  for (SocketId s = 0; s < topo.num_sockets; ++s) {
    const auto idx = static_cast<size_t>(s);
    if (idle_since_[idx] != kSimTimeNever &&
        t0 - idle_since_[idx] < params_.c6_promotion) {
      boundary = std::min(boundary, idle_since_[idx] + params_.c6_promotion);
    }
  }
  next_boundary_ = boundary;
}

}  // namespace ecldb::hwsim
