#include "hwsim/perf_counters.h"

#include "common/check.h"

namespace ecldb::hwsim {

PerfCounters::PerfCounters(const Topology& topo)
    : topo_(topo), instr_(static_cast<size_t>(topo.total_threads()), 0.0) {}

void PerfCounters::AddInstructions(HwThreadId thread, double instructions) {
  ECLDB_DCHECK(instructions >= 0.0);
  instr_[static_cast<size_t>(thread)] += instructions;
}

uint64_t PerfCounters::ReadThread(HwThreadId thread) const {
  return static_cast<uint64_t>(instr_[static_cast<size_t>(thread)]);
}

uint64_t PerfCounters::ReadSocket(SocketId socket) const {
  double sum = 0.0;
  for (int lt = 0; lt < topo_.threads_per_socket(); ++lt) {
    sum += instr_[static_cast<size_t>(socket * topo_.threads_per_socket() + lt)];
  }
  return static_cast<uint64_t>(sum);
}

}  // namespace ecldb::hwsim
