#ifndef ECLDB_HWSIM_RAPL_H_
#define ECLDB_HWSIM_RAPL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ecldb::hwsim {

/// RAPL measurement domains available per socket on Haswell-EP. The paper
/// measures the package domain (cores and caches) and the memory controller
/// (DRAM) domain (Section 2).
enum class RaplDomain { kPackage = 0, kDram = 1 };

inline constexpr int kNumRaplDomains = 2;

struct RaplParams {
  /// Energy counter LSB in microjoules (Haswell: 1/2^16 J ≈ 15.26 uJ).
  double unit_uj = 15.26;
  /// Counters publish at this interval; reads return the value at the most
  /// recent publish boundary. This quantization is what makes short
  /// measurement windows inaccurate (paper Fig. 12).
  SimDuration update_interval = Millis(1);
  /// Deterministic pseudo-random sampling jitter per publish, microjoules.
  /// Sized so that power measured over ~100 ms windows is accurate to ~2 %
  /// while shorter windows degrade quickly — the behaviour the paper's
  /// meta calibration discovers (Fig. 12).
  double jitter_uj = 20'000.0;
};

/// Simulated RAPL energy counters: exact energy integration internally,
/// with realistically imperfect observability (publish quantization, LSB
/// truncation, sampling jitter).
class RaplCounters {
 public:
  RaplCounters(int num_sockets, const RaplParams& params);

  /// Integrates `joules` of energy consumed uniformly over (t0, t1].
  void AddEnergy(SocketId socket, RaplDomain domain, double joules,
                 SimTime t0, SimTime t1);

  /// Reads the published (quantized, jittered) counter in microjoules —
  /// what software sees through the MSR interface.
  uint64_t ReadEnergyUj(SocketId socket, RaplDomain domain) const;

  /// Ground-truth cumulative energy in joules (for tests and for the
  /// "attached power meter" views of the benches).
  double ExactEnergyJoules(SocketId socket, RaplDomain domain) const;

  const RaplParams& params() const { return params_; }

 private:
  struct Counter {
    double exact_j = 0.0;       // ground truth, up to now
    double published_j = 0.0;   // value at the last publish boundary
    int64_t boundary_index = 0; // index of the last publish boundary
  };

  Counter& At(SocketId s, RaplDomain d) {
    return counters_[static_cast<size_t>(s) * kNumRaplDomains +
                     static_cast<size_t>(d)];
  }
  const Counter& At(SocketId s, RaplDomain d) const {
    return counters_[static_cast<size_t>(s) * kNumRaplDomains +
                     static_cast<size_t>(d)];
  }

  RaplParams params_;
  std::vector<Counter> counters_;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_RAPL_H_
