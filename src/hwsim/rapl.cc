#include "hwsim/rapl.h"

#include <cmath>

#include "common/check.h"

namespace ecldb::hwsim {
namespace {

/// Deterministic hash-based jitter in [-1, 1) for a publish boundary, so
/// repeated reads observe the same value and runs are reproducible.
double BoundaryJitter(SocketId s, RaplDomain d, int64_t boundary) {
  uint64_t x = static_cast<uint64_t>(boundary) * 0x9e3779b97f4a7c15ull;
  x ^= static_cast<uint64_t>(s) << 32;
  x ^= static_cast<uint64_t>(d) << 40;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<double>(x >> 11) * (2.0 / 9007199254740992.0) - 1.0;
}

}  // namespace

RaplCounters::RaplCounters(int num_sockets, const RaplParams& params)
    : params_(params),
      counters_(static_cast<size_t>(num_sockets) * kNumRaplDomains) {
  ECLDB_CHECK(num_sockets > 0);
  ECLDB_CHECK(params_.update_interval > 0);
}

void RaplCounters::AddEnergy(SocketId socket, RaplDomain domain, double joules,
                             SimTime t0, SimTime t1) {
  ECLDB_DCHECK(t1 > t0);
  ECLDB_DCHECK(joules >= 0.0);
  Counter& c = At(socket, domain);
  // Publish boundary: the latest multiple of update_interval that is <= t1.
  const int64_t boundary = t1 / params_.update_interval;
  if (boundary > c.boundary_index) {
    const SimTime boundary_time = boundary * params_.update_interval;
    // Energy accrues uniformly in (t0, t1]; publish the prefix up to the
    // boundary (boundary_time may equal t1).
    const double frac =
        static_cast<double>(boundary_time - t0) / static_cast<double>(t1 - t0);
    c.published_j = c.exact_j + joules * std::min(1.0, std::max(0.0, frac));
    c.boundary_index = boundary;
  }
  c.exact_j += joules;
}

uint64_t RaplCounters::ReadEnergyUj(SocketId socket, RaplDomain domain) const {
  const Counter& c = At(socket, domain);
  double uj = c.published_j * 1e6;
  uj += BoundaryJitter(socket, domain, c.boundary_index) * params_.jitter_uj;
  if (uj < 0.0) uj = 0.0;
  // LSB truncation of the hardware counter.
  const double units = std::floor(uj / params_.unit_uj);
  return static_cast<uint64_t>(units * params_.unit_uj);
}

double RaplCounters::ExactEnergyJoules(SocketId socket, RaplDomain domain) const {
  return At(socket, domain).exact_j;
}

}  // namespace ecldb::hwsim
