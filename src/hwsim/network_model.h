#ifndef ECLDB_HWSIM_NETWORK_MODEL_H_
#define ECLDB_HWSIM_NETWORK_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ecldb::hwsim {

/// Calibration constants of the inter-node interconnect, mirroring the
/// shape of BandwidthModelParams one level up: where the bandwidth model
/// prices intra-machine DRAM/QPI traffic, this prices the rack network
/// (10 GbE-class by default — an order of magnitude below QPI, with
/// microsecond instead of nanosecond latency).
struct NetworkModelParams {
  /// Per-node NIC line rate in Gbit/s (both directions share it).
  double link_gbps = 10.0;
  /// Fixed per-transfer latency (switch + stack traversal), microseconds.
  double base_latency_us = 50.0;
  /// Modeled wire size of a control/descriptor message (a remote query
  /// submission or forwarding hop), bytes.
  double message_bytes = 2048.0;
};

/// Bandwidth/latency-limited inter-node transfers. Each node's NIC is a
/// serial resource: concurrent transfers touching the same endpoint
/// queue behind each other (busy-until bookkeeping per node), so a bulk
/// shard copy delays the control messages of the same node — the
/// cross-node analogue of the QPI cap inside a machine. Deterministic:
/// completion times are a pure function of the reservation sequence.
class NetworkModel {
 public:
  NetworkModel(int num_nodes, const NetworkModelParams& params);

  int num_nodes() const { return static_cast<int>(busy_until_.size()); }
  const NetworkModelParams& params() const { return params_; }

  /// Pure wire time of `bytes` at line rate plus the fixed latency.
  SimDuration TransferTime(double bytes) const;

  /// Reserves both endpoints' NICs for a transfer of `bytes` starting no
  /// earlier than `now`; returns the delivery time at the destination.
  /// Degraded or partitioned endpoints stretch or defer the transfer but
  /// never drop it — every reservation delivers (conservation).
  SimTime ReserveTransfer(NodeId from, NodeId to, double bytes, SimTime now);

  // --- Fault hooks (faultsim) ------------------------------------------
  // Neutral by default (scale 1, never down), so runs without an armed
  // fault injector are byte-identical to the pre-fault model.

  /// Degrades a node's NIC: effective line rate becomes link_gbps * scale.
  /// scale must be in (0, 1]; 1.0 restores full speed.
  void SetLinkScale(NodeId n, double scale);
  double link_scale(NodeId n) const {
    return link_scale_[static_cast<size_t>(n)];
  }

  /// Partitions a node off the network until `until`: transfers touching
  /// it cannot *start* before that time (they queue, then deliver — the
  /// switch holds the frames, nothing is lost).
  void SetLinkDownUntil(NodeId n, SimTime until);
  SimTime link_down_until(NodeId n) const {
    return down_until_[static_cast<size_t>(n)];
  }

  int64_t transfers() const { return transfers_; }
  double bytes_sent() const { return bytes_sent_; }
  /// Cumulative time transfers spent queued behind busy NICs (including
  /// partition deferrals).
  SimDuration queueing_time() const { return queueing_time_; }
  /// Transfers that had to wait for a partitioned endpoint to rejoin.
  int64_t deferred_transfers() const { return deferred_transfers_; }

 private:
  NetworkModelParams params_;
  std::vector<SimTime> busy_until_;  // per node NIC
  std::vector<double> link_scale_;   // per node degradation factor
  std::vector<SimTime> down_until_;  // per node partition horizon
  int64_t transfers_ = 0;
  double bytes_sent_ = 0.0;
  SimDuration queueing_time_ = 0;
  int64_t deferred_transfers_ = 0;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_NETWORK_MODEL_H_
