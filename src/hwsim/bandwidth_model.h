#ifndef ECLDB_HWSIM_BANDWIDTH_MODEL_H_
#define ECLDB_HWSIM_BANDWIDTH_MODEL_H_

namespace ecldb::hwsim {

/// Calibration constants of the memory subsystem. Defaults fit the paper's
/// Figure 6: socket bandwidth scales with the uncore clock and saturates
/// near the DDR4-2133 4-channel peak; random-access latency improves with
/// the uncore clock (LLC + memory controllers run in the uncore domain).
struct BandwidthModelParams {
  /// Peak socket DRAM bandwidth at the maximum uncore frequency, GB/s.
  double peak_gbps = 56.0;
  /// Uncore frequency that delivers the peak, GHz.
  double f_uncore_max_ghz = 3.0;
  /// Sub-linear exponent of bandwidth vs uncore clock (slight saturation).
  double uncore_exponent = 0.92;
  /// Random-access DRAM latency: fixed part + uncore-dependent part, ns.
  /// latency(f) = fixed_ns + scaled_ns * (f_uncore_max / f).
  double latency_fixed_ns = 52.0;
  double latency_scaled_ns = 34.0;
  /// Cross-socket (QPI) transfer: extra latency and bandwidth cap.
  double remote_extra_latency_ns = 65.0;
  double qpi_gbps = 25.0;
};

/// Memory-subsystem performance as a function of the uncore clock.
class BandwidthModel {
 public:
  explicit BandwidthModel(const BandwidthModelParams& params) : params_(params) {}

  /// Achievable socket DRAM bandwidth at the given uncore frequency, GB/s.
  double SocketBandwidthGbps(double f_uncore_ghz) const;

  /// Average random-access latency at the given uncore frequency, ns.
  double AccessLatencyNs(double f_uncore_ghz) const;

  const BandwidthModelParams& params() const { return params_; }

 private:
  BandwidthModelParams params_;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_BANDWIDTH_MODEL_H_
