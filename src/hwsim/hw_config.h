#ifndef ECLDB_HWSIM_HW_CONFIG_H_
#define ECLDB_HWSIM_HW_CONFIG_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "hwsim/pstate.h"
#include "hwsim/topology.h"

namespace ecldb::hwsim {

/// Hardware energy-control state of a single socket: which hardware threads
/// are active (C-state), per-core frequencies, and the uncore frequency
/// (P-states). This is the paper's configuration tuple (Section 4.1):
///
///   c_x = ({hwthread}, {(core, f_core)}, f_uncore)
///
/// Inactive cores are implicitly at their minimum frequency; the uncore
/// clock can only be halted when every socket of the machine is idle.
struct SocketConfig {
  /// Active flag per socket-local hardware thread.
  std::vector<bool> thread_active;
  /// Requested frequency per socket-local physical core, in GHz. Only
  /// meaningful for cores with at least one active thread.
  std::vector<double> core_freq_ghz;
  /// Requested uncore frequency in GHz.
  double uncore_freq_ghz = 0.0;

  int ActiveThreadCount() const;
  int ActiveCoreCount(const Topology& topo) const;
  bool AnyActive() const;
  bool ThreadActive(int local_thread) const {
    return thread_active[static_cast<size_t>(local_thread)];
  }
  /// True iff any thread of socket-local core `core` is active.
  bool CoreActive(const Topology& topo, CoreId core) const;
  /// Average requested frequency over active cores; 0 if idle.
  double MeanActiveCoreFreq(const Topology& topo) const;

  /// Snaps all requested frequencies to settable P-states.
  void SnapToTable(const FrequencyTable& freqs);

  /// All threads off (idle socket / deepest C-state).
  static SocketConfig Idle(const Topology& topo);
  /// All threads on at the given core/uncore frequencies.
  static SocketConfig AllOn(const Topology& topo, double core_ghz, double uncore_ghz);
  /// The first `threads` socket-local threads on (filling cores with both
  /// siblings before moving to the next core) at uniform frequencies.
  static SocketConfig FirstThreads(const Topology& topo, int threads,
                                   double core_ghz, double uncore_ghz);
  /// Like FirstThreads but activates one sibling per core first
  /// (core-spread placement), then second siblings.
  static SocketConfig SpreadThreads(const Topology& topo, int threads,
                                    double core_ghz, double uncore_ghz);

  std::string ToString() const;
};

bool operator==(const SocketConfig& a, const SocketConfig& b);

/// Configuration of the whole machine (one SocketConfig per socket).
struct MachineConfig {
  std::vector<SocketConfig> sockets;

  bool AllIdle() const;
  static MachineConfig Idle(const Topology& topo);
  static MachineConfig AllOn(const Topology& topo, double core_ghz, double uncore_ghz);
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_HW_CONFIG_H_
