#include "hwsim/haswell_ep.h"

namespace ecldb::hwsim {

// Calibration notes (fit against the paper's Section 2 measurements):
//
//  * Figure 3: with both uncores halted the system's static RAPL power is
//    pkg 13 + 9 W plus 2 x 8 W DRAM ~ 38 W; the PSU adds a ~38 W static
//    floor and ~15 % conversion/fan losses on top, putting the idle wall
//    power near 18 % of the AVX-load peak.
//  * Figure 4: activating the first core pays for the uncore clock
//    (LLC power gate releases up to ~30 W at 3.0 GHz); additional physical
//    cores cost a few watts depending on their clock; HyperThread siblings
//    are nearly free (~8 % of the core's dynamic power).
//  * Figure 5: the two sockets draw asymmetric base power (unexplained in
//    the paper; reproduced as per-socket constants).
//  * Figure 6: socket bandwidth scales with the uncore clock up to
//    ~56 GB/s; all cores at 1.2 GHz can still saturate it.
//  * Figures 7/8: EET delay 1 s for powersave/balanced EPB; auto-UFS
//    greedily picks the maximum uncore frequency under load.
MachineParams MachineParams::HaswellEp() {
  MachineParams p;
  p.topology = Topology::HaswellEp2S();
  p.freqs = FrequencyTable::HaswellEp();
  // Power model defaults in PowerModelParams are the Haswell-EP fit.
  p.power = PowerModelParams{};
  p.bandwidth = BandwidthModelParams{};
  p.perf = PerfModelParams{};
  p.firmware = FirmwareParams{};
  p.rapl = RaplParams{};
  p.config_apply_latency = Micros(20);
  return p;
}

MachineParams MachineParams::SkylakeSp() {
  MachineParams p;
  p.topology = Topology{2, 28, 2};
  // Core clocks 1.0-2.7 GHz nominal + 3.7 GHz turbo; uncore 1.0-2.4 GHz.
  p.freqs.core_ghz.clear();
  for (int mhz = 1000; mhz <= 2700; mhz += 100) {
    p.freqs.core_ghz.push_back(mhz / 1000.0);
  }
  p.freqs.turbo_ghz = 3.7;
  p.freqs.uncore_ghz.clear();
  for (int mhz = 1000; mhz <= 2400; mhz += 100) {
    p.freqs.uncore_ghz.push_back(mhz / 1000.0);
  }
  // Mesh uncore draws more than Haswell's ring; per-core power is lower at
  // the lower clocks but there are 2.33x as many cores.
  p.power.pkg_base_halted_w = {17.0, 13.0};
  p.power.uncore_lin_w_per_ghz = 4.5;
  p.power.uncore_quad_w_per_ghz2 = 5.5;
  p.power.core_dyn_w = 1.6;
  p.power.volt_base = 0.75;
  p.power.volt_slope = 0.22;
  p.power.f_min_ghz = 1.0;
  p.power.dram_static_w = 11.0;
  // 6 channels DDR4-2666.
  p.bandwidth.peak_gbps = 105.0;
  p.bandwidth.f_uncore_max_ghz = 2.4;
  p.bandwidth.latency_fixed_ns = 60.0;
  p.bandwidth.latency_scaled_ns = 30.0;
  p.perf.mc_free_threads = 12;
  return p;
}

MachineParams MachineParams::Wimpy() {
  MachineParams p;
  p.topology = Topology{1, 4, 1};
  // Cores 0.6-1.6 GHz, no turbo; "uncore" (fabric + memory controller)
  // 0.8-1.6 GHz.
  p.freqs.core_ghz.clear();
  for (int mhz = 600; mhz <= 1600; mhz += 100) {
    p.freqs.core_ghz.push_back(mhz / 1000.0);
  }
  p.freqs.turbo_ghz = 0.0;
  p.freqs.uncore_ghz.clear();
  for (int mhz = 800; mhz <= 1600; mhz += 100) {
    p.freqs.uncore_ghz.push_back(mhz / 1000.0);
  }
  // Microserver power: a ~2 W package floor, sub-watt cores, and a small
  // fabric instead of a ring uncore. The near-flat idle/peak ratio is the
  // defining property of the class.
  p.power.pkg_base_halted_w = {1.8};
  p.power.uncore_lin_w_per_ghz = 0.5;
  p.power.uncore_quad_w_per_ghz2 = 0.25;
  p.power.core_leak_w = 0.12;
  p.power.core_dyn_w = 0.55;
  p.power.volt_base = 0.70;
  p.power.volt_slope = 0.28;
  p.power.f_min_ghz = 0.6;
  p.power.ht_sibling_dyn_frac = 0.0;  // no SMT
  p.power.dram_static_w = 1.1;
  p.power.dram_w_per_gbps = 0.30;
  p.power.shallow_idle_extra_w = 0.9;
  p.power.psu_static_w = 3.5;
  p.power.psu_conversion = 1.10;
  // Single-channel LPDDR: ~6.4 GB/s peak, higher latency than the server
  // parts. qpi_gbps caps nothing on a single-socket node but stays >0 so
  // remote-copy estimates remain well-defined.
  p.bandwidth.peak_gbps = 6.4;
  p.bandwidth.f_uncore_max_ghz = 1.6;
  p.bandwidth.uncore_exponent = 0.95;
  p.bandwidth.latency_fixed_ns = 90.0;
  p.bandwidth.latency_scaled_ns = 45.0;
  p.bandwidth.remote_extra_latency_ns = 0.0;
  p.bandwidth.qpi_gbps = 4.0;
  p.perf.mc_free_threads = 2;
  return p;
}

}  // namespace ecldb::hwsim
