#ifndef ECLDB_HWSIM_PERF_MODEL_H_
#define ECLDB_HWSIM_PERF_MODEL_H_

#include <vector>

#include "common/types.h"
#include "hwsim/bandwidth_model.h"
#include "hwsim/hw_config.h"
#include "hwsim/topology.h"
#include "hwsim/work_profile.h"

namespace ecldb::hwsim {

/// Work offered to one hardware thread during the next time slice.
struct ThreadLoad {
  /// Profile of the operations executed; nullptr means no work (an active
  /// thread without work polls its message queues).
  const WorkProfile* profile = nullptr;
  /// Target busy fraction in [0, 1]: the share of the slice the thread has
  /// work available.
  double intensity = 0.0;
};

/// Solved execution rates of one hardware thread.
struct ThreadRate {
  /// Operation completion rate at intensity 1 (ops/s); multiply by the
  /// offered intensity for achieved throughput.
  double ops_per_sec = 0.0;
  /// Achieved instructions retired per second (includes the polling loop
  /// of workless active threads).
  double instr_per_sec = 0.0;
  /// The polling-loop share of `instr_per_sec`: instructions that retire
  /// while the thread spins on empty message queues rather than executing
  /// operations. Tracked separately so control loops can discount idle
  /// polling from demand estimates.
  double poll_instr_per_sec = 0.0;
  /// Achieved DRAM traffic (bytes/s) at the offered intensity.
  double bytes_per_sec = 0.0;
};

/// Machine-wide solution of one time slice.
struct SolveResult {
  std::vector<ThreadRate> threads;            // indexed by global HwThreadId
  std::vector<double> socket_bandwidth_gbps;  // per socket
  std::vector<double> socket_busy_fraction;   // per socket
  std::vector<double> socket_power_scale;     // per socket
};

/// Calibration constants of the performance model.
struct PerfModelParams {
  /// Per-sibling core share when both HyperThreads of a core are busy
  /// (two siblings together achieve ~1.25x of one thread).
  double ht_share = 0.625;
  /// Combined speedup of two same-core siblings hammering the same cache
  /// line over a single thread (L1-local handoff).
  double same_core_atomic_speedup = 1.15;
  /// Cache-line handoff latency between cores of one socket at the maximum
  /// uncore clock, ns; scales with (f_uncore_max / f_uncore).
  double cross_core_handoff_ns = 22.0;
  /// Cache-line handoff latency across sockets, ns.
  double cross_socket_handoff_ns = 130.0;
  /// Core cycles per locked RMW on an L1-resident contended line.
  double atomic_issue_cycles = 24.0;
  /// Instructions per cycle retired by the polling loop of a workless
  /// active thread (pause-dominated spin).
  double poll_instr_per_cycle = 0.02;
  /// Weight of the uncore clock in the shared-structure serialization cost:
  /// latency_scale = (1 - w) + w * (f_uncore_max / f_uncore).
  double structure_uncore_weight = 0.45;
  /// Fraction of the smaller of (core time, memory-latency time) that is
  /// NOT hidden by out-of-order overlap:
  /// t_op = max(t_core, t_mem) + overlap_residue * min(t_core, t_mem).
  double overlap_residue = 0.5;
  /// Memory-controller contention: each bandwidth-demanding thread beyond
  /// `mc_free_threads` on a socket reduces the effective socket bandwidth
  /// by this fraction (queueing/row-buffer interference). This is why
  /// "using all available hardware resources provides less performance"
  /// for saturating scans (paper Section 6.1).
  double mc_contention_per_thread = 0.012;
  int mc_free_threads = 8;
};

/// Converts the machine configuration plus the offered per-thread work into
/// per-thread execution rates, resolving the three resource regimes the
/// paper's energy profiles expose (Section 4.2):
///  * core-bound work scales with the core clock (and HT sharing),
///  * bandwidth-/latency-bound work scales with the uncore clock and is
///    capped by the socket memory bandwidth,
///  * contended work serializes on cache-line handoffs or a shared
///    structure and can *lose* throughput with more active threads.
class PerfModel {
 public:
  PerfModel(const Topology& topo, const BandwidthModel& bw,
            const PerfModelParams& params);

  /// `effective` must carry firmware-granted (effective) frequencies.
  /// `loads` is indexed by global HwThreadId; loads on inactive threads
  /// are ignored.
  SolveResult Solve(const MachineConfig& effective,
                    const std::vector<ThreadLoad>& loads) const;

  /// Allocation-free variant: fills `*out` (reusing its capacity). Solving
  /// reuses internal scratch buffers, so a single PerfModel instance must
  /// not be solved from multiple threads concurrently.
  void Solve(const MachineConfig& effective,
             const std::vector<ThreadLoad>& loads, SolveResult* out) const;

  const PerfModelParams& params() const { return params_; }
  const BandwidthModel& bandwidth_model() const { return bw_; }

 private:
  double CoreLimitedTimeSec(const WorkProfile& p, double f_core_ghz,
                            bool sibling_busy) const;
  double MemLatencyTimeSec(const WorkProfile& p, double f_uncore_ghz) const;

  Topology topo_;
  BandwidthModel bw_;
  PerfModelParams params_;

  // Scratch reused across Solve calls (hot path: once per simulated slice).
  // Contention groups are keyed by first-seen order, which is deterministic
  // across runs (unlike pointer-ordered maps) and equivalent numerically
  // because groups touch disjoint threads.
  mutable std::vector<double> base_rate_;
  mutable std::vector<const WorkProfile*> group_keys_;
  mutable std::vector<std::vector<HwThreadId>> group_members_;
  mutable std::vector<double> busy_sum_;
  mutable std::vector<double> scale_sum_;
  mutable std::vector<int> active_count_;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_PERF_MODEL_H_
