#include "hwsim/cluster.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace ecldb::hwsim {

ClusterParams ClusterParams::Homogeneous(int num_nodes,
                                         const ClusterNodeParams& node,
                                         const NetworkModelParams& network) {
  ECLDB_CHECK(num_nodes > 0);
  ClusterParams p;
  p.nodes.assign(static_cast<size_t>(num_nodes), node);
  p.network = network;
  return p;
}

Cluster::Cluster(sim::Simulator* simulator, const ClusterParams& params)
    : simulator_(simulator),
      params_(params),
      network_(static_cast<int>(params.nodes.size()), params.network) {
  ECLDB_CHECK(simulator != nullptr);
  ECLDB_CHECK(!params_.nodes.empty());
  telemetry::Telemetry* const tel = params_.telemetry;
  nodes_.resize(params_.nodes.size());
  for (size_t n = 0; n < params_.nodes.size(); ++n) {
    if (tel != nullptr) {
      tel->SetPathPrefix("node" + std::to_string(n) + "/");
    }
    machines_.push_back(
        std::make_unique<Machine>(simulator_, params_.nodes[n].machine));
    if (tel != nullptr) machines_.back()->AttachTelemetry(tel);
    nodes_[n].since = simulator_->now();
    nodes_[n].machine_e_at_on = machines_.back()->TotalEnergyJoules();
  }
  if (tel != nullptr) {
    tel->SetPathPrefix("");
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddGauge("cluster/nodes_on",
                 [this] { return static_cast<double>(NodesOn()); });
    reg.AddCounterFn("cluster/power_downs", [this] { return power_downs_; });
    reg.AddCounterFn("cluster/power_ups", [this] { return power_ups_; });
    reg.AddCounterFn("cluster/network_transfers",
                     [this] { return network_.transfers(); });
    reg.AddGauge("cluster/network_bytes",
                 [this] { return network_.bytes_sent(); });
    for (size_t n = 0; n < nodes_.size(); ++n) {
      reg.AddGauge("cluster/node" + std::to_string(n) + "/state", [this, n] {
        return static_cast<double>(nodes_[n].state);
      });
    }
  }
}

int Cluster::NodesOn() const {
  int on = 0;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kOn) ++on;
  }
  return on;
}

int Cluster::NodesAvailable() const {
  int avail = 0;
  for (const Node& node : nodes_) {
    if (node.state == NodeState::kOn && !node.failed) ++avail;
  }
  return avail;
}

void Cluster::FoldPhase(NodeId n, SimTime now) {
  Node& node = nodes_[static_cast<size_t>(n)];
  const double phase_s = ToSeconds(now - node.since);
  const NodePowerParams& power = params_.nodes[static_cast<size_t>(n)].power;
  switch (node.state) {
    case NodeState::kOn:
      node.accumulated_j +=
          (machine(n).TotalEnergyJoules() - node.machine_e_at_on) +
          power.platform_overhead_w * phase_s;
      break;
    case NodeState::kBooting:
      node.accumulated_j += power.boot_power_w * phase_s;
      break;
    case NodeState::kOff:
      node.accumulated_j += power.off_power_w * phase_s;
      break;
  }
  node.since = now;
}

void Cluster::PowerDown(NodeId n) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  Node& node = nodes_[static_cast<size_t>(n)];
  ECLDB_CHECK_MSG(node.state == NodeState::kOn, "power-down of a node not on");
  const SimTime now = simulator_->now();
  FoldPhase(n, now);
  node.state = NodeState::kOff;
  // Invalidate any boot completion still in flight (down-up-down races).
  ++node.boot_generation;
  // The machine object idles while "off": zero offered work, all threads
  // parked. Its RAPL accrual from here on is excluded by the phase fold.
  machine(n).ClearThreadLoads();
  machine(n).ApplyMachineConfig(
      MachineConfig::Idle(machine(n).topology()));
  ++power_downs_;
}

void Cluster::PowerUp(NodeId n, std::function<void()> on_booted) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  Node& node = nodes_[static_cast<size_t>(n)];
  ECLDB_CHECK_MSG(node.state == NodeState::kOff, "power-up of a node not off");
  const SimTime now = simulator_->now();
  FoldPhase(n, now);
  node.state = NodeState::kBooting;
  ++power_ups_;
  const int64_t generation = ++node.boot_generation;
  const NodePowerParams& power = params_.nodes[static_cast<size_t>(n)].power;
  simulator_->ScheduleAfter(
      power.boot_latency,
      [this, n, generation, cb = std::move(on_booted)] {
        Node& booted = nodes_[static_cast<size_t>(n)];
        if (booted.boot_generation != generation) return;  // superseded
        FoldPhase(n, simulator_->now());
        if (booted.boot_failures_pending > 0) {
          // Injected transient boot failure: the boot energy was spent
          // (the phase fold above charged it), but the node lands back in
          // kOff instead of serving. The caller's wake policy retries on
          // a later tick.
          --booted.boot_failures_pending;
          ++boot_failures_;
          booted.state = NodeState::kOff;
          return;
        }
        booted.state = NodeState::kOn;
        booted.machine_e_at_on = machine(n).TotalEnergyJoules();
        if (cb != nullptr) cb();
      });
}

void Cluster::Crash(NodeId n) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  Node& node = nodes_[static_cast<size_t>(n)];
  ECLDB_CHECK_MSG(node.state != NodeState::kOff, "crash of a node already off");
  const SimTime now = simulator_->now();
  FoldPhase(n, now);
  node.state = NodeState::kOff;
  node.failed = true;
  // Invalidate any boot completion in flight (a crash mid-boot).
  ++node.boot_generation;
  machine(n).ClearThreadLoads();
  machine(n).ApplyMachineConfig(MachineConfig::Idle(machine(n).topology()));
  ++crashes_;
  last_crash_time_ = now;
}

void Cluster::ClearFailed(NodeId n) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  nodes_[static_cast<size_t>(n)].failed = false;
}

void Cluster::InjectBootFailures(NodeId n, int count) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  ECLDB_CHECK(count >= 0);
  nodes_[static_cast<size_t>(n)].boot_failures_pending = count;
}

double Cluster::NodeEnergyJoules(NodeId n) const {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  const Node& node = nodes_[static_cast<size_t>(n)];
  const double phase_s = ToSeconds(simulator_->now() - node.since);
  const NodePowerParams& power = params_.nodes[static_cast<size_t>(n)].power;
  double open = 0.0;
  switch (node.state) {
    case NodeState::kOn:
      open = (machine(n).TotalEnergyJoules() - node.machine_e_at_on) +
             power.platform_overhead_w * phase_s;
      break;
    case NodeState::kBooting:
      open = power.boot_power_w * phase_s;
      break;
    case NodeState::kOff:
      open = power.off_power_w * phase_s;
      break;
  }
  return node.accumulated_j + open;
}

double Cluster::TotalEnergyJoules() const {
  double total = 0.0;
  for (NodeId n = 0; n < num_nodes(); ++n) total += NodeEnergyJoules(n);
  return total;
}

}  // namespace ecldb::hwsim
