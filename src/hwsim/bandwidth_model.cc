#include "hwsim/bandwidth_model.h"

#include <cmath>

namespace ecldb::hwsim {

double BandwidthModel::SocketBandwidthGbps(double f_uncore_ghz) const {
  if (f_uncore_ghz <= 0.0) return 0.0;
  const double rel = f_uncore_ghz / params_.f_uncore_max_ghz;
  return params_.peak_gbps * std::pow(rel, params_.uncore_exponent);
}

double BandwidthModel::AccessLatencyNs(double f_uncore_ghz) const {
  if (f_uncore_ghz <= 0.0) f_uncore_ghz = 0.1;
  return params_.latency_fixed_ns +
         params_.latency_scaled_ns * (params_.f_uncore_max_ghz / f_uncore_ghz);
}

}  // namespace ecldb::hwsim
