#ifndef ECLDB_HWSIM_FIRMWARE_H_
#define ECLDB_HWSIM_FIRMWARE_H_

#include <vector>

#include "common/types.h"
#include "hwsim/hw_config.h"
#include "hwsim/perf_model.h"
#include "hwsim/pstate.h"
#include "hwsim/topology.h"

namespace ecldb::hwsim {

/// Energy-performance bias, settable per MSR (paper Section 2.3). In this
/// model it is machine-global, as the paper sets it uniformly.
enum class EpbSetting { kPerformance, kBalanced, kPowersave };

/// Whether the uncore frequency follows the CPU's own (greedy) uncore
/// frequency scaling or the explicitly pinned value.
enum class UncoreMode { kPinned, kAuto };

struct FirmwareParams {
  /// Delay before the energy-efficient turbo grants the turbo frequency
  /// when EPB is powersave/balanced (paper Fig. 7: ~1 s).
  SimDuration eet_delay = Seconds(1);
  /// All-core turbo is thermally sustainable only for about this long
  /// (paper Section 2.1: the 500 W turbo peak endures ~1 s).
  SimDuration turbo_thermal_budget = Seconds(1);
  /// Budget refill rate relative to drain (0.5 = half speed).
  double turbo_recovery_rate = 0.5;
  /// Turbo on at most this many cores per socket does not drain the
  /// thermal budget.
  int turbo_sustainable_cores = 4;
  /// Only instruction mixes above this dynamic-power scale (AVX-heavy burn
  /// loops) drain the budget; scalar code sustains all-core turbo.
  double turbo_power_scale_threshold = 1.2;
};

/// Models the decision making the CPU performs on its own: energy-efficient
/// turbo (EET) grant delays controlled by the EPB, the thermal turbo
/// budget, and the automatic uncore frequency scaling whose greedy
/// decisions the paper shows to be energy-inefficient (Figs. 7 and 8).
class Firmware {
 public:
  Firmware(const Topology& topo, const FrequencyTable& freqs,
           const FirmwareParams& params);

  void set_epb(EpbSetting epb) { epb_ = epb; }
  EpbSetting epb() const { return epb_; }

  void SetUncoreMode(SocketId socket, UncoreMode mode);
  UncoreMode uncore_mode(SocketId socket) const {
    return uncore_mode_[static_cast<size_t>(socket)];
  }

  /// Called when software writes a new configuration for `socket` at time
  /// `now`; tracks when turbo was first requested per core.
  void NotifyConfigWrite(SocketId socket, const SocketConfig& requested,
                         SimTime now);

  /// Resolves the *effective* machine configuration at `now` for the
  /// upcoming slice of length `dt`: applies EET delay, the turbo thermal
  /// budget, and automatic uncore scaling. `socket_busy` reports whether
  /// any thread of the socket currently has work (drives auto-UFS);
  /// `socket_power_scale` is the dynamic-power scale of the running mix
  /// (drives the thermal turbo budget).
  MachineConfig Resolve(const MachineConfig& requested,
                        const std::vector<bool>& socket_busy,
                        const std::vector<double>& socket_power_scale,
                        SimTime now, SimDuration dt);

  /// Earliest future time at which the firmware would change its decisions
  /// on its own (EET grant maturing, thermal turbo budget depleting) given
  /// the inputs of the last Resolve call; kSimTimeNever if none is pending.
  /// Valid until the requested config, EPB, busy state, or power scale
  /// changes — i.e. for the steady window following the last Resolve.
  SimTime next_change() const { return next_change_; }

  /// Replays the per-slice thermal-budget update of Resolve for one slice
  /// of a steady window (same branch, bit-identical arithmetic), without
  /// re-deriving the effective configuration. Only valid while the inputs
  /// of the last Resolve are unchanged and `next_change()` has not been
  /// reached.
  void AdvanceBudget(SimDuration dt);

 private:
  /// Which thermal-budget branch Resolve took, per socket.
  enum class BudgetRegime { kDrain, kHold, kRecover };

  Topology topo_;
  FrequencyTable freqs_;
  FirmwareParams params_;
  EpbSetting epb_ = EpbSetting::kBalanced;
  std::vector<UncoreMode> uncore_mode_;
  /// Per (socket, core): time the current turbo request started, or
  /// kSimTimeNever if turbo is not requested.
  std::vector<SimTime> turbo_request_since_;
  /// Remaining thermal budget per socket, ns of all-core turbo.
  std::vector<double> turbo_budget_ns_;
  /// Budget branch taken by the last Resolve, per socket.
  std::vector<BudgetRegime> budget_regime_;
  /// Cached autonomous-change horizon of the last Resolve.
  SimTime next_change_ = 0;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_FIRMWARE_H_
