#ifndef ECLDB_HWSIM_TOPOLOGY_H_
#define ECLDB_HWSIM_TOPOLOGY_H_

#include "common/check.h"
#include "common/types.h"

namespace ecldb::hwsim {

/// Physical layout of the simulated machine: sockets contain physical cores,
/// cores contain hardware threads (HyperThread siblings).
///
/// Hardware thread numbering is hierarchical:
///   thread = socket * threads_per_socket + core * threads_per_core + sibling
struct Topology {
  int num_sockets = 2;
  int cores_per_socket = 12;
  int threads_per_core = 2;

  int threads_per_socket() const { return cores_per_socket * threads_per_core; }
  int total_cores() const { return num_sockets * cores_per_socket; }
  int total_threads() const { return num_sockets * threads_per_socket(); }

  SocketId SocketOfThread(HwThreadId t) const {
    ECLDB_DCHECK(t >= 0 && t < total_threads());
    return t / threads_per_socket();
  }

  /// Socket-local core index of a global hardware thread.
  CoreId CoreOfThread(HwThreadId t) const {
    ECLDB_DCHECK(t >= 0 && t < total_threads());
    return (t % threads_per_socket()) / threads_per_core;
  }

  /// Sibling index (0 .. threads_per_core-1) of a global hardware thread.
  int SiblingOfThread(HwThreadId t) const {
    ECLDB_DCHECK(t >= 0 && t < total_threads());
    return t % threads_per_core;
  }

  /// Socket-local thread index (0 .. threads_per_socket-1).
  int LocalThreadOfThread(HwThreadId t) const {
    ECLDB_DCHECK(t >= 0 && t < total_threads());
    return t % threads_per_socket();
  }

  HwThreadId ThreadOf(SocketId s, CoreId core, int sibling) const {
    ECLDB_DCHECK(s >= 0 && s < num_sockets);
    ECLDB_DCHECK(core >= 0 && core < cores_per_socket);
    ECLDB_DCHECK(sibling >= 0 && sibling < threads_per_core);
    return s * threads_per_socket() + core * threads_per_core + sibling;
  }

  /// The "2-socket Xeon E5-2690 v3" system under test of the paper.
  static Topology HaswellEp2S() { return Topology{2, 12, 2}; }
};

bool operator==(const Topology& a, const Topology& b);

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_TOPOLOGY_H_
