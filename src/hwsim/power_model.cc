#include "hwsim/power_model.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::hwsim {

PowerModel::PowerModel(const Topology& topo, const PowerModelParams& params)
    : topo_(topo), params_(params) {
  ECLDB_CHECK_MSG(
      static_cast<int>(params_.pkg_base_halted_w.size()) >= topo_.num_sockets,
      "need a package base power per socket");
}

double PowerModel::CorePower(double freq_ghz, double busy,
                             bool both_siblings_busy, double power_scale) const {
  const double v =
      params_.volt_base + params_.volt_slope * (freq_ghz - params_.f_min_ghz);
  const double dyn_full = params_.core_dyn_w * freq_ghz * v * v * power_scale;
  // A polling (active but workless) core still clocks and draws a fraction
  // of dynamic power; busy work draws the rest proportionally.
  const double dyn = dyn_full * (params_.poll_dyn_frac +
                                 (1.0 - params_.poll_dyn_frac) * busy);
  const double sibling =
      both_siblings_busy ? params_.ht_sibling_dyn_frac * dyn_full * busy : 0.0;
  return params_.core_leak_w + dyn + sibling;
}

PowerBreakdown PowerModel::SocketPower(SocketId socket, const SocketConfig& cfg,
                                       const SocketActivity& act) const {
  PowerBreakdown p;
  p.pkg_w = params_.pkg_base_halted_w[static_cast<size_t>(socket)];
  if (act.shallow_idle) p.pkg_w += params_.shallow_idle_extra_w;
  // Uncore clock: halted only when the whole machine is idle (Fig. 5);
  // otherwise it runs at the configured frequency even on an idle socket.
  if (!act.uncore_halted) {
    const double f = cfg.uncore_freq_ghz;
    p.pkg_w += params_.uncore_lin_w_per_ghz * f +
               params_.uncore_quad_w_per_ghz2 * f * f;
  }
  for (CoreId core = 0; core < topo_.cores_per_socket; ++core) {
    int active_threads = 0;
    for (int s = 0; s < topo_.threads_per_core; ++s) {
      if (cfg.thread_active[static_cast<size_t>(core * topo_.threads_per_core + s)]) {
        ++active_threads;
      }
    }
    if (active_threads == 0) continue;  // Core is power-gated (C6).
    p.pkg_w += CorePower(cfg.core_freq_ghz[static_cast<size_t>(core)],
                         std::clamp(act.busy_fraction, 0.0, 1.0),
                         active_threads >= 2, act.power_scale);
  }
  p.dram_w = params_.dram_static_w + params_.dram_w_per_gbps * act.bandwidth_gbps;
  return p;
}

double PowerModel::PsuPowerW(double rapl_total_w) const {
  return params_.psu_static_w + params_.psu_conversion * rapl_total_w;
}

}  // namespace ecldb::hwsim
