#include "hwsim/pstate.h"

#include <cmath>

#include "common/check.h"

namespace ecldb::hwsim {
namespace {

double Nearest(const std::vector<double>& table, double ghz) {
  ECLDB_CHECK(!table.empty());
  double best = table.front();
  double best_dist = std::abs(ghz - best);
  for (double f : table) {
    const double d = std::abs(ghz - f);
    if (d < best_dist) {
      best = f;
      best_dist = d;
    }
  }
  return best;
}

}  // namespace

double FrequencyTable::NearestCore(double ghz) const {
  if (turbo_ghz > 0.0 &&
      std::abs(ghz - turbo_ghz) < std::abs(ghz - max_core_nominal())) {
    return turbo_ghz;
  }
  return Nearest(core_ghz, ghz);
}

double FrequencyTable::NearestUncore(double ghz) const {
  return Nearest(uncore_ghz, ghz);
}

FrequencyTable FrequencyTable::HaswellEp() {
  FrequencyTable t;
  for (int mhz = 1200; mhz <= 2600; mhz += 100) {
    t.core_ghz.push_back(mhz / 1000.0);
  }
  t.turbo_ghz = 3.1;
  for (int mhz = 1200; mhz <= 3000; mhz += 100) {
    t.uncore_ghz.push_back(mhz / 1000.0);
  }
  return t;
}

}  // namespace ecldb::hwsim
