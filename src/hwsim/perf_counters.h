#ifndef ECLDB_HWSIM_PERF_COUNTERS_H_
#define ECLDB_HWSIM_PERF_COUNTERS_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hwsim/topology.h"

namespace ecldb::hwsim {

/// Per-hardware-thread instructions-retired counters, the paper's
/// performance-score currency (Section 4.1): "we use the number of
/// instructions retired by all of the active hardware threads on the
/// socket".
class PerfCounters {
 public:
  explicit PerfCounters(const Topology& topo);

  void AddInstructions(HwThreadId thread, double instructions);

  /// Cumulative instructions retired by one hardware thread.
  uint64_t ReadThread(HwThreadId thread) const;

  /// Cumulative instructions retired by all hardware threads of a socket.
  uint64_t ReadSocket(SocketId socket) const;

 private:
  Topology topo_;
  std::vector<double> instr_;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_PERF_COUNTERS_H_
