#include "hwsim/hw_config.h"

#include <sstream>

#include "common/check.h"

namespace ecldb::hwsim {

int SocketConfig::ActiveThreadCount() const {
  int n = 0;
  for (bool a : thread_active) n += a ? 1 : 0;
  return n;
}

int SocketConfig::ActiveCoreCount(const Topology& topo) const {
  int n = 0;
  for (CoreId c = 0; c < topo.cores_per_socket; ++c) n += CoreActive(topo, c) ? 1 : 0;
  return n;
}

bool SocketConfig::AnyActive() const {
  for (bool a : thread_active) {
    if (a) return true;
  }
  return false;
}

bool SocketConfig::CoreActive(const Topology& topo, CoreId core) const {
  for (int s = 0; s < topo.threads_per_core; ++s) {
    if (thread_active[static_cast<size_t>(core * topo.threads_per_core + s)]) return true;
  }
  return false;
}

double SocketConfig::MeanActiveCoreFreq(const Topology& topo) const {
  double sum = 0.0;
  int n = 0;
  for (CoreId c = 0; c < topo.cores_per_socket; ++c) {
    if (CoreActive(topo, c)) {
      sum += core_freq_ghz[static_cast<size_t>(c)];
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

void SocketConfig::SnapToTable(const FrequencyTable& freqs) {
  for (double& f : core_freq_ghz) f = freqs.NearestCore(f);
  uncore_freq_ghz = freqs.NearestUncore(uncore_freq_ghz);
}

SocketConfig SocketConfig::Idle(const Topology& topo) {
  SocketConfig c;
  c.thread_active.assign(static_cast<size_t>(topo.threads_per_socket()), false);
  c.core_freq_ghz.assign(static_cast<size_t>(topo.cores_per_socket), 1.2);
  c.uncore_freq_ghz = 1.2;
  return c;
}

SocketConfig SocketConfig::AllOn(const Topology& topo, double core_ghz,
                                 double uncore_ghz) {
  SocketConfig c = Idle(topo);
  c.thread_active.assign(static_cast<size_t>(topo.threads_per_socket()), true);
  c.core_freq_ghz.assign(static_cast<size_t>(topo.cores_per_socket), core_ghz);
  c.uncore_freq_ghz = uncore_ghz;
  return c;
}

SocketConfig SocketConfig::FirstThreads(const Topology& topo, int threads,
                                        double core_ghz, double uncore_ghz) {
  ECLDB_CHECK(threads >= 0 && threads <= topo.threads_per_socket());
  SocketConfig c = Idle(topo);
  for (int t = 0; t < threads; ++t) c.thread_active[static_cast<size_t>(t)] = true;
  c.core_freq_ghz.assign(static_cast<size_t>(topo.cores_per_socket), core_ghz);
  c.uncore_freq_ghz = uncore_ghz;
  return c;
}

SocketConfig SocketConfig::SpreadThreads(const Topology& topo, int threads,
                                         double core_ghz, double uncore_ghz) {
  ECLDB_CHECK(threads >= 0 && threads <= topo.threads_per_socket());
  SocketConfig c = Idle(topo);
  int placed = 0;
  for (int sibling = 0; sibling < topo.threads_per_core && placed < threads; ++sibling) {
    for (CoreId core = 0; core < topo.cores_per_socket && placed < threads; ++core) {
      c.thread_active[static_cast<size_t>(core * topo.threads_per_core + sibling)] = true;
      ++placed;
    }
  }
  c.core_freq_ghz.assign(static_cast<size_t>(topo.cores_per_socket), core_ghz);
  c.uncore_freq_ghz = uncore_ghz;
  return c;
}

std::string SocketConfig::ToString() const {
  std::ostringstream out;
  out << "threads={";
  bool first = true;
  for (size_t t = 0; t < thread_active.size(); ++t) {
    if (thread_active[t]) {
      if (!first) out << ",";
      out << t;
      first = false;
    }
  }
  out << "} f_core={";
  for (size_t c = 0; c < core_freq_ghz.size(); ++c) {
    if (c > 0) out << ",";
    out << core_freq_ghz[c];
  }
  out << "} f_uncore=" << uncore_freq_ghz;
  return out.str();
}

bool operator==(const SocketConfig& a, const SocketConfig& b) {
  return a.thread_active == b.thread_active &&
         a.core_freq_ghz == b.core_freq_ghz &&
         a.uncore_freq_ghz == b.uncore_freq_ghz;
}

bool MachineConfig::AllIdle() const {
  for (const SocketConfig& s : sockets) {
    if (s.AnyActive()) return false;
  }
  return true;
}

MachineConfig MachineConfig::Idle(const Topology& topo) {
  MachineConfig m;
  for (int s = 0; s < topo.num_sockets; ++s) m.sockets.push_back(SocketConfig::Idle(topo));
  return m;
}

MachineConfig MachineConfig::AllOn(const Topology& topo, double core_ghz,
                                   double uncore_ghz) {
  MachineConfig m;
  for (int s = 0; s < topo.num_sockets; ++s) {
    m.sockets.push_back(SocketConfig::AllOn(topo, core_ghz, uncore_ghz));
  }
  return m;
}

}  // namespace ecldb::hwsim
