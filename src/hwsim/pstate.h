#ifndef ECLDB_HWSIM_PSTATE_H_
#define ECLDB_HWSIM_PSTATE_H_

#include <vector>

namespace ecldb::hwsim {

/// Available P-state frequencies of the simulated processor.
///
/// On the paper's Haswell-EP system under test, core clocks can be set
/// between 1.2 and 2.6 GHz with 3.1 GHz TurboBoost, and the uncore clock
/// ranges from 1.2 to 3.0 GHz (Section 2.2).
struct FrequencyTable {
  /// Settable core frequencies in GHz, ascending, excluding turbo.
  std::vector<double> core_ghz;
  /// Turbo frequency (requestable like a P-state; grant is firmware
  /// controlled, see Firmware).
  double turbo_ghz = 0.0;
  /// Settable uncore frequencies in GHz, ascending.
  std::vector<double> uncore_ghz;

  double min_core() const { return core_ghz.front(); }
  double max_core_nominal() const { return core_ghz.back(); }
  /// Highest requestable core frequency including turbo.
  double max_core() const { return turbo_ghz > 0.0 ? turbo_ghz : core_ghz.back(); }
  double min_uncore() const { return uncore_ghz.front(); }
  double max_uncore() const { return uncore_ghz.back(); }

  /// Clamps an arbitrary requested core frequency to the nearest settable
  /// value (including turbo).
  double NearestCore(double ghz) const;
  double NearestUncore(double ghz) const;

  /// Haswell-EP: cores 1.2..2.6 GHz in 100 MHz steps + 3.1 turbo;
  /// uncore 1.2..3.0 GHz in 100 MHz steps.
  static FrequencyTable HaswellEp();
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_PSTATE_H_
