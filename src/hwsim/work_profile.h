#ifndef ECLDB_HWSIM_WORK_PROFILE_H_
#define ECLDB_HWSIM_WORK_PROFILE_H_

#include <string>

namespace ecldb::hwsim {

/// How operations of a work profile interact through shared hardware or
/// software resources.
enum class ContentionClass {
  /// Fully thread-local work (e.g., incrementing a local counter).
  kNone,
  /// All participating threads atomically update the same cache line; ops
  /// serialize on cache-line ownership transfers (paper Fig. 10(b)).
  kSharedCacheLine,
  /// Threads update a shared structure (e.g., hash table inserts): mostly
  /// parallel with a growing serialized fraction (paper Fig. 10(c)).
  kSharedStructure,
};

/// Hardware-facing description of one unit of work ("operation") of a
/// workload. The performance model turns a work profile plus a hardware
/// configuration into an execution rate, which is what makes energy
/// profiles workload-dependent (paper Section 4.2).
struct WorkProfile {
  std::string name;

  /// Instructions retired per operation (the paper's performance-score
  /// currency: the ECL measures "instructions retired").
  double instr_per_op = 1.0;
  /// Core cycles per instruction when not memory- or contention-bound.
  double cpi = 1.0;
  /// Serialized (dependent) DRAM accesses per operation; latency-bound
  /// component (index probes, pointer chasing).
  double mem_accesses_per_op = 0.0;
  /// Memory-level parallelism of those accesses (overlapping misses).
  double mlp = 1.0;
  /// DRAM traffic per operation in bytes; bandwidth-bound component.
  double bytes_per_op = 0.0;

  ContentionClass contention = ContentionClass::kNone;
  /// kSharedStructure: linear serialization weight per extra thread.
  double serial_linear = 0.0;
  /// kSharedStructure: quadratic serialization weight per extra thread.
  double serial_quad = 0.0;

  /// Relative dynamic core power of this instruction mix (AVX-heavy burn
  /// loops like FIRESTARTER draw more than scalar code).
  double power_scale = 1.0;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_WORK_PROFILE_H_
