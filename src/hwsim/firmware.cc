#include "hwsim/firmware.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecldb::hwsim {

Firmware::Firmware(const Topology& topo, const FrequencyTable& freqs,
                   const FirmwareParams& params)
    : topo_(topo),
      freqs_(freqs),
      params_(params),
      uncore_mode_(static_cast<size_t>(topo.num_sockets), UncoreMode::kPinned),
      turbo_request_since_(static_cast<size_t>(topo.total_cores()), kSimTimeNever),
      turbo_budget_ns_(static_cast<size_t>(topo.num_sockets),
                       static_cast<double>(params.turbo_thermal_budget)),
      budget_regime_(static_cast<size_t>(topo.num_sockets),
                     BudgetRegime::kRecover) {}

void Firmware::SetUncoreMode(SocketId socket, UncoreMode mode) {
  uncore_mode_[static_cast<size_t>(socket)] = mode;
}

void Firmware::NotifyConfigWrite(SocketId socket, const SocketConfig& requested,
                                 SimTime now) {
  for (CoreId core = 0; core < topo_.cores_per_socket; ++core) {
    const size_t idx = static_cast<size_t>(socket * topo_.cores_per_socket + core);
    const bool wants_turbo =
        requested.CoreActive(topo_, core) &&
        requested.core_freq_ghz[static_cast<size_t>(core)] >= freqs_.turbo_ghz;
    if (wants_turbo) {
      if (turbo_request_since_[idx] == kSimTimeNever) {
        turbo_request_since_[idx] = now;
      }
    } else {
      turbo_request_since_[idx] = kSimTimeNever;
    }
  }
}

MachineConfig Firmware::Resolve(const MachineConfig& requested,
                                const std::vector<bool>& socket_busy,
                                const std::vector<double>& socket_power_scale,
                                SimTime now, SimDuration dt) {
  ECLDB_DCHECK(static_cast<int>(requested.sockets.size()) == topo_.num_sockets);
  MachineConfig effective = requested;
  next_change_ = kSimTimeNever;
  for (SocketId s = 0; s < topo_.num_sockets; ++s) {
    SocketConfig& cfg = effective.sockets[static_cast<size_t>(s)];

    // Automatic uncore frequency scaling: the CPU greedily selects the
    // highest uncore frequency whenever the socket has work, even when this
    // wastes power (paper Fig. 8).
    if (uncore_mode_[static_cast<size_t>(s)] == UncoreMode::kAuto) {
      cfg.uncore_freq_ghz = socket_busy[static_cast<size_t>(s)]
                                ? freqs_.max_uncore()
                                : freqs_.min_uncore();
    }

    // Energy-efficient turbo: in powersave/balanced EPB, turbo grants are
    // delayed by ~1 s after the request (paper Fig. 7); the core runs at
    // the maximum nominal frequency in the meantime.
    int turbo_cores = 0;
    for (CoreId core = 0; core < topo_.cores_per_socket; ++core) {
      const size_t idx = static_cast<size_t>(s * topo_.cores_per_socket + core);
      double& f = cfg.core_freq_ghz[static_cast<size_t>(core)];
      if (!cfg.CoreActive(topo_, core)) continue;
      if (f >= freqs_.turbo_ghz) {
        const bool granted =
            epb_ == EpbSetting::kPerformance ||
            (turbo_request_since_[idx] != kSimTimeNever &&
             now - turbo_request_since_[idx] >= params_.eet_delay);
        if (!granted) {
          f = freqs_.max_core_nominal();
          // A pending EET grant matures at request + delay: an autonomous
          // decision change bounding any steady-state fast-forward window.
          if (turbo_request_since_[idx] != kSimTimeNever) {
            next_change_ = std::min(next_change_,
                                    turbo_request_since_[idx] + params_.eet_delay);
          }
        } else {
          ++turbo_cores;
        }
      }
    }

    // Thermal turbo budget: wide turbo (> sustainable core count) under an
    // AVX-heavy mix drains a budget; when exhausted, cores fall back to
    // the nominal maximum (the paper's ~1 s 500 W FIRESTARTER peak).
    double& budget = turbo_budget_ns_[static_cast<size_t>(s)];
    if (turbo_cores > params_.turbo_sustainable_cores &&
        socket_power_scale[static_cast<size_t>(s)] >
            params_.turbo_power_scale_threshold) {
      if (budget <= 0.0) {
        budget_regime_[static_cast<size_t>(s)] = BudgetRegime::kHold;
        for (CoreId core = 0; core < topo_.cores_per_socket; ++core) {
          double& f = cfg.core_freq_ghz[static_cast<size_t>(core)];
          if (f >= freqs_.turbo_ghz) f = freqs_.max_core_nominal();
        }
      } else {
        budget_regime_[static_cast<size_t>(s)] = BudgetRegime::kDrain;
        budget = std::max(0.0, budget - static_cast<double>(dt));
        // Draining exactly 1 ns of budget per elapsed ns, the budget can
        // first be found depleted at a slice starting >= now + dt + budget;
        // flooring keeps the bound conservative (too early is safe).
        next_change_ = std::min(
            next_change_, now + dt + static_cast<SimTime>(std::floor(budget)));
      }
    } else {
      budget_regime_[static_cast<size_t>(s)] = BudgetRegime::kRecover;
      budget = std::min(static_cast<double>(params_.turbo_thermal_budget),
                        budget + params_.turbo_recovery_rate *
                                     static_cast<double>(dt));
    }
  }
  return effective;
}

void Firmware::AdvanceBudget(SimDuration dt) {
  for (SocketId s = 0; s < topo_.num_sockets; ++s) {
    double& budget = turbo_budget_ns_[static_cast<size_t>(s)];
    switch (budget_regime_[static_cast<size_t>(s)]) {
      case BudgetRegime::kDrain:
        budget = std::max(0.0, budget - static_cast<double>(dt));
        break;
      case BudgetRegime::kHold:
        break;
      case BudgetRegime::kRecover:
        budget = std::min(static_cast<double>(params_.turbo_thermal_budget),
                          budget + params_.turbo_recovery_rate *
                                       static_cast<double>(dt));
        break;
    }
  }
}

}  // namespace ecldb::hwsim
