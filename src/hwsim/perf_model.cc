#include "hwsim/perf_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecldb::hwsim {

PerfModel::PerfModel(const Topology& topo, const BandwidthModel& bw,
                     const PerfModelParams& params)
    : topo_(topo), bw_(bw), params_(params) {}

double PerfModel::CoreLimitedTimeSec(const WorkProfile& p, double f_core_ghz,
                                     bool sibling_busy) const {
  const double share = sibling_busy ? params_.ht_share : 1.0;
  const double f_hz = f_core_ghz * 1e9 * share;
  return p.instr_per_op * p.cpi / f_hz;
}

double PerfModel::MemLatencyTimeSec(const WorkProfile& p,
                                    double f_uncore_ghz) const {
  if (p.mem_accesses_per_op <= 0.0) return 0.0;
  const double lat_s = bw_.AccessLatencyNs(f_uncore_ghz) * 1e-9;
  return p.mem_accesses_per_op * lat_s / std::max(1.0, p.mlp);
}

SolveResult PerfModel::Solve(const MachineConfig& effective,
                             const std::vector<ThreadLoad>& loads) const {
  SolveResult out;
  Solve(effective, loads, &out);
  return out;
}

void PerfModel::Solve(const MachineConfig& effective,
                      const std::vector<ThreadLoad>& loads,
                      SolveResult* out_ptr) const {
  const int n_threads = topo_.total_threads();
  ECLDB_CHECK(static_cast<int>(loads.size()) == n_threads);
  ECLDB_CHECK(static_cast<int>(effective.sockets.size()) == topo_.num_sockets);

  SolveResult& out = *out_ptr;
  out.threads.assign(static_cast<size_t>(n_threads), ThreadRate{});
  out.socket_bandwidth_gbps.assign(static_cast<size_t>(topo_.num_sockets), 0.0);
  out.socket_busy_fraction.assign(static_cast<size_t>(topo_.num_sockets), 0.0);
  out.socket_power_scale.assign(static_cast<size_t>(topo_.num_sockets), 1.0);

  // Pass 1: unconstrained per-thread rates (core / memory-latency bound).
  base_rate_.assign(static_cast<size_t>(n_threads), 0.0);
  std::vector<double>& base_rate = base_rate_;
  for (HwThreadId t = 0; t < n_threads; ++t) {
    const SocketId s = topo_.SocketOfThread(t);
    const SocketConfig& cfg = effective.sockets[static_cast<size_t>(s)];
    const int local = topo_.LocalThreadOfThread(t);
    if (!cfg.ThreadActive(local)) continue;
    const ThreadLoad& load = loads[static_cast<size_t>(t)];
    if (load.profile == nullptr || load.intensity <= 0.0) continue;

    const CoreId core = topo_.CoreOfThread(t);
    // Is the sibling thread also busy (shares the core pipeline)?
    bool sibling_busy = false;
    for (int sib = 0; sib < topo_.threads_per_core; ++sib) {
      const HwThreadId other = topo_.ThreadOf(s, core, sib);
      if (other == t) continue;
      if (cfg.ThreadActive(topo_.LocalThreadOfThread(other)) &&
          loads[static_cast<size_t>(other)].profile != nullptr &&
          loads[static_cast<size_t>(other)].intensity > 0.0) {
        sibling_busy = true;
      }
    }
    const double f_core = cfg.core_freq_ghz[static_cast<size_t>(core)];
    const double t_core = CoreLimitedTimeSec(*load.profile, f_core, sibling_busy);
    const double t_mem = MemLatencyTimeSec(*load.profile, cfg.uncore_freq_ghz);
    const double t_op = std::max(t_core, t_mem) +
                        params_.overlap_residue * std::min(t_core, t_mem);
    base_rate[static_cast<size_t>(t)] = 1.0 / t_op;
  }

  // Pass 2: socket bandwidth caps (proportional throttle of memory users).
  for (SocketId s = 0; s < topo_.num_sockets; ++s) {
    const SocketConfig& cfg = effective.sockets[static_cast<size_t>(s)];
    double demand_bps = 0.0;
    int demanding_threads = 0;
    for (int lt = 0; lt < topo_.threads_per_socket(); ++lt) {
      const HwThreadId t = s * topo_.threads_per_socket() + lt;
      const ThreadLoad& load = loads[static_cast<size_t>(t)];
      if (load.profile == nullptr) continue;
      const double d = base_rate[static_cast<size_t>(t)] * load.intensity *
                       load.profile->bytes_per_op;
      demand_bps += d;
      if (d > 0.0) ++demanding_threads;
    }
    // Memory-controller contention: too many concurrent streams reduce the
    // achievable bandwidth below the channel peak.
    const double mc_penalty =
        1.0 + params_.mc_contention_per_thread *
                  std::max(0, demanding_threads - params_.mc_free_threads);
    const double cap_bps =
        bw_.SocketBandwidthGbps(cfg.uncore_freq_ghz) * 1e9 / mc_penalty;
    if (demand_bps > cap_bps && demand_bps > 0.0) {
      const double scale = cap_bps / demand_bps;
      for (int lt = 0; lt < topo_.threads_per_socket(); ++lt) {
        const HwThreadId t = s * topo_.threads_per_socket() + lt;
        const ThreadLoad& load = loads[static_cast<size_t>(t)];
        if (load.profile == nullptr || load.profile->bytes_per_op <= 0.0) continue;
        base_rate[static_cast<size_t>(t)] *= scale;
      }
    }
  }

  // Pass 3: contention groups (grouped machine-wide by profile identity,
  // in deterministic first-seen order; groups touch disjoint threads, so
  // their relative order does not affect the solution).
  size_t n_groups = 0;
  for (HwThreadId t = 0; t < n_threads; ++t) {
    const ThreadLoad& load = loads[static_cast<size_t>(t)];
    if (load.profile == nullptr || load.intensity <= 0.0) continue;
    if (base_rate[static_cast<size_t>(t)] <= 0.0) continue;
    if (load.profile->contention == ContentionClass::kNone) continue;
    size_t g = 0;
    while (g < n_groups && group_keys_[g] != load.profile) ++g;
    if (g == n_groups) {
      if (n_groups == group_keys_.size()) {
        group_keys_.push_back(load.profile);
        group_members_.emplace_back();
      } else {
        group_keys_[g] = load.profile;
      }
      group_members_[g].clear();
      ++n_groups;
    }
    group_members_[g].push_back(t);
  }
  for (size_t g = 0; g < n_groups; ++g) {
    const WorkProfile* profile = group_keys_[g];
    const std::vector<HwThreadId>& members = group_members_[g];
    if (members.size() < 2) continue;
    // Spread analysis: same core? same socket?
    const SocketId s0 = topo_.SocketOfThread(members.front());
    const CoreId c0 = topo_.CoreOfThread(members.front());
    bool same_core = true;
    bool same_socket = true;
    double n_eff = 0.0;
    double f_unc_min = 1e9;
    for (HwThreadId t : members) {
      if (topo_.SocketOfThread(t) != s0) same_socket = false;
      if (!same_socket || topo_.CoreOfThread(t) != c0) same_core = false;
      n_eff += loads[static_cast<size_t>(t)].intensity;
      f_unc_min = std::min(
          f_unc_min, effective.sockets[static_cast<size_t>(topo_.SocketOfThread(t))]
                         .uncore_freq_ghz);
    }
    if (profile->contention == ContentionClass::kSharedCacheLine) {
      // Ops serialize on cache-line ownership. Total throughput depends on
      // where the participants sit, not on how many there are.
      double total_rate;
      if (same_core) {
        // L1-local handoff: siblings pipeline almost perfectly.
        double single = 0.0;
        for (HwThreadId t : members) {
          const SocketId s = topo_.SocketOfThread(t);
          const CoreId c = topo_.CoreOfThread(t);
          const double f = effective.sockets[static_cast<size_t>(s)]
                               .core_freq_ghz[static_cast<size_t>(c)];
          single = std::max(single, f * 1e9 / params_.atomic_issue_cycles);
        }
        total_rate = single * params_.same_core_atomic_speedup;
      } else if (same_socket) {
        const double handoff_s = params_.cross_core_handoff_ns * 1e-9 *
                                 (bw_.params().f_uncore_max_ghz / f_unc_min);
        total_rate = 1.0 / handoff_s;
      } else {
        total_rate = 1.0 / (params_.cross_socket_handoff_ns * 1e-9);
      }
      // Fair share; a thread can never go faster than its own pipeline.
      const double share = total_rate / static_cast<double>(members.size());
      for (HwThreadId t : members) {
        double& r = base_rate[static_cast<size_t>(t)];
        r = std::min(r, share);
      }
    } else {  // kSharedStructure
      const double lat_scale =
          (1.0 - params_.structure_uncore_weight) +
          params_.structure_uncore_weight *
              (bw_.params().f_uncore_max_ghz / f_unc_min);
      const double extra = std::max(0.0, n_eff - 1.0);
      double penalty = 1.0 + profile->serial_linear * extra * lat_scale +
                       profile->serial_quad * extra * extra * lat_scale;
      if (!same_socket) penalty *= 1.35;  // cross-socket sharing hurts more
      for (HwThreadId t : members) {
        base_rate[static_cast<size_t>(t)] /= penalty;
      }
    }
  }

  // Pass 4: fill the result (instructions retired, bandwidth, busy stats).
  busy_sum_.assign(static_cast<size_t>(topo_.num_sockets), 0.0);
  scale_sum_.assign(static_cast<size_t>(topo_.num_sockets), 0.0);
  active_count_.assign(static_cast<size_t>(topo_.num_sockets), 0);
  std::vector<double>& busy_sum = busy_sum_;
  std::vector<double>& scale_sum = scale_sum_;
  std::vector<int>& active_count = active_count_;
  for (HwThreadId t = 0; t < n_threads; ++t) {
    const SocketId s = topo_.SocketOfThread(t);
    const SocketConfig& cfg = effective.sockets[static_cast<size_t>(s)];
    if (!cfg.ThreadActive(topo_.LocalThreadOfThread(t))) continue;
    ++active_count[static_cast<size_t>(s)];
    const ThreadLoad& load = loads[static_cast<size_t>(t)];
    ThreadRate& rate = out.threads[static_cast<size_t>(t)];
    const CoreId core = topo_.CoreOfThread(t);
    const double f_hz =
        cfg.core_freq_ghz[static_cast<size_t>(core)] * 1e9;
    const double poll_instr = f_hz * params_.poll_instr_per_cycle;
    if (load.profile != nullptr && load.intensity > 0.0) {
      const double r = base_rate[static_cast<size_t>(t)];
      rate.ops_per_sec = r;
      rate.instr_per_sec = r * load.intensity * load.profile->instr_per_op +
                           (1.0 - load.intensity) * poll_instr;
      rate.poll_instr_per_sec = (1.0 - load.intensity) * poll_instr;
      rate.bytes_per_sec = r * load.intensity * load.profile->bytes_per_op;
      out.socket_bandwidth_gbps[static_cast<size_t>(s)] += rate.bytes_per_sec * 1e-9;
      busy_sum[static_cast<size_t>(s)] += load.intensity;
      scale_sum[static_cast<size_t>(s)] += load.intensity * load.profile->power_scale;
    } else {
      rate.instr_per_sec = poll_instr;
      rate.poll_instr_per_sec = poll_instr;
    }
  }
  for (SocketId s = 0; s < topo_.num_sockets; ++s) {
    const auto idx = static_cast<size_t>(s);
    if (active_count[idx] > 0) {
      out.socket_busy_fraction[idx] = busy_sum[idx] / active_count[idx];
    }
    if (busy_sum[idx] > 0.0) {
      out.socket_power_scale[idx] = scale_sum[idx] / busy_sum[idx];
    }
  }
}

}  // namespace ecldb::hwsim
