#ifndef ECLDB_HWSIM_HASWELL_EP_H_
#define ECLDB_HWSIM_HASWELL_EP_H_

#include "hwsim/machine.h"

namespace ecldb::hwsim {

// MachineParams::HaswellEp() is declared in machine.h; this header exists
// so code depending only on the calibration does not pull in the Machine.

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_HASWELL_EP_H_
