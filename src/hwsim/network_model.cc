#include "hwsim/network_model.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::hwsim {

NetworkModel::NetworkModel(int num_nodes, const NetworkModelParams& params)
    : params_(params) {
  ECLDB_CHECK(num_nodes > 0);
  ECLDB_CHECK(params_.link_gbps > 0.0);
  busy_until_.assign(static_cast<size_t>(num_nodes), 0);
  link_scale_.assign(static_cast<size_t>(num_nodes), 1.0);
  down_until_.assign(static_cast<size_t>(num_nodes), 0);
}

void NetworkModel::SetLinkScale(NodeId n, double scale) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  ECLDB_CHECK(scale > 0.0 && scale <= 1.0);
  link_scale_[static_cast<size_t>(n)] = scale;
}

void NetworkModel::SetLinkDownUntil(NodeId n, SimTime until) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  down_until_[static_cast<size_t>(n)] = until;
}

SimDuration NetworkModel::TransferTime(double bytes) const {
  const double wire_s = bytes * 8.0 / (params_.link_gbps * 1e9);
  return FromSeconds(wire_s) + Micros(static_cast<int64_t>(params_.base_latency_us));
}

SimTime NetworkModel::ReserveTransfer(NodeId from, NodeId to, double bytes,
                                      SimTime now) {
  ECLDB_CHECK(from >= 0 && from < num_nodes());
  ECLDB_CHECK(to >= 0 && to < num_nodes());
  ECLDB_CHECK(from != to);
  SimTime& from_busy = busy_until_[static_cast<size_t>(from)];
  SimTime& to_busy = busy_until_[static_cast<size_t>(to)];
  // A partitioned endpoint defers the start (the switch buffers the
  // frames); the transfer itself is never dropped.
  const SimTime rejoined = std::max(down_until_[static_cast<size_t>(from)],
                                    down_until_[static_cast<size_t>(to)]);
  if (rejoined > now && rejoined > from_busy && rejoined > to_busy) {
    ++deferred_transfers_;
  }
  const SimTime start = std::max({now, from_busy, to_busy, rejoined});
  // The slower of the two endpoints' (possibly degraded) NICs bounds the
  // transfer rate.
  const double scale = std::min(link_scale_[static_cast<size_t>(from)],
                                link_scale_[static_cast<size_t>(to)]);
  const double wire_s = bytes * 8.0 / (params_.link_gbps * scale * 1e9);
  const SimTime wire_done = start + FromSeconds(wire_s);
  from_busy = wire_done;
  to_busy = wire_done;
  ++transfers_;
  bytes_sent_ += bytes;
  queueing_time_ += start - now;
  return wire_done + Micros(static_cast<int64_t>(params_.base_latency_us));
}

}  // namespace ecldb::hwsim
