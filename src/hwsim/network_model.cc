#include "hwsim/network_model.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::hwsim {

NetworkModel::NetworkModel(int num_nodes, const NetworkModelParams& params)
    : params_(params) {
  ECLDB_CHECK(num_nodes > 0);
  ECLDB_CHECK(params_.link_gbps > 0.0);
  busy_until_.assign(static_cast<size_t>(num_nodes), 0);
}

SimDuration NetworkModel::TransferTime(double bytes) const {
  const double wire_s = bytes * 8.0 / (params_.link_gbps * 1e9);
  return FromSeconds(wire_s) + Micros(static_cast<int64_t>(params_.base_latency_us));
}

SimTime NetworkModel::ReserveTransfer(NodeId from, NodeId to, double bytes,
                                      SimTime now) {
  ECLDB_CHECK(from >= 0 && from < num_nodes());
  ECLDB_CHECK(to >= 0 && to < num_nodes());
  ECLDB_CHECK(from != to);
  SimTime& from_busy = busy_until_[static_cast<size_t>(from)];
  SimTime& to_busy = busy_until_[static_cast<size_t>(to)];
  const SimTime start = std::max({now, from_busy, to_busy});
  const double wire_s = bytes * 8.0 / (params_.link_gbps * 1e9);
  const SimTime wire_done = start + FromSeconds(wire_s);
  from_busy = wire_done;
  to_busy = wire_done;
  ++transfers_;
  bytes_sent_ += bytes;
  queueing_time_ += start - now;
  return wire_done + Micros(static_cast<int64_t>(params_.base_latency_us));
}

}  // namespace ecldb::hwsim
