#ifndef ECLDB_HWSIM_MACHINE_H_
#define ECLDB_HWSIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "hwsim/bandwidth_model.h"
#include "hwsim/firmware.h"
#include "hwsim/hw_config.h"
#include "hwsim/perf_counters.h"
#include "hwsim/perf_model.h"
#include "hwsim/power_model.h"
#include "hwsim/pstate.h"
#include "hwsim/rapl.h"
#include "hwsim/topology.h"
#include "hwsim/work_profile.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace ecldb::hwsim {

/// All calibration parameters of the simulated machine; obtain defaults via
/// MachineParams::HaswellEp() (the paper's system under test).
struct MachineParams {
  Topology topology = Topology::HaswellEp2S();
  FrequencyTable freqs = FrequencyTable::HaswellEp();
  PowerModelParams power;
  BandwidthModelParams bandwidth;
  PerfModelParams perf;
  FirmwareParams firmware;
  RaplParams rapl;
  /// Latency of writing a configuration (P-/C-state transitions are in the
  /// microsecond range, cf. paper Fig. 12 discussion).
  SimDuration config_apply_latency = Micros(20);
  /// Uninterrupted idle time before a socket is promoted from the shallow
  /// to the deep C-state (hardware demotion heuristics).
  SimDuration c6_promotion = Millis(2);

  /// The 2-socket Xeon E5-2690 v3 (Haswell-EP) of the paper, calibrated to
  /// the Section 2 measurements.
  static MachineParams HaswellEp();

  /// A newer 2-socket server generation (Skylake-SP-class: 28 cores per
  /// socket, mesh uncore, 6 DDR4-2666 channels). Demonstrates that energy
  /// profiles and the ECL are hardware independent — nothing in the
  /// control loops is calibrated to Haswell.
  static MachineParams SkylakeSp();

  /// A wimpy cluster node (Atom/ARM-class microserver: one socket, four
  /// single-threaded cores, narrow frequency range, single-channel
  /// memory). Per-node peak is two orders of magnitude below Haswell-EP
  /// but so is the idle floor — the wimpy-vs-brawny cluster trade-off of
  /// Schall/Härder and Lang et al. (see PAPERS.md).
  static MachineParams Wimpy();
};

/// The simulated server. Integrates power/energy/performance over virtual
/// time as an advancer of the Simulator.
///
/// Control plane (what the DBMS/ECL can do on the real machine):
/// apply socket configurations (C-/P-states), set the EPB, pin the uncore
/// clock or leave it to the CPU.
///
/// Work plane (what execution offers): per-hardware-thread work profiles
/// and intensities; the machine solves execution rates each slice and
/// credits completed operations back.
///
/// Observables (what software can measure): RAPL energy counters,
/// instructions-retired counters, and — for experiments that had a power
/// meter attached — the modeled PSU power.
class Machine {
 public:
  Machine(sim::Simulator* simulator, const MachineParams& params);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const Topology& topology() const { return params_.topology; }
  const FrequencyTable& freqs() const { return params_.freqs; }
  const MachineParams& params() const { return params_; }

  // --- Control plane -------------------------------------------------

  /// Applies a socket configuration. Frequencies snap to the nearest
  /// settable P-state. Takes effect immediately (transition costs are in
  /// the microsecond range and are accounted as a brief thread stall).
  void ApplySocketConfig(SocketId socket, SocketConfig config);
  void ApplyMachineConfig(const MachineConfig& config);
  const SocketConfig& requested_config(SocketId socket) const {
    return requested_.sockets[static_cast<size_t>(socket)];
  }
  /// Firmware-resolved configuration of the last completed slice.
  const MachineConfig& effective_config() const { return effective_; }

  void SetEpb(EpbSetting epb) {
    if (firmware_.epb() == epb) return;
    firmware_.set_epb(epb);
    dirty_ = true;
  }
  void SetUncoreMode(SocketId socket, UncoreMode mode) {
    if (firmware_.uncore_mode(socket) == mode) return;
    firmware_.SetUncoreMode(socket, mode);
    dirty_ = true;
  }

  /// Number of configuration writes so far (diagnostics).
  int64_t config_writes() const { return config_writes_; }

  // --- Work plane -----------------------------------------------------

  /// Offers work to a hardware thread for subsequent slices. `profile`
  /// must outlive the machine or be replaced before destruction.
  void SetThreadLoad(HwThreadId thread, const WorkProfile* profile,
                     double intensity);
  void ClearThreadLoads();

  /// Drains the completed-operation credit of a thread accumulated since
  /// the last call (fluid execution model).
  double TakeCompletedOps(HwThreadId thread);

  /// Last solved completion rate (ops/s at intensity 1) of a thread.
  double CurrentRate(HwThreadId thread) const;

  // --- Observables ----------------------------------------------------

  uint64_t ReadRaplUj(SocketId socket, RaplDomain domain) const {
    rapl_reads_.Increment();
    if (rapl_dropout_) {
      return rapl_frozen_[static_cast<size_t>(socket) * kNumRaplDomains +
                          static_cast<size_t>(domain)];
    }
    return rapl_.ReadEnergyUj(socket, domain);
  }

  /// Fault hook (faultsim): while dropped out, the published RAPL reads
  /// freeze at their value at the dropout instant — the MSR interface
  /// returns stale counters, so software-side power deltas collapse to
  /// zero. Ground-truth energy integration (ExactEnergyJoules /
  /// TotalEnergyJoules) is unaffected: the hardware keeps drawing power,
  /// only the sensor went away.
  void SetRaplDropout(bool dropped);
  bool rapl_dropout() const { return rapl_dropout_; }
  double ExactEnergyJoules(SocketId socket, RaplDomain domain) const {
    return rapl_.ExactEnergyJoules(socket, domain);
  }
  /// Ground-truth cumulative energy over all sockets and domains (J).
  double TotalEnergyJoules() const;

  uint64_t ReadInstructions(HwThreadId thread) const {
    return counters_.ReadThread(thread);
  }
  uint64_t ReadSocketInstructions(SocketId socket) const {
    return counters_.ReadSocket(socket);
  }
  /// Cumulative instructions a socket's active threads retired *polling*
  /// empty message queues (the idle-spin share of ReadSocketInstructions).
  /// Software subtracts this from instruction deltas to estimate the rate
  /// of real work.
  uint64_t ReadSocketPolledInstructions(SocketId socket) const {
    return static_cast<uint64_t>(polled_instr_[static_cast<size_t>(socket)]);
  }

  /// Instantaneous modeled power of the last slice.
  double InstantPkgPowerW(SocketId socket) const;
  double InstantDramPowerW(SocketId socket) const;
  double InstantRaplPowerW() const;
  /// Modeled wall power (as an attached LMG450 would report).
  double InstantPsuPowerW() const;

  /// Solved DRAM bandwidth of the last slice, GB/s.
  double SocketBandwidthGbps(SocketId socket) const;

  /// Cumulative DRAM bytes transferred by a socket (integrated from the
  /// solved bandwidth, the software-visible analogue of the uncore CAS
  /// counters). Deltas over an interval give the memory-boundedness of
  /// the running work — a work-profile feature of the learned profile
  /// predictor.
  double ReadSocketDramBytes(SocketId socket) const {
    return dram_bytes_[static_cast<size_t>(socket)];
  }

  const PowerModel& power_model() const { return power_model_; }
  const BandwidthModel& bandwidth_model() const { return bandwidth_model_; }
  const PerfModel& perf_model() const { return perf_model_; }

  // --- Telemetry ------------------------------------------------------

  /// Registers the machine's observables with a telemetry context:
  /// per-socket power/bandwidth gauges, instruction and C-state residency
  /// counters, and one trace lane per socket (C-state residency spans and
  /// frequency-change instants). Call at most once, before running.
  /// Instrumentation without an attached context costs nothing beyond the
  /// always-on polled-instruction accumulation (two adds per slice).
  void AttachTelemetry(telemetry::Telemetry* telemetry);

 private:
  void Advance(SimTime t0, SimTime t1);

  // --- Steady-state fast-forward (see docs/architecture.md) -----------
  //
  // A slice whose inputs match the previous slice's (no config write, load
  // change, or pending stall, and no firmware time boundary crossed) has a
  // bit-identical solution, so the expensive model solves are skipped and
  // only the per-slice accumulations are replayed. `FastForward` extends
  // this across whole multi-slice gaps for the Simulator.

  /// Re-solves firmware/perf/power for one slice and refreshes the cache.
  void SolveSlice(SimTime t0, SimTime t1);
  /// Replays the per-slice accumulations of a clean slice (bit-identical
  /// to SolveSlice with unchanged inputs and work_frac == 1).
  void IntegrateSlice(SimTime t0, SimTime t1);
  /// Stationarity horizon for the Simulator's fast-forward.
  SimTime StationaryUntil(SimTime now) const;
  /// Integrates (t0, t1] in `slice`-bounded steps using the cached solve.
  void FastForward(SimTime t0, SimTime t1, SimDuration slice);

  sim::Simulator* simulator_;
  MachineParams params_;
  PowerModel power_model_;
  BandwidthModel bandwidth_model_;
  PerfModel perf_model_;
  Firmware firmware_;
  RaplCounters rapl_;
  PerfCounters counters_;

  MachineConfig requested_;
  MachineConfig effective_;
  std::vector<ThreadLoad> loads_;
  std::vector<double> ops_credit_;
  std::vector<double> current_rate_;
  std::vector<PowerBreakdown> instant_power_;
  std::vector<double> instant_bandwidth_;
  /// Pending stall (from configuration writes) applied to the next slice.
  SimDuration pending_stall_ = 0;
  int64_t config_writes_ = 0;
  /// Per-socket time the socket last became idle (kSimTimeNever = active).
  std::vector<SimTime> idle_since_;
  /// Per-socket cumulative polled (idle-spin) instructions.
  std::vector<double> polled_instr_;
  /// Per-socket cumulative DRAM bytes (integrated solved bandwidth).
  std::vector<double> dram_bytes_;
  /// Per-socket polling rate of the cached solution (instr/s).
  std::vector<double> cached_poll_rate_;

  /// RAPL sensor dropout (fault hook): frozen published reads per
  /// socket x domain while rapl_dropout_ is set.
  bool rapl_dropout_ = false;
  std::vector<uint64_t> rapl_frozen_;

  // Telemetry (optional; nullptr = uninstrumented).
  telemetry::Telemetry* telemetry_ = nullptr;
  mutable telemetry::Counter rapl_reads_;
  std::vector<int> socket_lane_;        // trace lane per socket
  std::vector<int> cstate_;             // 0 = active, 1 = shallow, 2 = deep
  std::vector<SimTime> cstate_since_;   // start of the current residency
  std::vector<telemetry::Counter> residency_ns_;  // [socket * 3 + state]
  std::vector<double> last_uncore_ghz_;  // freq-change instant tracking

  /// True when control-/work-plane inputs changed since the last solve.
  bool dirty_ = true;
  /// True when `solved_`/`instant_power_` describe a stall-free slice with
  /// the current inputs.
  bool cache_valid_ = false;
  /// Earliest time the firmware or C-state tracking would change behaviour
  /// on its own; a slice starting at or after it must re-solve.
  SimTime next_boundary_ = 0;
  /// Last slice solution (also the reused solve output buffer).
  SolveResult solved_;
  /// Per-thread `ops_per_sec * intensity` of the cached solution.
  std::vector<double> cached_ops_rate_;
  // Scratch hoisted out of the per-slice path.
  std::vector<bool> socket_busy_scratch_;
  std::vector<double> socket_scale_scratch_;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_MACHINE_H_
