#include "hwsim/topology.h"

namespace ecldb::hwsim {

bool operator==(const Topology& a, const Topology& b) {
  return a.num_sockets == b.num_sockets &&
         a.cores_per_socket == b.cores_per_socket &&
         a.threads_per_core == b.threads_per_core;
}

}  // namespace ecldb::hwsim
