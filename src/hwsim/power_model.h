#ifndef ECLDB_HWSIM_POWER_MODEL_H_
#define ECLDB_HWSIM_POWER_MODEL_H_

#include <vector>

#include "common/types.h"
#include "hwsim/hw_config.h"
#include "hwsim/topology.h"

namespace ecldb::hwsim {

/// Power readings split the way RAPL reports them on Haswell-EP: the
/// package domain (cores + uncore/LLC) and the DRAM (memory controller)
/// domain (paper Section 2, Figure 3).
struct PowerBreakdown {
  double pkg_w = 0.0;
  double dram_w = 0.0;

  double total() const { return pkg_w + dram_w; }
};

/// Dynamic activity of one socket during a time slice; produced by the
/// performance model / machine and consumed by the power model.
struct SocketActivity {
  /// Mean busy fraction (C0 residency doing useful work) per active thread,
  /// weighted; 0 when all active threads only poll.
  double busy_fraction = 0.0;
  /// DRAM traffic in GB/s.
  double bandwidth_gbps = 0.0;
  /// Mean dynamic-power scale of the executing instruction mix.
  double power_scale = 1.0;
  /// True iff every socket of the machine is idle, which is the condition
  /// for halting the uncore clock and power-gating the LLC (Figure 5).
  bool uncore_halted = false;
  /// True while an idle socket is still in the shallow C-state (it has
  /// not been idle long enough to be promoted to the deep state).
  bool shallow_idle = false;
};

/// Calibration constants of the power model. Defaults are fit to the
/// paper's Haswell-EP measurements (Figures 3-5); see haswell_ep.cc.
struct PowerModelParams {
  /// Package base power per socket with the uncore halted. The paper
  /// observed an unexplained asymmetry between the two sockets (Fig. 5),
  /// reproduced via per-socket values.
  std::vector<double> pkg_base_halted_w = {13.0, 9.0};
  /// Uncore power at frequency f: uncore_lin*f + uncore_quad*f^2 (GHz in).
  double uncore_lin_w_per_ghz = 2.2;
  double uncore_quad_w_per_ghz2 = 2.6;
  /// Core leakage power when a core is active (any C0 thread), per core.
  double core_leak_w = 0.55;
  /// Core dynamic power: dyn * f * v(f)^2 * busy, with
  /// v(f) = volt_base + volt_slope * (f - f_min).
  double core_dyn_w = 1.9;
  double volt_base = 0.80;
  double volt_slope = 0.23;
  double f_min_ghz = 1.2;
  /// Extra dynamic power fraction when the second HyperThread of a core is
  /// also busy (siblings share the pipeline; nearly free, Fig. 4).
  double ht_sibling_dyn_frac = 0.08;
  /// Idle (polling, C0 but no work) dynamic fraction of a core.
  double poll_dyn_frac = 0.12;
  /// DRAM static power per socket and dynamic power per GB/s.
  double dram_static_w = 8.0;
  double dram_w_per_gbps = 0.35;
  /// C-state depth: a freshly idled socket first rests in a shallow state
  /// (clock-gated cores, uncore still up) and only reaches the deep state
  /// (power-gated cores and LLC) after `c6_promotion` of uninterrupted
  /// idleness. Frequent RTI switching therefore pays shallow-idle power —
  /// the physical cost of a high switching frequency.
  double shallow_idle_extra_w = 9.0;
  /// PSU/board model: psu = psu_static + psu_conversion * rapl_total.
  double psu_static_w = 38.0;
  double psu_conversion = 1.15;
};

/// Converts a socket's configuration + activity into package and DRAM
/// power. Pure and stateless; the Machine integrates it over time.
class PowerModel {
 public:
  PowerModel(const Topology& topo, const PowerModelParams& params);

  /// Power of socket `socket` under configuration `cfg` (with effective,
  /// firmware-granted core frequencies) and activity `act`.
  PowerBreakdown SocketPower(SocketId socket, const SocketConfig& cfg,
                             const SocketActivity& act) const;

  /// Wall power drawn from the power supply unit for a total RAPL power.
  double PsuPowerW(double rapl_total_w) const;

  const PowerModelParams& params() const { return params_; }

 private:
  double CorePower(double freq_ghz, double busy, bool both_siblings_busy,
                   double power_scale) const;

  Topology topo_;
  PowerModelParams params_;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_POWER_MODEL_H_
