#ifndef ECLDB_HWSIM_CLUSTER_H_
#define ECLDB_HWSIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "hwsim/machine.h"
#include "hwsim/network_model.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace ecldb::hwsim {

/// Whole-node power behaviour: everything the RAPL domains of the node's
/// Machine do NOT see. Where a package C-state costs microseconds, a node
/// transition costs tens of seconds and a boot-power premium — a new
/// transition-cost regime (see ecl::CalibrateNodeTransition).
struct NodePowerParams {
  /// Platform power while the node is on, outside the RAPL domains:
  /// board, fans, NIC, storage. Drawn whenever the node is on, no matter
  /// how deeply the packages sleep — the cost whole-node power-down
  /// exists to eliminate.
  double platform_overhead_w = 55.0;
  /// Wall power while off (BMC/IPMI standby).
  double off_power_w = 4.5;
  /// Wall power during boot (firmware + OS + DBMS restart at near-full
  /// activity — above the idle wall power of machine plus platform, so
  /// a boot always carries an energy premium over staying idle).
  double boot_power_w = 180.0;
  /// Power-up to serving-capable latency.
  SimDuration boot_latency = Seconds(20);

  /// Microserver-class node power (pairs with MachineParams::Wimpy()).
  static NodePowerParams Wimpy() {
    NodePowerParams p;
    p.platform_overhead_w = 4.0;
    p.off_power_w = 0.6;
    p.boot_power_w = 8.0;
    p.boot_latency = Seconds(8);
    return p;
  }
};

/// One node of the cluster: a full machine plus its node-scope power
/// behaviour.
struct ClusterNodeParams {
  MachineParams machine = MachineParams::HaswellEp();
  NodePowerParams power;
};

struct ClusterParams {
  std::vector<ClusterNodeParams> nodes;
  NetworkModelParams network;
  /// Optional telemetry context. Each node's machine instruments under a
  /// "node{N}/" path prefix; cluster-level node-state gauges and network
  /// counters register unprefixed.
  telemetry::Telemetry* telemetry = nullptr;

  /// N identical nodes.
  static ClusterParams Homogeneous(int num_nodes, const ClusterNodeParams& node,
                                   const NetworkModelParams& network = {});
};

/// An N-node rack: one simulated Machine per node on a shared simulator,
/// an inter-node network, and a whole-node power-state machine
/// (on / booting / off) layered over the machines.
///
/// Energy accounting composes three terms per node: the machine's RAPL
/// energy while the node is on, the platform overhead while on, and the
/// off/boot wall power while down — RAPL energy the machine model accrues
/// while the node is off or booting is excluded (the packages are
/// physically unpowered; the Machine object merely idles so advancer
/// bookkeeping stays uniform and single-node behaviour is untouched).
class Cluster {
 public:
  enum class NodeState { kOn, kBooting, kOff };

  Cluster(sim::Simulator* simulator, const ClusterParams& params);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_nodes() const { return static_cast<int>(machines_.size()); }
  Machine& machine(NodeId n) { return *machines_[static_cast<size_t>(n)]; }
  const Machine& machine(NodeId n) const {
    return *machines_[static_cast<size_t>(n)];
  }
  NetworkModel& network() { return network_; }
  const ClusterParams& params() const { return params_; }

  NodeState state(NodeId n) const { return nodes_[static_cast<size_t>(n)].state; }
  bool IsOn(NodeId n) const { return state(n) == NodeState::kOn; }
  int NodesOn() const;
  /// Time of the node's last power-state change.
  SimTime StateSince(NodeId n) const {
    return nodes_[static_cast<size_t>(n)].since;
  }

  /// A failed node is crashed hardware (not a policy power-down): it is
  /// off, refuses policy wakes (the wake hysteresis must ignore it), and
  /// only a fault-schedule restart clears the flag.
  bool IsFailed(NodeId n) const {
    return nodes_[static_cast<size_t>(n)].failed;
  }
  /// On and not failed: the only nodes placement may target.
  bool IsAvailable(NodeId n) const { return IsOn(n) && !IsFailed(n); }
  int NodesAvailable() const;

  /// Powers a node down (must be on). The machine is forced to the idle
  /// configuration; its RAPL accrual stops counting toward the node's
  /// energy. Callers are responsible for draining the node first — the
  /// cluster layer models hardware, not policy.
  void PowerDown(NodeId n);

  /// Starts booting an off node; `on_booted` (may be null) runs when the
  /// node reaches kOn after NodePowerParams::boot_latency. A pending boot
  /// failure (see InjectBootFailures) sends the node back to kOff at the
  /// end of the boot instead — the boot energy is spent either way — and
  /// `on_booted` is not called.
  void PowerUp(NodeId n, std::function<void()> on_booted = nullptr);

  /// Fault hook: ungraceful whole-node loss, legal from kOn or kBooting.
  /// The node drops to kOff instantly (no drain, no phase grace), the
  /// machine object idles, and the failed flag is set so policy wakes
  /// skip the node until ClearFailed. Callers (the fault injector) are
  /// responsible for telling the engine layer what died.
  void Crash(NodeId n);

  /// Fault hook: clears the failed flag (the operator replaced the node /
  /// the transient cleared); the node stays kOff until powered up.
  void ClearFailed(NodeId n);

  /// Fault hook: the next `count` PowerUp attempts of `n` fail at boot
  /// completion (transient firmware/POST failure). Each failed attempt
  /// still burns a full boot-latency of boot power.
  void InjectBootFailures(NodeId n, int count);

  /// Node energy in joules: machine RAPL while on + platform overhead
  /// while on + off/boot wall power while down/booting.
  double NodeEnergyJoules(NodeId n) const;
  double TotalEnergyJoules() const;

  int64_t power_downs() const { return power_downs_; }
  int64_t power_ups() const { return power_ups_; }
  int64_t crashes() const { return crashes_; }
  int64_t boot_failures() const { return boot_failures_; }
  /// Time of the last Crash() on any node (-1: never). The cluster ECL
  /// holds power-downs for a recovery window after this.
  SimTime last_crash_time() const { return last_crash_time_; }

 private:
  struct Node {
    NodeState state = NodeState::kOn;
    SimTime since = 0;
    /// Machine energy reading at the last transition to kOn (RAPL accrued
    /// before that instant in off/boot phases is excluded).
    double machine_e_at_on = 0.0;
    /// Accumulated node energy of all finished phases.
    double accumulated_j = 0.0;
    int64_t boot_generation = 0;
    /// Crashed hardware, not a policy power-down (see IsFailed).
    bool failed = false;
    /// Remaining injected boot failures (see InjectBootFailures).
    int boot_failures_pending = 0;
  };

  /// Closes the current phase's energy into accumulated_j at `now`.
  void FoldPhase(NodeId n, SimTime now);

  sim::Simulator* simulator_;
  ClusterParams params_;
  std::vector<std::unique_ptr<Machine>> machines_;
  NetworkModel network_;
  std::vector<Node> nodes_;
  int64_t power_downs_ = 0;
  int64_t power_ups_ = 0;
  int64_t crashes_ = 0;
  int64_t boot_failures_ = 0;
  SimTime last_crash_time_ = -1;
};

}  // namespace ecldb::hwsim

#endif  // ECLDB_HWSIM_CLUSTER_H_
