#ifndef ECLDB_MSG_MESSAGE_H_
#define ECLDB_MSG_MESSAGE_H_

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace ecldb::msg {

/// Operation codes understood by the engine's partition executors.
enum class MessageType : int32_t {
  kInvalid = 0,
  /// Execute `payload[0]` operations of the query's work profile against
  /// the target partition (fluid work accounting).
  kWorkUnits = 1,
  /// Point read of key `payload[0]` (functional mode).
  kGet = 2,
  /// Point write of key `payload[0]` to value `payload[1]` (functional).
  kPut = 3,
  /// Scan with predicate `payload[0]` (functional mode).
  kScan = 4,
  /// Reply carrying a result in `payload` (functional mode).
  kResult = 5,
};

/// Fixed-size message exchanged between worker threads. Plain data so that
/// messages can live in lock-free rings without allocation.
struct Message {
  QueryId query_id = 0;
  PartitionId partition = -1;
  MessageType type = MessageType::kInvalid;
  int32_t origin_socket = -1;
  /// Placement epoch at send time (stamped by MessageLayer::Send). A
  /// message routed under an older placement may arrive at a socket that
  /// no longer homes its partition; the message layer forwards it to the
  /// current home.
  int32_t epoch = 0;
  int64_t payload[4] = {0, 0, 0, 0};
};

static_assert(sizeof(Message) == 56, "keep messages compact and fixed-size");

/// Fluid operation count carried by a message: by engine convention,
/// `payload[0]` holds the remaining operations as a bit-cast double (the
/// scheduler writes it on submit and on mid-batch requeue). Raw messages
/// with a zero payload decode to 0.0.
inline double MessageOps(const Message& m) {
  return std::bit_cast<double>(m.payload[0]);
}
inline int64_t EncodeMessageOps(double ops) {
  return std::bit_cast<int64_t>(ops);
}

/// Morsel coordinates carried in `payload[3]` by morselized kScan /
/// kWorkUnits messages: when a partition task is split for intra-query
/// parallelism, each sub-message carries its morsel index and the total
/// morsel count so the functional executor can scan just its row range.
/// Only those two types use this encoding — kGet/kPut/kResult keep
/// payload[3] for their own arguments — and an unsplit task leaves
/// payload[3] untouched (count 0 decodes as "whole partition").
inline int64_t EncodeMorsel(int32_t index, int32_t count) {
  return (static_cast<int64_t>(count) << 32) |
         static_cast<int64_t>(static_cast<uint32_t>(index));
}
inline int32_t MorselIndex(int64_t arg1) {
  return static_cast<int32_t>(arg1 & 0xffffffff);
}
inline int32_t MorselCount(int64_t arg1) {
  return static_cast<int32_t>(arg1 >> 32);
}

/// Human-readable name of a message type (diagnostics).
const char* MessageTypeName(MessageType type);

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_MESSAGE_H_
