#include "msg/message.h"

namespace ecldb::msg {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kInvalid:
      return "invalid";
    case MessageType::kWorkUnits:
      return "work_units";
    case MessageType::kGet:
      return "get";
    case MessageType::kPut:
      return "put";
    case MessageType::kScan:
      return "scan";
    case MessageType::kResult:
      return "result";
  }
  return "?";
}

}  // namespace ecldb::msg
