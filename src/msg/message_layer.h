#ifndef ECLDB_MSG_MESSAGE_LAYER_H_
#define ECLDB_MSG_MESSAGE_LAYER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "msg/inter_socket_comm.h"
#include "msg/intra_socket_router.h"
#include "msg/message.h"
#include "msg/placement_view.h"
#include "telemetry/telemetry.h"

namespace ecldb::msg {

struct MessageLayerParams {
  size_t partition_queue_capacity = 1 << 14;
  size_t comm_channel_capacity = 1 << 14;
  size_t comm_pump_batch = 256;
  /// Optional telemetry context. When set, the layer's backpressure and
  /// forwarding counters live in the registry (`msg/socket{S}/...`) and
  /// per-socket queue-occupancy gauges are registered. Counter semantics
  /// are unchanged either way (the handles fall back to inline storage).
  telemetry::Telemetry* telemetry = nullptr;
};

/// Facade of the hierarchical message passing layer (paper Fig. 1): one
/// intra-socket router per socket (partition queues + ownership protocol)
/// plus one inter-socket communication endpoint per socket.
///
/// Routing consults the shared PlacementView — the layer holds no copy of
/// the partition-home mapping. The layer owns every partition queue; a
/// live migration moves the queue object between routers (`Rehome`), so
/// queued messages travel with their partition. Messages that were in
/// flight across sockets when a migration committed arrive at the old
/// home under a stale epoch and are forwarded to the current home.
class MessageLayer {
 public:
  /// Per-socket backpressure and migration-forwarding counters.
  struct SocketStats {
    /// Send() calls from this socket that returned false (the caller had
    /// to spill or drop).
    int64_t send_rejects = 0;
    /// Router Enqueue() rejections on this socket from any producer
    /// (sends, comm pumps, scheduler requeues).
    int64_t enqueue_rejects = 0;
    /// Outbound comm-channel rejections on this socket (full channel).
    int64_t comm_rejects = 0;
    /// Messages that arrived here after their partition migrated away and
    /// were forwarded to the current home.
    int64_t stale_forwards = 0;
    /// Messages that travelled into this socket inside a rehomed queue.
    int64_t rehome_transfers = 0;
  };

  /// `placement` must outlive the layer and is the single source of truth
  /// for partition homes.
  MessageLayer(int num_sockets, const PlacementView* placement,
               const MessageLayerParams& params);

  int num_sockets() const { return static_cast<int>(routers_.size()); }
  int num_partitions() const { return placement_->num_partitions(); }
  SocketId HomeOf(PartitionId p) const { return placement_->HomeOf(p); }

  /// Routes a message from a worker on `origin_socket` to its partition:
  /// directly into the local partition queue, or via the communication
  /// endpoints when the partition is homed remotely. Stamps the current
  /// placement epoch. Returns false on backpressure (full queue/channel).
  bool Send(SocketId origin_socket, const Message& m);

  /// Runs one pump round of the communication thread of `socket`,
  /// forwarding stale-epoch arrivals to the partition's current home.
  /// Returns the number of messages transferred.
  size_t PumpComm(SocketId socket);

  /// Migration rehome: moves partition `p`'s queue — with any queued
  /// messages — from `from`'s router to `to`'s router. The queue must be
  /// quiesced (unowned); the caller commits the new home in the placement
  /// afterwards, within the same event. Returns the number of messages
  /// that travelled with the queue.
  size_t Rehome(PartitionId p, SocketId from, SocketId to);

  IntraSocketRouter* router(SocketId s) { return routers_[static_cast<size_t>(s)].get(); }
  CommEndpoint* comm(SocketId s) { return comms_[static_cast<size_t>(s)].get(); }
  PartitionQueue* partition_queue(PartitionId p) {
    return queues_[static_cast<size_t>(p)].get();
  }
  const PartitionQueue* partition_queue(PartitionId p) const {
    return queues_[static_cast<size_t>(p)].get();
  }

  /// Crash recovery: discards every queued message — partition queues and
  /// outbound comm channels alike. Every partition queue must be unowned
  /// (the scheduler releases worker ownership first); event context only.
  /// Returns the number of messages discarded.
  size_t DrainAllQueues();

  /// Combined per-socket counters (layer counters + the socket's router
  /// enqueue rejections).
  SocketStats socket_stats(SocketId s) const;

  /// Pending messages anywhere in the layer (approximate).
  size_t PendingApprox() const;

 private:
  /// Delivers a pumped message at socket `at`; forwards it onward when the
  /// partition no longer lives there.
  bool DeliverAt(SocketId at, const Message& m);

  /// Counter-handle mirror of SocketStats. Without a telemetry context the
  /// handles count into their own inline storage — identical cost and
  /// thread-safety to the plain int64 fields they replaced. The router's
  /// enqueue-reject counter stays an atomic inside the router (workers hit
  /// it concurrently) and is exported read-through.
  struct SocketCounters {
    telemetry::Counter send_rejects;
    telemetry::Counter comm_rejects;
    telemetry::Counter stale_forwards;
    telemetry::Counter rehome_transfers;
  };

  MessageLayerParams params_;
  const PlacementView* placement_;
  std::vector<std::unique_ptr<PartitionQueue>> queues_;  // by partition id
  std::vector<std::unique_ptr<IntraSocketRouter>> routers_;
  std::vector<std::unique_ptr<CommEndpoint>> comms_;
  std::vector<SocketCounters> stats_;
  CommEndpoint::DeliverFn deliver_;
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_MESSAGE_LAYER_H_
