#ifndef ECLDB_MSG_MESSAGE_LAYER_H_
#define ECLDB_MSG_MESSAGE_LAYER_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "msg/inter_socket_comm.h"
#include "msg/intra_socket_router.h"
#include "msg/message.h"

namespace ecldb::msg {

struct MessageLayerParams {
  size_t partition_queue_capacity = 1 << 14;
  size_t comm_channel_capacity = 1 << 14;
  size_t comm_pump_batch = 256;
};

/// Facade of the hierarchical message passing layer (paper Fig. 1): one
/// intra-socket router per socket (partition queues + ownership protocol)
/// plus one inter-socket communication endpoint per socket.
class MessageLayer {
 public:
  /// `partition_home[p]` gives the socket homing global partition p.
  MessageLayer(int num_sockets, const std::vector<SocketId>& partition_home,
               const MessageLayerParams& params);

  int num_sockets() const { return static_cast<int>(routers_.size()); }
  int num_partitions() const { return static_cast<int>(partition_home_.size()); }
  SocketId HomeOf(PartitionId p) const {
    return partition_home_[static_cast<size_t>(p)];
  }

  /// Routes a message from a worker on `origin_socket` to its partition:
  /// directly into the local partition queue, or via the communication
  /// endpoints when the partition is homed remotely. Returns false on
  /// backpressure (full queue/channel).
  bool Send(SocketId origin_socket, const Message& m);

  /// Runs one pump round of the communication thread of `socket`.
  /// Returns the number of messages transferred.
  size_t PumpComm(SocketId socket);

  IntraSocketRouter* router(SocketId s) { return routers_[static_cast<size_t>(s)].get(); }
  CommEndpoint* comm(SocketId s) { return comms_[static_cast<size_t>(s)].get(); }

  /// Pending messages anywhere in the layer (approximate).
  size_t PendingApprox() const;

 private:
  MessageLayerParams params_;
  std::vector<SocketId> partition_home_;
  std::vector<std::unique_ptr<IntraSocketRouter>> routers_;
  std::vector<std::unique_ptr<CommEndpoint>> comms_;
  std::vector<IntraSocketRouter*> router_ptrs_;
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_MESSAGE_LAYER_H_
