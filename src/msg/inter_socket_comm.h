#ifndef ECLDB_MSG_INTER_SOCKET_COMM_H_
#define ECLDB_MSG_INTER_SOCKET_COMM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "msg/intra_socket_router.h"
#include "msg/message.h"
#include "msg/mpmc_ring.h"

namespace ecldb::msg {

/// Inter-socket level of the hierarchical message passing layer:
/// "communication between sockets is handled by a communication thread per
/// socket that buffers messages targeting remote sockets and executes the
/// actual message transfer to the communication thread on the remote
/// socket side" (paper Section 3).
///
/// One CommEndpoint exists per socket. Workers of the socket push outbound
/// messages into per-destination outboxes; the socket's communication
/// thread calls `Pump()` to move batches across.
class CommEndpoint {
 public:
  CommEndpoint(SocketId socket, int num_sockets, size_t channel_capacity);

  SocketId socket() const { return socket_; }

  /// Buffers a message destined for `dest` (!= own socket). Any worker of
  /// this socket may call this concurrently; the socket's communication
  /// thread is the only consumer. Returns false when the channel is full.
  bool BufferOutbound(SocketId dest, const Message& m);

  /// Delivery callback: hands one message to the destination socket;
  /// returns false when the destination cannot accept it now (the message
  /// is re-buffered and retried on the next pump).
  using DeliverFn = std::function<bool(SocketId dest, const Message& m)>;

  /// Transfers up to `max_batch` buffered messages per destination via
  /// `deliver`. Called by the communication thread. Returns the number of
  /// messages transferred.
  size_t Pump(const DeliverFn& deliver, size_t max_batch);

  /// Convenience overload delivering directly into the destination
  /// routers (no placement indirection; direct msg-level use and tests).
  size_t Pump(std::vector<IntraSocketRouter*>& routers, size_t max_batch);

  /// Messages waiting in all outboxes (approximate).
  size_t OutboundPendingApprox() const;

  /// Total messages ever transferred by this endpoint.
  int64_t transferred() const { return transferred_; }

 private:
  SocketId socket_;
  std::vector<std::unique_ptr<MpmcRing<Message>>> outbox_;  // per destination
  int64_t transferred_ = 0;
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_INTER_SOCKET_COMM_H_
