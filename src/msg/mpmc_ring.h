#ifndef ECLDB_MSG_MPMC_RING_H_
#define ECLDB_MSG_MPMC_RING_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/check.h"

namespace ecldb::msg {

/// Bounded lock-free multi-producer/multi-consumer ring buffer
/// (Vyukov-style sequence-number design).
///
/// Partition queues are built on this: any worker of a socket may enqueue
/// messages for any partition, and whichever worker owns the partition at
/// the moment drains it.
template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = cell->value;
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t SizeApprox() const {
    const size_t e = enqueue_pos_.load(std::memory_order_acquire);
    const size_t d = dequeue_pos_.load(std::memory_order_acquire);
    return e >= d ? e - d : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  struct Cell {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_MPMC_RING_H_
