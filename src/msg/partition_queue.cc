#include "msg/partition_queue.h"

#include "common/check.h"

namespace ecldb::msg {

PartitionQueue::PartitionQueue(PartitionId partition, size_t capacity)
    : partition_(partition), ring_(capacity) {}

void PartitionQueue::AddPendingOps(double delta) {
  // CAS loop instead of fetch_add: atomic<double>::fetch_add is C++20 but
  // not universally lowered; relaxed order is enough for a diagnostic
  // counter that is only exact when the queue is quiesced.
  double cur = pending_ops_.load(std::memory_order_relaxed);
  while (!pending_ops_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
  }
}

bool PartitionQueue::Enqueue(const Message& m) {
  ECLDB_DCHECK(m.partition == partition_);
  if (!ring_.TryPush(m)) return false;
  AddPendingOps(MessageOps(m));
  return true;
}

bool PartitionQueue::TryAcquire(int owner) {
  ECLDB_DCHECK(owner >= 0);
  int expected = -1;
  return owner_.compare_exchange_strong(expected, owner,
                                        std::memory_order_acq_rel);
}

void PartitionQueue::Release(int owner) {
  int expected = owner;
  const bool ok = owner_.compare_exchange_strong(expected, -1,
                                                 std::memory_order_acq_rel);
  ECLDB_CHECK_MSG(ok, "Release by non-owner");
}

size_t PartitionQueue::DequeueBatch(int owner, size_t max_batch,
                                    std::vector<Message>* out) {
  ECLDB_DCHECK(owner_.load(std::memory_order_acquire) == owner);
  (void)owner;
  size_t n = 0;
  Message m;
  while (n < max_batch && ring_.TryPop(&m)) {
    AddPendingOps(-MessageOps(m));
    out->push_back(m);
    ++n;
  }
  return n;
}

}  // namespace ecldb::msg
