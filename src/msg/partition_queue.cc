#include "msg/partition_queue.h"

#include "common/check.h"

namespace ecldb::msg {

PartitionQueue::PartitionQueue(PartitionId partition, size_t capacity)
    : partition_(partition), ring_(capacity) {}

bool PartitionQueue::Enqueue(const Message& m) {
  ECLDB_DCHECK(m.partition == partition_);
  return ring_.TryPush(m);
}

bool PartitionQueue::TryAcquire(int owner) {
  ECLDB_DCHECK(owner >= 0);
  int expected = -1;
  return owner_.compare_exchange_strong(expected, owner,
                                        std::memory_order_acq_rel);
}

void PartitionQueue::Release(int owner) {
  int expected = owner;
  const bool ok = owner_.compare_exchange_strong(expected, -1,
                                                 std::memory_order_acq_rel);
  ECLDB_CHECK_MSG(ok, "Release by non-owner");
}

size_t PartitionQueue::DequeueBatch(int owner, size_t max_batch,
                                    std::vector<Message>* out) {
  ECLDB_DCHECK(owner_.load(std::memory_order_acquire) == owner);
  (void)owner;
  size_t n = 0;
  Message m;
  while (n < max_batch && ring_.TryPop(&m)) {
    out->push_back(m);
    ++n;
  }
  return n;
}

}  // namespace ecldb::msg
