#include "msg/inter_socket_comm.h"

#include "common/check.h"

namespace ecldb::msg {

CommEndpoint::CommEndpoint(SocketId socket, int num_sockets,
                           size_t channel_capacity)
    : socket_(socket) {
  for (int d = 0; d < num_sockets; ++d) {
    outbox_.push_back(d == socket
                          ? nullptr
                          : std::make_unique<MpmcRing<Message>>(channel_capacity));
  }
}

bool CommEndpoint::BufferOutbound(SocketId dest, const Message& m) {
  ECLDB_DCHECK(dest != socket_);
  ECLDB_DCHECK(dest >= 0 && dest < static_cast<SocketId>(outbox_.size()));
  return outbox_[static_cast<size_t>(dest)]->TryPush(m);
}

size_t CommEndpoint::Pump(const DeliverFn& deliver, size_t max_batch) {
  size_t moved = 0;
  for (size_t d = 0; d < outbox_.size(); ++d) {
    MpmcRing<Message>* box = outbox_[d].get();
    if (box == nullptr) continue;
    Message m;
    size_t n = 0;
    while (n < max_batch && box->TryPop(&m)) {
      // Remote delivery; if the destination cannot accept the message it
      // is retried on the next pump (we re-buffer it locally).
      if (!deliver(static_cast<SocketId>(d), m)) {
        box->TryPush(m);
        break;
      }
      ++n;
    }
    moved += n;
  }
  transferred_ += static_cast<int64_t>(moved);
  return moved;
}

size_t CommEndpoint::Pump(std::vector<IntraSocketRouter*>& routers,
                          size_t max_batch) {
  return Pump(
      [&routers](SocketId dest, const Message& m) {
        return routers[static_cast<size_t>(dest)]->Enqueue(m);
      },
      max_batch);
}

size_t CommEndpoint::OutboundPendingApprox() const {
  size_t sum = 0;
  for (const auto& box : outbox_) {
    if (box != nullptr) sum += box->SizeApprox();
  }
  return sum;
}

}  // namespace ecldb::msg
