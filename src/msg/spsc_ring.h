#ifndef ECLDB_MSG_SPSC_RING_H_
#define ECLDB_MSG_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace ecldb::msg {

/// Bounded lock-free single-producer/single-consumer ring buffer.
///
/// Used for the inter-socket communication channels: exactly one
/// communication thread produces into and one consumes from each channel.
/// Capacity is rounded up to a power of two.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return buffer_.size(); }

  /// Producer side. Returns false when full.
  bool TryPush(const T& value) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= buffer_.size()) return false;
    buffer_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool TryPop(T* out) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    *out = buffer_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when called by the consumer).
  size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_SPSC_RING_H_
