#ifndef ECLDB_MSG_INTRA_SOCKET_ROUTER_H_
#define ECLDB_MSG_INTRA_SOCKET_ROUTER_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "msg/message.h"
#include "msg/partition_queue.h"

namespace ecldb::msg {

/// Intra-socket level of the hierarchical message passing layer: the
/// partition queues of all data partitions homed on one socket.
///
/// Workers of the socket poll the router for work: `AcquireNonEmpty`
/// implements the dequeue-own-process-release cycle that replaces the
/// static worker-partition binding, implicitly load-balancing within the
/// socket (paper Section 3, "Elasticity Extensions").
class IntraSocketRouter {
 public:
  /// `partitions` are the globally-numbered partitions homed here.
  IntraSocketRouter(SocketId socket, std::vector<PartitionId> partitions,
                    size_t queue_capacity);

  SocketId socket() const { return socket_; }
  const std::vector<PartitionId>& partitions() const { return partition_ids_; }
  size_t num_partitions() const { return queues_.size(); }

  /// True iff the partition is homed on this socket.
  bool Owns(PartitionId p) const;

  /// Enqueues a message for a local partition; false when full.
  bool Enqueue(const Message& m);

  /// Scans local partitions round-robin starting after `cursor` and
  /// acquires the first non-empty unowned queue for `worker`. Returns
  /// nullptr when no work is available. Updates `cursor`.
  PartitionQueue* AcquireNonEmpty(int worker, size_t* cursor);

  /// Direct access to a partition's queue (must be local).
  PartitionQueue* queue(PartitionId p);

  /// Total messages pending across all local partitions (approximate).
  size_t PendingApprox() const;

 private:
  SocketId socket_;
  std::vector<PartitionId> partition_ids_;
  std::vector<std::unique_ptr<PartitionQueue>> queues_;
  /// Dense lookup: global partition id -> local index (-1 if foreign).
  std::vector<int> local_index_;
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_INTRA_SOCKET_ROUTER_H_
