#ifndef ECLDB_MSG_INTRA_SOCKET_ROUTER_H_
#define ECLDB_MSG_INTRA_SOCKET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "msg/message.h"
#include "msg/partition_queue.h"

namespace ecldb::msg {

/// Intra-socket level of the hierarchical message passing layer: the
/// partition queues of all data partitions homed on one socket.
///
/// Workers of the socket poll the router for work: `AcquireNonEmpty`
/// implements the dequeue-own-process-release cycle that replaces the
/// static worker-partition binding, implicitly load-balancing within the
/// socket (paper Section 3, "Elasticity Extensions").
///
/// Queues are owned by the MessageLayer and registered here; a live
/// migration deregisters the partition from the old home's router and
/// registers the same queue object (with any queued messages) at the new
/// home's router.
class IntraSocketRouter {
 public:
  /// `num_global_partitions` sizes the dense partition-id lookup.
  IntraSocketRouter(SocketId socket, size_t num_global_partitions);

  SocketId socket() const { return socket_; }
  const std::vector<PartitionId>& partitions() const { return partition_ids_; }
  size_t num_partitions() const { return queues_.size(); }

  /// Adds a partition queue to this router's scan set (appended, so the
  /// round-robin order is registration order).
  void Register(PartitionId p, PartitionQueue* queue);
  /// Removes a partition from the scan set and returns its queue. The
  /// queue must be unowned (quiesced) when deregistered.
  PartitionQueue* Deregister(PartitionId p);

  /// True iff the partition is homed on this socket.
  bool Owns(PartitionId p) const;

  /// Enqueues a message for a local partition; false when full.
  bool Enqueue(const Message& m);

  /// Scans local partitions round-robin starting after `cursor` and
  /// acquires the first non-empty unowned queue for `worker`. Returns
  /// nullptr when no work is available. Updates `cursor`.
  PartitionQueue* AcquireNonEmpty(int worker, size_t* cursor);

  /// Direct access to a partition's queue (must be local).
  PartitionQueue* queue(PartitionId p);

  /// Total messages pending across all local partitions (approximate).
  size_t PendingApprox() const;

  /// Enqueue() calls rejected because the target queue was full
  /// (backpressure seen by any producer: sends, comm pumps, requeues).
  int64_t enqueue_rejects() const {
    return enqueue_rejects_.load(std::memory_order_relaxed);
  }

 private:
  SocketId socket_;
  std::vector<PartitionId> partition_ids_;
  std::vector<PartitionQueue*> queues_;  // parallel to partition_ids_
  /// Dense lookup: global partition id -> local index (-1 if foreign).
  std::vector<int> local_index_;
  std::atomic<int64_t> enqueue_rejects_{0};
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_INTRA_SOCKET_ROUTER_H_
