#ifndef ECLDB_MSG_PLACEMENT_VIEW_H_
#define ECLDB_MSG_PLACEMENT_VIEW_H_

#include <cstdint>

#include "common/types.h"

namespace ecldb::msg {

/// Read-only view of the partition-to-socket placement: the single source
/// of truth consulted by message routing, the scheduler, and the
/// workloads. Implemented by engine::PlacementMap; the msg layer depends
/// only on this interface so it stays below the engine in the library
/// layering.
///
/// The placement is epoch-versioned: every committed migration bumps
/// `epoch()`. Messages are stamped with the epoch current at send time; a
/// message arriving at a socket that no longer homes its partition is
/// stale and gets forwarded to the current home (MessageLayer::PumpComm).
class PlacementView {
 public:
  virtual ~PlacementView() = default;

  virtual int num_partitions() const = 0;
  /// Socket currently homing partition `p` (routing target).
  virtual SocketId HomeOf(PartitionId p) const = 0;
  /// Version of the placement; incremented by every committed migration.
  virtual int64_t epoch() const = 0;
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_PLACEMENT_VIEW_H_
