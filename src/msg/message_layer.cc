#include "msg/message_layer.h"

#include <string>

#include "common/check.h"

namespace ecldb::msg {

MessageLayer::MessageLayer(int num_sockets, const PlacementView* placement,
                           const MessageLayerParams& params)
    : params_(params), placement_(placement) {
  ECLDB_CHECK(num_sockets > 0);
  ECLDB_CHECK(placement != nullptr);
  const int num_partitions = placement_->num_partitions();
  stats_.resize(static_cast<size_t>(num_sockets));
  for (int s = 0; s < num_sockets; ++s) {
    routers_.push_back(std::make_unique<IntraSocketRouter>(
        s, static_cast<size_t>(num_partitions)));
    comms_.push_back(
        std::make_unique<CommEndpoint>(s, num_sockets, params_.comm_channel_capacity));
  }
  // Ascending registration per socket: the round-robin scan order workers
  // see is by partition id, as with the historical per-socket lists.
  for (PartitionId p = 0; p < num_partitions; ++p) {
    const SocketId s = placement_->HomeOf(p);
    ECLDB_CHECK(s >= 0 && s < num_sockets);
    queues_.push_back(
        std::make_unique<PartitionQueue>(p, params_.partition_queue_capacity));
    routers_[static_cast<size_t>(s)]->Register(p, queues_.back().get());
  }
  deliver_ = [this](SocketId dest, const Message& m) {
    return DeliverAt(dest, m);
  };
  if (telemetry::Telemetry* t = params_.telemetry; t != nullptr) {
    telemetry::MetricRegistry& reg = t->registry();
    for (int s = 0; s < num_sockets; ++s) {
      const std::string base = "msg/socket" + std::to_string(s) + "/";
      SocketCounters& c = stats_[static_cast<size_t>(s)];
      c.send_rejects = reg.AddCounter(base + "send_rejects");
      c.comm_rejects = reg.AddCounter(base + "comm_rejects");
      c.stale_forwards = reg.AddCounter(base + "stale_forwards");
      c.rehome_transfers = reg.AddCounter(base + "rehome_transfers");
      // The router's reject counter is an atomic shared with workers; it
      // stays in place and is exported read-through.
      reg.AddCounterFn(base + "enqueue_rejects", [this, s] {
        return routers_[static_cast<size_t>(s)]->enqueue_rejects();
      });
      reg.AddGauge(base + "router_pending", [this, s] {
        return static_cast<double>(
            routers_[static_cast<size_t>(s)]->PendingApprox());
      });
      reg.AddGauge(base + "comm_outbound_pending", [this, s] {
        return static_cast<double>(
            comms_[static_cast<size_t>(s)]->OutboundPendingApprox());
      });
    }
  }
}

bool MessageLayer::Send(SocketId origin_socket, const Message& m) {
  ECLDB_DCHECK(m.partition >= 0 && m.partition < num_partitions());
  Message stamped = m;
  stamped.epoch = static_cast<int32_t>(placement_->epoch());
  const SocketId home = placement_->HomeOf(m.partition);
  bool ok;
  if (home == origin_socket) {
    ok = routers_[static_cast<size_t>(home)]->Enqueue(stamped);
  } else {
    ok = comms_[static_cast<size_t>(origin_socket)]->BufferOutbound(home, stamped);
    if (!ok) stats_[static_cast<size_t>(origin_socket)].comm_rejects.Increment();
  }
  if (!ok) stats_[static_cast<size_t>(origin_socket)].send_rejects.Increment();
  return ok;
}

bool MessageLayer::DeliverAt(SocketId at, const Message& m) {
  IntraSocketRouter* router = routers_[static_cast<size_t>(at)].get();
  if (router->Owns(m.partition)) return router->Enqueue(m);
  // Stale-epoch arrival: the partition migrated away while the message was
  // in flight. Forward it to the current home through this socket's
  // endpoint (it keeps its original epoch for diagnostics).
  const SocketId home = placement_->HomeOf(m.partition);
  ECLDB_DCHECK(home != at);
  if (!comms_[static_cast<size_t>(at)]->BufferOutbound(home, m)) {
    stats_[static_cast<size_t>(at)].comm_rejects.Increment();
    return false;  // re-buffered at the sender, retried next pump
  }
  stats_[static_cast<size_t>(at)].stale_forwards.Increment();
  return true;
}

size_t MessageLayer::PumpComm(SocketId socket) {
  return comms_[static_cast<size_t>(socket)]->Pump(deliver_,
                                                   params_.comm_pump_batch);
}

size_t MessageLayer::Rehome(PartitionId p, SocketId from, SocketId to) {
  ECLDB_CHECK(from != to);
  ECLDB_CHECK(p >= 0 && p < num_partitions());
  PartitionQueue* queue = routers_[static_cast<size_t>(from)]->Deregister(p);
  routers_[static_cast<size_t>(to)]->Register(p, queue);
  const size_t moved = queue->SizeApprox();
  stats_[static_cast<size_t>(to)].rehome_transfers.Add(
      static_cast<int64_t>(moved));
  return moved;
}

size_t MessageLayer::DrainAllQueues() {
  size_t drained = 0;
  // Drain tag well above any worker id; the ownership protocol only needs
  // it to be non-negative.
  constexpr int kDrainOwner = 1 << 20;
  std::vector<Message> scratch;
  for (auto& q : queues_) {
    const bool acquired = q->TryAcquire(kDrainOwner);
    ECLDB_CHECK_MSG(acquired, "drain of an owned partition queue");
    for (;;) {
      scratch.clear();
      const size_t n = q->DequeueBatch(kDrainOwner, 256, &scratch);
      if (n == 0) break;
      drained += n;
    }
    q->Release(kDrainOwner);
  }
  const CommEndpoint::DeliverFn discard = [](SocketId, const Message&) {
    return true;
  };
  for (auto& c : comms_) {
    for (;;) {
      const size_t n = c->Pump(discard, 256);
      if (n == 0) break;
      drained += n;
    }
  }
  return drained;
}

MessageLayer::SocketStats MessageLayer::socket_stats(SocketId s) const {
  const SocketCounters& c = stats_[static_cast<size_t>(s)];
  SocketStats out;
  out.send_rejects = c.send_rejects.value();
  out.comm_rejects = c.comm_rejects.value();
  out.stale_forwards = c.stale_forwards.value();
  out.rehome_transfers = c.rehome_transfers.value();
  out.enqueue_rejects = routers_[static_cast<size_t>(s)]->enqueue_rejects();
  return out;
}

size_t MessageLayer::PendingApprox() const {
  size_t sum = 0;
  for (const auto& r : routers_) sum += r->PendingApprox();
  for (const auto& c : comms_) sum += c->OutboundPendingApprox();
  return sum;
}

}  // namespace ecldb::msg
