#include "msg/message_layer.h"

#include "common/check.h"

namespace ecldb::msg {

MessageLayer::MessageLayer(int num_sockets,
                           const std::vector<SocketId>& partition_home,
                           const MessageLayerParams& params)
    : params_(params), partition_home_(partition_home) {
  ECLDB_CHECK(num_sockets > 0);
  std::vector<std::vector<PartitionId>> per_socket(
      static_cast<size_t>(num_sockets));
  for (size_t p = 0; p < partition_home_.size(); ++p) {
    const SocketId s = partition_home_[p];
    ECLDB_CHECK(s >= 0 && s < num_sockets);
    per_socket[static_cast<size_t>(s)].push_back(static_cast<PartitionId>(p));
  }
  for (int s = 0; s < num_sockets; ++s) {
    routers_.push_back(std::make_unique<IntraSocketRouter>(
        s, per_socket[static_cast<size_t>(s)], params_.partition_queue_capacity));
    comms_.push_back(
        std::make_unique<CommEndpoint>(s, num_sockets, params_.comm_channel_capacity));
  }
  for (auto& r : routers_) router_ptrs_.push_back(r.get());
}

bool MessageLayer::Send(SocketId origin_socket, const Message& m) {
  ECLDB_DCHECK(m.partition >= 0 && m.partition < num_partitions());
  const SocketId home = HomeOf(m.partition);
  if (home == origin_socket) {
    return routers_[static_cast<size_t>(home)]->Enqueue(m);
  }
  return comms_[static_cast<size_t>(origin_socket)]->BufferOutbound(home, m);
}

size_t MessageLayer::PumpComm(SocketId socket) {
  return comms_[static_cast<size_t>(socket)]->Pump(router_ptrs_,
                                                   params_.comm_pump_batch);
}

size_t MessageLayer::PendingApprox() const {
  size_t sum = 0;
  for (const auto& r : routers_) sum += r->PendingApprox();
  for (const auto& c : comms_) sum += c->OutboundPendingApprox();
  return sum;
}

}  // namespace ecldb::msg
