#include "msg/intra_socket_router.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::msg {

IntraSocketRouter::IntraSocketRouter(SocketId socket,
                                     std::vector<PartitionId> partitions,
                                     size_t queue_capacity)
    : socket_(socket), partition_ids_(std::move(partitions)) {
  PartitionId max_id = -1;
  for (PartitionId p : partition_ids_) max_id = std::max(max_id, p);
  local_index_.assign(static_cast<size_t>(max_id + 1), -1);
  for (size_t i = 0; i < partition_ids_.size(); ++i) {
    const PartitionId p = partition_ids_[i];
    ECLDB_CHECK(local_index_[static_cast<size_t>(p)] == -1);
    local_index_[static_cast<size_t>(p)] = static_cast<int>(i);
    queues_.push_back(std::make_unique<PartitionQueue>(p, queue_capacity));
  }
}

bool IntraSocketRouter::Owns(PartitionId p) const {
  return p >= 0 && p < static_cast<PartitionId>(local_index_.size()) &&
         local_index_[static_cast<size_t>(p)] >= 0;
}

bool IntraSocketRouter::Enqueue(const Message& m) {
  ECLDB_DCHECK(Owns(m.partition));
  return queues_[static_cast<size_t>(local_index_[static_cast<size_t>(m.partition)])]
      ->Enqueue(m);
}

PartitionQueue* IntraSocketRouter::AcquireNonEmpty(int worker, size_t* cursor) {
  const size_t n = queues_.size();
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (*cursor + 1 + step) % n;
    PartitionQueue* q = queues_[i].get();
    if (q->EmptyApprox()) continue;
    if (q->TryAcquire(worker)) {
      if (q->EmptyApprox()) {  // raced with another worker draining it
        q->Release(worker);
        continue;
      }
      *cursor = i;
      return q;
    }
  }
  return nullptr;
}

PartitionQueue* IntraSocketRouter::queue(PartitionId p) {
  ECLDB_CHECK(Owns(p));
  return queues_[static_cast<size_t>(local_index_[static_cast<size_t>(p)])].get();
}

size_t IntraSocketRouter::PendingApprox() const {
  size_t sum = 0;
  for (const auto& q : queues_) sum += q->SizeApprox();
  return sum;
}

}  // namespace ecldb::msg
