#include "msg/intra_socket_router.h"

#include "common/check.h"

namespace ecldb::msg {

IntraSocketRouter::IntraSocketRouter(SocketId socket,
                                     size_t num_global_partitions)
    : socket_(socket) {
  local_index_.assign(num_global_partitions, -1);
}

void IntraSocketRouter::Register(PartitionId p, PartitionQueue* queue) {
  ECLDB_CHECK(queue != nullptr && queue->partition() == p);
  ECLDB_CHECK(p >= 0 && p < static_cast<PartitionId>(local_index_.size()));
  ECLDB_CHECK_MSG(local_index_[static_cast<size_t>(p)] == -1,
                  "partition already registered");
  local_index_[static_cast<size_t>(p)] = static_cast<int>(queues_.size());
  partition_ids_.push_back(p);
  queues_.push_back(queue);
}

PartitionQueue* IntraSocketRouter::Deregister(PartitionId p) {
  ECLDB_CHECK(Owns(p));
  const size_t idx =
      static_cast<size_t>(local_index_[static_cast<size_t>(p)]);
  PartitionQueue* queue = queues_[idx];
  ECLDB_CHECK_MSG(queue->owner() == -1, "deregister of an owned queue");
  partition_ids_.erase(partition_ids_.begin() + static_cast<long>(idx));
  queues_.erase(queues_.begin() + static_cast<long>(idx));
  local_index_[static_cast<size_t>(p)] = -1;
  for (size_t i = idx; i < partition_ids_.size(); ++i) {
    local_index_[static_cast<size_t>(partition_ids_[i])] = static_cast<int>(i);
  }
  return queue;
}

bool IntraSocketRouter::Owns(PartitionId p) const {
  return p >= 0 && p < static_cast<PartitionId>(local_index_.size()) &&
         local_index_[static_cast<size_t>(p)] >= 0;
}

bool IntraSocketRouter::Enqueue(const Message& m) {
  ECLDB_DCHECK(Owns(m.partition));
  const bool ok =
      queues_[static_cast<size_t>(local_index_[static_cast<size_t>(m.partition)])]
          ->Enqueue(m);
  if (!ok) enqueue_rejects_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

PartitionQueue* IntraSocketRouter::AcquireNonEmpty(int worker, size_t* cursor) {
  const size_t n = queues_.size();
  for (size_t step = 0; step < n; ++step) {
    const size_t i = (*cursor + 1 + step) % n;
    PartitionQueue* q = queues_[i];
    if (q->EmptyApprox()) continue;
    if (q->TryAcquire(worker)) {
      if (q->EmptyApprox()) {  // raced with another worker draining it
        q->Release(worker);
        continue;
      }
      *cursor = i;
      return q;
    }
  }
  return nullptr;
}

PartitionQueue* IntraSocketRouter::queue(PartitionId p) {
  ECLDB_CHECK(Owns(p));
  return queues_[static_cast<size_t>(local_index_[static_cast<size_t>(p)])];
}

size_t IntraSocketRouter::PendingApprox() const {
  size_t sum = 0;
  for (const PartitionQueue* q : queues_) sum += q->SizeApprox();
  return sum;
}

}  // namespace ecldb::msg
