#ifndef ECLDB_MSG_PARTITION_QUEUE_H_
#define ECLDB_MSG_PARTITION_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/types.h"
#include "msg/message.h"
#include "msg/mpmc_ring.h"

namespace ecldb::msg {

/// Message queue of one data partition, the core of the paper's elasticity
/// extension (Section 3): instead of a static worker-partition binding,
/// "messages for the same data partition are buffered and queued. Worker
/// threads continuously dequeue message batches for a data partition, take
/// ownership of the entire partition, process the messages, and release
/// the partition."
///
/// Any thread may enqueue; batch-dequeue requires holding the ownership
/// token, which guarantees latch-free exclusive access to the partition's
/// data structures while processing.
class PartitionQueue {
 public:
  PartitionQueue(PartitionId partition, size_t capacity);

  PartitionQueue(const PartitionQueue&) = delete;
  PartitionQueue& operator=(const PartitionQueue&) = delete;

  PartitionId partition() const { return partition_; }

  /// Enqueues a message; false when the queue is full (producer should
  /// apply backpressure).
  bool Enqueue(const Message& m);

  /// Attempts to take exclusive ownership of the partition. `owner` is an
  /// arbitrary non-negative tag (worker id) recorded for diagnostics.
  bool TryAcquire(int owner);

  /// Releases ownership; must be called by the current owner.
  void Release(int owner);

  /// Current owner tag or -1. Diagnostic only.
  int owner() const { return owner_.load(std::memory_order_acquire); }

  /// Dequeues up to `max_batch` messages into `out` (appended). Must only
  /// be called while holding ownership. Returns the number dequeued.
  size_t DequeueBatch(int owner, size_t max_batch, std::vector<Message>* out);

  size_t SizeApprox() const { return ring_.SizeApprox(); }
  bool EmptyApprox() const { return ring_.EmptyApprox(); }

  /// Running total of fluid operations queued (sum of MessageOps over the
  /// queued messages), maintained on every enqueue/dequeue so backlog
  /// accounting needs no draining. Operation counts are integral in
  /// practice, so the double accumulator cancels exactly when the queue
  /// empties. Approximate only while producers/consumers race.
  double PendingOps() const {
    return pending_ops_.load(std::memory_order_relaxed);
  }

 private:
  void AddPendingOps(double delta);

  PartitionId partition_;
  MpmcRing<Message> ring_;
  std::atomic<int> owner_{-1};
  std::atomic<double> pending_ops_{0.0};
};

}  // namespace ecldb::msg

#endif  // ECLDB_MSG_PARTITION_QUEUE_H_
