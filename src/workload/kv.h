#ifndef ECLDB_WORKLOAD_KV_H_
#define ECLDB_WORKLOAD_KV_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <string>

#include "common/rng.h"
#include "engine/engine.h"
#include "workload/workload.h"

namespace ecldb::workload {

/// Parameters of the paper's custom key-value store benchmark
/// (Section 6): 4-byte uniformly-distributed keys and values, either fully
/// indexed (memory latency-bound point lookups) or not indexed at all
/// (memory bandwidth-bound partition-shard scans).
struct KvParams {
  /// Logical key-space size used by the simulation cost model.
  int64_t num_keys = 16'777'216;
  bool indexed = true;
  /// Indexed mode: point lookups batched per query, spread over this many
  /// partitions.
  int batch_gets = 4000;
  int partitions_per_query = 4;
  /// Functional mode: keys actually materialized by Load() (0 = num_keys).
  int64_t functional_keys = 0;
  /// Skew of the partition access distribution (0 = uniform). Skewed
  /// access concentrates load on few partitions, which the elastic
  /// architecture balances implicitly (paper Section 3, "Load Balancing").
  double zipf_theta = 0.0;
  uint64_t zipf_seed = 71;
};

/// Custom key-value store benchmark (simulation + functional modes).
class KvWorkload : public Workload {
 public:
  KvWorkload(engine::Engine* engine, const KvParams& params);

  std::string_view name() const override {
    return params_.indexed ? "kv-indexed" : "kv-non-indexed";
  }
  const hwsim::WorkProfile& profile() const override;
  engine::QuerySpec MakeQuery(Rng& rng) override;
  double MeanOpsPerQuery() const override;

  // --- Functional mode ---------------------------------------------------

  /// Creates the kv table (and the hash index when indexed) in every
  /// partition and populates `functional_keys` rows.
  void Load();

  /// Point read. Uses the hash index when indexed, otherwise scans the
  /// key's partition shard (the access pattern the profile models).
  std::optional<int64_t> Get(int64_t key);

  /// Point write (insert or update).
  void Put(int64_t key, int64_t value);

  /// Counts rows with value >= threshold across all partitions (full
  /// parallel column scan).
  int64_t ScanCountAtLeast(int64_t threshold);

  int64_t loaded_keys() const { return loaded_keys_; }

  // --- Asynchronous functional mode ---------------------------------------
  // Operations travel through the hierarchical message layer like any
  // query and execute against the real partition data on whichever worker
  // owns the partition when their fluid work completes — the full
  // data-oriented execution path with correct virtual-time latencies.

  /// Registers this workload's functional executor with the engine.
  /// Call once after Load(); only one workload may own the executor.
  void InstallExecutor();

  struct AsyncResult {
    bool found = false;
    int64_t value = 0;
  };

  /// Submits a point read; the result becomes available via TakeResult
  /// after the query completes (run the simulator forward).
  QueryId SubmitGet(int64_t key);
  /// Submits a point write.
  QueryId SubmitPut(int64_t key, int64_t value);

  /// Retrieves (and removes) the result of a completed SubmitGet; empty
  /// while the query is still in flight.
  std::optional<AsyncResult> TakeResult(QueryId id);

 private:
  int64_t RowsPerPartition() const;
  /// Partition pick for the next query (uniform or Zipf-skewed).
  PartitionId PickPartition(Rng& rng);

  engine::Engine* engine_;
  KvParams params_;
  int64_t loaded_keys_ = 0;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::unordered_map<QueryId, AsyncResult> async_results_;
};

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_KV_H_
