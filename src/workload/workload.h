#ifndef ECLDB_WORKLOAD_WORKLOAD_H_
#define ECLDB_WORKLOAD_WORKLOAD_H_

#include <string_view>

#include "common/rng.h"
#include "engine/query.h"
#include "hwsim/machine.h"
#include "hwsim/work_profile.h"

namespace ecldb::workload {

/// A benchmark workload: generates queries for the simulation-mode driver
/// and (in the concrete classes) offers functional execution against real
/// partition data for correctness tests and examples.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const = 0;
  /// Hardware-facing work profile of this workload's operations.
  virtual const hwsim::WorkProfile& profile() const = 0;
  /// Builds one query (its per-partition fluid work).
  virtual engine::QuerySpec MakeQuery(Rng& rng) = 0;
  /// Average total operations per query (capacity estimation).
  virtual double MeanOpsPerQuery() const = 0;
};

/// Saturated machine-wide throughput (ops/s) of a work profile on the
/// all-on baseline configuration (every hardware thread at the maximum
/// nominal frequency, maximum uncore clock). Solved analytically through
/// the performance model; used to normalize load profiles.
double SaturatedOpsPerSec(const hwsim::MachineParams& params,
                          const hwsim::WorkProfile& profile);

/// Queries per second that saturate the all-on baseline for `workload`.
/// Load profiles are expressed relative to this capacity.
double BaselineCapacityQps(const hwsim::MachineParams& params,
                           Workload& workload);

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_WORKLOAD_H_
