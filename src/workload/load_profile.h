#ifndef ECLDB_WORKLOAD_LOAD_PROFILE_H_
#define ECLDB_WORKLOAD_LOAD_PROFILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecldb::workload {

/// A load profile defines the query arrival rate over time, relative to
/// the workload's saturation capacity (1.0 = the system can just keep up
/// with an all-on baseline; values above 1.0 are overload). The paper uses
/// a synthetic spike profile covering the full load range plus a replayed
/// real-world twitter trace (Section 6, Table 1).
class LoadProfile {
 public:
  virtual ~LoadProfile() = default;

  virtual std::string_view name() const = 0;
  /// Relative load in [0, ~1.2] at virtual time t.
  virtual double LoadAt(SimTime t) const = 0;
  virtual SimDuration duration() const = 0;
};

/// Constant relative load (used for profile-adaptation experiments, which
/// fix the database load at 50 %).
class ConstantProfile : public LoadProfile {
 public:
  ConstantProfile(double level, SimDuration duration)
      : level_(level), duration_(duration) {}

  std::string_view name() const override { return "constant"; }
  double LoadAt(SimTime) const override { return level_; }
  SimDuration duration() const override { return duration_; }

 private:
  double level_;
  SimDuration duration_;
};

/// Piecewise-constant load given as (start time, level) steps.
class StepProfile : public LoadProfile {
 public:
  struct Step {
    SimTime start;
    double level;
  };
  StepProfile(std::vector<Step> steps, SimDuration duration);

  std::string_view name() const override { return "step"; }
  double LoadAt(SimTime t) const override;
  SimDuration duration() const override { return duration_; }

 private:
  std::vector<Step> steps_;
  SimDuration duration_;
};

/// The paper's spike profile: covers the full load range within three
/// minutes, including an overload phase starting at ~80 s (Fig. 13).
class SpikeProfile : public LoadProfile {
 public:
  /// The paper replays the profile in 3 minutes; a different duration
  /// time-scales the same shape (useful to shorten experiment batteries).
  explicit SpikeProfile(SimDuration duration = Seconds(180));

  std::string_view name() const override { return "spike"; }
  double LoadAt(SimTime t) const override;
  SimDuration duration() const override { return duration_; }

 private:
  SimDuration duration_;
};

/// A twitter-like real-world load trace: a two-hour diurnal profile with
/// sudden tweet-storm peaks, replayed within three minutes (Fig. 14). The
/// paper replays the trace of [1]; we synthesize a statistically similar
/// trace deterministically from a seed (see DESIGN.md substitutions).
class TwitterProfile : public LoadProfile {
 public:
  explicit TwitterProfile(uint64_t seed = 7,
                          SimDuration duration = Seconds(180));

  std::string_view name() const override { return "twitter"; }
  double LoadAt(SimTime t) const override;
  SimDuration duration() const override { return duration_; }

 private:
  SimDuration duration_;
  std::vector<double> samples_;  // 360 samples over the duration
};

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_LOAD_PROFILE_H_
