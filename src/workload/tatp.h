#ifndef ECLDB_WORKLOAD_TATP_H_
#define ECLDB_WORKLOAD_TATP_H_

#include <array>
#include <cstdint>
#include <string>

#include "engine/engine.h"
#include "workload/workload.h"

namespace ecldb::workload {

/// TATP (Telecom Application Transaction Processing) benchmark [9]:
/// an OLTP workload of seven short transactions over four tables
/// (subscriber, access_info, special_facility, call_forwarding),
/// partitioned by subscriber id so transactions are partition-local.
struct TatpParams {
  /// Subscriber population (spec default 100k; scale down for tests).
  int64_t subscribers = 100'000;
  bool indexed = true;
  /// Simulation mode: transactions batched per query.
  int tx_per_query_indexed = 2000;
  int tx_per_query_non_indexed = 20;
  int partitions_per_query = 4;
  uint64_t seed = 1234;
};

class TatpWorkload : public Workload {
 public:
  /// The seven TATP transactions with their standard mix weights.
  enum class TxType {
    kGetSubscriberData,    // 35 %
    kGetNewDestination,    // 10 %
    kGetAccessData,        // 35 %
    kUpdateSubscriberData, //  2 %
    kUpdateLocation,       // 14 %
    kInsertCallForwarding, //  2 %
    kDeleteCallForwarding, //  2 %
  };
  static constexpr int kNumTxTypes = 7;
  static const char* TxName(TxType t);

  TatpWorkload(engine::Engine* engine, const TatpParams& params);

  std::string_view name() const override {
    return params_.indexed ? "tatp-indexed" : "tatp-non-indexed";
  }
  const hwsim::WorkProfile& profile() const override;
  engine::QuerySpec MakeQuery(Rng& rng) override;
  double MeanOpsPerQuery() const override;

  // --- Functional mode ---------------------------------------------------

  /// Creates and populates all four tables (and indexes when indexed)
  /// according to the TATP population rules.
  void Load();

  /// Draws a transaction type from the standard mix.
  TxType PickTx(Rng& rng) const;

  /// Executes one transaction functionally; returns whether it succeeded
  /// (TATP defines expected failure rates, e.g. GetAccessData misses when
  /// the (s_id, ai_type) pair does not exist).
  bool ExecuteTx(TxType type, Rng& rng);

  int64_t executed(TxType t) const {
    return executed_[static_cast<size_t>(t)];
  }
  int64_t succeeded(TxType t) const {
    return succeeded_[static_cast<size_t>(t)];
  }

  // --- Asynchronous functional mode ---------------------------------------
  // A transaction travels through the message layer to its subscriber's
  // partition and executes there when its fluid work completes: the
  // data-oriented execution path with correct virtual-time latencies.
  // TATP transactions are partition-local (all four tables co-partitioned
  // by s_id), so one message per transaction suffices.

  /// Registers this workload's functional executor with the engine
  /// (call once after Load(); one workload owns the executor at a time).
  void InstallExecutor();

  /// Submits one transaction of the given type with a fresh random seed;
  /// the transaction's effects apply when the query completes.
  QueryId SubmitTx(TxType type, Rng& rng);

 private:
  engine::Partition* PartitionOf(int64_t s_id);
  int64_t RandomSid(Rng& rng) const;
  /// Composite index keys.
  static int64_t AiKey(int64_t s_id, int64_t ai_type) { return s_id * 8 + ai_type; }
  static int64_t SfKey(int64_t s_id, int64_t sf_type) { return s_id * 8 + sf_type; }
  static int64_t CfKey(int64_t s_id, int64_t sf_type, int64_t start_time) {
    return (s_id * 8 + sf_type) * 4 + start_time / 8;
  }

  bool GetSubscriberData(Rng& rng);
  bool GetNewDestination(Rng& rng);
  bool GetAccessData(Rng& rng);
  bool UpdateSubscriberData(Rng& rng);
  bool UpdateLocation(Rng& rng);
  bool InsertCallForwarding(Rng& rng);
  bool DeleteCallForwarding(Rng& rng);

  // Row lookups: hash-index probes when indexed, shard scans otherwise
  // (which is exactly what makes the non-indexed variant bandwidth-bound).
  int FindSubscriber(engine::Partition* part, int64_t s_id) const;
  int FindAi(engine::Partition* part, int64_t s_id, int64_t ai_type) const;
  int FindSf(engine::Partition* part, int64_t s_id, int64_t sf_type) const;
  int FindCf(engine::Partition* part, int64_t s_id, int64_t sf_type,
             int64_t start_time) const;

  engine::Engine* engine_;
  TatpParams params_;
  std::array<int64_t, kNumTxTypes> executed_{};
  std::array<int64_t, kNumTxTypes> succeeded_{};
  bool loaded_ = false;
};

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_TATP_H_
