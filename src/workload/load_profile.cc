#include "workload/load_profile.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ecldb::workload {

StepProfile::StepProfile(std::vector<Step> steps, SimDuration duration)
    : steps_(std::move(steps)), duration_(duration) {
  ECLDB_CHECK(!steps_.empty());
  for (size_t i = 1; i < steps_.size(); ++i) {
    ECLDB_CHECK(steps_[i].start > steps_[i - 1].start);
  }
}

double StepProfile::LoadAt(SimTime t) const {
  double level = 0.0;
  for (const Step& s : steps_) {
    if (t >= s.start) level = s.level;
  }
  return level;
}

SpikeProfile::SpikeProfile(SimDuration duration) : duration_(duration) {
  ECLDB_CHECK(duration > 0);
}

double SpikeProfile::LoadAt(SimTime t) const {
  const double s = ToSeconds(t) * 180.0 / ToSeconds(duration_);
  if (s < 0.0 || s > 180.0) return 0.0;
  // Ramp through every load level, hold an overload plateau (the paper's
  // overload phase starts at ~80 s), then ramp back down.
  if (s < 80.0) return 1.15 * s / 80.0;
  if (s < 105.0) return 1.15;
  return std::max(0.0, 1.15 * (180.0 - s) / 75.0);
}

TwitterProfile::TwitterProfile(uint64_t seed, SimDuration duration)
    : duration_(duration) {
  ECLDB_CHECK(duration > 0);
  // 360 samples of 500 ms covering 3 minutes; a compressed two-hour
  // diurnal curve with sudden spikes and frequent small fluctuations.
  Rng rng(seed);
  const int n = 360;
  samples_.resize(n);
  // Deterministic spike times (compressed "tweet storms").
  struct Spike {
    int at;
    int width;
    double height;
  };
  const Spike spikes[] = {{40, 5, 0.55}, {95, 4, 0.70}, {150, 3, 0.45},
                          {210, 6, 0.60}, {265, 4, 0.75}, {320, 3, 0.50}};
  for (int i = 0; i < n; ++i) {
    const double phase = static_cast<double>(i) / n;
    // Diurnal base between ~15 % and ~55 %.
    double load = 0.33 + 0.20 * std::sin(2.0 * 3.141592653589793 * (phase - 0.2));
    // Small random fluctuation, alternating up and down.
    load += 0.05 * (rng.NextDouble() - 0.5);
    for (const Spike& sp : spikes) {
      const int d = i - sp.at;
      if (d >= 0 && d < sp.width) {
        load += sp.height * (1.0 - static_cast<double>(d) / sp.width);
      }
    }
    samples_[static_cast<size_t>(i)] = std::clamp(load, 0.02, 1.1);
  }
}

double TwitterProfile::LoadAt(SimTime t) const {
  if (t < 0 || t >= duration_) return 0.0;
  const size_t i = static_cast<size_t>(
      static_cast<double>(t) / static_cast<double>(duration_) *
      static_cast<double>(samples_.size()));
  return samples_[std::min(i, samples_.size() - 1)];
}

}  // namespace ecldb::workload
