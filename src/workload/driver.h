#ifndef ECLDB_WORKLOAD_DRIVER_H_
#define ECLDB_WORKLOAD_DRIVER_H_

#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "engine/engine.h"
#include "sim/simulator.h"
#include "workload/load_profile.h"
#include "workload/workload.h"

namespace ecldb::workload {

struct DriverParams {
  /// Queries per second at relative load 1.0. Usually
  /// BaselineCapacityQps(machine_params, workload).
  double capacity_qps = 1000.0;
  /// Open-loop Poisson arrivals when true; deterministic spacing otherwise.
  bool poisson = true;
  uint64_t seed = 4242;
};

/// Open-loop load driver: submits workload queries to the engine following
/// a load profile (arrival rate = LoadAt(t) * capacity_qps). Queries are
/// submitted regardless of completion — overload phases therefore build up
/// backlog exactly as an external client population would.
class LoadDriver {
 public:
  LoadDriver(sim::Simulator* simulator, engine::Engine* engine,
             Workload* workload, const LoadProfile* profile,
             const DriverParams& params);

  /// Schedules the arrival process starting at the current virtual time.
  /// The driver stops once the profile's duration has elapsed.
  void Start();

  int64_t submitted() const { return submitted_; }
  /// Offered load (queries/s) at a given time (for bench reporting).
  double OfferedQps(SimTime t) const {
    return profile_->LoadAt(t - start_time_) * params_.capacity_qps;
  }

 private:
  void ScheduleNext();

  sim::Simulator* simulator_;
  engine::Engine* engine_;
  Workload* workload_;
  const LoadProfile* profile_;
  DriverParams params_;
  Rng rng_;
  SimTime start_time_ = 0;
  int64_t submitted_ = 0;
};

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_DRIVER_H_
