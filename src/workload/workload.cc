#include "workload/workload.h"

#include "common/check.h"
#include "hwsim/bandwidth_model.h"
#include "hwsim/perf_model.h"

namespace ecldb::workload {

double SaturatedOpsPerSec(const hwsim::MachineParams& params,
                          const hwsim::WorkProfile& profile) {
  const hwsim::Topology& topo = params.topology;
  hwsim::BandwidthModel bw(params.bandwidth);
  hwsim::PerfModel perf(topo, bw, params.perf);
  const hwsim::MachineConfig all_on = hwsim::MachineConfig::AllOn(
      topo, params.freqs.max_core_nominal(), params.freqs.max_uncore());
  std::vector<hwsim::ThreadLoad> loads(
      static_cast<size_t>(topo.total_threads()), hwsim::ThreadLoad{&profile, 1.0});
  const hwsim::SolveResult solved = perf.Solve(all_on, loads);
  double total = 0.0;
  for (const hwsim::ThreadRate& r : solved.threads) total += r.ops_per_sec;
  return total;
}

double BaselineCapacityQps(const hwsim::MachineParams& params,
                           Workload& workload) {
  const double ops = SaturatedOpsPerSec(params, workload.profile());
  const double per_query = workload.MeanOpsPerQuery();
  ECLDB_CHECK(per_query > 0.0);
  return ops / per_query;
}

}  // namespace ecldb::workload
