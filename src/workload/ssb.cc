#include "workload/ssb.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "engine/morsel.h"
#include "engine/operators.h"
#include "msg/message.h"
#include "workload/work_profiles.h"

namespace ecldb::workload {
namespace {

constexpr char kLineorder[] = "lineorder";
constexpr char kDate[] = "date";
constexpr char kCustomer[] = "customer";
constexpr char kSupplier[] = "supplier";
constexpr char kPart[] = "part";

const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                           "MIDDLE EAST"};

std::string NationName(int64_t nation) {
  // 25 nations, 5 per region; nation 10 is "NATION_10" in region ASIA etc.
  return "NATION_" + std::to_string(nation);
}

std::string CityName(int64_t nation, int64_t city) {
  return "CITY_" + std::to_string(nation) + "_" + std::to_string(city);
}

}  // namespace

std::pair<int, int> SsbWorkload::QueryAt(int i) {
  static constexpr std::pair<int, int> kQueries[SsbWorkload::kNumQueries] = {
      {1, 1}, {1, 2}, {1, 3}, {2, 1}, {2, 2}, {2, 3}, {3, 1},
      {3, 2}, {3, 3}, {3, 4}, {4, 1}, {4, 2}, {4, 3}};
  ECLDB_CHECK(i >= 0 && i < kNumQueries);
  return kQueries[i];
}

SsbWorkload::SsbWorkload(engine::Engine* engine, const SsbParams& params)
    : engine_(engine), params_(params) {
  ECLDB_CHECK(engine != nullptr);
  ECLDB_CHECK(params.scale_factor > 0.0);
}

const hwsim::WorkProfile& SsbWorkload::profile() const {
  return params_.indexed ? SsbIndexed() : SsbNonIndexed();
}

int64_t SsbWorkload::SimLineorderRows() const {
  if (params_.sim_lineorder_rows > 0) return params_.sim_lineorder_rows;
  if (lineorder_rows_ > 0) return lineorder_rows_;
  return static_cast<int64_t>(params_.scale_factor * 6'000'000.0);
}

namespace {

/// Relative per-tuple cost of the four query flights: Q1 filters mostly on
/// fact columns (one date probe); Q2/Q3 probe two dimensions; Q4 probes
/// three and computes revenue - supplycost.
double FlightCostFactor(int flight) {
  switch (flight) {
    case 1:
      return 0.6;
    case 2:
      return 1.0;
    case 3:
      return 1.1;
    default:
      return 1.3;
  }
}

}  // namespace

engine::QuerySpec SsbWorkload::MakeQuery(Rng& rng) {
  (void)rng;
  engine::QuerySpec spec;
  spec.profile = &profile();
  const int nparts = engine_->db().num_partitions();
  // A star-join query scans/probes every lineorder partition in parallel;
  // the driver rotates through the 13 queries of the benchmark.
  const auto [flight, number] = QueryAt(next_query_);
  (void)number;
  const double rows_per_part =
      static_cast<double>(SimLineorderRows()) / nparts;
  // With join/zone indexes only a fraction of the fact tuples is touched,
  // but each touch is an expensive probe; without indexes the full shard
  // is scanned cheaply per tuple.
  const double ops_each = FlightCostFactor(flight) *
                          (params_.indexed ? rows_per_part * 0.15 : rows_per_part);
  for (int p = 0; p < nparts; ++p) spec.work.push_back({p, ops_each});
  spec.origin_socket = 0;
  next_query_ = (next_query_ + 1) % kNumQueries;
  return spec;
}

double SsbWorkload::MeanOpsPerQuery() const {
  const double rows = static_cast<double>(SimLineorderRows());
  return params_.indexed ? rows * 0.15 : rows;
}

void SsbWorkload::Load() {
  engine::Database& db = engine_->db();
  using engine::ColumnType;
  db.CreateTable(kLineorder,
                 engine::Schema({{"lo_orderkey", ColumnType::kInt64},
                                 {"lo_custkey", ColumnType::kInt64},
                                 {"lo_suppkey", ColumnType::kInt64},
                                 {"lo_partkey", ColumnType::kInt64},
                                 {"lo_orderdate", ColumnType::kInt64},
                                 {"lo_quantity", ColumnType::kInt64},
                                 {"lo_extendedprice", ColumnType::kInt64},
                                 {"lo_discount", ColumnType::kInt64},
                                 {"lo_revenue", ColumnType::kInt64},
                                 {"lo_supplycost", ColumnType::kInt64}}));
  db.CreateTable(kDate, engine::Schema({{"d_datekey", ColumnType::kInt64},
                                        {"d_year", ColumnType::kInt64},
                                        {"d_yearmonthnum", ColumnType::kInt64},
                                        {"d_weeknuminyear", ColumnType::kInt64}}));
  db.CreateTable(kCustomer, engine::Schema({{"c_custkey", ColumnType::kInt64},
                                            {"c_city", ColumnType::kString},
                                            {"c_nation", ColumnType::kString},
                                            {"c_region", ColumnType::kString}}));
  db.CreateTable(kSupplier, engine::Schema({{"s_suppkey", ColumnType::kInt64},
                                            {"s_city", ColumnType::kString},
                                            {"s_nation", ColumnType::kString},
                                            {"s_region", ColumnType::kString}}));
  db.CreateTable(kPart, engine::Schema({{"p_partkey", ColumnType::kInt64},
                                        {"p_mfgr", ColumnType::kString},
                                        {"p_category", ColumnType::kString},
                                        {"p_brand1", ColumnType::kString}}));

  const double sf = params_.scale_factor;
  // Minimums keep every region/nation populated at tiny test scales.
  num_customers_ = std::max<int64_t>(500, static_cast<int64_t>(30'000 * sf));
  num_suppliers_ = std::max<int64_t>(100, static_cast<int64_t>(2'000 * sf));
  num_parts_ = std::max<int64_t>(
      200, static_cast<int64_t>(200'000 * (1.0 + std::log2(std::max(1.0, sf)))));
  lineorder_rows_ = std::max<int64_t>(1000, static_cast<int64_t>(6'000'000 * sf));

  Rng rng(params_.seed);
  const int nparts = db.num_partitions();

  // Dimensions are replicated into every partition; rows appended in key
  // order so that row id == key - 1 (direct-addressing join index). Every
  // replica is identical by construction (same seed), so only partition 0
  // runs the generators; the others bulk-copy its shards.
  {
    engine::Partition* part = db.partition(0);
    Rng dim_rng(params_.seed);

    engine::Table* date = part->table(kDate);
    int64_t datekey = 0;
    for (int64_t year = 1992; year <= 1998; ++year) {
      for (int64_t day = 0; day < 365; ++day) {
        const int64_t month = day / 31 + 1;
        date->AppendRow({++datekey, year, year * 100 + month, day / 7 + 1});
      }
    }

    engine::Table* cust = part->table(kCustomer);
    for (int64_t k = 1; k <= num_customers_; ++k) {
      const int64_t nation = dim_rng.NextInRange(0, 24);
      const int64_t city = dim_rng.NextInRange(0, 9);
      cust->AppendRow({k, CityName(nation, city), NationName(nation),
                       std::string(kRegions[nation / 5])});
    }

    engine::Table* supp = part->table(kSupplier);
    for (int64_t k = 1; k <= num_suppliers_; ++k) {
      const int64_t nation = dim_rng.NextInRange(0, 24);
      const int64_t city = dim_rng.NextInRange(0, 9);
      supp->AppendRow({k, CityName(nation, city), NationName(nation),
                       std::string(kRegions[nation / 5])});
    }

    engine::Table* pt = part->table(kPart);
    for (int64_t k = 1; k <= num_parts_; ++k) {
      const int64_t mfgr = dim_rng.NextInRange(1, 5);
      const int64_t cat = dim_rng.NextInRange(0, 4);
      const int64_t brand = dim_rng.NextInRange(1, 40);
      const std::string mfgr_s = "MFGR#" + std::to_string(mfgr);
      const std::string cat_s = mfgr_s + std::to_string(cat);
      pt->AppendRow({k, mfgr_s, cat_s, cat_s + std::to_string(brand)});
    }
  }
  for (int p = 1; p < nparts; ++p) {
    engine::Partition* part = db.partition(p);
    for (const char* t : {kDate, kCustomer, kSupplier, kPart}) {
      part->table(t)->CopyContentFrom(*db.partition(0)->table(t));
    }
  }

  // Fact rows are hash-distributed over partitions.
  const int64_t max_datekey = 7 * 365;
  for (int64_t i = 0; i < lineorder_rows_; ++i) {
    engine::Partition* part = db.partition(static_cast<PartitionId>(
        rng.NextBounded(static_cast<uint64_t>(nparts))));
    const int64_t price = rng.NextInRange(100, 10'000);
    const int64_t discount = rng.NextInRange(0, 10);
    part->table(kLineorder)
        ->AppendRow({i + 1, rng.NextInRange(1, num_customers_),
                     rng.NextInRange(1, num_suppliers_),
                     rng.NextInRange(1, num_parts_),
                     rng.NextInRange(1, max_datekey), rng.NextInRange(1, 50),
                     price, discount, price * (100 - discount) / 100,
                     rng.NextInRange(50, 5'000)});
  }
}

namespace {

/// Star-join query plan built from the operator module: predicates over
/// fact and (direct-addressed) dimension columns, group-by refs, and the
/// SUM expression.
struct QueryPlan {
  std::vector<engine::Predicate> predicates;
  std::vector<engine::ColumnRef> group_by;
  engine::ValueExpr value;
};

// Lineorder columns.
constexpr int kLoCust = 1, kLoSupp = 2, kLoPart = 3, kLoDate = 4;
constexpr int kLoQty = 5, kLoPrice = 6, kLoDisc = 7, kLoRev = 8, kLoCost = 9;
// Dimension columns (date: key/year/yearmonth/week; others:
// key/city/nation/region resp. key/mfgr/category/brand1).
constexpr int kDimYear = 1, kDimYearMonth = 2, kDimWeek = 3;
constexpr int kDimCity = 1, kDimNation = 2, kDimRegion = 3;
constexpr int kDimMfgr = 1, kDimCategory = 2, kDimBrand = 3;

/// Builds the plan for query `flight`.`number` against one partition's
/// replicated dimension tables.
QueryPlan PlanQuery(int flight, int number, const engine::Table* date,
                    const engine::Table* cust, const engine::Table* supp,
                    const engine::Table* part) {
  using engine::ColumnRef;
  using engine::Predicate;
  using engine::ValueExpr;
  const ColumnRef year = ColumnRef::Dim(kLoDate, date, kDimYear);
  QueryPlan plan;
  plan.value = ValueExpr::Column(ColumnRef::Fact(kLoRev));
  switch (flight) {
    case 1:
      plan.value = ValueExpr::Product(ColumnRef::Fact(kLoPrice),
                                      ColumnRef::Fact(kLoDisc), 0.01);
      if (number == 1) {
        plan.predicates = {
            Predicate::IntRange(year, 1993, 1993),
            Predicate::IntRange(ColumnRef::Fact(kLoDisc), 1, 3),
            Predicate::IntRange(ColumnRef::Fact(kLoQty), INT64_MIN, 24)};
      } else if (number == 2) {
        plan.predicates = {
            Predicate::IntRange(ColumnRef::Dim(kLoDate, date, kDimYearMonth),
                                199401, 199401),
            Predicate::IntRange(ColumnRef::Fact(kLoDisc), 4, 6),
            Predicate::IntRange(ColumnRef::Fact(kLoQty), 26, 35)};
      } else {
        plan.predicates = {
            Predicate::IntRange(year, 1994, 1994),
            Predicate::IntRange(ColumnRef::Dim(kLoDate, date, kDimWeek), 6, 6),
            Predicate::IntRange(ColumnRef::Fact(kLoDisc), 5, 7),
            Predicate::IntRange(ColumnRef::Fact(kLoQty), 26, 35)};
      }
      break;
    case 2: {
      const ColumnRef brand = ColumnRef::Dim(kLoPart, part, kDimBrand);
      const ColumnRef s_region = ColumnRef::Dim(kLoSupp, supp, kDimRegion);
      if (number == 1) {
        plan.predicates = {
            Predicate::StringEq(ColumnRef::Dim(kLoPart, part, kDimCategory),
                                "MFGR#12"),
            Predicate::StringEq(s_region, "AMERICA")};
      } else if (number == 2) {
        plan.predicates = {Predicate::StringRange(brand, "MFGR#222", "MFGR#2229"),
                           Predicate::StringEq(s_region, "ASIA")};
      } else {
        plan.predicates = {Predicate::StringEq(brand, "MFGR#2239"),
                           Predicate::StringEq(s_region, "EUROPE")};
      }
      plan.group_by = {year, brand};
      break;
    }
    case 3: {
      const ColumnRef c_city = ColumnRef::Dim(kLoCust, cust, kDimCity);
      const ColumnRef s_city = ColumnRef::Dim(kLoSupp, supp, kDimCity);
      const std::vector<std::string> cities = {"CITY_10_1", "CITY_10_2"};
      if (number == 1) {
        plan.predicates = {
            Predicate::StringEq(ColumnRef::Dim(kLoCust, cust, kDimRegion), "ASIA"),
            Predicate::StringEq(ColumnRef::Dim(kLoSupp, supp, kDimRegion), "ASIA"),
            Predicate::IntRange(year, 1992, 1997)};
        plan.group_by = {ColumnRef::Dim(kLoCust, cust, kDimNation),
                         ColumnRef::Dim(kLoSupp, supp, kDimNation), year};
      } else if (number == 2) {
        plan.predicates = {
            Predicate::StringEq(ColumnRef::Dim(kLoCust, cust, kDimNation),
                                "NATION_10"),
            Predicate::StringEq(ColumnRef::Dim(kLoSupp, supp, kDimNation),
                                "NATION_10"),
            Predicate::IntRange(year, 1992, 1997)};
        plan.group_by = {c_city, s_city, year};
      } else if (number == 3) {
        plan.predicates = {Predicate::StringIn(c_city, cities),
                           Predicate::StringIn(s_city, cities),
                           Predicate::IntRange(year, 1992, 1997)};
        plan.group_by = {c_city, s_city, year};
      } else {  // 3.4
        plan.predicates = {
            Predicate::StringIn(c_city, cities),
            Predicate::StringIn(s_city, cities),
            Predicate::IntRange(ColumnRef::Dim(kLoDate, date, kDimYearMonth),
                                199712, 199712)};
        plan.group_by = {c_city, s_city, year};
      }
      break;
    }
    case 4: {
      plan.value = ValueExpr::Difference(ColumnRef::Fact(kLoRev),
                                         ColumnRef::Fact(kLoCost));
      const ColumnRef mfgr = ColumnRef::Dim(kLoPart, part, kDimMfgr);
      if (number == 1) {
        plan.predicates = {
            Predicate::StringEq(ColumnRef::Dim(kLoCust, cust, kDimRegion),
                                "AMERICA"),
            Predicate::StringEq(ColumnRef::Dim(kLoSupp, supp, kDimRegion),
                                "AMERICA"),
            Predicate::StringIn(mfgr, {"MFGR#1", "MFGR#2"})};
        plan.group_by = {year, ColumnRef::Dim(kLoCust, cust, kDimNation)};
      } else if (number == 2) {
        plan.predicates = {
            Predicate::StringEq(ColumnRef::Dim(kLoCust, cust, kDimRegion),
                                "AMERICA"),
            Predicate::StringEq(ColumnRef::Dim(kLoSupp, supp, kDimRegion),
                                "AMERICA"),
            Predicate::IntRange(year, 1997, 1998),
            Predicate::StringIn(mfgr, {"MFGR#1", "MFGR#2"})};
        plan.group_by = {year, ColumnRef::Dim(kLoSupp, supp, kDimNation),
                         ColumnRef::Dim(kLoPart, part, kDimCategory)};
      } else {  // 4.3
        plan.predicates = {
            Predicate::StringEq(ColumnRef::Dim(kLoSupp, supp, kDimNation),
                                "NATION_11"),
            Predicate::IntRange(year, 1997, 1998),
            Predicate::StringEq(ColumnRef::Dim(kLoPart, part, kDimCategory),
                                "MFGR#14")};
        plan.group_by = {year, ColumnRef::Dim(kLoSupp, supp, kDimCity),
                         ColumnRef::Dim(kLoPart, part, kDimBrand)};
      }
      break;
    }
    default:
      ECLDB_CHECK_MSG(false, "unknown query flight");
  }
  return plan;
}

}  // namespace

void SsbWorkload::InstallExecutor() {
  ECLDB_CHECK_MSG(lineorder_rows_ > 0, "call Load() first");
  engine_->scheduler().SetFunctionalExecutor(
      [this](PartitionId p, const msg::Message& m) {
        // Partition-local pipeline for the encoded query; the owning
        // worker holds the partition, so the scan is race-free.
        const int flight = static_cast<int>(m.payload[2]) / 10;
        const int number = static_cast<int>(m.payload[2]) % 10;
        engine::Partition* part = engine_->db().partition(p);
        const engine::Table* lo = part->table(kLineorder);
        const QueryPlan plan =
            PlanQuery(flight, number, part->table(kDate),
                      part->table(kCustomer), part->table(kSupplier),
                      part->table(kPart));
        engine::FilterOperator filter(lo, plan.predicates);
        engine::HashAggregator aggregator(plan.group_by, plan.value);
        // Morsel coordinates (payload[3]): scan only this message's row
        // share of the shard. Count 0 or 1 means the whole partition.
        const int64_t mcount = std::max<int64_t>(msg::MorselCount(m.payload[3]), 1);
        const int64_t mindex = msg::MorselIndex(m.payload[3]);
        const size_t rows = lo->num_rows();
        const size_t begin = static_cast<size_t>(
            static_cast<uint64_t>(mindex) * rows / mcount);
        const size_t end = static_cast<size_t>(
            static_cast<uint64_t>(mindex + 1) * rows / mcount);
        const int64_t scanned =
            engine::RunAggregationPipeline(lo, filter, &aggregator, begin, end);

        // Merge the partial aggregate into the query's pending result.
        PendingResult& pending = pending_[m.query_id];
        if (pending.remaining_tasks == 0) {
          pending.remaining_tasks =
              engine_->db().num_partitions() * static_cast<int>(mcount);
        }
        pending.result.rows_scanned += scanned;
        if (!pending.merged) {
          pending.merged.emplace(plan.group_by, plan.value);
        }
        pending.merged->Merge(aggregator);
        if (--pending.remaining_tasks == 0) {
          pending.result.matches = pending.merged->rows_consumed();
          pending.result.groups =
              static_cast<int>(pending.merged->groups().size());
          pending.result.aggregate = pending.merged->TotalSum();
          async_results_[m.query_id] = pending.result;
          pending_.erase(m.query_id);
        }
      });
}

QueryId SsbWorkload::SubmitQuery(int flight, int number,
                                 int morsels_per_partition) {
  ECLDB_CHECK_MSG(lineorder_rows_ > 0, "call Load() first");
  ECLDB_CHECK(morsels_per_partition >= 1);
  engine::QuerySpec spec;
  spec.profile = &profile();
  const int nparts = engine_->db().num_partitions();
  const double rows_per_part =
      static_cast<double>(SimLineorderRows()) / nparts;
  const double ops_each = FlightCostFactor(flight) *
                          (params_.indexed ? rows_per_part * 0.15 : rows_per_part);
  for (int p = 0; p < nparts; ++p) {
    engine::PartitionWork work;
    work.partition = p;
    work.ops = ops_each;
    work.type = msg::MessageType::kScan;
    work.arg0 = flight * 10 + number;
    work.morsels = morsels_per_partition;
    spec.work.push_back(work);
  }
  spec.origin_socket = 0;
  return engine_->Submit(spec);
}

std::optional<SsbWorkload::QueryResult> SsbWorkload::TakeResult(QueryId id) {
  auto it = async_results_.find(id);
  if (it == async_results_.end()) return std::nullopt;
  QueryResult r = it->second;
  async_results_.erase(it);
  return r;
}

SsbWorkload::QueryResult SsbWorkload::RunQuery(int flight, int number) {
  ECLDB_CHECK_MSG(lineorder_rows_ > 0, "call Load() first");
  engine::Database& db = engine_->db();
  QueryResult result;
  engine::HashAggregator merged({}, engine::ValueExpr::Column(
                                        engine::ColumnRef::Fact(kLoRev)));
  bool merged_init = false;

  // Scan -> filter -> aggregate per partition shard; merge the partial
  // aggregates (what the partition workers' result messages would carry).
  for (int p = 0; p < db.num_partitions(); ++p) {
    engine::Partition* part = db.partition(p);
    const engine::Table* lo = part->table(kLineorder);
    const QueryPlan plan =
        PlanQuery(flight, number, part->table(kDate), part->table(kCustomer),
                  part->table(kSupplier), part->table(kPart));
    engine::FilterOperator filter(lo, plan.predicates);
    engine::HashAggregator aggregator(plan.group_by, plan.value);
    result.rows_scanned += engine::RunMorselAggregationPipeline(
        lo, filter, &aggregator, engine_->morsel_pool());
    if (!merged_init) {
      merged = engine::HashAggregator(plan.group_by, plan.value);
      merged_init = true;
    }
    merged.Merge(aggregator);
  }
  result.matches = merged.rows_consumed();
  result.aggregate = merged.TotalSum();
  result.groups = static_cast<int>(merged.groups().size());
  return result;
}

}  // namespace ecldb::workload
