#include "workload/tatp.h"

#include <algorithm>

#include "common/check.h"
#include "workload/work_profiles.h"

namespace ecldb::workload {
namespace {

constexpr char kSubscriber[] = "subscriber";
constexpr char kAccessInfo[] = "access_info";
constexpr char kSpecialFacility[] = "special_facility";
constexpr char kCallForwarding[] = "call_forwarding";

constexpr char kSubPk[] = "sub_pk";
constexpr char kAiPk[] = "ai_pk";
constexpr char kSfPk[] = "sf_pk";
constexpr char kCfPk[] = "cf_pk";

// Standard TATP transaction mix in percent.
constexpr int kMix[TatpWorkload::kNumTxTypes] = {35, 10, 35, 2, 14, 2, 2};

std::string SubNbr(int64_t s_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%015lld", static_cast<long long>(s_id));
  return buf;
}

}  // namespace

const char* TatpWorkload::TxName(TxType t) {
  switch (t) {
    case TxType::kGetSubscriberData:
      return "GET_SUBSCRIBER_DATA";
    case TxType::kGetNewDestination:
      return "GET_NEW_DESTINATION";
    case TxType::kGetAccessData:
      return "GET_ACCESS_DATA";
    case TxType::kUpdateSubscriberData:
      return "UPDATE_SUBSCRIBER_DATA";
    case TxType::kUpdateLocation:
      return "UPDATE_LOCATION";
    case TxType::kInsertCallForwarding:
      return "INSERT_CALL_FORWARDING";
    case TxType::kDeleteCallForwarding:
      return "DELETE_CALL_FORWARDING";
  }
  return "?";
}

TatpWorkload::TatpWorkload(engine::Engine* engine, const TatpParams& params)
    : engine_(engine), params_(params) {
  ECLDB_CHECK(engine != nullptr);
  ECLDB_CHECK(params.subscribers > 0);
}

const hwsim::WorkProfile& TatpWorkload::profile() const {
  return params_.indexed ? TatpIndexed() : TatpNonIndexed();
}

engine::QuerySpec TatpWorkload::MakeQuery(Rng& rng) {
  engine::QuerySpec spec;
  spec.profile = &profile();
  const int nparts = engine_->db().num_partitions();
  const int k = std::min(params_.partitions_per_query, nparts);
  const double ops_each = MeanOpsPerQuery() / k;
  const int start = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(nparts)));
  for (int i = 0; i < k; ++i) {
    spec.work.push_back({(start + i) % nparts, ops_each});
  }
  spec.origin_socket = engine_->placement().HomeOf(spec.work.front().partition);
  return spec;
}

double TatpWorkload::MeanOpsPerQuery() const {
  if (params_.indexed) {
    // ~4 index/row access steps per transaction on average.
    return 4.0 * params_.tx_per_query_indexed;
  }
  // Without indexes every lookup becomes a shard scan; ~1.6 scans/tx.
  const double rows_per_part = static_cast<double>(params_.subscribers) /
                               engine_->db().num_partitions();
  return 1.6 * rows_per_part * params_.tx_per_query_non_indexed;
}

engine::Partition* TatpWorkload::PartitionOf(int64_t s_id) {
  engine::Database& db = engine_->db();
  return db.partition(db.PartitionForKey(s_id));
}

int64_t TatpWorkload::RandomSid(Rng& rng) const {
  return static_cast<int64_t>(
      rng.NextBounded(static_cast<uint64_t>(params_.subscribers))) + 1;
}

void TatpWorkload::Load() {
  engine::Database& db = engine_->db();
  using engine::ColumnType;
  db.CreateTable(kSubscriber,
                 engine::Schema({{"s_id", ColumnType::kInt64},
                                 {"sub_nbr", ColumnType::kString},
                                 {"bit_1", ColumnType::kInt64},
                                 {"msc_location", ColumnType::kInt64},
                                 {"vlr_location", ColumnType::kInt64}}));
  db.CreateTable(kAccessInfo, engine::Schema({{"s_id", ColumnType::kInt64},
                                              {"ai_type", ColumnType::kInt64},
                                              {"data1", ColumnType::kInt64},
                                              {"data2", ColumnType::kInt64},
                                              {"data3", ColumnType::kString},
                                              {"data4", ColumnType::kString}}));
  db.CreateTable(kSpecialFacility,
                 engine::Schema({{"s_id", ColumnType::kInt64},
                                 {"sf_type", ColumnType::kInt64},
                                 {"is_active", ColumnType::kInt64},
                                 {"error_cntrl", ColumnType::kInt64},
                                 {"data_a", ColumnType::kInt64},
                                 {"data_b", ColumnType::kString}}));
  db.CreateTable(kCallForwarding,
                 engine::Schema({{"s_id", ColumnType::kInt64},
                                 {"sf_type", ColumnType::kInt64},
                                 {"start_time", ColumnType::kInt64},
                                 {"end_time", ColumnType::kInt64},
                                 {"numberx", ColumnType::kString}}));
  if (params_.indexed) {
    db.CreateIndex(kSubPk);
    db.CreateIndex(kAiPk);
    db.CreateIndex(kSfPk);
    db.CreateIndex(kCfPk);
    // Pre-size the point indexes for the expected per-partition row counts
    // (access_info and special_facility average 2.5 rows per subscriber,
    // call_forwarding ~1.25) so the bulk load below does not rehash.
    const size_t per_part =
        static_cast<size_t>(params_.subscribers / db.num_partitions() + 1);
    for (int p = 0; p < db.num_partitions(); ++p) {
      engine::Partition* part = db.partition(p);
      part->index(kSubPk)->Reserve(per_part);
      part->index(kAiPk)->Reserve(3 * per_part);
      part->index(kSfPk)->Reserve(3 * per_part);
      part->index(kCfPk)->Reserve(2 * per_part);
    }
  }

  Rng rng(params_.seed);
  for (int64_t s_id = 1; s_id <= params_.subscribers; ++s_id) {
    engine::Partition* part = PartitionOf(s_id);
    engine::Table* sub = part->table(kSubscriber);
    const size_t sub_row = sub->AppendRow({s_id, SubNbr(s_id),
                                           rng.NextInRange(0, 1),
                                           rng.NextInRange(0, 0xffffffff),
                                           rng.NextInRange(0, 0xffffffff)});
    if (params_.indexed) {
      part->index(kSubPk)->Insert(s_id, static_cast<uint32_t>(sub_row));
    }

    // 1..4 distinct access_info rows.
    const int n_ai = static_cast<int>(rng.NextInRange(1, 4));
    for (int ai_type = 1; ai_type <= n_ai; ++ai_type) {
      engine::Table* ai = part->table(kAccessInfo);
      const size_t row = ai->AppendRow({s_id, static_cast<int64_t>(ai_type),
                                        rng.NextInRange(0, 255),
                                        rng.NextInRange(0, 255),
                                        std::string("AB3"), std::string("DEF45")});
      if (params_.indexed) {
        part->index(kAiPk)->Insert(AiKey(s_id, ai_type), static_cast<uint32_t>(row));
      }
    }

    // 1..4 distinct special_facility rows; ~85 % active.
    const int n_sf = static_cast<int>(rng.NextInRange(1, 4));
    for (int sf_type = 1; sf_type <= n_sf; ++sf_type) {
      engine::Table* sf = part->table(kSpecialFacility);
      const size_t row =
          sf->AppendRow({s_id, static_cast<int64_t>(sf_type),
                         static_cast<int64_t>(rng.NextBool(0.85) ? 1 : 0),
                         rng.NextInRange(0, 255), rng.NextInRange(0, 255),
                         std::string("XYZAB")});
      if (params_.indexed) {
        part->index(kSfPk)->Insert(SfKey(s_id, sf_type), static_cast<uint32_t>(row));
      }
      // 0..3 call_forwarding rows per special facility.
      const int n_cf = static_cast<int>(rng.NextInRange(0, 3));
      for (int c = 0; c < n_cf; ++c) {
        const int64_t start_time = c * 8;  // 0, 8, 16
        engine::Table* cf = part->table(kCallForwarding);
        const size_t cf_row = cf->AppendRow(
            {s_id, static_cast<int64_t>(sf_type), start_time,
             start_time + rng.NextInRange(1, 8), SubNbr(RandomSid(rng))});
        if (params_.indexed) {
          part->index(kCfPk)->Insert(CfKey(s_id, sf_type, start_time),
                                     static_cast<uint32_t>(cf_row));
        }
      }
    }
  }
  loaded_ = true;
}

TatpWorkload::TxType TatpWorkload::PickTx(Rng& rng) const {
  int r = static_cast<int>(rng.NextBounded(100));
  for (int t = 0; t < kNumTxTypes; ++t) {
    r -= kMix[t];
    if (r < 0) return static_cast<TxType>(t);
  }
  return TxType::kGetSubscriberData;
}

int TatpWorkload::FindSubscriber(engine::Partition* part, int64_t s_id) const {
  if (params_.indexed) {
    const auto row = part->index(kSubPk)->Find(s_id);
    return row ? static_cast<int>(*row) : -1;
  }
  const auto& ids = part->table(kSubscriber)->column(0)->ints();
  for (size_t row = 0; row < ids.size(); ++row) {
    if (ids[row] == s_id) return static_cast<int>(row);
  }
  return -1;
}

int TatpWorkload::FindAi(engine::Partition* part, int64_t s_id,
                         int64_t ai_type) const {
  if (params_.indexed) {
    const auto row = part->index(kAiPk)->Find(AiKey(s_id, ai_type));
    return row ? static_cast<int>(*row) : -1;
  }
  engine::Table* t = part->table(kAccessInfo);
  const auto& ids = t->column(0)->ints();
  const auto& types = t->column(1)->ints();
  for (size_t row = 0; row < ids.size(); ++row) {
    if (ids[row] == s_id && types[row] == ai_type) return static_cast<int>(row);
  }
  return -1;
}

int TatpWorkload::FindSf(engine::Partition* part, int64_t s_id,
                         int64_t sf_type) const {
  if (params_.indexed) {
    const auto row = part->index(kSfPk)->Find(SfKey(s_id, sf_type));
    return row ? static_cast<int>(*row) : -1;
  }
  engine::Table* t = part->table(kSpecialFacility);
  const auto& ids = t->column(0)->ints();
  const auto& types = t->column(1)->ints();
  for (size_t row = 0; row < ids.size(); ++row) {
    if (ids[row] == s_id && types[row] == sf_type) return static_cast<int>(row);
  }
  return -1;
}

int TatpWorkload::FindCf(engine::Partition* part, int64_t s_id, int64_t sf_type,
                         int64_t start_time) const {
  engine::Table* t = part->table(kCallForwarding);
  if (params_.indexed) {
    const auto row = part->index(kCfPk)->Find(CfKey(s_id, sf_type, start_time));
    if (!row || t->IsDeleted(*row)) return -1;
    return static_cast<int>(*row);
  }
  const auto& ids = t->column(0)->ints();
  const auto& types = t->column(1)->ints();
  const auto& starts = t->column(2)->ints();
  for (size_t row = 0; row < ids.size(); ++row) {
    if (!t->IsDeleted(row) && ids[row] == s_id && types[row] == sf_type &&
        starts[row] == start_time) {
      return static_cast<int>(row);
    }
  }
  return -1;
}

bool TatpWorkload::GetSubscriberData(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  engine::Partition* part = PartitionOf(s_id);
  const int row = FindSubscriber(part, s_id);
  if (row < 0) return false;
  engine::Table* sub = part->table(kSubscriber);
  // Read all fields (the transaction returns the full row).
  volatile int64_t sink = sub->column(2)->GetInt(static_cast<size_t>(row)) +
                          sub->column(3)->GetInt(static_cast<size_t>(row)) +
                          sub->column(4)->GetInt(static_cast<size_t>(row));
  (void)sink;
  return true;
}

bool TatpWorkload::GetNewDestination(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  const int64_t sf_type = rng.NextInRange(1, 4);
  const int64_t start_time = rng.NextInRange(0, 2) * 8;
  const int64_t end_time = rng.NextInRange(1, 24);
  engine::Partition* part = PartitionOf(s_id);
  const int sf_row = FindSf(part, s_id, sf_type);
  if (sf_row < 0) return false;
  engine::Table* sf = part->table(kSpecialFacility);
  if (sf->column(2)->GetInt(static_cast<size_t>(sf_row)) != 1) return false;
  const int cf_row = FindCf(part, s_id, sf_type, start_time);
  if (cf_row < 0) return false;
  engine::Table* cf = part->table(kCallForwarding);
  if (cf->column(3)->GetInt(static_cast<size_t>(cf_row)) <= end_time &&
      end_time < start_time) {
    return false;
  }
  return cf->column(3)->GetInt(static_cast<size_t>(cf_row)) > start_time;
}

bool TatpWorkload::GetAccessData(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  const int64_t ai_type = rng.NextInRange(1, 4);
  engine::Partition* part = PartitionOf(s_id);
  const int row = FindAi(part, s_id, ai_type);
  if (row < 0) return false;
  engine::Table* ai = part->table(kAccessInfo);
  volatile int64_t sink = ai->column(2)->GetInt(static_cast<size_t>(row)) +
                          ai->column(3)->GetInt(static_cast<size_t>(row));
  (void)sink;
  return true;
}

bool TatpWorkload::UpdateSubscriberData(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  const int64_t sf_type = rng.NextInRange(1, 4);
  engine::Partition* part = PartitionOf(s_id);
  const int sub_row = FindSubscriber(part, s_id);
  if (sub_row < 0) return false;
  part->table(kSubscriber)
      ->column(2)
      ->SetInt(static_cast<size_t>(sub_row), rng.NextInRange(0, 1));
  const int sf_row = FindSf(part, s_id, sf_type);
  if (sf_row < 0) return false;  // spec: fails when the sf row is absent
  part->table(kSpecialFacility)
      ->column(4)
      ->SetInt(static_cast<size_t>(sf_row), rng.NextInRange(0, 255));
  return true;
}

bool TatpWorkload::UpdateLocation(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  engine::Partition* part = PartitionOf(s_id);
  const int row = FindSubscriber(part, s_id);
  if (row < 0) return false;
  part->table(kSubscriber)
      ->column(4)
      ->SetInt(static_cast<size_t>(row), rng.NextInRange(0, 0xffffffff));
  return true;
}

bool TatpWorkload::InsertCallForwarding(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  const int64_t sf_type = rng.NextInRange(1, 4);
  const int64_t start_time = rng.NextInRange(0, 2) * 8;
  engine::Partition* part = PartitionOf(s_id);
  if (FindSf(part, s_id, sf_type) < 0) return false;
  if (FindCf(part, s_id, sf_type, start_time) >= 0) return false;  // exists
  engine::Table* cf = part->table(kCallForwarding);
  const size_t row = cf->AppendRow({s_id, sf_type, start_time,
                                    start_time + rng.NextInRange(1, 8),
                                    SubNbr(RandomSid(rng))});
  if (params_.indexed) {
    part->index(kCfPk)->Upsert(CfKey(s_id, sf_type, start_time),
                               static_cast<uint32_t>(row));
  }
  return true;
}

bool TatpWorkload::DeleteCallForwarding(Rng& rng) {
  const int64_t s_id = RandomSid(rng);
  const int64_t sf_type = rng.NextInRange(1, 4);
  const int64_t start_time = rng.NextInRange(0, 2) * 8;
  engine::Partition* part = PartitionOf(s_id);
  const int row = FindCf(part, s_id, sf_type, start_time);
  if (row < 0) return false;
  part->table(kCallForwarding)->DeleteRow(static_cast<size_t>(row));
  if (params_.indexed) {
    part->index(kCfPk)->Erase(CfKey(s_id, sf_type, start_time));
  }
  return true;
}

void TatpWorkload::InstallExecutor() {
  engine_->scheduler().SetFunctionalExecutor(
      [this](PartitionId partition, const msg::Message& m) {
        (void)partition;
        // Replay the transaction deterministically from its seed; every
        // transaction draws its subscriber first, so it lands exactly on
        // the partition the message was routed to.
        Rng rng(static_cast<uint64_t>(m.payload[3]));
        ExecuteTx(static_cast<TxType>(m.payload[2]), rng);
      });
}

QueryId TatpWorkload::SubmitTx(TxType type, Rng& rng) {
  ECLDB_CHECK_MSG(loaded_, "call Load() first");
  const uint64_t seed = rng.Next();
  // Peek the subscriber the replayed transaction will draw first, to route
  // the message to its home partition.
  Rng peek(seed);
  const int64_t s_id = RandomSid(peek);

  engine::QuerySpec spec;
  spec.profile = &profile();
  engine::PartitionWork work;
  work.partition = engine_->db().PartitionForKey(s_id);
  // Fluid cost: ~4 access steps per transaction when indexed; a shard
  // scan per lookup otherwise.
  work.ops = params_.indexed
                 ? 4.0
                 : 1.6 * static_cast<double>(params_.subscribers) /
                       engine_->db().num_partitions();
  work.type = msg::MessageType::kScan;  // functional opcode
  work.arg0 = static_cast<int64_t>(type);
  work.arg1 = static_cast<int64_t>(seed);
  spec.work.push_back(work);
  spec.origin_socket = engine_->placement().HomeOf(work.partition);
  return engine_->Submit(spec);
}

bool TatpWorkload::ExecuteTx(TxType type, Rng& rng) {
  ECLDB_CHECK_MSG(loaded_, "call Load() first");
  bool ok = false;
  switch (type) {
    case TxType::kGetSubscriberData:
      ok = GetSubscriberData(rng);
      break;
    case TxType::kGetNewDestination:
      ok = GetNewDestination(rng);
      break;
    case TxType::kGetAccessData:
      ok = GetAccessData(rng);
      break;
    case TxType::kUpdateSubscriberData:
      ok = UpdateSubscriberData(rng);
      break;
    case TxType::kUpdateLocation:
      ok = UpdateLocation(rng);
      break;
    case TxType::kInsertCallForwarding:
      ok = InsertCallForwarding(rng);
      break;
    case TxType::kDeleteCallForwarding:
      ok = DeleteCallForwarding(rng);
      break;
  }
  ++executed_[static_cast<size_t>(type)];
  if (ok) ++succeeded_[static_cast<size_t>(type)];
  return ok;
}

}  // namespace ecldb::workload
