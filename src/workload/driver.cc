#include "workload/driver.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::workload {

LoadDriver::LoadDriver(sim::Simulator* simulator, engine::Engine* engine,
                       Workload* workload, const LoadProfile* profile,
                       const DriverParams& params)
    : simulator_(simulator),
      engine_(engine),
      workload_(workload),
      profile_(profile),
      params_(params),
      rng_(params.seed) {
  ECLDB_CHECK(simulator != nullptr && engine != nullptr &&
              workload != nullptr && profile != nullptr);
  ECLDB_CHECK(params.capacity_qps > 0.0);
}

void LoadDriver::Start() {
  start_time_ = simulator_->now();
  ScheduleNext();
}

void LoadDriver::ScheduleNext() {
  const SimTime now = simulator_->now();
  const SimTime rel = now - start_time_;
  if (rel >= profile_->duration()) return;

  const double rate = profile_->LoadAt(rel) * params_.capacity_qps;
  if (rate <= 1e-9) {
    // No load right now: re-check in 50 ms.
    simulator_->ScheduleAfter(Millis(50), [this] { ScheduleNext(); });
    return;
  }
  const double gap_s =
      params_.poisson ? rng_.NextExponential(rate) : 1.0 / rate;
  const SimDuration gap = std::max<SimDuration>(
      Nanos(100), static_cast<SimDuration>(gap_s * 1e9));
  simulator_->ScheduleAfter(gap, [this] {
    const SimTime t = simulator_->now() - start_time_;
    if (t < profile_->duration()) {
      engine_->Submit(workload_->MakeQuery(rng_));
      ++submitted_;
    }
    ScheduleNext();
  });
}

}  // namespace ecldb::workload
