#include "workload/micro.h"

#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/check.h"

namespace ecldb::workload {

MicroWorkload::MicroWorkload(engine::Engine* engine,
                             const hwsim::WorkProfile& profile,
                             double ops_per_query, int partitions_per_query)
    : engine_(engine),
      profile_(&profile),
      ops_per_query_(ops_per_query),
      partitions_per_query_(partitions_per_query) {
  ECLDB_CHECK(engine != nullptr);
  ECLDB_CHECK(ops_per_query > 0.0);
  ECLDB_CHECK(partitions_per_query >= 1);
}

engine::QuerySpec MicroWorkload::MakeQuery(Rng& rng) {
  engine::QuerySpec spec;
  spec.profile = profile_;
  const int nparts = engine_->db().num_partitions();
  const int k = std::min(partitions_per_query_, nparts);
  const double ops_each = ops_per_query_ / k;
  const int start = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(nparts)));
  for (int i = 0; i < k; ++i) {
    spec.work.push_back({(start + i) % nparts, ops_each});
  }
  spec.origin_socket = engine_->placement().HomeOf(spec.work.front().partition);
  return spec;
}

namespace kernels {

int64_t ComputeKernel(int64_t iterations) {
  volatile int64_t counter = 0;
  for (int64_t i = 0; i < iterations; ++i) counter = counter + 1;
  return counter;
}

int64_t ScanKernel(const std::vector<int64_t>& data) {
  int64_t sum = 0;
  for (int64_t v : data) sum += v;
  return sum;
}

int64_t AtomicContentionKernel(int threads, int64_t target) {
  ECLDB_CHECK(threads >= 1);
  std::atomic<int64_t> counter{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    pool.emplace_back([&counter, target] {
      while (counter.fetch_add(1, std::memory_order_relaxed) < target - 1) {
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return target;
}

size_t SharedHashInsertKernel(int threads, int64_t inserts_per_thread) {
  ECLDB_CHECK(threads >= 1);
  std::unordered_map<int64_t, int64_t> map;
  std::mutex mu;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&map, &mu, t, inserts_per_thread] {
      for (int64_t i = 0; i < inserts_per_thread; ++i) {
        const int64_t key = t * inserts_per_thread + i;
        std::lock_guard<std::mutex> lock(mu);
        map.emplace(key, key);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  return map.size();
}

}  // namespace kernels
}  // namespace ecldb::workload
