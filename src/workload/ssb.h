#ifndef ECLDB_WORKLOAD_SSB_H_
#define ECLDB_WORKLOAD_SSB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/engine.h"
#include "engine/operators.h"
#include "workload/workload.h"

namespace ecldb::workload {

/// Star Schema Benchmark (SSB) [17]: an OLAP workload of 13 star-join
/// queries in four flights over a lineorder fact table and four dimension
/// tables. The fact table is partitioned across all data partitions;
/// dimension tables are replicated into every partition (standard
/// shared-nothing star-schema placement).
struct SsbParams {
  /// SF 1 is 6M lineorder rows; tests use much smaller factors.
  double scale_factor = 0.1;
  bool indexed = true;
  uint64_t seed = 99;
  /// Simulation metadata: lineorder rows assumed by the cost model when
  /// Load() is not called (defaults to scale_factor * 6M).
  int64_t sim_lineorder_rows = 0;
};

class SsbWorkload : public Workload {
 public:
  static constexpr int kNumQueries = 13;
  /// (flight, number) of the i-th query, i in [0, 13).
  static std::pair<int, int> QueryAt(int i);

  SsbWorkload(engine::Engine* engine, const SsbParams& params);

  std::string_view name() const override {
    return params_.indexed ? "ssb-indexed" : "ssb-non-indexed";
  }
  const hwsim::WorkProfile& profile() const override;
  engine::QuerySpec MakeQuery(Rng& rng) override;
  double MeanOpsPerQuery() const override;

  // --- Functional mode ---------------------------------------------------

  /// Generates and loads all five tables.
  void Load();

  struct QueryResult {
    int64_t rows_scanned = 0;
    int64_t matches = 0;
    double aggregate = 0.0;
    int groups = 0;
  };

  /// Executes SSB query `flight`.`number` (e.g. 2, 1 for Q2.1) over the
  /// partitioned data; aggregates across all partitions (synchronous).
  QueryResult RunQuery(int flight, int number);

  // --- Asynchronous distributed execution ----------------------------------
  // The query fans out through the message layer: every partition runs the
  // scan->filter->aggregate pipeline locally when its fluid work completes
  // (on whichever worker owns the partition), and the partial aggregates
  // merge into the query's result — the data-oriented OLAP execution path
  // with correct virtual-time latencies.

  /// Registers this workload's functional executor with the engine
  /// (call once after Load(); one workload owns the executor at a time).
  void InstallExecutor();

  /// Submits query `flight`.`number` for distributed execution. Partition
  /// tasks on the remote socket travel through the inter-socket
  /// communication endpoints like any message. With
  /// `morsels_per_partition` > 1 each partition scan is split into that
  /// many morsel messages (fluid morsel stealing: any active worker of the
  /// owning socket can consume a share), and the functional executor scans
  /// only the morsel's row range.
  QueryId SubmitQuery(int flight, int number, int morsels_per_partition = 1);

  /// Retrieves (and removes) the merged result once every partition task
  /// has completed; empty while in flight.
  std::optional<QueryResult> TakeResult(QueryId id);

  int64_t lineorder_rows() const { return lineorder_rows_; }

 private:
  int64_t SimLineorderRows() const;

  engine::Engine* engine_;
  SsbParams params_;
  int64_t lineorder_rows_ = 0;
  int64_t num_customers_ = 0;
  int64_t num_suppliers_ = 0;
  int64_t num_parts_ = 0;
  int next_query_ = 0;

  /// In-flight distributed queries: merged partials per query. Partial
  /// aggregates combine through HashAggregator::Merge, the same
  /// cross-partition path RunQuery uses. `remaining_tasks` counts morsel
  /// messages (partitions x morsels_per_partition).
  struct PendingResult {
    QueryResult result;
    std::optional<engine::HashAggregator> merged;
    int remaining_tasks = 0;
  };
  std::unordered_map<QueryId, PendingResult> pending_;
  std::unordered_map<QueryId, QueryResult> async_results_;
};

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_SSB_H_
