#ifndef ECLDB_WORKLOAD_MICRO_H_
#define ECLDB_WORKLOAD_MICRO_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "workload/workload.h"

namespace ecldb::workload {

/// Simulation-mode micro workload: queries place `ops_per_query`
/// operations of a fixed work profile on `partitions_per_query` random
/// partitions. Used for the paper's Section 2/4 micro experiments
/// (compute-bound, memory-bound, atomic contention, hash-table insert).
class MicroWorkload : public Workload {
 public:
  MicroWorkload(engine::Engine* engine, const hwsim::WorkProfile& profile,
                double ops_per_query, int partitions_per_query);

  std::string_view name() const override { return profile_->name; }
  const hwsim::WorkProfile& profile() const override { return *profile_; }
  engine::QuerySpec MakeQuery(Rng& rng) override;
  double MeanOpsPerQuery() const override { return ops_per_query_; }

 private:
  engine::Engine* engine_;
  const hwsim::WorkProfile* profile_;
  double ops_per_query_;
  int partitions_per_query_;
};

/// Functional micro kernels: the real loops behind the simulated work
/// profiles. They anchor the cost model (tests compare their real
/// operation counts and memory footprints against the profile constants)
/// and are runnable from the examples.
namespace kernels {

/// Increments a local counter `iterations` times; returns the counter.
int64_t ComputeKernel(int64_t iterations);

/// Sums an int64 array (one pass, 8 bytes per element); returns the sum.
int64_t ScanKernel(const std::vector<int64_t>& data);

/// `threads` workers atomically increment a shared counter until it
/// reaches `target`; returns the final value (== target).
int64_t AtomicContentionKernel(int threads, int64_t target);

/// `threads` workers insert `inserts_per_thread` keys into one shared
/// (mutex-protected) hash map; returns the final map size.
size_t SharedHashInsertKernel(int threads, int64_t inserts_per_thread);

}  // namespace kernels
}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_MICRO_H_
