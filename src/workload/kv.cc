#include "workload/kv.h"

#include "common/check.h"
#include "workload/work_profiles.h"

namespace ecldb::workload {
namespace {

constexpr char kTable[] = "kv";
constexpr char kIndex[] = "kv_pk";

}  // namespace

KvWorkload::KvWorkload(engine::Engine* engine, const KvParams& params)
    : engine_(engine), params_(params) {
  ECLDB_CHECK(engine != nullptr);
  ECLDB_CHECK(params.num_keys > 0);
  if (params.zipf_theta > 0.0) {
    zipf_ = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(engine->db().num_partitions()),
        params.zipf_theta, params.zipf_seed);
  }
}

PartitionId KvWorkload::PickPartition(Rng& rng) {
  const int nparts = engine_->db().num_partitions();
  if (zipf_ != nullptr) {
    // Shuffle the Zipf ranks over partitions deterministically so the hot
    // partitions are spread across both sockets.
    const auto rank = static_cast<int64_t>(zipf_->Next());
    return static_cast<PartitionId>((rank * 17 + 5) % nparts);
  }
  return static_cast<PartitionId>(rng.NextBounded(static_cast<uint64_t>(nparts)));
}

const hwsim::WorkProfile& KvWorkload::profile() const {
  return params_.indexed ? KvIndexed() : KvNonIndexed();
}

int64_t KvWorkload::RowsPerPartition() const {
  return params_.num_keys / engine_->db().num_partitions();
}

engine::QuerySpec KvWorkload::MakeQuery(Rng& rng) {
  engine::QuerySpec spec;
  spec.profile = &profile();
  const int nparts = engine_->db().num_partitions();
  if (params_.indexed) {
    // Multi-get batch: keys hash into a few partitions; each lookup is one
    // operation of the latency-bound profile.
    const int k = std::min(params_.partitions_per_query, nparts);
    const double ops_each = static_cast<double>(params_.batch_gets) / k;
    const int start = PickPartition(rng);
    for (int i = 0; i < k; ++i) {
      spec.work.push_back({(start + i) % nparts, ops_each});
    }
  } else {
    // Point lookup without an index: scan the key's whole partition shard
    // (one operation per row).
    spec.work.push_back({PickPartition(rng), static_cast<double>(RowsPerPartition())});
  }
  spec.origin_socket = engine_->placement().HomeOf(spec.work.front().partition);
  return spec;
}

double KvWorkload::MeanOpsPerQuery() const {
  return params_.indexed ? static_cast<double>(params_.batch_gets)
                         : static_cast<double>(RowsPerPartition());
}

void KvWorkload::Load() {
  engine::Database& db = engine_->db();
  db.CreateTable(kTable, engine::Schema({{"key", engine::ColumnType::kInt64},
                                         {"value", engine::ColumnType::kInt64}}));
  const int64_t n =
      params_.functional_keys > 0 ? params_.functional_keys : params_.num_keys;
  if (params_.indexed) {
    db.CreateIndex(kIndex);
    // Pre-size the per-partition indexes so the load loop does not rehash.
    const size_t per_part =
        static_cast<size_t>(n / db.num_partitions() + 1);
    for (int p = 0; p < db.num_partitions(); ++p) {
      db.partition(p)->index(kIndex)->Reserve(per_part);
    }
  }
  for (int64_t key = 0; key < n; ++key) {
    Put(key, key * 2 + 1);
  }
  loaded_keys_ = n;
}

void KvWorkload::Put(int64_t key, int64_t value) {
  engine::Database& db = engine_->db();
  engine::Partition* part = db.partition(db.PartitionForKey(key));
  engine::Table* table = part->table(kTable);
  if (params_.indexed) {
    engine::HashIndex* index = part->index(kIndex);
    if (std::optional<uint32_t> row = index->Find(key)) {
      table->column(1)->SetInt(*row, value);
      return;
    }
    const size_t row = table->AppendRow({key, value});
    index->Insert(key, static_cast<uint32_t>(row));
    return;
  }
  // Non-indexed: scan for the key, update in place or append.
  const auto& keys = table->column(0)->ints();
  for (size_t row = 0; row < keys.size(); ++row) {
    if (keys[row] == key && !table->IsDeleted(row)) {
      table->column(1)->SetInt(row, value);
      return;
    }
  }
  table->AppendRow({key, value});
}

std::optional<int64_t> KvWorkload::Get(int64_t key) {
  engine::Database& db = engine_->db();
  engine::Partition* part = db.partition(db.PartitionForKey(key));
  engine::Table* table = part->table(kTable);
  if (params_.indexed) {
    if (std::optional<uint32_t> row = part->index(kIndex)->Find(key)) {
      return table->column(1)->GetInt(*row);
    }
    return std::nullopt;
  }
  const auto& keys = table->column(0)->ints();
  for (size_t row = 0; row < keys.size(); ++row) {
    if (keys[row] == key && !table->IsDeleted(row)) {
      return table->column(1)->GetInt(row);
    }
  }
  return std::nullopt;
}

void KvWorkload::InstallExecutor() {
  engine_->scheduler().SetFunctionalExecutor(
      [this](PartitionId partition, const msg::Message& m) {
        (void)partition;
        switch (m.type) {
          case msg::MessageType::kGet: {
            AsyncResult r;
            const std::optional<int64_t> v = Get(m.payload[2]);
            r.found = v.has_value();
            r.value = v.value_or(0);
            async_results_[m.query_id] = r;
            break;
          }
          case msg::MessageType::kPut:
            Put(m.payload[2], m.payload[3]);
            break;
          default:
            break;
        }
      });
}

QueryId KvWorkload::SubmitGet(int64_t key) {
  engine::QuerySpec spec;
  spec.profile = &profile();
  engine::PartitionWork work;
  work.partition = engine_->db().PartitionForKey(key);
  // Fluid cost: one index probe when indexed, a shard scan otherwise —
  // the same access pattern the sim-mode profile models.
  work.ops = params_.indexed ? 1.0 : static_cast<double>(RowsPerPartition());
  work.type = msg::MessageType::kGet;
  work.arg0 = key;
  spec.work.push_back(work);
  spec.origin_socket = engine_->placement().HomeOf(work.partition);
  return engine_->Submit(spec);
}

QueryId KvWorkload::SubmitPut(int64_t key, int64_t value) {
  engine::QuerySpec spec;
  spec.profile = &profile();
  engine::PartitionWork work;
  work.partition = engine_->db().PartitionForKey(key);
  work.ops = params_.indexed ? 1.0 : static_cast<double>(RowsPerPartition());
  work.type = msg::MessageType::kPut;
  work.arg0 = key;
  work.arg1 = value;
  spec.work.push_back(work);
  spec.origin_socket = engine_->placement().HomeOf(work.partition);
  return engine_->Submit(spec);
}

std::optional<KvWorkload::AsyncResult> KvWorkload::TakeResult(QueryId id) {
  auto it = async_results_.find(id);
  if (it == async_results_.end()) return std::nullopt;
  AsyncResult r = it->second;
  async_results_.erase(it);
  return r;
}

int64_t KvWorkload::ScanCountAtLeast(int64_t threshold) {
  engine::Database& db = engine_->db();
  int64_t count = 0;
  for (int p = 0; p < db.num_partitions(); ++p) {
    engine::Table* table = db.partition(p)->table(kTable);
    const auto& values = table->column(1)->ints();
    for (size_t row = 0; row < values.size(); ++row) {
      if (!table->IsDeleted(row) && values[row] >= threshold) ++count;
    }
  }
  return count;
}

}  // namespace ecldb::workload
