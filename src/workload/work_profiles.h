#ifndef ECLDB_WORKLOAD_WORK_PROFILES_H_
#define ECLDB_WORKLOAD_WORK_PROFILES_H_

#include "hwsim/work_profile.h"

namespace ecldb::workload {

// Canonical work profiles of the paper's workloads. Units ("operations")
// differ per workload and are documented per profile. The calibration
// reproduces the qualitative energy-profile shapes of Figures 9, 10 and
// 17-20: compute-bound work favors low uncore clocks, bandwidth-bound work
// favors the highest uncore clock at the lowest core clock, contended work
// favors very few threads, and the benchmark workloads sit in between.

/// Incrementing a thread-local counter; op = one increment (Fig. 9).
const hwsim::WorkProfile& ComputeBound();

/// Column scan; op = one 64-byte cache line (Figs. 6 and 10(a)).
const hwsim::WorkProfile& MemoryScan();

/// All threads atomically increment one shared variable; op = one
/// increment (Fig. 10(b)).
const hwsim::WorkProfile& AtomicContention();

/// Threads insert into a shared hash table; op = one insert (Fig. 10(c)).
const hwsim::WorkProfile& HashInsertShared();

/// FIRESTARTER-like AVX burn kernel used for peak-power measurements
/// (Fig. 3); op = one AVX block.
const hwsim::WorkProfile& Firestarter();

/// Key-value store, fully indexed: hash-index point lookups; op = one
/// lookup (memory latency-bound).
const hwsim::WorkProfile& KvIndexed();

/// Key-value store, non-indexed: partition-shard column scans; op = one
/// scanned row (memory bandwidth-bound, resembles Fig. 10(a)).
const hwsim::WorkProfile& KvNonIndexed();

/// TATP transactions over indexed tables; op = one index/row access step.
const hwsim::WorkProfile& TatpIndexed();

/// TATP over non-indexed tables (lookups become shard scans); op = one
/// scanned row.
const hwsim::WorkProfile& TatpNonIndexed();

/// SSB star-join queries over indexed (join-index) tables; op = one
/// probe/tuple reconstruction step. Ships data between partitions, hence
/// a higher uncore demand than TATP (paper Section 6.2).
const hwsim::WorkProfile& SsbIndexed();

/// SSB with full lineorder scans; op = one scanned tuple.
const hwsim::WorkProfile& SsbNonIndexed();

}  // namespace ecldb::workload

#endif  // ECLDB_WORKLOAD_WORK_PROFILES_H_
