#include "workload/work_profiles.h"

namespace ecldb::workload {

using hwsim::ContentionClass;
using hwsim::WorkProfile;

const WorkProfile& ComputeBound() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "compute-bound",
      .instr_per_op = 1.0,
      .cpi = 1.0,
  };
  return p;
}

const WorkProfile& MemoryScan() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "memory-scan",
      .instr_per_op = 8.0,
      .cpi = 0.4,
      .bytes_per_op = 64.0,
  };
  return p;
}

const WorkProfile& AtomicContention() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "atomic-contention",
      .instr_per_op = 5.0,
      .cpi = 1.0,
      .contention = ContentionClass::kSharedCacheLine,
  };
  return p;
}

const WorkProfile& HashInsertShared() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "hash-insert-shared",
      .instr_per_op = 50.0,
      .cpi = 0.8,
      .mem_accesses_per_op = 1.2,
      .mlp = 2.0,
      .bytes_per_op = 64.0,
      .contention = ContentionClass::kSharedStructure,
      .serial_linear = 0.02,
      .serial_quad = 0.006,
  };
  return p;
}

const WorkProfile& Firestarter() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "firestarter",
      .instr_per_op = 1.0,
      .cpi = 0.25,
      .bytes_per_op = 6.0,
      .power_scale = 1.35,
  };
  return p;
}

const WorkProfile& KvIndexed() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "kv-indexed",
      .instr_per_op = 600.0,
      .cpi = 0.7,
      .mem_accesses_per_op = 1.5,
      .mlp = 2.0,
      .bytes_per_op = 160.0,
  };
  return p;
}

const WorkProfile& KvNonIndexed() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "kv-non-indexed",
      .instr_per_op = 2.0,
      .cpi = 0.4,
      .bytes_per_op = 8.0,
  };
  return p;
}

const WorkProfile& TatpIndexed() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "tatp-indexed",
      .instr_per_op = 500.0,
      .cpi = 0.7,
      .mem_accesses_per_op = 1.4,
      .mlp = 1.8,
      .bytes_per_op = 140.0,
  };
  return p;
}

const WorkProfile& TatpNonIndexed() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "tatp-non-indexed",
      .instr_per_op = 6.0,
      .cpi = 0.4,
      .bytes_per_op = 24.0,
  };
  return p;
}

const WorkProfile& SsbIndexed() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "ssb-indexed",
      .instr_per_op = 400.0,
      .cpi = 0.65,
      .mem_accesses_per_op = 2.0,
      .mlp = 2.0,
      .bytes_per_op = 220.0,
  };
  return p;
}

const WorkProfile& SsbNonIndexed() {
  static const WorkProfile& p = *new WorkProfile{
      .name = "ssb-non-indexed",
      .instr_per_op = 10.0,
      .cpi = 0.4,
      .bytes_per_op = 40.0,
  };
  return p;
}

}  // namespace ecldb::workload
