#ifndef ECLDB_ENGINE_HASH_INDEX_H_
#define ECLDB_ENGINE_HASH_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace ecldb::engine {

/// Open-addressing hash index mapping an int64 key to a row id.
/// Linear probing with tombstones; grows at 70 % load factor and rehashes
/// in place once tombstones exceed 25 % of the slots (erase-heavy churn
/// would otherwise degrade probe lengths between growths). Composite
/// keys (e.g. TATP call_forwarding's (s_id, sf_type, start_time)) are
/// encoded into the 64-bit key by the caller.
class HashIndex {
 public:
  explicit HashIndex(size_t initial_capacity = 64);

  /// Pre-sizes the table for `expected_keys` live entries so bulk loads
  /// skip the intermediate rehashes.
  void Reserve(size_t expected_keys);

  /// Inserts key -> row. Returns false if the key already exists.
  bool Insert(int64_t key, uint32_t row);

  /// Inserts or overwrites.
  void Upsert(int64_t key, uint32_t row);

  std::optional<uint32_t> Find(int64_t key) const;

  /// Removes the key; false if absent.
  bool Erase(int64_t key);

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  size_t tombstones() const { return tombstones_; }
  size_t MemoryBytes() const { return slots_.capacity() * sizeof(Slot); }

  /// Average probe length of recent finds (diagnostic / cost model input).
  double MeanProbeLength() const;
  /// Restarts the probe-length average (e.g. around a measurement window).
  void ResetProbeStats() const {
    probe_samples_ = 0;
    probe_total_ = 0;
  }

 private:
  enum class State : uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  struct Slot {
    int64_t key = 0;
    uint32_t row = 0;
    State state = State::kEmpty;
  };

  static uint64_t Hash(int64_t key);
  void Grow();
  /// Rehash triggered by tombstone accumulation (> 25 % of slots).
  bool TombstoneHeavy() const { return tombstones_ * 4 > slots_.size(); }
  /// Returns slot index of the key, or the first insertable slot if absent
  /// (encoded as ~index).
  size_t Locate(int64_t key) const;

  std::vector<Slot> slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
  mutable uint64_t probe_samples_ = 0;
  mutable uint64_t probe_total_ = 0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_HASH_INDEX_H_
