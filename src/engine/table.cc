#include "engine/table.h"

#include "common/check.h"

namespace ecldb::engine {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    const ColumnDef& def = schema_.column(i);
    columns_.push_back(std::make_unique<Column>(def.name, def.type));
  }
}

size_t Table::AppendRow(const std::vector<Value>& values) {
  ECLDB_CHECK(values.size() == schema_.num_columns());
  for (size_t i = 0; i < values.size(); ++i) {
    Column* col = columns_[i].get();
    switch (col->type()) {
      case ColumnType::kInt64:
        col->AppendInt(std::get<int64_t>(values[i]));
        break;
      case ColumnType::kDouble:
        col->AppendDouble(std::get<double>(values[i]));
        break;
      case ColumnType::kString:
        col->AppendString(std::get<std::string>(values[i]));
        break;
    }
  }
  deleted_.push_back(false);
  return num_rows_++;
}

void Table::CopyContentFrom(const Table& other) {
  ECLDB_CHECK_MSG(schema_.num_columns() == other.schema_.num_columns(),
                  "CopyContentFrom requires matching schemas");
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i]->CopyFrom(*other.columns_[i]);
  }
  deleted_ = other.deleted_;
  num_rows_ = other.num_rows_;
  num_deleted_ = other.num_deleted_;
}

Column* Table::column(std::string_view name) {
  const int i = schema_.IndexOf(name);
  ECLDB_CHECK_MSG(i >= 0, "unknown column");
  return columns_[static_cast<size_t>(i)].get();
}

const Column* Table::column(std::string_view name) const {
  const int i = schema_.IndexOf(name);
  ECLDB_CHECK_MSG(i >= 0, "unknown column");
  return columns_[static_cast<size_t>(i)].get();
}

void Table::DeleteRow(size_t row) {
  ECLDB_DCHECK(row < num_rows_);
  if (!deleted_[row]) {
    deleted_[row] = true;
    ++num_deleted_;
  }
}

size_t Table::MemoryBytes() const {
  size_t bytes = deleted_.size() / 8;
  for (const auto& col : columns_) bytes += col->MemoryBytes();
  return bytes;
}

}  // namespace ecldb::engine
