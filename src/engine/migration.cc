#include "engine/migration.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::engine {

const hwsim::WorkProfile& ShardCopyProfile() {
  static const hwsim::WorkProfile* profile = [] {
    auto* p = new hwsim::WorkProfile();
    p->name = "shard_copy";
    // Streaming copy loop: few instructions per cache line, dominated by
    // DRAM traffic (64 B read locally + 64 B written to the remote
    // socket), with deep prefetch overlap.
    p->instr_per_op = 8.0;
    p->cpi = 0.6;
    p->mem_accesses_per_op = 0.0;
    p->mlp = 8.0;
    p->bytes_per_op = 128.0;
    return p;
  }();
  return *profile;
}

MigrationCoordinator::MigrationCoordinator(
    sim::Simulator* simulator, hwsim::Machine* machine, Database* db,
    PlacementMap* placement, msg::MessageLayer* layer, Scheduler* scheduler,
    const MigrationParams& params)
    : simulator_(simulator),
      machine_(machine),
      db_(db),
      placement_(placement),
      layer_(layer),
      scheduler_(scheduler),
      params_(params) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr && db != nullptr &&
              placement != nullptr && layer != nullptr && scheduler != nullptr);
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("engine/migrations_started", [this] { return started_; });
    reg.AddCounterFn("engine/migrations_completed",
                     [this] { return completed_; });
    reg.AddCounterFn("engine/migration_messages_rehomed",
                     [this] { return messages_rehomed_; });
    reg.AddGauge("engine/migrations_active",
                 [this] { return static_cast<double>(active_); });
    reg.AddGauge("engine/migration_bytes_moved",
                 [this] { return bytes_moved_; });
    trace_lane_ = tel->trace().RegisterLane("engine/migration");
  }
}

double MigrationCoordinator::CopyBytes(PartitionId p) const {
  const double actual =
      static_cast<double>(db_->partition(p)->MemoryBytes());
  return std::max(actual, params_.min_shard_bytes);
}

bool MigrationCoordinator::StartMigration(PartitionId p, SocketId to) {
  ECLDB_CHECK(p >= 0 && p < placement_->num_partitions());
  ECLDB_CHECK(to >= 0 && to < placement_->num_sockets());
  ECLDB_CHECK_MSG(!scheduler_->static_binding(),
                  "live migration requires the elastic scheduler");
  if (placement_->IsMigrating(p) || placement_->HomeOf(p) == to) return false;
  const SocketId from = placement_->HomeOf(p);
  placement_->BeginMigration(p, to);
  ++active_;
  ++started_;

  const double bytes = CopyBytes(p);
  const double ops = std::max(1.0, bytes / params_.bytes_per_op);
  QuerySpec copy;
  copy.profile = &ShardCopyProfile();
  copy.work.push_back({p, ops, msg::MessageType::kWorkUnits, 0, 0});
  copy.origin_socket = from;
  copy.internal = true;
  const QueryId copy_query = scheduler_->Submit(copy);

  // First handover check after the analytic QPI-limited copy estimate;
  // completion is then polled, because the copy's true finish time also
  // depends on the queue prefix ahead of it and the socket's current
  // configuration.
  const double qpi_gbps = machine_->params().bandwidth.qpi_gbps;
  const SimDuration estimate =
      qpi_gbps > 0.0 ? FromSeconds(bytes / (qpi_gbps * 1e9)) : SimDuration{0};
  const SimDuration first_check = std::max(params_.min_copy_time, estimate);
  const SimTime t_start = simulator_->now();
  simulator_->ScheduleAfter(first_check, [this, p, copy_query, bytes, t_start] {
    CheckHandover(p, copy_query, bytes, t_start);
  });
  return true;
}

void MigrationCoordinator::CheckHandover(PartitionId p, QueryId copy_query,
                                         double bytes, SimTime t_start) {
  if (scheduler_->IsInflight(copy_query)) {
    simulator_->ScheduleAfter(params_.check_interval,
                              [this, p, copy_query, bytes, t_start] {
                                CheckHandover(p, copy_query, bytes, t_start);
                              });
    return;
  }
  Handover(p, bytes, t_start);
}

void MigrationCoordinator::Handover(PartitionId p, double bytes,
                                    SimTime t_start) {
  const SocketId from = placement_->HomeOf(p);
  const SocketId to = placement_->MigrationTarget(p);
  scheduler_->PrepareRehome(p);
  const auto rehomed = static_cast<int64_t>(layer_->Rehome(p, from, to));
  messages_rehomed_ += rehomed;
  placement_->CommitMigration(p);
  bytes_moved_ += bytes;
  --active_;
  ++completed_;
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    // One span per migration: drain+copy start through placement commit.
    tel->trace().Span(
        trace_lane_, "engine", "migration", t_start, simulator_->now(),
        "\"partition\":" + std::to_string(p) + ",\"from\":" +
            std::to_string(from) + ",\"to\":" + std::to_string(to) +
            ",\"bytes\":" + telemetry::JsonNumber(bytes) +
            ",\"messages_rehomed\":" + std::to_string(rehomed));
  }
}

}  // namespace ecldb::engine
