#ifndef ECLDB_ENGINE_MORSEL_H_
#define ECLDB_ENGINE_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "engine/operators.h"

namespace ecldb::engine {

/// Morsel-driven intra-query parallelism (Leis et al.'s morsel model): a
/// shard scan is split into fixed row ranges — morsels — claimed from a
/// shared atomic cursor by a pool of persistent worker threads plus the
/// calling thread. Claiming from the shared cursor IS the work stealing:
/// a fast worker simply claims the morsels a slow one never got to, so no
/// per-worker deques or rebalancing are needed.
///
/// Each morsel aggregates into its own partial HashAggregator; partials
/// merge in morsel-index order, so results are bit-identical regardless of
/// worker count or claim interleaving (FP addition never reorders). Across
/// *different* morsel grids the per-group addition trees differ, which IEEE
/// addition does not absolve — keys and counts stay exact, sums agree to
/// rounding. A single-morsel run delegates to the serial pipeline and is
/// bit-identical to it.
///
/// This pool parallelizes the functional executor path (real threads).
/// The fluid-simulation analogue — splitting a partition's scan message
/// into morsel messages consumed by all active workers of the owning
/// socket — lives in engine/scheduler.cc.
class MorselPool {
 public:
  /// Spawns `extra_workers` persistent threads (0 is valid: Run executes
  /// everything on the caller).
  explicit MorselPool(int extra_workers);
  ~MorselPool();

  MorselPool(const MorselPool&) = delete;
  MorselPool& operator=(const MorselPool&) = delete;

  /// Total execution streams: the caller plus the pool threads.
  int workers() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count) across all workers; returns when
  /// every index has finished. fn must be safe to call concurrently with
  /// distinct arguments. Not reentrant.
  void Run(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;  // bumped per Run to wake workers
  bool stop_ = false;
  const std::function<void(size_t)>* fn_ = nullptr;  // valid for one Run
  size_t count_ = 0;
  std::atomic<size_t> next_{0};  // shared morsel cursor (the stealing)
  size_t arrived_ = 0;  // pool threads done with the current generation
};

/// Runs scan->filter->aggregate over `fact` split into morsels of
/// `morsel_rows` rows dispatched on `pool`, merging per-morsel partials
/// into `aggregator` in morsel order. Falls back to the serial pipeline
/// (bit-identical) when pool is null or the table fits in one morsel.
/// Returns rows scanned.
int64_t RunMorselAggregationPipeline(const Table* fact,
                                     const FilterOperator& filter,
                                     HashAggregator* aggregator,
                                     MorselPool* pool,
                                     size_t morsel_rows = 16384);

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_MORSEL_H_
