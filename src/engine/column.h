#ifndef ECLDB_ENGINE_COLUMN_H_
#define ECLDB_ENGINE_COLUMN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace ecldb::engine {

enum class ColumnType { kInt64, kDouble, kString };

const char* ColumnTypeName(ColumnType type);

/// Append-only typed column of the in-memory column store. Strings are
/// dictionary-encoded (int32 codes into a per-column dictionary), the
/// common layout for analytical in-memory engines.
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  size_t size() const { return size_; }

  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string_view v);

  /// Replaces this column's content with a copy of `other`'s (data,
  /// dictionary, and tracked int bounds). Name and type must match.
  /// Bulk path for replicating a dimension shard into other partitions.
  void CopyFrom(const Column& other);

  int64_t GetInt(size_t row) const {
    ECLDB_DCHECK(type_ == ColumnType::kInt64 && row < size_);
    return ints_[row];
  }
  double GetDouble(size_t row) const {
    ECLDB_DCHECK(type_ == ColumnType::kDouble && row < size_);
    return doubles_[row];
  }
  std::string_view GetString(size_t row) const {
    ECLDB_DCHECK(type_ == ColumnType::kString && row < size_);
    return dict_[static_cast<size_t>(codes_[row])];
  }
  /// Dictionary code of a string cell (fast equality comparisons).
  int32_t GetStringCode(size_t row) const {
    ECLDB_DCHECK(type_ == ColumnType::kString && row < size_);
    return codes_[row];
  }
  /// Code of `v` in the dictionary or -1 (then no row matches it).
  int32_t LookupStringCode(std::string_view v) const;

  /// Number of distinct strings (codes are in [0, dict_size())).
  size_t dict_size() const { return dict_.size(); }
  /// The string behind a dictionary code.
  std::string_view DictEntry(int32_t code) const {
    ECLDB_DCHECK(type_ == ColumnType::kString &&
                 static_cast<size_t>(code) < dict_.size());
    return dict_[static_cast<size_t>(code)];
  }

  /// Conservative value bounds of an int64 column (maintained on append
  /// and overwrite, never shrunk); false while the column is empty.
  /// Feeds the group-key packer's bit-width calculation.
  bool IntBounds(int64_t* lo, int64_t* hi) const {
    ECLDB_DCHECK(type_ == ColumnType::kInt64);
    if (min_int_ > max_int_) return false;
    *lo = min_int_;
    *hi = max_int_;
    return true;
  }

  /// Raw data access for scans.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<int32_t>& codes() const { return codes_; }

  void SetInt(size_t row, int64_t v) {
    ECLDB_DCHECK(type_ == ColumnType::kInt64 && row < size_);
    ints_[row] = v;
    if (v < min_int_) min_int_ = v;
    if (v > max_int_) max_int_ = v;
  }
  void SetDouble(size_t row, double v) {
    ECLDB_DCHECK(type_ == ColumnType::kDouble && row < size_);
    doubles_[row] = v;
  }

  size_t MemoryBytes() const;

 private:
  std::string name_;
  ColumnType type_;
  size_t size_ = 0;
  int64_t min_int_ = INT64_MAX;
  int64_t max_int_ = INT64_MIN;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, int32_t> dict_lookup_;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_COLUMN_H_
