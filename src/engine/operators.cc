#include "engine/operators.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "engine/simd.h"

namespace ecldb::engine {

// ---- ColumnRef -------------------------------------------------------------

ColumnRef ColumnRef::Fact(int col) {
  ColumnRef ref;
  ref.fact_col_ = col;
  return ref;
}

ColumnRef ColumnRef::Dim(int fk_col, const Table* dim, int dim_col) {
  ECLDB_CHECK(dim != nullptr);
  ColumnRef ref;
  ref.fact_col_ = fk_col;
  ref.dim_ = dim;
  ref.dim_col_ = dim_col;
  return ref;
}

const Column& ColumnRef::Resolve(const Table& fact, uint32_t row,
                                 uint32_t* resolved_row) const {
  if (dim_ == nullptr) {
    *resolved_row = row;
    return *fact.column(static_cast<size_t>(fact_col_));
  }
  // Direct-addressed dimension lookup: dim row = foreign key - 1.
  const int64_t fk =
      fact.column(static_cast<size_t>(fact_col_))->GetInt(row);
  ECLDB_DCHECK(fk >= 1 && static_cast<size_t>(fk) <= dim_->num_rows());
  *resolved_row = static_cast<uint32_t>(fk - 1);
  return *dim_->column(static_cast<size_t>(dim_col_));
}

int64_t ColumnRef::GetInt(const Table& fact, uint32_t row) const {
  uint32_t r;
  const Column& col = Resolve(fact, row, &r);
  return col.GetInt(r);
}

std::string_view ColumnRef::GetString(const Table& fact, uint32_t row) const {
  uint32_t r;
  const Column& col = Resolve(fact, row, &r);
  return col.GetString(r);
}

void ColumnRef::AppendKey(const Table& fact, uint32_t row,
                          std::string* out) const {
  uint32_t r;
  const Column& col = Resolve(fact, row, &r);
  switch (col.type()) {
    case ColumnType::kInt64:
      out->append(std::to_string(col.GetInt(r)));
      break;
    case ColumnType::kDouble:
      out->append(std::to_string(col.GetDouble(r)));
      break;
    case ColumnType::kString:
      out->append(col.GetString(r));
      break;
  }
}

const Column* ColumnRef::TargetColumn(const Table& fact) const {
  return dim_ == nullptr ? fact.column(static_cast<size_t>(fact_col_))
                         : dim_->column(static_cast<size_t>(dim_col_));
}

const Column* ColumnRef::FkColumn(const Table& fact) const {
  return dim_ == nullptr ? nullptr
                         : fact.column(static_cast<size_t>(fact_col_));
}

const Column* ColumnRef::ResolveBatch(const Table& fact, const uint32_t* rows,
                                      size_t n, std::vector<uint32_t>* scratch,
                                      const uint32_t** rows_out) const {
  if (dim_ == nullptr) {
    *rows_out = rows;
    return fact.column(static_cast<size_t>(fact_col_));
  }
  scratch->resize(n);
  uint32_t* out = scratch->data();
  const int64_t* fk =
      fact.column(static_cast<size_t>(fact_col_))->ints().data();
  simd::ActiveKernels().gather_fk(fk, rows, n, out);
  simd::CountDispatch(simd::KernelId::kGatherFk,
                      simd::ActiveLevel() != simd::Level::kScalar);
  *rows_out = out;
  return dim_->column(static_cast<size_t>(dim_col_));
}

// ---- Predicate -------------------------------------------------------------

Predicate Predicate::IntRange(ColumnRef ref, int64_t lo, int64_t hi) {
  Predicate p;
  p.kind = Kind::kIntRange;
  p.ref = ref;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::StringEq(ColumnRef ref, std::string value) {
  Predicate p;
  p.kind = Kind::kStringEq;
  p.ref = ref;
  p.values.push_back(std::move(value));
  return p;
}

Predicate Predicate::StringIn(ColumnRef ref, std::vector<std::string> values) {
  Predicate p;
  p.kind = Kind::kStringIn;
  p.ref = ref;
  p.values = std::move(values);
  return p;
}

Predicate Predicate::StringRange(ColumnRef ref, std::string lo, std::string hi) {
  Predicate p;
  p.kind = Kind::kStringRange;
  p.ref = ref;
  p.values.push_back(std::move(lo));
  p.values.push_back(std::move(hi));
  return p;
}

bool Predicate::MatchesString(std::string_view v) const {
  switch (kind) {
    case Kind::kStringEq:
      return v == values[0];
    case Kind::kStringIn:
      for (const std::string& s : values) {
        if (v == s) return true;
      }
      return false;
    case Kind::kStringRange:
      return v >= values[0] && v <= values[1];
    case Kind::kIntRange:
      break;
  }
  ECLDB_DCHECK(false);
  return false;
}

bool Predicate::Eval(const Table& fact, uint32_t row) const {
  if (kind == Kind::kIntRange) {
    const int64_t v = ref.GetInt(fact, row);
    return v >= lo && v <= hi;
  }
  return MatchesString(ref.GetString(fact, row));
}

// ---- TableScan -------------------------------------------------------------

TableScan::TableScan(const Table* table, size_t batch_size)
    : TableScan(table, 0, std::numeric_limits<size_t>::max(), batch_size) {}

TableScan::TableScan(const Table* table, size_t begin_row, size_t end_row,
                     size_t batch_size)
    : table_(table),
      batch_size_(batch_size),
      begin_row_(begin_row),
      end_row_(end_row),
      next_row_(begin_row) {
  ECLDB_CHECK(table != nullptr);
  ECLDB_CHECK(batch_size > 0);
  ECLDB_CHECK(begin_row <= end_row);
}

bool TableScan::Next(std::vector<uint32_t>* rows) {
  rows->clear();
  const size_t n = std::min(end_row_, table_->num_rows());
  if (next_row_ >= n) return false;
  if (table_->num_deleted() == 0) {
    // No tombstones: straight iota fill, no per-row branch.
    const size_t count = std::min(batch_size_, n - next_row_);
    rows->resize(count);
    std::iota(rows->begin(), rows->end(),
              static_cast<uint32_t>(next_row_));
    next_row_ += count;
    return true;
  }
  while (next_row_ < n && rows->size() < batch_size_) {
    if (!table_->IsDeleted(next_row_)) {
      rows->push_back(static_cast<uint32_t>(next_row_));
    }
    ++next_row_;
  }
  return !rows->empty();
}

// ---- FilterOperator --------------------------------------------------------

FilterOperator::FilterOperator(const Table* fact,
                               std::vector<Predicate> predicates)
    : fact_(fact), predicates_(std::move(predicates)) {
  ECLDB_CHECK(fact != nullptr);
  bounds_.reserve(predicates_.size());
  for (const Predicate& p : predicates_) {
    Bound b;
    b.val_col = p.ref.TargetColumn(*fact);
    b.fk_col = p.ref.FkColumn(*fact);
    if (p.kind == Predicate::Kind::kIntRange) {
      ECLDB_DCHECK(b.val_col->type() == ColumnType::kInt64);
    } else {
      // Translate the string predicate into a per-dictionary-code verdict
      // so the kernel compares int32 codes; codes appended after this
      // point (dictionary growth) take the string-compare fallback.
      ECLDB_DCHECK(b.val_col->type() == ColumnType::kString);
      const size_t dict = b.val_col->dict_size();
      b.known = dict;
      // 4 bytes of zero padding past the last code: the AVX2 verdict
      // gather loads 32 bits per code.
      b.code_match.assign(dict + 4, 0);
      for (size_t c = 0; c < dict; ++c) {
        b.code_match[c] =
            p.MatchesString(b.val_col->DictEntry(static_cast<int32_t>(c)))
                ? 1
                : 0;
      }
    }
    bounds_.push_back(std::move(b));
  }
}

namespace {

/// Dictionary-growth fallback passed into the code-match kernels: codes
/// the verdict table predates are resolved by a real string compare.
struct UnknownCodeCtx {
  const Predicate* pred;
  const Column* col;
};

bool MatchUnknownCode(const void* ctx, int32_t code) {
  const auto* c = static_cast<const UnknownCodeCtx*>(ctx);
  return c->pred->MatchesString(c->col->DictEntry(code));
}

}  // namespace

void FilterOperator::ApplyOne(const Predicate& p, const Bound& b,
                              std::vector<uint32_t>* rows) const {
  // Compaction kernels write kept rows back into the selection vector
  // in place (writes never overtake reads).
  uint32_t* data = rows->data();
  const size_t n = rows->size();
  const simd::KernelTable& kt = simd::ActiveKernels();
  const bool used_simd = simd::ActiveLevel() != simd::Level::kScalar;
  size_t kept;
  if (p.kind == Predicate::Kind::kIntRange) {
    const int64_t* v = b.val_col->ints().data();
    if (b.fk_col == nullptr) {
      kept = kt.filter_int_range(v, data, n, p.lo, p.hi, data);
    } else {
      kept = kt.filter_int_range_fk(v, b.fk_col->ints().data(), data, n, p.lo,
                                    p.hi, data);
    }
    simd::CountDispatch(simd::KernelId::kFilterIntRange, used_simd);
  } else {
    const int32_t* codes = b.val_col->codes().data();
    const UnknownCodeCtx ctx{&p, b.val_col};
    if (b.fk_col == nullptr) {
      kept = kt.filter_code_match(codes, data, n, b.code_match.data(),
                                  b.known, MatchUnknownCode, &ctx, data);
    } else {
      kept = kt.filter_code_match_fk(codes, b.fk_col->ints().data(), data, n,
                                     b.code_match.data(), b.known,
                                     MatchUnknownCode, &ctx, data);
    }
    simd::CountDispatch(simd::KernelId::kFilterCodeMatch, used_simd);
  }
  rows->resize(kept);
}

size_t FilterOperator::Apply(std::vector<uint32_t>* rows) const {
  for (size_t i = 0; i < predicates_.size() && !rows->empty(); ++i) {
    ApplyOne(predicates_[i], bounds_[i], rows);
  }
  return rows->size();
}

size_t FilterOperator::ApplyScalar(std::vector<uint32_t>* rows) const {
  size_t kept = 0;
  for (uint32_t row : *rows) {
    bool ok = true;
    for (const Predicate& p : predicates_) {
      if (!p.Eval(*fact_, row)) {
        ok = false;
        break;
      }
    }
    if (ok) (*rows)[kept++] = row;
  }
  rows->resize(kept);
  return kept;
}

// ---- ValueExpr -------------------------------------------------------------

ValueExpr ValueExpr::Column(ColumnRef a, double scale) {
  ValueExpr e;
  e.kind = Kind::kColumn;
  e.a = a;
  e.scale = scale;
  return e;
}

ValueExpr ValueExpr::Product(ColumnRef a, ColumnRef b, double scale) {
  ValueExpr e;
  e.kind = Kind::kProduct;
  e.a = a;
  e.b = b;
  e.scale = scale;
  return e;
}

ValueExpr ValueExpr::Difference(ColumnRef a, ColumnRef b, double scale) {
  ValueExpr e;
  e.kind = Kind::kDifference;
  e.a = a;
  e.b = b;
  e.scale = scale;
  return e;
}

double ValueExpr::Eval(const Table& fact, uint32_t row) const {
  switch (kind) {
    case Kind::kColumn:
      return scale * static_cast<double>(a.GetInt(fact, row));
    case Kind::kProduct:
      return scale * static_cast<double>(a.GetInt(fact, row)) *
             static_cast<double>(b.GetInt(fact, row));
    case Kind::kDifference:
      return scale * (static_cast<double>(a.GetInt(fact, row)) -
                      static_cast<double>(b.GetInt(fact, row)));
  }
  return 0.0;
}

namespace {

/// The AVX2 int64->double conversion (magic-number trick) is only exact —
/// hence only bit-identical to the scalar cast — within +/-2^51; gate on
/// the column's tracked bounds.
bool BoundsExactForSimdConvert(const Column* col) {
  int64_t lo = 0;
  int64_t hi = 0;
  if (!col->IntBounds(&lo, &hi)) return false;
  constexpr int64_t kLim = int64_t{1} << 51;
  return lo > -kLim && hi < kLim;
}

}  // namespace

void ValueExpr::EvalBatch(const Table& fact, const uint32_t* rows, size_t n,
                          std::vector<uint32_t>* scratch_a,
                          std::vector<uint32_t>* scratch_b,
                          double* out) const {
  // The kernels mirror Eval's operand order exactly so every per-row
  // double is bit-identical to the row-at-a-time path.
  const uint32_t* ra;
  // `class` disambiguates from the ValueExpr::Column factory.
  const class Column* ca = a.ResolveBatch(fact, rows, n, scratch_a, &ra);
  const int64_t* va = ca->ints().data();
  bool exact = BoundsExactForSimdConvert(ca);
  const uint32_t* rb = nullptr;
  const int64_t* vb = nullptr;
  if (kind != Kind::kColumn) {
    const class Column* cb = b.ResolveBatch(fact, rows, n, scratch_b, &rb);
    vb = cb->ints().data();
    exact = exact && BoundsExactForSimdConvert(cb);
  }
  const bool use_simd =
      exact && simd::ActiveLevel() != simd::Level::kScalar;
  const simd::KernelTable& kt =
      use_simd ? simd::ActiveKernels() : simd::ScalarKernels();
  simd::CountDispatch(simd::KernelId::kEvalValue, use_simd);
  switch (kind) {
    case Kind::kColumn:
      kt.eval_column(va, ra, n, scale, out);
      return;
    case Kind::kProduct:
      kt.eval_product(va, ra, vb, rb, n, scale, out);
      return;
    case Kind::kDifference:
      kt.eval_difference(va, ra, vb, rb, n, scale, out);
      return;
  }
}

// ---- HashAggregator --------------------------------------------------------

HashAggregator::HashAggregator(std::vector<ColumnRef> group_by, ValueExpr value)
    : group_by_(std::move(group_by)), value_(value) {}

bool HashAggregator::EnsureLayout(const Table& fact) {
  if (scalar_mode_) return false;
  if (layout_fact_ == &fact) return true;
  // A different fact shard invalidates the packed layout (dictionary and
  // value bounds are per-column); decode what was packed so far first.
  FlushPacked();
  parts_.clear();
  dense_bits_ = -1;
  layout_fact_ = &fact;
  uint32_t total_bits = 0;
  for (const ColumnRef& ref : group_by_) {
    KeyPart part;
    part.col = ref.TargetColumn(fact);
    part.fk_col = ref.FkColumn(fact);
    switch (part.col->type()) {
      case ColumnType::kString:
        part.is_string = true;
        part.limit =
            part.col->dict_size() == 0 ? 0 : part.col->dict_size() - 1;
        break;
      case ColumnType::kInt64: {
        int64_t lo = 0;
        int64_t hi = 0;
        part.col->IntBounds(&lo, &hi);
        part.base = lo;
        part.limit =
            static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
        break;
      }
      case ColumnType::kDouble:
        // No stable integer coding for doubles; stay row-at-a-time.
        scalar_mode_ = true;
        return false;
    }
    part.bits = static_cast<uint32_t>(std::bit_width(part.limit));
    total_bits += part.bits;
    parts_.push_back(part);
  }
  if (total_bits > 63) {  // 63 keeps every shift in-range
    scalar_mode_ = true;
    return false;
  }
  if (total_bits <= kDenseKeyBits) {
    // Small key space: direct-addressed flat accumulators, no hashing.
    dense_bits_ = static_cast<int>(total_bits);
    dense_sum_.assign(size_t{1} << total_bits, 0.0);
    dense_used_.assign(size_t{1} << total_bits, 0);
  } else {
    // Pre-size the hash table from the tracked bounds: the packed key
    // space bounds the distinct group count, so no mid-pipeline rehash
    // for group sets up to the cap.
    constexpr uint64_t kMaxReserve = uint64_t{1} << 16;
    uint64_t estimate = 1;
    for (const KeyPart& part : parts_) {
      estimate *= part.limit + 1;  // limit < 2^63, no overflow
      if (estimate >= kMaxReserve) {
        estimate = kMaxReserve;
        break;
      }
    }
    table_.Reserve(static_cast<size_t>(estimate));
  }
  return true;
}

void HashAggregator::Consume(const Table& fact,
                             const std::vector<uint32_t>& rows) {
  const size_t n = rows.size();
  if (n == 0) return;
  if (!EnsureLayout(fact)) {
    ConsumeScalarImpl(fact, rows);
    rows_consumed_ += static_cast<int64_t>(n);
    return;
  }

  const simd::KernelTable& kt = simd::ActiveKernels();
  const bool used_simd = simd::ActiveLevel() != simd::Level::kScalar;

  // Pack each row's group codes into one composite key, column at a time.
  // A foreign-key gather is reused across consecutive parts that join
  // through the same fact column (common in star queries).
  key_scratch_.assign(n, 0);
  uint64_t* keys = key_scratch_.data();
  const Column* gathered_fk = nullptr;
  for (const KeyPart& part : parts_) {
    const uint32_t* target_rows = rows.data();
    if (part.fk_col != nullptr) {
      if (part.fk_col != gathered_fk) {
        row_scratch_a_.resize(n);
        kt.gather_fk(part.fk_col->ints().data(), rows.data(), n,
                     row_scratch_a_.data());
        simd::CountDispatch(simd::KernelId::kGatherFk, used_simd);
        gathered_fk = part.fk_col;
      }
      target_rows = row_scratch_a_.data();
    }
    const bool in_range =
        part.is_string
            ? kt.pack_codes(keys, part.col->codes().data(), target_rows, n,
                            part.bits, part.limit)
            : kt.pack_ints(keys, part.col->ints().data(), target_rows, n,
                           part.bits, static_cast<uint64_t>(part.base),
                           part.limit);
    simd::CountDispatch(simd::KernelId::kPackKey, used_simd);
    if (!in_range) {
      // A value outside the bounds seen at layout time (dictionary grew,
      // or an overwrite widened the column): the packed coding is stale.
      // Decode what is packed and continue row-at-a-time from here on.
      // (The kernels may have partially written key_scratch_; it is
      // discarded here.)
      scalar_mode_ = true;
      FlushPacked();
      ConsumeScalarImpl(fact, rows);
      rows_consumed_ += static_cast<int64_t>(n);
      return;
    }
  }

  val_scratch_.resize(n);
  value_.EvalBatch(fact, rows.data(), n, &row_scratch_a_, &row_scratch_b_,
                   val_scratch_.data());

  // Accumulate in row order: per group this is the same addition sequence
  // as the scalar path, so the sums are bit-identical.
  const double* vals = val_scratch_.data();
  if (dense_bits_ >= 0) {
    double* sums = dense_sum_.data();
    uint8_t* used = dense_used_.data();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = keys[i];
      used[k] = 1;
      sums[k] += vals[i];
    }
  } else {
    table_.AccumulateBatch(keys, vals, n, &hash_scratch_);
  }
  rows_consumed_ += static_cast<int64_t>(n);
}

void HashAggregator::ConsumeScalarImpl(const Table& fact,
                                       const std::vector<uint32_t>& rows) {
  std::string key;
  for (uint32_t row : rows) {
    key.clear();
    for (size_t g = 0; g < group_by_.size(); ++g) {
      if (g > 0) key.push_back('|');
      group_by_[g].AppendKey(fact, row, &key);
    }
    groups_[key] += value_.Eval(fact, row);
  }
}

void HashAggregator::ConsumeScalar(const Table& fact,
                                   const std::vector<uint32_t>& rows) {
  ConsumeScalarImpl(fact, rows);
  rows_consumed_ += static_cast<int64_t>(rows.size());
}

std::string HashAggregator::DecodeKey(uint64_t key) const {
  // Codes come off the low end in reverse part order (the last part was
  // shifted in last).
  std::vector<uint64_t> codes(parts_.size());
  for (size_t i = parts_.size(); i-- > 0;) {
    const KeyPart& part = parts_[i];
    codes[i] = key & ((uint64_t{1} << part.bits) - 1);
    key >>= part.bits;
  }
  std::string out;
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out.push_back('|');
    const KeyPart& part = parts_[i];
    if (part.is_string) {
      out.append(part.col->DictEntry(static_cast<int32_t>(codes[i])));
    } else {
      out.append(std::to_string(part.base + static_cast<int64_t>(codes[i])));
    }
  }
  return out;
}

void HashAggregator::FlushPacked() const {
  if (dense_bits_ >= 0 && !dense_sum_.empty()) {
    const size_t space = size_t{1} << dense_bits_;
    for (size_t k = 0; k < space; ++k) {
      if (!dense_used_[k]) continue;
      groups_[DecodeKey(k)] += dense_sum_[k];
      dense_used_[k] = 0;
      dense_sum_[k] = 0.0;
    }
  }
  if (table_.size() == 0) return;
  table_.ForEach([this](const AggHashTable::Cell& cell) {
    groups_[DecodeKey(cell.key)] += cell.sum;
  });
  table_.Clear();
}

void HashAggregator::Merge(const HashAggregator& other) {
  other.FlushPacked();
  FlushPacked();
  for (const auto& [key, sum] : other.groups_) groups_[key] += sum;
  rows_consumed_ += other.rows_consumed_;
}

double HashAggregator::TotalSum() const {
  FlushPacked();
  double total = 0.0;
  for (const auto& [key, sum] : groups_) total += sum;
  return total;
}

// ---- Pipeline --------------------------------------------------------------

int64_t RunAggregationPipeline(const Table* fact, const FilterOperator& filter,
                               HashAggregator* aggregator) {
  return RunAggregationPipeline(fact, filter, aggregator, 0,
                                std::numeric_limits<size_t>::max());
}

int64_t RunAggregationPipeline(const Table* fact, const FilterOperator& filter,
                               HashAggregator* aggregator, size_t begin_row,
                               size_t end_row) {
  ECLDB_CHECK(fact != nullptr && aggregator != nullptr);
  TableScan scan(fact, begin_row, end_row);
  std::vector<uint32_t> batch;
  int64_t scanned = 0;
  while (scan.Next(&batch)) {
    scanned += static_cast<int64_t>(batch.size());
    filter.Apply(&batch);
    aggregator->Consume(*fact, batch);
  }
  return scanned;
}

int64_t RunAggregationPipelineScalar(const Table* fact,
                                     const FilterOperator& filter,
                                     HashAggregator* aggregator) {
  ECLDB_CHECK(fact != nullptr && aggregator != nullptr);
  TableScan scan(fact);
  std::vector<uint32_t> batch;
  int64_t scanned = 0;
  while (scan.Next(&batch)) {
    scanned += static_cast<int64_t>(batch.size());
    filter.ApplyScalar(&batch);
    aggregator->ConsumeScalar(*fact, batch);
  }
  return scanned;
}

}  // namespace ecldb::engine
