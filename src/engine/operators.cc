#include "engine/operators.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::engine {

// ---- ColumnRef -------------------------------------------------------------

ColumnRef ColumnRef::Fact(int col) {
  ColumnRef ref;
  ref.fact_col_ = col;
  return ref;
}

ColumnRef ColumnRef::Dim(int fk_col, const Table* dim, int dim_col) {
  ECLDB_CHECK(dim != nullptr);
  ColumnRef ref;
  ref.fact_col_ = fk_col;
  ref.dim_ = dim;
  ref.dim_col_ = dim_col;
  return ref;
}

const Column& ColumnRef::Resolve(const Table& fact, uint32_t row,
                                 uint32_t* resolved_row) const {
  if (dim_ == nullptr) {
    *resolved_row = row;
    return *fact.column(static_cast<size_t>(fact_col_));
  }
  // Direct-addressed dimension lookup: dim row = foreign key - 1.
  const int64_t fk =
      fact.column(static_cast<size_t>(fact_col_))->GetInt(row);
  ECLDB_DCHECK(fk >= 1 && static_cast<size_t>(fk) <= dim_->num_rows());
  *resolved_row = static_cast<uint32_t>(fk - 1);
  return *dim_->column(static_cast<size_t>(dim_col_));
}

int64_t ColumnRef::GetInt(const Table& fact, uint32_t row) const {
  uint32_t r;
  const Column& col = Resolve(fact, row, &r);
  return col.GetInt(r);
}

std::string_view ColumnRef::GetString(const Table& fact, uint32_t row) const {
  uint32_t r;
  const Column& col = Resolve(fact, row, &r);
  return col.GetString(r);
}

void ColumnRef::AppendKey(const Table& fact, uint32_t row,
                          std::string* out) const {
  uint32_t r;
  const Column& col = Resolve(fact, row, &r);
  switch (col.type()) {
    case ColumnType::kInt64:
      out->append(std::to_string(col.GetInt(r)));
      break;
    case ColumnType::kDouble:
      out->append(std::to_string(col.GetDouble(r)));
      break;
    case ColumnType::kString:
      out->append(col.GetString(r));
      break;
  }
}

// ---- Predicate -------------------------------------------------------------

Predicate Predicate::IntRange(ColumnRef ref, int64_t lo, int64_t hi) {
  Predicate p;
  p.kind = Kind::kIntRange;
  p.ref = ref;
  p.lo = lo;
  p.hi = hi;
  return p;
}

Predicate Predicate::StringEq(ColumnRef ref, std::string value) {
  Predicate p;
  p.kind = Kind::kStringEq;
  p.ref = ref;
  p.values.push_back(std::move(value));
  return p;
}

Predicate Predicate::StringIn(ColumnRef ref, std::vector<std::string> values) {
  Predicate p;
  p.kind = Kind::kStringIn;
  p.ref = ref;
  p.values = std::move(values);
  return p;
}

Predicate Predicate::StringRange(ColumnRef ref, std::string lo, std::string hi) {
  Predicate p;
  p.kind = Kind::kStringRange;
  p.ref = ref;
  p.values.push_back(std::move(lo));
  p.values.push_back(std::move(hi));
  return p;
}

bool Predicate::Eval(const Table& fact, uint32_t row) const {
  switch (kind) {
    case Kind::kIntRange: {
      const int64_t v = ref.GetInt(fact, row);
      return v >= lo && v <= hi;
    }
    case Kind::kStringEq:
      return ref.GetString(fact, row) == values[0];
    case Kind::kStringIn: {
      const std::string_view v = ref.GetString(fact, row);
      for (const std::string& s : values) {
        if (v == s) return true;
      }
      return false;
    }
    case Kind::kStringRange: {
      const std::string_view v = ref.GetString(fact, row);
      return v >= values[0] && v <= values[1];
    }
  }
  return false;
}

// ---- TableScan -------------------------------------------------------------

TableScan::TableScan(const Table* table, size_t batch_size)
    : table_(table), batch_size_(batch_size) {
  ECLDB_CHECK(table != nullptr);
  ECLDB_CHECK(batch_size > 0);
}

bool TableScan::Next(std::vector<uint32_t>* rows) {
  rows->clear();
  const size_t n = table_->num_rows();
  while (next_row_ < n && rows->size() < batch_size_) {
    if (!table_->IsDeleted(next_row_)) {
      rows->push_back(static_cast<uint32_t>(next_row_));
    }
    ++next_row_;
  }
  return !rows->empty();
}

// ---- FilterOperator --------------------------------------------------------

FilterOperator::FilterOperator(const Table* fact,
                               std::vector<Predicate> predicates)
    : fact_(fact), predicates_(std::move(predicates)) {
  ECLDB_CHECK(fact != nullptr);
}

size_t FilterOperator::Apply(std::vector<uint32_t>* rows) const {
  size_t kept = 0;
  for (uint32_t row : *rows) {
    bool ok = true;
    for (const Predicate& p : predicates_) {
      if (!p.Eval(*fact_, row)) {
        ok = false;
        break;
      }
    }
    if (ok) (*rows)[kept++] = row;
  }
  rows->resize(kept);
  return kept;
}

// ---- ValueExpr -------------------------------------------------------------

ValueExpr ValueExpr::Column(ColumnRef a, double scale) {
  ValueExpr e;
  e.kind = Kind::kColumn;
  e.a = a;
  e.scale = scale;
  return e;
}

ValueExpr ValueExpr::Product(ColumnRef a, ColumnRef b, double scale) {
  ValueExpr e;
  e.kind = Kind::kProduct;
  e.a = a;
  e.b = b;
  e.scale = scale;
  return e;
}

ValueExpr ValueExpr::Difference(ColumnRef a, ColumnRef b, double scale) {
  ValueExpr e;
  e.kind = Kind::kDifference;
  e.a = a;
  e.b = b;
  e.scale = scale;
  return e;
}

double ValueExpr::Eval(const Table& fact, uint32_t row) const {
  switch (kind) {
    case Kind::kColumn:
      return scale * static_cast<double>(a.GetInt(fact, row));
    case Kind::kProduct:
      return scale * static_cast<double>(a.GetInt(fact, row)) *
             static_cast<double>(b.GetInt(fact, row));
    case Kind::kDifference:
      return scale * (static_cast<double>(a.GetInt(fact, row)) -
                      static_cast<double>(b.GetInt(fact, row)));
  }
  return 0.0;
}

// ---- HashAggregator --------------------------------------------------------

HashAggregator::HashAggregator(std::vector<ColumnRef> group_by, ValueExpr value)
    : group_by_(std::move(group_by)), value_(value) {}

void HashAggregator::Consume(const Table& fact,
                             const std::vector<uint32_t>& rows) {
  std::string key;
  for (uint32_t row : rows) {
    key.clear();
    for (size_t g = 0; g < group_by_.size(); ++g) {
      if (g > 0) key.push_back('|');
      group_by_[g].AppendKey(fact, row, &key);
    }
    groups_[key] += value_.Eval(fact, row);
    ++rows_consumed_;
  }
}

void HashAggregator::Merge(const HashAggregator& other) {
  for (const auto& [key, sum] : other.groups_) groups_[key] += sum;
  rows_consumed_ += other.rows_consumed_;
}

double HashAggregator::TotalSum() const {
  double total = 0.0;
  for (const auto& [key, sum] : groups_) total += sum;
  return total;
}

// ---- Pipeline --------------------------------------------------------------

int64_t RunAggregationPipeline(const Table* fact, const FilterOperator& filter,
                               HashAggregator* aggregator) {
  ECLDB_CHECK(fact != nullptr && aggregator != nullptr);
  TableScan scan(fact);
  std::vector<uint32_t> batch;
  int64_t scanned = 0;
  while (scan.Next(&batch)) {
    scanned += static_cast<int64_t>(batch.size());
    filter.Apply(&batch);
    aggregator->Consume(*fact, batch);
  }
  return scanned;
}

}  // namespace ecldb::engine
