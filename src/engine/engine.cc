#include "engine/engine.h"

#include "common/check.h"

namespace ecldb::engine {

Engine::Engine(sim::Simulator* simulator, hwsim::Machine* machine,
               const EngineParams& params)
    : simulator_(simulator), machine_(machine) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
  const int partitions = params.num_partitions > 0
                             ? params.num_partitions
                             : machine->topology().total_threads();
  db_ = std::make_unique<Database>(partitions, machine->topology().num_sockets);
  layer_ = std::make_unique<msg::MessageLayer>(machine->topology().num_sockets,
                                               db_->HomeMap(),
                                               params.message_layer);
  scheduler_ = std::make_unique<Scheduler>(simulator, machine, db_.get(),
                                           layer_.get(), params.scheduler);
}

}  // namespace ecldb::engine
