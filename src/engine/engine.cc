#include "engine/engine.h"

#include <string>

#include "common/check.h"
#include "engine/simd.h"

namespace ecldb::engine {

Engine::Engine(sim::Simulator* simulator, hwsim::Machine* machine,
               const EngineParams& params)
    : simulator_(simulator), machine_(machine) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
  const int partitions = params.num_partitions > 0
                             ? params.num_partitions
                             : machine->topology().total_threads();
  const int num_sockets = machine->topology().num_sockets;
  msg::MessageLayerParams ml_params = params.message_layer;
  SchedulerParams sched_params = params.scheduler;
  MigrationParams mig_params = params.migration;
  if (params.telemetry != nullptr) {
    ml_params.telemetry = params.telemetry;
    sched_params.telemetry = params.telemetry;
    mig_params.telemetry = params.telemetry;
  }
  placement_ = std::make_unique<PlacementMap>(partitions, num_sockets);
  db_ = std::make_unique<Database>(partitions);
  layer_ = std::make_unique<msg::MessageLayer>(num_sockets, placement_.get(),
                                               ml_params);
  scheduler_ = std::make_unique<Scheduler>(simulator, machine, db_.get(),
                                           layer_.get(), placement_.get(),
                                           sched_params);
  migrator_ = std::make_unique<MigrationCoordinator>(
      simulator, machine, db_.get(), placement_.get(), layer_.get(),
      scheduler_.get(), mig_params);
  if (params.morsel_threads > 0) {
    morsel_pool_ = std::make_unique<MorselPool>(params.morsel_threads);
  }
  if (params.telemetry != nullptr) {
    // Per-kernel dispatch counters. The raw counters are process-global
    // atomics (morsel workers bump them concurrently); exporting the delta
    // since engine construction keeps each engine's export deterministic
    // for a fixed workload, regardless of what earlier engines in the same
    // process executed.
    telemetry::MetricRegistry& reg = params.telemetry->registry();
    for (int k = 0; k < simd::kNumKernels; ++k) {
      const auto id = static_cast<simd::KernelId>(k);
      const std::string prefix =
          std::string("engine/kernels/") + simd::KernelName(id);
      const int64_t simd_base = simd::SimdDispatches(id);
      const int64_t scalar_base = simd::ScalarDispatches(id);
      reg.AddCounterFn(prefix + "/simd", [id, simd_base] {
        return simd::SimdDispatches(id) - simd_base;
      });
      reg.AddCounterFn(prefix + "/scalar", [id, scalar_base] {
        return simd::ScalarDispatches(id) - scalar_base;
      });
    }
  }
}

}  // namespace ecldb::engine
