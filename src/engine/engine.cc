#include "engine/engine.h"

#include "common/check.h"

namespace ecldb::engine {

Engine::Engine(sim::Simulator* simulator, hwsim::Machine* machine,
               const EngineParams& params)
    : simulator_(simulator), machine_(machine) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
  const int partitions = params.num_partitions > 0
                             ? params.num_partitions
                             : machine->topology().total_threads();
  const int num_sockets = machine->topology().num_sockets;
  msg::MessageLayerParams ml_params = params.message_layer;
  SchedulerParams sched_params = params.scheduler;
  MigrationParams mig_params = params.migration;
  if (params.telemetry != nullptr) {
    ml_params.telemetry = params.telemetry;
    sched_params.telemetry = params.telemetry;
    mig_params.telemetry = params.telemetry;
  }
  placement_ = std::make_unique<PlacementMap>(partitions, num_sockets);
  db_ = std::make_unique<Database>(partitions);
  layer_ = std::make_unique<msg::MessageLayer>(num_sockets, placement_.get(),
                                               ml_params);
  scheduler_ = std::make_unique<Scheduler>(simulator, machine, db_.get(),
                                           layer_.get(), placement_.get(),
                                           sched_params);
  migrator_ = std::make_unique<MigrationCoordinator>(
      simulator, machine, db_.get(), placement_.get(), layer_.get(),
      scheduler_.get(), mig_params);
}

}  // namespace ecldb::engine
