#include "engine/engine.h"

#include "common/check.h"

namespace ecldb::engine {

Engine::Engine(sim::Simulator* simulator, hwsim::Machine* machine,
               const EngineParams& params)
    : simulator_(simulator), machine_(machine) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
  const int partitions = params.num_partitions > 0
                             ? params.num_partitions
                             : machine->topology().total_threads();
  const int num_sockets = machine->topology().num_sockets;
  placement_ = std::make_unique<PlacementMap>(partitions, num_sockets);
  db_ = std::make_unique<Database>(partitions);
  layer_ = std::make_unique<msg::MessageLayer>(num_sockets, placement_.get(),
                                               params.message_layer);
  scheduler_ = std::make_unique<Scheduler>(simulator, machine, db_.get(),
                                           layer_.get(), placement_.get(),
                                           params.scheduler);
  migrator_ = std::make_unique<MigrationCoordinator>(
      simulator, machine, db_.get(), placement_.get(), layer_.get(),
      scheduler_.get(), params.migration);
}

}  // namespace ecldb::engine
