#include "engine/partition.h"

#include "common/check.h"

namespace ecldb::engine {

Table* Partition::AddTable(const std::string& name, Schema schema) {
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(name, std::move(schema)));
  ECLDB_CHECK_MSG(inserted, "duplicate table");
  return it->second.get();
}

Table* Partition::table(std::string_view name) {
  auto it = tables_.find(std::string(name));
  ECLDB_CHECK_MSG(it != tables_.end(), "unknown table");
  return it->second.get();
}

const Table* Partition::table(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  ECLDB_CHECK_MSG(it != tables_.end(), "unknown table");
  return it->second.get();
}

HashIndex* Partition::AddIndex(const std::string& name) {
  auto [it, inserted] = indexes_.emplace(name, std::make_unique<HashIndex>());
  ECLDB_CHECK_MSG(inserted, "duplicate index");
  return it->second.get();
}

HashIndex* Partition::index(std::string_view name) {
  auto it = indexes_.find(std::string(name));
  ECLDB_CHECK_MSG(it != indexes_.end(), "unknown index");
  return it->second.get();
}

const HashIndex* Partition::index(std::string_view name) const {
  auto it = indexes_.find(std::string(name));
  ECLDB_CHECK_MSG(it != indexes_.end(), "unknown index");
  return it->second.get();
}

bool Partition::HasIndex(std::string_view name) const {
  return indexes_.find(std::string(name)) != indexes_.end();
}

size_t Partition::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [name, table] : tables_) bytes += table->MemoryBytes();
  for (const auto& [name, index] : indexes_) bytes += index->MemoryBytes();
  return bytes;
}

}  // namespace ecldb::engine
