#ifndef ECLDB_ENGINE_AGG_HASH_TABLE_H_
#define ECLDB_ENGINE_AGG_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecldb::engine {

namespace detail {

/// 64-bit finalizer (murmur3) shared by the point index and the aggregate
/// table; full avalanche so linear probing sees uniform slots.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace detail

/// Open-addressing aggregate hash table mapping a packed uint64 group key
/// to a {sum, count} accumulator: the insert-or-update half of HashIndex
/// without erase (aggregation never removes groups), so no tombstones.
/// Linear probing, grows at 70 % load.
class AggHashTable {
 public:
  struct Cell {
    uint64_t key = 0;
    double sum = 0.0;
    int64_t count = 0;
  };

  explicit AggHashTable(size_t initial_capacity = 64);

  /// Returns the accumulator cell for `key`, inserting a zeroed cell if
  /// absent. The pointer is invalidated by the next FindOrInsert (growth).
  Cell* FindOrInsert(uint64_t key);

  /// The cell for `key` or nullptr.
  const Cell* Find(uint64_t key) const;

  /// Grows capacity so `expected` groups fit below the load limit without
  /// further rehash (mirrors HashIndex::Reserve); existing cells move.
  /// Never shrinks.
  void Reserve(size_t expected);

  /// Batched sum/count accumulation: keys are hashed with the active SIMD
  /// kernel into `hash_scratch`, the table is pre-grown for the batch so no
  /// rehash happens mid-loop, and the probe loop prefetches ahead. The
  /// probe itself stays scalar per group lane (duplicate keys within one
  /// batch must observe each other's inserts). Accumulation order is row
  /// order — bit-identical sums to per-row FindOrInsert.
  void AccumulateBatch(const uint64_t* keys, const double* vals, size_t n,
                       std::vector<uint64_t>* hash_scratch);

  size_t size() const { return size_; }
  size_t capacity() const { return cells_.size(); }
  size_t MemoryBytes() const {
    return cells_.capacity() * sizeof(Cell) + used_.capacity() * sizeof(uint8_t);
  }

  /// Drops all groups but keeps the allocation (scratch reuse).
  void Clear();

  /// Visits every group in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < cells_.size(); ++i) {
      if (used_[i]) fn(cells_[i]);
    }
  }

 private:
  void Grow();
  void Rehash(size_t new_capacity);

  std::vector<Cell> cells_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_AGG_HASH_TABLE_H_
