#ifndef ECLDB_ENGINE_PARTITION_H_
#define ECLDB_ENGINE_PARTITION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.h"
#include "engine/hash_index.h"
#include "engine/table.h"

namespace ecldb::engine {

/// One data partition of the data-oriented architecture: the exclusive
/// unit of data access. Each partition holds its own shard of every table
/// plus local hash indexes; whichever worker currently owns the partition
/// (via its PartitionQueue) accesses these structures latch-free. Which
/// socket homes the partition is placement state, not partition state —
/// it lives in the PlacementMap and can change through live migration.
class Partition {
 public:
  explicit Partition(PartitionId id) : id_(id) {}

  Partition(const Partition&) = delete;
  Partition& operator=(const Partition&) = delete;

  PartitionId id() const { return id_; }

  /// Creates the local shard of a table. The name must be unique.
  Table* AddTable(const std::string& name, Schema schema);
  Table* table(std::string_view name);
  const Table* table(std::string_view name) const;

  /// Creates a named local hash index (caller maintains its contents).
  HashIndex* AddIndex(const std::string& name);
  HashIndex* index(std::string_view name);
  const HashIndex* index(std::string_view name) const;
  bool HasIndex(std::string_view name) const;

  size_t MemoryBytes() const;

 private:
  PartitionId id_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, std::unique_ptr<HashIndex>> indexes_;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_PARTITION_H_
