#include "engine/database.h"

#include "common/check.h"

namespace ecldb::engine {

Database::Database(int num_partitions) {
  ECLDB_CHECK(num_partitions > 0);
  for (int p = 0; p < num_partitions; ++p) {
    partitions_.push_back(std::make_unique<Partition>(p));
  }
}

PartitionId Database::PartitionForKey(int64_t key) const {
  uint64_t x = static_cast<uint64_t>(key);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<PartitionId>(x % partitions_.size());
}

void Database::CreateTable(const std::string& name, const Schema& schema) {
  for (auto& p : partitions_) p->AddTable(name, schema);
}

void Database::CreateIndex(const std::string& name) {
  for (auto& p : partitions_) p->AddIndex(name);
}

size_t Database::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& p : partitions_) bytes += p->MemoryBytes();
  return bytes;
}

}  // namespace ecldb::engine
