#include "engine/database.h"

#include "common/check.h"

namespace ecldb::engine {

Database::Database(int num_partitions, int num_sockets)
    : num_sockets_(num_sockets) {
  ECLDB_CHECK(num_partitions > 0 && num_sockets > 0);
  // Partitions are distributed block-wise so that consecutive partitions
  // share a socket (matching worker pinning: the first half of partitions
  // lives on socket 0 of a 2-socket machine, etc.).
  const int per_socket = (num_partitions + num_sockets - 1) / num_sockets;
  for (int p = 0; p < num_partitions; ++p) {
    const SocketId home = std::min(p / per_socket, num_sockets - 1);
    partitions_.push_back(std::make_unique<Partition>(p, home));
  }
}

std::vector<SocketId> Database::HomeMap() const {
  std::vector<SocketId> home;
  home.reserve(partitions_.size());
  for (const auto& p : partitions_) home.push_back(p->home_socket());
  return home;
}

PartitionId Database::PartitionForKey(int64_t key) const {
  uint64_t x = static_cast<uint64_t>(key);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  return static_cast<PartitionId>(x % partitions_.size());
}

void Database::CreateTable(const std::string& name, const Schema& schema) {
  for (auto& p : partitions_) p->AddTable(name, schema);
}

void Database::CreateIndex(const std::string& name) {
  for (auto& p : partitions_) p->AddIndex(name);
}

size_t Database::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& p : partitions_) bytes += p->MemoryBytes();
  return bytes;
}

}  // namespace ecldb::engine
