#include "engine/column.h"

namespace ecldb::engine {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

Column::Column(std::string name, ColumnType type)
    : name_(std::move(name)), type_(type) {}

void Column::AppendInt(int64_t v) {
  ECLDB_DCHECK(type_ == ColumnType::kInt64);
  ints_.push_back(v);
  if (v < min_int_) min_int_ = v;
  if (v > max_int_) max_int_ = v;
  ++size_;
}

void Column::AppendDouble(double v) {
  ECLDB_DCHECK(type_ == ColumnType::kDouble);
  doubles_.push_back(v);
  ++size_;
}

void Column::AppendString(std::string_view v) {
  ECLDB_DCHECK(type_ == ColumnType::kString);
  auto it = dict_lookup_.find(std::string(v));
  int32_t code;
  if (it == dict_lookup_.end()) {
    code = static_cast<int32_t>(dict_.size());
    dict_.emplace_back(v);
    dict_lookup_.emplace(std::string(v), code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
  ++size_;
}

void Column::CopyFrom(const Column& other) {
  ECLDB_CHECK_MSG(type_ == other.type_ && name_ == other.name_,
                  "CopyFrom requires an identically-declared column");
  size_ = other.size_;
  min_int_ = other.min_int_;
  max_int_ = other.max_int_;
  ints_ = other.ints_;
  doubles_ = other.doubles_;
  codes_ = other.codes_;
  dict_ = other.dict_;
  dict_lookup_ = other.dict_lookup_;
}

int32_t Column::LookupStringCode(std::string_view v) const {
  auto it = dict_lookup_.find(std::string(v));
  return it == dict_lookup_.end() ? -1 : it->second;
}

size_t Column::MemoryBytes() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 codes_.capacity() * sizeof(int32_t);
  for (const std::string& s : dict_) bytes += s.size() + sizeof(std::string);
  return bytes;
}

}  // namespace ecldb::engine
