#ifndef ECLDB_ENGINE_MIGRATION_H_
#define ECLDB_ENGINE_MIGRATION_H_

#include <cstdint>

#include "common/types.h"
#include "engine/database.h"
#include "engine/placement.h"
#include "engine/scheduler.h"
#include "hwsim/machine.h"
#include "msg/message_layer.h"
#include "sim/simulator.h"

namespace ecldb::engine {

struct MigrationParams {
  /// Bytes of shard state copied per fluid operation of the copy query
  /// (one cache line per op).
  double bytes_per_op = 64.0;
  /// Handover poll interval: after the copy query is submitted, the
  /// coordinator checks at this granularity whether it has drained.
  SimDuration check_interval = Millis(10);
  /// First handover check after this long (covers tiny shards).
  SimDuration min_copy_time = Millis(1);
  /// Floor on the modeled shard size. Fluid-only workloads keep no real
  /// table data, so benches set this to model a realistic copy cost;
  /// 0 = use the partition's actual in-memory bytes only.
  double min_shard_bytes = 0.0;
  /// Optional telemetry context: migration counters plus one trace span
  /// per migration (drain+copy through commit) on an "engine/migration"
  /// lane.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Drives the live-migration protocol (drain -> copy -> rehome) on top of
/// the epoch-versioned PlacementMap:
///
///   drain  — an internal shard-copy query is submitted to the partition.
///            It rides the FIFO partition queue, so every message already
///            enqueued executes first (the queue is the drain barrier),
///            and its fluid work charges the bandwidth-limited copy cost
///            to the source socket through the hwsim memory model.
///   copy   — handover polls until the copy query has left the system,
///            i.e. the queue prefix and the copy itself fully executed.
///   rehome — any worker ownership is released (unprocessed batches are
///            requeued), the queue object moves to the destination router
///            with whatever is still queued behind the copy, and the
///            placement commits the new home, bumping the epoch. Messages
///            still in flight toward the old home arrive under the stale
///            epoch and are forwarded by the message layer.
///
/// Everything runs in simulator event context, so each step is atomic
/// with respect to execution slices. Live migration requires the elastic
/// scheduler (static worker-partition binding cannot change homes).
class MigrationCoordinator {
 public:
  MigrationCoordinator(sim::Simulator* simulator, hwsim::Machine* machine,
                       Database* db, PlacementMap* placement,
                       msg::MessageLayer* layer, Scheduler* scheduler,
                       const MigrationParams& params);

  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  /// Starts migrating `p` to socket `to`. Must be called from simulator
  /// event context (or before the run). Returns false (no-op) when the
  /// partition is already migrating or `to` is its current home.
  bool StartMigration(PartitionId p, SocketId to);

  /// Migrations currently in flight.
  int active() const { return active_; }
  int64_t started() const { return started_; }
  int64_t completed() const { return completed_; }
  /// Total shard bytes copied by completed migrations.
  double bytes_moved() const { return bytes_moved_; }
  /// Queued messages that travelled with rehomed queues.
  int64_t messages_rehomed() const { return messages_rehomed_; }

 private:
  double CopyBytes(PartitionId p) const;
  void CheckHandover(PartitionId p, QueryId copy_query, double bytes,
                     SimTime t_start);
  void Handover(PartitionId p, double bytes, SimTime t_start);

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  Database* db_;
  PlacementMap* placement_;
  msg::MessageLayer* layer_;
  Scheduler* scheduler_;
  MigrationParams params_;

  int active_ = 0;
  int64_t started_ = 0;
  int64_t completed_ = 0;
  double bytes_moved_ = 0.0;
  int64_t messages_rehomed_ = 0;
  int trace_lane_ = 0;  // "engine/migration" lane when telemetry is attached
};

/// Work profile of the shard copy: a streaming, bandwidth-bound memcpy
/// through the hwsim memory model (read + remote write per cache line).
const hwsim::WorkProfile& ShardCopyProfile();

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_MIGRATION_H_
