#ifndef ECLDB_ENGINE_DATABASE_H_
#define ECLDB_ENGINE_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "engine/partition.h"
#include "hwsim/topology.h"

namespace ecldb::engine {

/// Catalog of the partitioned in-memory database: owns all partitions.
/// Keys map to partitions by hash. Which socket homes each partition is
/// not catalog state — it lives in the epoch-versioned PlacementMap.
class Database {
 public:
  explicit Database(int num_partitions);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  Partition* partition(PartitionId p) {
    return partitions_[static_cast<size_t>(p)].get();
  }
  const Partition* partition(PartitionId p) const {
    return partitions_[static_cast<size_t>(p)].get();
  }

  /// Partition responsible for a key (hash partitioning).
  PartitionId PartitionForKey(int64_t key) const;

  /// Creates the shard of `name` in every partition.
  void CreateTable(const std::string& name, const Schema& schema);
  /// Creates a local index named `name` in every partition.
  void CreateIndex(const std::string& name);

  size_t MemoryBytes() const;

 private:
  std::vector<std::unique_ptr<Partition>> partitions_;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_DATABASE_H_
