#include "engine/agg_hash_table.h"

#include <algorithm>

namespace ecldb::engine {

AggHashTable::AggHashTable(size_t initial_capacity) {
  size_t cap = 16;
  while (cap < initial_capacity) cap <<= 1;
  cells_.resize(cap);
  used_.assign(cap, 0);
}

void AggHashTable::Grow() {
  std::vector<Cell> old_cells = std::move(cells_);
  std::vector<uint8_t> old_used = std::move(used_);
  const size_t cap = old_cells.size() * 2;
  cells_.assign(cap, Cell{});
  used_.assign(cap, 0);
  const size_t mask = cap - 1;
  for (size_t i = 0; i < old_cells.size(); ++i) {
    if (!old_used[i]) continue;
    size_t j = detail::Mix64(old_cells[i].key) & mask;
    while (used_[j]) j = (j + 1) & mask;
    cells_[j] = old_cells[i];
    used_[j] = 1;
  }
}

AggHashTable::Cell* AggHashTable::FindOrInsert(uint64_t key) {
  if ((size_ + 1) * 10 > cells_.size() * 7) Grow();
  const size_t mask = cells_.size() - 1;
  size_t i = detail::Mix64(key) & mask;
  while (used_[i]) {
    if (cells_[i].key == key) return &cells_[i];
    i = (i + 1) & mask;
  }
  used_[i] = 1;
  cells_[i].key = key;
  ++size_;
  return &cells_[i];
}

const AggHashTable::Cell* AggHashTable::Find(uint64_t key) const {
  const size_t mask = cells_.size() - 1;
  size_t i = detail::Mix64(key) & mask;
  while (used_[i]) {
    if (cells_[i].key == key) return &cells_[i];
    i = (i + 1) & mask;
  }
  return nullptr;
}

void AggHashTable::Clear() {
  if (size_ == 0) return;
  std::fill(used_.begin(), used_.end(), uint8_t{0});
  size_ = 0;
}

}  // namespace ecldb::engine
