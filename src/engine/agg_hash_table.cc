#include "engine/agg_hash_table.h"

#include <algorithm>

#include "engine/simd.h"

namespace ecldb::engine {

AggHashTable::AggHashTable(size_t initial_capacity) {
  size_t cap = 16;
  while (cap < initial_capacity) cap <<= 1;
  cells_.resize(cap);
  used_.assign(cap, 0);
}

void AggHashTable::Rehash(size_t new_capacity) {
  std::vector<Cell> old_cells = std::move(cells_);
  std::vector<uint8_t> old_used = std::move(used_);
  cells_.assign(new_capacity, Cell{});
  used_.assign(new_capacity, 0);
  const size_t mask = new_capacity - 1;
  for (size_t i = 0; i < old_cells.size(); ++i) {
    if (!old_used[i]) continue;
    size_t j = detail::Mix64(old_cells[i].key) & mask;
    while (used_[j]) j = (j + 1) & mask;
    cells_[j] = old_cells[i];
    used_[j] = 1;
  }
}

void AggHashTable::Grow() { Rehash(cells_.size() * 2); }

void AggHashTable::Reserve(size_t expected) {
  size_t cap = cells_.size();
  while ((expected + 1) * 10 > cap * 7) cap <<= 1;
  if (cap != cells_.size()) Rehash(cap);
}

AggHashTable::Cell* AggHashTable::FindOrInsert(uint64_t key) {
  if ((size_ + 1) * 10 > cells_.size() * 7) Grow();
  const size_t mask = cells_.size() - 1;
  size_t i = detail::Mix64(key) & mask;
  while (used_[i]) {
    if (cells_[i].key == key) return &cells_[i];
    i = (i + 1) & mask;
  }
  used_[i] = 1;
  cells_[i].key = key;
  ++size_;
  return &cells_[i];
}

const AggHashTable::Cell* AggHashTable::Find(uint64_t key) const {
  const size_t mask = cells_.size() - 1;
  size_t i = detail::Mix64(key) & mask;
  while (used_[i]) {
    if (cells_[i].key == key) return &cells_[i];
    i = (i + 1) & mask;
  }
  return nullptr;
}

void AggHashTable::AccumulateBatch(const uint64_t* keys, const double* vals,
                                   size_t n,
                                   std::vector<uint64_t>* hash_scratch) {
  if (n == 0) return;
  // Pre-grow for the worst case (every key new) so no rehash interleaves
  // with the probe loop below and prefetched slots stay valid.
  if ((size_ + n) * 10 > cells_.size() * 7) {
    size_t cap = cells_.size();
    while ((size_ + n) * 10 > cap * 7) cap <<= 1;
    Rehash(cap);
  }
  hash_scratch->resize(n);
  uint64_t* h = hash_scratch->data();
  const simd::KernelTable& kt = simd::ActiveKernels();
  kt.hash_keys(keys, n, h);
  const bool used_simd = simd::ActiveLevel() != simd::Level::kScalar;
  simd::CountDispatch(simd::KernelId::kHashKeys, used_simd);
  simd::CountDispatch(simd::KernelId::kAggProbe, used_simd);

  const size_t mask = cells_.size() - 1;
  constexpr size_t kPrefetchAhead = 8;
  for (size_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      __builtin_prefetch(&cells_[h[i + kPrefetchAhead] & mask]);
      __builtin_prefetch(&used_[h[i + kPrefetchAhead] & mask]);
    }
    const uint64_t key = keys[i];
    size_t j = h[i] & mask;
    while (used_[j] && cells_[j].key != key) j = (j + 1) & mask;
    if (!used_[j]) {
      used_[j] = 1;
      cells_[j].key = key;
      ++size_;
    }
    cells_[j].sum += vals[i];
    ++cells_[j].count;
  }
}

void AggHashTable::Clear() {
  if (size_ == 0) return;
  std::fill(used_.begin(), used_.end(), uint8_t{0});
  size_ = 0;
}

}  // namespace ecldb::engine
