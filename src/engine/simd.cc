#include "engine/simd.h"

#include <cstdlib>
#include <cstring>

namespace ecldb::engine::simd {

#if defined(ECLDB_SIMD_AVX2)
// Defined in kernels_avx2.cc (compiled with -mavx2).
const KernelTable& Avx2Kernels();
#endif

namespace detail {
DispatchCounters& Counters() {
  static DispatchCounters counters;
  return counters;
}
}  // namespace detail

namespace {

std::atomic<int> g_override{-1};  // -1: detect; else a Level value

Level DetectLevel() {
#if defined(ECLDB_SIMD_AVX2)
  // Respect an operator opt-out before CPU detection: ECLDB_SIMD=off or
  // =scalar forces the fallback (byte-identity runs, A/B measurements).
  if (const char* env = std::getenv("ECLDB_SIMD")) {
    if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return Level::kScalar;
    }
  }
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

}  // namespace

Level CompiledLevel() {
#if defined(ECLDB_SIMD_AVX2)
  return Level::kAvx2;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level detected = DetectLevel();
  return detected;
}

void SetLevelOverride(std::optional<Level> level) {
  if (!level.has_value()) {
    g_override.store(-1, std::memory_order_relaxed);
    return;
  }
  Level l = *level;
  if (l > CompiledLevel()) l = CompiledLevel();
  g_override.store(static_cast<int>(l), std::memory_order_relaxed);
}

const char* KernelName(KernelId id) {
  switch (id) {
    case KernelId::kFilterIntRange:
      return "filter_int_range";
    case KernelId::kFilterCodeMatch:
      return "filter_code_match";
    case KernelId::kGatherFk:
      return "gather_fk";
    case KernelId::kPackKey:
      return "pack_key";
    case KernelId::kHashKeys:
      return "hash_keys";
    case KernelId::kAggProbe:
      return "agg_probe";
    case KernelId::kEvalValue:
      return "eval_value";
  }
  return "unknown";
}

int64_t SimdDispatches(KernelId id) {
  return detail::Counters()
      .simd[static_cast<int>(id)]
      .load(std::memory_order_relaxed);
}

int64_t ScalarDispatches(KernelId id) {
  return detail::Counters()
      .scalar[static_cast<int>(id)]
      .load(std::memory_order_relaxed);
}

const KernelTable& ActiveKernels() {
#if defined(ECLDB_SIMD_AVX2)
  if (ActiveLevel() == Level::kAvx2) return Avx2Kernels();
#endif
  return ScalarKernels();
}

}  // namespace ecldb::engine::simd
