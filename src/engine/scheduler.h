#ifndef ECLDB_ENGINE_SCHEDULER_H_
#define ECLDB_ENGINE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "engine/database.h"
#include "engine/placement.h"
#include "engine/query.h"
#include "engine/worker.h"
#include "hwsim/machine.h"
#include "msg/message_layer.h"
#include "sim/simulator.h"

namespace ecldb::engine {

struct SchedulerParams {
  /// Messages dequeued per ownership grab. Small batches bound the
  /// ownership stint so backlogged partitions are rotated quickly (tail
  /// latency); large batches amortize the acquire/release handshake.
  size_t batch_size = 8;
  /// Horizon of the latency sliding window used by the system-level ECL.
  SimDuration latency_window = Seconds(5);
  /// Static worker-partition binding: the ORIGINAL data-oriented
  /// architecture the paper improves upon (Section 3). Each worker serves
  /// only its own partition; when the ECL puts a hardware thread to sleep,
  /// that partition becomes unavailable, and skewed load cannot be
  /// balanced. Requires a 1:1 worker-partition ratio. Default off (the
  /// paper's elasticity extensions).
  bool static_binding = false;
  /// Auto-morselization threshold in operations: a kWorkUnits partition
  /// task larger than this is split into ceil(ops / morsel_ops) morsel
  /// messages (capped at the partition queue capacity the layer offers)
  /// even when the submitter left PartitionWork::morsels at 1. 0 disables
  /// auto-splitting; explicit per-task morsel counts always apply.
  double morsel_ops = 0.0;
  /// Optional telemetry context: query/per-partition latency histograms,
  /// backlog and inflight gauges, submit/complete counters, morsel
  /// dispatch/completion counters and queue-depth gauges.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Fluid executor of the data-oriented engine.
///
/// Each simulation slice, every worker whose hardware thread is active:
///  1. receives its completed-operation credit from the machine,
///  2. spends it on queued partition work (dequeue-own-process-release),
///  3. reports whether it has more work, which becomes the machine's
///     thread load for the next slice.
///
/// Query completion times (and thus latencies) fall out of when the fluid
/// work of all of a query's partition tasks has been consumed.
class Scheduler {
 public:
  Scheduler(sim::Simulator* simulator, hwsim::Machine* machine, Database* db,
            msg::MessageLayer* layer, const PlacementMap* placement,
            const SchedulerParams& params);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Registers a work profile; messages reference profiles by this id.
  int RegisterProfile(const hwsim::WorkProfile* profile);

  /// Submits a query; returns its id. Latency is measured from now until
  /// the last partition task completes.
  QueryId Submit(const QuerySpec& spec);

  /// Utilization of a socket's active workers since the last call
  /// (busy seconds / active seconds), the signal the paper's utilization
  /// controller consumes.
  double TakeUtilization(SocketId socket);

  LatencyTracker& latency() { return latency_; }
  const LatencyTracker& latency() const { return latency_; }

  int64_t queries_submitted() const { return queries_submitted_; }
  int64_t queries_completed() const { return latency_.completed(); }
  int64_t inflight() const { return static_cast<int64_t>(inflight_.size()); }
  /// True while the query has incomplete partition tasks (includes
  /// internal queries; the migration coordinator polls this).
  bool IsInflight(QueryId id) const { return inflight_.count(id) > 0; }
  bool static_binding() const { return params_.static_binding; }

  /// Remaining queued operations homed on a socket: spilled messages,
  /// queued-but-unowned messages (exact per-queue running totals), and
  /// partially-consumed worker batches. Messages in flight between
  /// sockets count once they land in the home queue.
  double BacklogOps(SocketId socket) const;

  /// Migration handover (coordinator only, event context): releases any
  /// worker ownership of `p`'s queue, requeueing unprocessed batches, so
  /// the queue can move to another router.
  void PrepareRehome(PartitionId p);

  /// Synthetic saturation mode: while set, every active worker offers
  /// `profile` at intensity 1 regardless of queued queries (completed
  /// operations are discarded). Used to prime ECL energy profiles with
  /// full-load measurements before an experiment; pass nullptr to disable.
  void SetSyntheticLoad(const hwsim::WorkProfile* profile) {
    if (synthetic_load_ != profile) steady_ = false;
    synthetic_load_ = profile;
  }

  /// Executor for functional messages (kGet/kPut/kScan): invoked by the
  /// owning worker when the message's fluid work completes, i.e. at the
  /// virtual time the operation finishes — while the worker holds the
  /// partition's ownership, so the real data access is race-free.
  using FunctionalExecutor =
      std::function<void(PartitionId, const msg::Message&)>;
  void SetFunctionalExecutor(FunctionalExecutor executor) {
    functional_executor_ = std::move(executor);
  }

  /// Invoked when a non-internal query's last partition task completes,
  /// with the query's QuerySpec::slo_class (-1 for untagged traffic), its
  /// arrival time, and the completion time. The loadgen SLO tracker hangs
  /// off this; unset costs nothing.
  using CompletionCallback =
      std::function<void(int8_t slo_class, SimTime arrival, SimTime completion)>;
  void SetCompletionCallback(CompletionCallback callback) {
    completion_callback_ = std::move(callback);
  }

  /// Invoked when a non-internal query is failed instead of completed
  /// (crash recovery). Echoes the query's identity fields so the client
  /// (loadgen retry model) can route the typed error to the originating
  /// tenant. Unset costs nothing.
  using FailureCallback = std::function<void(
      int8_t slo_class, int16_t tenant, int8_t attempt, SimTime arrival,
      FailReason reason)>;
  void SetFailureCallback(FailureCallback callback) {
    failure_callback_ = std::move(callback);
  }

  /// Crash recovery (event context): fails every inflight query with
  /// `reason` and discards all queued work — worker batches, partition
  /// queues, comm channels, spill buffers. Non-internal queries fire the
  /// failure callback in submission order; internal queries (migration
  /// shard copies) vanish silently — the cluster layer cancels their
  /// migrations separately. Returns the number of non-internal failures.
  int64_t FailAllInflight(FailReason reason);
  int64_t queries_failed() const { return queries_failed_; }

 private:
  struct QueryState {
    SimTime arrival = 0;
    int pending_tasks = 0;
    bool internal = false;
    int8_t slo_class = -1;
    int16_t tenant = -1;
    int8_t attempt = 0;
  };

  void Advance(SimTime t0, SimTime t1);

  // --- Steady-state fast-forward --------------------------------------
  //
  // A slice in which nothing moved (no messages pumped, no spill retried
  // successfully, no credit spent, no worker state touched) leaves the
  // scheduler in a state where every following slice repeats the same
  // cheap accumulations (per-worker active/busy seconds) until an external
  // input arrives: a Submit, a synthetic-load change, or a machine config
  // write changing the active-thread set.

  /// Stationarity horizon for the Simulator's fast-forward.
  SimTime StationaryUntil(SimTime now) const;
  /// Replays the per-slice accumulations of settled slices over (t0, t1].
  void FastForward(SimTime t0, SimTime t1, SimDuration slice);

  /// Morsel count a partition task splits into (explicit request, or
  /// morsel_ops auto-split for large kWorkUnits tasks), capped at 64.
  int MorselsOf(const PartitionWork& pw) const;
  /// Returns the number of spilled messages moved into partition queues.
  size_t RetrySpill();
  /// Makes `w` point at its next task; returns false when out of work.
  bool AcquireWork(Worker* w);
  void ReleaseOwnership(Worker* w, bool requeue_batch);
  /// Morsel batches are claimed, not owned: if the freshly-dequeued batch
  /// consists entirely of morselized messages, the partition queue is
  /// released immediately so other active workers can claim the remaining
  /// morsels within the same slice — the fluid analogue of morsel
  /// stealing. Safe because only kScan/kWorkUnits may split (disjoint
  /// row ranges; no exclusive functional mutation).
  void MaybeReleaseMorselBatch(Worker* w);
  void CompleteTask(const msg::Message& m, SimTime now);
  const hwsim::WorkProfile* ProfileOfMessage(const msg::Message& m) const;
  /// Work profile the worker would execute next (head of its work).
  const hwsim::WorkProfile* PeekProfile(Worker* w);

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  Database* db_;
  msg::MessageLayer* layer_;
  const PlacementMap* placement_;
  SchedulerParams params_;

  std::vector<Worker> workers_;
  std::vector<const hwsim::WorkProfile*> profiles_;
  std::unordered_map<QueryId, QueryState> inflight_;
  /// Backpressure spill buffers per partition (unbounded; models an
  /// admission queue in front of the bounded partition rings).
  std::vector<std::deque<msg::Message>> spill_;
  LatencyTracker latency_;
  QueryId next_query_id_ = 1;
  int64_t queries_submitted_ = 0;
  /// Morselized-task accounting (telemetry): messages produced by
  /// splitting and completed; per-partition outstanding morsel messages,
  /// summed into a per-socket queue-depth gauge by current home.
  int64_t morsels_dispatched_ = 0;
  int64_t morsels_completed_ = 0;
  std::vector<int64_t> outstanding_morsels_;
  const hwsim::WorkProfile* synthetic_load_ = nullptr;
  FunctionalExecutor functional_executor_;
  CompletionCallback completion_callback_;
  FailureCallback failure_callback_;
  int64_t queries_failed_ = 0;
  /// Telemetry latency histograms (unbound handles = inlined no-ops).
  telemetry::HistogramHandle query_latency_ms_;
  std::vector<telemetry::HistogramHandle> partition_latency_ms_;
  /// True when the last slice was settled (see fast-forward notes above).
  bool steady_ = false;
  /// Machine config-write generation at the time `steady_` was computed;
  /// a later write may have changed the active-thread set.
  int64_t steady_config_writes_ = -1;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_SCHEDULER_H_
