#ifndef ECLDB_ENGINE_PLACEMENT_H_
#define ECLDB_ENGINE_PLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "msg/placement_view.h"

namespace ecldb::engine {

/// The single source of truth for partition-to-socket placement, shared by
/// the Database (catalog), the MessageLayer (routing), the Scheduler
/// (spill retry, backlog accounting), the workloads (origin-socket
/// lookups) and the consolidation policy.
///
/// Epoch-versioned: every committed migration bumps `epoch()`; messages
/// are stamped with the epoch at send time, which lets routing recognise
/// in-flight messages that were addressed under an older placement.
///
/// Migrations are two-phase. `BeginMigration` marks the partition as
/// moving — routing still targets the old home while the shard copy
/// drains the partition queue — and `CommitMigration` re-homes it and
/// bumps the epoch. The drain→copy→rehome protocol around these lives in
/// MigrationCoordinator.
class PlacementMap : public msg::PlacementView {
 public:
  /// Block-wise initial placement: consecutive partitions share a socket
  /// (matching worker pinning: the first half of partitions lives on
  /// socket 0 of a 2-socket machine, etc.).
  PlacementMap(int num_partitions, int num_sockets);
  /// Explicit initial placement (tests, custom layouts).
  PlacementMap(std::vector<SocketId> home, int num_sockets);

  int num_partitions() const override {
    return static_cast<int>(home_.size());
  }
  SocketId HomeOf(PartitionId p) const override {
    return home_[static_cast<size_t>(p)];
  }
  int64_t epoch() const override { return epoch_; }

  int num_sockets() const { return num_sockets_; }
  /// Socket the partition was placed on at construction.
  SocketId InitialHomeOf(PartitionId p) const {
    return initial_home_[static_cast<size_t>(p)];
  }
  /// Copy of the full mapping (diagnostics).
  std::vector<SocketId> HomeMap() const { return home_; }
  /// Number of partitions currently homed on `s`.
  int PartitionsOn(SocketId s) const {
    return per_socket_[static_cast<size_t>(s)];
  }
  /// Partitions currently homed on `s`, ascending ids.
  std::vector<PartitionId> PartitionsOf(SocketId s) const;

  bool IsMigrating(PartitionId p) const {
    return migrating_to_[static_cast<size_t>(p)] >= 0;
  }
  /// Destination of an in-progress migration (-1 when stable).
  SocketId MigrationTarget(PartitionId p) const {
    return migrating_to_[static_cast<size_t>(p)];
  }
  int migrating_count() const { return migrating_count_; }
  int64_t completed_migrations() const { return completed_migrations_; }

  /// Marks `p` as migrating towards `to`. Routing is unchanged until the
  /// commit; at most one migration per partition may be in progress.
  void BeginMigration(PartitionId p, SocketId to);
  /// Re-homes `p` to its migration target and bumps the epoch. Returns
  /// the old home.
  SocketId CommitMigration(PartitionId p);
  /// Abandons a begun migration without changing the home or the epoch
  /// (routing never saw the target, so nothing needs forwarding). Used
  /// when the destination disappears mid-flight — at node scope, a
  /// destination node powered down before the copy landed.
  void CancelMigration(PartitionId p);
  int64_t cancelled_migrations() const { return cancelled_migrations_; }

  /// Crash recovery: re-homes `p` to `to` immediately and bumps the
  /// epoch, cancelling any in-progress migration of `p` first (its
  /// endpoint died). Unlike the two-phase path there is no drain — the
  /// old home is gone; the caller re-copies the shard from the durable
  /// placement truth onto the new home. Returns the old home.
  SocketId ForceRehome(PartitionId p, SocketId to);
  int64_t forced_rehomes() const { return forced_rehomes_; }

 private:
  int num_sockets_;
  std::vector<SocketId> home_;
  std::vector<SocketId> initial_home_;
  std::vector<SocketId> migrating_to_;  // -1 when not migrating
  std::vector<int> per_socket_;
  int64_t epoch_ = 0;
  int migrating_count_ = 0;
  int64_t completed_migrations_ = 0;
  int64_t cancelled_migrations_ = 0;
  int64_t forced_rehomes_ = 0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_PLACEMENT_H_
