#include "engine/scheduler.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

#include "common/check.h"

namespace ecldb::engine {
namespace {

int64_t EncodeOps(double ops) { return msg::EncodeMessageOps(ops); }
double DecodeOps(int64_t bits) {
  return std::bit_cast<double>(bits);
}

}  // namespace

Scheduler::Scheduler(sim::Simulator* simulator, hwsim::Machine* machine,
                     Database* db, msg::MessageLayer* layer,
                     const PlacementMap* placement,
                     const SchedulerParams& params)
    : simulator_(simulator),
      machine_(machine),
      db_(db),
      layer_(layer),
      placement_(placement),
      params_(params),
      spill_(static_cast<size_t>(db->num_partitions())),
      latency_(params.latency_window),
      outstanding_morsels_(static_cast<size_t>(db->num_partitions()), 0) {
  const hwsim::Topology& topo = machine_->topology();
  ECLDB_CHECK_MSG(!params_.static_binding ||
                      db_->num_partitions() == topo.total_threads(),
                  "static binding requires a 1:1 worker-partition ratio");
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    Worker w;
    w.id = t;
    w.hw_thread = t;
    w.socket = topo.SocketOfThread(t);
    workers_.push_back(w);
  }
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    telemetry::MetricRegistry& reg = tel->registry();
    const telemetry::HistogramSpec latency_spec{1e-3, 2.0, 32};  // ms
    query_latency_ms_ = telemetry::HistogramHandle(
        reg.AddHistogram("engine/query_latency_ms", latency_spec));
    partition_latency_ms_.reserve(static_cast<size_t>(db_->num_partitions()));
    for (PartitionId p = 0; p < db_->num_partitions(); ++p) {
      partition_latency_ms_.push_back(telemetry::HistogramHandle(
          reg.AddHistogram("engine/partition" + std::to_string(p) +
                               "/latency_ms",
                           latency_spec)));
    }
    reg.AddCounterFn("engine/queries_submitted",
                     [this] { return queries_submitted_; });
    reg.AddCounterFn("engine/queries_completed",
                     [this] { return latency_.completed(); });
    reg.AddGauge("engine/inflight", [this] {
      return static_cast<double>(inflight_.size());
    });
    for (SocketId s = 0; s < topo.num_sockets; ++s) {
      reg.AddGauge("engine/socket" + std::to_string(s) + "/backlog_ops",
                   [this, s] { return BacklogOps(s); });
    }
    reg.AddCounterFn("engine/morsels_dispatched",
                     [this] { return morsels_dispatched_; });
    reg.AddCounterFn("engine/morsels_completed",
                     [this] { return morsels_completed_; });
    for (SocketId s = 0; s < topo.num_sockets; ++s) {
      // Outstanding morsel messages homed on the socket (dispatched minus
      // completed, by the partition's current home).
      reg.AddGauge(
          "engine/socket" + std::to_string(s) + "/morsel_queue_depth",
          [this, s] {
            int64_t depth = 0;
            for (PartitionId p = 0; p < db_->num_partitions(); ++p) {
              if (placement_->HomeOf(p) == s) {
                depth += outstanding_morsels_[static_cast<size_t>(p)];
              }
            }
            return static_cast<double>(depth);
          });
    }
  }
  // Registered after the Machine (which the caller constructs first), so
  // each slice integrates hardware state before work is consumed.
  sim::Advancer advancer;
  advancer.advance = [this](SimTime t0, SimTime t1) { Advance(t0, t1); };
  advancer.stationary_until = [this](SimTime now) { return StationaryUntil(now); };
  advancer.fast_forward = [this](SimTime t0, SimTime t1, SimDuration slice) {
    FastForward(t0, t1, slice);
  };
  simulator_->RegisterAdvancer(std::move(advancer));
}

int Scheduler::RegisterProfile(const hwsim::WorkProfile* profile) {
  ECLDB_CHECK(profile != nullptr);
  for (size_t i = 0; i < profiles_.size(); ++i) {
    if (profiles_[i] == profile) return static_cast<int>(i);
  }
  profiles_.push_back(profile);
  return static_cast<int>(profiles_.size() - 1);
}

int Scheduler::MorselsOf(const PartitionWork& pw) const {
  const bool splittable = pw.type == msg::MessageType::kWorkUnits ||
                          pw.type == msg::MessageType::kScan;
  ECLDB_CHECK_MSG(pw.morsels == 1 || splittable,
                  "only kWorkUnits/kScan tasks can be morselized (other "
                  "types use arg1 for their own arguments)");
  int morsels = std::max(1, pw.morsels);
  if (morsels == 1 && params_.morsel_ops > 0.0 &&
      pw.type == msg::MessageType::kWorkUnits &&
      pw.ops > params_.morsel_ops) {
    morsels = static_cast<int>(std::ceil(pw.ops / params_.morsel_ops));
  }
  // Cap: more morsels than a socket can drain concurrently only adds
  // queue traffic (and a partition ring holds a bounded message count).
  return std::min(morsels, 64);
}

QueryId Scheduler::Submit(const QuerySpec& spec) {
  ECLDB_CHECK(spec.profile != nullptr);
  ECLDB_CHECK(!spec.work.empty());
  steady_ = false;
  const int profile_id = RegisterProfile(spec.profile);
  const QueryId id = next_query_id_++;
  QueryState state;
  state.arrival = simulator_->now();
  state.pending_tasks = 0;
  for (const PartitionWork& pw : spec.work) {
    state.pending_tasks += MorselsOf(pw);
  }
  state.internal = spec.internal;
  state.slo_class = spec.slo_class;
  state.tenant = spec.tenant;
  state.attempt = spec.attempt;
  inflight_.emplace(id, state);
  if (!spec.internal) ++queries_submitted_;

  for (const PartitionWork& pw : spec.work) {
    ECLDB_DCHECK(pw.partition >= 0 && pw.partition < db_->num_partitions());
    ECLDB_DCHECK(pw.ops > 0.0);
    const int morsels = MorselsOf(pw);
    msg::Message m;
    m.query_id = id;
    m.partition = pw.partition;
    m.type = pw.type;
    m.origin_socket = spec.origin_socket;
    m.payload[1] = profile_id;
    m.payload[2] = pw.arg0;
    if (morsels == 1) {
      m.payload[0] = EncodeOps(pw.ops);
      m.payload[3] = pw.arg1;
      if (!layer_->Send(spec.origin_socket, m)) {
        spill_[static_cast<size_t>(pw.partition)].push_back(m);
      }
      continue;
    }
    // Morselized task: equal fluid shares, morsel coordinates in arg1.
    // Workers of the owning socket pick the sub-messages up batch by
    // batch, so several active workers consume one partition's scan
    // within a slice; per-worker credit spending (and thus utilization
    // accounting) is unchanged.
    const double ops_each = pw.ops / morsels;
    for (int i = 0; i < morsels; ++i) {
      m.payload[0] = EncodeOps(ops_each);
      m.payload[3] = msg::EncodeMorsel(i, morsels);
      if (!layer_->Send(spec.origin_socket, m)) {
        spill_[static_cast<size_t>(pw.partition)].push_back(m);
      }
    }
    morsels_dispatched_ += morsels;
    outstanding_morsels_[static_cast<size_t>(pw.partition)] += morsels;
  }
  return id;
}

double Scheduler::TakeUtilization(SocketId socket) {
  double busy = 0.0;
  double active = 0.0;
  for (Worker& w : workers_) {
    if (w.socket != socket) continue;
    busy += w.busy_seconds;
    active += w.active_seconds;
    w.busy_seconds = 0.0;
    w.active_seconds = 0.0;
  }
  if (active <= 0.0) return 0.0;
  return std::min(1.0, busy / active);
}

double Scheduler::BacklogOps(SocketId socket) const {
  double ops = 0.0;
  for (int p = 0; p < db_->num_partitions(); ++p) {
    if (placement_->HomeOf(p) != socket) continue;
    // Queued-but-unowned messages: the queue maintains an exact running
    // ops total on enqueue/dequeue, so no draining is needed.
    ops += layer_->partition_queue(p)->PendingOps();
    for (const msg::Message& m : spill_[static_cast<size_t>(p)]) {
      ops += DecodeOps(m.payload[0]);
    }
  }
  for (const Worker& w : workers_) {
    if (w.socket != socket) continue;
    ops += w.remaining_ops;
    for (size_t i = w.batch_pos + 1; i < w.batch.size(); ++i) {
      ops += DecodeOps(w.batch[i].payload[0]);
    }
    if (w.remaining_ops <= 0.0 && w.batch_pos < w.batch.size()) {
      ops += DecodeOps(w.batch[w.batch_pos].payload[0]);
    }
  }
  return ops;
}

const hwsim::WorkProfile* Scheduler::ProfileOfMessage(const msg::Message& m) const {
  const auto idx = static_cast<size_t>(m.payload[1]);
  ECLDB_DCHECK(idx < profiles_.size());
  return profiles_[idx];
}

void Scheduler::CompleteTask(const msg::Message& m, SimTime now) {
  // Functional messages mutate/read the real partition data exactly when
  // their fluid work completes (the worker owns the partition here).
  if (m.type != msg::MessageType::kWorkUnits && functional_executor_) {
    functional_executor_(m.partition, m);
  }
  if ((m.type == msg::MessageType::kWorkUnits ||
       m.type == msg::MessageType::kScan) &&
      msg::MorselCount(m.payload[3]) > 1) {
    ++morsels_completed_;
    --outstanding_morsels_[static_cast<size_t>(m.partition)];
  }
  auto it = inflight_.find(m.query_id);
  ECLDB_DCHECK(it != inflight_.end());
  if (!it->second.internal && !partition_latency_ms_.empty()) {
    // Per-partition task latency: arrival of the query to completion of
    // this partition's share of it.
    partition_latency_ms_[static_cast<size_t>(m.partition)].Record(
        ToSeconds(now - it->second.arrival) * 1e3);
  }
  if (--it->second.pending_tasks == 0) {
    if (!it->second.internal) {
      latency_.RecordCompletion(it->second.arrival, now);
      query_latency_ms_.Record(ToSeconds(now - it->second.arrival) * 1e3);
      if (completion_callback_) {
        completion_callback_(it->second.slo_class, it->second.arrival, now);
      }
    }
    inflight_.erase(it);
  }
}

void Scheduler::ReleaseOwnership(Worker* w, bool requeue_batch) {
  if (w->owned == nullptr && w->batch.empty()) return;
  // Requeue target: the owned queue, or (for a claimed morsel batch whose
  // queue was already released) the partition's current home queue.
  auto requeue = [this, w](const msg::Message& m) {
    const bool ok =
        w->owned != nullptr
            ? w->owned->Enqueue(m)
            : layer_->router(placement_->HomeOf(m.partition))->Enqueue(m);
    if (!ok) spill_[static_cast<size_t>(m.partition)].push_back(m);
  };
  if (requeue_batch) {
    // Deactivated mid-batch: push unprocessed work back so other workers
    // can serve the partition (elasticity invariant: partitions never
    // become unavailable when threads are turned off).
    if (w->remaining_ops > 0.0 && w->batch_pos < w->batch.size()) {
      msg::Message m = w->batch[w->batch_pos];
      m.payload[0] = EncodeOps(w->remaining_ops);
      requeue(m);
      w->remaining_ops = 0.0;
      ++w->batch_pos;
    }
    for (size_t i = w->batch_pos; i < w->batch.size(); ++i) {
      requeue(w->batch[i]);
    }
    w->batch.clear();
    w->batch_pos = 0;
  }
  if (w->owned != nullptr) {
    w->owned->Release(w->id);
    w->owned = nullptr;
  }
}

void Scheduler::MaybeReleaseMorselBatch(Worker* w) {
  if (w->owned == nullptr || w->batch.empty()) return;
  for (const msg::Message& m : w->batch) {
    const bool splittable = m.type == msg::MessageType::kScan ||
                            m.type == msg::MessageType::kWorkUnits;
    if (!splittable || msg::MorselCount(m.payload[3]) <= 1) return;
  }
  w->owned->Release(w->id);
  w->owned = nullptr;
}

bool Scheduler::AcquireWork(Worker* w) {
  if (w->remaining_ops > 0.0) return true;
  if (params_.static_binding) {
    // Original architecture: the worker exclusively serves the partition
    // with its own id; nothing else.
    for (;;) {
      if (w->batch_pos < w->batch.size()) {
        w->remaining_ops = DecodeOps(w->batch[w->batch_pos].payload[0]);
        return true;
      }
      if (w->owned == nullptr) {
        msg::PartitionQueue* q = layer_->router(w->socket)->queue(w->id);
        if (!q->TryAcquire(w->id)) return false;
        w->owned = q;
      }
      w->batch.clear();
      w->batch_pos = 0;
      if (w->owned->DequeueBatch(w->id, params_.batch_size, &w->batch) == 0) {
        return false;
      }
    }
  }
  for (;;) {
    // Next message in the current batch?
    if (w->batch_pos < w->batch.size()) {
      const msg::Message& m = w->batch[w->batch_pos];
      w->remaining_ops = DecodeOps(m.payload[0]);
      return true;
    }
    // One batch per ownership stint: after a batch is processed the
    // partition is released, so queued partitions are served round-robin
    // (fairness under backlog). Then acquire the next non-empty queue and
    // pull one batch from it.
    ReleaseOwnership(w, /*requeue_batch=*/false);
    w->batch.clear();
    w->batch_pos = 0;
    msg::IntraSocketRouter* router = layer_->router(w->socket);
    msg::PartitionQueue* q = router->AcquireNonEmpty(w->id, &w->rr_cursor);
    if (q == nullptr) return false;
    w->owned = q;
    if (q->DequeueBatch(w->id, params_.batch_size, &w->batch) == 0) {
      // Raced to empty; try the next queue.
      ReleaseOwnership(w, /*requeue_batch=*/false);
    } else {
      MaybeReleaseMorselBatch(w);
    }
  }
}

size_t Scheduler::RetrySpill() {
  size_t moved = 0;
  for (int p = 0; p < db_->num_partitions(); ++p) {
    auto& dq = spill_[static_cast<size_t>(p)];
    while (!dq.empty()) {
      // Spilled messages go directly to the partition's current home
      // queue (which may have moved since the spill).
      if (!layer_->router(placement_->HomeOf(p))->Enqueue(dq.front())) break;
      dq.pop_front();
      ++moved;
    }
  }
  return moved;
}

int64_t Scheduler::FailAllInflight(FailReason reason) {
  // Discard queued work everywhere it can hide. Worker state first (that
  // releases queue ownership, a precondition of the layer drain), then the
  // layer's queues and channels, then the spill buffers.
  for (Worker& w : workers_) {
    w.batch.clear();
    w.batch_pos = 0;
    w.remaining_ops = 0.0;
    if (w.owned != nullptr) {
      w.owned->Release(w.id);
      w.owned = nullptr;
    }
    machine_->SetThreadLoad(w.hw_thread, nullptr, 0.0);
    (void)machine_->TakeCompletedOps(w.hw_thread);
  }
  (void)layer_->DrainAllQueues();
  for (auto& dq : spill_) dq.clear();
  std::fill(outstanding_morsels_.begin(), outstanding_morsels_.end(), 0);

  // Fail in submission order so the client sees a deterministic, ordered
  // error stream (query ids are assigned monotonically).
  std::vector<QueryId> ids;
  ids.reserve(inflight_.size());
  for (const auto& [id, state] : inflight_) {
    if (!state.internal) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const QueryId id : ids) {
    const QueryState& state = inflight_.at(id);
    if (failure_callback_) {
      failure_callback_(state.slo_class, state.tenant, state.attempt,
                        state.arrival, reason);
    }
  }
  queries_failed_ += static_cast<int64_t>(ids.size());
  inflight_.clear();
  steady_ = false;
  return static_cast<int64_t>(ids.size());
}

void Scheduler::PrepareRehome(PartitionId p) {
  msg::PartitionQueue* queue = layer_->partition_queue(p);
  for (Worker& w : workers_) {
    if (w.owned == queue) {
      // Requeue the unprocessed remainder of the batch (including a
      // partially-consumed head) so it travels with the queue.
      ReleaseOwnership(&w, /*requeue_batch=*/true);
    }
  }
  steady_ = false;
}

void Scheduler::Advance(SimTime t0, SimTime t1) {
  const SimTime now = t1;
  const double dt_s = ToSeconds(t1 - t0);
  const hwsim::Topology& topo = machine_->topology();

  // Settled-slice detection: true while nothing moved this slice, so every
  // following slice would repeat only the active/busy-seconds additions.
  bool settled = true;

  // Communication threads move inter-socket messages once per slice
  // (the slice length models the transfer hop).
  size_t moved = 0;
  for (SocketId s = 0; s < topo.num_sockets; ++s) moved += layer_->PumpComm(s);
  moved += RetrySpill();
  if (moved > 0) settled = false;

  for (Worker& w : workers_) {
    const hwsim::SocketConfig& cfg = machine_->requested_config(w.socket);
    const bool active =
        cfg.ThreadActive(topo.LocalThreadOfThread(w.hw_thread));
    if (!active) {
      if (w.owned != nullptr || w.batch_pos < w.batch.size() ||
          w.remaining_ops > 0.0) {
        settled = false;
      }
      // Hardware thread is in a sleep state: give the partition back.
      ReleaseOwnership(&w, /*requeue_batch=*/true);
      machine_->SetThreadLoad(w.hw_thread, nullptr, 0.0);
      (void)machine_->TakeCompletedOps(w.hw_thread);
      continue;
    }
    w.active_seconds += dt_s;

    if (synthetic_load_ != nullptr) {
      // Saturation mode: full-intensity synthetic work, results discarded.
      (void)machine_->TakeCompletedOps(w.hw_thread);
      w.busy_seconds += dt_s;
      machine_->SetThreadLoad(w.hw_thread, synthetic_load_, 1.0);
      continue;
    }

    double credit = machine_->TakeCompletedOps(w.hw_thread);
    const double rate = machine_->CurrentRate(w.hw_thread);
    const double full_credit = credit;
    if (full_credit != 0.0) settled = false;
    while (credit > 1e-9) {
      if (!AcquireWork(&w)) break;
      const double spend = std::min(credit, w.remaining_ops);
      w.remaining_ops -= spend;
      credit -= spend;
      if (w.remaining_ops <= 1e-9) {
        w.remaining_ops = 0.0;
        CompleteTask(w.batch[w.batch_pos], now);
        ++w.batch_pos;
      }
    }
    if (rate > 0.0 && full_credit > 0.0) {
      const double consumed = full_credit - credit;
      w.busy_seconds += std::min(dt_s, consumed / rate);
    }

    // Offer next-slice work to the machine. PeekProfile may shift work
    // around (pull a batch, change ownership); any such movement — or a
    // non-null offer, which makes the machine accrue credit — unsettles.
    const msg::PartitionQueue* owned_before = w.owned;
    const size_t pos_before = w.batch_pos;
    const size_t size_before = w.batch.size();
    const hwsim::WorkProfile* next = PeekProfile(&w);
    if (next != nullptr || w.owned != owned_before ||
        w.batch_pos != pos_before || w.batch.size() != size_before) {
      settled = false;
    }
    machine_->SetThreadLoad(w.hw_thread, next, next != nullptr ? 1.0 : 0.0);
  }

  steady_ = settled;
  steady_config_writes_ = machine_->config_writes();
}

SimTime Scheduler::StationaryUntil(SimTime now) const {
  // A config write after the settled slice may have changed the
  // active-thread set, which this scheduler reacts to per slice.
  if (!steady_ || machine_->config_writes() != steady_config_writes_) {
    return now;
  }
  return kSimTimeNever;
}

void Scheduler::FastForward(SimTime t0, SimTime t1, SimDuration slice) {
  const hwsim::Topology& topo = machine_->topology();
  for (Worker& w : workers_) {
    const hwsim::SocketConfig& cfg = machine_->requested_config(w.socket);
    if (!cfg.ThreadActive(topo.LocalThreadOfThread(w.hw_thread))) continue;
    // Replay the per-slice accumulations on the same slice grid (sums of
    // doubles are order-dependent, so the additions must match 1:1).
    SimTime cur = t0;
    while (cur < t1) {
      const SimTime end = std::min(t1, cur + slice);
      const double dt_s = ToSeconds(end - cur);
      w.active_seconds += dt_s;
      if (synthetic_load_ != nullptr) w.busy_seconds += dt_s;
      cur = end;
    }
    // Synthetic credit is discarded anyway; draining once at the end of
    // the window leaves the same all-zero credit as draining per slice.
    if (synthetic_load_ != nullptr) (void)machine_->TakeCompletedOps(w.hw_thread);
  }
}

const hwsim::WorkProfile* Scheduler::PeekProfile(Worker* w) {
  if (w->remaining_ops > 0.0 || w->batch_pos < w->batch.size()) {
    return ProfileOfMessage(w->batch[w->batch_pos < w->batch.size()
                                         ? w->batch_pos
                                         : w->batch.size() - 1]);
  }
  if (params_.static_binding) {
    // Only the worker's own partition can supply work.
    if (AcquireWork(w)) {
      return ProfileOfMessage(w->batch[w->batch_pos]);
    }
    return nullptr;
  }
  // Work pending anywhere on this socket? The worker will grab it next
  // slice; intensity 1 with the socket's dominant pending profile.
  if (w->owned != nullptr && !w->owned->EmptyApprox()) {
    // Peek by dequeuing into the batch now.
    w->batch.clear();
    w->batch_pos = 0;
    if (w->owned->DequeueBatch(w->id, params_.batch_size, &w->batch) > 0) {
      MaybeReleaseMorselBatch(w);
      return ProfileOfMessage(w->batch[0]);
    }
  }
  msg::IntraSocketRouter* router = layer_->router(w->socket);
  if (router->PendingApprox() > 0) {
    // Some queue on the socket has work; report generic readiness using
    // the first registered profile if we cannot see the message itself.
    msg::PartitionQueue* q = router->AcquireNonEmpty(w->id, &w->rr_cursor);
    if (q != nullptr) {
      ReleaseOwnership(w, false);
      w->owned = q;
      w->batch.clear();
      w->batch_pos = 0;
      if (q->DequeueBatch(w->id, params_.batch_size, &w->batch) > 0) {
        MaybeReleaseMorselBatch(w);
        return ProfileOfMessage(w->batch[0]);
      }
      ReleaseOwnership(w, false);
    }
  }
  return nullptr;
}

}  // namespace ecldb::engine
