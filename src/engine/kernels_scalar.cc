#include "engine/simd.h"

// Portable reference kernels. These are the semantics the AVX2 kernels in
// kernels_avx2.cc must reproduce exactly (same kept rows, same key bits,
// bit-identical doubles); tests/engine_simd_test.cc cross-checks them on
// randomized inputs.

namespace ecldb::engine::simd {
namespace {

size_t FilterIntRangeScalar(const int64_t* v, const uint32_t* rows, size_t n,
                            int64_t lo, int64_t hi, uint32_t* out) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows[i];
    const int64_t x = v[r];
    if (x >= lo && x <= hi) out[kept++] = r;
  }
  return kept;
}

size_t FilterIntRangeFkScalar(const int64_t* v, const int64_t* fk,
                              const uint32_t* rows, size_t n, int64_t lo,
                              int64_t hi, uint32_t* out) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows[i];
    const int64_t x = v[fk[r] - 1];
    if (x >= lo && x <= hi) out[kept++] = r;
  }
  return kept;
}

inline bool CodeVerdict(int32_t c, const uint8_t* match, size_t known,
                        UnknownCodeFn unknown, const void* ctx) {
  return static_cast<size_t>(c) < known ? match[static_cast<size_t>(c)] != 0
                                        : unknown(ctx, c);
}

size_t FilterCodeMatchScalar(const int32_t* codes, const uint32_t* rows,
                             size_t n, const uint8_t* match, size_t known,
                             UnknownCodeFn unknown, const void* ctx,
                             uint32_t* out) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows[i];
    if (CodeVerdict(codes[r], match, known, unknown, ctx)) out[kept++] = r;
  }
  return kept;
}

size_t FilterCodeMatchFkScalar(const int32_t* codes, const int64_t* fk,
                               const uint32_t* rows, size_t n,
                               const uint8_t* match, size_t known,
                               UnknownCodeFn unknown, const void* ctx,
                               uint32_t* out) {
  size_t kept = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows[i];
    const int32_t c = codes[fk[r] - 1];
    if (CodeVerdict(c, match, known, unknown, ctx)) out[kept++] = r;
  }
  return kept;
}

void GatherFkScalar(const int64_t* fk, const uint32_t* rows, size_t n,
                    uint32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint32_t>(fk[rows[i]] - 1);
  }
}

bool PackCodesScalar(uint64_t* keys, const int32_t* codes,
                     const uint32_t* rows, size_t n, uint32_t bits,
                     uint64_t limit) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = static_cast<uint32_t>(codes[rows[i]]);
    if (c > limit) return false;
    keys[i] = (keys[i] << bits) | c;
  }
  return true;
}

bool PackIntsScalar(uint64_t* keys, const int64_t* vals, const uint32_t* rows,
                    size_t n, uint32_t bits, uint64_t base, uint64_t limit) {
  for (size_t i = 0; i < n; ++i) {
    const uint64_t c = static_cast<uint64_t>(vals[rows[i]]) - base;
    if (c > limit) return false;
    keys[i] = (keys[i] << bits) | c;
  }
  return true;
}

void HashKeysScalar(const uint64_t* keys, size_t n, uint64_t* hashes) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t x = keys[i];
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    hashes[i] = x;
  }
}

void EvalColumnScalar(const int64_t* a, const uint32_t* ra, size_t n,
                      double scale, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = scale * static_cast<double>(a[ra[i]]);
  }
}

void EvalProductScalar(const int64_t* a, const uint32_t* ra, const int64_t* b,
                       const uint32_t* rb, size_t n, double scale,
                       double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = scale * static_cast<double>(a[ra[i]]) *
             static_cast<double>(b[rb[i]]);
  }
}

void EvalDifferenceScalar(const int64_t* a, const uint32_t* ra,
                          const int64_t* b, const uint32_t* rb, size_t n,
                          double scale, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = scale * (static_cast<double>(a[ra[i]]) -
                      static_cast<double>(b[rb[i]]));
  }
}

}  // namespace

const KernelTable& ScalarKernels() {
  static const KernelTable table = {
      FilterIntRangeScalar,   FilterIntRangeFkScalar, FilterCodeMatchScalar,
      FilterCodeMatchFkScalar, GatherFkScalar,        PackCodesScalar,
      PackIntsScalar,         HashKeysScalar,         EvalColumnScalar,
      EvalProductScalar,      EvalDifferenceScalar,
  };
  return table;
}

}  // namespace ecldb::engine::simd
