#ifndef ECLDB_ENGINE_TABLE_H_
#define ECLDB_ENGINE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "engine/column.h"

namespace ecldb::engine {

/// One cell value; used for generic row append and point reads.
using Value = std::variant<int64_t, double, std::string>;

struct ColumnDef {
  std::string name;
  ColumnType type;
};

/// Table schema: ordered column definitions.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  /// Index of a column by name; -1 if absent.
  int IndexOf(std::string_view name) const;

 private:
  std::vector<ColumnDef> columns_;
};

/// Column-oriented in-memory table (one shard; partitions each hold their
/// own shard of every table).
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  /// Appends a row; values must match the schema arity and types.
  /// Returns the new row id.
  size_t AppendRow(const std::vector<Value>& values);

  /// Replaces this table's content (all columns and tombstones) with a
  /// copy of `other`'s. Schemas must match column-for-column. Bulk path
  /// for replicating a dimension shard into every partition without
  /// re-running the generator per replica.
  void CopyContentFrom(const Table& other);

  Column* column(size_t i) { return columns_[i].get(); }
  const Column* column(size_t i) const { return columns_[i].get(); }
  Column* column(std::string_view name);
  const Column* column(std::string_view name) const;

  /// Marks a row deleted (tombstone); scans skip it.
  void DeleteRow(size_t row);
  bool IsDeleted(size_t row) const { return deleted_[row]; }
  size_t num_deleted() const { return num_deleted_; }

  size_t MemoryBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::vector<bool> deleted_;
  size_t num_rows_ = 0;
  size_t num_deleted_ = 0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_TABLE_H_
