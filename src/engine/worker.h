#ifndef ECLDB_ENGINE_WORKER_H_
#define ECLDB_ENGINE_WORKER_H_

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "msg/message.h"
#include "msg/partition_queue.h"

namespace ecldb::engine {

/// Execution state of one worker thread of the elastic data-oriented
/// architecture. Workers are pinned 1:1 to hardware threads; whether a
/// worker runs is decided by the hardware configuration the ECL applies
/// (its hardware thread's C-state), which is exactly the elasticity the
/// paper's Section 3 extensions enable.
struct Worker {
  int id = -1;
  HwThreadId hw_thread = -1;
  SocketId socket = -1;

  /// Partition queue currently owned (dequeue-own-process-release cycle),
  /// or nullptr.
  msg::PartitionQueue* owned = nullptr;
  /// Message batch dequeued from the owned partition.
  std::vector<msg::Message> batch;
  size_t batch_pos = 0;
  /// Remaining operations of the message currently being processed.
  double remaining_ops = 0.0;
  /// Round-robin scan cursor over the socket's partition queues.
  size_t rr_cursor = 0;

  /// Utilization accounting since the last TakeUtilization.
  double busy_seconds = 0.0;
  double active_seconds = 0.0;

  bool HasBatchWork() const { return batch_pos < batch.size() || remaining_ops > 0.0; }
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_WORKER_H_
