#include "engine/morsel.h"

#include <memory>

#include "common/check.h"

namespace ecldb::engine {

MorselPool::MorselPool(int extra_workers) {
  ECLDB_CHECK(extra_workers >= 0);
  threads_.reserve(static_cast<size_t>(extra_workers));
  for (int i = 0; i < extra_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

MorselPool::~MorselPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void MorselPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(size_t)>* fn;
    size_t count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      fn = fn_;
      count = count_;
    }
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count) {
      (*fn)(i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++arrived_;
    }
    done_cv_.notify_all();
  }
}

void MorselPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    arrived_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a worker too: claim morsels from the same cursor until
  // the grid is exhausted.
  size_t i;
  while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count) {
    fn(i);
  }
  // Wait until every pool thread has cycled through this generation. That
  // both guarantees all claimed morsels finished (a thread arrives only
  // after its claim loop exits) and keeps `fn` alive until no thread can
  // still dereference it.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return arrived_ == threads_.size(); });
  fn_ = nullptr;
  count_ = 0;
}

int64_t RunMorselAggregationPipeline(const Table* fact,
                                     const FilterOperator& filter,
                                     HashAggregator* aggregator,
                                     MorselPool* pool, size_t morsel_rows) {
  ECLDB_CHECK(fact != nullptr && aggregator != nullptr);
  ECLDB_CHECK(morsel_rows > 0);
  const size_t num_rows = fact->num_rows();
  const size_t morsels =
      num_rows == 0 ? 0 : (num_rows + morsel_rows - 1) / morsel_rows;
  if (pool == nullptr || morsels <= 1) {
    return RunAggregationPipeline(fact, filter, aggregator);
  }

  std::vector<std::unique_ptr<HashAggregator>> partials(morsels);
  for (size_t m = 0; m < morsels; ++m) {
    partials[m] = std::make_unique<HashAggregator>(aggregator->group_by(),
                                                   aggregator->value());
  }
  std::vector<int64_t> scanned(morsels, 0);
  pool->Run(morsels, [&](size_t m) {
    const size_t begin = m * morsel_rows;
    const size_t end = std::min(begin + morsel_rows, num_rows);
    scanned[m] =
        RunAggregationPipeline(fact, filter, partials[m].get(), begin, end);
  });

  // Merge in morsel-index order: deterministic per-group addition sequence
  // regardless of which worker ran which morsel.
  int64_t total_scanned = 0;
  for (size_t m = 0; m < morsels; ++m) {
    total_scanned += scanned[m];
    aggregator->Merge(*partials[m]);
  }
  return total_scanned;
}

}  // namespace ecldb::engine
