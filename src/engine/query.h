#ifndef ECLDB_ENGINE_QUERY_H_
#define ECLDB_ENGINE_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "hwsim/work_profile.h"
#include "msg/message.h"

namespace ecldb::engine {

/// Work a query places on one partition, in operations of the query's
/// work profile. Plain work units are pure fluid accounting; functional
/// types (kGet/kPut/kScan) additionally execute a real data operation via
/// the engine's functional executor when the fluid work completes.
struct PartitionWork {
  PartitionId partition = -1;
  double ops = 0.0;
  msg::MessageType type = msg::MessageType::kWorkUnits;
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  /// Intra-query parallelism: split this task into `morsels` messages of
  /// ops/morsels each, so every active worker of the owning socket can
  /// consume a share of the partition's scan concurrently (the partition
  /// queue hands morsels to whichever worker grabs ownership next — the
  /// fluid analogue of morsel stealing, naturally restricted to active
  /// workers because sleeping threads never acquire queues). Only kScan
  /// and kWorkUnits tasks may split (> 1): those are the types whose arg1
  /// is free to carry the morsel coordinates.
  int morsels = 1;
};

/// Why a query was failed instead of completed. Typed so clients (the
/// loadgen's retry model) and tests can distinguish infrastructure loss
/// from routing pathology.
enum class FailReason : int8_t {
  kNone = 0,
  /// The node executing the query crashed with the query in flight or
  /// queued (cluster crash recovery fails it back to the client).
  kNodeCrash = 1,
  /// A stale-epoch forward chain exceeded the configured hop cap (routing
  /// livelock guard; see ClusterEngineParams::max_forward_hops).
  kForwardCap = 2,
};

inline const char* FailReasonName(FailReason r) {
  switch (r) {
    case FailReason::kNone: return "none";
    case FailReason::kNodeCrash: return "node_crash";
    case FailReason::kForwardCap: return "forward_cap";
  }
  return "?";
}

/// A query as submitted to the engine: a work profile plus per-partition
/// work items. Queries spanning partitions on multiple sockets exercise
/// the inter-socket communication path.
struct QuerySpec {
  const hwsim::WorkProfile* profile = nullptr;
  std::vector<PartitionWork> work;
  /// Socket of the dispatching thread (messages to remote partitions go
  /// through the communication endpoints).
  SocketId origin_socket = 0;
  /// Internal bookkeeping query (e.g. a migration shard copy): executes
  /// through the normal partition-queue path but is excluded from the
  /// latency statistics and the submitted/completed query counts.
  bool internal = false;
  /// Service class of the submitting tenant (loadgen::SloClass value), or
  /// -1 for untagged traffic. Carried through scheduling (and across
  /// cluster entry-node splits) so completions can be accounted against
  /// per-class deadlines; the engine itself never branches on it.
  int8_t slo_class = -1;
  /// Submitting tenant index (loadgen), or -1 for untagged traffic.
  /// Carried so failure callbacks can route a typed error back to the
  /// originating tenant's retry state; the engine never branches on it.
  int16_t tenant = -1;
  /// Client-side attempt number (0 = first submission, >0 = retry).
  /// Opaque to the engine; echoed in failure callbacks.
  int8_t attempt = 0;
  /// Stale-epoch forward hops this query has taken so far (cluster
  /// routing). Incremented by ClusterEngine on each forward; queries
  /// exceeding ClusterEngineParams::max_forward_hops fail typed.
  int8_t forward_hops = 0;
};

/// Collects completed-query latencies: a sliding window for the
/// system-level ECL (current average + trend) and full-run statistics for
/// the benches.
class LatencyTracker {
 public:
  explicit LatencyTracker(SimDuration window_horizon)
      : window_(window_horizon) {}

  void RecordCompletion(SimTime arrival, SimTime completion) {
    const double ms = ToMillis(completion - arrival);
    window_.Add(completion, ms);
    all_.Add(ms);
    ++completed_;
  }

  /// Mean latency (ms) over the recent window.
  double WindowMeanMs() const { return window_.Mean(); }
  /// Latency trend in ms per second over the recent window.
  double TrendMsPerSec() const { return window_.SlopePerSecond(); }
  bool WindowEmpty() const { return window_.empty(); }

  const PercentileTracker& all() const { return all_; }
  int64_t completed() const { return completed_; }

  void ResetRunStats() {
    all_.Clear();
    completed_ = 0;
  }

 private:
  SlidingWindow window_;
  PercentileTracker all_;
  int64_t completed_ = 0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_QUERY_H_
