#include "engine/placement.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::engine {
namespace {

std::vector<SocketId> BlockwiseHome(int num_partitions, int num_sockets) {
  ECLDB_CHECK(num_partitions > 0 && num_sockets > 0);
  const int per_socket = (num_partitions + num_sockets - 1) / num_sockets;
  std::vector<SocketId> home;
  home.reserve(static_cast<size_t>(num_partitions));
  for (int p = 0; p < num_partitions; ++p) {
    home.push_back(std::min(p / per_socket, num_sockets - 1));
  }
  return home;
}

}  // namespace

PlacementMap::PlacementMap(int num_partitions, int num_sockets)
    : PlacementMap(BlockwiseHome(num_partitions, num_sockets), num_sockets) {}

PlacementMap::PlacementMap(std::vector<SocketId> home, int num_sockets)
    : num_sockets_(num_sockets), home_(std::move(home)) {
  ECLDB_CHECK(num_sockets_ > 0 && !home_.empty());
  initial_home_ = home_;
  migrating_to_.assign(home_.size(), -1);
  per_socket_.assign(static_cast<size_t>(num_sockets_), 0);
  for (const SocketId s : home_) {
    ECLDB_CHECK(s >= 0 && s < num_sockets_);
    ++per_socket_[static_cast<size_t>(s)];
  }
}

std::vector<PartitionId> PlacementMap::PartitionsOf(SocketId s) const {
  std::vector<PartitionId> out;
  for (size_t p = 0; p < home_.size(); ++p) {
    if (home_[p] == s) out.push_back(static_cast<PartitionId>(p));
  }
  return out;
}

void PlacementMap::BeginMigration(PartitionId p, SocketId to) {
  ECLDB_CHECK(p >= 0 && p < num_partitions());
  ECLDB_CHECK(to >= 0 && to < num_sockets_);
  ECLDB_CHECK_MSG(!IsMigrating(p), "partition already migrating");
  ECLDB_CHECK_MSG(HomeOf(p) != to, "migration to the current home");
  migrating_to_[static_cast<size_t>(p)] = to;
  ++migrating_count_;
}

SocketId PlacementMap::CommitMigration(PartitionId p) {
  ECLDB_CHECK(p >= 0 && p < num_partitions());
  ECLDB_CHECK_MSG(IsMigrating(p), "commit without a begun migration");
  const SocketId from = home_[static_cast<size_t>(p)];
  const SocketId to = migrating_to_[static_cast<size_t>(p)];
  home_[static_cast<size_t>(p)] = to;
  migrating_to_[static_cast<size_t>(p)] = -1;
  --per_socket_[static_cast<size_t>(from)];
  ++per_socket_[static_cast<size_t>(to)];
  --migrating_count_;
  ++completed_migrations_;
  ++epoch_;
  return from;
}

SocketId PlacementMap::ForceRehome(PartitionId p, SocketId to) {
  ECLDB_CHECK(p >= 0 && p < num_partitions());
  ECLDB_CHECK(to >= 0 && to < num_sockets_);
  if (IsMigrating(p)) CancelMigration(p);
  const SocketId from = home_[static_cast<size_t>(p)];
  ECLDB_CHECK_MSG(from != to, "forced re-home to the current home");
  home_[static_cast<size_t>(p)] = to;
  --per_socket_[static_cast<size_t>(from)];
  ++per_socket_[static_cast<size_t>(to)];
  ++forced_rehomes_;
  ++epoch_;
  return from;
}

void PlacementMap::CancelMigration(PartitionId p) {
  ECLDB_CHECK(p >= 0 && p < num_partitions());
  ECLDB_CHECK_MSG(IsMigrating(p), "cancel without a begun migration");
  migrating_to_[static_cast<size_t>(p)] = -1;
  --migrating_count_;
  ++cancelled_migrations_;
}

}  // namespace ecldb::engine
