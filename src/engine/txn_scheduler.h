#ifndef ECLDB_ENGINE_TXN_SCHEDULER_H_
#define ECLDB_ENGINE_TXN_SCHEDULER_H_

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "engine/database.h"
#include "engine/query.h"
#include "hwsim/machine.h"
#include "sim/simulator.h"

namespace ecldb::engine {

struct TxnSchedulerParams {
  /// Lock-convoy model: with x = busy_workers - 1 concurrent lock
  /// requesters, the fraction of worker time lost to spinning is
  ///   spin = 1 - 1 / (1 + spin_linear * x + spin_quad * x^2),
  /// capped at max_spin. The quadratic term makes useful throughput peak
  /// at a moderate thread count and then collapse (convoy effect).
  double spin_linear = 0.02;
  double spin_quad = 0.004;
  double max_spin = 0.95;
  /// Extra memory-latency factor from non-local data access (transactions
  /// run on any worker; partitions have no home affinity).
  double remote_access_factor = 1.4;
  SimDuration latency_window = Seconds(5);
};

/// A classic TRANSACTION-ORIENTED executor, for comparison with the
/// data-oriented architecture (paper Section 5.3): worker threads execute
/// whole transactions against shared data structures guarded by
/// (spin)locks instead of owning partitions.
///
/// Two properties matter for energy control and are modeled here:
///  (1) spinning threads retire instructions at full rate without doing
///      useful work, which tampers with the ECL's performance metric
///      (instructions retired), and
///  (2) data access loses locality (any worker touches any partition),
///      raising memory latency.
///
/// The fluid model folds both into an adjusted work profile per slice:
/// spinning inflates instructions-per-operation and cycles-per-operation
/// by 1/(1 - spin); remote access inflates the memory-latency component.
class TxnScheduler {
 public:
  TxnScheduler(sim::Simulator* simulator, hwsim::Machine* machine,
               Database* db, const TxnSchedulerParams& params);

  TxnScheduler(const TxnScheduler&) = delete;
  TxnScheduler& operator=(const TxnScheduler&) = delete;

  /// Submits a transaction; the partition work items execute serially on
  /// whichever worker picks the transaction up.
  QueryId Submit(const QuerySpec& spec);

  double TakeUtilization(SocketId socket);
  LatencyTracker& latency() { return latency_; }
  const LatencyTracker& latency() const { return latency_; }

  int64_t completed() const { return latency_.completed(); }
  int64_t submitted() const { return submitted_; }
  /// Spin fraction applied in the last slice (diagnostics).
  double last_spin_fraction() const { return last_spin_; }

 private:
  struct Txn {
    QueryId id = 0;
    SimTime arrival = 0;
    const hwsim::WorkProfile* profile = nullptr;
    double remaining_ops = 0.0;
  };
  struct WorkerState {
    Txn current;
    bool busy = false;
    double busy_seconds = 0.0;
    double active_seconds = 0.0;
  };

  void Advance(SimTime t0, SimTime t1);
  /// Adjusted (spin- and locality-degraded) profile for a base profile.
  const hwsim::WorkProfile* AdjustedProfile(const hwsim::WorkProfile* base,
                                            double spin);

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  Database* db_;
  TxnSchedulerParams params_;

  std::deque<Txn> queue_;
  std::vector<WorkerState> workers_;
  LatencyTracker latency_;
  /// One mutable adjusted profile per distinct base profile.
  std::unordered_map<const hwsim::WorkProfile*, hwsim::WorkProfile> adjusted_;
  QueryId next_id_ = 1;
  int64_t submitted_ = 0;
  double last_spin_ = 0.0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_TXN_SCHEDULER_H_
