#include "engine/cluster_engine.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "common/check.h"
#include "engine/migration.h"

namespace ecldb::engine {

ClusterEngine::ClusterEngine(sim::Simulator* simulator,
                             hwsim::Cluster* cluster,
                             const ClusterEngineParams& params)
    : simulator_(simulator), cluster_(cluster), params_(params) {
  ECLDB_CHECK(simulator != nullptr && cluster != nullptr);
  int num_partitions = params_.num_partitions;
  if (num_partitions == 0) {
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
      num_partitions += cluster_->machine(n).topology().total_threads();
    }
  }
  ECLDB_CHECK(num_partitions > 0);
  placement_ = std::make_unique<PlacementMap>(num_partitions,
                                              cluster_->num_nodes());
  telemetry::Telemetry* const tel = params_.telemetry;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    EngineParams ep = params_.engine;
    ep.num_partitions = num_partitions;
    ep.telemetry = tel;
    if (tel != nullptr) {
      tel->SetPathPrefix("node" + std::to_string(n) + "/");
    }
    engines_.push_back(std::make_unique<Engine>(
        simulator_, &cluster_->machine(n), ep));
  }
  if (tel != nullptr) {
    tel->SetPathPrefix("");
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("cluster/remote_sends", [this] { return remote_sends_; });
    reg.AddCounterFn("cluster/stale_forwards",
                     [this] { return stale_forwards_; });
    reg.AddCounterFn("cluster/migrations_started",
                     [this] { return migrations_started_; });
    reg.AddCounterFn("cluster/migrations_completed",
                     [this] { return migrations_completed_; });
    reg.AddCounterFn("cluster/migrations_cancelled",
                     [this] { return migrations_cancelled_; });
    reg.AddGauge("cluster/migrations_active", [this] {
      return static_cast<double>(active_migrations_);
    });
    reg.AddGauge("cluster/migration_bytes_moved",
                 [this] { return bytes_moved_; });
  }
}

void ClusterEngine::Submit(NodeId entry, const QuerySpec& spec) {
  ECLDB_CHECK(entry >= 0 && entry < num_nodes());
  // Split the work list by home node, preserving per-group work order.
  std::map<NodeId, QuerySpec> groups;
  for (const PartitionWork& w : spec.work) {
    const NodeId home = placement_->HomeOf(w.partition);
    QuerySpec& sub = groups[home];
    if (sub.work.empty()) {
      sub.profile = spec.profile;
      sub.internal = spec.internal;
      sub.slo_class = spec.slo_class;
      sub.tenant = spec.tenant;
      sub.attempt = spec.attempt;
    }
    sub.work.push_back(w);
  }
  for (auto& [home, sub] : groups) {
    if (home == entry) {
      SubmitLocal(entry, std::move(sub));
    } else {
      Ship(entry, home, std::move(sub), /*forward=*/false);
    }
  }
}

void ClusterEngine::SubmitLocal(NodeId n, QuerySpec sub) {
  Engine& eng = node_engine(n);
  sub.origin_socket = eng.placement().HomeOf(sub.work.front().partition);
  eng.Submit(sub);
}

void ClusterEngine::Ship(NodeId from, NodeId to, QuerySpec sub, bool forward) {
  const double bytes = cluster_->network().params().message_bytes;
  const SimTime deliver = cluster_->network().ReserveTransfer(
      from, to, bytes, simulator_->now());
  ++remote_sends_;
  if (forward) ++stale_forwards_;
  simulator_->Schedule(deliver, [this, to, sub = std::move(sub)]() mutable {
    Route(to, std::move(sub));
  });
}

void ClusterEngine::Route(NodeId at, QuerySpec sub) {
  const NodeId home = placement_->HomeOf(sub.work.front().partition);
  if (home == at) {
    SubmitLocal(at, std::move(sub));
    return;
  }
  // The partition re-homed while the message was on the wire: the epoch
  // it was addressed under is stale, forward another hop — up to the cap,
  // past which the sub-query fails typed instead of chasing the placement
  // forever (and the drop is visible in forward_drops / telemetry, never
  // silent: conservation requires every submission to end as a completion
  // or a typed failure).
  if (static_cast<int>(sub.forward_hops) >= params_.max_forward_hops) {
    ++forward_drops_;
    if (failure_callback_) {
      failure_callback_(sub.slo_class, sub.tenant, sub.attempt,
                        simulator_->now(), FailReason::kForwardCap);
    }
    return;
  }
  ++sub.forward_hops;
  Ship(at, home, std::move(sub), /*forward=*/true);
}

bool ClusterEngine::StartMigration(PartitionId p, NodeId to) {
  ECLDB_CHECK(p >= 0 && p < num_partitions());
  ECLDB_CHECK(to >= 0 && to < num_nodes());
  if (placement_->IsMigrating(p) || placement_->HomeOf(p) == to) return false;
  const NodeId from = placement_->HomeOf(p);
  if (!cluster_->IsOn(from) || !cluster_->IsOn(to)) return false;
  placement_->BeginMigration(p, to);
  ++active_migrations_;
  ++migrations_started_;

  // Drain + local copy: the shard-copy query rides the source partition's
  // FIFO queue, so everything already enqueued executes first and the
  // fluid copy work charges the source node's memory system.
  Engine& src = node_engine(from);
  const double actual =
      static_cast<double>(src.db().partition(p)->MemoryBytes());
  const double bytes = std::max(actual, params_.migration.min_shard_bytes);
  const double ops = std::max(1.0, bytes / params_.migration.bytes_per_op);
  QuerySpec copy;
  copy.profile = &ShardCopyProfile();
  copy.work.push_back({p, ops, msg::MessageType::kWorkUnits, 0, 0});
  copy.origin_socket = src.placement().HomeOf(p);
  copy.internal = true;
  const QueryId copy_query = src.Submit(copy);

  simulator_->ScheduleAfter(params_.migration.min_copy_time,
                            [this, p, copy_query, bytes] {
                              CheckDrain(p, copy_query, bytes);
                            });
  return true;
}

void ClusterEngine::CheckDrain(PartitionId p, QueryId copy_query,
                               double bytes) {
  // Cancelled under our feet (a crash took an endpoint): the pending poll
  // must not treat the vanished copy query as a completed drain.
  if (!placement_->IsMigrating(p)) return;
  const NodeId from = placement_->HomeOf(p);
  if (node_engine(from).scheduler().IsInflight(copy_query)) {
    simulator_->ScheduleAfter(params_.migration.check_interval,
                              [this, p, copy_query, bytes] {
                                CheckDrain(p, copy_query, bytes);
                              });
    return;
  }
  // Drained: the shard state now crosses the network at NIC bandwidth,
  // competing with control messages of both endpoints.
  const NodeId to = placement_->MigrationTarget(p);
  const SimTime deliver = cluster_->network().ReserveTransfer(
      from, to, bytes, simulator_->now());
  simulator_->Schedule(deliver,
                       [this, p, bytes] { CommitOrCancel(p, bytes); });
}

void ClusterEngine::CommitOrCancel(PartitionId p, double bytes) {
  // Crash-cancelled while the copy was on the wire: the crash path already
  // cancelled the migration and adjusted the counters.
  if (!placement_->IsMigrating(p)) return;
  --active_migrations_;
  if (!cluster_->IsOn(placement_->MigrationTarget(p))) {
    // Destination powered down while the copy was on the wire. The source
    // was never unhomed, so cancelling loses nothing: it kept serving the
    // queued tail and stays the home.
    placement_->CancelMigration(p);
    ++migrations_cancelled_;
    return;
  }
  placement_->CommitMigration(p);
  ++migrations_completed_;
  bytes_moved_ += bytes;
}

void ClusterEngine::SetQueryFailureCallback(Scheduler::FailureCallback cb) {
  failure_callback_ = std::move(cb);
  for (auto& eng : engines_) {
    eng->scheduler().SetFailureCallback(failure_callback_);
  }
}

void ClusterEngine::OnNodeCrash(NodeId n) {
  ECLDB_CHECK(n >= 0 && n < num_nodes());
  ECLDB_CHECK_MSG(cluster_->IsFailed(n), "crash recovery of a healthy node");

  // 1. Cancel migrations whose endpoint died. The pending drain-poll and
  // copy-delivery events of these migrations observe the cancelled state
  // and no-op.
  for (PartitionId p = 0; p < num_partitions(); ++p) {
    if (!placement_->IsMigrating(p)) continue;
    if (placement_->HomeOf(p) == n || placement_->MigrationTarget(p) == n) {
      placement_->CancelMigration(p);
      ++migrations_cancelled_;
      --active_migrations_;
    }
  }

  // 2. Fail what the node was holding: queued and in-flight queries fire
  // typed kNodeCrash errors back to the client; internal shard copies
  // vanish (their migrations were cancelled above).
  node_engine(n).scheduler().FailAllInflight(FailReason::kNodeCrash);

  // 3. Re-home the lost partitions onto survivors and charge the shard
  // re-copy from the durable placement truth on each new home. Survivor
  // choice is deterministic: fewest partitions after prior re-homes,
  // lowest node id on ties.
  for (PartitionId p = 0; p < num_partitions(); ++p) {
    if (placement_->HomeOf(p) != n) continue;
    NodeId to = -1;
    for (NodeId c = 0; c < num_nodes(); ++c) {
      if (!cluster_->IsAvailable(c)) continue;
      if (to < 0 || placement_->PartitionsOn(c) < placement_->PartitionsOn(to)) {
        to = c;
      }
    }
    if (to < 0) return;  // no survivor; partitions stay until one recovers
    placement_->ForceRehome(p, to);

    Engine& dst = node_engine(to);
    const double actual =
        static_cast<double>(dst.db().partition(p)->MemoryBytes());
    const double bytes = std::max(actual, params_.migration.min_shard_bytes);
    const double ops = std::max(1.0, bytes / params_.migration.bytes_per_op);
    QuerySpec copy;
    copy.profile = &ShardCopyProfile();
    copy.work.push_back({p, ops, msg::MessageType::kWorkUnits, 0, 0});
    copy.origin_socket = dst.placement().HomeOf(p);
    copy.internal = true;
    dst.Submit(copy);
    ++crash_recoveries_;
    recovery_bytes_ += bytes;
  }
}

int64_t ClusterEngine::QueriesFailed() const {
  int64_t total = forward_drops_;
  for (const auto& eng : engines_) total += eng->scheduler().queries_failed();
  return total;
}

bool ClusterEngine::NodeInvolvedInMigration(NodeId n) const {
  for (PartitionId p = 0; p < num_partitions(); ++p) {
    if (!placement_->IsMigrating(p)) continue;
    if (placement_->HomeOf(p) == n || placement_->MigrationTarget(p) == n) {
      return true;
    }
  }
  return false;
}

double ClusterEngine::BacklogOps(NodeId n) const {
  const Engine& eng = node_engine(n);
  double total = 0.0;
  const int sockets = cluster_->machine(n).topology().num_sockets;
  for (SocketId s = 0; s < sockets; ++s) {
    total += eng.scheduler().BacklogOps(s);
  }
  return total;
}

int64_t ClusterEngine::CompletedQueries() const {
  int64_t total = 0;
  for (const auto& eng : engines_) total += eng->latency().completed();
  return total;
}

}  // namespace ecldb::engine
