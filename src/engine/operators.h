#ifndef ECLDB_ENGINE_OPERATORS_H_
#define ECLDB_ENGINE_OPERATORS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "engine/table.h"

namespace ecldb::engine {

/// Vectorized query operators over partition shards: a table scan feeding
/// selection-vector batches through filters into a hash aggregator. Star
/// joins use direct-addressed dimension lookups (dimension tables are
/// replicated per partition with row id == key - 1, the usual
/// shared-nothing star-schema placement; see workload/ssb.cc).

/// A value source evaluated per fact-table row: either a fact column or a
/// dimension column reached through a foreign-key fact column.
class ColumnRef {
 public:
  /// Value of fact column `col`.
  static ColumnRef Fact(int col);
  /// Value of `dim_col` in `dim`, at row (fact.fk_col - 1).
  static ColumnRef Dim(int fk_col, const Table* dim, int dim_col);

  bool is_dim() const { return dim_ != nullptr; }

  int64_t GetInt(const Table& fact, uint32_t row) const;
  std::string_view GetString(const Table& fact, uint32_t row) const;

  /// Appends a textual form of the value to `out` (group-key building).
  void AppendKey(const Table& fact, uint32_t row, std::string* out) const;

 private:
  int fact_col_ = -1;
  const Table* dim_ = nullptr;
  int dim_col_ = -1;

  const Column& Resolve(const Table& fact, uint32_t row,
                        uint32_t* resolved_row) const;
};

/// A predicate on a ColumnRef.
struct Predicate {
  enum class Kind {
    kIntRange,     // lo <= value <= hi
    kStringEq,     // value == values[0]
    kStringIn,     // value in values
    kStringRange,  // values[0] <= value <= values[1] (lexicographic)
  };

  static Predicate IntRange(ColumnRef ref, int64_t lo, int64_t hi);
  static Predicate StringEq(ColumnRef ref, std::string value);
  static Predicate StringIn(ColumnRef ref, std::vector<std::string> values);
  static Predicate StringRange(ColumnRef ref, std::string lo, std::string hi);

  bool Eval(const Table& fact, uint32_t row) const;

  Kind kind = Kind::kIntRange;
  ColumnRef ref;
  int64_t lo = 0;
  int64_t hi = 0;
  std::vector<std::string> values;
};

/// Scans a table shard in selection-vector batches, skipping tombstones.
class TableScan {
 public:
  explicit TableScan(const Table* table, size_t batch_size = 1024);

  /// Fills `rows` with the next batch; false at end of table.
  bool Next(std::vector<uint32_t>* rows);

  void Reset() { next_row_ = 0; }

 private:
  const Table* table_;
  size_t batch_size_;
  size_t next_row_ = 0;
};

/// Filters a selection vector in place by a conjunction of predicates.
class FilterOperator {
 public:
  FilterOperator(const Table* fact, std::vector<Predicate> predicates);

  /// Keeps only qualifying rows; returns the number kept.
  size_t Apply(std::vector<uint32_t>* rows) const;

 private:
  const Table* fact_;
  std::vector<Predicate> predicates_;
};

/// An aggregation value per fact row: scale * a, or scale * (a op b).
struct ValueExpr {
  enum class Kind { kColumn, kProduct, kDifference };

  static ValueExpr Column(ColumnRef a, double scale = 1.0);
  static ValueExpr Product(ColumnRef a, ColumnRef b, double scale = 1.0);
  static ValueExpr Difference(ColumnRef a, ColumnRef b, double scale = 1.0);

  double Eval(const Table& fact, uint32_t row) const;

  Kind kind = Kind::kColumn;
  ColumnRef a;
  ColumnRef b;
  double scale = 1.0;
};

/// Hash group-by with a SUM aggregate; group keys are built from
/// ColumnRefs ("|"-joined). An empty group list aggregates to one group.
class HashAggregator {
 public:
  HashAggregator(std::vector<ColumnRef> group_by, ValueExpr value);

  void Consume(const Table& fact, const std::vector<uint32_t>& rows);
  /// Merges another aggregator's groups (cross-partition combine).
  void Merge(const HashAggregator& other);

  const std::map<std::string, double>& groups() const { return groups_; }
  int64_t rows_consumed() const { return rows_consumed_; }
  double TotalSum() const;

 private:
  std::vector<ColumnRef> group_by_;
  ValueExpr value_;
  std::map<std::string, double> groups_;
  int64_t rows_consumed_ = 0;
};

/// One aggregation pipeline over one fact-table shard:
/// scan -> filter -> aggregate. Returns rows scanned.
int64_t RunAggregationPipeline(const Table* fact, const FilterOperator& filter,
                               HashAggregator* aggregator);

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_OPERATORS_H_
