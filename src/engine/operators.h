#ifndef ECLDB_ENGINE_OPERATORS_H_
#define ECLDB_ENGINE_OPERATORS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "engine/agg_hash_table.h"
#include "engine/table.h"

namespace ecldb::engine {

/// Vectorized query operators over partition shards: a table scan feeding
/// selection-vector batches through typed filter kernels into a hash
/// aggregator with packed integer group keys. Star joins use
/// direct-addressed dimension lookups (dimension tables are replicated
/// per partition with row id == key - 1, the usual shared-nothing
/// star-schema placement; see workload/ssb.cc).
///
/// Execution is column-at-a-time: each operator resolves its input
/// column(s) once per batch and then runs a tight loop over the selection
/// vector, instead of re-resolving the column reference per row. The
/// original row-at-a-time implementations are kept as the reference path
/// (`ApplyScalar`, `ConsumeScalar`, `RunAggregationPipelineScalar`);
/// `tests/engine_vectorized_test.cc` asserts both paths produce identical
/// results across randomized tables, predicates, and batch sizes.

/// A value source evaluated per fact-table row: either a fact column or a
/// dimension column reached through a foreign-key fact column.
class ColumnRef {
 public:
  /// Value of fact column `col`.
  static ColumnRef Fact(int col);
  /// Value of `dim_col` in `dim`, at row (fact.fk_col - 1).
  static ColumnRef Dim(int fk_col, const Table* dim, int dim_col);

  bool is_dim() const { return dim_ != nullptr; }

  int64_t GetInt(const Table& fact, uint32_t row) const;
  std::string_view GetString(const Table& fact, uint32_t row) const;

  /// Appends a textual form of the value to `out` (group-key building).
  void AppendKey(const Table& fact, uint32_t row, std::string* out) const;

  /// Batch resolution: the target column plus, for each selection-vector
  /// entry, the row within it. Fact refs alias the selection vector
  /// (`*rows_out == rows`, no copy); dim refs gather the foreign keys
  /// into `scratch` once for the whole batch.
  const Column* ResolveBatch(const Table& fact, const uint32_t* rows,
                             size_t n, std::vector<uint32_t>* scratch,
                             const uint32_t** rows_out) const;

  /// The target column without per-row resolution (fact column, or the
  /// dimension column itself).
  const Column* TargetColumn(const Table& fact) const;
  /// The foreign-key fact column for dim refs, nullptr for fact refs.
  const Column* FkColumn(const Table& fact) const;

 private:
  int fact_col_ = -1;
  const Table* dim_ = nullptr;
  int dim_col_ = -1;

  const Column& Resolve(const Table& fact, uint32_t row,
                        uint32_t* resolved_row) const;
};

/// A predicate on a ColumnRef.
struct Predicate {
  enum class Kind {
    kIntRange,     // lo <= value <= hi
    kStringEq,     // value == values[0]
    kStringIn,     // value in values
    kStringRange,  // values[0] <= value <= values[1] (lexicographic)
  };

  static Predicate IntRange(ColumnRef ref, int64_t lo, int64_t hi);
  static Predicate StringEq(ColumnRef ref, std::string value);
  static Predicate StringIn(ColumnRef ref, std::vector<std::string> values);
  static Predicate StringRange(ColumnRef ref, std::string lo, std::string hi);

  bool Eval(const Table& fact, uint32_t row) const;
  /// The string-kind match semantics on a raw value (shared by the scalar
  /// path and the kernels' dictionary-miss fallback).
  bool MatchesString(std::string_view v) const;

  Kind kind = Kind::kIntRange;
  ColumnRef ref;
  int64_t lo = 0;
  int64_t hi = 0;
  std::vector<std::string> values;
};

/// Scans a table shard in selection-vector batches, skipping tombstones.
/// A scan can be restricted to a row range [begin_row, end_row) — the
/// morsel unit of intra-query parallelism (engine/morsel.h). Shards with
/// no tombstones take a straight iota fill.
class TableScan {
 public:
  explicit TableScan(const Table* table, size_t batch_size = 1024);
  TableScan(const Table* table, size_t begin_row, size_t end_row,
            size_t batch_size = 1024);

  /// Fills `rows` with the next batch; false at end of range.
  bool Next(std::vector<uint32_t>* rows);

  void Reset() { next_row_ = begin_row_; }

 private:
  const Table* table_;
  size_t batch_size_;
  size_t begin_row_ = 0;
  size_t end_row_;  // clamped to num_rows() at scan time
  size_t next_row_ = 0;
};

/// Filters a selection vector in place by a conjunction of predicates.
/// Each predicate is bound to its target column once at construction:
/// string predicates are translated into a dictionary-code match table,
/// so the kernels compare int32 codes instead of strings. Codes appended
/// after construction (dictionary growth) fall back to a string compare.
class FilterOperator {
 public:
  FilterOperator(const Table* fact, std::vector<Predicate> predicates);

  /// Keeps only qualifying rows; returns the number kept.
  size_t Apply(std::vector<uint32_t>* rows) const;

  /// Row-at-a-time reference implementation (identical results).
  size_t ApplyScalar(std::vector<uint32_t>* rows) const;

 private:
  /// A predicate bound to its resolved column(s) with precomputed
  /// dictionary-code matches.
  struct Bound {
    const Column* val_col = nullptr;  // the column holding the tested value
    const Column* fk_col = nullptr;   // fact FK column for dim refs
    size_t known = 0;                 // codes covered by code_match
    std::vector<uint8_t> code_match;  // string kinds: per-code verdict,
                                      // padded 4 bytes for SIMD byte gathers
  };

  void ApplyOne(const Predicate& p, const Bound& b,
                std::vector<uint32_t>* rows) const;

  const Table* fact_;
  std::vector<Predicate> predicates_;
  std::vector<Bound> bounds_;
};

/// An aggregation value per fact row: scale * a, or scale * (a op b).
struct ValueExpr {
  enum class Kind { kColumn, kProduct, kDifference };

  static ValueExpr Column(ColumnRef a, double scale = 1.0);
  static ValueExpr Product(ColumnRef a, ColumnRef b, double scale = 1.0);
  static ValueExpr Difference(ColumnRef a, ColumnRef b, double scale = 1.0);

  double Eval(const Table& fact, uint32_t row) const;

  /// Evaluates the expression for a whole selection vector into `out`
  /// (size >= n), resolving the input column(s) once per batch.
  void EvalBatch(const Table& fact, const uint32_t* rows, size_t n,
                 std::vector<uint32_t>* scratch_a,
                 std::vector<uint32_t>* scratch_b, double* out) const;

  Kind kind = Kind::kColumn;
  ColumnRef a;
  ColumnRef b;
  double scale = 1.0;
};

/// Hash group-by with a SUM aggregate. The hot path packs each row's
/// group columns (dictionary codes for strings, offset-encoded values for
/// int64) into one composite uint64 key and accumulates into an
/// open-addressing AggHashTable; keys decode back to the "|"-joined text
/// form when `groups()` is read, so results — key text, ordering, and
/// bit-exact sums (per-group accumulation order is preserved) — match
/// the row-at-a-time path. Group sets that cannot be packed (doubles,
/// > 64 key bits, values outside the bounds seen at layout time) fall
/// back to that scalar path. An empty group list aggregates to one group.
class HashAggregator {
 public:
  HashAggregator(std::vector<ColumnRef> group_by, ValueExpr value);

  void Consume(const Table& fact, const std::vector<uint32_t>& rows);
  /// Row-at-a-time reference implementation (identical results).
  void ConsumeScalar(const Table& fact, const std::vector<uint32_t>& rows);

  /// Merges another aggregator's groups (cross-partition combine).
  void Merge(const HashAggregator& other);

  const std::map<std::string, double>& groups() const {
    FlushPacked();
    return groups_;
  }
  int64_t rows_consumed() const { return rows_consumed_; }
  double TotalSum() const;

  /// The aggregation spec, for building per-morsel partial aggregators
  /// that merge back through Merge() (engine/morsel.h).
  const std::vector<ColumnRef>& group_by() const { return group_by_; }
  const ValueExpr& value() const { return value_; }

 private:
  /// How one group column packs into the composite key.
  struct KeyPart {
    const Column* col = nullptr;     // resolved value column
    const Column* fk_col = nullptr;  // fact FK column for dim refs
    bool is_string = false;
    int64_t base = 0;    // int columns: value bias (min at layout time)
    uint32_t bits = 0;   // key bits consumed by this part
    uint64_t limit = 0;  // max encodable code
  };

  /// (Re)binds the packed-key layout to `fact`; false if this group set
  /// cannot be packed into 64 bits.
  bool EnsureLayout(const Table& fact);
  /// Decodes a packed key back to the textual "|"-joined group key.
  std::string DecodeKey(uint64_t key) const;
  /// Moves all packed accumulators into the textual group map.
  void FlushPacked() const;
  void ConsumeScalarImpl(const Table& fact, const std::vector<uint32_t>& rows);

  std::vector<ColumnRef> group_by_;
  ValueExpr value_;
  mutable std::map<std::string, double> groups_;
  int64_t rows_consumed_ = 0;

  // Packed fast path: layout + table + per-batch scratch (reused).
  std::vector<KeyPart> parts_;
  const Table* layout_fact_ = nullptr;
  bool scalar_mode_ = false;
  mutable AggHashTable table_;
  std::vector<uint64_t> key_scratch_;
  std::vector<double> val_scratch_;
  std::vector<uint32_t> row_scratch_a_;
  std::vector<uint32_t> row_scratch_b_;
  std::vector<uint64_t> hash_scratch_;

  // Dense direct-addressed accumulators: when the packed key space is at
  // most kDenseKeyBits wide, skip hashing entirely and index flat arrays
  // by the packed key. Same row-order accumulation, so still bit-identical
  // to the scalar path; flushed ascending by key.
  static constexpr uint32_t kDenseKeyBits = 16;
  int dense_bits_ = -1;  // >= 0: dense mode for the current layout
  mutable std::vector<double> dense_sum_;
  mutable std::vector<uint8_t> dense_used_;
};

/// One aggregation pipeline over one fact-table shard:
/// scan -> filter -> aggregate. Returns rows scanned.
int64_t RunAggregationPipeline(const Table* fact, const FilterOperator& filter,
                               HashAggregator* aggregator);

/// Same pipeline restricted to rows [begin_row, end_row) — one morsel.
/// end_row is clamped to the table size.
int64_t RunAggregationPipeline(const Table* fact, const FilterOperator& filter,
                               HashAggregator* aggregator, size_t begin_row,
                               size_t end_row);

/// Row-at-a-time reference pipeline (identical results; property tests
/// and microbenchmark baseline).
int64_t RunAggregationPipelineScalar(const Table* fact,
                                     const FilterOperator& filter,
                                     HashAggregator* aggregator);

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_OPERATORS_H_
