#include "engine/hash_index.h"

#include "common/check.h"
#include "engine/agg_hash_table.h"

namespace ecldb::engine {

HashIndex::HashIndex(size_t initial_capacity) {
  size_t cap = 16;
  while (cap < initial_capacity) cap <<= 1;
  slots_.resize(cap);
}

void HashIndex::Reserve(size_t expected_keys) {
  size_t cap = slots_.size();
  while (cap * 7 < expected_keys * 10) cap <<= 1;  // keep load <= 70 %
  if (cap == slots_.size()) return;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(cap, Slot{});
  size_ = 0;
  tombstones_ = 0;
  for (const Slot& s : old) {
    if (s.state == State::kFull) Insert(s.key, s.row);
  }
}

uint64_t HashIndex::Hash(int64_t key) {
  return detail::Mix64(static_cast<uint64_t>(key));
}

size_t HashIndex::Locate(int64_t key) const {
  const size_t mask = slots_.size() - 1;
  size_t i = Hash(key) & mask;
  size_t first_insertable = SIZE_MAX;
  uint64_t probes = 1;
  for (;;) {
    const Slot& s = slots_[i];
    if (s.state == State::kEmpty) {
      probe_total_ += probes;
      ++probe_samples_;
      return ~(first_insertable == SIZE_MAX ? i : first_insertable);
    }
    if (s.state == State::kTombstone) {
      if (first_insertable == SIZE_MAX) first_insertable = i;
    } else if (s.key == key) {
      probe_total_ += probes;
      ++probe_samples_;
      return i;
    }
    i = (i + 1) & mask;
    ++probes;
  }
}

void HashIndex::Grow() {
  // Rehash into a table sized for the *live* entries: erase-heavy churn
  // only clears tombstones instead of ballooning capacity.
  std::vector<Slot> old = std::move(slots_);
  size_t cap = 16;
  while (cap * 7 < (size_ + 1) * 20) cap <<= 1;  // target <= 35 % load
  slots_.assign(cap, Slot{});
  size_ = 0;
  tombstones_ = 0;
  for (const Slot& s : old) {
    if (s.state == State::kFull) Insert(s.key, s.row);
  }
}

bool HashIndex::Insert(int64_t key, uint32_t row) {
  if ((size_ + tombstones_ + 1) * 10 > slots_.size() * 7 || TombstoneHeavy()) {
    Grow();
  }
  const size_t loc = Locate(key);
  if (static_cast<intptr_t>(loc) >= 0) return false;  // exists
  Slot& s = slots_[~loc];
  if (s.state == State::kTombstone) --tombstones_;
  s = Slot{key, row, State::kFull};
  ++size_;
  return true;
}

void HashIndex::Upsert(int64_t key, uint32_t row) {
  if ((size_ + tombstones_ + 1) * 10 > slots_.size() * 7 || TombstoneHeavy()) {
    Grow();
  }
  const size_t loc = Locate(key);
  if (static_cast<intptr_t>(loc) >= 0) {
    slots_[loc].row = row;
    return;
  }
  Slot& s = slots_[~loc];
  if (s.state == State::kTombstone) --tombstones_;
  s = Slot{key, row, State::kFull};
  ++size_;
}

std::optional<uint32_t> HashIndex::Find(int64_t key) const {
  const size_t loc = Locate(key);
  if (static_cast<intptr_t>(loc) < 0) return std::nullopt;
  return slots_[loc].row;
}

bool HashIndex::Erase(int64_t key) {
  const size_t loc = Locate(key);
  if (static_cast<intptr_t>(loc) < 0) return false;
  slots_[loc].state = State::kTombstone;
  --size_;
  ++tombstones_;
  // Erase-heavy churn (e.g. TATP call-forwarding) would otherwise keep
  // probe chains long until the next growth-triggered rehash.
  if (TombstoneHeavy()) Grow();
  return true;
}

double HashIndex::MeanProbeLength() const {
  return probe_samples_ == 0
             ? 0.0
             : static_cast<double>(probe_total_) / static_cast<double>(probe_samples_);
}

}  // namespace ecldb::engine
