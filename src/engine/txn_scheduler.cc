#include "engine/txn_scheduler.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::engine {

TxnScheduler::TxnScheduler(sim::Simulator* simulator, hwsim::Machine* machine,
                           Database* db, const TxnSchedulerParams& params)
    : simulator_(simulator),
      machine_(machine),
      db_(db),
      params_(params),
      workers_(static_cast<size_t>(machine->topology().total_threads())),
      latency_(params.latency_window) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr && db != nullptr);
  simulator_->RegisterAdvancer(
      [this](SimTime t0, SimTime t1) { Advance(t0, t1); });
}

QueryId TxnScheduler::Submit(const QuerySpec& spec) {
  ECLDB_CHECK(spec.profile != nullptr);
  ECLDB_CHECK(!spec.work.empty());
  Txn txn;
  txn.id = next_id_++;
  txn.arrival = simulator_->now();
  txn.profile = spec.profile;
  // No partition parallelism: the whole transaction runs on one worker.
  for (const PartitionWork& w : spec.work) txn.remaining_ops += w.ops;
  queue_.push_back(txn);
  ++submitted_;
  return txn.id;
}

const hwsim::WorkProfile* TxnScheduler::AdjustedProfile(
    const hwsim::WorkProfile* base, double spin) {
  hwsim::WorkProfile& adj = adjusted_[base];
  adj = *base;
  adj.name = base->name + "+locks";
  const double inflate = 1.0 / std::max(1.0 - params_.max_spin, 1.0 - spin);
  // Spinning retires instructions without completing operations: both the
  // instruction count and the core time per completed operation inflate.
  adj.instr_per_op = base->instr_per_op * inflate;
  adj.cpi = base->cpi;  // spin loops retire ~1 instruction per cycle
  // Lost locality: remote accesses raise the latency-bound component.
  adj.mem_accesses_per_op =
      base->mem_accesses_per_op * params_.remote_access_factor;
  return &adj;
}

double TxnScheduler::TakeUtilization(SocketId socket) {
  const hwsim::Topology& topo = machine_->topology();
  double busy = 0.0, active = 0.0;
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    if (topo.SocketOfThread(t) != socket) continue;
    WorkerState& w = workers_[static_cast<size_t>(t)];
    busy += w.busy_seconds;
    active += w.active_seconds;
    w.busy_seconds = 0.0;
    w.active_seconds = 0.0;
  }
  return active > 0.0 ? std::min(1.0, busy / active) : 0.0;
}

void TxnScheduler::Advance(SimTime t0, SimTime t1) {
  const SimTime now = t1;
  const double dt_s = ToSeconds(t1 - t0);
  const hwsim::Topology& topo = machine_->topology();

  // Count busy workers to derive this slice's lock contention.
  int busy_workers = 0;
  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    const hwsim::SocketConfig& cfg =
        machine_->requested_config(topo.SocketOfThread(t));
    const bool active = cfg.ThreadActive(topo.LocalThreadOfThread(t));
    WorkerState& w = workers_[static_cast<size_t>(t)];
    if (!active) {
      // Preempted mid-transaction: the transaction waits (locks held by a
      // sleeping thread would be a correctness hazard in a real system;
      // the model simply stalls it).
      machine_->SetThreadLoad(t, nullptr, 0.0);
      (void)machine_->TakeCompletedOps(t);
      continue;
    }
    if (w.busy || !queue_.empty()) ++busy_workers;
  }
  const double x = std::max(0, busy_workers - 1);
  const double spin = std::min(
      params_.max_spin,
      1.0 - 1.0 / (1.0 + params_.spin_linear * x + params_.spin_quad * x * x));
  last_spin_ = spin;

  for (HwThreadId t = 0; t < topo.total_threads(); ++t) {
    const hwsim::SocketConfig& cfg =
        machine_->requested_config(topo.SocketOfThread(t));
    if (!cfg.ThreadActive(topo.LocalThreadOfThread(t))) continue;
    WorkerState& w = workers_[static_cast<size_t>(t)];
    w.active_seconds += dt_s;

    double credit = machine_->TakeCompletedOps(t);
    const double rate = machine_->CurrentRate(t);
    const double full_credit = credit;
    while (credit > 1e-9) {
      if (!w.busy) {
        if (queue_.empty()) break;
        w.current = queue_.front();
        queue_.pop_front();
        w.busy = true;
      }
      const double spend = std::min(credit, w.current.remaining_ops);
      w.current.remaining_ops -= spend;
      credit -= spend;
      if (w.current.remaining_ops <= 1e-9) {
        latency_.RecordCompletion(w.current.arrival, now);
        w.busy = false;
      }
    }
    if (rate > 0.0 && full_credit > 0.0) {
      w.busy_seconds += std::min(dt_s, (full_credit - credit) / rate);
    }

    // Offer next-slice work with the contention-adjusted profile.
    const hwsim::WorkProfile* base =
        w.busy ? w.current.profile
               : (queue_.empty() ? nullptr : queue_.front().profile);
    if (base != nullptr) {
      machine_->SetThreadLoad(t, AdjustedProfile(base, spin), 1.0);
    } else {
      machine_->SetThreadLoad(t, nullptr, 0.0);
    }
  }
}

}  // namespace ecldb::engine
