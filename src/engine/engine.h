#ifndef ECLDB_ENGINE_ENGINE_H_
#define ECLDB_ENGINE_ENGINE_H_

#include <memory>

#include "common/types.h"
#include "engine/database.h"
#include "engine/migration.h"
#include "engine/morsel.h"
#include "engine/placement.h"
#include "engine/query.h"
#include "engine/scheduler.h"
#include "hwsim/machine.h"
#include "msg/message_layer.h"
#include "sim/simulator.h"

namespace ecldb::engine {

struct EngineParams {
  /// Number of data partitions; 0 means one per hardware thread (the
  /// paper's 1:1 worker-partition ratio).
  int num_partitions = 0;
  msg::MessageLayerParams message_layer;
  SchedulerParams scheduler;
  MigrationParams migration;
  /// Extra real threads for morsel-driven intra-query parallelism on the
  /// functional executor path (0: no pool, serial pipelines). These are
  /// host threads of the embedding process, not simulated workers — the
  /// fluid-simulation analogue is SchedulerParams::morsel_ops /
  /// PartitionWork::morsels.
  int morsel_threads = 0;
  /// Optional telemetry context, propagated to the message layer, the
  /// scheduler, and the migration coordinator (overrides their individual
  /// params fields when set).
  telemetry::Telemetry* telemetry = nullptr;
};

/// The data-oriented in-memory DBMS: partitioned storage, the hierarchical
/// message passing layer, the elastic worker pool driven by the fluid
/// scheduler, and the epoch-versioned placement with its live-migration
/// coordinator. Construct after the Machine (advancer ordering).
class Engine {
 public:
  Engine(sim::Simulator* simulator, hwsim::Machine* machine,
         const EngineParams& params);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  PlacementMap& placement() { return *placement_; }
  const PlacementMap& placement() const { return *placement_; }
  MigrationCoordinator& migrator() { return *migrator_; }
  const MigrationCoordinator& migrator() const { return *migrator_; }
  msg::MessageLayer& message_layer() { return *layer_; }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  hwsim::Machine& machine() { return *machine_; }

  /// Submits a query for execution; latency is tracked automatically.
  QueryId Submit(const QuerySpec& spec) { return scheduler_->Submit(spec); }

  /// Utilization of a socket since the last call (ECL input).
  double TakeSocketUtilization(SocketId socket) {
    return scheduler_->TakeUtilization(socket);
  }

  /// Message-layer backpressure and forwarding counters of a socket.
  msg::MessageLayer::SocketStats socket_msg_stats(SocketId socket) const {
    return layer_->socket_stats(socket);
  }

  LatencyTracker& latency() { return scheduler_->latency(); }
  const LatencyTracker& latency() const { return scheduler_->latency(); }

  /// Morsel worker pool for functional pipelines; nullptr when
  /// EngineParams::morsel_threads is 0.
  MorselPool* morsel_pool() { return morsel_pool_.get(); }

 private:
  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  std::unique_ptr<PlacementMap> placement_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<msg::MessageLayer> layer_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<MigrationCoordinator> migrator_;
  std::unique_ptr<MorselPool> morsel_pool_;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_ENGINE_H_
