#ifndef ECLDB_ENGINE_SIMD_H_
#define ECLDB_ENGINE_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace ecldb::engine::simd {

/// Instruction-set level of the engine's typed kernels. The build compiles
/// the scalar kernels unconditionally; the AVX2 kernels are compiled into
/// their own translation unit (with -mavx2) when the `ECLDB_SIMD` CMake
/// option is on and the target is x86-64. Which level actually runs is
/// decided once at startup from CPU detection (`__builtin_cpu_supports`),
/// overridable per process via the `ECLDB_SIMD` environment variable
/// ("off"/"scalar" forces the fallback) or per test via SetLevelOverride.
enum class Level { kScalar = 0, kAvx2 = 1 };

/// Highest level compiled into this binary.
Level CompiledLevel();

/// Level the kernel dispatch currently resolves to.
Level ActiveLevel();

/// Forces the dispatch level (tests compare SIMD and scalar kernels within
/// one binary); nullopt restores detection. Levels above CompiledLevel()
/// are clamped. Not thread-safe against concurrently running kernels —
/// call between pipelines only.
void SetLevelOverride(std::optional<Level> level);

/// The dispatched kernel families, for per-kernel dispatch accounting.
enum class KernelId : int {
  kFilterIntRange = 0,   // selection compaction by int64 range
  kFilterCodeMatch = 1,  // selection compaction by dictionary-code verdict
  kGatherFk = 2,         // foreign-key row gather (fact row -> dim row)
  kPackKey = 3,          // packed group-key append (codes or offset ints)
  kHashKeys = 4,         // murmur3 finalizer over a key batch
  kAggProbe = 5,         // batched aggregate-table find-or-insert
  kEvalValue = 6,        // batched value-expression evaluation
};
inline constexpr int kNumKernels = 7;

const char* KernelName(KernelId id);

/// Per-kernel dispatch counters: how many batch calls resolved to the SIMD
/// implementation vs the scalar fallback. Process-global and atomic (morsel
/// workers bump them concurrently); totals are deterministic for a fixed
/// workload regardless of worker count. Telemetry exports deltas.
int64_t SimdDispatches(KernelId id);
int64_t ScalarDispatches(KernelId id);

namespace detail {
struct DispatchCounters {
  std::atomic<int64_t> simd[kNumKernels] = {};
  std::atomic<int64_t> scalar[kNumKernels] = {};
};
DispatchCounters& Counters();
}  // namespace detail

/// Records one batch-level kernel dispatch (relaxed atomic add).
inline void CountDispatch(KernelId id, bool used_simd) {
  auto& c = detail::Counters();
  const int i = static_cast<int>(id);
  if (used_simd) {
    c.simd[i].fetch_add(1, std::memory_order_relaxed);
  } else {
    c.scalar[i].fetch_add(1, std::memory_order_relaxed);
  }
}

/// String-predicate fallback for dictionary codes appended after the match
/// table was built (dictionary growth): returns the verdict for `code`.
using UnknownCodeFn = bool (*)(const void* ctx, int32_t code);

/// The kernel function table. All kernels are pure functions over raw
/// column arrays; `rows` is a selection vector of row ids. Compaction
/// kernels write the surviving rows to `out` (which may alias `rows`:
/// writes never overtake reads) and return the kept count.
struct KernelTable {
  /// Keeps rows with lo <= v[row] <= hi.
  size_t (*filter_int_range)(const int64_t* v, const uint32_t* rows, size_t n,
                             int64_t lo, int64_t hi, uint32_t* out);
  /// Keeps rows with lo <= v[fk[row] - 1] <= hi (direct-addressed dim).
  size_t (*filter_int_range_fk)(const int64_t* v, const int64_t* fk,
                                const uint32_t* rows, size_t n, int64_t lo,
                                int64_t hi, uint32_t* out);
  /// Keeps rows whose dictionary code passes the verdict table. `match`
  /// must be padded with >= 4 readable bytes past `known` (gather slack).
  size_t (*filter_code_match)(const int32_t* codes, const uint32_t* rows,
                              size_t n, const uint8_t* match, size_t known,
                              UnknownCodeFn unknown, const void* ctx,
                              uint32_t* out);
  size_t (*filter_code_match_fk)(const int32_t* codes, const int64_t* fk,
                                 const uint32_t* rows, size_t n,
                                 const uint8_t* match, size_t known,
                                 UnknownCodeFn unknown, const void* ctx,
                                 uint32_t* out);
  /// out[i] = uint32(fk[rows[i]] - 1).
  void (*gather_fk)(const int64_t* fk, const uint32_t* rows, size_t n,
                    uint32_t* out);
  /// keys[i] = keys[i] << bits | codes[rows[i]]; false if any code exceeds
  /// `limit` (stale packed layout; partially-written keys are discarded).
  bool (*pack_codes)(uint64_t* keys, const int32_t* codes,
                     const uint32_t* rows, size_t n, uint32_t bits,
                     uint64_t limit);
  /// keys[i] = keys[i] << bits | (vals[rows[i]] - base), unsigned;
  /// false if any offset exceeds `limit`.
  bool (*pack_ints)(uint64_t* keys, const int64_t* vals, const uint32_t* rows,
                    size_t n, uint32_t bits, uint64_t base, uint64_t limit);
  /// hashes[i] = Mix64(keys[i]).
  void (*hash_keys)(const uint64_t* keys, size_t n, uint64_t* hashes);
  /// out[i] = scale * double(a[ra[i]]). Exact only while every input is in
  /// [-2^51, 2^51]; the caller guards with the column's tracked bounds.
  void (*eval_column)(const int64_t* a, const uint32_t* ra, size_t n,
                      double scale, double* out);
  /// out[i] = scale * double(a[ra[i]]) * double(b[rb[i]]).
  void (*eval_product)(const int64_t* a, const uint32_t* ra, const int64_t* b,
                       const uint32_t* rb, size_t n, double scale, double* out);
  /// out[i] = scale * (double(a[ra[i]]) - double(b[rb[i]])).
  void (*eval_difference)(const int64_t* a, const uint32_t* ra,
                          const int64_t* b, const uint32_t* rb, size_t n,
                          double scale, double* out);
};

/// The scalar reference kernels (always available).
const KernelTable& ScalarKernels();

/// The kernels of the active level. Stable for the process lifetime unless
/// SetLevelOverride intervenes.
const KernelTable& ActiveKernels();

}  // namespace ecldb::engine::simd

#endif  // ECLDB_ENGINE_SIMD_H_
