// AVX2 implementations of the engine kernels. This translation unit is only
// added to the build when the ECLDB_SIMD option is on and the target is
// x86-64; it is compiled with -mavx2 while the rest of the engine stays at
// the baseline ISA, so the dispatcher (simd.cc) must gate every call on CPU
// detection.
//
// Semantics contract (checked by tests/engine_simd_test.cc): identical kept
// rows / key bits to kernels_scalar.cc, and bit-identical doubles. The
// double kernels rely on the int64 inputs fitting in +/-2^51 so the
// magic-number int->double conversion is exact; callers guard with the
// column's tracked bounds before dispatching here.

#include "engine/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <array>

namespace ecldb::engine::simd {
namespace {

// kCompact[m] lists the set-bit positions of mask m (then zero-padding):
// the permutation that moves surviving lanes to the front.
constexpr std::array<std::array<uint32_t, 8>, 256> MakeCompactTable() {
  std::array<std::array<uint32_t, 8>, 256> t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) t[static_cast<size_t>(m)][static_cast<size_t>(k++)] =
          static_cast<uint32_t>(b);
    }
  }
  return t;
}
alignas(32) constexpr std::array<std::array<uint32_t, 8>, 256> kCompact =
    MakeCompactTable();

// Gathers v[idx] for the low/high 4 of 8 int32 indices.
inline __m256i Gather64Lo(const int64_t* v, __m256i idx8) {
  return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(v),
                                _mm256_castsi256_si128(idx8), 8);
}
inline __m256i Gather64Hi(const int64_t* v, __m256i idx8) {
  return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(v),
                                _mm256_extracti128_si256(idx8, 1), 8);
}

// 8-bit keep mask for lo <= x <= hi (signed 64-bit), low nibble from xlo.
inline int RangeMask(__m256i xlo, __m256i xhi, __m256i lov, __m256i hiv) {
  const __m256i below_lo0 = _mm256_cmpgt_epi64(lov, xlo);
  const __m256i above_hi0 = _mm256_cmpgt_epi64(xlo, hiv);
  const __m256i below_lo1 = _mm256_cmpgt_epi64(lov, xhi);
  const __m256i above_hi1 = _mm256_cmpgt_epi64(xhi, hiv);
  const int bad0 = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_or_si256(below_lo0, above_hi0)));
  const int bad1 = _mm256_movemask_pd(
      _mm256_castsi256_pd(_mm256_or_si256(below_lo1, above_hi1)));
  return ~(bad0 | (bad1 << 4)) & 0xff;
}

// Writes the lanes of `rowsv` selected by `mask` to out[kept...]. The full
// 8-lane store is in bounds because kept <= chunk start and the chunk start
// + 8 <= n (tails are handled scalar).
inline size_t CompactStore(__m256i rowsv, int mask, uint32_t* out,
                           size_t kept) {
  const __m256i perm = _mm256_load_si256(reinterpret_cast<const __m256i*>(
      kCompact[static_cast<size_t>(mask)].data()));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + kept),
                      _mm256_permutevar8x32_epi32(rowsv, perm));
  return kept + static_cast<size_t>(__builtin_popcount(
                    static_cast<unsigned>(mask)));
}

size_t FilterIntRangeAvx2(const int64_t* v, const uint32_t* rows, size_t n,
                          int64_t lo, int64_t hi, uint32_t* out) {
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const int mask = RangeMask(Gather64Lo(v, rowsv), Gather64Hi(v, rowsv),
                               lov, hiv);
    kept = CompactStore(rowsv, mask, out, kept);
  }
  for (; i < n; ++i) {
    const uint32_t r = rows[i];
    const int64_t x = v[r];
    if (x >= lo && x <= hi) out[kept++] = r;
  }
  return kept;
}

size_t FilterIntRangeFkAvx2(const int64_t* v, const int64_t* fk,
                            const uint32_t* rows, size_t n, int64_t lo,
                            int64_t hi, uint32_t* out) {
  const __m256i lov = _mm256_set1_epi64x(lo);
  const __m256i hiv = _mm256_set1_epi64x(hi);
  const __m256i one = _mm256_set1_epi64x(1);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i k0 = _mm256_sub_epi64(Gather64Lo(fk, rowsv), one);
    const __m256i k1 = _mm256_sub_epi64(Gather64Hi(fk, rowsv), one);
    const __m256i x0 =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(v), k0, 8);
    const __m256i x1 =
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(v), k1, 8);
    kept = CompactStore(rowsv, RangeMask(x0, x1, lov, hiv), out, kept);
  }
  for (; i < n; ++i) {
    const uint32_t r = rows[i];
    const int64_t x = v[fk[r] - 1];
    if (x >= lo && x <= hi) out[kept++] = r;
  }
  return kept;
}

inline bool CodeVerdict(int32_t c, const uint8_t* match, size_t known,
                        UnknownCodeFn unknown, const void* ctx) {
  return static_cast<size_t>(c) < known ? match[static_cast<size_t>(c)] != 0
                                        : unknown(ctx, c);
}

// The verdict-table byte gather reads 4 bytes at match+code, which is why
// the table carries >= 4 bytes of padding past `known`. Chunks touching
// codes the table predates (dictionary growth) fall back per row.
size_t FilterCodeMatchAvx2(const int32_t* codes, const uint32_t* rows,
                           size_t n, const uint8_t* match, size_t known,
                           UnknownCodeFn unknown, const void* ctx,
                           uint32_t* out) {
  const __m256i known_max =
      _mm256_set1_epi32(static_cast<int32_t>(known) - 1);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i codesv =
        _mm256_i32gather_epi32(codes, rowsv, 4);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(codesv, known_max))) != 0) {
      // Chunk touches codes the verdict table predates: per-row fallback.
      for (size_t j = i; j < i + 8; ++j) {
        const uint32_t r = rows[j];
        if (CodeVerdict(codes[r], match, known, unknown, ctx)) out[kept++] = r;
      }
      continue;
    }
    const __m256i bytes = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(match), codesv, 1);
    const __m256i verdict = _mm256_and_si256(bytes, _mm256_set1_epi32(0xff));
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(
        _mm256_cmpgt_epi32(verdict, _mm256_setzero_si256())));
    kept = CompactStore(rowsv, mask, out, kept);
  }
  for (; i < n; ++i) {
    const uint32_t r = rows[i];
    if (CodeVerdict(codes[r], match, known, unknown, ctx)) out[kept++] = r;
  }
  return kept;
}

size_t FilterCodeMatchFkAvx2(const int32_t* codes, const int64_t* fk,
                             const uint32_t* rows, size_t n,
                             const uint8_t* match, size_t known,
                             UnknownCodeFn unknown, const void* ctx,
                             uint32_t* out) {
  const __m256i known_max =
      _mm256_set1_epi32(static_cast<int32_t>(known) - 1);
  const __m256i one = _mm256_set1_epi64x(1);
  size_t kept = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i k0 = _mm256_sub_epi64(Gather64Lo(fk, rowsv), one);
    const __m256i k1 = _mm256_sub_epi64(Gather64Hi(fk, rowsv), one);
    const __m128i c0 = _mm256_i64gather_epi32(codes, k0, 4);
    const __m128i c1 = _mm256_i64gather_epi32(codes, k1, 4);
    const __m256i codesv = _mm256_set_m128i(c1, c0);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(codesv, known_max))) != 0) {
      for (size_t j = i; j < i + 8; ++j) {
        const uint32_t r = rows[j];
        const int32_t c = codes[fk[r] - 1];
        if (CodeVerdict(c, match, known, unknown, ctx)) out[kept++] = r;
      }
      continue;
    }
    const __m256i bytes = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(match), codesv, 1);
    const __m256i verdict = _mm256_and_si256(bytes, _mm256_set1_epi32(0xff));
    const int mask = _mm256_movemask_ps(_mm256_castsi256_ps(
        _mm256_cmpgt_epi32(verdict, _mm256_setzero_si256())));
    kept = CompactStore(rowsv, mask, out, kept);
  }
  for (; i < n; ++i) {
    const uint32_t r = rows[i];
    const int32_t c = codes[fk[r] - 1];
    if (CodeVerdict(c, match, known, unknown, ctx)) out[kept++] = r;
  }
  return kept;
}

// Narrows two 4x64 vectors (lo lanes 0..3, hi lanes 4..7) to one 8x32.
inline __m256i Narrow64To32(__m256i lo, __m256i hi) {
  const __m256i idx_lo = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i idx_hi = _mm256_setr_epi32(0, 0, 0, 0, 0, 2, 4, 6);
  const __m256i a = _mm256_permutevar8x32_epi32(lo, idx_lo);
  const __m256i b = _mm256_permutevar8x32_epi32(hi, idx_hi);
  return _mm256_blend_epi32(a, b, 0xf0);
}

void GatherFkAvx2(const int64_t* fk, const uint32_t* rows, size_t n,
                  uint32_t* out) {
  const __m256i one = _mm256_set1_epi64x(1);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i k0 = _mm256_sub_epi64(Gather64Lo(fk, rowsv), one);
    const __m256i k1 = _mm256_sub_epi64(Gather64Hi(fk, rowsv), one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        Narrow64To32(k0, k1));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<uint32_t>(fk[rows[i]] - 1);
  }
}

bool PackCodesAvx2(uint64_t* keys, const int32_t* codes, const uint32_t* rows,
                   size_t n, uint32_t bits, uint64_t limit) {
  // Codes are non-negative int32, so a signed compare against
  // min(limit, INT32_MAX) detects every out-of-range code.
  const int32_t lim32 = limit > static_cast<uint64_t>(INT32_MAX)
                            ? INT32_MAX
                            : static_cast<int32_t>(limit);
  const __m256i limv = _mm256_set1_epi32(lim32);
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(bits));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i codesv = _mm256_i32gather_epi32(codes, rowsv, 4);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(
            _mm256_cmpgt_epi32(codesv, limv))) != 0) {
      return false;
    }
    const __m256i c0 = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(codesv));
    const __m256i c1 =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(codesv, 1));
    const __m256i k0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i k1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(keys + i),
        _mm256_or_si256(_mm256_sll_epi64(k0, shift), c0));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(keys + i + 4),
        _mm256_or_si256(_mm256_sll_epi64(k1, shift), c1));
  }
  for (; i < n; ++i) {
    const uint64_t c = static_cast<uint32_t>(codes[rows[i]]);
    if (c > limit) return false;
    keys[i] = (keys[i] << bits) | c;
  }
  return true;
}

bool PackIntsAvx2(uint64_t* keys, const int64_t* vals, const uint32_t* rows,
                  size_t n, uint32_t bits, uint64_t base, uint64_t limit) {
  const __m256i basev = _mm256_set1_epi64x(static_cast<int64_t>(base));
  const __m256i sign = _mm256_set1_epi64x(
      static_cast<int64_t>(0x8000000000000000ull));
  const __m256i ulimv = _mm256_set1_epi64x(
      static_cast<int64_t>(limit ^ 0x8000000000000000ull));
  const __m128i shift = _mm_cvtsi32_si128(static_cast<int>(bits));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    const __m256i c0 = _mm256_sub_epi64(Gather64Lo(vals, rowsv), basev);
    const __m256i c1 = _mm256_sub_epi64(Gather64Hi(vals, rowsv), basev);
    // Unsigned c > limit via the sign-bit flip trick.
    const __m256i bad0 =
        _mm256_cmpgt_epi64(_mm256_xor_si256(c0, sign), ulimv);
    const __m256i bad1 =
        _mm256_cmpgt_epi64(_mm256_xor_si256(c1, sign), ulimv);
    if (_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_or_si256(bad0, bad1))) != 0) {
      return false;
    }
    const __m256i k0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i k1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i + 4));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(keys + i),
        _mm256_or_si256(_mm256_sll_epi64(k0, shift), c0));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(keys + i + 4),
        _mm256_or_si256(_mm256_sll_epi64(k1, shift), c1));
  }
  for (; i < n; ++i) {
    const uint64_t c = static_cast<uint64_t>(vals[rows[i]]) - base;
    if (c > limit) return false;
    keys[i] = (keys[i] << bits) | c;
  }
  return true;
}

// 64x64 -> low 64 multiply from 32-bit partial products.
inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

void HashKeysAvx2(const uint64_t* keys, size_t n, uint64_t* hashes) {
  const __m256i m1 = _mm256_set1_epi64x(
      static_cast<int64_t>(0xff51afd7ed558ccdull));
  const __m256i m2 = _mm256_set1_epi64x(
      static_cast<int64_t>(0xc4ceb9fe1a85ec53ull));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = Mul64(x, m1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = Mul64(x, m2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(hashes + i), x);
  }
  for (; i < n; ++i) {
    uint64_t x = keys[i];
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    hashes[i] = x;
  }
}

// Exact int64 -> double for |v| < 2^51 (magic-number trick); matches the
// scalar static_cast bit-for-bit in that range.
inline __m256d I64ToF64(__m256i v) {
  const __m256i magic_i = _mm256_set1_epi64x(0x4338000000000000ll);
  const __m256d magic_d = _mm256_set1_pd(0x1.8p52);
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(v, magic_i)),
                       magic_d);
}

void EvalColumnAvx2(const int64_t* a, const uint32_t* ra, size_t n,
                    double scale, double* out) {
  const __m256d sv = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rowsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ra + i));
    const __m256d d0 = I64ToF64(Gather64Lo(a, rowsv));
    const __m256d d1 = I64ToF64(Gather64Hi(a, rowsv));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(sv, d0));
    _mm256_storeu_pd(out + i + 4, _mm256_mul_pd(sv, d1));
  }
  for (; i < n; ++i) {
    out[i] = scale * static_cast<double>(a[ra[i]]);
  }
}

void EvalProductAvx2(const int64_t* a, const uint32_t* ra, const int64_t* b,
                     const uint32_t* rb, size_t n, double scale, double* out) {
  const __m256d sv = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rav =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ra + i));
    const __m256i rbv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rb + i));
    const __m256d a0 = I64ToF64(Gather64Lo(a, rav));
    const __m256d a1 = I64ToF64(Gather64Hi(a, rav));
    const __m256d b0 = I64ToF64(Gather64Lo(b, rbv));
    const __m256d b1 = I64ToF64(Gather64Hi(b, rbv));
    // Operand order matches the scalar path: (scale * a) * b.
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_mul_pd(sv, a0), b0));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_mul_pd(_mm256_mul_pd(sv, a1), b1));
  }
  for (; i < n; ++i) {
    out[i] = scale * static_cast<double>(a[ra[i]]) *
             static_cast<double>(b[rb[i]]);
  }
}

void EvalDifferenceAvx2(const int64_t* a, const uint32_t* ra,
                        const int64_t* b, const uint32_t* rb, size_t n,
                        double scale, double* out) {
  const __m256d sv = _mm256_set1_pd(scale);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i rav =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ra + i));
    const __m256i rbv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rb + i));
    const __m256d a0 = I64ToF64(Gather64Lo(a, rav));
    const __m256d a1 = I64ToF64(Gather64Hi(a, rav));
    const __m256d b0 = I64ToF64(Gather64Lo(b, rbv));
    const __m256d b1 = I64ToF64(Gather64Hi(b, rbv));
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(sv, _mm256_sub_pd(a0, b0)));
    _mm256_storeu_pd(out + i + 4,
                     _mm256_mul_pd(sv, _mm256_sub_pd(a1, b1)));
  }
  for (; i < n; ++i) {
    out[i] = scale * (static_cast<double>(a[ra[i]]) -
                      static_cast<double>(b[rb[i]]));
  }
}

}  // namespace

const KernelTable& Avx2Kernels() {
  static const KernelTable table = {
      FilterIntRangeAvx2,   FilterIntRangeFkAvx2, FilterCodeMatchAvx2,
      FilterCodeMatchFkAvx2, GatherFkAvx2,        PackCodesAvx2,
      PackIntsAvx2,         HashKeysAvx2,         EvalColumnAvx2,
      EvalProductAvx2,      EvalDifferenceAvx2,
  };
  return table;
}

}  // namespace ecldb::engine::simd

#else  // !defined(__AVX2__)

// The build system only compiles this TU with -mavx2; a stray inclusion
// without it would silently dispatch scalar code under the AVX2 name.
#error "kernels_avx2.cc must be compiled with -mavx2"

#endif
