#ifndef ECLDB_ENGINE_CLUSTER_ENGINE_H_
#define ECLDB_ENGINE_CLUSTER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "engine/engine.h"
#include "engine/placement.h"
#include "engine/query.h"
#include "hwsim/cluster.h"
#include "sim/simulator.h"

namespace ecldb::engine {

struct ClusterEngineParams {
  /// Per-node engine parameters. num_partitions and telemetry are managed
  /// by the cluster engine (every node engine hosts the full global
  /// partition range; telemetry is node-prefixed).
  EngineParams engine;
  /// Global partition count; 0 = one per hardware thread summed over all
  /// nodes.
  int num_partitions = 0;
  /// Node-level migration knobs: bytes_per_op / min_shard_bytes price the
  /// local drain+copy, check_interval paces the handover poll. The copy
  /// then crosses the network at NIC speed instead of QPI speed.
  MigrationParams migration;
  /// Stale-epoch forward chains longer than this fail the sub-query with
  /// FailReason::kForwardCap instead of hopping again — a livelock guard
  /// for routing under concurrent migrations (each hop re-resolves the
  /// current placement, so in practice chains are short; the cap bounds
  /// the pathological case without dropping work silently).
  int max_forward_hops = 16;
  telemetry::Telemetry* telemetry = nullptr;
};

/// The rack-scale engine: one full Engine per node plus a node-level
/// PlacementMap lifting the global resource address to (node, socket).
///
/// Routing is two-stage. The cluster placement maps a partition to its
/// home node; the node's own placement then maps it to a socket. A query
/// entering at node E splits into per-home-node groups: the local group
/// submits directly, remote groups ship through the network model and
/// re-resolve the cluster placement on arrival — if a node-level rehome
/// committed while the message was on the wire, the stale delivery is
/// counted and forwarded another hop, mirroring the epoch-stale
/// forwarding of the in-box message layer.
///
/// Node-level migration extends drain→copy→rehome across the network:
/// the drain and the local copy cost ride the source engine's partition
/// queue exactly like an in-box migration (FIFO drain barrier), the copy
/// then crosses the network at NIC bandwidth, and the commit re-homes the
/// partition at cluster scope. The source node keeps serving whatever was
/// queued behind the drain barrier — no queue object crosses nodes, so no
/// operation is dropped or double-counted. If the destination powered
/// down while the copy was on the wire, the migration cancels instead of
/// committing (the source never stopped being the home, so nothing is
/// lost).
class ClusterEngine {
 public:
  ClusterEngine(sim::Simulator* simulator, hwsim::Cluster* cluster,
                const ClusterEngineParams& params);

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  int num_nodes() const { return cluster_->num_nodes(); }
  int num_partitions() const { return placement_->num_partitions(); }
  hwsim::Cluster& cluster() { return *cluster_; }
  /// Node-level placement: "sockets" of this map are nodes.
  PlacementMap& placement() { return *placement_; }
  const PlacementMap& placement() const { return *placement_; }
  Engine& node_engine(NodeId n) { return *engines_[static_cast<size_t>(n)]; }
  const Engine& node_engine(NodeId n) const {
    return *engines_[static_cast<size_t>(n)];
  }

  /// Submits a query entering the system at `entry` (the node the client
  /// is connected to). Work for partitions homed on other nodes ships
  /// through the network model. Network flight time delays execution but
  /// is not part of the tracked query latency (per-node trackers time
  /// from local arrival).
  void Submit(NodeId entry, const QuerySpec& spec);

  /// Starts migrating partition `p` to node `to`. Returns false (no-op)
  /// when `p` is already migrating at node scope, `to` is its home, or
  /// either endpoint is not on.
  bool StartMigration(PartitionId p, NodeId to);

  /// Whether any node-scope migration has `n` as source or destination
  /// (such a node must not power down).
  bool NodeInvolvedInMigration(NodeId n) const;

  /// Crash recovery (fault injector, after hwsim::Cluster::Crash(n)):
  ///  1. cancels every node-scope migration with `n` as an endpoint (the
  ///     pending drain-poll / copy-delivery events no-op on the cancelled
  ///     state),
  ///  2. fails every query inflight on `n` with FailReason::kNodeCrash
  ///     (typed errors reach the client through the failure callback),
  ///  3. re-homes each lost partition onto the available survivor with the
  ///     fewest partitions (lowest id on ties) via an epoch bump, and
  ///     charges an internal shard re-copy from the durable placement
  ///     truth on the new home's partition queue.
  /// In-flight network messages addressed to `n` are not lost: their
  /// delivery re-resolves the (bumped) placement and forwards onward.
  /// With no available survivor only steps 1–2 run; partitions stay homed
  /// on the dead node until one recovers.
  void OnNodeCrash(NodeId n);

  /// Client-side failure fan-in: installed on every node scheduler, and
  /// invoked directly for cluster-level forward-cap drops.
  void SetQueryFailureCallback(Scheduler::FailureCallback cb);

  /// Fluid backlog queued on `n` across all its sockets (wake signal).
  double BacklogOps(NodeId n) const;

  /// Completed (non-internal) queries summed over all node engines.
  int64_t CompletedQueries() const;

  int64_t remote_sends() const { return remote_sends_; }
  int64_t stale_forwards() const { return stale_forwards_; }
  int active_migrations() const { return active_migrations_; }
  int64_t migrations_started() const { return migrations_started_; }
  int64_t migrations_completed() const { return migrations_completed_; }
  int64_t migrations_cancelled() const { return migrations_cancelled_; }
  double bytes_moved() const { return bytes_moved_; }

  /// Non-internal queries failed across all node schedulers plus
  /// cluster-level forward-cap drops.
  int64_t QueriesFailed() const;
  int64_t forward_drops() const { return forward_drops_; }
  int64_t crash_recoveries() const { return crash_recoveries_; }
  double recovery_bytes() const { return recovery_bytes_; }

 private:
  /// Submits a single-home-node sub-query on that node's engine.
  void SubmitLocal(NodeId n, QuerySpec sub);
  /// Ships a sub-query over the network; `forward` marks a stale hop.
  void Ship(NodeId from, NodeId to, QuerySpec sub, bool forward);
  /// Re-resolves the cluster placement for an arriving sub-query.
  void Route(NodeId at, QuerySpec sub);
  void CheckDrain(PartitionId p, QueryId copy_query, double bytes);
  void CommitOrCancel(PartitionId p, double bytes);

  sim::Simulator* simulator_;
  hwsim::Cluster* cluster_;
  ClusterEngineParams params_;
  std::unique_ptr<PlacementMap> placement_;
  std::vector<std::unique_ptr<Engine>> engines_;

  int64_t remote_sends_ = 0;
  int64_t stale_forwards_ = 0;
  int active_migrations_ = 0;
  int64_t migrations_started_ = 0;
  int64_t migrations_completed_ = 0;
  int64_t migrations_cancelled_ = 0;
  double bytes_moved_ = 0.0;
  int64_t forward_drops_ = 0;
  int64_t crash_recoveries_ = 0;
  double recovery_bytes_ = 0.0;
  Scheduler::FailureCallback failure_callback_;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_CLUSTER_ENGINE_H_
