#ifndef ECLDB_ENGINE_CLUSTER_ENGINE_H_
#define ECLDB_ENGINE_CLUSTER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "engine/engine.h"
#include "engine/placement.h"
#include "engine/query.h"
#include "hwsim/cluster.h"
#include "sim/simulator.h"

namespace ecldb::engine {

struct ClusterEngineParams {
  /// Per-node engine parameters. num_partitions and telemetry are managed
  /// by the cluster engine (every node engine hosts the full global
  /// partition range; telemetry is node-prefixed).
  EngineParams engine;
  /// Global partition count; 0 = one per hardware thread summed over all
  /// nodes.
  int num_partitions = 0;
  /// Node-level migration knobs: bytes_per_op / min_shard_bytes price the
  /// local drain+copy, check_interval paces the handover poll. The copy
  /// then crosses the network at NIC speed instead of QPI speed.
  MigrationParams migration;
  telemetry::Telemetry* telemetry = nullptr;
};

/// The rack-scale engine: one full Engine per node plus a node-level
/// PlacementMap lifting the global resource address to (node, socket).
///
/// Routing is two-stage. The cluster placement maps a partition to its
/// home node; the node's own placement then maps it to a socket. A query
/// entering at node E splits into per-home-node groups: the local group
/// submits directly, remote groups ship through the network model and
/// re-resolve the cluster placement on arrival — if a node-level rehome
/// committed while the message was on the wire, the stale delivery is
/// counted and forwarded another hop, mirroring the epoch-stale
/// forwarding of the in-box message layer.
///
/// Node-level migration extends drain→copy→rehome across the network:
/// the drain and the local copy cost ride the source engine's partition
/// queue exactly like an in-box migration (FIFO drain barrier), the copy
/// then crosses the network at NIC bandwidth, and the commit re-homes the
/// partition at cluster scope. The source node keeps serving whatever was
/// queued behind the drain barrier — no queue object crosses nodes, so no
/// operation is dropped or double-counted. If the destination powered
/// down while the copy was on the wire, the migration cancels instead of
/// committing (the source never stopped being the home, so nothing is
/// lost).
class ClusterEngine {
 public:
  ClusterEngine(sim::Simulator* simulator, hwsim::Cluster* cluster,
                const ClusterEngineParams& params);

  ClusterEngine(const ClusterEngine&) = delete;
  ClusterEngine& operator=(const ClusterEngine&) = delete;

  int num_nodes() const { return cluster_->num_nodes(); }
  int num_partitions() const { return placement_->num_partitions(); }
  hwsim::Cluster& cluster() { return *cluster_; }
  /// Node-level placement: "sockets" of this map are nodes.
  PlacementMap& placement() { return *placement_; }
  const PlacementMap& placement() const { return *placement_; }
  Engine& node_engine(NodeId n) { return *engines_[static_cast<size_t>(n)]; }
  const Engine& node_engine(NodeId n) const {
    return *engines_[static_cast<size_t>(n)];
  }

  /// Submits a query entering the system at `entry` (the node the client
  /// is connected to). Work for partitions homed on other nodes ships
  /// through the network model. Network flight time delays execution but
  /// is not part of the tracked query latency (per-node trackers time
  /// from local arrival).
  void Submit(NodeId entry, const QuerySpec& spec);

  /// Starts migrating partition `p` to node `to`. Returns false (no-op)
  /// when `p` is already migrating at node scope, `to` is its home, or
  /// either endpoint is not on.
  bool StartMigration(PartitionId p, NodeId to);

  /// Whether any node-scope migration has `n` as source or destination
  /// (such a node must not power down).
  bool NodeInvolvedInMigration(NodeId n) const;

  /// Fluid backlog queued on `n` across all its sockets (wake signal).
  double BacklogOps(NodeId n) const;

  /// Completed (non-internal) queries summed over all node engines.
  int64_t CompletedQueries() const;

  int64_t remote_sends() const { return remote_sends_; }
  int64_t stale_forwards() const { return stale_forwards_; }
  int active_migrations() const { return active_migrations_; }
  int64_t migrations_started() const { return migrations_started_; }
  int64_t migrations_completed() const { return migrations_completed_; }
  int64_t migrations_cancelled() const { return migrations_cancelled_; }
  double bytes_moved() const { return bytes_moved_; }

 private:
  /// Submits a single-home-node sub-query on that node's engine.
  void SubmitLocal(NodeId n, QuerySpec sub);
  /// Ships a sub-query over the network; `forward` marks a stale hop.
  void Ship(NodeId from, NodeId to, QuerySpec sub, bool forward);
  /// Re-resolves the cluster placement for an arriving sub-query.
  void Route(NodeId at, QuerySpec sub);
  void CheckDrain(PartitionId p, QueryId copy_query, double bytes);
  void CommitOrCancel(PartitionId p, double bytes);

  sim::Simulator* simulator_;
  hwsim::Cluster* cluster_;
  ClusterEngineParams params_;
  std::unique_ptr<PlacementMap> placement_;
  std::vector<std::unique_ptr<Engine>> engines_;

  int64_t remote_sends_ = 0;
  int64_t stale_forwards_ = 0;
  int active_migrations_ = 0;
  int64_t migrations_started_ = 0;
  int64_t migrations_completed_ = 0;
  int64_t migrations_cancelled_ = 0;
  double bytes_moved_ = 0.0;
};

}  // namespace ecldb::engine

#endif  // ECLDB_ENGINE_CLUSTER_ENGINE_H_
