#ifndef ECLDB_PROFILE_EVALUATOR_H_
#define ECLDB_PROFILE_EVALUATOR_H_

#include "common/types.h"
#include "hwsim/machine.h"
#include "hwsim/work_profile.h"
#include "profile/energy_profile.h"
#include "sim/simulator.h"

namespace ecldb::profile {

struct EvaluatorParams {
  /// Settle time after applying a configuration before measuring.
  SimDuration apply_time = Millis(1);
  /// Measurement window (RAPL + instructions retired).
  SimDuration measure_time = Millis(100);
};

/// Conducts an energy profile by applying each configuration to one socket
/// under a saturating synthetic workload and measuring socket power and
/// performance score through the software-visible counters (RAPL and
/// instructions retired). This is how the paper's standalone profile
/// figures (9, 10, 17-20) are produced; the ECL's runtime maintenance
/// performs the same measurement under live load.
///
/// Must not be used concurrently with an Engine driving the same machine
/// (both would contend for the thread loads).
class ProfileEvaluator {
 public:
  ProfileEvaluator(sim::Simulator* simulator, hwsim::Machine* machine,
                   SocketId socket);

  /// Evaluates configuration `index` of `profile` under `work`.
  void EvaluateOne(EnergyProfile* profile, int index,
                   const hwsim::WorkProfile& work, const EvaluatorParams& params);

  /// Evaluates every configuration (skipping idle).
  void EvaluateAll(EnergyProfile* profile, const hwsim::WorkProfile& work,
                   const EvaluatorParams& params);

  /// Measures (power_w, perf_score) of an explicit hardware configuration
  /// without a profile, using the same procedure.
  struct Measurement {
    double power_w = 0.0;
    double perf_score = 0.0;
  };
  Measurement Measure(const hwsim::SocketConfig& cfg,
                      const hwsim::WorkProfile& work,
                      const EvaluatorParams& params);

 private:
  void OfferWork(const hwsim::SocketConfig& cfg, const hwsim::WorkProfile& work);

  sim::Simulator* simulator_;
  hwsim::Machine* machine_;
  SocketId socket_;
};

}  // namespace ecldb::profile

#endif  // ECLDB_PROFILE_EVALUATOR_H_
