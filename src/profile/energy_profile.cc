#include "profile/energy_profile.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::profile {

const char* ZoneName(Zone zone) {
  switch (zone) {
    case Zone::kUnderUtilization:
      return "under-utilization";
    case Zone::kOptimal:
      return "optimal";
    case Zone::kOverUtilization:
      return "over-utilization";
  }
  return "?";
}

EnergyProfile::EnergyProfile(std::vector<Configuration> configs)
    : configs_(std::move(configs)) {
  ECLDB_CHECK(!configs_.empty());
  ECLDB_CHECK_MSG(!configs_[0].hw.AnyActive(), "index 0 must be idle");
}

void EnergyProfile::Record(int i, double power_w, double perf_score, SimTime at) {
  ECLDB_CHECK(i > 0 && i < size());
  configs_[static_cast<size_t>(i)].RecordMeasurement(power_w, perf_score, at);
  if (record_hook_) record_hook_(i, power_w, perf_score, at);
}

int EnergyProfile::measured_count() const {
  int n = 0;
  for (size_t i = 1; i < configs_.size(); ++i) n += configs_[i].measured() ? 1 : 0;
  return n;
}

int EnergyProfile::MostEfficientIndex() const {
  int best = -1;
  double best_eff = 0.0;
  for (size_t i = 1; i < configs_.size(); ++i) {
    const Configuration& c = configs_[i];
    if (!c.measured()) continue;
    if (c.efficiency() > best_eff) {
      best_eff = c.efficiency();
      best = static_cast<int>(i);
    }
  }
  return best;
}

double EnergyProfile::PeakPerfScore() const {
  const int i = PeakPerfIndex();
  return i < 0 ? 0.0 : configs_[static_cast<size_t>(i)].perf_score;
}

int EnergyProfile::PeakPerfIndex() const {
  int best = -1;
  double best_perf = -1.0;
  for (size_t i = 1; i < configs_.size(); ++i) {
    const Configuration& c = configs_[i];
    if (!c.measured()) continue;
    if (c.perf_score > best_perf) {
      best_perf = c.perf_score;
      best = static_cast<int>(i);
    }
  }
  return best;
}

int EnergyProfile::FindForDemand(double demand) const {
  int best = -1;
  double best_eff = -1.0;
  double best_power = 0.0;
  for (size_t i = 1; i < configs_.size(); ++i) {
    const Configuration& c = configs_[i];
    if (!c.measured() || c.perf_score < demand) continue;
    const double eff = c.efficiency();
    if (eff > best_eff || (eff == best_eff && c.power_w < best_power)) {
      best_eff = eff;
      best_power = c.power_w;
      best = static_cast<int>(i);
    }
  }
  if (best >= 0) return best;
  return PeakPerfIndex();
}

std::vector<int> EnergyProfile::Skyline() const {
  std::vector<int> measured;
  for (size_t i = 1; i < configs_.size(); ++i) {
    if (configs_[i].measured()) measured.push_back(static_cast<int>(i));
  }
  std::sort(measured.begin(), measured.end(), [this](int a, int b) {
    return configs_[static_cast<size_t>(a)].perf_score >
           configs_[static_cast<size_t>(b)].perf_score;
  });
  std::vector<int> skyline;
  double max_eff = -1.0;
  for (int i : measured) {
    const double eff = configs_[static_cast<size_t>(i)].efficiency();
    if (eff > max_eff) {
      skyline.push_back(i);
      max_eff = eff;
    }
  }
  std::reverse(skyline.begin(), skyline.end());  // ascending performance
  return skyline;
}

Zone EnergyProfile::ZoneForDemand(double demand) const {
  const int opt = MostEfficientIndex();
  if (opt < 0) return Zone::kOptimal;
  const double opt_perf = configs_[static_cast<size_t>(opt)].perf_score;
  if (demand < 0.98 * opt_perf) return Zone::kUnderUtilization;
  if (demand <= 1.02 * opt_perf) return Zone::kOptimal;
  return Zone::kOverUtilization;
}

std::vector<int> EnergyProfile::StaleConfigs(SimTime now, SimDuration max_age) const {
  std::vector<int> stale;
  for (size_t i = 1; i < configs_.size(); ++i) {
    const Configuration& c = configs_[i];
    if (!c.measured() || c.force_stale || now - c.last_measured > max_age) {
      stale.push_back(static_cast<int>(i));
    }
  }
  return stale;
}

void EnergyProfile::InvalidateAll() {
  for (size_t i = 1; i < configs_.size(); ++i) configs_[i].force_stale = true;
}

}  // namespace ecldb::profile
