#ifndef ECLDB_PROFILE_FEATURE_VECTOR_H_
#define ECLDB_PROFILE_FEATURE_VECTOR_H_

#include <array>
#include <string>

#include "common/types.h"

namespace ecldb::profile {

/// Number of work-profile feature dimensions.
inline constexpr int kFeatureDims = 4;

/// A normalized work-profile signature of one socket over one control
/// interval. The dimensions are chosen to characterize the *workload*
/// (instruction mix, memory-boundedness) rather than the load level or
/// the applied configuration, so that observations taken under one
/// configuration remain comparable when the same workload returns under
/// another:
///
///   v[0]  IPC proxy: instructions retired per active thread-GHz of the
///         applied configuration (duty-corrected under race-to-idle),
///         squashed to [0,1). Approximately configuration-invariant for
///         compute-bound work; drops with memory-boundedness.
///   v[1]  Memory-boundedness: DRAM bytes per instruction retired,
///         squashed to [0,1). A property of the instruction mix.
///   v[2]  Worker utilization of the interval, clamped to [0,1].
///   v[3]  Race-to-idle duty of the interval (1 when RTI was off).
///
/// All values are dimensionless, so distances are meaningful without
/// per-cache normalization statistics.
struct FeatureVector {
  std::array<double, kFeatureDims> v{};
  bool valid = false;

  std::string ToString() const;
};

/// Name of feature dimension `i` (diagnostics and serialization docs).
const char* FeatureDimName(int i);

/// Raw interval observables a socket-level ECL can extract a feature
/// vector from.
struct FeatureInputs {
  /// Instructions retired per second over the interval (raw, including
  /// poll instructions — the currency of the learn-cache observations).
  double instr_rate = 0.0;
  /// DRAM bytes transferred per second over the interval.
  double dram_bytes_rate = 0.0;
  /// Active hardware threads of the applied configuration.
  int active_threads = 0;
  /// Mean active-core frequency of the applied configuration (GHz).
  double core_freq_ghz = 0.0;
  /// Race-to-idle duty of the interval; 1.0 when RTI was off.
  double rti_duty = 1.0;
  /// Worker utilization of the interval in [0,1].
  double utilization = 0.0;
};

/// Extracts the normalized feature vector; `valid` is false when the
/// inputs cannot describe a loaded interval (no instructions, no active
/// threads).
FeatureVector ExtractFeatures(const FeatureInputs& in);

/// Weighted Euclidean distance in [0,1] over the configuration-invariant
/// workload-signature dimensions — currently memory-boundedness alone.
/// The IPC proxy is excluded because it is configuration-dependent for
/// memory-bound work (retirement is bandwidth-limited, so per-thread-cycle
/// rates swing ~4x across a multiplexed sweep); utilization and duty are
/// excluded because they vary with load level even for an unchanged
/// workload. A weight on any of them separates a workload from its own
/// revisit under a different configuration or load.
double FeatureDistance(const FeatureVector& a, const FeatureVector& b);

}  // namespace ecldb::profile

#endif  // ECLDB_PROFILE_FEATURE_VECTOR_H_
