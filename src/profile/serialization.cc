#include "profile/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/check.h"

namespace ecldb::profile {
namespace {

uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t HashString(std::string_view s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

uint64_t ProfileFingerprint(const EnergyProfile& profile) {
  uint64_t h = static_cast<uint64_t>(profile.size());
  for (int i = 0; i < profile.size(); ++i) {
    h = HashCombine(h, HashString(profile.config(i).hw.ToString()));
  }
  return h;
}

uint64_t MachineFingerprint(const hwsim::MachineParams& params) {
  const hwsim::Topology& topo = params.topology;
  uint64_t h = 0x6d616368696e6532ull;  // "machine2"
  h = HashCombine(h, static_cast<uint64_t>(topo.num_sockets));
  h = HashCombine(h, static_cast<uint64_t>(topo.cores_per_socket));
  h = HashCombine(h, static_cast<uint64_t>(topo.threads_per_core));
  // Frequency tables enter in a resolution-independent way: GHz values
  // scaled to integer MHz (all settable P-states are MHz-granular).
  const auto mix_freq = [&h](double ghz) {
    h = HashCombine(h, static_cast<uint64_t>(ghz * 1000.0 + 0.5));
  };
  for (double f : params.freqs.core_ghz) mix_freq(f);
  mix_freq(params.freqs.turbo_ghz);
  for (double f : params.freqs.uncore_ghz) mix_freq(f);
  return h;
}

uint64_t LearnCacheFingerprint(const EnergyProfile& profile,
                               const hwsim::MachineParams& params) {
  return HashCombine(ProfileFingerprint(profile), MachineFingerprint(params));
}

std::string SerializeProfile(const EnergyProfile& profile) {
  std::ostringstream out;
  out << "ecldb-profile v1 " << profile.size() << ' '
      << ProfileFingerprint(profile) << '\n';
  for (int i = 1; i < profile.size(); ++i) {
    const Configuration& c = profile.config(i);
    if (!c.measured()) continue;
    char line[128];
    std::snprintf(line, sizeof(line), "%d %.17g %.17g %" PRId64 "\n", i,
                  c.power_w, c.perf_score, c.last_measured);
    out << line;
  }
  return out.str();
}

bool DeserializeProfile(std::string_view text, EnergyProfile* profile) {
  ECLDB_CHECK(profile != nullptr);
  std::istringstream in{std::string(text)};
  std::string magic, version;
  int size = 0;
  uint64_t fingerprint = 0;
  if (!(in >> magic >> version >> size >> fingerprint)) return false;
  if (magic != "ecldb-profile" || version != "v1") return false;
  if (size != profile->size() || fingerprint != ProfileFingerprint(*profile)) {
    return false;
  }

  // Parse all records before touching the profile (all-or-nothing load).
  struct Record {
    int index;
    double power;
    double perf;
    int64_t at;
  };
  std::vector<Record> records;
  Record r;
  while (in >> r.index >> r.power >> r.perf >> r.at) {
    if (r.index <= 0 || r.index >= profile->size()) return false;
    if (r.power < 0.0 || r.perf < 0.0 || r.at < 0) return false;
    records.push_back(r);
  }
  if (!in.eof()) return false;

  for (const Record& rec : records) {
    profile->Record(rec.index, rec.power, rec.perf, rec.at);
  }
  return true;
}

}  // namespace ecldb::profile
