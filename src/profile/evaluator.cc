#include "profile/evaluator.h"

#include "common/check.h"

namespace ecldb::profile {

ProfileEvaluator::ProfileEvaluator(sim::Simulator* simulator,
                                   hwsim::Machine* machine, SocketId socket)
    : simulator_(simulator), machine_(machine), socket_(socket) {
  ECLDB_CHECK(simulator != nullptr && machine != nullptr);
}

void ProfileEvaluator::OfferWork(const hwsim::SocketConfig& cfg,
                                 const hwsim::WorkProfile& work) {
  const hwsim::Topology& topo = machine_->topology();
  for (int lt = 0; lt < topo.threads_per_socket(); ++lt) {
    const HwThreadId t = socket_ * topo.threads_per_socket() + lt;
    if (cfg.ThreadActive(lt)) {
      machine_->SetThreadLoad(t, &work, 1.0);
    } else {
      machine_->SetThreadLoad(t, nullptr, 0.0);
    }
  }
}

ProfileEvaluator::Measurement ProfileEvaluator::Measure(
    const hwsim::SocketConfig& cfg, const hwsim::WorkProfile& work,
    const EvaluatorParams& params) {
  machine_->ApplySocketConfig(socket_, cfg);
  OfferWork(cfg, work);
  simulator_->RunFor(params.apply_time);

  const uint64_t e0 = machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kPackage) +
                      machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kDram);
  const uint64_t i0 = machine_->ReadSocketInstructions(socket_);
  simulator_->RunFor(params.measure_time);
  const uint64_t e1 = machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kPackage) +
                      machine_->ReadRaplUj(socket_, hwsim::RaplDomain::kDram);
  const uint64_t i1 = machine_->ReadSocketInstructions(socket_);

  const double seconds = ToSeconds(params.measure_time);
  // Subtract after casting to signed: RAPL publish jitter (or a counter
  // reset) can make a reading step backwards, and an unsigned difference
  // would wrap to a huge value instead of a small negative one.
  const int64_t de = static_cast<int64_t>(e1) - static_cast<int64_t>(e0);
  const int64_t di = static_cast<int64_t>(i1) - static_cast<int64_t>(i0);
  Measurement m;
  m.power_w = static_cast<double>(de) * 1e-6 / seconds;
  m.perf_score = static_cast<double>(di) / seconds;
  return m;
}

void ProfileEvaluator::EvaluateOne(EnergyProfile* profile, int index,
                                   const hwsim::WorkProfile& work,
                                   const EvaluatorParams& params) {
  ECLDB_CHECK(index > 0 && index < profile->size());
  const Measurement m = Measure(profile->config(index).hw, work, params);
  profile->Record(index, m.power_w, m.perf_score, simulator_->now());
}

void ProfileEvaluator::EvaluateAll(EnergyProfile* profile,
                                   const hwsim::WorkProfile& work,
                                   const EvaluatorParams& params) {
  for (int i = 1; i < profile->size(); ++i) {
    EvaluateOne(profile, i, work, params);
  }
}

}  // namespace ecldb::profile
