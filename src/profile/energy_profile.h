#ifndef ECLDB_PROFILE_ENERGY_PROFILE_H_
#define ECLDB_PROFILE_ENERGY_PROFILE_H_

#include <functional>
#include <vector>

#include "common/types.h"
#include "profile/configuration.h"

namespace ecldb::profile {

/// The paper's ruling zones (Section 4.3), relative to the most
/// energy-efficient configuration.
enum class Zone { kUnderUtilization, kOptimal, kOverUtilization };

const char* ZoneName(Zone zone);

/// An energy profile: the set of evaluated configurations of one socket
/// for the current workload (paper Section 4). The socket-level ECL keeps
/// one instance and continuously maintains the measurements.
class EnergyProfile {
 public:
  /// `configs` must contain the idle configuration at index 0.
  explicit EnergyProfile(std::vector<Configuration> configs);

  int size() const { return static_cast<int>(configs_.size()); }
  Configuration& config(int i) { return configs_[static_cast<size_t>(i)]; }
  const Configuration& config(int i) const { return configs_[static_cast<size_t>(i)]; }
  int idle_index() const { return 0; }

  /// Records a measurement for configuration `i`.
  void Record(int i, double power_w, double perf_score, SimTime at);

  /// Observer invoked after every Record (index, power_w, perf_score, at).
  /// The learned profile predictor taps measurements here; unset by
  /// default, costing nothing.
  using RecordHook = std::function<void(int, double, double, SimTime)>;
  void SetRecordHook(RecordHook hook) { record_hook_ = std::move(hook); }

  /// Number of configurations with at least one measurement.
  int measured_count() const;
  bool fully_measured() const { return measured_count() == size() - 1; }

  /// Index of the most energy-efficient measured configuration (the
  /// optimal zone); -1 if nothing is measured.
  int MostEfficientIndex() const;

  /// Highest measured performance score; 0 if nothing is measured.
  double PeakPerfScore() const;
  /// Index of the configuration with the highest measured performance.
  int PeakPerfIndex() const;

  /// The most energy-efficient measured configuration whose performance
  /// score satisfies `demand` (ties broken by lower power). Falls back to
  /// the highest-performance configuration when the demand exceeds every
  /// measurement. Returns -1 when nothing is measured.
  int FindForDemand(double demand) const;

  /// Skyline: measured configurations that are not dominated (no other
  /// measured configuration has both >= performance and > efficiency).
  /// Sorted by ascending performance score.
  std::vector<int> Skyline() const;

  /// Ruling zone of a demand level.
  Zone ZoneForDemand(double demand) const;

  /// Indices of measured configurations whose measurement is older than
  /// `max_age`, plus all never-measured ones (excluding idle).
  std::vector<int> StaleConfigs(SimTime now, SimDuration max_age) const;

  /// Marks every measurement stale (used on detected workload change).
  void InvalidateAll();

 private:
  std::vector<Configuration> configs_;
  RecordHook record_hook_;
};

}  // namespace ecldb::profile

#endif  // ECLDB_PROFILE_ENERGY_PROFILE_H_
