#ifndef ECLDB_PROFILE_SERIALIZATION_H_
#define ECLDB_PROFILE_SERIALIZATION_H_

#include <string>
#include <string_view>

#include "hwsim/machine.h"
#include "profile/energy_profile.h"

namespace ecldb::profile {

/// Text serialization of an energy profile's measurements, so a DBMS
/// restart can warm-start the ECL instead of re-learning the profile.
///
/// Only measurements are stored; the configuration set itself is
/// regenerated deterministically by the ConfigGenerator. A fingerprint of
/// the configuration set guards against loading measurements into a
/// profile generated with different parameters (or for a different
/// machine).
///
/// Format (line-based):
///   ecldb-profile v1 <num_configs> <fingerprint>
///   <index> <power_w> <perf_score> <last_measured_ns>
///   ...
std::string SerializeProfile(const EnergyProfile& profile);

/// Loads measurements into `profile`. Returns false (leaving the profile
/// untouched) when the header, fingerprint, or any record is invalid.
bool DeserializeProfile(std::string_view text, EnergyProfile* profile);

/// Fingerprint of the profile's configuration set.
uint64_t ProfileFingerprint(const EnergyProfile& profile);

/// Fingerprint of a machine's hardware shape: topology (sockets, cores,
/// threads) and the settable frequency tables. Two nodes with the same
/// shape hash equal regardless of power-model calibration.
uint64_t MachineFingerprint(const hwsim::MachineParams& params);

/// Combined fingerprint guarding learn-cache warm-starts: the profile's
/// configuration-set fingerprint mixed with the machine shape. A cache
/// trained on a different node shape (socket count, core count, frequency
/// table) is rejected at load instead of silently seeding predictions
/// measured on foreign hardware.
uint64_t LearnCacheFingerprint(const EnergyProfile& profile,
                               const hwsim::MachineParams& params);

}  // namespace ecldb::profile

#endif  // ECLDB_PROFILE_SERIALIZATION_H_
