#include "profile/feature_vector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ecldb::profile {
namespace {

/// Per-dimension distance weights (see FeatureDistance). Only the
/// memory-boundedness dimension separates work profiles reliably:
///
///  * ipc_proxy — zero weight. For memory-bound work the retirement rate
///    is bandwidth- not core-limited, so instructions per thread-cycle
///    vary ~4x with the applied thread count / frequency; during a
///    multiplexed sweep the same workload scatters across the dimension.
///  * utilization / rti_duty — zero weight: load-level properties that
///    differ between a saturated priming run and the same workload at
///    partial load; any positive weight pushes such same-workload pairs
///    past the seeding threshold.
///
/// All three stay in the vector as observational metadata (idle gating,
/// diagnostics, serialization) and as candidate dimensions once they can
/// be measured configuration-invariantly.
constexpr std::array<double, kFeatureDims> kWeights = {0.0, 1.0, 0.0, 0.0};

/// Squashes an unbounded non-negative quantity to [0,1).
double Squash(double x) { return x / (1.0 + x); }

}  // namespace

const char* FeatureDimName(int i) {
  static const char* kNames[kFeatureDims] = {"ipc_proxy", "bytes_per_instr",
                                             "utilization", "rti_duty"};
  return i >= 0 && i < kFeatureDims ? kNames[i] : "?";
}

std::string FeatureVector::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.3f %.3f %.3f %.3f]%s", v[0], v[1], v[2],
                v[3], valid ? "" : " (invalid)");
  return buf;
}

FeatureVector ExtractFeatures(const FeatureInputs& in) {
  FeatureVector f;
  if (in.instr_rate <= 0.0 || in.active_threads <= 0 ||
      in.core_freq_ghz <= 0.0) {
    return f;  // not a loaded interval
  }
  const double duty = std::clamp(in.rti_duty, 0.05, 1.0);
  // Instructions per active thread-cycle: thread capacity is
  // threads * freq * 1e9 cycles/s, scaled by the RTI duty (the work
  // concentrates into the active windows).
  const double thread_cycles =
      static_cast<double>(in.active_threads) * in.core_freq_ghz * 1e9 * duty;
  f.v[0] = Squash(in.instr_rate / thread_cycles);
  f.v[1] = Squash(std::max(0.0, in.dram_bytes_rate) / in.instr_rate);
  f.v[2] = std::clamp(in.utilization, 0.0, 1.0);
  f.v[3] = std::clamp(in.rti_duty, 0.0, 1.0);
  f.valid = true;
  return f;
}

double FeatureDistance(const FeatureVector& a, const FeatureVector& b) {
  double sum = 0.0;
  double wsum = 0.0;
  for (int i = 0; i < kFeatureDims; ++i) {
    const double d = a.v[static_cast<size_t>(i)] - b.v[static_cast<size_t>(i)];
    sum += kWeights[static_cast<size_t>(i)] * d * d;
    wsum += kWeights[static_cast<size_t>(i)];
  }
  return std::sqrt(sum / wsum);
}

}  // namespace ecldb::profile
