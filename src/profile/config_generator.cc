#include "profile/config_generator.h"

#include <algorithm>

#include "common/check.h"

namespace ecldb::profile {

ConfigGenerator::ConfigGenerator(const hwsim::Topology& topo,
                                 const hwsim::FrequencyTable& freqs)
    : topo_(topo), freqs_(freqs) {}

std::vector<double> ConfigGenerator::CoreFreqSamples(int n) const {
  ECLDB_CHECK(n >= 1);
  std::vector<double> out;
  if (n == 1) {
    out.push_back(freqs_.min_core());
    return out;
  }
  // n-1 evenly spaced nominal frequencies (lowest .. highest) plus turbo.
  const int nominal = n - 1;
  for (int i = 0; i < nominal; ++i) {
    const double f =
        nominal == 1
            ? freqs_.min_core()
            : freqs_.min_core() + (freqs_.max_core_nominal() - freqs_.min_core()) *
                                      i / (nominal - 1);
    out.push_back(freqs_.NearestCore(f));
  }
  out.push_back(freqs_.turbo_ghz);
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<double> ConfigGenerator::UncoreFreqSamples(int n) const {
  ECLDB_CHECK(n >= 1);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    const double f =
        n == 1 ? freqs_.max_uncore()
               : freqs_.min_uncore() + (freqs_.max_uncore() - freqs_.min_uncore()) *
                                           i / (n - 1);
    out.push_back(freqs_.NearestUncore(f));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int ConfigGenerator::CountConfigs(const GeneratorParams& params,
                                  int group_size) const {
  const int tps = topo_.threads_per_socket();
  const int counts = tps / group_size;
  const int n_core = static_cast<int>(CoreFreqSamples(params.n_core_freqs).size());
  const int n_unc = static_cast<int>(UncoreFreqSamples(params.n_uncore_freqs).size());
  int total = counts * n_core * n_unc;
  if (params.mixed_core_freqs) {
    const int pairs = n_core * (n_core - 1) / 2;
    total += counts * pairs * n_unc;
  }
  return total;
}

int ConfigGenerator::GroupSizeFor(const GeneratorParams& params) const {
  int g = 1;
  while (g < topo_.threads_per_socket() &&
         CountConfigs(params, g) > params.c_max) {
    g *= 2;
  }
  return g;
}

std::vector<Configuration> ConfigGenerator::Generate(
    const GeneratorParams& params) const {
  const std::vector<double> core_f = CoreFreqSamples(params.n_core_freqs);
  const std::vector<double> unc_f = UncoreFreqSamples(params.n_uncore_freqs);
  const int g = GroupSizeFor(params);
  const int tps = topo_.threads_per_socket();

  std::vector<Configuration> configs;
  // Index 0: idle configuration (all cores turned off).
  configs.push_back(Configuration{hwsim::SocketConfig::Idle(topo_), 0, 0, -1});

  for (int threads = g; threads <= tps; threads += g) {
    for (double fu : unc_f) {
      for (double fc : core_f) {
        Configuration c;
        c.hw = hwsim::SocketConfig::FirstThreads(topo_, threads, fc, fu);
        configs.push_back(std::move(c));
      }
      if (params.mixed_core_freqs) {
        for (size_t a = 0; a < core_f.size(); ++a) {
          for (size_t b = a + 1; b < core_f.size(); ++b) {
            Configuration c;
            c.hw = hwsim::SocketConfig::FirstThreads(topo_, threads, core_f[a], fu);
            // Upper half of the active cores runs at the faster clock.
            const int active_cores =
                (threads + topo_.threads_per_core - 1) / topo_.threads_per_core;
            for (int core = active_cores / 2; core < active_cores; ++core) {
              c.hw.core_freq_ghz[static_cast<size_t>(core)] = core_f[b];
            }
            configs.push_back(std::move(c));
          }
        }
      }
    }
  }
  return configs;
}

}  // namespace ecldb::profile
