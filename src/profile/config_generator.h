#ifndef ECLDB_PROFILE_CONFIG_GENERATOR_H_
#define ECLDB_PROFILE_CONFIG_GENERATOR_H_

#include <vector>

#include "hwsim/pstate.h"
#include "hwsim/topology.h"
#include "profile/configuration.h"

namespace ecldb::profile {

/// Parameters of the configuration generator (paper Section 4.2):
/// how many distinct core/uncore frequencies to sample, whether active
/// cores may run at mixed frequencies, and the configuration budget.
struct GeneratorParams {
  /// Number of distinct core frequencies (always includes the lowest, the
  /// highest nominal, and — if > 1 — the turbo frequency).
  int n_core_freqs = 4;
  /// Number of distinct uncore frequencies (includes both extremes).
  int n_uncore_freqs = 3;
  /// Allow configurations where active cores run at two different
  /// frequencies ("f_core-mixed" in the paper).
  bool mixed_core_freqs = false;
  /// Maximum number of generated configurations. If exceeded, hardware
  /// threads are aggregated into groups (coarser thread-count granularity)
  /// until the budget holds.
  int c_max = 256;
};

/// Generates the set of unique configurations that makes up an energy
/// profile, exploiting core homogeneity (activating core 1 equals
/// activating core 2). Thread counts fill physical cores with both
/// HyperThread siblings before activating the next core, matching the
/// machine's power structure (paper Fig. 4).
class ConfigGenerator {
 public:
  ConfigGenerator(const hwsim::Topology& topo, const hwsim::FrequencyTable& freqs);

  /// Generated configurations, including the idle (all-off) configuration
  /// at index 0. Size is bounded by params.c_max + 1.
  std::vector<Configuration> Generate(const GeneratorParams& params) const;

  /// The core-frequency sample set for the given parameter.
  std::vector<double> CoreFreqSamples(int n) const;
  std::vector<double> UncoreFreqSamples(int n) const;

  /// Thread-count granularity chosen for a budget (1 = per-thread, 2 =
  /// per-core group, 4 = pairs of cores, ...).
  int GroupSizeFor(const GeneratorParams& params) const;

 private:
  int CountConfigs(const GeneratorParams& params, int group_size) const;

  hwsim::Topology topo_;
  hwsim::FrequencyTable freqs_;
};

}  // namespace ecldb::profile

#endif  // ECLDB_PROFILE_CONFIG_GENERATOR_H_
