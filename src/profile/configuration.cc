#include "profile/configuration.h"

#include <sstream>

namespace ecldb::profile {

std::string Configuration::ToString() const {
  std::ostringstream out;
  out << hw.ToString();
  if (measured()) {
    out << " power=" << power_w << "W perf=" << perf_score
        << " eff=" << efficiency();
  } else {
    out << " (unmeasured)";
  }
  return out.str();
}

}  // namespace ecldb::profile
