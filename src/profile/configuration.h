#ifndef ECLDB_PROFILE_CONFIGURATION_H_
#define ECLDB_PROFILE_CONFIGURATION_H_

#include <string>

#include "common/types.h"
#include "hwsim/hw_config.h"

namespace ecldb::profile {

/// A hardware configuration of one socket enriched with the runtime
/// measurements the paper attaches during evaluation (Section 4.1):
/// socket power via RAPL (package + DRAM), the performance score
/// (instructions retired per second on the socket), and energy efficiency
/// (performance per watt).
struct Configuration {
  hwsim::SocketConfig hw;

  double power_w = 0.0;
  double perf_score = 0.0;
  SimTime last_measured = -1;
  /// Explicitly flagged for re-evaluation (e.g., detected workload drift);
  /// the stored measurement stays usable until replaced.
  bool force_stale = false;

  bool measured() const { return last_measured >= 0; }
  /// Performance score per watt (the paper's energy efficiency, W^-1).
  double efficiency() const { return power_w > 0.0 ? perf_score / power_w : 0.0; }

  void RecordMeasurement(double power, double perf, SimTime at) {
    power_w = power;
    perf_score = perf;
    last_measured = at;
    force_stale = false;
  }

  std::string ToString() const;
};

}  // namespace ecldb::profile

#endif  // ECLDB_PROFILE_CONFIGURATION_H_
