#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace ecldb::sim {

EventId EventQueue::Schedule(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, id, std::move(fn)});
  pending_ids_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() const {
  // const_cast-free lazily cleaning view: heap_ and cancelled_ are mutable
  // conceptually; heap_ is declared mutable for this purpose.
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    auto* self = const_cast<EventQueue*>(this);
    auto it = self->cancelled_.find(top.id);
    if (it == self->cancelled_.end()) return;
    self->cancelled_.erase(it);
    self->heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? kSimTimeNever : heap_.top().t;
}

SimTime EventQueue::PopAndRun() {
  SkipCancelled();
  ECLDB_CHECK(!heap_.empty());
  // Move the entry out before running: the callback may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_ids_.erase(entry.id);
  --live_count_;
  entry.fn();
  return entry.t;
}

}  // namespace ecldb::sim
