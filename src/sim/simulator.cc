#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ecldb::sim {

EventId Simulator::Schedule(SimTime t, std::function<void()> fn) {
  ECLDB_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  return events_.Schedule(t, std::move(fn));
}

void Simulator::RegisterAdvancer(std::function<void(SimTime, SimTime)> advancer) {
  advancers_.push_back(std::move(advancer));
}

void Simulator::AdvanceTo(SimTime t) {
  while (now_ < t) {
    const SimTime step_end = std::min(t, now_ + max_slice_);
    for (auto& advancer : advancers_) advancer(now_, step_end);
    now_ = step_end;
  }
}

void Simulator::RunUntil(SimTime t) {
  ECLDB_CHECK(t >= now_);
  while (true) {
    const SimTime next_event = events_.NextTime();
    if (next_event > t) break;
    AdvanceTo(next_event);
    // Run every event scheduled for this timestamp before advancing again.
    while (events_.NextTime() == now_) events_.PopAndRun();
  }
  AdvanceTo(t);
}

}  // namespace ecldb::sim
