#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ecldb::sim {

EventId Simulator::Schedule(SimTime t, std::function<void()> fn) {
  ECLDB_CHECK_MSG(t >= now_, "cannot schedule events in the past");
  return events_.Schedule(t, std::move(fn));
}

void Simulator::RegisterAdvancer(std::function<void(SimTime, SimTime)> advancer) {
  Advancer a;
  a.advance = std::move(advancer);
  advancers_.push_back(std::move(a));
  // A legacy advancer cannot report stationarity; be conservative and keep
  // the exact slice-stepped schedule for the whole simulation.
  all_ff_capable_ = false;
}

void Simulator::RegisterAdvancer(Advancer advancer) {
  ECLDB_CHECK(advancer.advance != nullptr);
  if (advancer.stationary_until == nullptr || advancer.fast_forward == nullptr) {
    all_ff_capable_ = false;
  }
  advancers_.push_back(std::move(advancer));
}

void Simulator::AdvanceTo(SimTime t) {
  while (now_ < t) {
    const SimTime step_end = std::min(t, now_ + max_slice_);
    if (fast_forward_ && all_ff_capable_) {
      // Stationarity horizon across all advancers: no component's per-slice
      // behaviour may change on its own before `horizon`.
      SimTime horizon = t;
      for (const auto& a : advancers_) {
        horizon = std::min(horizon, a.stationary_until(now_));
        if (horizon <= now_) break;
      }
      // Fast-forward must end on the same slice grid the slice-stepped path
      // would visit (anchored at this AdvanceTo entry via `now_`), so that
      // any remaining interval is cut into bit-identical slices.
      const SimTime fast_end =
          (horizon >= t) ? t
                         : now_ + ((horizon - now_) / max_slice_) * max_slice_;
      if (fast_end > now_) {
        for (auto& a : advancers_) a.fast_forward(now_, fast_end, max_slice_);
        now_ = fast_end;
        continue;
      }
    }
    for (auto& a : advancers_) a.advance(now_, step_end);
    now_ = step_end;
  }
}

void Simulator::RunUntil(SimTime t) {
  ECLDB_CHECK(t >= now_);
  while (true) {
    const SimTime next_event = events_.NextTime();
    if (next_event > t) break;
    AdvanceTo(next_event);
    // Run every event scheduled for this timestamp before advancing again.
    while (events_.NextTime() == now_) events_.PopAndRun();
  }
  AdvanceTo(t);
}

}  // namespace ecldb::sim
