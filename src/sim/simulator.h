#ifndef ECLDB_SIM_SIMULATOR_H_
#define ECLDB_SIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"

namespace ecldb::sim {

/// Discrete-time simulator.
///
/// The simulator combines an event queue (for control actions such as ECL
/// ticks, query arrivals, and RTI switches) with continuous "advancers" that
/// integrate state over the time between events — the hardware machine
/// integrates energy, the DBMS scheduler integrates fluid work progress.
///
/// Advancers are additionally bounded by `max_slice` so that models whose
/// rates change as work drains (e.g., a worker running out of queued
/// messages) stay accurate.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  EventId Schedule(SimTime t, std::function<void()> fn);
  EventId ScheduleAfter(SimDuration d, std::function<void()> fn) {
    return Schedule(now_ + d, std::move(fn));
  }
  bool Cancel(EventId id) { return events_.Cancel(id); }

  /// Registers a component advanced over every elapsed interval, in
  /// registration order. The callback receives (from, to], to > from.
  void RegisterAdvancer(std::function<void(SimTime, SimTime)> advancer);

  /// Upper bound on a single advance interval. Default 1 ms.
  void set_max_slice(SimDuration slice) { max_slice_ = slice; }
  SimDuration max_slice() const { return max_slice_; }

  /// Runs until virtual time `t` (inclusive of events at `t`).
  void RunUntil(SimTime t);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  bool HasPendingEvents() const { return !events_.empty(); }

 private:
  void AdvanceTo(SimTime t);

  SimTime now_ = 0;
  SimDuration max_slice_ = Millis(1);
  EventQueue events_;
  std::vector<std::function<void(SimTime, SimTime)>> advancers_;
};

}  // namespace ecldb::sim

#endif  // ECLDB_SIM_SIMULATOR_H_
