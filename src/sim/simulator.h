#ifndef ECLDB_SIM_SIMULATOR_H_
#define ECLDB_SIM_SIMULATOR_H_

#include <functional>
#include <vector>

#include "common/types.h"
#include "sim/event_queue.h"

namespace ecldb::sim {

/// A continuously-advanced simulation component.
///
/// `advance` is mandatory and integrates one elapsed interval (from, to].
/// The other two hooks opt the component into steady-state fast-forward:
/// while every registered advancer reports a stationarity horizon beyond
/// the next slice boundary, the simulator hands whole multi-slice gaps to
/// `fast_forward` instead of stepping `max_slice` intervals one by one.
///
/// Contract: `fast_forward(t0, t1, slice)` must leave the component in a
/// state bit-identical to calling `advance` over consecutive `slice`-bounded
/// sub-intervals of (t0, t1], and `stationary_until(now)` must return a time
/// no later than the first instant at which the component's per-slice
/// behaviour could change on its own (return `now` when not stationary;
/// kSimTimeNever when nothing time-dependent is pending).
struct Advancer {
  std::function<void(SimTime, SimTime)> advance;
  std::function<SimTime(SimTime)> stationary_until;
  std::function<void(SimTime, SimTime, SimDuration)> fast_forward;
};

/// Discrete-time simulator.
///
/// The simulator combines an event queue (for control actions such as ECL
/// ticks, query arrivals, and RTI switches) with continuous "advancers" that
/// integrate state over the time between events — the hardware machine
/// integrates energy, the DBMS scheduler integrates fluid work progress.
///
/// Advancers are additionally bounded by `max_slice` so that models whose
/// rates change as work drains (e.g., a worker running out of queued
/// messages) stay accurate. Advancers that implement the fast-forward
/// contract let long stationary stretches be integrated in one call per
/// advancer while preserving the exact per-slice arithmetic (see
/// docs/architecture.md).
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  EventId Schedule(SimTime t, std::function<void()> fn);
  EventId ScheduleAfter(SimDuration d, std::function<void()> fn) {
    return Schedule(now_ + d, std::move(fn));
  }
  bool Cancel(EventId id) { return events_.Cancel(id); }

  /// Registers a component advanced over every elapsed interval, in
  /// registration order. The callback receives (from, to], to > from.
  /// Legacy form: the component cannot report stationarity, so registering
  /// one disables fast-forward for the whole simulation (conservative).
  void RegisterAdvancer(std::function<void(SimTime, SimTime)> advancer);

  /// Registers a fast-forward-capable advancer (all three hooks set).
  void RegisterAdvancer(Advancer advancer);

  /// Upper bound on a single advance interval. Default 1 ms.
  void set_max_slice(SimDuration slice) { max_slice_ = slice; }
  SimDuration max_slice() const { return max_slice_; }

  /// Enables/disables steady-state fast-forward (default on). Has no effect
  /// unless every registered advancer is fast-forward capable.
  void set_fast_forward(bool on) { fast_forward_ = on; }
  bool fast_forward_enabled() const { return fast_forward_ && all_ff_capable_; }

  /// Runs until virtual time `t` (inclusive of events at `t`).
  void RunUntil(SimTime t);
  void RunFor(SimDuration d) { RunUntil(now_ + d); }

  bool HasPendingEvents() const { return !events_.empty(); }

 private:
  void AdvanceTo(SimTime t);

  SimTime now_ = 0;
  SimDuration max_slice_ = Millis(1);
  bool fast_forward_ = true;
  bool all_ff_capable_ = true;
  EventQueue events_;
  std::vector<Advancer> advancers_;
};

}  // namespace ecldb::sim

#endif  // ECLDB_SIM_SIMULATOR_H_
