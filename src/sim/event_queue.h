#ifndef ECLDB_SIM_EVENT_QUEUE_H_
#define ECLDB_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace ecldb::sim {

/// Identifier of a scheduled event; usable to cancel it.
using EventId = int64_t;

/// Time-ordered queue of callbacks. Events at equal times fire in
/// scheduling order (FIFO), which keeps simulations deterministic.
class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` to fire at absolute virtual time `t`.
  EventId Schedule(SimTime t, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op and returns false.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return static_cast<size_t>(live_count_); }

  /// Time of the earliest pending event, or kSimTimeNever if none.
  SimTime NextTime() const;

  /// Pops and runs the earliest pending event; returns its time.
  /// Must not be called on an empty queue.
  SimTime PopAndRun();

 private:
  struct Entry {
    SimTime t;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  /// IDs currently in the heap and neither fired nor cancelled. Cancel only
  /// honours members, so an already-fired ID cannot corrupt `live_count_` or
  /// leak into `cancelled_`.
  std::unordered_set<EventId> pending_ids_;
  EventId next_id_ = 1;
  int64_t live_count_ = 0;
};

}  // namespace ecldb::sim

#endif  // ECLDB_SIM_EVENT_QUEUE_H_
