#include "common/table_printer.h"

#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace ecldb {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  ECLDB_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c];
      for (size_t i = row[c].size(); i < widths[c]; ++i) out << ' ';
      out << ' ';
    }
    out << "|\n";
  };
  emit_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    out << "|-";
    for (size_t i = 0; i < widths[c]; ++i) out << '-';
    out << '-';
  }
  out << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string Fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FmtInt(int64_t value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld", static_cast<long long>(value));
  std::string raw = digits;
  std::string out;
  const bool neg = !raw.empty() && raw[0] == '-';
  const size_t start = neg ? 1 : 0;
  const size_t n = raw.size() - start;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += raw[start + i];
  }
  return (neg ? "-" : "") + out;
}

}  // namespace ecldb
