#ifndef ECLDB_COMMON_RNG_H_
#define ECLDB_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <initializer_list>

#include "common/check.h"

namespace ecldb {

/// Deterministic xorshift128+ pseudo-random generator. Used everywhere in
/// the library instead of std::mt19937 so that experiments are reproducible
/// across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to decorrelate nearby seeds.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    for (uint64_t* s : {&s0_, &s1_}) {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      *s = x ^ (x >> 31);
    }
    if (s0_ == 0 && s1_ == 0) s0_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound).
  uint64_t NextBounded(uint64_t bound) {
    ECLDB_DCHECK(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    ECLDB_DCHECK(hi >= lo);
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard-normal sample (Box-Muller).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Exponential sample with the given rate parameter (mean 1/rate).
  double NextExponential(double rate) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// True with the given probability.
  bool NextBool(double probability) { return NextDouble() < probability; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed generator over [0, n) with skew parameter theta.
/// Uses the classic Gray et al. approximation; theta = 0 is uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    ECLDB_CHECK(n > 0);
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next() {
    if (theta_ == 0.0) return rng_.NextBounded(n_);
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

}  // namespace ecldb

#endif  // ECLDB_COMMON_RNG_H_
