#ifndef ECLDB_COMMON_LOGGING_H_
#define ECLDB_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ecldb {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted; defaults to kWarning so
/// that benchmark output stays clean.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

/// Stream-style log statement collector; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ecldb

#define ECLDB_LOG(level) \
  ::ecldb::internal::LogMessage(::ecldb::LogLevel::level)

#endif  // ECLDB_COMMON_LOGGING_H_
