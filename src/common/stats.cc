#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecldb {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Reset() { *this = StreamingStats(); }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void PercentileTracker::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void PercentileTracker::Clear() {
  samples_.clear();
  sorted_ = true;
}

double PercentileTracker::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileTracker::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double PercentileTracker::Max() const {
  double m = 0.0;
  for (double s : samples_) m = std::max(m, s);
  return m;
}

double PercentileTracker::FractionAbove(double threshold) const {
  if (samples_.empty()) return 0.0;
  size_t n = 0;
  for (double s : samples_) {
    if (s > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(samples_.size());
}

void SlidingWindow::Add(SimTime t, double value) {
  samples_.push_back({t, value});
  while (!samples_.empty() && samples_.front().t < t - horizon_) {
    samples_.pop_front();
  }
}

void SlidingWindow::Clear() { samples_.clear(); }

double SlidingWindow::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

double SlidingWindow::SlopePerSecond() const {
  const size_t n = samples_.size();
  if (n < 2) return 0.0;
  // Least squares over (t in seconds, value).
  double st = 0.0, sv = 0.0, stt = 0.0, stv = 0.0;
  const SimTime t0 = samples_.front().t;
  for (const Sample& s : samples_) {
    const double t = ToSeconds(s.t - t0);
    st += t;
    sv += s.value;
    stt += t * t;
    stv += t * s.value;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * stt - st * st;
  if (denom <= 1e-12) return 0.0;
  return (dn * stv - st * sv) / denom;
}

double SlidingWindow::Latest() const {
  return samples_.empty() ? 0.0 : samples_.back().value;
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), width_((hi - lo) / buckets), counts_(static_cast<size_t>(buckets), 0) {
  ECLDB_CHECK(buckets > 0);
  ECLDB_CHECK(hi > lo);
}

void Histogram::Add(double x) {
  int i = static_cast<int>((x - lo_) / width_);
  i = std::clamp(i, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(i)];
  ++total_;
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace ecldb
