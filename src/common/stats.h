#ifndef ECLDB_COMMON_STATS_H_
#define ECLDB_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"

namespace ecldb {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void Add(double x);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Collects samples and answers percentile queries. Intended for latency
/// distributions of a single experiment run (bounded sample count).
class PercentileTracker {
 public:
  void Add(double x);
  void Clear();

  size_t count() const { return samples_.size(); }
  /// Returns the p-th percentile (p in [0, 100]); 0 if empty.
  double Percentile(double p) const;
  double Mean() const;
  double Max() const;
  /// Fraction of samples strictly above the threshold.
  double FractionAbove(double threshold) const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Sliding window over (time, value) samples; used by the system-level ECL
/// to estimate the current average query latency and its trend.
class SlidingWindow {
 public:
  /// Keeps samples no older than `horizon` relative to the newest sample.
  explicit SlidingWindow(SimDuration horizon) : horizon_(horizon) {}

  void Add(SimTime t, double value);
  void Clear();

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double Mean() const;
  /// Least-squares slope in value-units per second; 0 with <2 samples.
  double SlopePerSecond() const;
  double Latest() const;

 private:
  struct Sample {
    SimTime t;
    double value;
  };

  SimDuration horizon_;
  std::deque<Sample> samples_;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  void Clear();

  int buckets() const { return static_cast<int>(counts_.size()); }
  int64_t bucket_count(int i) const { return counts_[static_cast<size_t>(i)]; }
  double bucket_lo(int i) const { return lo_ + width_ * i; }
  int64_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace ecldb

#endif  // ECLDB_COMMON_STATS_H_
