#include "common/csv_writer.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <cstring>

namespace ecldb {

bool EnsureDirectory(const std::string& path) {
  if (path.empty()) return true;
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      partial = path.substr(0, i);
      if (partial.empty()) continue;
      if (mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) return false;
    }
  }
  return true;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    if (!EnsureDirectory(path.substr(0, slash))) return;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ != nullptr) AddRow(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteCell(const std::string& cell, bool last) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (needs_quotes) {
    std::fputc('"', file_);
    for (char c : cell) {
      if (c == '"') std::fputc('"', file_);
      std::fputc(c, file_);
    }
    std::fputc('"', file_);
  } else {
    std::fwrite(cell.data(), 1, cell.size(), file_);
  }
  std::fputc(last ? '\n' : ',', file_);
}

void CsvWriter::AddRow(const std::vector<std::string>& cells) {
  if (file_ == nullptr || cells.empty()) return;
  for (size_t i = 0; i < cells.size(); ++i) {
    WriteCell(cells[i], i + 1 == cells.size());
  }
}

void CsvWriter::AddNumericRow(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    cells.emplace_back(buf);
  }
  AddRow(cells);
}

}  // namespace ecldb
