#ifndef ECLDB_COMMON_TYPES_H_
#define ECLDB_COMMON_TYPES_H_

#include <cstdint>

namespace ecldb {

/// Virtual simulation time in nanoseconds. All components of the library
/// operate on virtual time so that experiments are deterministic and a
/// three-minute load profile simulates in milliseconds of wall-clock time.
using SimTime = int64_t;

/// Duration in virtual nanoseconds.
using SimDuration = int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t us) { return us * 1'000; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1'000'000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1'000'000'000; }

/// Converts a virtual duration to (fractional) seconds.
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) * 1e-9; }

/// Converts a virtual duration to (fractional) milliseconds.
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) * 1e-6; }

/// Converts fractional seconds to a virtual duration.
constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * 1e9);
}

/// Identifier of a socket (physical processor package).
using SocketId = int;

/// Identifier of a machine (node) in a cluster. A global resource address
/// is the pair (NodeId, SocketId); single-node code paths never see it.
using NodeId = int;

/// Identifier of a physical core, local to its socket.
using CoreId = int;

/// Identifier of a hardware thread, global across the machine.
using HwThreadId = int;

/// Identifier of a data partition of the data-oriented DBMS.
using PartitionId = int;

/// Identifier of a query submitted to the DBMS.
using QueryId = int64_t;

}  // namespace ecldb

#endif  // ECLDB_COMMON_TYPES_H_
