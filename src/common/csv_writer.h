#ifndef ECLDB_COMMON_CSV_WRITER_H_
#define ECLDB_COMMON_CSV_WRITER_H_

#include <string>
#include <vector>

namespace ecldb {

/// Minimal CSV writer for benchmark series (one file per figure, so the
/// paper's plots can be regenerated with any plotting tool; see plots/).
/// Values containing commas/quotes/newlines are quoted and escaped.
class CsvWriter {
 public:
  /// Creates/overwrites `path` (parent directories are created) and writes
  /// the header row. `ok()` reports whether the file could be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  void AddRow(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with full precision.
  void AddNumericRow(const std::vector<double>& values);

 private:
  void WriteCell(const std::string& cell, bool last);

  std::FILE* file_ = nullptr;
};

/// Creates a directory (and parents); returns false on failure.
bool EnsureDirectory(const std::string& path);

}  // namespace ecldb

#endif  // ECLDB_COMMON_CSV_WRITER_H_
