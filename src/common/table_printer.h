#ifndef ECLDB_COMMON_TABLE_PRINTER_H_
#define ECLDB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace ecldb {

/// Renders aligned text tables for the benchmark harness output, so that the
/// reproduced figure/table series read like the rows the paper reports.
///
/// Usage:
///   TablePrinter t({"workload", "savings %"});
///   t.AddRow({"kv non-indexed", Fmt(38.2, 1)});
///   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Writes the table to stdout.
  void Print() const;
  /// Returns the rendered table as a string.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimals (helper for table cells).
std::string Fmt(double value, int decimals);

/// Formats an integer with thousands separators.
std::string FmtInt(int64_t value);

}  // namespace ecldb

#endif  // ECLDB_COMMON_TABLE_PRINTER_H_
