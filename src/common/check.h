#ifndef ECLDB_COMMON_CHECK_H_
#define ECLDB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Always-on invariant checks. The library does not use exceptions; a failed
// check indicates a programming error and aborts with a diagnostic.

#define ECLDB_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ECLDB_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define ECLDB_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ECLDB_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   (msg), __FILE__, __LINE__);                                \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define ECLDB_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define ECLDB_DCHECK(cond) ECLDB_CHECK(cond)
#endif

#endif  // ECLDB_COMMON_CHECK_H_
