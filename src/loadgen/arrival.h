#ifndef ECLDB_LOADGEN_ARRIVAL_H_
#define ECLDB_LOADGEN_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "loadgen/traffic_shape.h"

namespace ecldb::loadgen {

/// Statistical family of a tenant's aggregated arrival process.
enum class ArrivalKind {
  /// Superposition of num_users independent thin Poisson streams — itself
  /// a Poisson process at the aggregate rate. This is what makes millions
  /// of simulated users cheap: one exponential draw per *query*, not per
  /// user, with identical statistics.
  kPoisson,
  /// Markov-modulated Poisson process: a continuous-time state chain
  /// scales the aggregate rate (bursty think-time correlation across the
  /// user population — sessions clustering on content, not independent
  /// clickers). Burstier than Poisson at the same mean.
  kMmpp,
};

struct MmppParams {
  /// Rate multiplier per modulating state. Defaults give a quiet and a hot
  /// state with mean 1 under the uniform stationary distribution of a
  /// symmetric switch chain.
  std::vector<double> state_multipliers = {0.4, 1.6};
  /// State-switch rate (per second); dwell times are exponential.
  double switch_rate_hz = 0.2;
};

struct ArrivalParams {
  /// Simulated user population behind this process.
  int64_t num_users = 1'000'000;
  /// Nominal sustained request rate of one user (queries/s). The aggregate
  /// nominal rate is num_users * per_user_qps; experiment drivers rescale
  /// it onto machine capacity via ArrivalProcess::set_rate_scale.
  double per_user_qps = 0.001;
  ArrivalKind kind = ArrivalKind::kPoisson;
  MmppParams mmpp;
};

/// One tenant's open-loop arrival process: aggregated Poisson or MMPP,
/// modulated by a TrafficShape. Event-count cost is O(arrivals), never
/// O(users). Deterministic for a fixed seed: the (gap, is_arrival) stream
/// depends only on the params, the shape, and the draw sequence.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalParams& params, const TrafficShape* shape,
                 uint64_t seed);

  /// Multiplies every rate (capacity normalization; default 1).
  void set_rate_scale(double scale) { rate_scale_ = scale; }

  /// Aggregate arrival rate (queries/s) at trace-relative time t, including
  /// shape and current MMPP state.
  double RateAt(SimTime t) const;
  /// Rate excluding the MMPP modulation (reporting: the offered-load curve
  /// an operator would predict from the shape alone).
  double NominalRateAt(SimTime t) const;

  struct Event {
    SimDuration gap = 0;
    /// True: a query arrives after `gap`. False: the MMPP chain switches
    /// state after `gap` (internal event; caller just asks again).
    bool is_arrival = true;
  };

  /// Draws the next event after trace-relative time t. Rates follow the
  /// shape at draw time (the standard piecewise approximation for
  /// inhomogeneous processes; exact for piecewise-constant shapes away
  /// from edges). Gaps are floored at 100 ns and capped at 50 ms when the
  /// rate is ~0 so a dormant tenant re-checks its shape periodically.
  Event Next(SimTime t);

  int mmpp_state() const { return state_; }

 private:
  ArrivalParams params_;
  const TrafficShape* shape_;
  Rng rng_;
  double rate_scale_ = 1.0;
  int state_ = 0;  // MMPP modulating state (kPoisson: always 0)
};

}  // namespace ecldb::loadgen

#endif  // ECLDB_LOADGEN_ARRIVAL_H_
