#ifndef ECLDB_LOADGEN_SLO_H_
#define ECLDB_LOADGEN_SLO_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/stats.h"
#include "common/types.h"
#include "telemetry/telemetry.h"

namespace ecldb::loadgen {

/// Per-tenant service classes, in shedding order: best-effort degrades
/// first, premium last (never, under the default admission params).
enum class SloClass : int8_t {
  kPremium = 0,
  kStandard = 1,
  kBestEffort = 2,
};

inline constexpr int kNumSloClasses = 3;

std::string_view SloClassName(SloClass c);

/// The latency objective of one class: queries completing later than
/// `deadline_ms` after arrival are violations, and the class's tail
/// objective is "percentile(target_percentile) <= deadline_ms".
struct SloClassParams {
  double deadline_ms = 100.0;
  double target_percentile = 99.0;
};

struct SloParams {
  /// Indexed by SloClass. Defaults: premium 99.9 % under 100 ms, standard
  /// 99 % under 250 ms, best-effort 95 % under 1000 ms.
  std::array<SloClassParams, kNumSloClasses> classes = {
      SloClassParams{100.0, 99.9},
      SloClassParams{250.0, 99.0},
      SloClassParams{1000.0, 95.0},
  };
  /// Optional telemetry: registers slo/<class>/violations counters and
  /// loadgen/<class>/latency_ms histograms. Only the loadgen subsystem
  /// constructs an SloTracker, so none of these names exist in a run
  /// without traffic generation (disabled-path byte-identity).
  telemetry::Telemetry* telemetry = nullptr;
};

/// Per-class completion accounting: full-run latency percentiles, deadline
/// violations, and (when attached) telemetry histograms/counters. Fed by
/// the scheduler's completion callback via LoadGen.
class SloTracker {
 public:
  explicit SloTracker(const SloParams& params);

  void RecordCompletion(SloClass c, SimTime arrival, SimTime completion);

  const SloClassParams& class_params(SloClass c) const {
    return params_.classes[static_cast<size_t>(c)];
  }
  const PercentileTracker& latency(SloClass c) const {
    return latency_[static_cast<size_t>(c)];
  }
  int64_t completed(SloClass c) const {
    return completed_[static_cast<size_t>(c)];
  }
  int64_t violations(SloClass c) const {
    return violations_[static_cast<size_t>(c)];
  }
  int64_t total_completed() const;

  /// Latency at the class's target percentile (its SLO tail), ms.
  double TailLatencyMs(SloClass c) const;
  /// True while the class meets its objective (vacuously with no
  /// completions).
  bool SloMet(SloClass c) const;

  void ResetRunStats();

 private:
  SloParams params_;
  std::array<PercentileTracker, kNumSloClasses> latency_;
  std::array<int64_t, kNumSloClasses> completed_ = {0, 0, 0};
  std::array<int64_t, kNumSloClasses> violations_ = {0, 0, 0};
  std::array<telemetry::Counter, kNumSloClasses> violation_counters_;
  std::array<telemetry::HistogramHandle, kNumSloClasses> latency_hists_;
};

}  // namespace ecldb::loadgen

#endif  // ECLDB_LOADGEN_SLO_H_
