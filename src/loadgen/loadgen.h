#ifndef ECLDB_LOADGEN_LOADGEN_H_
#define ECLDB_LOADGEN_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "engine/query.h"
#include "loadgen/admission.h"
#include "loadgen/arrival.h"
#include "loadgen/slo.h"
#include "loadgen/traffic_shape.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/workload.h"

namespace ecldb::loadgen {

/// One tenant: a user population with an SLO class, an arrival family, and
/// a stack of traffic shapes (product-composed).
struct TenantSpec {
  std::string name = "tenant";
  SloClass slo_class = SloClass::kStandard;
  /// Share of the aggregate load under NormalizeToCapacity.
  double weight = 1.0;
  ArrivalParams arrival;
  /// Composable trace shapes; empty = steady 1.0.
  std::vector<ShapeSpec> shapes;
};

struct LoadGenParams {
  std::vector<TenantSpec> tenants;
  /// Trace length; arrival loops stop scheduling past this horizon.
  SimDuration duration = Seconds(60);
  uint64_t seed = 77001;
  SloParams slo;
  AdmissionParams admission;
  /// Optional telemetry; propagated into slo/admission when those leave
  /// theirs unset. All loadgen metric names are registered only through
  /// this path, so a run without a LoadGen dumps an identical registry.
  telemetry::Telemetry* telemetry = nullptr;
};

/// The open-loop traffic subsystem: aggregates each tenant's user
/// population into one arrival process, pushes every arrival through
/// admission control, tags admitted queries with the tenant's SLO class,
/// and accounts completions (via the scheduler's completion callback)
/// against per-class deadlines. Submission is abstracted behind a callback
/// so single-node and cluster drivers share the same generator.
class LoadGen {
 public:
  /// Receives an admitted, class-tagged query. The driver decides the
  /// entry point (engine submit, cluster home-node or any-node entry).
  using SubmitFn = std::function<void(engine::QuerySpec&&)>;

  LoadGen(sim::Simulator* simulator, workload::Workload* workload,
          const LoadGenParams& params);

  void SetSubmitFn(SubmitFn fn) { submit_ = std::move(fn); }

  /// Rescales every tenant's aggregate rate so the summed nominal offered
  /// load equals total_load * capacity_qps, split by tenant weight. This
  /// is how "millions of users" map onto a machine: population size sets
  /// the statistics, capacity sets the scale.
  void NormalizeToCapacity(double capacity_qps, double total_load);

  /// Starts the per-tenant arrival loops at the current virtual time.
  void Start();

  /// Completion hook (wired to Scheduler::SetCompletionCallback by the
  /// experiment drivers).
  void OnQueryComplete(int8_t slo_class, SimTime arrival, SimTime completion);

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }

  /// Arrivals offered to admission (admitted + shed).
  int64_t arrivals() const { return arrivals_; }
  /// Admitted queries handed to the submit callback.
  int64_t submitted() const { return submitted_; }
  int64_t tenant_arrivals(size_t i) const { return tenants_[i].offered; }
  int64_t tenant_submitted(size_t i) const { return tenants_[i].admitted; }
  size_t num_tenants() const { return tenants_.size(); }
  const TenantSpec& tenant_spec(size_t i) const { return tenants_[i].spec; }

  /// Aggregate offered rate (queries/s) across tenants at virtual time
  /// `now` (shape-modulated, MMPP state included).
  double OfferedQps(SimTime now) const;

  void ResetRunStats();

 private:
  struct Tenant {
    TenantSpec spec;
    std::unique_ptr<TrafficShape> shape;
    std::unique_ptr<ArrivalProcess> arrivals;
    /// Query-content stream, disjoint from the arrival-timing stream so
    /// admission decisions never perturb query shapes.
    Rng query_rng;
    /// Shed-coin stream (see AdmissionController::Admit).
    Rng coin_rng;
    int64_t offered = 0;
    int64_t admitted = 0;
    Tenant(TenantSpec s, uint64_t arrival_seed, uint64_t query_seed,
           uint64_t coin_seed);
  };

  void ScheduleNext(size_t i);
  void OnArrival(size_t i);

  sim::Simulator* simulator_;
  workload::Workload* workload_;
  LoadGenParams params_;
  SloTracker slo_;
  AdmissionController admission_;
  std::vector<Tenant> tenants_;
  SubmitFn submit_;
  SimTime start_time_ = 0;
  bool started_ = false;
  int64_t arrivals_ = 0;
  int64_t submitted_ = 0;
};

}  // namespace ecldb::loadgen

#endif  // ECLDB_LOADGEN_LOADGEN_H_
