#ifndef ECLDB_LOADGEN_LOADGEN_H_
#define ECLDB_LOADGEN_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "engine/query.h"
#include "loadgen/admission.h"
#include "loadgen/arrival.h"
#include "loadgen/slo.h"
#include "loadgen/traffic_shape.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "workload/workload.h"

namespace ecldb::loadgen {

/// One tenant: a user population with an SLO class, an arrival family, and
/// a stack of traffic shapes (product-composed).
struct TenantSpec {
  std::string name = "tenant";
  SloClass slo_class = SloClass::kStandard;
  /// Share of the aggregate load under NormalizeToCapacity.
  double weight = 1.0;
  ArrivalParams arrival;
  /// Composable trace shapes; empty = steady 1.0.
  std::vector<ShapeSpec> shapes;
};

/// Client-side retry behaviour for shed and failed arrivals. Default off:
/// without retries no extra rng stream is drawn and no metric is
/// registered, so pre-retry runs stay byte-identical.
///
/// A retried attempt re-enters admission exactly like a fresh arrival —
/// it consumes shed-pressure budget, can be shed again, and only draws
/// query content from the tenant's query stream once it is admitted.
struct RetryParams {
  bool enabled = false;
  /// kBackoff: exponential backoff with uniform jitter — the crowd of
  /// rejected clients decorrelates and re-offers at a decaying rate.
  /// kImmediate: naive clients re-submitting after a fixed small delay
  /// (reconnect RTT) — the retry-storm arm: shed work returns instantly,
  /// keeping offered load pinned above capacity (metastable overload).
  enum class Mode { kBackoff, kImmediate };
  Mode mode = Mode::kBackoff;
  /// First-retry delay; attempt k waits base_backoff * multiplier^(k-1).
  SimDuration base_backoff = Millis(100);
  double multiplier = 2.0;
  SimDuration max_backoff = Seconds(10);
  /// Uniform jitter fraction j: the drawn delay is uniform in
  /// [d*(1-j), d*(1+j)]. 0 disables the draw entirely.
  double jitter = 0.5;
  /// Naive-mode fixed re-submission delay.
  SimDuration immediate_delay = Millis(10);
  /// Total submission attempts per arrival including the first; once
  /// exhausted the arrival is abandoned (counted, never silent).
  int max_attempts = 4;
};

struct LoadGenParams {
  std::vector<TenantSpec> tenants;
  /// Cost of REFUSING one arrival, as a fraction of that arrival's query
  /// cost: accept(), TLS, parse, reject. Modeled as an internal micro-query
  /// (invisible to client latency/completion accounting, but consuming real
  /// capacity) submitted for every shed attempt. This is the wasted work
  /// that makes retry storms metastable: a hammering client costs the
  /// entrance capacity even while being refused. Default 0 submits nothing
  /// and draws nothing — rejection is free, as before.
  double reject_cost_frac = 0.0;
  /// Trace length; arrival loops stop scheduling past this horizon.
  /// Retries that would fire past it are abandoned (counted), so the
  /// drain accounting stays closed.
  SimDuration duration = Seconds(60);
  uint64_t seed = 77001;
  SloParams slo;
  AdmissionParams admission;
  RetryParams retry;
  /// Optional telemetry; propagated into slo/admission when those leave
  /// theirs unset. All loadgen metric names are registered only through
  /// this path, so a run without a LoadGen dumps an identical registry.
  telemetry::Telemetry* telemetry = nullptr;
};

/// The open-loop traffic subsystem: aggregates each tenant's user
/// population into one arrival process, pushes every arrival through
/// admission control, tags admitted queries with the tenant's SLO class,
/// and accounts completions (via the scheduler's completion callback)
/// against per-class deadlines. Submission is abstracted behind a callback
/// so single-node and cluster drivers share the same generator.
class LoadGen {
 public:
  /// Receives an admitted, class-tagged query. The driver decides the
  /// entry point (engine submit, cluster home-node or any-node entry).
  using SubmitFn = std::function<void(engine::QuerySpec&&)>;

  LoadGen(sim::Simulator* simulator, workload::Workload* workload,
          const LoadGenParams& params);

  void SetSubmitFn(SubmitFn fn) { submit_ = std::move(fn); }

  /// Rescales every tenant's aggregate rate so the summed nominal offered
  /// load equals total_load * capacity_qps, split by tenant weight. This
  /// is how "millions of users" map onto a machine: population size sets
  /// the statistics, capacity sets the scale.
  void NormalizeToCapacity(double capacity_qps, double total_load);

  /// Starts the per-tenant arrival loops at the current virtual time.
  void Start();

  /// Completion hook (wired to Scheduler::SetCompletionCallback by the
  /// experiment drivers).
  void OnQueryComplete(int8_t slo_class, SimTime arrival, SimTime completion);

  /// Failure hook (wired to Scheduler::SetFailureCallback /
  /// ClusterEngine::SetQueryFailureCallback by the experiment drivers): a
  /// typed engine failure reaches the originating tenant, which may retry
  /// it through admission like a fresh arrival.
  void OnQueryFailed(int8_t slo_class, int16_t tenant, int8_t attempt,
                     SimTime arrival, engine::FailReason reason);

  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }

  /// Fresh arrivals offered to admission (admitted + shed; excludes
  /// retry re-offers, counted separately in retries()).
  int64_t arrivals() const { return arrivals_; }
  /// Admitted queries handed to the submit callback (fresh + retried).
  int64_t submitted() const { return submitted_; }
  /// Retry attempts re-offered to admission.
  int64_t retries() const { return retries_; }
  /// Arrivals given up on: attempts exhausted or the retry would fire
  /// past the trace horizon.
  int64_t abandoned() const { return abandoned_; }
  /// Typed engine failures delivered to OnQueryFailed.
  int64_t failed() const { return failed_; }
  int64_t tenant_arrivals(size_t i) const { return tenants_[i].offered; }
  int64_t tenant_submitted(size_t i) const { return tenants_[i].admitted; }
  size_t num_tenants() const { return tenants_.size(); }
  const TenantSpec& tenant_spec(size_t i) const { return tenants_[i].spec; }

  /// Aggregate offered rate (queries/s) across tenants at virtual time
  /// `now` (shape-modulated, MMPP state included).
  double OfferedQps(SimTime now) const;

  void ResetRunStats();

 private:
  struct Tenant {
    TenantSpec spec;
    std::unique_ptr<TrafficShape> shape;
    std::unique_ptr<ArrivalProcess> arrivals;
    /// Query-content stream, disjoint from the arrival-timing stream so
    /// admission decisions never perturb query shapes.
    Rng query_rng;
    /// Shed-coin stream (see AdmissionController::Admit).
    Rng coin_rng;
    /// Backoff-jitter stream. Seeded from a disjoint MixSeed index space
    /// (so adding it shifted no existing stream) and only ever drawn when
    /// retries are enabled — disabled runs stay byte-identical.
    Rng retry_rng;
    int64_t offered = 0;
    int64_t admitted = 0;
    Tenant(TenantSpec s, uint64_t arrival_seed, uint64_t query_seed,
           uint64_t coin_seed, uint64_t retry_seed);
  };

  void ScheduleNext(size_t i);
  void OnArrival(size_t i);
  /// One admission attempt of tenant `i` (attempt 0 = fresh arrival).
  void AttemptAdmission(size_t i, int8_t attempt);
  /// Schedules the next attempt after a shed/failure, or abandons.
  void MaybeRetry(size_t i, int8_t attempt);

  sim::Simulator* simulator_;
  workload::Workload* workload_;
  LoadGenParams params_;
  SloTracker slo_;
  AdmissionController admission_;
  std::vector<Tenant> tenants_;
  SubmitFn submit_;
  SimTime start_time_ = 0;
  bool started_ = false;
  int64_t arrivals_ = 0;
  int64_t submitted_ = 0;
  int64_t retries_ = 0;
  int64_t abandoned_ = 0;
  int64_t failed_ = 0;
};

}  // namespace ecldb::loadgen

#endif  // ECLDB_LOADGEN_LOADGEN_H_
