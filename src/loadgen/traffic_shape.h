#ifndef ECLDB_LOADGEN_TRAFFIC_SHAPE_H_
#define ECLDB_LOADGEN_TRAFFIC_SHAPE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace ecldb::loadgen {

/// A traffic shape is a dimensionless rate multiplier over trace time: 1.0
/// is the tenant's nominal arrival rate, a flash crowd multiplies it, a
/// night trough divides it. Shapes are *composable* — a tenant's effective
/// multiplier is the product of its shape stack — so "diurnal base with a
/// 10x flash crowd on top" is two registry entries, not a bespoke class.
class TrafficShape {
 public:
  virtual ~TrafficShape() = default;

  virtual std::string_view name() const = 0;
  /// Rate multiplier at trace-relative time t (>= 0, typically O(1)).
  virtual double MultiplierAt(SimTime t) const = 0;
};

/// Parameters common to the registered shapes. Each shape documents which
/// fields it reads; unused fields are ignored so one spec type serves the
/// whole registry (the KVell workload_api pattern: one dispatch surface,
/// many benchmarks behind it).
struct ShapeSpec {
  /// Registry key: "steady", "diurnal", "flash_crowd", "regional_failover".
  std::string name = "steady";
  /// Generic magnitude knob. steady: the constant multiplier (default 1).
  /// diurnal: peak-to-trough ratio (default 4). flash_crowd: crowd
  /// multiplier (default 10). regional_failover: post-failover multiplier
  /// (default 1.8 — the surviving region absorbs a failed peer).
  double magnitude = 0.0;  // 0 = shape default
  /// Event start (flash_crowd, regional_failover) or cycle phase offset
  /// (diurnal).
  SimTime start = 0;
  /// Event duration (flash_crowd ramp-up + hold + ramp-down window) or
  /// cycle period (diurnal; default 180 s — one compressed day).
  SimDuration duration = 0;  // 0 = shape default
};

/// Builds one registered shape. Aborts on an unknown name (the registry is
/// closed — a typo in an experiment spec should fail loudly, not silently
/// run "steady").
std::unique_ptr<TrafficShape> MakeTrafficShape(const ShapeSpec& spec);

/// Builds the product of several registered shapes (empty = steady 1.0).
std::unique_ptr<TrafficShape> MakeTrafficShape(
    const std::vector<ShapeSpec>& stack);

/// Names accepted by MakeTrafficShape, sorted (introspection + tests).
std::vector<std::string_view> RegisteredTrafficShapes();

}  // namespace ecldb::loadgen

#endif  // ECLDB_LOADGEN_TRAFFIC_SHAPE_H_
