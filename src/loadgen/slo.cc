#include "loadgen/slo.h"

#include <string>

#include "common/check.h"

namespace ecldb::loadgen {

std::string_view SloClassName(SloClass c) {
  switch (c) {
    case SloClass::kPremium:
      return "premium";
    case SloClass::kStandard:
      return "standard";
    case SloClass::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

SloTracker::SloTracker(const SloParams& params) : params_(params) {
  for (int i = 0; i < kNumSloClasses; ++i) {
    ECLDB_CHECK(params_.classes[static_cast<size_t>(i)].deadline_ms > 0.0);
  }
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    // Same bucket layout as the engine's query-latency histogram so the
    // per-class tails are directly comparable in one dump.
    const telemetry::HistogramSpec latency_spec{1e-3, 2.0, 32};  // ms
    for (int i = 0; i < kNumSloClasses; ++i) {
      const std::string cls(SloClassName(static_cast<SloClass>(i)));
      violation_counters_[static_cast<size_t>(i)] =
          telemetry::MakeCounter(tel, "slo/" + cls + "/violations");
      latency_hists_[static_cast<size_t>(i)] = telemetry::MakeHistogram(
          tel, "loadgen/" + cls + "/latency_ms", latency_spec);
    }
  }
}

void SloTracker::RecordCompletion(SloClass c, SimTime arrival,
                                  SimTime completion) {
  const size_t i = static_cast<size_t>(c);
  const double ms = ToMillis(completion - arrival);
  latency_[i].Add(ms);
  ++completed_[i];
  latency_hists_[i].Record(ms);
  if (ms > params_.classes[i].deadline_ms) {
    ++violations_[i];
    violation_counters_[i].Increment();
  }
}

int64_t SloTracker::total_completed() const {
  int64_t total = 0;
  for (int64_t c : completed_) total += c;
  return total;
}

double SloTracker::TailLatencyMs(SloClass c) const {
  const size_t i = static_cast<size_t>(c);
  return latency_[i].Percentile(params_.classes[i].target_percentile);
}

bool SloTracker::SloMet(SloClass c) const {
  const size_t i = static_cast<size_t>(c);
  if (completed_[i] == 0) return true;
  return TailLatencyMs(c) <= params_.classes[i].deadline_ms;
}

void SloTracker::ResetRunStats() {
  for (int i = 0; i < kNumSloClasses; ++i) {
    latency_[static_cast<size_t>(i)].Clear();
    completed_[static_cast<size_t>(i)] = 0;
    violations_[static_cast<size_t>(i)] = 0;
  }
}

}  // namespace ecldb::loadgen
