#include "loadgen/admission.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace ecldb::loadgen {

TokenBucket::TokenBucket(double rate_qps, double burst)
    : rate_qps_(rate_qps),
      burst_(burst > 0.0 ? burst : rate_qps),
      tokens_(burst_) {}

double TokenBucket::Refilled(SimTime now) const {
  if (rate_qps_ <= 0.0) return tokens_;
  return std::min(burst_,
                  tokens_ + rate_qps_ * ToSeconds(now - last_));
}

bool TokenBucket::TryTake(SimTime now) {
  if (rate_qps_ <= 0.0) return true;
  tokens_ = Refilled(now);
  last_ = now;
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::tokens(SimTime now) const { return Refilled(now); }

namespace {

std::array<TokenBucket, kNumSloClasses> MakeBuckets(
    const AdmissionParams& params) {
  return {TokenBucket(params.classes[0].bucket_rate_qps,
                      params.classes[0].bucket_burst),
          TokenBucket(params.classes[1].bucket_rate_qps,
                      params.classes[1].bucket_burst),
          TokenBucket(params.classes[2].bucket_rate_qps,
                      params.classes[2].bucket_burst)};
}

}  // namespace

AdmissionController::AdmissionController(const AdmissionParams& params)
    : params_(params), buckets_(MakeBuckets(params)) {
  for (const ClassAdmissionParams& c : params_.classes) {
    ECLDB_CHECK(c.shed_full > c.shed_onset);
  }
  ECLDB_CHECK(params_.shed_window >= Seconds(1));
  if (telemetry::Telemetry* tel = params_.telemetry; tel != nullptr) {
    for (int i = 0; i < kNumSloClasses; ++i) {
      const std::string cls(SloClassName(static_cast<SloClass>(i)));
      admitted_counters_[static_cast<size_t>(i)] =
          telemetry::MakeCounter(tel, "admission/" + cls + "/admitted");
      shed_counters_[static_cast<size_t>(i)] =
          telemetry::MakeCounter(tel, "admission/" + cls + "/shed");
    }
    telemetry::MetricRegistry& reg = tel->registry();
    reg.AddCounterFn("admission/admitted", [this] { return total_admitted(); });
    reg.AddCounterFn("admission/shed", [this] { return total_shed(); });
    reg.AddGauge("admission/shed_fraction", [this, tel] {
      return RecentShedFraction(tel->now());
    });
    reg.AddGauge("admission/shed_qps",
                 [this, tel] { return RecentShedQps(tel->now()); });
  }
}

bool AdmissionController::Admit(SloClass c, SimTime now, Rng& rng) {
  const size_t i = static_cast<size_t>(c);
  bool admit = buckets_[i].TryTake(now);
  if (admit) {
    const ClassAdmissionParams& cp = params_.classes[i];
    const double pressure =
        pressure_source_ ? pressure_source_() : 0.0;
    last_pressure_ = pressure;
    if (pressure > cp.shed_onset) {
      const double shed_prob = std::clamp(
          (pressure - cp.shed_onset) / (cp.shed_full - cp.shed_onset), 0.0,
          1.0);
      // The coin comes from the tenant's own stream, so the decision
      // sequence is a pure function of the seed and the pressure series.
      if (rng.NextBool(shed_prob)) admit = false;
    }
  }
  if (admit) {
    ++admitted_[i];
    admitted_counters_[i].Increment();
  } else {
    ++shed_[i];
    shed_counters_[i].Increment();
  }
  RecordDecision(now, admit);
  return admit;
}

void AdmissionController::RecordDecision(SimTime now, bool admitted_decision) {
  const SimTime bucket_start = now - now % Seconds(1);
  if (window_.empty() || window_.back().start != bucket_start) {
    WindowBucket b;
    b.start = bucket_start;
    window_.push_back(b);
  }
  if (admitted_decision) {
    ++window_.back().admitted;
  } else {
    ++window_.back().shed;
  }
  PruneWindow(now);
}

void AdmissionController::PruneWindow(SimTime now) const {
  const SimTime horizon = now - params_.shed_window;
  while (!window_.empty() && window_.front().start + Seconds(1) <= horizon) {
    window_.pop_front();
  }
}

double AdmissionController::RecentShedFraction(SimTime now) const {
  PruneWindow(now);
  int64_t admitted_total = 0;
  int64_t shed_total = 0;
  for (const WindowBucket& b : window_) {
    admitted_total += b.admitted;
    shed_total += b.shed;
  }
  const int64_t total = admitted_total + shed_total;
  return total > 0 ? static_cast<double>(shed_total) /
                         static_cast<double>(total)
                   : 0.0;
}

double AdmissionController::RecentShedQps(SimTime now) const {
  PruneWindow(now);
  int64_t shed_total = 0;
  for (const WindowBucket& b : window_) shed_total += b.shed;
  return static_cast<double>(shed_total) / ToSeconds(params_.shed_window);
}

void AdmissionController::ResetRunStats() {
  admitted_ = {0, 0, 0};
  shed_ = {0, 0, 0};
  window_.clear();
}

int64_t AdmissionController::total_admitted() const {
  int64_t total = 0;
  for (int64_t a : admitted_) total += a;
  return total;
}

int64_t AdmissionController::total_shed() const {
  int64_t total = 0;
  for (int64_t s : shed_) total += s;
  return total;
}

}  // namespace ecldb::loadgen
